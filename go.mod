module parafile

go 1.22

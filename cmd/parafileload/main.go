// Command parafileload is an open-loop load generator for parafiled
// daemons — the overload-robustness harness behind BENCH_9.json and
// the CI overload matrix. It drives mixed tenants at fixed arrival
// rates against real daemons and reports, per tenant, the latency
// distribution (p50/p95/p99), goodput, and how many requests the
// cluster admitted, shed, or failed.
//
// Usage:
//
//	parafileload -remote host:port,... \
//	    -workloads 'gold:200:64,bulk:800:256' -duration 15s [-json]
//
// Each workload is name:ops:sizekb[:read_pct] — a tenant named
// `name` issuing `ops` requests per second of `sizekb`-KiB payloads,
// of which read_pct percent are reads (default 0: all writes). The
// generator is open loop: arrivals follow the configured rate no
// matter how slowly the cluster answers, and every latency is
// measured from the request's *intended* start, so queueing delay is
// charged to the server instead of being hidden by coordinated
// omission. Overload answers (the typed qos backpressure error)
// count as `shed`, hard errors as `failed`; shed work is safe to
// retry — by contract nothing of a shed request executed.
//
// -retries 0 (the default) disables client-side retries so the raw
// shed rate is visible; give the tenants a retry budget to measure
// the effective goodput a backing-off client achieves instead.
//
// With -json the report is a machine-readable document (used by the
// checked-in BENCH_9.json and the CI overload matrix); without, a
// human-readable table.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parafile/internal/codec"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/qos"
	"parafile/internal/rpc"
)

// workload is one tenant's offered load.
type workload struct {
	Name    string
	OpsPer  float64 // arrivals per second
	SizeKB  int64   // payload per request
	ReadPct int     // percent of requests that are reads
}

// parseWorkloads parses the name:ops:sizekb[:read_pct] grammar.
func parseWorkloads(spec string) ([]workload, error) {
	var out []workload
	seen := map[string]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("workload %q: want name:ops:sizekb[:read_pct]", tok)
		}
		w := workload{Name: strings.TrimSpace(parts[0])}
		if w.Name == "" {
			return nil, fmt.Errorf("workload %q has no tenant name", tok)
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("tenant %q specified twice", w.Name)
		}
		seen[w.Name] = true
		ops, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || ops <= 0 {
			return nil, fmt.Errorf("workload %q: bad ops/s %q", tok, parts[1])
		}
		w.OpsPer = ops
		kb, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || kb <= 0 {
			return nil, fmt.Errorf("workload %q: bad size-kb %q", tok, parts[2])
		}
		w.SizeKB = kb
		if len(parts) == 4 {
			pct, err := strconv.Atoi(parts[3])
			if err != nil || pct < 0 || pct > 100 {
				return nil, fmt.Errorf("workload %q: bad read_pct %q", tok, parts[3])
			}
			w.ReadPct = pct
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, errors.New("no workloads given")
	}
	return out, nil
}

// tenantReport is one tenant's measured outcome, the JSON unit of the
// report document.
type tenantReport struct {
	Name        string  `json:"name"`
	TargetOps   float64 `json:"target_ops_per_s"`
	SizeKB      int64   `json:"size_kb"`
	Issued      int64   `json:"issued"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Failed      int64   `json:"failed"`
	Dropped     int64   `json:"dropped"`
	GoodputMBps float64 `json:"goodput_mbps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// report is the whole run's outcome document.
type report struct {
	Remotes   []string       `json:"remotes"`
	DurationS float64        `json:"duration_s"`
	Retries   int            `json:"retries"`
	Tenants   []tenantReport `json:"tenants"`
}

// tenantRun aggregates one tenant's in-flight accounting.
type tenantRun struct {
	w       workload
	clients []*rpc.Client
	data    []byte
	// sem bounds outstanding requests: the arrival process stays open
	// loop up to the cap, and arrivals past it are recorded as dropped
	// instead of queueing unbounded frame memory inside the generator
	// (which would shift the measured collapse from the cluster to the
	// measuring tool).
	sem chan struct{}

	mu        sync.Mutex
	issued    int64
	ok        int64
	shed      int64
	failed    int64
	dropped   int64
	okBytes   int64
	latencies []time.Duration
}

func (t *tenantRun) record(start time.Time, bytes int64, err error) {
	lat := time.Since(start)
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case err == nil:
		t.ok++
		t.okBytes += bytes
		t.latencies = append(t.latencies, lat)
	case errors.Is(err, qos.ErrOverloaded):
		t.shed++
	default:
		t.failed++
	}
}

// percentile returns the q-th percentile of sorted latencies in ms.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafileload: ")
	remote := flag.String("remote", "", "comma-separated parafiled endpoints (host:port,...)")
	workloads := flag.String("workloads", "", "tenant workloads, name:ops:sizekb[:read_pct],...")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	opTimeout := flag.Duration("op-timeout", 5*time.Second, "per-request deadline")
	retries := flag.Int("retries", 0, "client retry attempts per request (0 = none: raw shed rate)")
	outstanding := flag.Int("max-outstanding", 512, "per-tenant in-flight cap; arrivals past it count as dropped")
	window := flag.Int64("window-mb", 64, "per-tenant file window the offsets are drawn from (MiB)")
	seed := flag.Int64("seed", 1, "offset/read-mix randomness seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	if *remote == "" || *workloads == "" {
		flag.Usage()
		os.Exit(2)
	}
	specs, err := parseWorkloads(*workloads)
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	for _, a := range strings.Split(*remote, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("no -remote endpoints")
	}

	rep, err := run(addrs, specs, *duration, *opTimeout, *retries, *outstanding, *window<<20, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	printReport(rep)
}

// loadPhys is the single-subfile physical layout every load file is
// created with: one contiguous element, so zero-fingerprint writes
// land as plain contiguous I/O.
func loadPhys() []byte {
	pattern := part.MustPattern(
		part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, 63, 64, 1)}},
	)
	return codec.EncodeFile(part.MustFile(0, pattern))
}

func run(addrs []string, specs []workload, dur, opTimeout time.Duration, retries, outstanding int, window, seed int64) (*report, error) {
	ctx := context.Background()
	phys := loadPhys()
	maxRetries := retries
	if maxRetries == 0 {
		maxRetries = -1 // rpc default-0 means "4 attempts"; -1 disables
	}

	var runs []*tenantRun
	for _, w := range specs {
		tr := &tenantRun{w: w, data: make([]byte, w.SizeKB<<10), sem: make(chan struct{}, outstanding)}
		rnd := rand.New(rand.NewSource(seed))
		rnd.Read(tr.data)
		for _, addr := range addrs {
			c := rpc.NewClient(rpc.ClientConfig{
				Addr:       addr,
				Tenant:     w.Name,
				MaxRetries: maxRetries,
				// The generator measures overloads; a breaker that
				// fast-fails after shed bursts would distort the
				// arrival process (and sheds must never trip it
				// anyway — this also guards hard-failure storms).
				BreakerThreshold: -1,
				Metrics:          obs.NewRegistry(),
			})
			if err := c.CreateFile(ctx, &rpc.CreateFileReq{
				Name: "load-" + w.Name, Phys: phys, Subfiles: []int{0}, Reopen: true,
			}); err != nil {
				c.Close()
				return nil, fmt.Errorf("create load file for %q on %s: %w", w.Name, addr, err)
			}
			tr.clients = append(tr.clients, c)
		}
		runs = append(runs, tr)
	}
	defer func() {
		for _, tr := range runs {
			for _, c := range tr.clients {
				c.Close()
			}
		}
	}()

	// Seed each tenant's window so reads have bytes to gather.
	for _, tr := range runs {
		for _, c := range tr.clients {
			if err := c.WriteSegments(ctx, &rpc.WriteSegsReq{
				File: "load-" + tr.w.Name, Subfile: 0,
				Lo: 0, Hi: int64(len(tr.data)) - 1, Data: tr.data,
			}); err != nil {
				return nil, fmt.Errorf("seed write for %q: %w", tr.w.Name, err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i, tr := range runs {
		wg.Add(1)
		go func(tr *tenantRun, tseed int64) {
			defer wg.Done()
			tr.generate(stop, opTimeout, window, tseed)
		}(tr, seed+int64(i)+1)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{Remotes: addrs, DurationS: elapsed.Seconds(), Retries: retries}
	for _, tr := range runs {
		tr.mu.Lock()
		sort.Slice(tr.latencies, func(i, j int) bool { return tr.latencies[i] < tr.latencies[j] })
		t := tenantReport{
			Name:      tr.w.Name,
			TargetOps: tr.w.OpsPer,
			SizeKB:    tr.w.SizeKB,
			Issued:    tr.issued,
			OK:        tr.ok,
			Shed:      tr.shed,
			Failed:    tr.failed,
			Dropped:   tr.dropped,
			GoodputMBps: float64(tr.okBytes) / elapsed.Seconds() /
				float64(1<<20),
			P50Ms: percentile(tr.latencies, 0.50),
			P95Ms: percentile(tr.latencies, 0.95),
			P99Ms: percentile(tr.latencies, 0.99),
			MaxMs: percentile(tr.latencies, 1.0),
		}
		tr.mu.Unlock()
		rep.Tenants = append(rep.Tenants, t)
	}
	return rep, nil
}

// generate runs one tenant's open-loop arrival process until stop
// closes: a request is launched at every tick of the configured rate,
// regardless of how many are still outstanding.
func (t *tenantRun) generate(stop chan struct{}, opTimeout time.Duration, window, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	// Wake on a coarse tick and launch the arrival deficit — every
	// request the schedule owes since the last wakeup — so the offered
	// rate holds even when the interval is far below timer resolution
	// (a plain ticker silently coalesces sub-millisecond ticks and
	// degrades the open loop into a closed one under overload).
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	var wg sync.WaitGroup
	file := "load-" + t.w.Name
	size := int64(len(t.data))
	slots := window / size
	if slots < 1 {
		slots = 1
	}
	begin := time.Now()
	for n := 0; ; {
		select {
		case <-stop:
			wg.Wait()
			return
		case <-ticker.C:
		}
		due := int(time.Since(begin).Seconds() * t.w.OpsPer)
		for ; n < due; n++ {
			t.launch(&wg, n, size, slots, file, rnd, opTimeout)
		}
	}
}

// launch fires the n-th request of the schedule.
func (t *tenantRun) launch(wg *sync.WaitGroup, n int, size, slots int64, file string, rnd *rand.Rand, opTimeout time.Duration) {
	c := t.clients[n%len(t.clients)]
	off := (rnd.Int63n(slots)) * size
	isRead := rnd.Intn(100) < t.w.ReadPct
	t.mu.Lock()
	t.issued++
	t.mu.Unlock()
	select {
	case t.sem <- struct{}{}:
	default:
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { <-t.sem }()
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		defer cancel()
		var err error
		if isRead {
			dst := make([]byte, size)
			err = c.ReadSegments(ctx, &rpc.ReadSegsReq{
				File: file, Subfile: 0, Lo: 0, Hi: size - 1, N: size,
			}, dst)
		} else {
			err = c.WriteSegments(ctx, &rpc.WriteSegsReq{
				File: file, Subfile: 0, Lo: off, Hi: off + size - 1, Data: t.data,
			})
		}
		t.record(start, size, err)
	}()
}

func printReport(rep *report) {
	fmt.Printf("parafileload: %s for %.1fs (retries %d)\n\n",
		strings.Join(rep.Remotes, ","), rep.DurationS, rep.Retries)
	fmt.Printf("%-12s %10s %8s %8s %8s %8s %8s %8s %12s %9s %9s %9s\n",
		"TENANT", "TARGET/S", "ISSUED", "OK", "SHED", "FAILED", "DROP", "KB",
		"GOODPUT", "P50", "P95", "P99")
	for _, t := range rep.Tenants {
		fmt.Printf("%-12s %10.0f %8d %8d %8d %8d %8d %8d %9.2fMB/s %7.1fms %7.1fms %7.1fms\n",
			t.Name, t.TargetOps, t.Issued, t.OK, t.Shed, t.Failed, t.Dropped, t.SizeKB,
			t.GoodputMBps, t.P50Ms, t.P95Ms, t.P99Ms)
	}
}

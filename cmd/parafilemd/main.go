// Command parafilemd is the parafile metadata service daemon: it owns
// the flat multi-file namespace (create/open/list/remove), the data
// node membership table, and one versioned placement map per file
// (epoch, node list, stripe assignment). State is persisted in a
// crash-safe append-only log with snapshot compaction under -data-dir,
// so a restart replays the namespace exactly to the last fsynced
// record.
//
// Usage:
//
//	parafilemd [-listen 127.0.0.1:7060] [-data-dir DIR]
//	           [-peers a:1,b:2,c:3] [-advertise a:1]
//	           [-metrics-addr host:port] [-max-frame-mb 4]
//	           [-snapshot-mb 1] [-fault SPEC] [-fault-seed N]
//
// Data daemons (parafiled) are registered by address via
// `parafilectl add-node`; clients (internal/meta.Dial, parafilectl,
// clusterfsdemo -meta) open files by name here, cache the placement
// map and talk to the data daemons directly. Rebalances driven by
// `parafilectl add-node/drain-node` flip a file's epoch through this
// daemon's compare-and-swap commit.
//
// With -peers, the daemon joins a replicated group of 2f+1 parafilemd
// processes: one holds a time-bounded leader lease and serves the
// namespace, replicating every mutation to a quorum before acking;
// the others answer NotLeader redirects and vote in elections. Kill
// the leader and a follower takes over within the election timeout;
// clients dialed with the comma-separated endpoint list fail over by
// themselves.
//
// SIGTERM or SIGINT drains: leadership is resigned first (so a peer
// can take over immediately instead of waiting out the lease), the
// listener closes, in-flight requests finish, and the log is synced
// before exit. A drain that cannot complete exits nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"parafile/internal/fault"
	"parafile/internal/meta"
	"parafile/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafilemd: ")
	listen := flag.String("listen", "127.0.0.1:7060", "TCP address to serve the metadata protocol on (:0 picks a free port)")
	dataDir := flag.String("data-dir", "", "directory for the namespace log and snapshots (default: a temporary directory, state lost on exit)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metadata metrics over HTTP on this address (/metrics, /metrics.json, /report)")
	maxFrameMB := flag.Int64("max-frame-mb", 4, "maximum accepted frame size in MiB")
	snapshotMB := flag.Int64("snapshot-mb", 1, "compact the append-only log into a snapshot once it exceeds this many MiB")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	peers := flag.String("peers", "", "comma-separated replication group membership including this node's advertised address (empty: standalone, no replication)")
	advertise := flag.String("advertise", "", "address peers and clients reach this node at (default: the bound listen address)")
	heartbeat := flag.Duration("heartbeat", 150*time.Millisecond, "leader lease heartbeat cadence")
	electionTimeout := flag.Duration("election-timeout", 500*time.Millisecond, "minimum follower silence before campaigning (max is 2x)")
	faultSpec := flag.String("fault", "", "inject faults on accepted connections and log appends, e.g. error:0.01 (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault schedules (reproducible runs)")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *maxFrameMB < 1 {
		log.Fatalf("-max-frame-mb %d must be at least 1", *maxFrameMB)
	}
	if *snapshotMB < 1 {
		log.Fatalf("-snapshot-mb %d must be at least 1", *snapshotMB)
	}

	reg := obs.NewRegistry()

	var inj *fault.Injector
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatal(err)
		}
		inj = fault.NewInjector(plan, reg)
		fmt.Fprintf(os.Stderr, "parafilemd: FAULT INJECTION ACTIVE (%s, seed %d)\n", *faultSpec, *faultSeed)
	}

	dir := *dataDir
	persistent := dir != ""
	if !persistent {
		tmp, err := os.MkdirTemp("", "parafilemd-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := meta.OpenStore(filepath.Join(dir), meta.StoreConfig{
		Fault:         inj,
		SnapshotEvery: *snapshotMB << 20,
		Metrics:       reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	self := *advertise
	if self == "" {
		self = ln.Addr().String()
	}
	logger := obs.NewLogger(os.Stderr, "parafilemd@"+ln.Addr().String())

	var group *meta.Group
	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		group, err = meta.NewGroup(meta.GroupConfig{
			Self:               self,
			Peers:              peerList,
			Store:              store,
			HeartbeatEvery:     *heartbeat,
			ElectionTimeoutMin: *electionTimeout,
			Metrics:            reg,
			Log:                logger,
			Fault:              inj,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	svc := meta.NewService(meta.ServiceConfig{
		Store:    store,
		MaxFrame: *maxFrameMB << 20,
		Metrics:  reg,
		Log:      logger,
		Fault:    inj,
		Group:    group,
	})
	where := "ephemeral namespace in " + dir
	if persistent {
		where = "namespace under " + dir
	}
	fmt.Fprintf(os.Stderr, "parafilemd: listening on %s (%s)\n", ln.Addr(), where)
	if group != nil {
		group.Start()
		fmt.Fprintf(os.Stderr, "parafilemd: replication group member %s of %s\n", self, *peers)
	}

	var metricsShutdown func(context.Context) error
	if *metricsAddr != "" {
		addr, shutdown, err := obs.ServeWith(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatal(err)
		}
		metricsShutdown = shutdown
		fmt.Fprintf(os.Stderr, "parafilemd: serving metrics on http://%s/metrics (also /metrics.json, /report)\n", addr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- svc.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "parafilemd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		failed := false
		if group != nil {
			// Step down first: peers can elect a successor right away
			// instead of waiting out our lease, and any mutation that
			// arrives mid-drain is refused with a redirect rather than
			// half-replicated by a dying leader.
			group.Resign()
		}
		if err := svc.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
			failed = true
		}
		if group != nil {
			group.Stop()
		}
		if metricsShutdown != nil {
			if err := metricsShutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
				failed = true
			}
		}
		if err := store.Close(); err != nil {
			log.Printf("store close: %v", err)
			failed = true
		}
		<-serveErr
		if failed {
			log.Fatal("drain failed")
		}
		fmt.Fprintln(os.Stderr, "parafilemd: drained, bye")
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}
}

// Command fallsviz renders the paper's explanatory figures (1-4) and
// arbitrary FALLS as ASCII diagrams.
//
// Usage:
//
//	fallsviz -fig 1            # a numbered paper figure
//	fallsviz -fig all          # all four figures
//	fallsviz -falls 2,5,6,5 -span 32
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"parafile/internal/falls"
	"parafile/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fallsviz: ")
	fig := flag.String("fig", "", "paper figure to render: 1, 2, 3, 4 or all")
	spec := flag.String("falls", "", "custom FALLS as l,r,s,n")
	span := flag.Int64("span", 32, "bytes to draw for -falls")
	flag.Parse()

	switch {
	case *spec != "":
		f, err := parseFALLS(*spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(viz.Custom(f, *span))
	case *fig == "all":
		for i, f := range []string{"1", "2", "3", "4", "5"} {
			if i > 0 {
				fmt.Println()
			}
			printFig(f)
		}
	case *fig != "":
		printFig(*fig)
	default:
		flag.Usage()
	}
}

func printFig(n string) {
	switch n {
	case "1":
		fmt.Print(viz.Figure1())
	case "2":
		fmt.Print(viz.Figure2())
	case "3":
		fmt.Print(viz.Figure3())
	case "4":
		out, err := viz.Figure4()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case "5":
		out, err := viz.Figure5()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	default:
		log.Fatalf("unknown figure %q (want 1-5 or all)", n)
	}
}

func parseFALLS(s string) (falls.FALLS, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return falls.FALLS{}, fmt.Errorf("want l,r,s,n; got %q", s)
	}
	var v [4]int64
	for i, p := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return falls.FALLS{}, fmt.Errorf("bad field %q: %w", p, err)
		}
		v[i] = n
	}
	return falls.New(v[0], v[1], v[2], v[3])
}

// Command parafilectl inspects partitions written in HPF-style
// notation — it describes the nested FALLS representation of a
// distribution, computes the matching degree between two partitions of
// the same array (the §9 metric), and ranks candidate physical layouts
// for a given logical access pattern — and administers replicated
// files on live parafiled daemons: status lists every replica
// placement, scrub compares them by checksum, repair heals divergence.
//
// Usage:
//
//	parafilectl describe -dims 16x16 -dist 'BLOCK(4),*' [-elem 1] [-viz]
//	parafilectl match    -dims 256x256 -logical 'BLOCK(4),*' -physical '*,BLOCK(4)'
//	parafilectl rank     -dims 256x256 -logical 'BLOCK(4),*' \
//	    -candidates 'BLOCK(4),*;*,BLOCK(4);BLOCK(2),BLOCK(2)'
//	parafilectl status -remote host:port,... -file matrix -dims 256x256 \
//	    -dist '*,BLOCK(64)' -replication 2
//	parafilectl scrub  ... (same flags; exit 1 when replicas diverge)
//	parafilectl repair ... (same flags; heals divergent replicas)
//
// The maintenance verbs reopen the file degraded — a dead daemon shows
// up as failed placements in status and scrub output instead of
// refusing the connection, which is exactly when you want to look.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"parafile/internal/clusterfile"
	"parafile/internal/hpf"
	"parafile/internal/match"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/rpc"
	"parafile/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafilectl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "describe":
		describe(os.Args[2:])
	case "match":
		matchCmd(os.Args[2:])
	case "rank":
		rankCmd(os.Args[2:])
	case "plan":
		planCmd(os.Args[2:])
	case "status":
		statusCmd(os.Args[2:])
	case "scrub":
		scrubCmd(os.Args[2:])
	case "repair":
		repairCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: parafilectl describe|match|rank|plan|status|scrub|repair [flags]")
	os.Exit(2)
}

// planCmd prints the communication schedule for redistributing an
// array between two distributions — the message lists a generated
// redistribution routine would post.
func planCmd(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	from := fs.String("from", "", "source distribution")
	to := fs.String("to", "", "destination distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	src := buildFile(*dims, *from, *elem)
	dst := buildFile(*dims, *to, *elem)
	plan, err := redist.NewPlan(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	length := src.Pattern.Size()
	sched, err := plan.BuildSchedule(length)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redistribution %s -> %s over %s (%d bytes)\n\n", *from, *to, *dims, length)
	fmt.Printf("%-8s %-8s %12s %10s\n", "from", "to", "bytes", "runs")
	for _, m := range sched.Messages {
		fmt.Printf("%-8d %-8d %12d %10d\n", m.From, m.To, m.Bytes, m.Runs)
	}
	fmt.Printf("\n%d messages, %d bytes total, max fan-out %d\n",
		len(sched.Messages), sched.TotalBytes(), sched.MaxFanOut())
}

func describe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions, e.g. 256x256")
	dist := fs.String("dist", "", "distribution, e.g. 'BLOCK(4),*'")
	elem := fs.Int64("elem", 1, "element size in bytes")
	draw := fs.Bool("viz", false, "render each element's byte selection (small arrays only)")
	fs.Parse(args)
	pat, err := hpf.Pattern(*dims, *dist, *elem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distribution %s of %s (%d-byte elements)\n", *dist, *dims, *elem)
	fmt.Printf("pattern: %d elements, %d bytes per repetition\n\n", pat.Len(), pat.Size())
	for e := 0; e < pat.Len(); e++ {
		el := pat.Element(e)
		fmt.Printf("  %-8s size %8d B   %6d segments   depth %d   %s\n",
			el.Name, el.Set.Size(), el.Set.SegmentCount(), el.Set.Depth(), el.Set)
	}
	if *draw {
		if pat.Size() > 512 {
			log.Fatal("-viz is limited to patterns of at most 512 bytes")
		}
		fmt.Println()
		fmt.Println(viz.Ruler(pat.Size()))
		for e := 0; e < pat.Len(); e++ {
			fmt.Printf("%s   %s\n", viz.RenderSet(pat.Element(e).Set, pat.Size()), pat.Element(e).Name)
		}
	}
}

// remoteFlags is the shared flag set of the maintenance verbs: where
// the daemons are, which file to open, and the file's geometry (the
// daemons store bytes, not metadata — the caller names the layout the
// file was created with).
type remoteFlags struct {
	remote *string
	file   *string
	dims   *string
	dist   *string
	elem   *int64
	nodes  *int
	repl   *int
	seg    *int64
	chunk  *int
	stream *bool
}

// clientConfig translates the streaming flags into the per-node client
// template.
func (rf *remoteFlags) clientConfig() rpc.ClientConfig {
	cfg := rpc.ClientConfig{ChunkSize: *rf.chunk << 10}
	if *rf.stream {
		cfg.StreamThreshold = -1
	}
	return cfg
}

func addRemoteFlags(fs *flag.FlagSet) *remoteFlags {
	return &remoteFlags{
		remote: fs.String("remote", "", "comma-separated parafiled endpoints (host:port,...)"),
		file:   fs.String("file", "", "file name as created on the daemons"),
		dims:   fs.String("dims", "", "array dimensions, e.g. 256x256"),
		dist:   fs.String("dist", "", "physical distribution the file was created with"),
		elem:   fs.Int64("elem", 1, "element size in bytes"),
		nodes:  fs.Int("nodes", 4, "I/O node count of the deployment"),
		repl:   fs.Int("replication", 1, "replica count the file was created with"),
		seg:    fs.Int64("seg-bytes", clusterfile.DefaultScrubSegmentBytes, "scrub segment granularity in bytes"),
		chunk:  fs.Int("chunk-kb", 0, "streamed-transfer wire chunk in KiB (0 = default 1024)"),
		stream: fs.Bool("no-stream", false, "disable proto-v3 chunked streaming (single-frame transfers)"),
	}
}

// openRemote reopens the named file on the daemons without truncation
// and degraded (dead daemons become failed placements, not a fatal
// dial), returning the file and a teardown closure.
func (rf *remoteFlags) openRemote() (*clusterfile.File, func()) {
	if *rf.remote == "" || *rf.file == "" {
		log.Fatal("need -remote and -file")
	}
	phys := buildFile(*rf.dims, *rf.dist, *rf.elem)
	tr, err := rpc.NewTransport(strings.Split(*rf.remote, ","), rpc.Options{
		Client:       rf.clientConfig(),
		Reopen:       true,
		DegradedOpen: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := clusterfile.DefaultConfig()
	cfg.IONodes = *rf.nodes
	cfg.Replication = *rf.repl
	cfg.Transport = tr
	c, err := clusterfile.New(cfg)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	f, err := c.CreateFile(*rf.file, phys, nil)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	return f, func() {
		f.Close()
		tr.Close()
	}
}

func statusCmd(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	ctx := context.Background()
	fmt.Printf("file %q: %d subfiles, replication %d\n\n", f.Name, f.Phys.Pattern.Len(), f.Replication)
	fmt.Printf("%-8s %-8s %-8s %-20s %s\n", "subfile", "replica", "node", "store", "length")
	failed := 0
	for s := 0; s < f.Phys.Pattern.Len(); s++ {
		for r := 0; r < f.Replication; r++ {
			length := "?"
			if n, err := f.ReplicaLen(ctx, r, s); err != nil {
				length = "FAILED: " + err.Error()
				failed++
			} else {
				length = fmt.Sprintf("%d", n)
			}
			fmt.Printf("%-8d %-8d %-8d %-20s %s\n",
				s, r, f.Placement[r][s], clusterfile.ReplicaName(f.Name, r), length)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d placement(s) unreachable — scrub and repair once the node is back\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall placements reachable")
}

func scrubCmd(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	rep, err := f.ScrubSegments(context.Background(), *rf.seg)
	if err != nil {
		log.Fatal(err)
	}
	printScrub(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}

func repairCmd(args []string) {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	stats, rep, err := f.Repair(context.Background())
	if rep != nil {
		printScrub(rep)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep.Clean() {
		fmt.Println("nothing to repair")
		return
	}
	fmt.Printf("repaired %d replica(s) across %d subfile(s), %d bytes rewritten\n",
		stats.Replicas, stats.Subfiles, stats.Bytes)
}

func printScrub(rep *clusterfile.ScrubReport) {
	fmt.Printf("scrub: %d subfiles, %d segments, %d bytes checked\n",
		rep.Subfiles, rep.Segments, rep.Checked)
	if rep.Clean() {
		fmt.Println("all replicas agree")
		return
	}
	fmt.Printf("%d mismatching replica segment(s):\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		if m.Err != nil {
			fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): UNREADABLE: %v\n",
				m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Err)
			continue
		}
		fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): crc %08x, want %08x\n",
			m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Got, m.Want)
	}
}

func buildFile(dims, dist string, elem int64) *part.File {
	pat, err := hpf.Pattern(dims, dist, elem)
	if err != nil {
		log.Fatal(err)
	}
	return part.MustFile(0, pat)
}

func matchCmd(args []string) {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	physical := fs.String("physical", "", "physical (on-disk) distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	lf := buildFile(*dims, *logical, *elem)
	pf := buildFile(*dims, *physical, *elem)
	d, err := match.Compute(lf, pf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical  %s\nphysical %s\n\n", *logical, *physical)
	fmt.Printf("matching degree: %.5f\n", d.Score)
	fmt.Printf("communication pairs: %d (%d fully contiguous)\n", d.Pairs, d.ContiguousPairs)
	fmt.Printf("contiguous runs per pattern period: %d (mean %0.f bytes)\n",
		d.RunsPerPeriod, d.MeanRunBytes)
	switch {
	case d.Score == 1:
		fmt.Println("verdict: optimal match — every access is one contiguous transfer")
	case d.Score > 0.1:
		fmt.Println("verdict: moderate match — some gather/scatter needed")
	default:
		fmt.Println("verdict: poor match — consider redistributing the file (see examples/clusterio)")
	}
}

func rankCmd(args []string) {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	candidates := fs.String("candidates", "", "semicolon-separated physical distributions")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	lf := buildFile(*dims, *logical, *elem)
	var names []string
	var files []*part.File
	for _, c := range strings.Split(*candidates, ";") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		names = append(names, c)
		files = append(files, buildFile(*dims, c, *elem))
	}
	if len(files) == 0 {
		log.Fatal("no candidates given")
	}
	order, degrees, err := match.PredictRank(lf, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranking physical layouts for logical %s over %s:\n\n", *logical, *dims)
	for rank, i := range order {
		fmt.Printf("  %d. %-24s score %.5f  pairs %d  runs/period %d\n",
			rank+1, names[i], degrees[i].Score, degrees[i].Pairs, degrees[i].RunsPerPeriod)
	}
}

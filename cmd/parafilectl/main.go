// Command parafilectl inspects partitions written in HPF-style
// notation — it describes the nested FALLS representation of a
// distribution, computes the matching degree between two partitions of
// the same array (the §9 metric), and ranks candidate physical layouts
// for a given logical access pattern — administers replicated files on
// live parafiled daemons (status, scrub, repair), reads live traces
// (top, trace), and drives the metadata service: namespace management
// (create, ls, rm), membership (add-node, drain-node, decommission)
// and online rebalancing.
//
// Usage:
//
//	parafilectl describe -dims 16x16 -dist 'BLOCK(4),*' [-elem 1] [-viz]
//	parafilectl match    -dims 256x256 -logical 'BLOCK(4),*' -physical '*,BLOCK(4)'
//	parafilectl rank     -dims 256x256 -logical 'BLOCK(4),*' \
//	    -candidates 'BLOCK(4),*;*,BLOCK(4);BLOCK(2),BLOCK(2)'
//	parafilectl status -remote host:port,... -file matrix -dims 256x256 \
//	    -dist '*,BLOCK(64)' -replication 2
//	parafilectl status -meta host:port        (namespace, nodes, epochs)
//	parafilectl scrub  ... (same flags as status -remote; exit 1 when replicas diverge)
//	parafilectl repair ... (same flags; heals divergent replicas)
//	parafilectl top    -debug host:port,...   (live op view per node)
//	parafilectl trace  -debug host:port <trace-id|op>
//	parafilectl qos    -debug host:port,...   (admission-control status)
//	parafilectl create -meta host:port -file name [-stripe-kb 64] [-replication 1]
//	parafilectl ls     -meta host:port
//	parafilectl rm     -meta host:port -file name
//	parafilectl add-node     -meta host:port -node host:port
//	parafilectl drain-node   -meta host:port -node host:port
//	parafilectl decommission -meta host:port -node host:port
//
// The maintenance verbs reopen the file degraded — a dead daemon shows
// up as failed placements in status and scrub output instead of
// refusing the connection, which is exactly when you want to look.
//
// add-node and drain-node change the membership at the metadata
// service and immediately rebalance every file onto the new active set
// as a paper redistribution (MAP_new ∘ MAP_old⁻¹): reads are served
// from the old placement for the whole move, the epoch flips at the
// service's compare-and-swap commit, and per-file bytes moved are
// printed as the rebalance progresses. decommission removes a node
// once draining has emptied it.
//
// Unknown verbs and malformed flags print usage on stderr and exit
// non-zero; every verb answers -h with its own flag summary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/hpf"
	"parafile/internal/match"
	"parafile/internal/meta"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/qos"
	"parafile/internal/redist"
	"parafile/internal/rpc"
	"parafile/internal/viz"
)

// verb is one subcommand: setup registers its flags on a pre-built
// FlagSet and returns the action to run once parsing succeeded, so
// every verb shares one parsing, usage and exit-code path.
type verb struct {
	name     string
	synopsis string
	summary  string
	setup    func(fs *flag.FlagSet) func() error
}

var verbs = []verb{
	{"describe", "describe -dims NxM -dist 'DIST' [-elem N] [-viz]",
		"explain a distribution's nested FALLS representation", describeVerb},
	{"match", "match -dims NxM -logical 'DIST' -physical 'DIST' [-elem N]",
		"matching degree between a logical and a physical partition", matchVerb},
	{"rank", "rank -dims NxM -logical 'DIST' -candidates 'D1;D2;...' [-elem N]",
		"rank candidate physical layouts for an access pattern", rankVerb},
	{"plan", "plan -dims NxM -from 'DIST' -to 'DIST' [-elem N]",
		"print the redistribution communication schedule", planVerb},
	{"status", "status -remote host:port,... -file NAME -dims NxM -dist 'DIST' | status -meta host:port",
		"list replica placements, or the metadata namespace", statusVerb},
	{"scrub", "scrub -remote host:port,... -file NAME -dims NxM -dist 'DIST'",
		"compare replicas by checksum (exit 1 on divergence)", scrubVerb},
	{"repair", "repair -remote host:port,... -file NAME -dims NxM -dist 'DIST'",
		"heal divergent replicas from a healthy sibling", repairVerb},
	{"top", "top -debug host:port,... [-n N]",
		"live per-node view of in-flight and recent operations", topVerb},
	{"trace", "trace -debug host:port <trace-id|op>",
		"print one stitched cross-node span tree", traceVerb},
	{"qos", "qos -debug host:port,...",
		"per-node admission control and fair-share status", qosVerb},
	{"create", "create -meta host:port -file NAME [-stripe-kb N] [-replication N]",
		"register a file in the metadata namespace", createVerb},
	{"ls", "ls -meta host:port",
		"list the metadata namespace", lsVerb},
	{"rm", "rm -meta host:port -file NAME",
		"remove a file from the metadata namespace", rmVerb},
	{"add-node", "add-node -meta host:port -node host:port",
		"register a data node and rebalance onto it", addNodeVerb},
	{"drain-node", "drain-node -meta host:port -node host:port",
		"exclude a data node from placements and rebalance off it", drainNodeVerb},
	{"decommission", "decommission -meta host:port -node host:port",
		"remove a drained, empty data node", decommissionVerb},
	{"meta-status", "meta-status -meta host:port[,host:port...]",
		"replication status of every metadata group member", metaStatusVerb},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafilectl: ")
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	switch name {
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return
	}
	var v *verb
	for i := range verbs {
		if verbs[i].name == name {
			v = &verbs[i]
			break
		}
	}
	if v == nil {
		fmt.Fprintf(os.Stderr, "parafilectl: unknown verb %q\n\n", name)
		usage(os.Stderr)
		os.Exit(2)
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	run := v.setup(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parafilectl %s\n", v.synopsis)
		fs.PrintDefaults()
	}
	switch err := fs.Parse(os.Args[2:]); {
	case errors.Is(err, flag.ErrHelp):
		return
	case err != nil:
		os.Exit(2) // flag already printed the error and usage on stderr
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: parafilectl <verb> [flags]")
	fmt.Fprintln(w, "\nverbs:")
	for _, v := range verbs {
		fmt.Fprintf(w, "  %-14s %s\n", v.name, v.summary)
	}
	fmt.Fprintln(w, "\nrun `parafilectl <verb> -h` for the verb's flags")
}

func describeVerb(fs *flag.FlagSet) func() error {
	dims := fs.String("dims", "", "array dimensions, e.g. 256x256")
	dist := fs.String("dist", "", "distribution, e.g. 'BLOCK(4),*'")
	elem := fs.Int64("elem", 1, "element size in bytes")
	draw := fs.Bool("viz", false, "render each element's byte selection (small arrays only)")
	return func() error {
		pat, err := hpf.Pattern(*dims, *dist, *elem)
		if err != nil {
			return err
		}
		fmt.Printf("distribution %s of %s (%d-byte elements)\n", *dist, *dims, *elem)
		fmt.Printf("pattern: %d elements, %d bytes per repetition\n\n", pat.Len(), pat.Size())
		for e := 0; e < pat.Len(); e++ {
			el := pat.Element(e)
			fmt.Printf("  %-8s size %8d B   %6d segments   depth %d   %s\n",
				el.Name, el.Set.Size(), el.Set.SegmentCount(), el.Set.Depth(), el.Set)
		}
		if *draw {
			if pat.Size() > 512 {
				return errors.New("-viz is limited to patterns of at most 512 bytes")
			}
			fmt.Println()
			fmt.Println(viz.Ruler(pat.Size()))
			for e := 0; e < pat.Len(); e++ {
				fmt.Printf("%s   %s\n", viz.RenderSet(pat.Element(e).Set, pat.Size()), pat.Element(e).Name)
			}
		}
		return nil
	}
}

func matchVerb(fs *flag.FlagSet) func() error {
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	physical := fs.String("physical", "", "physical (on-disk) distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	return func() error {
		lf, err := buildFile(*dims, *logical, *elem)
		if err != nil {
			return err
		}
		pf, err := buildFile(*dims, *physical, *elem)
		if err != nil {
			return err
		}
		d, err := match.Compute(lf, pf)
		if err != nil {
			return err
		}
		fmt.Printf("logical  %s\nphysical %s\n\n", *logical, *physical)
		fmt.Printf("matching degree: %.5f\n", d.Score)
		fmt.Printf("communication pairs: %d (%d fully contiguous)\n", d.Pairs, d.ContiguousPairs)
		fmt.Printf("contiguous runs per pattern period: %d (mean %0.f bytes)\n",
			d.RunsPerPeriod, d.MeanRunBytes)
		switch {
		case d.Score == 1:
			fmt.Println("verdict: optimal match — every access is one contiguous transfer")
		case d.Score > 0.1:
			fmt.Println("verdict: moderate match — some gather/scatter needed")
		default:
			fmt.Println("verdict: poor match — consider redistributing the file (see examples/clusterio)")
		}
		return nil
	}
}

func rankVerb(fs *flag.FlagSet) func() error {
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	candidates := fs.String("candidates", "", "semicolon-separated physical distributions")
	elem := fs.Int64("elem", 1, "element size in bytes")
	return func() error {
		lf, err := buildFile(*dims, *logical, *elem)
		if err != nil {
			return err
		}
		var names []string
		var files []*part.File
		for _, c := range strings.Split(*candidates, ";") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			f, err := buildFile(*dims, c, *elem)
			if err != nil {
				return err
			}
			names = append(names, c)
			files = append(files, f)
		}
		if len(files) == 0 {
			return errors.New("no candidates given")
		}
		order, degrees, err := match.PredictRank(lf, files)
		if err != nil {
			return err
		}
		fmt.Printf("ranking physical layouts for logical %s over %s:\n\n", *logical, *dims)
		for rank, i := range order {
			fmt.Printf("  %d. %-24s score %.5f  pairs %d  runs/period %d\n",
				rank+1, names[i], degrees[i].Score, degrees[i].Pairs, degrees[i].RunsPerPeriod)
		}
		return nil
	}
}

// planVerb prints the communication schedule for redistributing an
// array between two distributions — the message lists a generated
// redistribution routine would post.
func planVerb(fs *flag.FlagSet) func() error {
	dims := fs.String("dims", "", "array dimensions")
	from := fs.String("from", "", "source distribution")
	to := fs.String("to", "", "destination distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	return func() error {
		src, err := buildFile(*dims, *from, *elem)
		if err != nil {
			return err
		}
		dst, err := buildFile(*dims, *to, *elem)
		if err != nil {
			return err
		}
		plan, err := redist.NewPlan(src, dst)
		if err != nil {
			return err
		}
		length := src.Pattern.Size()
		sched, err := plan.BuildSchedule(length)
		if err != nil {
			return err
		}
		fmt.Printf("redistribution %s -> %s over %s (%d bytes)\n\n", *from, *to, *dims, length)
		fmt.Printf("%-8s %-8s %12s %10s\n", "from", "to", "bytes", "runs")
		for _, m := range sched.Messages {
			fmt.Printf("%-8d %-8d %12d %10d\n", m.From, m.To, m.Bytes, m.Runs)
		}
		fmt.Printf("\n%d messages, %d bytes total, max fan-out %d\n",
			len(sched.Messages), sched.TotalBytes(), sched.MaxFanOut())
		return nil
	}
}

// remoteFlags is the shared flag set of the replica-maintenance verbs:
// where the daemons are, which file to open, and the file's geometry
// (the daemons store bytes, not metadata — the caller names the layout
// the file was created with).
type remoteFlags struct {
	remote *string
	file   *string
	dims   *string
	dist   *string
	elem   *int64
	nodes  *int
	repl   *int
	seg    *int64
	chunk  *int
	stream *bool
}

// clientConfig translates the streaming flags into the per-node client
// template.
func (rf *remoteFlags) clientConfig() rpc.ClientConfig {
	cfg := rpc.ClientConfig{ChunkSize: *rf.chunk << 10}
	if *rf.stream {
		cfg.StreamThreshold = -1
	}
	return cfg
}

func addRemoteFlags(fs *flag.FlagSet) *remoteFlags {
	return &remoteFlags{
		remote: fs.String("remote", "", "comma-separated parafiled endpoints (host:port,...)"),
		file:   fs.String("file", "", "file name as created on the daemons"),
		dims:   fs.String("dims", "", "array dimensions, e.g. 256x256"),
		dist:   fs.String("dist", "", "physical distribution the file was created with"),
		elem:   fs.Int64("elem", 1, "element size in bytes"),
		nodes:  fs.Int("nodes", 4, "I/O node count of the deployment"),
		repl:   fs.Int("replication", 1, "replica count the file was created with"),
		seg:    fs.Int64("seg-bytes", clusterfile.DefaultScrubSegmentBytes, "scrub segment granularity in bytes"),
		chunk:  fs.Int("chunk-kb", 0, "streamed-transfer wire chunk in KiB (0 = default 1024)"),
		stream: fs.Bool("no-stream", false, "disable proto-v3 chunked streaming (single-frame transfers)"),
	}
}

// openRemote reopens the named file on the daemons without truncation
// and degraded (dead daemons become failed placements, not a fatal
// dial), returning the file and a teardown closure.
func (rf *remoteFlags) openRemote() (*clusterfile.File, func(), error) {
	if *rf.remote == "" || *rf.file == "" {
		return nil, nil, errors.New("need -remote and -file")
	}
	phys, err := buildFile(*rf.dims, *rf.dist, *rf.elem)
	if err != nil {
		return nil, nil, err
	}
	tr, err := rpc.NewTransport(strings.Split(*rf.remote, ","), rpc.Options{
		Client:       rf.clientConfig(),
		Reopen:       true,
		DegradedOpen: true,
	})
	if err != nil {
		return nil, nil, err
	}
	cfg := clusterfile.DefaultConfig()
	cfg.IONodes = *rf.nodes
	cfg.Replication = *rf.repl
	cfg.Transport = tr
	c, err := clusterfile.New(cfg)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	f, err := c.CreateFile(*rf.file, phys, nil)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	return f, func() {
		f.Close()
		tr.Close()
	}, nil
}

func statusVerb(fs *flag.FlagSet) func() error {
	rf := addRemoteFlags(fs)
	metaAddr := fs.String("meta", "", "parafilemd metadata service endpoint (host:port); namespace view instead of per-replica view")
	return func() error {
		if *metaAddr != "" {
			return metaStatus(&metaFlags{meta: metaAddr, file: rf.file})
		}
		f, done, err := rf.openRemote()
		if err != nil {
			return err
		}
		defer done()
		ctx := context.Background()
		fmt.Printf("file %q: %d subfiles, replication %d\n\n", f.Name, f.Phys.Pattern.Len(), f.Replication)
		fmt.Printf("%-8s %-8s %-8s %-20s %s\n", "subfile", "replica", "node", "store", "length")
		failed := 0
		for s := 0; s < f.Phys.Pattern.Len(); s++ {
			for r := 0; r < f.Replication; r++ {
				length := "?"
				if n, err := f.ReplicaLen(ctx, r, s); err != nil {
					length = "FAILED: " + err.Error()
					failed++
				} else {
					length = fmt.Sprintf("%d", n)
				}
				fmt.Printf("%-8d %-8d %-8d %-20s %s\n",
					s, r, f.Placement[r][s], clusterfile.ReplicaName(f.Name, r), length)
			}
		}
		if failed > 0 {
			fmt.Printf("\n%d placement(s) unreachable — scrub and repair once the node is back\n", failed)
			os.Exit(1)
		}
		fmt.Println("\nall placements reachable")
		return nil
	}
}

func scrubVerb(fs *flag.FlagSet) func() error {
	rf := addRemoteFlags(fs)
	return func() error {
		f, done, err := rf.openRemote()
		if err != nil {
			return err
		}
		defer done()
		rep, err := f.ScrubSegments(context.Background(), *rf.seg)
		if err != nil {
			return err
		}
		printScrub(rep)
		if !rep.Clean() {
			os.Exit(1)
		}
		return nil
	}
}

func repairVerb(fs *flag.FlagSet) func() error {
	rf := addRemoteFlags(fs)
	return func() error {
		f, done, err := rf.openRemote()
		if err != nil {
			return err
		}
		defer done()
		stats, rep, err := f.Repair(context.Background())
		if rep != nil {
			printScrub(rep)
		}
		if err != nil {
			return err
		}
		if rep.Clean() {
			fmt.Println("nothing to repair")
			return nil
		}
		fmt.Printf("repaired %d replica(s) across %d subfile(s), %d bytes rewritten\n",
			stats.Replicas, stats.Subfiles, stats.Bytes)
		return nil
	}
}

func printScrub(rep *clusterfile.ScrubReport) {
	fmt.Printf("scrub: %d subfiles, %d segments, %d bytes checked\n",
		rep.Subfiles, rep.Segments, rep.Checked)
	if rep.Clean() {
		fmt.Println("all replicas agree")
		return
	}
	fmt.Printf("%d mismatching replica segment(s):\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		if m.Err != nil {
			fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): UNREADABLE: %v\n",
				m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Err)
			continue
		}
		fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): crc %08x, want %08x\n",
			m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Got, m.Want)
	}
}

// metaFlags is the shared flag set of the metadata verbs.
type metaFlags struct {
	meta *string
	file *string
	node *string
}

func addMetaFlags(fs *flag.FlagSet) *metaFlags {
	return &metaFlags{
		meta: fs.String("meta", "", "parafilemd metadata endpoint(s), host:port[,host:port...] for a replicated group"),
		file: fs.String("file", "", "file name in the metadata namespace"),
		node: fs.String("node", "", "data node endpoint (host:port)"),
	}
}

// dial connects to the metadata service named by -meta.
func (mf *metaFlags) dial() (*meta.FS, error) {
	if *mf.meta == "" {
		return nil, errors.New("need -meta host:port")
	}
	return meta.Dial(*mf.meta, meta.Options{
		Metrics: obs.NewRegistry(),
		// Tracing is offered so rebalance data ops show up in the
		// daemons' /debug/trace; daemons without tracing ignore it.
		Tracer: obs.NewTracer("parafilectl", 128),
	}), nil
}

// metaStatusVerb polls every -meta endpoint directly (no leader
// chasing: the point is each member's own view) and prints the group:
// term, role, believed leader, log tail, and the leaseholder's
// remaining lease.
func metaStatusVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return func() error {
		if *mf.meta == "" {
			return errors.New("need -meta host:port[,host:port...]")
		}
		fmt.Printf("%-22s %6s %-11s %-22s %10s %8s %8s\n",
			"endpoint", "term", "role", "leader", "log-tail", "lease", "peers")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		leaders := map[string]bool{}
		reached := 0
		for _, addr := range strings.Split(*mf.meta, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			cl := rpc.NewClient(rpc.ClientConfig{Addr: addr, MaxRetries: 1})
			st, err := cl.MetaStatus(ctx)
			cl.Close()
			if err != nil {
				fmt.Printf("%-22s unreachable: %v\n", addr, err)
				continue
			}
			reached++
			lease := "-"
			if st.LeaseMs > 0 {
				lease = fmt.Sprintf("%dms", st.LeaseMs)
			}
			if st.Role == rpc.RoleLeader || st.Role == rpc.RoleStandalone {
				leaders[st.Self] = true
			}
			fmt.Printf("%-22s %6d %-11s %-22s %6d@%-3d %8s %8d\n",
				addr, st.Term, st.Role, st.Leader, st.LastIndex, st.LastTerm, lease, st.Peers)
		}
		if reached == 0 {
			return errors.New("no metadata endpoint reachable")
		}
		if len(leaders) > 1 {
			return fmt.Errorf("split view: %d nodes claim the lease", len(leaders))
		}
		return nil
	}
}

func createVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	stripeKB := fs.Int64("stripe-kb", 0, "stripe unit in KiB (0 = service default)")
	repl := fs.Int("replication", 0, "replica count (0 = 1)")
	return func() error {
		if *mf.file == "" {
			return errors.New("need -file")
		}
		cl, err := mf.dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		ctx := context.Background()
		f, err := cl.Create(ctx, *mf.file, *stripeKB<<10, *repl)
		if err != nil {
			return err
		}
		defer f.Close()
		p := f.Placement()
		fmt.Printf("created %q: epoch %d, %d subfiles x %d B stripes, replication %d, nodes %s\n",
			p.Name, p.Epoch, len(p.Assign), p.StripeBytes, p.Replication, strings.Join(p.Nodes, ","))
		return nil
	}
}

func lsVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return func() error {
		cl, err := mf.dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		return printNamespace(cl)
	}
}

func rmVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return func() error {
		if *mf.file == "" {
			return errors.New("need -file")
		}
		cl, err := mf.dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		if err := cl.Remove(context.Background(), *mf.file); err != nil {
			return err
		}
		fmt.Printf("removed %q\n", *mf.file)
		return nil
	}
}

// metaStatus prints the namespace and membership tables — the
// cluster-wide view `status -meta` gives during and after rebalances.
func metaStatus(mf *metaFlags) error {
	cl, err := mf.dial()
	if err != nil {
		return err
	}
	defer cl.Close()
	nodes, err := cl.Nodes(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("nodes (%d):\n", len(nodes))
	for _, n := range nodes {
		fmt.Printf("  %-24s %s\n", n.Addr, rpc.NodeStateName(n.State))
	}
	if len(nodes) == 0 {
		fmt.Println("  (none registered — `parafilectl add-node` to grow the cluster)")
	}
	fmt.Println()
	return printNamespace(cl)
}

func printNamespace(cl *meta.FS) error {
	files, err := cl.List(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("namespace (%d):\n", len(files))
	if len(files) == 0 {
		fmt.Println("  (empty)")
		return nil
	}
	fmt.Printf("  %-20s %8s %6s %6s %12s  %s\n", "name", "epoch", "repl", "sub", "length", "nodes")
	for _, f := range files {
		fmt.Printf("  %-20s %8d %6d %6d %12d  %s\n",
			f.Name, f.Epoch, f.Replication, len(f.Assign), f.Length, strings.Join(f.Nodes, ","))
	}
	return nil
}

func addNodeVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return membershipAction(mf, "add-node", func(cl *meta.FS, ctx context.Context, addr string) ([]*meta.RebalanceOutcome, error) {
		return cl.AddNode(ctx, addr)
	})
}

func drainNodeVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return membershipAction(mf, "drain-node", func(cl *meta.FS, ctx context.Context, addr string) ([]*meta.RebalanceOutcome, error) {
		return cl.DrainNode(ctx, addr)
	})
}

func decommissionVerb(fs *flag.FlagSet) func() error {
	mf := addMetaFlags(fs)
	return func() error {
		if *mf.node == "" {
			return errors.New("need -node host:port")
		}
		cl, err := mf.dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		if err := cl.Decommission(context.Background(), *mf.node); err != nil {
			return err
		}
		fmt.Printf("decommissioned %s\n", *mf.node)
		return nil
	}
}

// membershipAction runs one membership change plus the namespace-wide
// rebalance it triggers, printing per-file outcomes. Files that failed
// don't abort the rest; they are reported and the verb exits nonzero.
func membershipAction(mf *metaFlags, what string, act func(*meta.FS, context.Context, string) ([]*meta.RebalanceOutcome, error)) func() error {
	return func() error {
		if *mf.node == "" {
			return errors.New("need -node host:port")
		}
		cl, err := mf.dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		outcomes, err := act(cl, context.Background(), *mf.node)
		printRebalance(outcomes)
		if err != nil {
			return fmt.Errorf("%s %s: %w", what, *mf.node, err)
		}
		if failed := meta.Failed(outcomes); failed > 0 {
			return fmt.Errorf("%s %s: %d of %d file(s) failed to rebalance", what, *mf.node, failed, len(outcomes))
		}
		return nil
	}
}

func printRebalance(outcomes []*meta.RebalanceOutcome) {
	moved := 0
	var bytes int64
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Printf("  %-20s FAILED: %v\n", o.Name, o.Err)
			continue
		}
		r := o.Result
		if !r.Moved {
			fmt.Printf("  %-20s already balanced (epoch %d)\n", o.Name, r.FromEpoch)
			continue
		}
		moved++
		bytes += r.BytesMoved
		fmt.Printf("  %-20s epoch %d -> %d: %d -> %d nodes, %d bytes in %d messages (%s)\n",
			o.Name, r.FromEpoch, r.ToEpoch, len(r.FromNodes), len(r.ToNodes),
			r.BytesMoved, r.Messages, r.Wall.Round(time.Millisecond))
	}
	fmt.Printf("rebalanced %d file(s), %d bytes moved\n", moved, bytes)
}

// topVerb summarises each endpoint's /debug/trace document: node name,
// in-flight operations, and the recent stitched trees with the node
// that owns the largest share of each trace's critical path.
func topVerb(fs *flag.FlagSet) func() error {
	debug := fs.String("debug", "", "comma-separated -metrics-addr endpoints to poll (host:port,...)")
	recent := fs.Int("n", 8, "recent traces to show per endpoint")
	return func() error {
		if *debug == "" {
			return errors.New("need -debug host:port[,host:port...]")
		}
		for i, addr := range strings.Split(*debug, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if i > 0 {
				fmt.Println()
			}
			var dump obs.TraceDump
			if err := fetchTraceJSON(addr, "", &dump); err != nil {
				return err
			}
			printDump(addr, &dump, *recent)
		}
		return nil
	}
}

func printDump(addr string, dump *obs.TraceDump, recent int) {
	fmt.Printf("%s  node %q", addr, dump.Node)
	if !dump.Enabled {
		fmt.Println("  (tracing disabled)")
		return
	}
	fmt.Println()
	fmt.Printf("  in-flight (%d):\n", len(dump.InFlight))
	for _, op := range dump.InFlight {
		fmt.Printf("    %016x  %-14s running %s\n", op.TraceID, op.Op, fmtNs(op.DurNs))
	}
	if len(dump.InFlight) == 0 {
		fmt.Println("    (none)")
	}
	trees := dump.Recent
	if len(trees) > recent {
		trees = trees[len(trees)-recent:]
	}
	fmt.Printf("  recent (%d of %d):\n", len(trees), len(dump.Recent))
	if len(trees) == 0 {
		fmt.Println("    (none)")
	}
	for _, tr := range trees {
		status := "ok"
		if tr.Err {
			status = "ERROR"
		}
		hot := "-"
		if len(tr.Shares) > 0 {
			hot = fmt.Sprintf("%s %.0f%%", tr.Shares[0].Node, tr.Shares[0].Pct)
		}
		fmt.Printf("    %016x  %-14s %10s  %-5s  hottest: %s\n",
			tr.TraceID, tr.Op, fmtNs(tr.DurNs), status, hot)
	}
}

// traceVerb prints one stitched cross-node span tree. A selector that
// parses as hex is tried as a trace ID first and falls back to an op
// name on a miss, so `trace write` works even though "ead" is hex.
func traceVerb(fs *flag.FlagSet) func() error {
	debug := fs.String("debug", "", "-metrics-addr endpoint to query (host:port)")
	return func() error {
		if *debug == "" || fs.NArg() != 1 {
			return errors.New("usage: parafilectl trace -debug host:port <trace-id|op>")
		}
		sel := fs.Arg(0)
		var tree obs.TraceTree
		err := errNotFound
		if _, perr := strconv.ParseUint(sel, 16, 64); perr == nil {
			err = fetchTraceJSON(*debug, "id="+sel, &tree)
		}
		if err == errNotFound {
			err = fetchTraceJSON(*debug, "op="+url.QueryEscape(sel), &tree)
		}
		if err == errNotFound {
			return fmt.Errorf("no trace matching %q (try `parafilectl top -debug %s`)", sel, *debug)
		}
		if err != nil {
			return err
		}
		fmt.Print(tree.Format())
		return nil
	}
}

// qosVerb prints each endpoint's /debug/qos snapshot: admission
// occupancy, memory budget, and the per-tenant fair-share table.
func qosVerb(fs *flag.FlagSet) func() error {
	debug := fs.String("debug", "", "comma-separated -metrics-addr endpoints to poll (host:port,...)")
	return func() error {
		if *debug == "" {
			return errors.New("need -debug host:port[,host:port...]")
		}
		for i, addr := range strings.Split(*debug, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if i > 0 {
				fmt.Println()
			}
			var st qos.Status
			if err := fetchDebugJSON(addr, "/debug/qos", &st); err != nil {
				return err
			}
			fmt.Printf("%s\n%s", addr, st.Format())
		}
		return nil
	}
}

var errNotFound = errors.New("trace not found")

// fetchTraceJSON GETs /debug/trace?format=json[&query] from an
// endpoint and decodes the document into out.
func fetchTraceJSON(addr, query string, out any) error {
	u := "http://" + addr + "/debug/trace?format=json"
	if query != "" {
		u += "&" + query
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// fetchDebugJSON GETs an arbitrary debug endpoint's JSON form.
func fetchDebugJSON(addr, path string, out any) error {
	u := "http://" + addr + path + "?format=json"
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func buildFile(dims, dist string, elem int64) (*part.File, error) {
	pat, err := hpf.Pattern(dims, dist, elem)
	if err != nil {
		return nil, err
	}
	return part.NewFile(0, pat)
}

// Command parafilectl inspects partitions written in HPF-style
// notation — it describes the nested FALLS representation of a
// distribution, computes the matching degree between two partitions of
// the same array (the §9 metric), and ranks candidate physical layouts
// for a given logical access pattern — and administers replicated
// files on live parafiled daemons: status lists every replica
// placement, scrub compares them by checksum, repair heals divergence.
//
// Usage:
//
//	parafilectl describe -dims 16x16 -dist 'BLOCK(4),*' [-elem 1] [-viz]
//	parafilectl match    -dims 256x256 -logical 'BLOCK(4),*' -physical '*,BLOCK(4)'
//	parafilectl rank     -dims 256x256 -logical 'BLOCK(4),*' \
//	    -candidates 'BLOCK(4),*;*,BLOCK(4);BLOCK(2),BLOCK(2)'
//	parafilectl status -remote host:port,... -file matrix -dims 256x256 \
//	    -dist '*,BLOCK(64)' -replication 2
//	parafilectl scrub  ... (same flags; exit 1 when replicas diverge)
//	parafilectl repair ... (same flags; heals divergent replicas)
//	parafilectl top    -debug host:port,...   (live op view per node)
//	parafilectl trace  -debug host:port <trace-id|op>
//
// The maintenance verbs reopen the file degraded — a dead daemon shows
// up as failed placements in status and scrub output instead of
// refusing the connection, which is exactly when you want to look.
//
// top and trace are thin clients of the /debug/trace endpoint every
// cmd's -metrics-addr serves: top summarises each endpoint's in-flight
// operations and recent stitched traces with the hottest node's share
// of the critical path; trace prints one full cross-node span tree,
// selected by 16-hex trace ID (as printed by top, slow-op log lines
// and partial-failure errors) or by op name (write, read,
// redistribute — newest match wins).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/hpf"
	"parafile/internal/match"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/rpc"
	"parafile/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafilectl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "describe":
		describe(os.Args[2:])
	case "match":
		matchCmd(os.Args[2:])
	case "rank":
		rankCmd(os.Args[2:])
	case "plan":
		planCmd(os.Args[2:])
	case "status":
		statusCmd(os.Args[2:])
	case "scrub":
		scrubCmd(os.Args[2:])
	case "repair":
		repairCmd(os.Args[2:])
	case "top":
		topCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: parafilectl describe|match|rank|plan|status|scrub|repair|top|trace [flags]")
	os.Exit(2)
}

// planCmd prints the communication schedule for redistributing an
// array between two distributions — the message lists a generated
// redistribution routine would post.
func planCmd(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	from := fs.String("from", "", "source distribution")
	to := fs.String("to", "", "destination distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	src := buildFile(*dims, *from, *elem)
	dst := buildFile(*dims, *to, *elem)
	plan, err := redist.NewPlan(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	length := src.Pattern.Size()
	sched, err := plan.BuildSchedule(length)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redistribution %s -> %s over %s (%d bytes)\n\n", *from, *to, *dims, length)
	fmt.Printf("%-8s %-8s %12s %10s\n", "from", "to", "bytes", "runs")
	for _, m := range sched.Messages {
		fmt.Printf("%-8d %-8d %12d %10d\n", m.From, m.To, m.Bytes, m.Runs)
	}
	fmt.Printf("\n%d messages, %d bytes total, max fan-out %d\n",
		len(sched.Messages), sched.TotalBytes(), sched.MaxFanOut())
}

func describe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions, e.g. 256x256")
	dist := fs.String("dist", "", "distribution, e.g. 'BLOCK(4),*'")
	elem := fs.Int64("elem", 1, "element size in bytes")
	draw := fs.Bool("viz", false, "render each element's byte selection (small arrays only)")
	fs.Parse(args)
	pat, err := hpf.Pattern(*dims, *dist, *elem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distribution %s of %s (%d-byte elements)\n", *dist, *dims, *elem)
	fmt.Printf("pattern: %d elements, %d bytes per repetition\n\n", pat.Len(), pat.Size())
	for e := 0; e < pat.Len(); e++ {
		el := pat.Element(e)
		fmt.Printf("  %-8s size %8d B   %6d segments   depth %d   %s\n",
			el.Name, el.Set.Size(), el.Set.SegmentCount(), el.Set.Depth(), el.Set)
	}
	if *draw {
		if pat.Size() > 512 {
			log.Fatal("-viz is limited to patterns of at most 512 bytes")
		}
		fmt.Println()
		fmt.Println(viz.Ruler(pat.Size()))
		for e := 0; e < pat.Len(); e++ {
			fmt.Printf("%s   %s\n", viz.RenderSet(pat.Element(e).Set, pat.Size()), pat.Element(e).Name)
		}
	}
}

// remoteFlags is the shared flag set of the maintenance verbs: where
// the daemons are, which file to open, and the file's geometry (the
// daemons store bytes, not metadata — the caller names the layout the
// file was created with).
type remoteFlags struct {
	remote *string
	file   *string
	dims   *string
	dist   *string
	elem   *int64
	nodes  *int
	repl   *int
	seg    *int64
	chunk  *int
	stream *bool
}

// clientConfig translates the streaming flags into the per-node client
// template.
func (rf *remoteFlags) clientConfig() rpc.ClientConfig {
	cfg := rpc.ClientConfig{ChunkSize: *rf.chunk << 10}
	if *rf.stream {
		cfg.StreamThreshold = -1
	}
	return cfg
}

func addRemoteFlags(fs *flag.FlagSet) *remoteFlags {
	return &remoteFlags{
		remote: fs.String("remote", "", "comma-separated parafiled endpoints (host:port,...)"),
		file:   fs.String("file", "", "file name as created on the daemons"),
		dims:   fs.String("dims", "", "array dimensions, e.g. 256x256"),
		dist:   fs.String("dist", "", "physical distribution the file was created with"),
		elem:   fs.Int64("elem", 1, "element size in bytes"),
		nodes:  fs.Int("nodes", 4, "I/O node count of the deployment"),
		repl:   fs.Int("replication", 1, "replica count the file was created with"),
		seg:    fs.Int64("seg-bytes", clusterfile.DefaultScrubSegmentBytes, "scrub segment granularity in bytes"),
		chunk:  fs.Int("chunk-kb", 0, "streamed-transfer wire chunk in KiB (0 = default 1024)"),
		stream: fs.Bool("no-stream", false, "disable proto-v3 chunked streaming (single-frame transfers)"),
	}
}

// openRemote reopens the named file on the daemons without truncation
// and degraded (dead daemons become failed placements, not a fatal
// dial), returning the file and a teardown closure.
func (rf *remoteFlags) openRemote() (*clusterfile.File, func()) {
	if *rf.remote == "" || *rf.file == "" {
		log.Fatal("need -remote and -file")
	}
	phys := buildFile(*rf.dims, *rf.dist, *rf.elem)
	tr, err := rpc.NewTransport(strings.Split(*rf.remote, ","), rpc.Options{
		Client:       rf.clientConfig(),
		Reopen:       true,
		DegradedOpen: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := clusterfile.DefaultConfig()
	cfg.IONodes = *rf.nodes
	cfg.Replication = *rf.repl
	cfg.Transport = tr
	c, err := clusterfile.New(cfg)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	f, err := c.CreateFile(*rf.file, phys, nil)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	return f, func() {
		f.Close()
		tr.Close()
	}
}

func statusCmd(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	ctx := context.Background()
	fmt.Printf("file %q: %d subfiles, replication %d\n\n", f.Name, f.Phys.Pattern.Len(), f.Replication)
	fmt.Printf("%-8s %-8s %-8s %-20s %s\n", "subfile", "replica", "node", "store", "length")
	failed := 0
	for s := 0; s < f.Phys.Pattern.Len(); s++ {
		for r := 0; r < f.Replication; r++ {
			length := "?"
			if n, err := f.ReplicaLen(ctx, r, s); err != nil {
				length = "FAILED: " + err.Error()
				failed++
			} else {
				length = fmt.Sprintf("%d", n)
			}
			fmt.Printf("%-8d %-8d %-8d %-20s %s\n",
				s, r, f.Placement[r][s], clusterfile.ReplicaName(f.Name, r), length)
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d placement(s) unreachable — scrub and repair once the node is back\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall placements reachable")
}

func scrubCmd(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	rep, err := f.ScrubSegments(context.Background(), *rf.seg)
	if err != nil {
		log.Fatal(err)
	}
	printScrub(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}

func repairCmd(args []string) {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	rf := addRemoteFlags(fs)
	fs.Parse(args)
	f, done := rf.openRemote()
	defer done()
	stats, rep, err := f.Repair(context.Background())
	if rep != nil {
		printScrub(rep)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep.Clean() {
		fmt.Println("nothing to repair")
		return
	}
	fmt.Printf("repaired %d replica(s) across %d subfile(s), %d bytes rewritten\n",
		stats.Replicas, stats.Subfiles, stats.Bytes)
}

func printScrub(rep *clusterfile.ScrubReport) {
	fmt.Printf("scrub: %d subfiles, %d segments, %d bytes checked\n",
		rep.Subfiles, rep.Segments, rep.Checked)
	if rep.Clean() {
		fmt.Println("all replicas agree")
		return
	}
	fmt.Printf("%d mismatching replica segment(s):\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		if m.Err != nil {
			fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): UNREADABLE: %v\n",
				m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Err)
			continue
		}
		fmt.Printf("  subfile %d replica %d (node %d) [%d,%d): crc %08x, want %08x\n",
			m.Subfile, m.Replica, m.IONode, m.Off, m.Off+m.Len, m.Got, m.Want)
	}
}

// topCmd summarises each endpoint's /debug/trace document: node name,
// in-flight operations, and the recent stitched trees with the node
// that owns the largest share of each trace's critical path.
func topCmd(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	debug := fs.String("debug", "", "comma-separated -metrics-addr endpoints to poll (host:port,...)")
	recent := fs.Int("n", 8, "recent traces to show per endpoint")
	fs.Parse(args)
	if *debug == "" {
		log.Fatal("need -debug host:port[,host:port...]")
	}
	for i, addr := range strings.Split(*debug, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		var dump obs.TraceDump
		if err := fetchTraceJSON(addr, "", &dump); err != nil {
			log.Fatal(err)
		}
		printDump(addr, &dump, *recent)
	}
}

func printDump(addr string, dump *obs.TraceDump, recent int) {
	fmt.Printf("%s  node %q", addr, dump.Node)
	if !dump.Enabled {
		fmt.Println("  (tracing disabled)")
		return
	}
	fmt.Println()
	fmt.Printf("  in-flight (%d):\n", len(dump.InFlight))
	for _, op := range dump.InFlight {
		fmt.Printf("    %016x  %-14s running %s\n", op.TraceID, op.Op, fmtNs(op.DurNs))
	}
	if len(dump.InFlight) == 0 {
		fmt.Println("    (none)")
	}
	trees := dump.Recent
	if len(trees) > recent {
		trees = trees[len(trees)-recent:]
	}
	fmt.Printf("  recent (%d of %d):\n", len(trees), len(dump.Recent))
	if len(trees) == 0 {
		fmt.Println("    (none)")
	}
	for _, tr := range trees {
		status := "ok"
		if tr.Err {
			status = "ERROR"
		}
		hot := "-"
		if len(tr.Shares) > 0 {
			hot = fmt.Sprintf("%s %.0f%%", tr.Shares[0].Node, tr.Shares[0].Pct)
		}
		fmt.Printf("    %016x  %-14s %10s  %-5s  hottest: %s\n",
			tr.TraceID, tr.Op, fmtNs(tr.DurNs), status, hot)
	}
}

// traceCmd prints one stitched cross-node span tree. A selector that
// parses as hex is tried as a trace ID first and falls back to an op
// name on a miss, so `trace write` works even though "ead" is hex.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	debug := fs.String("debug", "", "-metrics-addr endpoint to query (host:port)")
	fs.Parse(args)
	if *debug == "" || fs.NArg() != 1 {
		log.Fatal("usage: parafilectl trace -debug host:port <trace-id|op>")
	}
	sel := fs.Arg(0)
	var tree obs.TraceTree
	var err error
	if _, perr := strconv.ParseUint(sel, 16, 64); perr == nil {
		err = fetchTraceJSON(*debug, "id="+sel, &tree)
	} else {
		err = errNotFound
	}
	if err == errNotFound {
		err = fetchTraceJSON(*debug, "op="+url.QueryEscape(sel), &tree)
	}
	if err == errNotFound {
		log.Fatalf("no trace matching %q (try `parafilectl top -debug %s`)", sel, *debug)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree.Format())
}

var errNotFound = errors.New("trace not found")

// fetchTraceJSON GETs /debug/trace?format=json[&query] from an
// endpoint and decodes the document into out.
func fetchTraceJSON(addr, query string, out any) error {
	u := "http://" + addr + "/debug/trace?format=json"
	if query != "" {
		u += "&" + query
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func buildFile(dims, dist string, elem int64) *part.File {
	pat, err := hpf.Pattern(dims, dist, elem)
	if err != nil {
		log.Fatal(err)
	}
	return part.MustFile(0, pat)
}

func matchCmd(args []string) {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	physical := fs.String("physical", "", "physical (on-disk) distribution")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	lf := buildFile(*dims, *logical, *elem)
	pf := buildFile(*dims, *physical, *elem)
	d, err := match.Compute(lf, pf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical  %s\nphysical %s\n\n", *logical, *physical)
	fmt.Printf("matching degree: %.5f\n", d.Score)
	fmt.Printf("communication pairs: %d (%d fully contiguous)\n", d.Pairs, d.ContiguousPairs)
	fmt.Printf("contiguous runs per pattern period: %d (mean %0.f bytes)\n",
		d.RunsPerPeriod, d.MeanRunBytes)
	switch {
	case d.Score == 1:
		fmt.Println("verdict: optimal match — every access is one contiguous transfer")
	case d.Score > 0.1:
		fmt.Println("verdict: moderate match — some gather/scatter needed")
	default:
		fmt.Println("verdict: poor match — consider redistributing the file (see examples/clusterio)")
	}
}

func rankCmd(args []string) {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	dims := fs.String("dims", "", "array dimensions")
	logical := fs.String("logical", "", "logical (in-memory) distribution")
	candidates := fs.String("candidates", "", "semicolon-separated physical distributions")
	elem := fs.Int64("elem", 1, "element size in bytes")
	fs.Parse(args)
	lf := buildFile(*dims, *logical, *elem)
	var names []string
	var files []*part.File
	for _, c := range strings.Split(*candidates, ";") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		names = append(names, c)
		files = append(files, buildFile(*dims, c, *elem))
	}
	if len(files) == 0 {
		log.Fatal("no candidates given")
	}
	order, degrees, err := match.PredictRank(lf, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranking physical layouts for logical %s over %s:\n\n", *logical, *dims)
	for rank, i := range order {
		fmt.Printf("  %d. %-24s score %.5f  pairs %d  runs/period %d\n",
			rank+1, names[i], degrees[i].Score, degrees[i].Pairs, degrees[i].RunsPerPeriod)
	}
}

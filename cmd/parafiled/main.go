// Command parafiled is the parafile I/O-node daemon: it hosts subfile
// stores behind the internal/rpc wire protocol, so compute-node
// clients (clusterfsdemo -remote, or any clusterfile.Cluster with an
// rpc transport) can drive view-based scatter/gather writes, reads and
// redistributions over real TCP.
//
// Usage:
//
//	parafiled [-listen 127.0.0.1:7070] [-data-dir DIR]
//	          [-metrics-addr host:port] [-max-frame-mb 64]
//	          [-drain-timeout 10s]
//
// With -data-dir each subfile is a real file under the directory (the
// original Clusterfile I/O nodes' local disks); without it subfiles
// live in the daemon's memory. SIGTERM or SIGINT drains gracefully:
// the listener closes, in-flight requests finish (bounded by
// -drain-timeout), and every store is synced and closed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parafile/internal/obs"
	"parafile/internal/rpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafiled: ")
	listen := flag.String("listen", "127.0.0.1:7070", "TCP address to serve the I/O-node protocol on (:0 picks a free port)")
	dataDir := flag.String("data-dir", "", "store subfiles as real files in this directory (default: in-memory)")
	metricsAddr := flag.String("metrics-addr", "", "serve the RPC metrics over HTTP on this address (/metrics, /metrics.json, /report)")
	maxFrameMB := flag.Int64("max-frame-mb", 64, "maximum accepted frame size in MiB")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *maxFrameMB < 1 {
		log.Fatalf("-max-frame-mb %d must be at least 1", *maxFrameMB)
	}

	reg := obs.NewRegistry()
	srv := rpc.NewServer(rpc.ServerConfig{
		DataDir:  *dataDir,
		MaxFrame: *maxFrameMB << 20,
		Metrics:  reg,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	where := "in-memory subfiles"
	if *dataDir != "" {
		where = "subfiles under " + *dataDir
	}
	fmt.Fprintf(os.Stderr, "parafiled: listening on %s (%s)\n", ln.Addr(), where)

	var metricsShutdown func(context.Context) error
	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		metricsShutdown = shutdown
		fmt.Fprintf(os.Stderr, "parafiled: serving metrics on http://%s/metrics (also /metrics.json, /report)\n", addr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "parafiled: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if metricsShutdown != nil {
			if err := metricsShutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}
		<-serveErr
		fmt.Fprintln(os.Stderr, "parafiled: drained, bye")
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}
}

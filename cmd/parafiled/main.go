// Command parafiled is the parafile I/O-node daemon: it hosts subfile
// stores behind the internal/rpc wire protocol, so compute-node
// clients (clusterfsdemo -remote, or any clusterfile.Cluster with an
// rpc transport) can drive view-based scatter/gather writes, reads and
// redistributions over real TCP.
//
// Usage:
//
//	parafiled [-listen 127.0.0.1:7070] [-data-dir DIR]
//	          [-metrics-addr host:port] [-max-frame-mb 64]
//	          [-drain-timeout 10s] [-fault SPEC] [-fault-seed N]
//	          [-node NAME] [-trace] [-slow-op DUR]
//	          [-qos] [-qos-inflight N] [-qos-queue N] [-qos-mem-mb N]
//	          [-qos-wait DUR] [-qos-rate-mb F] [-qos-ops F]
//	          [-qos-tenants SPEC]
//
// With -data-dir each subfile is a real file under the directory (the
// original Clusterfile I/O nodes' local disks); without it subfiles
// live in the daemon's memory. -fault degrades the daemon on purpose
// with a deterministic connection-fault plan (see internal/fault), e.g.
// -fault error:0.01,delay:5ms — every accepted connection then fails
// reads/writes with probability 0.01 and delays each operation by 5ms,
// which is how the CI fault matrix and demos exercise partial-failure
// handling without test-only hooks. SIGTERM or SIGINT drains gracefully:
// the listener closes, in-flight requests finish (bounded by
// -drain-timeout), and every store is synced and closed before exit.
//
// Tracing is on by default (-trace=false turns it off): clients that
// negotiate FeatureTrace get server-side spans piggybacked on replies,
// -metrics-addr additionally serves /debug/trace and /debug/pprof/,
// -node labels this daemon's spans and structured log lines (default:
// the bound listen address), and -slow-op 50ms warns about any request
// slower than 50ms with its trace ID. `parafilectl top` and
// `parafilectl trace` read the /debug/trace endpoint.
//
// -qos turns on admission control: data-plane requests are bounded by
// -qos-inflight concurrent executions, -qos-mem-mb of in-flight
// request memory and a fair-share queue of -qos-queue waiters (shed
// oldest-write-first when it overflows, or after -qos-wait in queue),
// while control-plane requests (pings, stats, epoch fencing, metadata)
// bypass the queue so the cluster stays steerable under overload.
// -qos-rate-mb / -qos-ops set the default per-tenant token-bucket
// quotas (0 = unlimited) and -qos-tenants names per-tenant overrides
// with the internal/qos grammar name:weight[:mbps[:ops]], e.g.
// -qos-tenants gold:4,bulk:1:8. Shed requests answer with a typed
// overloaded error carrying a retry-after hint; clients back off
// without tripping circuit breakers. -metrics-addr then also serves
// /debug/qos (text, ?format=json) — `parafilectl qos` reads it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/qos"
	"parafile/internal/rpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parafiled: ")
	listen := flag.String("listen", "127.0.0.1:7070", "TCP address to serve the I/O-node protocol on (:0 picks a free port)")
	dataDir := flag.String("data-dir", "", "store subfiles as real files in this directory (default: in-memory)")
	metricsAddr := flag.String("metrics-addr", "", "serve the RPC metrics over HTTP on this address (/metrics, /metrics.json, /report)")
	maxFrameMB := flag.Int64("max-frame-mb", 64, "maximum accepted frame size in MiB")
	maxProto := flag.Int("max-proto", 0, "cap the negotiated protocol version (0 = newest; 2 disables streaming/multiplexing, 1 also disables checksums)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	faultSpec := flag.String("fault", "", "inject connection faults, e.g. error:0.01,delay:5ms (kinds: error, error-once, delay, corrupt, failafter)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault schedules (reproducible runs)")
	nodeName := flag.String("node", "", "node label stamped on this daemon's trace spans and log lines (default: the listen address)")
	trace := flag.Bool("trace", true, "grant FeatureTrace to clients and record server-side spans (off: byte-identical v2/v3 wire behavior)")
	slowOp := flag.Duration("slow-op", 0, "log a structured warning for server requests slower than this (0 disables)")
	qosOn := flag.Bool("qos", false, "enable admission control and fair-share scheduling on the data plane")
	qosInflight := flag.Int("qos-inflight", 0, "max concurrently executing data-plane requests (0 = default 256)")
	qosQueue := flag.Int("qos-queue", 0, "max queued data-plane requests before shedding (0 = default 4x inflight)")
	qosMemMB := flag.Int64("qos-mem-mb", 0, "in-flight request memory budget in MiB (0 = default 256)")
	qosWait := flag.Duration("qos-wait", 0, "max queue residence before a request is shed (0 = default 1s)")
	qosRateMB := flag.Float64("qos-rate-mb", 0, "default per-tenant byte quota in MiB/s (0 = unlimited)")
	qosOps := flag.Float64("qos-ops", 0, "default per-tenant operation quota per second (0 = unlimited)")
	qosTenants := flag.String("qos-tenants", "", "per-tenant overrides, e.g. gold:4,bulk:1:8 (name:weight[:mbps[:ops]])")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *maxFrameMB < 1 {
		log.Fatalf("-max-frame-mb %d must be at least 1", *maxFrameMB)
	}
	if *maxProto < 0 || *maxProto > rpc.MaxProtoVersion {
		log.Fatalf("-max-proto %d must be between 0 and %d", *maxProto, rpc.MaxProtoVersion)
	}

	reg := obs.NewRegistry()

	var limiter *qos.Limiter
	if *qosOn {
		tenants, err := qos.ParseTenants(*qosTenants)
		if err != nil {
			log.Fatal(err)
		}
		limiter = qos.NewLimiter(qos.Config{
			MaxInFlight: *qosInflight,
			MaxQueue:    *qosQueue,
			MemoryBytes: *qosMemMB << 20,
			MaxWait:     *qosWait,
			DefaultLimit: qos.TenantLimit{
				Weight:      1,
				BytesPerSec: *qosRateMB * (1 << 20),
				OpsPerSec:   *qosOps,
			},
			Tenants: tenants,
			Metrics: reg,
		})
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	node := *nodeName
	if node == "" {
		node = ln.Addr().String()
	}
	var tracer *obs.Tracer
	var slogger *slog.Logger
	if *trace {
		tracer = obs.NewTracer(node, 64)
		slogger = obs.NewLogger(os.Stderr, node)
	}
	srv := rpc.NewServer(rpc.ServerConfig{
		DataDir:         *dataDir,
		MaxFrame:        *maxFrameMB << 20,
		MaxProtoVersion: *maxProto,
		Metrics:         reg,
		Trace:           *trace,
		Node:            node,
		Tracer:          tracer,
		Log:             slogger,
		SlowOp:          *slowOp,
		QoS:             limiter,
	})
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatal(err)
		}
		ln = fault.NewInjector(plan, reg).WrapListener(ln)
		fmt.Fprintf(os.Stderr, "parafiled: FAULT INJECTION ACTIVE (%s, seed %d)\n", *faultSpec, *faultSeed)
	}
	where := "in-memory subfiles"
	if *dataDir != "" {
		where = "subfiles under " + *dataDir
	}
	fmt.Fprintf(os.Stderr, "parafiled: listening on %s (%s)\n", ln.Addr(), where)

	var metricsShutdown func(context.Context) error
	if *metricsAddr != "" {
		var extra []obs.DebugEndpoint
		if limiter != nil {
			extra = append(extra, obs.DebugEndpoint{
				Path: "/debug/qos",
				JSON: func() any { return limiter.Status() },
				Text: func() string { return limiter.Status().Format() },
			})
		}
		addr, shutdown, err := obs.ServeWith(*metricsAddr, reg, tracer, extra...)
		if err != nil {
			log.Fatal(err)
		}
		metricsShutdown = shutdown
		fmt.Fprintf(os.Stderr, "parafiled: serving metrics on http://%s/metrics (also /metrics.json, /report)\n", addr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "parafiled: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// A failed drain means data may not have reached the stores
		// (Sync/Close errors surface here) — that must flip the exit
		// code, not vanish into the log.
		failed := false
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
			failed = true
		}
		if metricsShutdown != nil {
			if err := metricsShutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
				failed = true
			}
		}
		<-serveErr
		if failed {
			log.Fatal("drain failed")
		}
		fmt.Fprintln(os.Stderr, "parafiled: drained, bye")
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}
}

// Command redistbench regenerates the evaluation tables of §8.2 —
// Table 1 (write time breakdown at a compute node) and Table 2
// (scatter time at an I/O node) — on the simulated Clusterfile
// deployment, printing each value beside the paper's published number.
// With -json it instead runs the loopback-TCP throughput benchmark
// (streamed vs monolithic wire ablation plus the redistribution
// pipeline) and writes the machine-readable record that BENCH_6.json
// is produced from.
//
// Usage:
//
//	redistbench [-table 1|2|match|read|ablation|all] [-sizes 256,512,1024,2048]
//	            [-reps 3] [-workers 0] [-plancache] [-metrics-addr host:port]
//	redistbench -json out.json [-short] [-metrics-addr host:port]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"parafile/internal/bench"
	"parafile/internal/match"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("redistbench: ")
	table := flag.String("table", "all", "which table to regenerate: 1, 2, match, read, ablation or all")
	sizesArg := flag.String("sizes", "256,512,1024,2048", "comma-separated matrix sizes")
	reps := flag.Int("reps", 3, "repetitions per configuration (real timings are averaged)")
	workers := flag.Int("workers", 0, "plan compilation workers for the ablation table (0 = GOMAXPROCS)")
	planCache := flag.Bool("plancache", false,
		"share an intersection cache across repetitions; t_i then shows the amortized (warm) cost instead of the paper's cold cost")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the collected metrics over HTTP on this address after the run (/metrics Prometheus text, /metrics.json JSON, /report table, /debug/pprof profiles, /debug/trace); keeps the process alive")
	jsonOut := flag.String("json", "",
		"run the throughput benchmark instead of the tables and write the JSON report to this path (\"-\" for stdout)")
	short := flag.Bool("short", false, "shrink the -json benchmark to CI smoke-test scale")
	flag.Parse()

	// Fail fast on malformed invocations before any benchmarking: a
	// leftover positional argument means a flag was mistyped (the flag
	// package stops parsing at the first non-flag), and an explicit
	// -workers 0 with the ablation table would silently measure the
	// GOMAXPROCS default instead of what the user asked for.
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q — flags must precede all values; run with -h for usage", flag.Args())
	}
	if *jsonOut != "" {
		if err := runThroughputJSON(*jsonOut, *short, *metricsAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	switch *table {
	case "1", "2", "match", "read", "ablation", "all":
	default:
		log.Fatalf("unknown table %q (want 1, 2, match, read, ablation or all)", *table)
	}
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	if (*table == "ablation" || *table == "all") && workersSet && *workers <= 0 {
		log.Fatalf("-workers must be positive when set explicitly (got %d); omit the flag to use GOMAXPROCS", *workers)
	}

	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		log.Fatal(err)
	}
	if *reps < 1 {
		log.Fatal("reps must be positive")
	}

	reg := obs.NewRegistry()
	opts := bench.Options{Metrics: reg}
	if *planCache {
		vc := redist.NewPairCache(redist.DefaultCacheCapacity)
		vc.Instrument(reg)
		opts.ViewCache = vc
	}
	// The match and read tables only need the cluster benchmark for
	// context; the ablation table does not need it at all.
	var t1 []bench.Table1Row
	var t2 []bench.Table2Row
	if *table != "read" && *table != "ablation" {
		t1, t2, err = runAveraged(sizes, *reps, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	switch *table {
	case "1":
		fmt.Print(bench.FormatTable1(t1))
	case "2":
		fmt.Print(bench.FormatTable2(t2))
	case "match":
		if err := printMatchTable(sizes, t1); err != nil {
			log.Fatal(err)
		}
	case "read":
		if err := printReadTable(sizes); err != nil {
			log.Fatal(err)
		}
	case "ablation":
		if err := printAblationTable(sizes, *workers, reg); err != nil {
			log.Fatal(err)
		}
	case "all":
		fmt.Print(bench.FormatTable1(t1))
		fmt.Println()
		fmt.Print(bench.FormatTable2(t2))
		fmt.Println()
		if err := printMatchTable(sizes, t1); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := printAblationTable(sizes, *workers, reg); err != nil {
			log.Fatal(err)
		}
	}
	if rep := obs.Report(reg); rep != "" {
		fmt.Println()
		fmt.Print(rep)
	}
	fmt.Fprintln(os.Stderr,
		"\nnote: t_i, t_m and real(host) are wall-clock on this machine; t_g, t_net and t_sc\n"+
			"come from the era-calibrated cost models (Myrinet/IDE, 2002) — compare shapes, not\n"+
			"absolute host-dependent values.")

	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		// The bound address goes to stderr in a greppable form so
		// scripts can use ":0" and discover the port.
		fmt.Fprintf(os.Stderr, "redistbench: serving metrics on http://%s/metrics (also /metrics.json, /report); interrupt to exit\n", addr)
		waitAndShutdown(shutdown)
	}
}

// waitAndShutdown blocks until SIGINT/SIGTERM, then drains the metrics
// server gracefully so in-flight exposition requests are not cut off
// by process exit.
func waitAndShutdown(shutdown func(context.Context) error) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		log.Printf("metrics shutdown: %v", err)
	}
}

// runThroughputJSON runs the loopback-TCP throughput benchmark and
// writes the JSON record. When a metrics address is given, the server
// starts before the run (live series while it executes) and is flushed
// and closed before the final report is emitted, so a short run never
// races exposition against exit.
func runThroughputJSON(path string, short bool, metricsAddr string) error {
	reg := obs.NewRegistry()
	var shutdown func(context.Context) error
	if metricsAddr != "" {
		addr, stop, err := obs.Serve(metricsAddr, reg)
		if err != nil {
			return err
		}
		shutdown = stop
		fmt.Fprintf(os.Stderr, "redistbench: serving live metrics on http://%s/metrics during the run\n", addr)
	}
	rep, err := bench.RunThroughput(bench.ThroughputOptions{Short: short, Metrics: reg})
	if err != nil {
		return err
	}
	if shutdown != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			return fmt.Errorf("metrics shutdown: %w", err)
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
	} else {
		err = os.WriteFile(path, out, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"redistbench: wire write %.2fx, read %.2fx; redistribute %.2fx streamed vs monolithic; byte-identical=%v\n",
		rep.WriteSpeedup, rep.ReadSpeedup, rep.RedistSpeedup, rep.ByteIdentical)
	return nil
}

// printMatchTable prints the §9 "future work" extension: the
// quantitative matching degree of each configuration next to the write
// time it predicts.
func printMatchTable(sizes []int64, t1 []bench.Table1Row) error {
	fmt.Println("Matching degree (the paper's §9 future work) vs regenerated t_net^bc:")
	fmt.Printf("%-6s %-4s %-4s %10s %8s %12s %14s %12s\n",
		"Size", "Ph.", "Lo.", "score", "pairs", "runs/period", "mean run (B)", "t_net^bc µs")
	idx := map[[2]interface{}]bench.Table1Row{}
	for _, r := range t1 {
		idx[[2]interface{}{r.Size, r.Phys}] = r
	}
	for _, n := range sizes {
		lp, err := bench.LayoutPattern("r", n)
		if err != nil {
			return err
		}
		logical := part.MustFile(0, lp)
		for _, phys := range bench.Layouts {
			pp, err := bench.LayoutPattern(phys, n)
			if err != nil {
				return err
			}
			d, err := match.Compute(logical, part.MustFile(0, pp))
			if err != nil {
				return err
			}
			r := idx[[2]interface{}{n, phys}]
			fmt.Printf("%-6d %-4s %-4s %10.5f %8d %12d %14.0f %12.0f\n",
				n, phys, "r", d.Score, d.Pairs, d.RunsPerPeriod, d.MeanRunBytes, r.TNetBcUs)
		}
	}
	return nil
}

// printReadTable prints the read-path extension experiment: §8.2 says
// the benchmark "writes and reads" the matrix, but only the write
// breakdown is published; this regenerates the symmetric read.
func printReadTable(sizes []int64) error {
	fmt.Println("Read path (extension — not tabulated in the paper):")
	fmt.Printf("%-6s %-4s %-4s %10s %12s %10s\n", "Size", "Ph.", "Lo.", "t_m µs", "t_net µs", "msgs")
	for _, n := range sizes {
		for _, phys := range bench.Layouts {
			row, err := bench.RunReadConfig(phys, n)
			if err != nil {
				return err
			}
			fmt.Printf("%-6d %-4s %-4s %10.1f %12.0f %10d\n",
				n, phys, "r", row.TMapUs, row.TNetUs, row.Messages)
		}
	}
	return nil
}

// printAblationTable prints the plan-compilation ablation: sequential
// vs parallel compile, cold vs warm cache lookup, and the coalescing
// segment reduction.
func printAblationTable(sizes []int64, workers int, reg *obs.Registry) error {
	rows, err := bench.RunPlanAblationObs(sizes, workers, reg, nil)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatPlanAblation(rows))
	return nil
}

func parseSizes(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", f, err)
		}
		if n < 4 || n%4 != 0 {
			return nil, fmt.Errorf("size %d must be a positive multiple of 4", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

// runAveraged repeats each configuration and averages the real (host)
// timings; the modeled virtual times are deterministic and identical
// across repetitions.
func runAveraged(sizes []int64, reps int, opts bench.Options) ([]bench.Table1Row, []bench.Table2Row, error) {
	var t1 []bench.Table1Row
	var t2 []bench.Table2Row
	for _, n := range sizes {
		for _, phys := range bench.Layouts {
			var acc1 bench.Table1Row
			var acc2 bench.Table2Row
			for r := 0; r < reps; r++ {
				r1, r2, err := bench.RunConfigOpts(phys, n, opts)
				if err != nil {
					return nil, nil, err
				}
				acc1.Size, acc1.Phys = r1.Size, r1.Phys
				acc1.TIntersectUs += r1.TIntersectUs / float64(reps)
				acc1.TMapUs += r1.TMapUs / float64(reps)
				acc1.TGatherRealUs += r1.TGatherRealUs / float64(reps)
				acc1.TGatherUs = r1.TGatherUs
				acc1.TNetBcUs = r1.TNetBcUs
				acc1.TNetDiskUs = r1.TNetDiskUs
				acc2.Size, acc2.Phys = r2.Size, r2.Phys
				acc2.ScBcUs = r2.ScBcUs
				acc2.ScDiskUs = r2.ScDiskUs
				acc2.ScRealUs += r2.ScRealUs / float64(reps)
			}
			t1 = append(t1, acc1)
			t2 = append(t2, acc2)
		}
	}
	return t1, t2, nil
}

// Command clusterfsdemo runs a small Clusterfile deployment
// end-to-end and prints the write-path trace of the paper's Figure 5:
// four compute nodes with row-block views writing a matrix into a
// column-block physical partition, with the per-phase breakdown.
//
// Usage:
//
//	clusterfsdemo [-n 256] [-phys c|b|r] [-mode bc|disk] [-report]
//	              [-spans] [-metrics-addr host:port]
//	              [-remote host:port,...] [-redist]
//	              [-replication R] [-write-quorum Q]
//	              [-op-trace] [-slow-op DUR]
//
// With -remote the subfile bytes live on parafiled I/O-node daemons
// reached over real TCP (I/O nodes map onto the endpoints
// round-robin); without it they live in-process. Either way the same
// protocol runs and the verification is byte-for-byte.
//
// -op-trace turns on distributed tracing: every write/read/
// redistribute gets a 64-bit trace ID, the daemons' server-side spans
// come back over the wire, and the stitched cross-node trees print
// after the run (also served on -metrics-addr under /debug/trace).
// -slow-op 50ms logs a structured warning, with the trace ID, for any
// op slower than 50ms.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/meta"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/rpc"
	"parafile/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clusterfsdemo: ")
	n := flag.Int64("n", 256, "matrix side in bytes (multiple of 4)")
	phys := flag.String("phys", "c", "physical layout: c (columns), b (square blocks), r (rows)")
	mode := flag.String("mode", "bc", "write mode: bc (buffer cache) or disk")
	dir := flag.String("dir", "", "store subfiles as real files in this directory (default: in-memory)")
	remote := flag.String("remote", "", "comma-separated parafiled endpoints (host:port,...); subfile bytes live on the daemons instead of in-process")
	metaAddr := flag.String("meta", "", "parafilemd metadata endpoint(s), host:port[,host:port...]; open by name through the namespace, write a deterministic pattern and verify it (ignores the workload flags)")
	metaFile := flag.String("meta-file", "demo", "file name in the metadata namespace for -meta")
	metaVerify := flag.Bool("meta-verify", false, "with -meta: skip the write and only verify the pattern a previous run wrote — proves the bytes survived a rebalance untouched")
	replication := flag.Int("replication", 1, "materialize every subfile on this many I/O nodes (reads fail over, writes fan out)")
	writeQuorum := flag.Int("write-quorum", 0, "replica acks a subfile's write needs (0 = all replicas); a smaller quorum keeps writes available while a node is down")
	chunkKB := flag.Int("chunk-kb", 0, "streamed-transfer wire chunk in KiB for -remote (0 = default 1024)")
	noStream := flag.Bool("no-stream", false, "disable proto-v3 chunked streaming for -remote (single-frame transfers)")
	doRedist := flag.Bool("redist", false, "after the read-back, redistribute the file to a row-block layout and verify it")
	trace := flag.Bool("trace", false, "print the virtual-time event trace of the write")
	opTrace := flag.Bool("op-trace", false, "distributed tracing: stitch per-op cross-node span trees (client + daemon spans with -remote) and print them after the run")
	slowOp := flag.Duration("slow-op", 0, "log a structured warning for client ops slower than this (0 disables; implies -op-trace IDs on the log lines)")
	report := flag.Bool("report", false, "print the collected metrics as a table after the run")
	spans := flag.Bool("spans", false, "print the wall-clock span tree of the run")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the collected metrics over HTTP on this address after the run (/metrics Prometheus text, /metrics.json JSON, /report table, /debug/pprof profiles, /debug/trace); keeps the process alive")
	flag.Parse()

	if *n < 4 || *n%4 != 0 {
		log.Fatalf("matrix side %d must be a positive multiple of 4", *n)
	}
	if *metaAddr != "" {
		if err := metaDemo(*metaAddr, *metaFile, *n**n, *replication, *metaVerify); err != nil {
			log.Fatal(err)
		}
		return
	}
	wmode := clusterfile.ToBufferCache
	if *mode == "disk" {
		wmode = clusterfile.ToDisk
	} else if *mode != "bc" {
		log.Fatalf("unknown mode %q", *mode)
	}

	if *remote != "" && *dir != "" {
		log.Fatal("-remote and -dir are mutually exclusive: with -remote the daemons own the storage")
	}

	reg := obs.NewRegistry()
	root := obs.StartSpan("clusterfsdemo")
	cfg := clusterfile.DefaultConfig()
	cfg.Metrics = reg
	cfg.Trace = root
	cfg.Replication = *replication
	cfg.WriteQuorum = *writeQuorum
	var opTracer *obs.Tracer
	if *opTrace || *slowOp > 0 {
		opTracer = obs.NewTracer("client", 32)
		cfg.Tracer = opTracer
		cfg.Log = obs.NewLogger(os.Stderr, "client")
		cfg.SlowOpThreshold = *slowOp
	}
	if *dir != "" {
		cfg.Storage = clusterfile.DirStorageFactory(*dir)
	}
	where := "in-memory subfiles"
	if *dir != "" {
		where = "subfiles under " + *dir
	}
	if *remote != "" {
		endpoints := strings.Split(*remote, ",")
		// With replication the replica layer can work around an
		// unreachable daemon, so open degraded instead of refusing the
		// whole cluster; unreplicated files keep the strict open.
		client := rpc.ClientConfig{ChunkSize: *chunkKB << 10, Trace: opTracer != nil}
		if *noStream {
			client.StreamThreshold = -1
		}
		tr, err := rpc.NewTransport(endpoints, rpc.Options{Client: client, Metrics: reg, DegradedOpen: *replication > 1})
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		cfg.Transport = tr
		where = fmt.Sprintf("subfiles on %d parafiled daemon(s) at %s", len(endpoints), *remote)
	}
	w, err := bench.NewWorkloadWithConfig(*phys, *n, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Clusterfile demo: %d×%d byte matrix, physical layout %q, logical row blocks\n",
		*n, *n, *phys)
	if *replication > 1 {
		where += fmt.Sprintf(", %d-way replicated", *replication)
	}
	fmt.Printf("cluster: 4 compute nodes + 4 I/O nodes (Myrinet/IDE 2002 cost models), %s\n\n", where)

	fmt.Println("View set (intersections + projections, computed once):")
	for i, v := range w.Views {
		fmt.Printf("  compute node %d: view overlaps subfiles %v, t_i = %v\n",
			i, v.Subfiles(), v.TIntersect)
	}

	var tracer *sim.Tracer
	if *trace {
		tracer = w.Cluster.EnableTrace()
	}
	ops, err := w.WriteAll(wmode)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		fmt.Println("\nVirtual-time trace of the write:")
		fmt.Print(tracer.Format())
	}
	fmt.Printf("\nWrite operation (mode %s):\n", wmode)
	for i, op := range ops {
		if op.Err != nil {
			log.Fatalf("node %d write: %v", i, op.Err)
		}
		s := op.Stats
		fmt.Printf("  node %d: t_m=%v  t_g(model)=%dµs  msgs=%d (%d bytes, %d zero-copy)  t_net=%dµs\n",
			i, s.TMap, s.GatherModelNs/sim.Microsecond, s.Messages, s.BytesSent,
			s.ContiguousSends, s.TNet/sim.Microsecond)
		if op.Degraded != nil {
			fmt.Printf("  node %d: degraded (quorum met, stale placements remain): %v\n", i, op.Degraded)
		}
	}

	// Verify the file content byte-for-byte.
	if err := verifyFile(w.File, w.Img, *n**n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverification: all %d bytes of the matrix landed in the right subfile positions\n",
		*n**n)

	// Read everything back through the views.
	per := *n * *n / 4
	for i, v := range w.Views {
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			log.Fatal(err)
		}
		w.Cluster.RunAll()
		if op.Err != nil {
			log.Fatal(op.Err)
		}
		for j := range out {
			if out[j] != w.ViewBuf(i)[j] {
				log.Fatalf("read-back mismatch at node %d byte %d", i, j)
			}
		}
	}
	fmt.Println("read-back: every compute node read its view back intact")

	if *doRedist {
		rowPat, err := bench.LayoutPattern("r", *n)
		if err != nil {
			log.Fatal(err)
		}
		nf, rop, err := w.Cluster.StartRedistribute(w.File, "matrix.v2", part.MustFile(0, rowPat), nil, *n**n)
		if err != nil {
			log.Fatal(err)
		}
		w.Cluster.RunAll()
		if rop.Err != nil {
			log.Fatal(rop.Err)
		}
		if err := verifyFile(nf, w.Img, *n**n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("redistribute: %q → row-block layout, %d msgs (%d bytes) I/O node to I/O node, verified byte-for-byte\n",
			"matrix.v2", rop.Stats.Messages, rop.Stats.Bytes)
		if err := nf.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if err := w.File.Close(); err != nil {
		log.Fatal(err)
	}

	root.End()
	if *report {
		fmt.Println()
		fmt.Print(obs.Report(reg))
	}
	if *spans {
		fmt.Println("\nWall-clock spans of the run:")
		fmt.Print(root.Format())
	}
	if *opTrace {
		fmt.Println("\nDistributed traces (per-op cross-node span trees):")
		for _, tree := range opTracer.Recent() {
			fmt.Print(tree.Format())
		}
	}
	if *metricsAddr != "" {
		addr, _, err := obs.ServeWith(*metricsAddr, reg, opTracer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clusterfsdemo: serving metrics on http://%s/metrics (also /metrics.json, /report); interrupt to exit\n", addr)
		select {}
	}
}

// metaDemo exercises the metadata-managed path: open (or create) a
// file by name at the metadata service, write a deterministic pattern
// through the cached placement map, read it back and verify. Run it
// before and after `parafilectl add-node`/`drain-node` to check a
// rebalance kept every byte: the pattern is a pure function of the
// offset, so any tear or misplacement shows up as a mismatch.
func metaDemo(addr, name string, size int64, replication int, verifyOnly bool) error {
	ctx := context.Background()
	cl := meta.Dial(addr, meta.Options{Metrics: obs.NewRegistry()})
	defer cl.Close()
	f, err := cl.Open(ctx, name)
	if errors.Is(err, rpc.ErrUnknownFile) && !verifyOnly {
		f, err = cl.Create(ctx, name, 0, replication)
	}
	if err != nil {
		return err
	}
	defer f.Close()
	p := f.Placement()
	fmt.Printf("metadata file %q: epoch %d, %d subfiles x %d B stripes, replication %d\n",
		p.Name, p.Epoch, len(p.Assign), p.StripeBytes, p.Replication)
	fmt.Printf("nodes: %s\n", strings.Join(p.Nodes, ", "))

	buf := make([]byte, size)
	for i := range buf {
		buf[i] = demoByte(int64(i))
	}
	if !verifyOnly {
		if err := f.WriteAt(ctx, buf, 0); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	} else if f.Length() < size {
		return fmt.Errorf("verify: file is %d bytes, want at least %d — run once without -meta-verify first", f.Length(), size)
	}
	out := make([]byte, size)
	if err := f.ReadAt(ctx, out, 0); err != nil {
		return fmt.Errorf("read: %w", err)
	}
	for i := range out {
		if out[i] != buf[i] {
			return fmt.Errorf("verification FAILED at byte %d: got %#x want %#x", i, out[i], buf[i])
		}
	}
	if verifyOnly {
		fmt.Printf("verified: %d bytes read back intact at epoch %d, no rewrite\n",
			size, f.Placement().Epoch)
	} else {
		fmt.Printf("verified: %d bytes written and read back intact through epoch %d\n",
			size, f.Placement().Epoch)
	}
	return nil
}

// demoByte is the deterministic pattern byte at a file offset.
func demoByte(off int64) byte { return byte(off*131 + 7) }

// verifyFile joins the stored subfiles (local or fetched from the
// daemons) and compares them byte-for-byte against the written image.
func verifyFile(f *clusterfile.File, want []byte, length int64) error {
	bufs := make([][]byte, f.Phys.Pattern.Len())
	for i := range bufs {
		b, err := f.ReadSubfile(i)
		if err != nil {
			return err
		}
		bufs[i] = b
	}
	img, err := redist.JoinFile(f.Phys, bufs, length)
	if err != nil {
		return err
	}
	for i := range img {
		if img[i] != want[i] {
			return fmt.Errorf("verification FAILED at byte %d", i)
		}
	}
	return nil
}

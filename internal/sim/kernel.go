// Package sim provides a small discrete-event simulation kernel: a
// virtual clock, an ordered event queue, and serialized resources.
//
// The Clusterfile case study (§8) was measured on a 2002 cluster
// (Pentium III, Myrinet, IDE disks). This repository reproduces the
// algorithmic phases of the protocol with real computation and real
// buffers, and reproduces the network and disk phases with a cost
// model driven by this kernel, so that the evaluation tables can be
// regenerated deterministically on any machine.
package sim

import (
	"container/heap"
	"fmt"
)

// Kernel is a discrete-event simulator with a virtual clock counted in
// nanoseconds.
type Kernel struct {
	now    int64
	seq    int64
	events eventHeap
}

type event struct {
	at  int64
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewKernel returns a kernel with the clock at zero and no pending
// events.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// At schedules fn to run at virtual time t. Scheduling in the past
// panics: it indicates a broken cost model, not a recoverable
// condition.
func (k *Kernel) At(t int64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// Step runs the next pending event, advancing the clock to its time.
// It reports whether an event was run.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains and returns the final
// virtual time.
func (k *Kernel) Run() int64 {
	for k.Step() {
	}
	return k.now
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Resource is a FIFO-serialized facility (a NIC, a disk arm): jobs
// submitted to it run one after another, each occupying the resource
// for its duration.
type Resource struct {
	k      *Kernel
	freeAt int64
	busy   int64 // accumulated busy nanoseconds
}

// NewResource creates a resource on the kernel.
func NewResource(k *Kernel) *Resource { return &Resource{k: k} }

// Acquire submits a job of duration d arriving now. It returns the
// virtual start and end times and, when fn is non-nil, schedules fn at
// the end time.
func (r *Resource) Acquire(d int64, fn func()) (start, end int64) {
	if d < 0 {
		d = 0
	}
	start = r.k.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + d
	r.freeAt = end
	r.busy += d
	if fn != nil {
		r.k.At(end, fn)
	}
	return start, end
}

// Busy returns the accumulated busy time of the resource.
func (r *Resource) Busy() int64 { return r.busy }

// FreeAt returns the earliest time a new job could start.
func (r *Resource) FreeAt() int64 {
	if r.freeAt < r.k.now {
		return r.k.now
	}
	return r.freeAt
}

// Convenience duration constructors (nanoseconds).
const (
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)

// TransferTime returns the time to move n bytes at the given
// bandwidth (bytes/second), rounded up to whole nanoseconds.
func TransferTime(n, bytesPerSec int64) int64 {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return (n*Second + bytesPerSec - 1) / bytesPerSec
}

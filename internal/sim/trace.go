package sim

import (
	"fmt"
	"sort"
	"strings"
)

// trace.go records virtual-time event traces: what happened on which
// actor at which simulated instant. Subsystems call Record; tools
// render the timeline to explain where an operation's time went.

// TraceEvent is one recorded occurrence.
type TraceEvent struct {
	At     int64 // virtual nanoseconds
	Actor  string
	Action string
}

// Tracer collects trace events. A nil *Tracer is valid and records
// nothing, so call sites need no guards.
type Tracer struct {
	events []TraceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Record appends an event; no-op on a nil tracer.
func (t *Tracer) Record(at int64, actor, action string) {
	if t == nil {
		return
	}
	t.events = append(t.events, TraceEvent{At: at, Actor: actor, Action: action})
}

// Recordf is Record with formatting.
func (t *Tracer) Recordf(at int64, actor, format string, args ...interface{}) {
	if t == nil {
		return
	}
	t.Record(at, actor, fmt.Sprintf(format, args...))
}

// Events returns the recorded events sorted by time (stable for ties).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	out := append([]TraceEvent(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Format renders the timeline, one event per line, times in
// microseconds.
func (t *Tracer) Format() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%10.1fµs  %-12s %s\n", float64(e.At)/float64(Microsecond), e.Actor, e.Action)
	}
	return b.String()
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	end := k.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of submission order: %v", order)
		}
	}
}

func TestKernelChainedEvents(t *testing.T) {
	k := NewKernel()
	var times []int64
	var step func()
	step = func() {
		times = append(times, k.Now())
		if len(times) < 4 {
			k.After(7, step)
		}
	}
	k.After(0, step)
	k.Run()
	want := []int64{0, 7, 14, 21}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("chained times = %v, want %v", times, want)
		}
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelNegativeAfterClamps(t *testing.T) {
	k := NewKernel()
	ran := false
	k.After(-100, func() { ran = true })
	k.Run()
	if !ran {
		t.Error("negative After never ran")
	}
	if k.Now() != 0 {
		t.Errorf("clock = %d, want 0", k.Now())
	}
}

func TestResourceSerialization(t *testing.T) {
	k := NewKernel()
	r := NewResource(k)
	// Three jobs submitted at time 0 run back to back.
	var ends []int64
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			_, end := r.Acquire(10, nil)
			ends = append(ends, end)
		}
	})
	k.Run()
	want := []int64{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("resource ends = %v, want %v", ends, want)
		}
	}
	if r.Busy() != 30 {
		t.Errorf("busy = %d, want 30", r.Busy())
	}
}

func TestResourceIdleGap(t *testing.T) {
	k := NewKernel()
	r := NewResource(k)
	k.At(0, func() { r.Acquire(5, nil) })
	k.At(100, func() {
		start, end := r.Acquire(5, nil)
		if start != 100 || end != 105 {
			t.Errorf("job after idle gap: start=%d end=%d, want 100, 105", start, end)
		}
	})
	k.Run()
}

func TestResourceCompletionCallback(t *testing.T) {
	k := NewKernel()
	r := NewResource(k)
	var doneAt int64 = -1
	k.At(0, func() {
		r.Acquire(25, func() { doneAt = k.Now() })
	})
	k.Run()
	if doneAt != 25 {
		t.Errorf("completion at %d, want 25", doneAt)
	}
}

func TestTransferTime(t *testing.T) {
	cases := []struct{ n, bw, want int64 }{
		{1000, 1000, Second},
		{0, 1000, 0},
		{-5, 1000, 0},
		{1000, 0, 0},
		{1, 1_000_000_000, 1},
		{3, 2_000_000_000, 2}, // rounds up
	}
	for _, c := range cases {
		if got := TransferTime(c.n, c.bw); got != c.want {
			t.Errorf("TransferTime(%d,%d) = %d, want %d", c.n, c.bw, got, c.want)
		}
	}
}

// TestPropertyEventOrder: random event times always execute in
// non-decreasing time order with FIFO ties.
func TestPropertyEventOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for iter := 0; iter < 50; iter++ {
		k := NewKernel()
		var ts []int64
		var ran []int64
		for i := 0; i < 100; i++ {
			at := rng.Int63n(50)
			ts = append(ts, at)
			k.At(at, func() { ran = append(ran, k.Now()) })
		}
		k.Run()
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for i := range ts {
			if ran[i] != ts[i] {
				t.Fatalf("event %d ran at %d, want %d", i, ran[i], ts[i])
			}
		}
	}
}

func TestTracer(t *testing.T) {
	var nilTracer *Tracer
	nilTracer.Record(0, "a", "ignored") // must not panic
	if nilTracer.Len() != 0 || nilTracer.Events() != nil {
		t.Error("nil tracer not empty")
	}
	tr := NewTracer()
	tr.Record(20, "b", "second")
	tr.Recordf(10, "a", "first %d", 1)
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Action != "first 1" || ev[1].Actor != "b" {
		t.Errorf("events = %v", ev)
	}
	out := tr.Format()
	if !containsStr(out, "first 1") || !containsStr(out, "0.0µs") {
		t.Errorf("format = %q", out)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package falls

import (
	"math/rand"
	"testing"
)

// TestPaperIntersectExample reproduces §7's worked example:
// INTERSECT-FALLS((0,7,16,2), (0,3,8,4)) = (0,3,16,2).
func TestPaperIntersectExample(t *testing.T) {
	f1 := MustNew(0, 7, 16, 2)
	f2 := MustNew(0, 3, 8, 4)
	got := IntersectFALLS(f1, f2)
	if len(got) != 1 || got[0] != (FALLS{L: 0, R: 3, S: 16, N: 2}) {
		t.Errorf("IntersectFALLS = %v, want [(0,3,16,2)]", got)
	}
	// The intersection is symmetric as a byte set.
	rev := IntersectFALLS(f2, f1)
	equalInt64s(t, offsetsOf(got), offsetsOf(rev), "symmetry")
}

func TestIntersectFALLSCases(t *testing.T) {
	cases := []struct {
		name   string
		f1, f2 FALLS
	}{
		{"identical", MustNew(2, 5, 6, 5), MustNew(2, 5, 6, 5)},
		{"disjoint interleaved", MustNew(0, 1, 4, 8), MustNew(2, 3, 4, 8)},
		{"nested strides", MustNew(0, 7, 16, 4), MustNew(0, 3, 8, 8)},
		{"coprime strides", MustNew(0, 2, 5, 10), MustNew(0, 3, 7, 8)},
		{"single segments", MustNew(3, 9, 7, 1), MustNew(5, 12, 8, 1)},
		{"single vs family", MustNew(0, 63, 64, 1), MustNew(2, 5, 6, 5)},
		{"offset phases", MustNew(1, 4, 8, 6), MustNew(3, 6, 8, 6)},
		{"far apart", MustNew(0, 3, 8, 2), MustNew(100, 103, 8, 2)},
		{"touching extents", MustNew(0, 7, 8, 2), MustNew(15, 20, 6, 1)},
	}
	for _, c := range cases {
		want := intersectOffsets(Leaf(c.f1).Offsets(), Leaf(c.f2).Offsets())
		got := offsetsOf(IntersectFALLS(c.f1, c.f2))
		equalInt64s(t, want, got, c.name)
	}
}

// TestPropertyIntersectFALLSOracle: the periodic intersection equals
// the brute-force offset intersection on random pairs.
func TestPropertyIntersectFALLSOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 1000; iter++ {
		f1 := randFALLS(rng, 512)
		f2 := randFALLS(rng, 512)
		want := intersectOffsets(Leaf(f1).Offsets(), Leaf(f2).Offsets())
		got := offsetsOf(IntersectFALLS(f1, f2))
		if len(want) != len(got) {
			t.Fatalf("f1=%v f2=%v: want %d offsets, got %d\nwant=%v\ngot=%v",
				f1, f2, len(want), len(got), want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("f1=%v f2=%v: offset %d: want %d got %d", f1, f2, i, want[i], got[i])
			}
		}
		for _, g := range IntersectFALLS(f1, f2) {
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid result %v from %v ∩ %v: %v", g, f1, f2, err)
			}
		}
	}
}

// TestPropertySweepMatchesPeriodic: the ablation baseline and the
// periodic algorithm agree as byte sets.
func TestPropertySweepMatchesPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 500; iter++ {
		f1 := randFALLS(rng, 384)
		f2 := randFALLS(rng, 384)
		a := offsetsOf(IntersectFALLS(f1, f2))
		b := offsetsOf(IntersectFALLSSweep(f1, f2))
		equalInt64s(t, a, b, "sweep vs periodic")
	}
}

// TestIntersectChainCounting exercises the chain-count logic with
// families whose repetition counts differ and whose phases shift.
func TestIntersectChainCounting(t *testing.T) {
	f1 := MustNew(0, 5, 12, 10) // long family
	f2 := MustNew(4, 9, 8, 3)   // short, different stride (lcm 24)
	want := intersectOffsets(Leaf(f1).Offsets(), Leaf(f2).Offsets())
	got := offsetsOf(IntersectFALLS(f1, f2))
	equalInt64s(t, want, got, "chain counting")
}

package falls

import (
	"math/rand"
	"testing"
)

// TestPaperCutExample reproduces the CUT-FALLS example of §7: cutting
// the Figure 1 FALLS (2,5,6,5) between a=4 and b=28 yields, relative
// to 4, the head segment [0,1], the middle run (4,7,6,3) and the tail
// segment [22,24].
func TestPaperCutExample(t *testing.T) {
	f := MustNew(2, 5, 6, 5)
	got := CutFALLS(f, 4, 28)
	// Absolute clipped segments: [4,5],[8,11],[14,17],[20,23],[26,28];
	// relative to 4: [0,1],[4,7],[10,13],[16,19],[22,24].
	want := []int64{0, 1, 4, 5, 6, 7, 10, 11, 12, 13, 16, 17, 18, 19, 22, 23, 24}
	equalInt64s(t, want, offsetsOf(got), "cut offsets")
	if len(got) != 3 {
		t.Errorf("CutFALLS produced %d families %v, want 3 (head, middle run, tail)", len(got), got)
	}
	if len(got) == 3 {
		if got[1] != (FALLS{L: 4, R: 7, S: 6, N: 3}) {
			t.Errorf("middle = %v, want (4,7,6,3)", got[1])
		}
	}
}

func TestCutFALLSEdgeCases(t *testing.T) {
	f := MustNew(2, 5, 6, 3) // [2,5],[8,11],[14,17]
	cases := []struct {
		name string
		a, b int64
		want []int64 // absolute offsets expected
	}{
		{"window before family", 0, 1, nil},
		{"window after family", 18, 30, nil},
		{"window in a gap", 6, 7, nil},
		{"exact family", 2, 17, []int64{2, 3, 4, 5, 8, 9, 10, 11, 14, 15, 16, 17}},
		{"single byte", 9, 9, []int64{9}},
		{"clip right only", 2, 4, []int64{2, 3, 4}},
		{"clip left only", 3, 5, []int64{3, 4, 5}},
		{"clip both of one segment", 9, 10, []int64{9, 10}},
		{"span two segments", 4, 9, []int64{4, 5, 8, 9}},
		{"inverted window", 9, 4, nil},
	}
	for _, c := range cases {
		abs := CutFALLSAbs(f, c.a, c.b)
		var wantAbs []int64
		wantAbs = append(wantAbs, c.want...)
		equalInt64s(t, wantAbs, offsetsOf(abs), c.name+" (abs)")
		// Relative variant must be the same set shifted by -a.
		rel := CutFALLS(f, c.a, c.b)
		var wantRel []int64
		for _, x := range c.want {
			wantRel = append(wantRel, x-c.a)
		}
		equalInt64s(t, wantRel, offsetsOf(rel), c.name+" (rel)")
	}
}

// TestPropertyCutFALLSOracle: CutFALLSAbs equals brute-force clipping
// on random families and windows.
func TestPropertyCutFALLSOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 500; iter++ {
		f := randFALLS(rng, 256)
		a := rng.Int63n(300) - 20
		b := a + rng.Int63n(300)
		var want []int64
		for _, x := range Leaf(f).Offsets() {
			if x >= a && x <= b {
				want = append(want, x)
			}
		}
		got := offsetsOf(CutFALLSAbs(f, a, b))
		equalInt64s(t, want, got, "cut oracle")
		// Every produced family must be valid.
		for _, g := range CutFALLSAbs(f, a, b) {
			if err := g.Validate(); err != nil {
				t.Fatalf("cut produced invalid FALLS %v from %v window [%d,%d]: %v", g, f, a, b, err)
			}
		}
	}
}

// TestPropertyCutSetOracle: CutSet equals brute-force clipping plus
// re-basing on random nested sets.
func TestPropertyCutSetOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		s := randSetWithin(rng, 256, 3)
		a := rng.Int63n(280) - 10
		b := a + rng.Int63n(280)
		var want []int64
		for _, x := range s.Offsets() {
			if x >= a && x <= b {
				want = append(want, x-a)
			}
		}
		cut := CutSet(s, a, b)
		equalInt64s(t, want, cut.Offsets(), "cutset oracle")
		for _, n := range cut {
			if err := n.Validate(); err != nil {
				t.Fatalf("CutSet produced invalid member %v from %v window [%d,%d]: %v",
					n, s, a, b, err)
			}
		}
	}
}

func TestCutSetPartialBlockNesting(t *testing.T) {
	// Figure 2 pattern (0,3,8,2,{(0,0,2,2)}) = {0,2,8,10}; cutting
	// [1,9] keeps {2,8} re-based to {1,7}.
	s := Set{MustNested(MustNew(0, 3, 8, 2), Set{MustLeaf(0, 0, 2, 2)})}
	cut := CutSet(s, 1, 9)
	equalInt64s(t, []int64{1, 7}, cut.Offsets(), "partial block nesting")
}

// TestPropertyRotateOracle: Rotate(s, period, shift) relabels the
// periodic subset correctly: x is in the rotation iff (x+shift) mod
// period is in s.
func TestPropertyRotateOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		period := int64(32 + rng.Intn(96))
		s := randSetWithin(rng, period, 2)
		shift := rng.Int63n(3*period) - period
		rot := Rotate(s, period, shift)
		in := map[int64]bool{}
		for _, x := range s.Offsets() {
			in[x] = true
		}
		var want []int64
		for x := int64(0); x < period; x++ {
			if in[Mod64(x+shift, period)] {
				want = append(want, x)
			}
		}
		equalInt64s(t, want, rot.Offsets(), "rotate oracle")
	}
}

func TestRotateZeroShiftClones(t *testing.T) {
	s := Set{MustLeaf(0, 3, 8, 2)}
	rot := Rotate(s, 16, 0)
	if !OffsetsEqual(s, rot) {
		t.Fatal("zero-shift rotation changed the set")
	}
	rot[0].L = 5 // mutating the rotation must not touch the input
	if s[0].L != 0 {
		t.Fatal("Rotate(…, 0) aliases its input")
	}
}

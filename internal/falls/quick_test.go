package falls

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quick_test.go uses testing/quick with custom generators for the
// core invariants of the representation.

// genFALLS adapts randFALLS to testing/quick's Generator protocol.
type genFALLS FALLS

func (genFALLS) Generate(rng *rand.Rand, size int) reflect.Value {
	span := int64(64 + size*8)
	return reflect.ValueOf(genFALLS(randFALLS(rng, span)))
}

// TestQuickCutPreservesAndBounds: any cut is a subset of the original
// family, within the window, and of no greater size.
func TestQuickCutPreservesAndBounds(t *testing.T) {
	f := func(g genFALLS, aRaw, widthRaw uint16) bool {
		fl := FALLS(g)
		a := int64(aRaw) % (fl.Extent() + 4)
		b := a + int64(widthRaw)%64
		pieces := CutFALLSAbs(fl, a, b)
		var total int64
		for _, p := range pieces {
			if p.Validate() != nil {
				return false
			}
			if p.L < a || p.Extent() > b {
				return false
			}
			total += p.FlatSize()
			// Every byte of the piece must belong to the original.
			if !fl.Contains(p.L) || !fl.Contains(p.Extent()) {
				return false
			}
		}
		return total <= fl.FlatSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectionCommutes: IntersectFALLS is commutative as a
// byte set and never exceeds either operand's size.
func TestQuickIntersectionCommutes(t *testing.T) {
	f := func(a, b genFALLS) bool {
		f1, f2 := FALLS(a), FALLS(b)
		ab := offsetsOf(IntersectFALLS(f1, f2))
		ba := offsetsOf(IntersectFALLS(f2, f1))
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return int64(len(ab)) <= f1.FlatSize() && int64(len(ab)) <= f2.FlatSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectionIdempotent: a family intersected with itself is
// itself.
func TestQuickIntersectionIdempotent(t *testing.T) {
	f := func(a genFALLS) bool {
		fl := FALLS(a)
		got := offsetsOf(IntersectFALLS(fl, fl))
		want := Leaf(fl).Offsets()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeIdempotent: normalizing twice equals normalizing
// once.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(a, b genFALLS) bool {
		pieces := IntersectFALLS(FALLS(a), FALLS(b))
		once := Normalize(append([]FALLS(nil), pieces...))
		twice := Normalize(append([]FALLS(nil), once...))
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickComplementInvolution: complementing twice restores the
// byte set.
func TestQuickComplementInvolution(t *testing.T) {
	f := func(a genFALLS, spanRaw uint8) bool {
		fl := FALLS(a)
		span := fl.Extent() + 1 + int64(spanRaw)
		s := Set{Leaf(fl)}
		cc := Complement(Complement(s, span), span)
		want := s.Offsets()
		got := cc.Offsets()
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package falls

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an ordered collection of nested FALLS describing the union of
// their byte subsets. Sets are the representation of subfiles and
// views in the paper's file model (§5): a set is sorted by left index
// and its members are pairwise disjoint.
type Set []*Nested

// SetOf builds a set from nested FALLS, sorting by left index. It does
// not validate disjointness; use Validate for that.
func SetOf(members ...*Nested) Set {
	s := make(Set, len(members))
	copy(s, members)
	sort.SliceStable(s, func(i, j int) bool { return s[i].L < s[j].L })
	return s
}

// Validate checks each member plus the set invariants: members sorted
// by left index and pairwise disjoint extents at this level. (Extent
// disjointness is stronger than byte disjointness but is what the
// paper's MAP-AUX lookup relies on.)
func (s Set) Validate() error {
	for i, n := range s {
		if n == nil {
			return fmt.Errorf("falls: nil member %d", i)
		}
		if err := n.Validate(); err != nil {
			return err
		}
		if i > 0 {
			prev := s[i-1]
			if n.L < prev.L {
				return fmt.Errorf("falls: set not sorted: %v before %v", prev.FALLS, n.FALLS)
			}
			if n.L <= prev.Extent() {
				return fmt.Errorf("falls: members overlap: %v and %v", prev.FALLS, n.FALLS)
			}
		}
	}
	return nil
}

// Size returns the total number of bytes described by the set: the sum
// of the sizes of its members (paper §4).
func (s Set) Size() int64 {
	var total int64
	for _, n := range s {
		total += n.Size()
	}
	return total
}

// Extent returns the last byte index covered by any member, or -1 for
// the empty set.
func (s Set) Extent() int64 {
	if len(s) == 0 {
		return -1
	}
	e := int64(-1)
	for _, n := range s {
		if x := n.Extent(); x > e {
			e = x
		}
	}
	return e
}

// Depth returns the height of the tallest member tree; the empty set
// has depth 0.
func (s Set) Depth() int {
	d := 0
	for _, n := range s {
		if nd := n.Depth(); nd > d {
			d = nd
		}
	}
	return d
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	for i, n := range s {
		out[i] = n.Clone()
	}
	return out
}

// Equal reports structural equality of two sets.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !s[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Walk calls fn for every leaf segment of every member, in increasing
// offset order (members are sorted and disjoint). Returning false
// stops the walk; Walk reports whether it ran to completion.
func (s Set) Walk(fn func(seg LineSegment) bool) bool {
	for _, n := range s {
		if !n.Walk(fn) {
			return false
		}
	}
	return true
}

// WalkRange walks only the parts of the set's leaf segments that fall
// inside the inclusive window [lo, hi], clipping boundary segments.
func (s Set) WalkRange(lo, hi int64, fn func(seg LineSegment) bool) bool {
	return s.Walk(func(seg LineSegment) bool {
		if seg.R < lo {
			return true
		}
		if seg.L > hi {
			return false
		}
		c := LineSegment{max64(seg.L, lo), min64(seg.R, hi)}
		return fn(c)
	})
}

// Offsets enumerates every byte index of the set in increasing order.
// Intended for tests and small inputs.
func (s Set) Offsets() []int64 {
	out := make([]int64, 0, s.Size())
	s.Walk(func(seg LineSegment) bool {
		for x := seg.L; x <= seg.R; x++ {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Contains reports whether byte index x belongs to the set.
func (s Set) Contains(x int64) bool {
	// Members are sorted by L with disjoint extents; binary search for
	// the last member starting at or before x.
	i := sort.Search(len(s), func(i int) bool { return s[i].L > x }) - 1
	if i < 0 {
		return false
	}
	return s[i].Contains(x)
}

// Segments materializes the leaf segments of the set.
func (s Set) Segments() []LineSegment {
	var out []LineSegment
	s.Walk(func(seg LineSegment) bool {
		out = append(out, seg)
		return true
	})
	return out
}

// SegmentCount returns the number of leaf segments described by the
// set without materializing them.
func (s Set) SegmentCount() int64 {
	var c int64
	s.Walk(func(LineSegment) bool {
		c++
		return true
	})
	return c
}

// IsContiguous reports whether the set's bytes inside [lo, hi] form a
// single gap-free run that starts at lo and ends at hi. This is the
// test the Clusterfile write path uses to pick the zero-copy path
// (paper §8.1).
func (s Set) IsContiguous(lo, hi int64) bool {
	next := lo
	ok := true
	s.Walk(func(seg LineSegment) bool {
		if seg.R < lo {
			return true
		}
		if seg.L > hi {
			return false // sorted: nothing further can matter
		}
		c := LineSegment{max64(seg.L, lo), min64(seg.R, hi)}
		if c.L != next {
			ok = false
			return false
		}
		next = c.R + 1
		return next <= hi
	})
	return ok && next == hi+1
}

func (s Set) String() string {
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = n.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// OffsetsEqual reports whether two sets describe the same byte subset,
// regardless of tree structure. Intended for tests.
func OffsetsEqual(a, b Set) bool {
	as, bs := a.Offsets(), b.Offsets()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

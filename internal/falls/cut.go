package falls

// cut.go implements CUT-FALLS (paper §7): clipping a family of line
// segments to an inclusive window [a, b]. The paper's CUT-FALLS
// returns coordinates relative to the window start a; CutFALLSAbs
// keeps absolute coordinates for callers that intersect afterwards.

// CutFALLSAbs clips f to the window [a, b], keeping absolute
// coordinates. The result has at most three members: a clipped first
// segment, a run of untouched middle segments, and a clipped last
// segment.
func CutFALLSAbs(f FALLS, a, b int64) []FALLS {
	if b < a {
		return nil
	}
	// First segment index whose right end reaches a, and last whose
	// left end is at or before b.
	i0 := ceilDiv(a-f.R, f.S)
	if i0 < 0 {
		i0 = 0
	}
	i1 := floorDiv(b-f.L, f.S)
	if i1 > f.N-1 {
		i1 = f.N - 1
	}
	if i0 > i1 {
		return nil
	}
	headPartial := f.L+i0*f.S < a
	tailPartial := f.R+i1*f.S > b
	if i0 == i1 {
		seg := f.Segment(i0)
		clipped := LineSegment{max64(seg.L, a), min64(seg.R, b)}
		if !headPartial && !tailPartial {
			return []FALLS{{L: seg.L, R: seg.R, S: f.S, N: 1}}
		}
		return []FALLS{FromSegment(clipped)}
	}
	var out []FALLS
	// Full segments are those with L+i*S >= a and R+i*S <= b.
	j0, j1 := i0, i1
	if headPartial {
		j0 = i0 + 1
		seg := f.Segment(i0)
		out = append(out, FromSegment(LineSegment{max64(seg.L, a), seg.R}))
	}
	if tailPartial {
		j1 = i1 - 1
	}
	if j0 <= j1 {
		out = append(out, FALLS{L: f.L + j0*f.S, R: f.R + j0*f.S, S: f.S, N: j1 - j0 + 1})
	}
	if tailPartial {
		seg := f.Segment(i1)
		out = append(out, FromSegment(LineSegment{seg.L, min64(seg.R, b)}))
	}
	return out
}

// CutFALLS is the paper's CUT-FALLS(f, a, b): the clipped family with
// coordinates relative to a.
func CutFALLS(f FALLS, a, b int64) []FALLS {
	abs := CutFALLSAbs(f, a, b)
	out := make([]FALLS, len(abs))
	for i, g := range abs {
		out[i] = g.Shift(-a)
	}
	return out
}

// CutSet clips a nested set to the absolute window [a, b] and re-bases
// the result so that a becomes offset 0. Partial blocks have their
// inner trees clipped recursively, preserving the byte subset exactly.
func CutSet(s Set, a, b int64) Set {
	var out Set
	for _, n := range s {
		out = append(out, cutNested(n, a, b)...)
	}
	return out
}

// cutNested clips one nested FALLS to [a, b], re-based to a.
func cutNested(n *Nested, a, b int64) Set {
	parts := CutFALLSAbs(n.FALLS, a, b)
	var out Set
	for _, p := range parts {
		if len(n.Inner) == 0 {
			out = append(out, Leaf(p.Shift(-a)))
			continue
		}
		// Which block(s) of n does p cover, and is p a full block?
		if p.N > 1 || p.BlockLen() == n.BlockLen() {
			// Full blocks: inner set carries over unchanged.
			out = append(out, &Nested{FALLS: p.Shift(-a), Inner: n.Inner.Clone()})
			continue
		}
		// A partial block: clip the inner set to the covered window of
		// the block. p covers exactly one partial segment of n.
		i := floorDiv(p.L-n.L, n.S)
		blockStart := n.L + i*n.S
		wl := p.L - blockStart
		wr := p.R - blockStart
		inner := CutSet(n.Inner, wl, wr)
		if len(inner) == 0 {
			// Nothing of the inner pattern falls in the window: this
			// piece contributes no bytes.
			continue
		}
		// The clipped piece now covers [p.L, p.R] with inner offsets
		// relative to p.L.
		if len(inner) == 1 && len(inner[0].Inner) == 0 &&
			inner[0].L == 0 && inner[0].N == 1 && inner[0].R == wr-wl {
			// Inner covers the whole window densely: collapse to leaf.
			out = append(out, Leaf(p.Shift(-a)))
			continue
		}
		out = append(out, &Nested{FALLS: p.Shift(-a), Inner: inner})
	}
	return out
}

// Rotate re-expresses a periodic set with a new phase. s describes a
// pattern of the given period (its bytes lie in [0, period)); the
// result describes the same infinite periodic subset observed from
// origin shift: offset x in the result corresponds to offset
// (x + shift) mod period in s.
//
// Rotate is the "cutting and extending" step the paper's INTERSECT
// preprocessing uses to align two partitioning patterns at the larger
// of their displacements.
func Rotate(s Set, period, shift int64) Set {
	shift = Mod64(shift, period)
	if shift == 0 || len(s) == 0 {
		return s.Clone()
	}
	// Double the pattern, cut the window [shift, shift+period-1].
	doubled := make(Set, 0, 2*len(s))
	for _, n := range s {
		doubled = append(doubled, n.Clone())
	}
	for _, n := range s {
		c := n.Clone()
		shiftNested(c, period)
		doubled = append(doubled, c)
	}
	return CutSet(doubled, shift, shift+period-1)
}

func shiftNested(n *Nested, delta int64) {
	n.L += delta
	n.R += delta
}

package falls

import "testing"

// TestPITFALLSExpandFigure3: the Figure 3 partitioning (three
// subfiles (0,1,6,1), (2,3,6,1), (4,5,6,1)) is the single PITFALLS
// (0,1,6,1; d=2, p=3).
func TestPITFALLSExpandFigure3(t *testing.T) {
	pf, err := NewPITFALLS(0, 1, 6, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := pf.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := fig3Pattern()
	if len(sets) != len(want) {
		t.Fatalf("Expand produced %d sets, want %d", len(sets), len(want))
	}
	for i := range want {
		if !OffsetsEqual(sets[i], want[i]) {
			t.Errorf("processor %d: %v, want %v", i, sets[i], want[i])
		}
	}
}

func TestPITFALLSNested(t *testing.T) {
	// A cyclic(2) distribution of 2 processors over blocks of 4 within
	// rows of 8: outer selects the row stripes, inner the per-row
	// bytes.
	inner, err := NewPITFALLS(0, 1, 4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	outer := &PITFALLS{L: 0, R: 7, S: 8, N: 4, D: 0, P: 2, Inner: []*PITFALLS{inner}}
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
	p0, err := outer.Processor(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := outer.Processor(1)
	if err != nil {
		t.Fatal(err)
	}
	// Processor 0 takes bytes {0,1,4,5} of each 8-byte row, processor
	// 1 takes {2,3,6,7}.
	equalInt64s(t, []int64{0, 1, 4, 5, 8, 9, 12, 13, 16, 17, 20, 21, 24, 25, 28, 29}, p0.Offsets(), "proc 0")
	equalInt64s(t, []int64{2, 3, 6, 7, 10, 11, 14, 15, 18, 19, 22, 23, 26, 27, 30, 31}, p1.Offsets(), "proc 1")
	// Together the processors tile every byte exactly once.
	seen := map[int64]int{}
	for _, x := range p0.Offsets() {
		seen[x]++
	}
	for _, x := range p1.Offsets() {
		seen[x]++
	}
	for x := int64(0); x < 32; x++ {
		if seen[x] != 1 {
			t.Errorf("byte %d covered %d times", x, seen[x])
		}
	}
}

func TestPITFALLSValidation(t *testing.T) {
	cases := []struct {
		l, r, s, n, d, p int64
		ok               bool
	}{
		{0, 1, 6, 1, 2, 3, true},
		{0, 1, 6, 1, 2, 0, false}, // no processors
		{0, 1, 6, 1, 0, 2, false}, // zero distance with >1 processors
		{0, 1, 6, 1, 0, 1, true},  // single processor: distance unused
		{4, 1, 6, 1, 2, 2, false}, // bad family
	}
	for _, c := range cases {
		_, err := NewPITFALLS(c.l, c.r, c.s, c.n, c.d, c.p)
		if (err == nil) != c.ok {
			t.Errorf("NewPITFALLS(%d,%d,%d,%d,%d,%d) err=%v, want ok=%v",
				c.l, c.r, c.s, c.n, c.d, c.p, err, c.ok)
		}
	}
}

func TestPITFALLSProcessorRange(t *testing.T) {
	pf, err := NewPITFALLS(0, 1, 6, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Processor(-1); err == nil {
		t.Error("Processor(-1) should fail")
	}
	if _, err := pf.Processor(3); err == nil {
		t.Error("Processor(3) should fail")
	}
}

package falls

import (
	"math/rand"
	"testing"
)

func TestNormalizeMergeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []FALLS
		want []FALLS
	}{
		{
			"touching segments",
			[]FALLS{FromSegment(LineSegment{0, 1}), FromSegment(LineSegment{2, 3})},
			[]FALLS{FromSegment(LineSegment{0, 3})},
		},
		{
			"two segments to run",
			[]FALLS{FromSegment(LineSegment{0, 3}), FromSegment(LineSegment{16, 19})},
			[]FALLS{{L: 0, R: 3, S: 16, N: 2}},
		},
		{
			"run absorbs trailing segment",
			[]FALLS{{L: 0, R: 3, S: 16, N: 2}, FromSegment(LineSegment{32, 35})},
			[]FALLS{{L: 0, R: 3, S: 16, N: 3}},
		},
		{
			"segment absorbs following run",
			[]FALLS{FromSegment(LineSegment{0, 3}), {L: 16, R: 19, S: 16, N: 2}},
			[]FALLS{{L: 0, R: 3, S: 16, N: 3}},
		},
		{
			"two runs with equal stride",
			[]FALLS{{L: 0, R: 3, S: 16, N: 2}, {L: 32, R: 35, S: 16, N: 2}},
			[]FALLS{{L: 0, R: 3, S: 16, N: 4}},
		},
		{
			"different shapes stay apart",
			[]FALLS{FromSegment(LineSegment{0, 3}), FromSegment(LineSegment{10, 11})},
			[]FALLS{FromSegment(LineSegment{0, 3}), FromSegment(LineSegment{10, 11})},
		},
		{
			"unsorted input",
			[]FALLS{FromSegment(LineSegment{16, 19}), FromSegment(LineSegment{0, 3})},
			[]FALLS{{L: 0, R: 3, S: 16, N: 2}},
		},
		{
			"chained singles to one run",
			[]FALLS{
				FromSegment(LineSegment{0, 1}),
				FromSegment(LineSegment{4, 5}),
				FromSegment(LineSegment{8, 9}),
				FromSegment(LineSegment{12, 13}),
			},
			[]FALLS{{L: 0, R: 1, S: 4, N: 4}},
		},
	}
	for _, c := range cases {
		got := Normalize(append([]FALLS(nil), c.in...))
		if len(got) != len(c.want) {
			t.Errorf("%s: Normalize = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: Normalize[%d] = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// TestPropertyNormalizePreservesSet: normalization never changes the
// byte set and always yields valid families.
func TestPropertyNormalizePreservesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		// Build random disjoint families by cutting a random family
		// at random windows (guaranteed disjoint pieces).
		f := randFALLS(rng, 512)
		mid := f.L + rng.Int63n(f.Extent()-f.L+1)
		pieces := append(CutFALLSAbs(f, f.L, mid), CutFALLSAbs(f, mid+1, f.Extent())...)
		want := offsetsOf(pieces)
		got := Normalize(append([]FALLS(nil), pieces...))
		equalInt64s(t, want, offsetsOf(got), "normalize preserves")
		for _, g := range got {
			if err := g.Validate(); err != nil {
				t.Fatalf("normalize produced invalid %v: %v", g, err)
			}
		}
		// Cutting a family in two and normalizing must restore one
		// family when the cut point is segment-aligned; at minimum it
		// must not grow the representation beyond the pieces.
		if len(got) > len(pieces) {
			t.Fatalf("normalize grew: %v -> %v", pieces, got)
		}
	}
}

func TestLeavesToSet(t *testing.T) {
	segs := []LineSegment{{0, 1}, {4, 5}, {8, 9}, {20, 23}}
	s := LeavesToSet(segs)
	if err := s.Validate(); err != nil {
		t.Fatalf("LeavesToSet invalid: %v", err)
	}
	equalInt64s(t, []int64{0, 1, 4, 5, 8, 9, 20, 21, 22, 23}, s.Offsets(), "leaves to set")
	if len(s) != 2 {
		t.Errorf("LeavesToSet produced %d members %v, want 2 (run + tail)", len(s), s)
	}
}

// Package falls implements the data representation at the core of the
// parallel file model of Isaila & Tichy, "Mapping Functions and Data
// Redistribution for Parallel Files" (IPPS 2002): line segments,
// FALLS (FAmilies of Line Segments), nested FALLS and (nested)
// PITFALLS, together with the set algebra the paper builds on them —
// cutting (CUT-FALLS) and intersection (INTERSECT-FALLS, after
// Ramaswamy & Banerjee).
//
// All offsets are int64 byte indices. A line segment [L, R] is
// inclusive on both ends, exactly as in the paper.
package falls

import (
	"errors"
	"fmt"
)

// LineSegment describes a contiguous portion of a file starting at
// offset L and ending at offset R (both inclusive).
type LineSegment struct {
	L, R int64
}

// Len returns the number of bytes covered by the segment.
func (ls LineSegment) Len() int64 { return ls.R - ls.L + 1 }

// Overlaps reports whether the two segments share at least one byte.
func (ls LineSegment) Overlaps(o LineSegment) bool {
	return ls.L <= o.R && o.L <= ls.R
}

// Intersect returns the common part of two segments. ok is false when
// they are disjoint.
func (ls LineSegment) Intersect(o LineSegment) (LineSegment, bool) {
	lo := max64(ls.L, o.L)
	hi := min64(ls.R, o.R)
	if lo > hi {
		return LineSegment{}, false
	}
	return LineSegment{lo, hi}, true
}

func (ls LineSegment) String() string { return fmt.Sprintf("[%d,%d]", ls.L, ls.R) }

// FALLS is a family of N equally spaced, equally sized line segments.
// Segment i (0 <= i < N) is [L+i*S, R+i*S]. S is the stride between
// the left ends of consecutive segments; the bytes [L, R] of the first
// segment are the FALLS's block.
type FALLS struct {
	L, R int64 // first segment, inclusive
	S    int64 // stride between consecutive segments
	N    int64 // number of segments (>= 1)
}

// New constructs a validated FALLS. When n == 1 and s <= 0 the stride
// is normalized to the block length, mirroring the paper's convention
// that a line segment (l, r) is the FALLS (l, r, r-l+1, 1).
func New(l, r, s, n int64) (FALLS, error) {
	if n == 1 && s <= 0 {
		s = r - l + 1
	}
	f := FALLS{L: l, R: r, S: s, N: n}
	if err := f.Validate(); err != nil {
		return FALLS{}, err
	}
	return f, nil
}

// MustNew is New for statically known literals; it panics on invalid
// input and is intended for tests, examples and tables of constants.
func MustNew(l, r, s, n int64) FALLS {
	f, err := New(l, r, s, n)
	if err != nil {
		panic(err)
	}
	return f
}

// FromSegment converts a line segment to the equivalent single-member
// FALLS (l, r, r-l+1, 1).
func FromSegment(ls LineSegment) FALLS {
	return FALLS{L: ls.L, R: ls.R, S: ls.Len(), N: 1}
}

// Validate checks the structural invariants of a FALLS: L >= 0,
// L <= R, N >= 1 and, when the family repeats, a stride at least as
// large as the block so segments cannot overlap.
func (f FALLS) Validate() error {
	switch {
	case f.L < 0:
		return fmt.Errorf("falls: negative left index %d", f.L)
	case f.R < f.L:
		return fmt.Errorf("falls: right index %d before left index %d", f.R, f.L)
	case f.N < 1:
		return fmt.Errorf("falls: non-positive segment count %d", f.N)
	case f.N > 1 && f.S < f.BlockLen():
		return fmt.Errorf("falls: stride %d smaller than block length %d", f.S, f.BlockLen())
	case f.S < 1:
		return fmt.Errorf("falls: non-positive stride %d", f.S)
	}
	return nil
}

// BlockLen returns the number of bytes in one segment of the family.
func (f FALLS) BlockLen() int64 { return f.R - f.L + 1 }

// FlatSize returns the number of bytes described by the family itself,
// ignoring any nesting: N * BlockLen.
func (f FALLS) FlatSize() int64 { return f.N * f.BlockLen() }

// Extent returns the last byte index covered by the family:
// R + (N-1)*S.
func (f FALLS) Extent() int64 { return f.R + (f.N-1)*f.S }

// Segment returns segment i of the family. It panics when i is out of
// range; callers index with values derived from N.
func (f FALLS) Segment(i int64) LineSegment {
	if i < 0 || i >= f.N {
		panic(fmt.Sprintf("falls: segment index %d out of range [0,%d)", i, f.N))
	}
	return LineSegment{f.L + i*f.S, f.R + i*f.S}
}

// SegmentIndex returns the index of the segment containing offset x
// and true, or the index of the nearest segment starting after x and
// false when x falls in a gap (or before/after the family).
func (f FALLS) SegmentIndex(x int64) (int64, bool) {
	if x < f.L {
		return 0, false
	}
	i := (x - f.L) / f.S
	if i >= f.N {
		return f.N, false
	}
	if x <= f.R+i*f.S {
		return i, true
	}
	return i + 1, false
}

// Contains reports whether offset x is covered by one of the family's
// segments.
func (f FALLS) Contains(x int64) bool {
	_, ok := f.SegmentIndex(x)
	return ok
}

// Shift returns the family translated by delta. The result may have a
// negative left index; Validate rejects such families, so Shift is
// used only on intermediate values that are re-based before use.
func (f FALLS) Shift(delta int64) FALLS {
	return FALLS{L: f.L + delta, R: f.R + delta, S: f.S, N: f.N}
}

func (f FALLS) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", f.L, f.R, f.S, f.N)
}

// ErrEmpty is returned by operations whose result would be an empty
// family, where the caller must distinguish emptiness from failure.
var ErrEmpty = errors.New("falls: empty result")

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lcm returns the least common multiple of two positive integers.
func lcm(a, b int64) int64 {
	return a / gcd(a, b) * b
}

// Lcm64 exposes the least common multiple for sibling packages that
// reason about pattern periods.
func Lcm64(a, b int64) int64 { return lcm(a, b) }

// ceilDiv computes ceil(a/b) for b > 0 and any a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv computes floor(a/b) for b > 0 and any a.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// FloorDiv64 exposes floorDiv for sibling packages.
func FloorDiv64(a, b int64) int64 { return floorDiv(a, b) }

// Mod64 returns the non-negative remainder of a modulo b (b > 0).
func Mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

package falls

import (
	"math/rand"
	"testing"
)

// TestPropertyComplement: s and Complement(s) tile [0, span) exactly.
func TestPropertyComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for iter := 0; iter < 200; iter++ {
		span := int64(16 + rng.Intn(112))
		s := randSetWithin(rng, span, 3)
		c := Complement(s, span)
		if err := c.Validate(); err != nil {
			t.Fatalf("complement invalid: %v", err)
		}
		in := map[int64]bool{}
		for _, x := range s.Offsets() {
			in[x] = true
		}
		for _, x := range c.Offsets() {
			if in[x] {
				t.Fatalf("byte %d in both set and complement", x)
			}
			in[x] = true
		}
		for x := int64(0); x < span; x++ {
			if !in[x] {
				t.Fatalf("byte %d in neither set nor complement", x)
			}
		}
	}
}

func TestComplementEdges(t *testing.T) {
	// Full coverage: empty complement.
	full := Set{MustLeaf(0, 15, 16, 1)}
	if c := Complement(full, 16); len(c) != 0 {
		t.Errorf("complement of full = %v, want empty", c)
	}
	// Empty set: full complement.
	c := Complement(nil, 16)
	if c.Size() != 16 || !c.IsContiguous(0, 15) {
		t.Errorf("complement of empty = %v", c)
	}
	// Selection beyond the span is ignored.
	wide := Set{MustLeaf(0, 3, 8, 4)}
	c = Complement(wide, 8)
	equalInt64s(t, []int64{4, 5, 6, 7}, c.Offsets(), "clipped complement")
}

// TestPropertyUnion: union of a set and its complement is the full
// span.
func TestPropertyUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for iter := 0; iter < 100; iter++ {
		span := int64(16 + rng.Intn(64))
		s := randSetWithin(rng, span, 2)
		u := Union(s, Complement(s, span))
		if err := u.Validate(); err != nil {
			t.Fatalf("union invalid: %v", err)
		}
		if u.Size() != span || !u.IsContiguous(0, span-1) {
			t.Fatalf("union of set and complement not full: %v (span %d)", u, span)
		}
	}
}

func TestUnionCompacts(t *testing.T) {
	a := Set{MustLeaf(0, 1, 4, 4)} // {0,1, 4,5, 8,9, 12,13}
	b := Set{MustLeaf(2, 3, 4, 4)} // {2,3, 6,7, 10,11, 14,15}
	u := Union(a, b)
	if u.Size() != 16 {
		t.Fatalf("union size = %d, want 16", u.Size())
	}
	if len(u) != 1 {
		t.Errorf("union not compacted: %v", u)
	}
}

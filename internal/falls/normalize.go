package falls

import "sort"

// normalize.go compacts lists of flat FALLS without changing the byte
// subset they describe. Compaction keeps intersection results in the
// closed, compact form the paper relies on for efficient mapping
// (e.g. INTERSECT-FALLS((0,7,16,2),(0,3,8,4)) = (0,3,16,2) rather than
// two single segments).

// Normalize sorts a list of disjoint FALLS and greedily merges
// neighbours: touching segments become one segment, equally shaped and
// equally spaced families become one family. The input families must
// describe pairwise disjoint byte sets.
func Normalize(fs []FALLS) []FALLS {
	if len(fs) <= 1 {
		return fs
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].L != fs[j].L {
			return fs[i].L < fs[j].L
		}
		return fs[i].Extent() < fs[j].Extent()
	})
	for {
		merged := false
		out := fs[:0:0]
		i := 0
		for i < len(fs) {
			cur := fs[i]
			j := i + 1
			for j < len(fs) {
				if m, ok := mergeFALLS(cur, fs[j]); ok {
					cur = m
					merged = true
					j++
					continue
				}
				break
			}
			out = append(out, cur)
			i = j
		}
		fs = out
		if !merged {
			return fs
		}
	}
}

// mergeFALLS attempts to merge two disjoint families with a.L <= b.L
// into a single equivalent family.
func mergeFALLS(a, b FALLS) (FALLS, bool) {
	// Touching single segments coalesce into a longer segment.
	if a.N == 1 && b.N == 1 && b.L == a.R+1 {
		return FromSegment(LineSegment{a.L, b.R}), true
	}
	if a.BlockLen() != b.BlockLen() {
		return FALLS{}, false
	}
	switch {
	case a.N == 1 && b.N == 1:
		// Two equal segments become a 2-member family when the gap
		// admits a legal stride.
		s := b.L - a.L
		if s >= a.BlockLen() {
			return FALLS{L: a.L, R: a.R, S: s, N: 2}, true
		}
	case a.N > 1 && b.N == 1:
		if b.L == a.L+a.N*a.S {
			return FALLS{L: a.L, R: a.R, S: a.S, N: a.N + 1}, true
		}
	case a.N == 1 && b.N > 1:
		if b.L == a.L+b.S && b.S >= a.BlockLen() {
			return FALLS{L: a.L, R: a.R, S: b.S, N: b.N + 1}, true
		}
	default:
		if a.S == b.S && b.L == a.L+a.N*a.S {
			return FALLS{L: a.L, R: a.R, S: a.S, N: a.N + b.N}, true
		}
	}
	return FALLS{}, false
}

// LeavesToSet compresses a sorted list of disjoint leaf segments into
// a compact Set of childless nested FALLS.
func LeavesToSet(segs []LineSegment) Set {
	fs := make([]FALLS, len(segs))
	for i, seg := range segs {
		fs[i] = FromSegment(seg)
	}
	fs = Normalize(fs)
	out := make(Set, len(fs))
	for i, f := range fs {
		out[i] = Leaf(f)
	}
	return out
}

package falls

import "fmt"

// pitfalls.go implements the PITFALLS representation (Processor
// Indexed Tagged FAmily of Line Segments, Ramaswamy & Banerjee) and
// its nested extension (paper §4). A PITFALLS compactly describes one
// FALLS per processor: processor index p (0 <= p < P) owns the family
// (L + p*D, R + p*D, S, N). A nested PITFALLS additionally carries
// inner nested PITFALLS relative to each block, expanded with the same
// processor index at every level.
//
// The paper manipulates the expanded (nested FALLS) form in all of its
// algorithms — "each nested PITFALLS is just a compact representation
// of a set of nested FALLS" — so this file provides the compact form
// plus expansion.

// PITFALLS is a processor-indexed family of FALLS.
type PITFALLS struct {
	L, R int64 // first segment of processor 0
	S    int64 // stride between consecutive segments of one processor
	N    int64 // segments per processor
	D    int64 // distance between the families of consecutive processors
	P    int64 // number of processors
	// Inner holds nested PITFALLS relative to each block's left edge.
	Inner []*PITFALLS
}

// NewPITFALLS constructs a validated flat PITFALLS.
func NewPITFALLS(l, r, s, n, d, p int64) (*PITFALLS, error) {
	pf := &PITFALLS{L: l, R: r, S: s, N: n, D: d, P: p}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	return pf, nil
}

// Validate checks the per-processor family and the processor indexing.
func (pf *PITFALLS) Validate() error {
	if pf.P < 1 {
		return fmt.Errorf("pitfalls: non-positive processor count %d", pf.P)
	}
	if pf.P > 1 && pf.D < 1 && len(pf.Inner) == 0 {
		// A flat PITFALLS with zero distance would give every
		// processor the same family; with inner PITFALLS the outer may
		// legitimately be shared while the inner varies per processor.
		return fmt.Errorf("pitfalls: non-positive processor distance %d", pf.D)
	}
	if pf.D < 0 {
		return fmt.Errorf("pitfalls: negative processor distance %d", pf.D)
	}
	base := FALLS{L: pf.L, R: pf.R, S: pf.S, N: pf.N}
	if err := base.Validate(); err != nil {
		return err
	}
	for _, in := range pf.Inner {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("pitfalls inner: %w", err)
		}
	}
	return nil
}

// Processor expands the PITFALLS for one processor index into a nested
// FALLS. The index tags the whole nested structure, as in the original
// PITFALLS formulation: every level with P > 1 uses the same p (levels
// with P == 1 are unindexed).
func (pf *PITFALLS) Processor(p int64) (*Nested, error) {
	if p < 0 || p >= pf.P {
		return nil, fmt.Errorf("pitfalls: processor %d out of range [0,%d)", p, pf.P)
	}
	f := FALLS{L: pf.L + p*pf.D, R: pf.R + p*pf.D, S: pf.S, N: pf.N}
	var inner Set
	for _, in := range pf.Inner {
		ip := p
		if in.P == 1 {
			ip = 0
		} else if p >= in.P {
			return nil, fmt.Errorf("pitfalls: processor %d out of inner range [0,%d)", p, in.P)
		}
		child, err := in.Processor(ip)
		if err != nil {
			return nil, err
		}
		inner = append(inner, child)
	}
	return NewNested(f, inner)
}

// Expand returns the per-processor nested FALLS sets, one Set per
// processor index.
func (pf *PITFALLS) Expand() ([]Set, error) {
	out := make([]Set, pf.P)
	for p := int64(0); p < pf.P; p++ {
		n, err := pf.Processor(p)
		if err != nil {
			return nil, err
		}
		out[p] = Set{n}
	}
	return out, nil
}

// GridShape returns the processor counts of the indexed levels along
// the chain of first children, outermost first, skipping unindexed
// (P == 1) levels. It describes the processor grid a multidimensional
// distribution is laid out on; an unindexed chain yields an empty
// shape (a single implicit processor).
func (pf *PITFALLS) GridShape() []int64 {
	var shape []int64
	for node := pf; node != nil; {
		if node.P > 1 {
			shape = append(shape, node.P)
		}
		if len(node.Inner) == 0 {
			break
		}
		node = node.Inner[0]
	}
	return shape
}

// ProcessorAt expands the PITFALLS for a vector of processor
// coordinates, one per indexed level (outermost first) — the form
// multidimensional grid distributions need. The tree must be a chain
// (each node at most one inner child).
func (pf *PITFALLS) ProcessorAt(coords []int64) (*Nested, error) {
	n, rest, err := pf.processorAt(coords)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("pitfalls: %d excess processor coordinates", len(rest))
	}
	return n, nil
}

func (pf *PITFALLS) processorAt(coords []int64) (*Nested, []int64, error) {
	if len(pf.Inner) > 1 {
		return nil, nil, fmt.Errorf("pitfalls: ProcessorAt requires a chain, node has %d children", len(pf.Inner))
	}
	p := int64(0)
	if pf.P > 1 {
		if len(coords) == 0 {
			return nil, nil, fmt.Errorf("pitfalls: missing processor coordinate for level with %d processors", pf.P)
		}
		p = coords[0]
		coords = coords[1:]
		if p < 0 || p >= pf.P {
			return nil, nil, fmt.Errorf("pitfalls: coordinate %d out of range [0,%d)", p, pf.P)
		}
	}
	f := FALLS{L: pf.L + p*pf.D, R: pf.R + p*pf.D, S: pf.S, N: pf.N}
	var inner Set
	if len(pf.Inner) == 1 {
		child, rest, err := pf.Inner[0].processorAt(coords)
		if err != nil {
			return nil, nil, err
		}
		coords = rest
		inner = Set{child}
	}
	n, err := NewNested(f, inner)
	if err != nil {
		return nil, nil, err
	}
	return n, coords, nil
}

// ExpandGrid expands every processor of the grid in row-major
// coordinate order.
func (pf *PITFALLS) ExpandGrid() ([]Set, error) {
	shape := pf.GridShape()
	total := int64(1)
	for _, s := range shape {
		total *= s
	}
	out := make([]Set, 0, total)
	coords := make([]int64, len(shape))
	for i := int64(0); i < total; i++ {
		n, err := pf.ProcessorAt(coords)
		if err != nil {
			return nil, err
		}
		out = append(out, Set{n})
		for k := len(coords) - 1; k >= 0; k-- {
			coords[k]++
			if coords[k] < shape[k] {
				break
			}
			coords[k] = 0
		}
	}
	return out, nil
}

func (pf *PITFALLS) String() string {
	if len(pf.Inner) == 0 {
		return fmt.Sprintf("(%d,%d,%d,%d;d=%d,p=%d)", pf.L, pf.R, pf.S, pf.N, pf.D, pf.P)
	}
	return fmt.Sprintf("(%d,%d,%d,%d;d=%d,p=%d,%v)", pf.L, pf.R, pf.S, pf.N, pf.D, pf.P, pf.Inner)
}

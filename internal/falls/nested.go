package falls

import (
	"fmt"
	"strings"
)

// Nested is a nested FALLS (paper §4): a FALLS together with a set of
// inner nested FALLS located inside each of its blocks. Inner
// coordinates are relative to the left index of the containing block,
// so the same inner set describes every repetition of the block.
//
// A Nested with an empty Inner set covers its blocks densely.
type Nested struct {
	FALLS
	Inner Set
}

// NewNested constructs a validated nested FALLS.
func NewNested(f FALLS, inner Set) (*Nested, error) {
	n := &Nested{FALLS: f, Inner: inner}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustNested is NewNested for statically known literals; it panics on
// invalid input.
func MustNested(f FALLS, inner Set) *Nested {
	n, err := NewNested(f, inner)
	if err != nil {
		panic(err)
	}
	return n
}

// Leaf wraps a flat FALLS as a childless nested FALLS.
func Leaf(f FALLS) *Nested { return &Nested{FALLS: f} }

// MustLeaf builds a childless nested FALLS from raw coordinates,
// panicking on invalid input. It is the common literal form in tests
// and tables.
func MustLeaf(l, r, s, n int64) *Nested { return Leaf(MustNew(l, r, s, n)) }

// Validate checks the FALLS itself plus the nesting invariants: every
// inner family must fit inside [0, BlockLen-1], inner families must be
// sorted by left index and pairwise disjoint.
func (n *Nested) Validate() error {
	if err := n.FALLS.Validate(); err != nil {
		return err
	}
	if len(n.Inner) == 0 {
		return nil
	}
	if err := n.Inner.Validate(); err != nil {
		return fmt.Errorf("inner of %v: %w", n.FALLS, err)
	}
	for _, in := range n.Inner {
		if in.L < 0 || in.Extent() > n.BlockLen()-1 {
			return fmt.Errorf("falls: inner %v exceeds block [0,%d] of %v",
				in.FALLS, n.BlockLen()-1, n.FALLS)
		}
	}
	return nil
}

// Size returns the number of bytes in the subset described by the
// nested FALLS (paper §4): N times the size of the inner set when one
// is present, N times the block length otherwise.
func (n *Nested) Size() int64 {
	if len(n.Inner) == 0 {
		return n.FlatSize()
	}
	return n.N * n.Inner.Size()
}

// Depth returns the height of the nested FALLS tree; a childless
// family has depth 1.
func (n *Nested) Depth() int {
	d := 0
	for _, in := range n.Inner {
		if id := in.Depth(); id > d {
			d = id
		}
	}
	return d + 1
}

// Clone returns a deep copy.
func (n *Nested) Clone() *Nested {
	return &Nested{FALLS: n.FALLS, Inner: n.Inner.Clone()}
}

// Equal reports structural equality (same tree, same coordinates).
// Two structurally different nested FALLS may still describe the same
// byte set; compare Offsets for set equality.
func (n *Nested) Equal(o *Nested) bool {
	if n.FALLS != o.FALLS || len(n.Inner) != len(o.Inner) {
		return false
	}
	for i := range n.Inner {
		if !n.Inner[i].Equal(o.Inner[i]) {
			return false
		}
	}
	return true
}

// Walk calls fn for every maximal leaf segment of the nested FALLS, in
// increasing offset order. Returning false from fn stops the walk.
// Walk reports whether the traversal ran to completion.
func (n *Nested) Walk(fn func(seg LineSegment) bool) bool {
	for i := int64(0); i < n.N; i++ {
		base := n.L + i*n.S
		if len(n.Inner) == 0 {
			if !fn(LineSegment{base, base + n.BlockLen() - 1}) {
				return false
			}
			continue
		}
		for _, in := range n.Inner {
			if !in.walkShifted(base, fn) {
				return false
			}
		}
	}
	return true
}

func (n *Nested) walkShifted(delta int64, fn func(seg LineSegment) bool) bool {
	for i := int64(0); i < n.N; i++ {
		base := delta + n.L + i*n.S
		if len(n.Inner) == 0 {
			if !fn(LineSegment{base, base + n.BlockLen() - 1}) {
				return false
			}
			continue
		}
		for _, in := range n.Inner {
			if !in.walkShifted(base, fn) {
				return false
			}
		}
	}
	return true
}

// Offsets enumerates every byte index of the subset, in increasing
// order. Intended for tests and small inputs; the slice has Size()
// elements.
func (n *Nested) Offsets() []int64 {
	out := make([]int64, 0, n.Size())
	n.Walk(func(seg LineSegment) bool {
		for x := seg.L; x <= seg.R; x++ {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Contains reports whether byte index x belongs to the subset.
func (n *Nested) Contains(x int64) bool {
	i, ok := n.FALLS.SegmentIndex(x)
	if !ok {
		return false
	}
	if len(n.Inner) == 0 {
		return true
	}
	rel := x - (n.L + i*n.S)
	return n.Inner.Contains(rel)
}

func (n *Nested) String() string {
	if len(n.Inner) == 0 {
		return n.FALLS.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(%d,%d,%d,%d,%s)", n.L, n.R, n.S, n.N, n.Inner.String())
	return b.String()
}

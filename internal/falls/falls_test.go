package falls

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineSegmentBasics(t *testing.T) {
	ls := LineSegment{3, 7}
	if got := ls.Len(); got != 5 {
		t.Errorf("Len() = %d, want 5", got)
	}
	cases := []struct {
		a, b    LineSegment
		want    LineSegment
		overlap bool
	}{
		{LineSegment{0, 4}, LineSegment{3, 9}, LineSegment{3, 4}, true},
		{LineSegment{0, 4}, LineSegment{5, 9}, LineSegment{}, false},
		{LineSegment{2, 2}, LineSegment{2, 2}, LineSegment{2, 2}, true},
		{LineSegment{0, 10}, LineSegment{4, 6}, LineSegment{4, 6}, true},
	}
	for _, c := range cases {
		got, ok := c.a.Intersect(c.b)
		if ok != c.overlap || (ok && got != c.want) {
			t.Errorf("%v ∩ %v = %v,%v; want %v,%v", c.a, c.b, got, ok, c.want, c.overlap)
		}
		if c.a.Overlaps(c.b) != c.overlap {
			t.Errorf("%v.Overlaps(%v) != %v", c.a, c.b, c.overlap)
		}
	}
}

// TestFigure1FALLS checks the paper's Figure 1 example: the FALLS
// (2,5,6,5) covers segments [2,5],[8,11],[14,17],[20,23],[26,29].
func TestFigure1FALLS(t *testing.T) {
	f := MustNew(2, 5, 6, 5)
	if got := f.BlockLen(); got != 4 {
		t.Errorf("BlockLen = %d, want 4", got)
	}
	if got := f.FlatSize(); got != 20 {
		t.Errorf("FlatSize = %d, want 20", got)
	}
	if got := f.Extent(); got != 29 {
		t.Errorf("Extent = %d, want 29", got)
	}
	wantSegs := []LineSegment{{2, 5}, {8, 11}, {14, 17}, {20, 23}, {26, 29}}
	for i, want := range wantSegs {
		if got := f.Segment(int64(i)); got != want {
			t.Errorf("Segment(%d) = %v, want %v", i, got, want)
		}
	}
	for x := int64(0); x <= 31; x++ {
		want := false
		for _, s := range wantSegs {
			if x >= s.L && x <= s.R {
				want = true
			}
		}
		if got := f.Contains(x); got != want {
			t.Errorf("Contains(%d) = %v, want %v", x, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		l, r, s, n int64
		ok         bool
	}{
		{0, 0, 1, 1, true},
		{2, 5, 6, 5, true},
		{0, 3, 4, 2, true},   // stride == block length: dense
		{0, 3, 3, 2, false},  // overlapping segments
		{-1, 3, 6, 1, false}, // negative left
		{5, 4, 6, 1, false},  // right before left
		{0, 3, 6, 0, false},  // zero count
		{0, 3, 0, 2, false},  // zero stride with repetition
	}
	for _, c := range cases {
		_, err := New(c.l, c.r, c.s, c.n)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d,%d) err=%v, want ok=%v", c.l, c.r, c.s, c.n, err, c.ok)
		}
	}
}

func TestLineSegmentAsFALLS(t *testing.T) {
	// Paper: "A line segment (l, r) can be represented as the FALLS
	// (l, r, r-l+1, 1)."
	f := FromSegment(LineSegment{4, 9})
	want := FALLS{L: 4, R: 9, S: 6, N: 1}
	if f != want {
		t.Errorf("FromSegment = %v, want %v", f, want)
	}
	g, err := New(4, 9, 0, 1) // stride normalized for single segments
	if err != nil || g != want {
		t.Errorf("New single-segment = %v, %v; want %v", g, err, want)
	}
}

func TestSegmentIndex(t *testing.T) {
	f := MustNew(2, 5, 6, 3) // [2,5],[8,11],[14,17]
	cases := []struct {
		x  int64
		i  int64
		ok bool
	}{
		{0, 0, false}, // before first
		{2, 0, true},
		{5, 0, true},
		{6, 1, false}, // gap: next segment is 1
		{7, 1, false},
		{8, 1, true},
		{11, 1, true},
		{13, 2, false},
		{17, 2, true},
		{18, 3, false}, // past the family
		{100, 3, false},
	}
	for _, c := range cases {
		i, ok := f.SegmentIndex(c.x)
		if i != c.i || ok != c.ok {
			t.Errorf("SegmentIndex(%d) = %d,%v; want %d,%v", c.x, i, ok, c.i, c.ok)
		}
	}
}

func TestDivModHelpers(t *testing.T) {
	cases := []struct{ a, b, ceil, floor, mod int64 }{
		{7, 3, 3, 2, 1},
		{-7, 3, -2, -3, 2},
		{6, 3, 2, 2, 0},
		{-6, 3, -2, -2, 0},
		{0, 5, 0, 0, 0},
		{1, 5, 1, 0, 1},
		{-1, 5, 0, -1, 4},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := Mod64(c.a, c.b); got != c.mod {
			t.Errorf("Mod64(%d,%d) = %d, want %d", c.a, c.b, got, c.mod)
		}
	}
}

func TestLcm(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{16, 8, 16}, {6, 4, 12}, {5, 7, 35}, {1, 9, 9}, {12, 12, 12},
	}
	for _, c := range cases {
		if got := Lcm64(c.a, c.b); got != c.want {
			t.Errorf("Lcm64(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestPropertyContainsMatchesOffsets: FALLS.Contains agrees with the
// explicit offset enumeration on random families.
func TestPropertyContainsMatchesOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		f := randFALLS(rng, 256)
		in := map[int64]bool{}
		for _, x := range Leaf(f).Offsets() {
			in[x] = true
		}
		for x := int64(0); x < 256; x++ {
			if got := f.Contains(x); got != in[x] {
				t.Fatalf("f=%v Contains(%d)=%v want %v", f, x, got, in[x])
			}
		}
	}
}

// TestQuickShiftRoundTrip: Shift by d then -d is the identity.
func TestQuickShiftRoundTrip(t *testing.T) {
	f := func(l, r, s, n uint16, d int32) bool {
		fl, err := New(int64(l), int64(l)+int64(r%64), int64(l%64)+int64(r%64)+1, int64(n%8)+1)
		if err != nil {
			return true // skip invalid draws
		}
		return fl.Shift(int64(d)).Shift(-int64(d)) == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

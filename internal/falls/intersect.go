package falls

// intersect.go implements INTERSECT-FALLS, the one-dimensional FALLS
// intersection of Ramaswamy & Banerjee that the paper's nested
// redistribution algorithm builds on (§7). The algorithm exploits the
// period of the result — the least common multiple of the two strides:
// overlaps between pairs of line segments repeat with that period, so
// only "first occurrence" pairs are examined and each yields a family
// with stride lcm(s1, s2).

// IntersectFALLS computes a compact list of FALLS describing exactly
// the byte indices common to f1 and f2. Coordinates are absolute (the
// same frame as the inputs). The result is normalized.
func IntersectFALLS(f1, f2 FALLS) []FALLS {
	w0 := max64(f1.L, f2.L)
	w1 := min64(f1.Extent(), f2.Extent())
	if w1 < w0 {
		return nil
	}
	period := lcm(f1.S, f2.S)
	k1 := period / f1.S
	k2 := period / f2.S

	var out []FALLS
	emit := func(i, j int64) {
		seg1 := LineSegment{f1.L + i*f1.S, f1.R + i*f1.S}
		seg2 := LineSegment{f2.L + j*f2.S, f2.R + j*f2.S}
		ov, ok := seg1.Intersect(seg2)
		if !ok {
			return
		}
		// The same overlap repeats every period while both segment
		// indices stay in range: (i, j) -> (i+k1, j+k2).
		n := min64((f1.N-1-i)/k1, (f2.N-1-j)/k2) + 1
		out = append(out, FALLS{L: ov.L, R: ov.R, S: period, N: n})
	}

	// Every overlapping pair (i, j) lies on a chain
	// (i+m*k1, j+m*k2); its first occurrence has i < k1 or j < k2.
	// Enumerate first occurrences with i < k1 (any j), then those with
	// j < k2 and i >= k1; the two groups are disjoint, so no overlap
	// is reported twice.
	for i := int64(0); i < min64(f1.N, k1); i++ {
		a := f1.L + i*f1.S
		b := f1.R + i*f1.S
		jlo := max64(ceilDiv(a-f2.R, f2.S), 0)
		jhi := min64(floorDiv(b-f2.L, f2.S), f2.N-1)
		for j := jlo; j <= jhi; j++ {
			emit(i, j)
		}
	}
	for j := int64(0); j < min64(f2.N, k2); j++ {
		c := f2.L + j*f2.S
		d := f2.R + j*f2.S
		ilo := max64(ceilDiv(c-f1.R, f1.S), k1)
		ihi := min64(floorDiv(d-f1.L, f1.S), f1.N-1)
		for i := ilo; i <= ihi; i++ {
			emit(i, j)
		}
	}
	return Normalize(out)
}

// IntersectFALLSSweep is the naive baseline for IntersectFALLS: a
// two-pointer sweep over the materialized segment lists. It is the
// test oracle for the periodic algorithm and the "no periodicity"
// ablation the benchmarks compare against.
func IntersectFALLSSweep(f1, f2 FALLS) []FALLS {
	var out []FALLS
	i, j := int64(0), int64(0)
	for i < f1.N && j < f2.N {
		s1 := f1.Segment(i)
		s2 := f2.Segment(j)
		if ov, ok := s1.Intersect(s2); ok {
			out = append(out, FromSegment(ov))
		}
		// Advance the segment that ends first.
		if s1.R < s2.R {
			i++
		} else {
			j++
		}
	}
	return Normalize(out)
}

package falls

// complement.go provides set-level helpers used when assembling
// partitions: the complement of a selection within a span (to complete
// a pattern around an element of interest) and the union of disjoint
// selections.

// Complement returns the bytes of [0, span) not covered by s, as a
// compact set. It is the usual way to complete a partitioning pattern
// around one element under study.
func Complement(s Set, span int64) Set {
	var segs []LineSegment
	next := int64(0)
	s.WalkRange(0, span-1, func(seg LineSegment) bool {
		if seg.L > next {
			segs = append(segs, LineSegment{L: next, R: seg.L - 1})
		}
		next = seg.R + 1
		return true
	})
	if next < span {
		segs = append(segs, LineSegment{L: next, R: span - 1})
	}
	return LeavesToSet(segs)
}

// Union merges sets describing pairwise disjoint byte subsets into one
// compact set. It fails-soft: overlapping inputs produce a set whose
// Validate reports the conflict.
func Union(sets ...Set) Set {
	var segs []LineSegment
	for _, s := range sets {
		segs = append(segs, s.Segments()...)
	}
	sortSegs(segs)
	return LeavesToSet(segs)
}

func sortSegs(segs []LineSegment) {
	// Small inputs; insertion sort keeps this allocation-free.
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].L < segs[j-1].L; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

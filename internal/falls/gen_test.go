package falls

import (
	"math/rand"
	"testing"
)

// gen_test.go: randomized generators shared by the property tests in
// this package (and mirrored by sibling packages' tests).

// randFALLS generates a valid FALLS whose extent stays below span.
func randFALLS(rng *rand.Rand, span int64) FALLS {
	if span < 2 {
		span = 2
	}
	for {
		l := rng.Int63n(span / 2)
		blockLen := 1 + rng.Int63n(max64(1, span/8)+1)
		r := l + blockLen - 1
		if r >= span {
			continue
		}
		s := blockLen + rng.Int63n(blockLen*3+1)
		maxN := (span - 1 - r) / s
		n := int64(1)
		if maxN > 0 {
			n = 1 + rng.Int63n(min64(maxN, 16)+1)
		}
		f := FALLS{L: l, R: r, S: s, N: n}
		if f.Validate() == nil && f.Extent() < span {
			return f
		}
	}
}

// randNested generates a valid nested FALLS of bounded depth whose
// extent stays below span.
func randNested(rng *rand.Rand, span int64, depth int) *Nested {
	f := randFALLS(rng, span)
	n := &Nested{FALLS: f}
	if depth > 1 && f.BlockLen() >= 4 && rng.Intn(2) == 0 {
		n.Inner = randSetWithin(rng, f.BlockLen(), depth-1)
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

// randSetWithin generates a valid, sorted, disjoint Set whose bytes
// lie in [0, span).
func randSetWithin(rng *rand.Rand, span int64, depth int) Set {
	var out Set
	cursor := int64(0)
	members := 1 + rng.Intn(3)
	for m := 0; m < members && span-cursor >= 2; m++ {
		sub := span - cursor
		n := randNested(rng, sub, depth)
		shiftNested(n, cursor)
		out = append(out, n)
		cursor = n.Extent() + 1 + rng.Int63n(3)
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}

// offsetsOf converts a list of flat FALLS into a sorted offset set via
// the Nested walker. Oracle helper.
func offsetsOf(fs []FALLS) []int64 {
	var s Set
	for _, f := range fs {
		s = append(s, Leaf(f))
	}
	var out []int64
	for _, n := range s {
		out = append(out, n.Offsets()...)
	}
	sortInt64s(out)
	return out
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func equalInt64s(t *testing.T, want, got []int64, msg string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length mismatch: want %d offsets, got %d\nwant=%v\ngot=%v",
			msg, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: offset %d differs: want %d, got %d\nwant=%v\ngot=%v",
				msg, i, want[i], got[i], want, got)
		}
	}
}

// intersectOffsets is the brute-force oracle: sorted intersection of
// two sorted offset lists.
func intersectOffsets(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

package falls

import "testing"

// Micro-benchmarks for the representation primitives; the repo-level
// bench_test.go holds the paper-table and ablation benchmarks.

func BenchmarkIntersectFALLS(b *testing.B) {
	cases := []struct {
		name   string
		f1, f2 FALLS
	}{
		{"aligned", MustNew(0, 63, 2048, 2048), MustNew(0, 63, 2048, 2048)},
		{"nested-strides", MustNew(0, 7, 16, 4096), MustNew(0, 3, 8, 8192)},
		{"coprime", MustNew(0, 2, 5, 1000), MustNew(0, 3, 7, 800)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := IntersectFALLS(c.f1, c.f2); got == nil {
					b.Fatal("empty")
				}
			}
		})
	}
}

func BenchmarkCutFALLS(b *testing.B) {
	f := MustNew(2, 5, 6, 1_000_000)
	for i := 0; i < b.N; i++ {
		if got := CutFALLSAbs(f, 1000, 4_000_000); len(got) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	n := MustNested(MustNew(0, 2047, 4096, 256), Set{MustLeaf(0, 63, 256, 8)})
	b.Run("segments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			n.Walk(func(LineSegment) bool {
				count++
				return true
			})
			if count == 0 {
				b.Fatal("no segments")
			}
		}
	})
	b.Run("contains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n.Contains(int64(i) % n.Extent())
		}
	})
}

func BenchmarkRotate(b *testing.B) {
	s := Set{MustNested(MustNew(0, 255, 1024, 64), Set{MustLeaf(0, 31, 64, 4)})}
	period := int64(64 * 1024)
	for i := 0; i < b.N; i++ {
		if got := Rotate(s, period, 12345); len(got) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	// 256 single segments that compact to one family.
	var fs []FALLS
	for i := int64(0); i < 256; i++ {
		fs = append(fs, FromSegment(LineSegment{i * 16, i*16 + 3}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := append([]FALLS(nil), fs...)
		if got := Normalize(in); len(got) != 1 {
			b.Fatalf("normalize produced %d families", len(got))
		}
	}
}

package falls

import (
	"math/rand"
	"testing"
)

// TestFigure2NestedFALLS checks the paper's Figure 2 example: the
// nested FALLS (0,3,8,2,{(0,0,2,2)}) has outer blocks [0,3] and
// [8,11], inner bytes {0,2} per block, hence offsets {0,2,8,10} and
// size 4.
func TestFigure2NestedFALLS(t *testing.T) {
	n := MustNested(MustNew(0, 3, 8, 2), Set{MustLeaf(0, 0, 2, 2)})
	if got := n.Size(); got != 4 {
		t.Errorf("Size = %d, want 4 (paper: 'the size of the nested FALLS from figure 2 is 4')", got)
	}
	want := []int64{0, 2, 8, 10}
	equalInt64s(t, want, n.Offsets(), "figure 2 offsets")
	for x := int64(0); x < 16; x++ {
		isIn := x == 0 || x == 2 || x == 8 || x == 10
		if got := n.Contains(x); got != isIn {
			t.Errorf("Contains(%d) = %v, want %v", x, got, isIn)
		}
	}
	if got := n.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := n.String(); got != "(0,3,8,2,{(0,0,2,2)})" {
		t.Errorf("String = %q", got)
	}
}

func TestNestedValidation(t *testing.T) {
	outer := MustNew(0, 3, 8, 2)
	cases := []struct {
		name  string
		inner Set
		ok    bool
	}{
		{"empty inner", nil, true},
		{"fits", Set{MustLeaf(0, 1, 2, 2)}, true},
		{"exceeds block", Set{MustLeaf(0, 0, 4, 2)}, false}, // extent 4 > blockLen-1
		{"beyond block", Set{MustLeaf(2, 4, 5, 1)}, false},
		{"overlapping members", Set{MustLeaf(0, 1, 2, 1), MustLeaf(1, 2, 2, 1)}, false},
		{"unsorted handled by SetOf", SetOf(MustLeaf(2, 3, 2, 1), MustLeaf(0, 1, 2, 1)), true},
	}
	for _, c := range cases {
		_, err := NewNested(outer, c.inner)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNestedValidationExactFit(t *testing.T) {
	// Inner extent exactly blockLen-1 is legal.
	outer := MustNew(0, 3, 8, 2)
	if _, err := NewNested(outer, Set{MustLeaf(0, 0, 3, 2)}); err != nil {
		t.Errorf("inner extent == blockLen-1 should validate, got %v", err)
	}
}

func TestWalkOrderAndSegments(t *testing.T) {
	// Three-level nesting: outer 2 blocks of 16, middle 2 blocks of 8
	// with 4-byte blocks, inner picks bytes {0,1} of each 4-byte block.
	inner := Set{MustLeaf(0, 1, 4, 1)}
	middle := Set{MustNested(MustNew(0, 3, 8, 2), inner)}
	n := MustNested(MustNew(0, 15, 32, 2), middle)
	var segs []LineSegment
	n.Walk(func(s LineSegment) bool {
		segs = append(segs, s)
		return true
	})
	want := []LineSegment{{0, 1}, {8, 9}, {32, 33}, {40, 41}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v (all: %v)", i, segs[i], want[i], segs)
		}
	}
	if got := n.Size(); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	if got := n.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	n := MustLeaf(0, 0, 2, 10)
	count := 0
	done := n.Walk(func(LineSegment) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Errorf("Walk early stop: done=%v count=%d, want false,3", done, count)
	}
}

// TestPropertySizeMatchesOffsets: Size() equals the enumerated offset
// count on random nested trees, and offsets are strictly increasing.
func TestPropertySizeMatchesOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		n := randNested(rng, 512, 3)
		off := n.Offsets()
		if int64(len(off)) != n.Size() {
			t.Fatalf("n=%v: Size=%d but %d offsets", n, n.Size(), len(off))
		}
		for i := 1; i < len(off); i++ {
			if off[i] <= off[i-1] {
				t.Fatalf("n=%v: offsets not strictly increasing at %d: %v", n, i, off)
			}
		}
	}
}

// TestPropertyContainsAgrees: Nested.Contains agrees with enumeration.
func TestPropertyContainsAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 150; iter++ {
		n := randNested(rng, 256, 3)
		in := map[int64]bool{}
		for _, x := range n.Offsets() {
			in[x] = true
		}
		for x := int64(0); x < 256; x++ {
			if got := n.Contains(x); got != in[x] {
				t.Fatalf("n=%v Contains(%d)=%v want %v", n, x, got, in[x])
			}
		}
	}
}

func TestCloneEqualIndependence(t *testing.T) {
	n := MustNested(MustNew(0, 7, 16, 2), Set{MustLeaf(0, 1, 4, 2)})
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Inner[0].L = 1
	c.Inner[0].R = 1
	if n.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if n.Inner[0].L != 0 {
		t.Fatal("clone aliases original inner")
	}
}

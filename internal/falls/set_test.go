package falls

import (
	"math/rand"
	"testing"
)

// fig3Pattern builds the partitioning pattern of the paper's Figure 3:
// three subfiles defined by FALLS (0,1,6,1), (2,3,6,1), (4,5,6,1).
func fig3Pattern() []Set {
	return []Set{
		{MustLeaf(0, 1, 6, 1)},
		{MustLeaf(2, 3, 6, 1)},
		{MustLeaf(4, 5, 6, 1)},
	}
}

func TestFigure3PatternSizes(t *testing.T) {
	subs := fig3Pattern()
	var total int64
	for i, s := range subs {
		if got := s.Size(); got != 2 {
			t.Errorf("subfile %d size = %d, want 2", i, got)
		}
		total += s.Size()
	}
	// Paper: "The size of the partitioning pattern is 6."
	if total != 6 {
		t.Errorf("pattern size = %d, want 6", total)
	}
}

func TestSetValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Set
		ok   bool
	}{
		{"empty", nil, true},
		{"single", Set{MustLeaf(0, 3, 4, 1)}, true},
		{"disjoint sorted", Set{MustLeaf(0, 1, 2, 1), MustLeaf(4, 5, 2, 1)}, true},
		{"unsorted", Set{MustLeaf(4, 5, 2, 1), MustLeaf(0, 1, 2, 1)}, false},
		{"overlapping extents", Set{MustLeaf(0, 3, 8, 2), MustLeaf(5, 6, 2, 1)}, false},
		{"nil member", Set{nil}, false},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSetContainsAndSearch(t *testing.T) {
	s := Set{
		MustNested(MustNew(0, 3, 8, 2), Set{MustLeaf(0, 0, 2, 2)}), // {0,2,8,10}
		MustLeaf(16, 17, 4, 2), // {16,17,20,21}
	}
	want := map[int64]bool{0: true, 2: true, 8: true, 10: true, 16: true, 17: true, 20: true, 21: true}
	for x := int64(-2); x < 25; x++ {
		if got := s.Contains(x); got != want[x] {
			t.Errorf("Contains(%d) = %v, want %v", x, got, want[x])
		}
	}
}

func TestWalkRangeClipping(t *testing.T) {
	s := Set{MustLeaf(0, 3, 8, 3)} // [0,3],[8,11],[16,19]
	var segs []LineSegment
	s.WalkRange(2, 17, func(seg LineSegment) bool {
		segs = append(segs, seg)
		return true
	})
	want := []LineSegment{{2, 3}, {8, 11}, {16, 17}}
	if len(segs) != len(want) {
		t.Fatalf("WalkRange = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("WalkRange[%d] = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestIsContiguous(t *testing.T) {
	dense := Set{MustLeaf(0, 15, 16, 1)}
	sparse := Set{MustLeaf(0, 3, 8, 2)}
	cases := []struct {
		s      Set
		lo, hi int64
		want   bool
	}{
		{dense, 0, 15, true},
		{dense, 4, 9, true},
		{sparse, 0, 3, true},  // inside one block
		{sparse, 0, 8, false}, // spans the gap
		{sparse, 4, 7, false}, // entirely in the gap
		{sparse, 8, 11, true}, // second block
		{sparse, 2, 3, true},
	}
	for _, c := range cases {
		if got := c.s.IsContiguous(c.lo, c.hi); got != c.want {
			t.Errorf("%v.IsContiguous(%d,%d) = %v, want %v", c.s, c.lo, c.hi, got, c.want)
		}
	}
}

func TestSegmentCount(t *testing.T) {
	s := Set{
		MustNested(MustNew(0, 7, 16, 2), Set{MustLeaf(0, 1, 4, 2)}),
		MustLeaf(40, 41, 2, 1),
	}
	if got := s.SegmentCount(); got != 5 {
		t.Errorf("SegmentCount = %d, want 5", got)
	}
	if got := int64(len(s.Segments())); got != 5 {
		t.Errorf("len(Segments) = %d, want 5", got)
	}
}

func TestSetOfSorts(t *testing.T) {
	s := SetOf(MustLeaf(10, 11, 2, 1), MustLeaf(0, 1, 2, 1), MustLeaf(4, 5, 2, 1))
	if err := s.Validate(); err != nil {
		t.Fatalf("SetOf result invalid: %v", err)
	}
	if s[0].L != 0 || s[1].L != 4 || s[2].L != 10 {
		t.Errorf("SetOf order wrong: %v", s)
	}
}

// TestPropertySetWalkSorted: leaf segments of a random set come out
// sorted and disjoint, and the set size matches enumeration.
func TestPropertySetWalkSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		s := randSetWithin(rng, 512, 3)
		segs := s.Segments()
		for i := 1; i < len(segs); i++ {
			if segs[i].L <= segs[i-1].R {
				t.Fatalf("set %v: segments overlap or unsorted: %v then %v", s, segs[i-1], segs[i])
			}
		}
		if int64(len(s.Offsets())) != s.Size() {
			t.Fatalf("set %v: size %d != offsets %d", s, s.Size(), len(s.Offsets()))
		}
	}
}

// TestPropertyIsContiguousOracle: IsContiguous agrees with the
// brute-force definition on random sets and windows.
func TestPropertyIsContiguousOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		s := randSetWithin(rng, 128, 2)
		in := map[int64]bool{}
		for _, x := range s.Offsets() {
			in[x] = true
		}
		lo := rng.Int63n(128)
		hi := lo + rng.Int63n(128-lo)
		want := true
		for x := lo; x <= hi; x++ {
			if !in[x] {
				want = false
				break
			}
		}
		if got := s.IsContiguous(lo, hi); got != want {
			t.Fatalf("set %v window [%d,%d]: IsContiguous=%v want %v", s, lo, hi, got, want)
		}
	}
}

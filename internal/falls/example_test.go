package falls_test

import (
	"fmt"

	"parafile/internal/falls"
)

// The paper's Figure 1 family: five 4-byte segments every 6 bytes.
func ExampleFALLS() {
	f := falls.MustNew(2, 5, 6, 5)
	fmt.Println("block length:", f.BlockLen())
	fmt.Println("size:", f.FlatSize())
	fmt.Println("extent:", f.Extent())
	fmt.Println("third segment:", f.Segment(2))
	// Output:
	// block length: 4
	// size: 20
	// extent: 29
	// third segment: [14,17]
}

// The paper's Figure 2 nested family selects bytes {0,2} of each
// 4-byte block.
func ExampleNested() {
	n := falls.MustNested(falls.MustNew(0, 3, 8, 2), falls.Set{falls.MustLeaf(0, 0, 2, 2)})
	fmt.Println("size:", n.Size())
	fmt.Println("offsets:", n.Offsets())
	// Output:
	// size: 4
	// offsets: [0 2 8 10]
}

// INTERSECT-FALLS computes the common bytes of two families compactly
// (the paper's §7 worked example).
func ExampleIntersectFALLS() {
	out := falls.IntersectFALLS(falls.MustNew(0, 7, 16, 2), falls.MustNew(0, 3, 8, 4))
	fmt.Println(out[0])
	// Output:
	// (0,3,16,2)
}

// CUT-FALLS clips a family to a window, re-based to the window start.
func ExampleCutFALLS() {
	pieces := falls.CutFALLS(falls.MustNew(2, 5, 6, 5), 4, 28)
	for _, p := range pieces {
		fmt.Println(p)
	}
	// Output:
	// (0,1,2,1)
	// (4,7,6,3)
	// (22,24,3,1)
}

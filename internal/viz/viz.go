// Package viz renders FALLS, nested FALLS, partitions and
// intersections as ASCII diagrams, reproducing the explanatory figures
// of the paper (Figures 1-4). cmd/fallsviz is the command-line front
// end; the figure functions are golden-tested.
package viz

import (
	"fmt"
	"strings"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// Ruler returns a two-line byte-offset ruler for [0, span): a tens
// line and a units line.
func Ruler(span int64) string {
	var tens, units strings.Builder
	for i := int64(0); i < span; i++ {
		if i%10 == 0 && i > 0 {
			fmt.Fprintf(&tens, "%d", (i/10)%10)
		} else {
			tens.WriteByte(' ')
		}
		fmt.Fprintf(&units, "%d", i%10)
	}
	return tens.String() + "\n" + units.String()
}

// RenderSet draws the byte subset of s over [0, span): '#' for covered
// bytes, '.' for gaps.
func RenderSet(s falls.Set, span int64) string {
	row := make([]byte, span)
	for i := range row {
		row[i] = '.'
	}
	s.WalkRange(0, span-1, func(seg falls.LineSegment) bool {
		for x := seg.L; x <= seg.R; x++ {
			row[x] = '#'
		}
		return true
	})
	return string(row)
}

// RenderFALLS draws a single flat family.
func RenderFALLS(f falls.FALLS, span int64) string {
	return RenderSet(falls.Set{falls.Leaf(f)}, span)
}

// Figure1 reproduces the paper's Figure 1: the FALLS (2,5,6,5) with
// its l, r and s annotations.
func Figure1() string {
	f := falls.MustNew(2, 5, 6, 5)
	var b strings.Builder
	b.WriteString("Figure 1. FALLS example: (2,5,6,5)\n\n")
	b.WriteString(Ruler(32) + "\n")
	b.WriteString(RenderFALLS(f, 32) + "\n")
	b.WriteString("  l=2  r=5   stride s=6, n=5 segments, block length 4\n")
	return b.String()
}

// Figure2 reproduces Figure 2: the nested FALLS (0,3,8,2,{(0,0,2,2)})
// with the outer blocks and the inner selection.
func Figure2() string {
	outer := falls.MustNew(0, 3, 8, 2)
	nested := falls.MustNested(outer, falls.Set{falls.MustLeaf(0, 0, 2, 2)})
	var b strings.Builder
	b.WriteString("Figure 2. Nested FALLS example: (0,3,8,2,{(0,0,2,2)})\n\n")
	b.WriteString(Ruler(16) + "\n")
	b.WriteString("outer " + RenderFALLS(outer, 16) + "   outer FALLS (0,3,8,2)\n")
	b.WriteString("inner " + RenderSet(falls.Set{nested}, 16) + "   inner FALLS (0,0,2,2), size 4\n")
	return b.String()
}

// Figure3 reproduces Figure 3: a file with displacement 2 partitioned
// into three subfiles by FALLS (0,1,6,1), (2,3,6,1), (4,5,6,1).
func Figure3() string {
	pat := part.MustPattern(
		part.Element{Name: "subfile 0", Set: falls.Set{falls.MustLeaf(0, 1, 6, 1)}},
		part.Element{Name: "subfile 1", Set: falls.Set{falls.MustLeaf(2, 3, 6, 1)}},
		part.Element{Name: "subfile 2", Set: falls.Set{falls.MustLeaf(4, 5, 6, 1)}},
	)
	file := part.MustFile(2, pat)
	const span = 32
	var b strings.Builder
	b.WriteString("Figure 3. File partitioning example: displacement 2, pattern size 6\n\n")
	b.WriteString(Ruler(span) + "\n")
	for e := 0; e < pat.Len(); e++ {
		row := make([]byte, span)
		for i := range row {
			row[i] = '.'
		}
		m := core.MustMapper(file, e)
		for x := int64(0); x < span; x++ {
			if _, err := m.Map(x); err == nil {
				row[x] = byte('0' + e)
			}
		}
		fmt.Fprintf(&b, "%s   %s defined by FALLS %s\n",
			string(row), pat.Element(e).Name, pat.Element(e).Set)
	}
	b.WriteString("(digits mark the bytes each subfile stores; the pattern repeats from the displacement)\n")
	return b.String()
}

// Figure4 reproduces Figure 4: the intersection of the view
// V = {(0,7,16,2,{(0,1,4,2)})} and the subfile
// S = {(0,3,8,4,{(0,0,2,2)})} and its projections on both.
func Figure4() (string, error) {
	v := falls.Set{falls.MustNested(falls.MustNew(0, 7, 16, 2), falls.Set{falls.MustLeaf(0, 1, 4, 2)})}
	s := falls.Set{falls.MustNested(falls.MustNew(0, 3, 8, 4), falls.Set{falls.MustLeaf(0, 0, 2, 2)})}
	fv, err := fileAround(v, 32)
	if err != nil {
		return "", err
	}
	fs, err := fileAround(s, 32)
	if err != nil {
		return "", err
	}
	inter, err := redist.IntersectElements(fv, 0, fs, 0)
	if err != nil {
		return "", err
	}
	projV, err := redist.Project(inter, core.MustMapper(fv, 0))
	if err != nil {
		return "", err
	}
	projS, err := redist.Project(inter, core.MustMapper(fs, 0))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 4. Nested FALLS intersection algorithm\n\n")
	b.WriteString(Ruler(32) + "\n")
	fmt.Fprintf(&b, "V     %s   view V = %s\n", RenderSet(v, 32), v)
	fmt.Fprintf(&b, "S     %s   subfile S = %s\n", RenderSet(s, 32), s)
	fmt.Fprintf(&b, "V∩S   %s   intersection = %s\n", RenderSet(inter.Set, 32), inter.Set)
	b.WriteString("\nProjections (element linear spaces, 8 bytes per period):\n")
	b.WriteString(Ruler(8) + "\n")
	fmt.Fprintf(&b, "on V  %s   PROJ_V(V∩S) = %s\n", RenderSet(projV.Set, 8), projV.Set)
	fmt.Fprintf(&b, "on S  %s   PROJ_S(V∩S) = %s\n", RenderSet(projS.Set, 8), projS.Set)
	return b.String(), nil
}

// fileAround completes a single element into a full partition with a
// complement element, so the mapping and intersection machinery can
// run on it.
func fileAround(set falls.Set, size int64) (*part.File, error) {
	elems := []part.Element{{Name: "elem", Set: set}}
	if rest := falls.Complement(set, size); len(rest) > 0 {
		elems = append(elems, part.Element{Name: "rest", Set: rest})
	}
	pat, err := part.NewPattern(elems...)
	if err != nil {
		return nil, err
	}
	return part.NewFile(0, pat)
}

// Custom renders a user-supplied FALLS over a span, with its derived
// quantities.
func Custom(f falls.FALLS, span int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FALLS %s: block length %d, size %d, extent %d\n\n",
		f, f.BlockLen(), f.FlatSize(), f.Extent())
	b.WriteString(Ruler(span) + "\n")
	b.WriteString(RenderFALLS(f, span) + "\n")
	return b.String()
}

package viz

import (
	"strings"
	"testing"

	"parafile/internal/falls"
)

func TestRulerShape(t *testing.T) {
	r := Ruler(32)
	lines := strings.Split(r, "\n")
	if len(lines) != 2 {
		t.Fatalf("ruler has %d lines, want 2", len(lines))
	}
	if len(lines[0]) != 32 || len(lines[1]) != 32 {
		t.Fatalf("ruler line lengths %d/%d, want 32", len(lines[0]), len(lines[1]))
	}
	if lines[1][0] != '0' || lines[1][11] != '1' || lines[0][10] != '1' {
		t.Errorf("ruler digits wrong:\n%s", r)
	}
}

// TestFigure1Golden: the rendering marks exactly the Figure 1 bytes.
func TestFigure1Golden(t *testing.T) {
	out := Figure1()
	want := "..####..####..####..####..####.."
	if !strings.Contains(out, want) {
		t.Errorf("Figure 1 rendering missing row %q:\n%s", want, out)
	}
}

// TestFigure2Golden: inner bytes {0,2,8,10}.
func TestFigure2Golden(t *testing.T) {
	out := Figure2()
	wantOuter := "####....####...."
	wantInner := "#.#.....#.#....."
	if !strings.Contains(out, wantOuter) {
		t.Errorf("Figure 2 missing outer row %q:\n%s", wantOuter, out)
	}
	if !strings.Contains(out, wantInner) {
		t.Errorf("Figure 2 missing inner row %q:\n%s", wantInner, out)
	}
}

// TestFigure3Golden: the three subfiles tile the file from
// displacement 2 onward.
func TestFigure3Golden(t *testing.T) {
	out := Figure3()
	want0 := "..00....00....00....00....00...."
	want1 := "....11....11....11....11....11.."
	want2 := "......22....22....22....22....22"
	for _, w := range []string{want0, want1, want2} {
		if !strings.Contains(out, w) {
			t.Errorf("Figure 3 missing row %q:\n%s", w, out)
		}
	}
}

// TestFigure4Golden: intersection bytes {0,16} and projections {0,4}.
func TestFigure4Golden(t *testing.T) {
	out, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	wantV := "##..##..........##..##.........."
	wantS := "#.#.....#.#.....#.#.....#.#....."
	wantI := "#...............#.............."
	wantP := "#...#..."
	for _, w := range []string{wantV, wantS, wantI} {
		if !strings.Contains(out, w) {
			t.Errorf("Figure 4 missing row %q:\n%s", w, out)
		}
	}
	if got := strings.Count(out, wantP); got != 2 {
		t.Errorf("Figure 4 has %d projection rows %q, want 2:\n%s", got, wantP, out)
	}
}

func TestCustomRendering(t *testing.T) {
	out := Custom(falls.MustNew(0, 1, 4, 3), 12)
	if !strings.Contains(out, "##..##..##..") {
		t.Errorf("custom rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "size 6") {
		t.Errorf("custom rendering missing size:\n%s", out)
	}
}

// TestFigure5Golden: the write-path trace computes the paper's §8.1
// steps with the Figure 4 view and subfile.
func TestFigure5Golden(t *testing.T) {
	out, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"PROJ_V = {(0,0,4,2)}",
		"PROJ_S = {(0,0,4,2)}",
		"low_S  = MAP_S(MAP⁻¹_V(0)) = 0",
		"GATHER 2 bytes",
		"SCATTER buf into subfile",
		"acknowledge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 missing %q:\n%s", want, out)
		}
	}
}

package viz

import (
	"fmt"
	"strings"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/redist"
)

// Figure5 renders the paper's Figure 5 — the Clusterfile write
// operation between a compute node and an I/O node — as an annotated
// trace, computed live from the Figure 4 view and subfile.
func Figure5() (string, error) {
	v := falls.Set{falls.MustNested(falls.MustNew(0, 7, 16, 2), falls.Set{falls.MustLeaf(0, 1, 4, 2)})}
	s := falls.Set{falls.MustNested(falls.MustNew(0, 3, 8, 4), falls.Set{falls.MustLeaf(0, 0, 2, 2)})}
	fv, err := fileAround(v, 32)
	if err != nil {
		return "", err
	}
	fs, err := fileAround(s, 32)
	if err != nil {
		return "", err
	}
	inter, projV, projS, err := redist.IntersectProjectElements(fv, 0, fs, 0)
	if err != nil {
		return "", err
	}
	mv := core.MustMapper(fv, 0)
	ms := core.MustMapper(fs, 0)

	// The write interval: the whole first period of the view.
	lowV, highV := int64(0), mv.ElementSize()-1
	firstV, lastV := int64(-1), int64(-1)
	projV.WalkRange(lowV, highV, func(seg falls.LineSegment) bool {
		if firstV < 0 {
			firstV = seg.L
		}
		lastV = seg.R
		return true
	})
	xLow, err := mv.MapInv(firstV)
	if err != nil {
		return "", err
	}
	xHigh, err := mv.MapInv(lastV)
	if err != nil {
		return "", err
	}
	lowS, err := ms.Map(xLow)
	if err != nil {
		return "", err
	}
	highS, err := ms.Map(xHigh)
	if err != nil {
		return "", err
	}
	n := projV.BytesIn(lowV, highV)

	var b strings.Builder
	b.WriteString("Figure 5. Write operation in Clusterfile (computed live)\n\n")
	fmt.Fprintf(&b, "view V = %s, subfile S = %s\n", v, s)
	fmt.Fprintf(&b, "V∩S = %s;  PROJ_V = %s;  PROJ_S = %s\n\n", inter.Set, projV.Set, projS.Set)
	b.WriteString("COMPUTE NODE                                I/O NODE\n")
	fmt.Fprintf(&b, "  write view bytes [%d,%d]\n", lowV, highV)
	fmt.Fprintf(&b, "  (a) map extremities through the file:\n")
	fmt.Fprintf(&b, "      low_S  = MAP_S(MAP⁻¹_V(%d)) = %d\n", firstV, lowS)
	fmt.Fprintf(&b, "      high_S = MAP_S(MAP⁻¹_V(%d)) = %d\n", lastV, highS)
	fmt.Fprintf(&b, "  (1) send (low_S=%d, high_S=%d)  ───────▶  expect %d bytes for [%d,%d]\n",
		lowS, highS, n, lowS, highS)
	contiguous := projV.IsContiguous(lowV, highV)
	if contiguous {
		fmt.Fprintf(&b, "  (2) PROJ_V contiguous: send buf  ──────▶\n")
	} else {
		fmt.Fprintf(&b, "  (2) GATHER %d bytes into buf2 (PROJ_V not contiguous)\n", n)
		fmt.Fprintf(&b, "  (3) send buf2 (%d bytes)  ─────────────▶\n", n)
	}
	if projS.IsContiguous(lowS, highS) {
		fmt.Fprintf(&b, "                                            (4) write contiguously to subfile\n")
	} else {
		fmt.Fprintf(&b, "                                            (4) SCATTER buf into subfile via PROJ_S\n")
	}
	fmt.Fprintf(&b, "  ◀───────────────────────────────────────  (5) acknowledge\n")
	return b.String(), nil
}

// Package part implements the parallel file model of the paper (§5):
// a file is a linear sequence of bytes described by a displacement and
// a partitioning pattern. The pattern is a union of sets of nested
// FALLS, each defining one partition element — a subfile when the
// partition is physical, a view when it is logical. The pattern tiles
// a contiguous region exactly once and is applied repeatedly
// throughout the linear space of the file, starting at the
// displacement.
//
// The package also provides the distribution builders the paper's
// motivation calls for: HPF-style BLOCK and CYCLIC distributions and
// general multidimensional array partitions on processor grids.
package part

import (
	"fmt"
	"sort"

	"parafile/internal/falls"
)

// Element is one partition element: a named set of nested FALLS whose
// coordinates live inside the pattern, i.e. in [0, pattern size).
type Element struct {
	Name string
	Set  falls.Set
}

// Pattern is a partitioning pattern: the union of its elements' sets.
// A valid pattern tiles [0, Size()) exactly once — elements are
// non-overlapping and together describe a contiguous region (§5).
type Pattern struct {
	elems []Element
	size  int64
}

// NewPattern validates and builds a partitioning pattern.
func NewPattern(elems ...Element) (*Pattern, error) {
	if len(elems) == 0 {
		return nil, fmt.Errorf("part: pattern needs at least one element")
	}
	var size int64
	type span struct {
		seg  falls.LineSegment
		elem int
	}
	var spans []span
	for i, e := range elems {
		if len(e.Set) == 0 {
			return nil, fmt.Errorf("part: element %d (%q) is empty", i, e.Name)
		}
		if err := e.Set.Validate(); err != nil {
			return nil, fmt.Errorf("part: element %d (%q): %w", i, e.Name, err)
		}
		size += e.Set.Size()
		e.Set.Walk(func(seg falls.LineSegment) bool {
			spans = append(spans, span{seg, i})
			return true
		})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].seg.L < spans[j].seg.L })
	next := int64(0)
	for _, sp := range spans {
		if sp.seg.L < next {
			return nil, fmt.Errorf("part: elements overlap at offset %d (element %q)",
				sp.seg.L, elems[sp.elem].Name)
		}
		if sp.seg.L > next {
			return nil, fmt.Errorf("part: pattern has a gap at offsets [%d,%d)", next, sp.seg.L)
		}
		next = sp.seg.R + 1
	}
	if next != size {
		return nil, fmt.Errorf("part: pattern covers [0,%d) but has size %d", next, size)
	}
	return &Pattern{elems: elems, size: size}, nil
}

// MustPattern is NewPattern for statically known literals; it panics
// on invalid input.
func MustPattern(elems ...Element) *Pattern {
	p, err := NewPattern(elems...)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the number of bytes one repetition of the pattern
// covers: the sum of the sizes of its elements (§5).
func (p *Pattern) Size() int64 { return p.size }

// Len returns the number of partition elements.
func (p *Pattern) Len() int { return len(p.elems) }

// Element returns partition element i.
func (p *Pattern) Element(i int) Element { return p.elems[i] }

// Elements returns all partition elements (shared slice; callers must
// not mutate).
func (p *Pattern) Elements() []Element { return p.elems }

// ElementOf returns the index of the element owning pattern coordinate
// x in [0, Size()).
func (p *Pattern) ElementOf(x int64) (int, error) {
	if x < 0 || x >= p.size {
		return 0, fmt.Errorf("part: pattern coordinate %d out of range [0,%d)", x, p.size)
	}
	for i, e := range p.elems {
		if e.Set.Contains(x) {
			return i, nil
		}
	}
	// Unreachable for a validated pattern.
	return 0, fmt.Errorf("part: coordinate %d not covered by any element", x)
}

func (p *Pattern) String() string {
	s := fmt.Sprintf("pattern(size=%d", p.size)
	for _, e := range p.elems {
		s += fmt.Sprintf(", %s=%s", e.Name, e.Set)
	}
	return s + ")"
}

// File is the paper's parallel file: a displacement (absolute byte
// position of the first pattern repetition) plus a partitioning
// pattern applied repeatedly from there on.
type File struct {
	Displacement int64
	Pattern      *Pattern
}

// NewFile validates and builds a file description.
func NewFile(displacement int64, pattern *Pattern) (*File, error) {
	if displacement < 0 {
		return nil, fmt.Errorf("part: negative displacement %d", displacement)
	}
	if pattern == nil {
		return nil, fmt.Errorf("part: nil pattern")
	}
	return &File{Displacement: displacement, Pattern: pattern}, nil
}

// MustFile is NewFile for statically known literals.
func MustFile(displacement int64, pattern *Pattern) *File {
	f, err := NewFile(displacement, pattern)
	if err != nil {
		panic(err)
	}
	return f
}

// PatternCoord translates absolute file offset x into a (repetition,
// in-pattern coordinate) pair. Offsets before the displacement are not
// covered by the partition.
func (f *File) PatternCoord(x int64) (rep, coord int64, err error) {
	if x < f.Displacement {
		return 0, 0, fmt.Errorf("part: offset %d precedes displacement %d", x, f.Displacement)
	}
	rel := x - f.Displacement
	return rel / f.Pattern.Size(), rel % f.Pattern.Size(), nil
}

// ElementOf returns the partition element index owning absolute file
// offset x.
func (f *File) ElementOf(x int64) (int, error) {
	_, coord, err := f.PatternCoord(x)
	if err != nil {
		return 0, err
	}
	return f.Pattern.ElementOf(coord)
}

// ElementBytes returns how many bytes of element e fall within the
// first length bytes of partitioned data (starting at the
// displacement): full repetitions plus the element's share of the
// final partial repetition.
func (f *File) ElementBytes(e int, length int64) int64 {
	ps := f.Pattern.Size()
	set := f.Pattern.Element(e).Set
	full := length / ps
	rem := length % ps
	n := full * set.Size()
	if rem > 0 {
		set.WalkRange(0, rem-1, func(seg falls.LineSegment) bool {
			n += seg.Len()
			return true
		})
	}
	return n
}

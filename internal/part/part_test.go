package part

import (
	"strings"
	"testing"

	"parafile/internal/falls"
)

// fig3File builds the paper's Figure 3 file: displacement 2, three
// subfiles defined by FALLS (0,1,6,1), (2,3,6,1), (4,5,6,1).
func fig3File(t *testing.T) *File {
	t.Helper()
	p, err := NewPattern(
		Element{Name: "subfile0", Set: falls.Set{falls.MustLeaf(0, 1, 6, 1)}},
		Element{Name: "subfile1", Set: falls.Set{falls.MustLeaf(2, 3, 6, 1)}},
		Element{Name: "subfile2", Set: falls.Set{falls.MustLeaf(4, 5, 6, 1)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return MustFile(2, p)
}

func TestFigure3File(t *testing.T) {
	f := fig3File(t)
	if got := f.Pattern.Size(); got != 6 {
		t.Errorf("pattern size = %d, want 6", got)
	}
	// Byte 10 lies in subfile 0's second repetition ([8,9] is
	// subfile0 shifted by displacement+pattern: offsets 2+6+0..1).
	cases := []struct {
		x    int64
		elem int
	}{
		{2, 0}, {3, 0}, {4, 1}, {6, 2}, {8, 0}, {10, 1}, {12, 2}, {14, 0},
	}
	for _, c := range cases {
		got, err := f.ElementOf(c.x)
		if err != nil || got != c.elem {
			t.Errorf("ElementOf(%d) = %d,%v; want %d", c.x, got, err, c.elem)
		}
	}
	if _, err := f.ElementOf(1); err == nil {
		t.Error("ElementOf before displacement should fail")
	}
}

func TestNewPatternRejectsBadTilings(t *testing.T) {
	cases := []struct {
		name  string
		elems []Element
		want  string
	}{
		{"no elements", nil, "at least one"},
		{"empty element", []Element{{Name: "e", Set: nil}}, "empty"},
		{
			"gap",
			[]Element{
				{Name: "a", Set: falls.Set{falls.MustLeaf(0, 1, 2, 1)}},
				{Name: "b", Set: falls.Set{falls.MustLeaf(3, 4, 2, 1)}},
			},
			"gap",
		},
		{
			"overlap",
			[]Element{
				{Name: "a", Set: falls.Set{falls.MustLeaf(0, 2, 3, 1)}},
				{Name: "b", Set: falls.Set{falls.MustLeaf(2, 3, 2, 1)}},
			},
			"overlap",
		},
		{
			"does not start at zero",
			[]Element{{Name: "a", Set: falls.Set{falls.MustLeaf(1, 2, 2, 1)}}},
			"gap",
		},
	}
	for _, c := range cases {
		_, err := NewPattern(c.elems...)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewPatternAcceptsInterleaved(t *testing.T) {
	// Elements may interleave at byte granularity as long as they tile.
	p, err := NewPattern(
		Element{Name: "even", Set: falls.Set{falls.MustLeaf(0, 0, 2, 8)}},
		Element{Name: "odd", Set: falls.Set{falls.MustLeaf(1, 1, 2, 8)}},
	)
	if err != nil {
		t.Fatalf("interleaved tiling rejected: %v", err)
	}
	if p.Size() != 16 {
		t.Errorf("size = %d, want 16", p.Size())
	}
	for x := int64(0); x < 16; x++ {
		e, err := p.ElementOf(x)
		if err != nil {
			t.Fatalf("ElementOf(%d): %v", x, err)
		}
		if want := int(x % 2); e != want {
			t.Errorf("ElementOf(%d) = %d, want %d", x, e, want)
		}
	}
}

func TestFileValidation(t *testing.T) {
	p, _ := Whole(8)
	if _, err := NewFile(-1, p); err == nil {
		t.Error("negative displacement accepted")
	}
	if _, err := NewFile(0, nil); err == nil {
		t.Error("nil pattern accepted")
	}
}

func TestPatternCoord(t *testing.T) {
	f := fig3File(t)
	cases := []struct {
		x, rep, coord int64
	}{
		{2, 0, 0}, {7, 0, 5}, {8, 1, 0}, {19, 2, 5}, {20, 3, 0},
	}
	for _, c := range cases {
		rep, coord, err := f.PatternCoord(c.x)
		if err != nil || rep != c.rep || coord != c.coord {
			t.Errorf("PatternCoord(%d) = %d,%d,%v; want %d,%d", c.x, rep, coord, err, c.rep, c.coord)
		}
	}
}

func TestElementBytes(t *testing.T) {
	f := fig3File(t)
	// First 14 bytes of partitioned data: two full patterns (12 bytes,
	// 4 per element) plus 2 bytes of the third repetition (subfile 0).
	if got := f.ElementBytes(0, 14); got != 6 {
		t.Errorf("ElementBytes(0, 14) = %d, want 6", got)
	}
	if got := f.ElementBytes(1, 14); got != 4 {
		t.Errorf("ElementBytes(1, 14) = %d, want 4", got)
	}
	if got := f.ElementBytes(2, 14); got != 4 {
		t.Errorf("ElementBytes(2, 14) = %d, want 4", got)
	}
	// Element bytes sum to the total length.
	var sum int64
	for e := 0; e < f.Pattern.Len(); e++ {
		sum += f.ElementBytes(e, 14)
	}
	if sum != 14 {
		t.Errorf("element bytes sum to %d, want 14", sum)
	}
}

package part

import (
	"fmt"

	"parafile/internal/falls"
)

// ndarray.go builds multidimensional array partitions. The paper's
// central motivation (§1, §3) is that parallel scientific applications
// partition multidimensional arrays over processors and disks; nested
// FALLS exist to represent exactly the HPF-style BLOCK / CYCLIC(b)
// distributions of such arrays compactly. This file translates an
// n-dimensional distribution specification into one nested FALLS set
// per processor of a processor grid.

// Kind is the per-dimension distribution kind, mirroring HPF.
type Kind int

const (
	// All keeps the dimension undistributed ("*" in HPF).
	All Kind = iota
	// Block gives each grid coordinate one contiguous chunk.
	Block
	// Cyclic deals fixed-size blocks round-robin ("CYCLIC(b)").
	Cyclic
)

func (k Kind) String() string {
	switch k {
	case All:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DimDist describes how one array dimension is distributed.
type DimDist struct {
	Kind  Kind
	Procs int64 // grid extent along this dimension (1 for All)
	Block int64 // block size for Cyclic; ignored otherwise
}

// ArraySpec describes a row-major n-dimensional array of fixed-size
// elements and its distribution over a processor grid.
type ArraySpec struct {
	Dims     []int64   // element counts per dimension
	ElemSize int64     // bytes per array element
	Dists    []DimDist // one per dimension
}

// TotalBytes returns the byte size of the whole array.
func (s ArraySpec) TotalBytes() int64 {
	n := s.ElemSize
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// GridSize returns the number of processors in the grid.
func (s ArraySpec) GridSize() int64 {
	n := int64(1)
	for _, dd := range s.Dists {
		n *= dd.procs()
	}
	return n
}

func (dd DimDist) procs() int64 {
	if dd.Kind == All || dd.Procs < 1 {
		return 1
	}
	return dd.Procs
}

func (s ArraySpec) validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("part: array needs at least one dimension")
	}
	if len(s.Dims) != len(s.Dists) {
		return fmt.Errorf("part: %d dims but %d distributions", len(s.Dims), len(s.Dists))
	}
	if s.ElemSize < 1 {
		return fmt.Errorf("part: non-positive element size %d", s.ElemSize)
	}
	for i, d := range s.Dims {
		if d < 1 {
			return fmt.Errorf("part: dimension %d has non-positive extent %d", i, d)
		}
		dd := s.Dists[i]
		switch dd.Kind {
		case All:
		case Block:
			if dd.Procs < 1 {
				return fmt.Errorf("part: dimension %d: BLOCK needs a positive processor count", i)
			}
		case Cyclic:
			if dd.Procs < 1 || dd.Block < 1 {
				return fmt.Errorf("part: dimension %d: CYCLIC needs positive processor count and block size", i)
			}
		default:
			return fmt.Errorf("part: dimension %d: unknown distribution kind %v", i, dd.Kind)
		}
	}
	return nil
}

// NDArray builds the partitioning pattern of the array: one element
// per processor of the grid, in row-major grid order, each described
// by a nested FALLS set. The resulting pattern tiles the array's byte
// range exactly (validated by NewPattern).
func NDArray(spec ArraySpec) (*Pattern, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	grid := make([]int64, len(spec.Dists))
	for i, dd := range spec.Dists {
		grid[i] = dd.procs()
	}
	total := spec.GridSize()
	elems := make([]Element, 0, total)
	coords := make([]int64, len(grid))
	for p := int64(0); p < total; p++ {
		set, err := spec.buildDim(0, coords)
		if err != nil {
			return nil, fmt.Errorf("part: processor %v: %w", coords, err)
		}
		if set == nil {
			// Entirely undistributed array: single dense element.
			set = falls.Set{falls.Leaf(falls.FromSegment(falls.LineSegment{L: 0, R: spec.TotalBytes() - 1}))}
		}
		elems = append(elems, Element{Name: gridName(coords), Set: set})
		// Advance row-major grid coordinates.
		for i := len(coords) - 1; i >= 0; i-- {
			coords[i]++
			if coords[i] < grid[i] {
				break
			}
			coords[i] = 0
		}
	}
	return NewPattern(elems...)
}

func gridName(coords []int64) string {
	s := "p("
	for i, c := range coords {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", c)
	}
	return s + ")"
}

// run is a contiguous range of selected indices along one dimension.
type run struct {
	start, count int64
}

// buildDim returns the nested FALLS set selecting this processor's
// bytes for dimensions k.. of the array, or nil when everything from
// dimension k on is dense (fully selected).
func (s ArraySpec) buildDim(k int, coords []int64) (falls.Set, error) {
	if k == len(s.Dims) {
		return nil, nil
	}
	inner, err := s.buildDim(k+1, coords)
	if err != nil {
		return nil, err
	}
	d := s.Dims[k]
	rowBytes := s.ElemSize
	for _, dd := range s.Dims[k+1:] {
		rowBytes *= dd
	}
	dd := s.Dists[k]
	c := coords[k]

	var runs []run
	switch dd.Kind {
	case All:
		if inner == nil {
			return nil, nil // dense from here down
		}
		runs = []run{{0, d}}
	case Block:
		chunk := (d + dd.Procs - 1) / dd.Procs
		start := c * chunk
		if start >= d {
			return nil, fmt.Errorf("BLOCK leaves grid coordinate %d of dimension %d empty (extent %d over %d procs)",
				c, k, d, dd.Procs)
		}
		runs = []run{{start, min64(chunk, d-start)}}
	case Cyclic:
		cycle := dd.Procs * dd.Block
		for start := c * dd.Block; start < d; start += cycle {
			runs = append(runs, run{start, min64(dd.Block, d-start)})
		}
		if len(runs) == 0 {
			return nil, fmt.Errorf("CYCLIC leaves grid coordinate %d of dimension %d empty", c, k)
		}
	}
	return runsToSet(runs, d, rowBytes, inner)
}

// runsToSet converts index runs along a dimension into nested FALLS
// members over the dimension's byte space.
func runsToSet(runs []run, extent, rowBytes int64, inner falls.Set) (falls.Set, error) {
	var out falls.Set
	// Group equal-count runs that are equally spaced into single FALLS
	// members; with BLOCK there is one run, with CYCLIC all runs but
	// possibly the last share the block size and spacing.
	i := 0
	for i < len(runs) {
		j := i + 1
		var stride int64
		for j < len(runs) && runs[j].count == runs[i].count {
			gap := runs[j].start - runs[j-1].start
			if stride == 0 {
				stride = gap
			}
			if gap != stride {
				break
			}
			j++
		}
		n := int64(j - i)
		r := runs[i]
		if stride == 0 {
			stride = r.count // single run
		}
		member, err := runMember(r, n, stride, rowBytes, inner)
		if err != nil {
			return nil, err
		}
		out = append(out, member)
		i = j
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// runMember builds one nested FALLS for n equally spaced runs of
// r.count rows, each row rowBytes long, with optional per-row inner
// selection.
func runMember(r run, n, strideRows, rowBytes int64, inner falls.Set) (*falls.Nested, error) {
	l := r.start * rowBytes
	if inner == nil {
		// Dense rows: each run is one contiguous block.
		f, err := falls.New(l, l+r.count*rowBytes-1, strideRows*rowBytes, n)
		if err != nil {
			return nil, err
		}
		return falls.Leaf(f), nil
	}
	// Rows carry an inner pattern: blocks must be single rows so the
	// per-row inner set applies. Wrap runs of multiple rows in an
	// extra level.
	if r.count == 1 && n >= 1 {
		f, err := falls.New(l, l+rowBytes-1, strideRows*rowBytes, n)
		if err != nil {
			return nil, err
		}
		return falls.NewNested(f, inner.Clone())
	}
	outer, err := falls.New(l, l+r.count*rowBytes-1, strideRows*rowBytes, n)
	if err != nil {
		return nil, err
	}
	rowLevel, err := falls.New(0, rowBytes-1, rowBytes, r.count)
	if err != nil {
		return nil, err
	}
	rowNested, err := falls.NewNested(rowLevel, inner.Clone())
	if err != nil {
		return nil, err
	}
	return falls.NewNested(outer, falls.Set{rowNested})
}

// Matrix2D is a convenience for the paper's benchmark workloads: an
// n×m matrix of byte elements.
func Matrix2D(rows, cols int64) ArraySpec {
	return ArraySpec{Dims: []int64{rows, cols}, ElemSize: 1,
		Dists: []DimDist{{Kind: All}, {Kind: All}}}
}

// RowBlocks partitions an n×m byte matrix into p horizontal stripes —
// the paper's logical distribution "blocks of rows" (r).
func RowBlocks(rows, cols int64, p int64) (*Pattern, error) {
	return NDArray(ArraySpec{
		Dims:     []int64{rows, cols},
		ElemSize: 1,
		Dists:    []DimDist{{Kind: Block, Procs: p}, {Kind: All}},
	})
}

// ColBlocks partitions an n×m byte matrix into p vertical stripes —
// the paper's physical distribution "blocks of columns" (c).
func ColBlocks(rows, cols int64, p int64) (*Pattern, error) {
	return NDArray(ArraySpec{
		Dims:     []int64{rows, cols},
		ElemSize: 1,
		Dists:    []DimDist{{Kind: All}, {Kind: Block, Procs: p}},
	})
}

// SquareBlocks partitions an n×m byte matrix over a pr×pc processor
// grid of rectangular blocks — the paper's physical distribution
// "square blocks" (b) when pr == pc.
func SquareBlocks(rows, cols int64, pr, pc int64) (*Pattern, error) {
	return NDArray(ArraySpec{
		Dims:     []int64{rows, cols},
		ElemSize: 1,
		Dists:    []DimDist{{Kind: Block, Procs: pr}, {Kind: Block, Procs: pc}},
	})
}

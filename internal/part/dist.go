package part

import (
	"fmt"
	"sort"

	"parafile/internal/falls"
)

// dist.go provides the one-dimensional distribution builders: HPF
// BLOCK and CYCLIC(b) partitions of a byte range, and round-robin
// striping patterns as used by the Figure 3 example.

// Block1D partitions total bytes among p elements in HPF BLOCK
// fashion: element i owns the contiguous chunk
// [i*ceil(total/p), ...). Every element must end up non-empty.
func Block1D(total int64, p int) (*Pattern, error) {
	if total < 1 || p < 1 {
		return nil, fmt.Errorf("part: Block1D(total=%d, p=%d): arguments must be positive", total, p)
	}
	chunk := (total + int64(p) - 1) / int64(p)
	elems := make([]Element, 0, p)
	for i := 0; i < p; i++ {
		lo := int64(i) * chunk
		hi := min64(lo+chunk, total) - 1
		if lo > hi {
			return nil, fmt.Errorf("part: Block1D: element %d would be empty (total=%d, p=%d)", i, total, p)
		}
		elems = append(elems, Element{
			Name: fmt.Sprintf("block%d", i),
			Set:  falls.Set{falls.Leaf(falls.FromSegment(falls.LineSegment{L: lo, R: hi}))},
		})
	}
	return NewPattern(elems...)
}

// Cyclic1D partitions total bytes among p elements in HPF CYCLIC(b)
// fashion: blocks of b bytes are dealt round-robin. total must be a
// positive multiple of b; the final cycle may be partial across
// elements.
func Cyclic1D(total int64, p int, b int64) (*Pattern, error) {
	if total < 1 || p < 1 || b < 1 {
		return nil, fmt.Errorf("part: Cyclic1D(total=%d, p=%d, b=%d): arguments must be positive", total, p, b)
	}
	if total%b != 0 {
		return nil, fmt.Errorf("part: Cyclic1D: total %d not a multiple of block size %d", total, b)
	}
	nBlocks := total / b
	cycle := int64(p) * b
	elems := make([]Element, 0, p)
	for i := 0; i < p; i++ {
		first := int64(i) // first block index owned by element i
		if first >= nBlocks {
			return nil, fmt.Errorf("part: Cyclic1D: element %d would be empty (%d blocks, %d elements)", i, nBlocks, p)
		}
		n := (nBlocks - first + int64(p) - 1) / int64(p)
		l := first * b
		f, err := falls.New(l, l+b-1, cycle, n)
		if err != nil {
			return nil, err
		}
		elems = append(elems, Element{Name: fmt.Sprintf("cyclic%d", i), Set: falls.Set{falls.Leaf(f)}})
	}
	return NewPattern(elems...)
}

// Stripe builds the round-robin striping pattern of classic parallel
// file systems (and of the paper's Figure 3): stripe units of
// stripeSize bytes dealt over p elements; the pattern has one stripe
// unit per element and repeats. Figure 3 is Stripe(2, 3).
func Stripe(stripeSize int64, p int) (*Pattern, error) {
	if stripeSize < 1 || p < 1 {
		return nil, fmt.Errorf("part: Stripe(%d, %d): arguments must be positive", stripeSize, p)
	}
	elems := make([]Element, 0, p)
	for i := 0; i < p; i++ {
		l := int64(i) * stripeSize
		f, err := falls.New(l, l+stripeSize-1, stripeSize*int64(p), 1)
		if err != nil {
			return nil, err
		}
		elems = append(elems, Element{Name: fmt.Sprintf("stripe%d", i), Set: falls.Set{falls.Leaf(f)}})
	}
	return NewPattern(elems...)
}

// Irregular builds a pattern from explicit per-element segment lists —
// the arbitrary, non-array distributions §4 claims the representation
// covers ("they can represent arbitrary distributions of data").
// Together the segments must tile [0, total) for some total; each
// element's list is compacted into nested FALLS form.
func Irregular(names []string, segments [][]falls.LineSegment) (*Pattern, error) {
	if len(names) != len(segments) {
		return nil, fmt.Errorf("part: %d names for %d segment lists", len(names), len(segments))
	}
	elems := make([]Element, len(names))
	for i := range names {
		segs := append([]falls.LineSegment(nil), segments[i]...)
		sortSegments(segs)
		for j := 1; j < len(segs); j++ {
			if segs[j].L <= segs[j-1].R {
				return nil, fmt.Errorf("part: element %q has overlapping segments %v and %v",
					names[i], segs[j-1], segs[j])
			}
		}
		elems[i] = Element{Name: names[i], Set: falls.LeavesToSet(segs)}
	}
	return NewPattern(elems...)
}

func sortSegments(segs []falls.LineSegment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].L < segs[j].L })
}

// Whole builds the trivial single-element pattern covering total
// bytes: the identity partition (one linear view of the whole file).
func Whole(total int64) (*Pattern, error) {
	if total < 1 {
		return nil, fmt.Errorf("part: Whole(%d): size must be positive", total)
	}
	return NewPattern(Element{
		Name: "whole",
		Set:  falls.Set{falls.Leaf(falls.FromSegment(falls.LineSegment{L: 0, R: total - 1}))},
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

package part

import (
	"fmt"

	"parafile/internal/falls"
)

// pitfalls.go builds the compact processor-indexed representation of a
// distribution: one nested PITFALLS describing all processors at once
// (paper §4: "for regular distributions, a set of nested FALLS can be
// shortly expressed using the nested PITFALLS representation").
// Expanding the PITFALLS for each processor index reproduces exactly
// the per-element sets NDArray builds.

// NDArrayPITFALLS builds a nested PITFALLS for the distribution. Every
// dimension contributes one tree level; dimensions distributed over p
// grid coordinates become the processor-indexed levels.
//
// The construction covers specs whose BLOCK dimensions divide evenly
// and whose CYCLIC dimensions have whole cycles (the regular
// distributions PITFALLS exist for); other specs must use NDArray's
// general per-element form.
func NDArrayPITFALLS(spec ArraySpec) (*falls.PITFALLS, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	for k, dd := range spec.Dists {
		switch dd.Kind {
		case Block:
			if spec.Dims[k]%dd.Procs != 0 {
				return nil, fmt.Errorf("part: PITFALLS needs BLOCK dimension %d (%d) divisible by %d",
					k, spec.Dims[k], dd.Procs)
			}
		case Cyclic:
			if spec.Dims[k]%(dd.Procs*dd.Block) != 0 {
				return nil, fmt.Errorf("part: PITFALLS needs CYCLIC dimension %d (%d) divisible by the cycle %d",
					k, spec.Dims[k], dd.Procs*dd.Block)
			}
		}
	}
	pf, err := buildPITFALLSDim(spec, 0)
	if err != nil {
		return nil, err
	}
	if pf == nil {
		// Fully undistributed: one processor owning everything.
		return falls.NewPITFALLS(0, spec.TotalBytes()-1, spec.TotalBytes(), 1, 0, 1)
	}
	return pf, nil
}

func buildPITFALLSDim(spec ArraySpec, k int) (*falls.PITFALLS, error) {
	if k == len(spec.Dims) {
		return nil, nil
	}
	inner, err := buildPITFALLSDim(spec, k+1)
	if err != nil {
		return nil, err
	}
	d := spec.Dims[k]
	rowBytes := spec.ElemSize
	for _, dd := range spec.Dims[k+1:] {
		rowBytes *= dd
	}
	dd := spec.Dists[k]
	var pf *falls.PITFALLS
	switch dd.Kind {
	case All:
		if inner == nil {
			return nil, nil
		}
		pf = &falls.PITFALLS{L: 0, R: rowBytes - 1, S: rowBytes, N: d, D: 0, P: 1}
	case Block:
		chunk := d / dd.Procs
		if inner == nil {
			// Dense chunks: one segment per processor.
			pf = &falls.PITFALLS{
				L: 0, R: chunk*rowBytes - 1, S: chunk * rowBytes, N: 1,
				D: chunk * rowBytes, P: dd.Procs,
			}
		} else {
			// Row-granular blocks so the inner pattern applies per row.
			pf = &falls.PITFALLS{
				L: 0, R: rowBytes - 1, S: rowBytes, N: chunk,
				D: chunk * rowBytes, P: dd.Procs,
			}
		}
	case Cyclic:
		cycles := d / (dd.Procs * dd.Block)
		if inner == nil {
			pf = &falls.PITFALLS{
				L: 0, R: dd.Block*rowBytes - 1, S: dd.Procs * dd.Block * rowBytes, N: cycles,
				D: dd.Block * rowBytes, P: dd.Procs,
			}
		} else {
			// Outer level: the processor's cyclic runs; inner level:
			// the rows of one run carrying the deeper pattern.
			rows := &falls.PITFALLS{L: 0, R: rowBytes - 1, S: rowBytes, N: dd.Block, D: 0, P: 1}
			if inner != nil {
				rows.Inner = []*falls.PITFALLS{inner}
			}
			pf = &falls.PITFALLS{
				L: 0, R: dd.Block*rowBytes - 1, S: dd.Procs * dd.Block * rowBytes, N: cycles,
				D: dd.Block * rowBytes, P: dd.Procs,
				Inner: []*falls.PITFALLS{rows},
			}
			if err := pf.Validate(); err != nil {
				return nil, err
			}
			return pf, nil
		}
	}
	if inner != nil {
		pf.Inner = []*falls.PITFALLS{inner}
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	return pf, nil
}

package part

import (
	"testing"

	"parafile/internal/falls"
)

// checkPITFALLSMatchesNDArray verifies the compact processor-indexed
// form expands to exactly the per-element sets of the general builder.
func checkPITFALLSMatchesNDArray(t *testing.T, spec ArraySpec) {
	t.Helper()
	pf, err := NDArrayPITFALLS(spec)
	if err != nil {
		t.Fatalf("NDArrayPITFALLS(%+v): %v", spec, err)
	}
	sets, err := pf.ExpandGrid()
	if err != nil {
		t.Fatalf("ExpandGrid: %v", err)
	}
	pat, err := NDArray(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != pat.Len() {
		t.Fatalf("PITFALLS expands to %d processors, pattern has %d elements (spec %+v)",
			len(sets), pat.Len(), spec)
	}
	for e := 0; e < pat.Len(); e++ {
		if !falls.OffsetsEqual(sets[e], pat.Element(e).Set) {
			t.Fatalf("processor %d differs:\nPITFALLS %v -> %v\nNDArray %v (spec %+v)",
				e, pf, sets[e], pat.Element(e).Set, spec)
		}
	}
}

func TestPITFALLSMatchesNDArray(t *testing.T) {
	specs := map[string]ArraySpec{
		"row blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 4}, {Kind: All}}},
		"column blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: All}, {Kind: Block, Procs: 4}}},
		"square blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Block, Procs: 2}}},
		"cyclic": {Dims: []int64{12}, ElemSize: 2,
			Dists: []DimDist{{Kind: Cyclic, Procs: 3, Block: 2}}},
		"block-cyclic 2d": {Dims: []int64{8, 12}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Cyclic, Procs: 3, Block: 2}}},
		"cyclic-cyclic elem4": {Dims: []int64{4, 8}, ElemSize: 4,
			Dists: []DimDist{{Kind: Cyclic, Procs: 2, Block: 1}, {Kind: Cyclic, Procs: 2, Block: 2}}},
		"3d mixed": {Dims: []int64{4, 6, 4}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Cyclic, Procs: 3, Block: 1}, {Kind: All}}},
		"undistributed": {Dims: []int64{4, 4}, ElemSize: 1,
			Dists: []DimDist{{Kind: All}, {Kind: All}}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) { checkPITFALLSMatchesNDArray(t, spec) })
	}
}

func TestPITFALLSIrregularRejected(t *testing.T) {
	// BLOCK that does not divide evenly has no compact PITFALLS form.
	if _, err := NDArrayPITFALLS(ArraySpec{
		Dims: []int64{10}, ElemSize: 1,
		Dists: []DimDist{{Kind: Block, Procs: 4}},
	}); err == nil {
		t.Error("uneven BLOCK accepted")
	}
	if _, err := NDArrayPITFALLS(ArraySpec{
		Dims: []int64{10}, ElemSize: 1,
		Dists: []DimDist{{Kind: Cyclic, Procs: 2, Block: 2}},
	}); err == nil {
		t.Error("partial CYCLIC cycle accepted")
	}
}

func TestPITFALLSGridShape(t *testing.T) {
	pf, err := NDArrayPITFALLS(ArraySpec{
		Dims: []int64{8, 8}, ElemSize: 1,
		Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Block, Procs: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	shape := pf.GridShape()
	if len(shape) != 2 || shape[0] != 2 || shape[1] != 4 {
		t.Errorf("GridShape = %v, want [2 4]", shape)
	}
	// Representation is compact: a handful of tree nodes regardless of
	// the array size.
	big, err := NDArrayPITFALLS(ArraySpec{
		Dims: []int64{4096, 4096}, ElemSize: 8,
		Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Block, Procs: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodes := countNodes(big); nodes > 4 {
		t.Errorf("PITFALLS has %d nodes for a 128 MiB array, want <= 4", nodes)
	}
}

func countNodes(pf *falls.PITFALLS) int {
	n := 1
	for _, in := range pf.Inner {
		n += countNodes(in)
	}
	return n
}

func TestProcessorAtValidation(t *testing.T) {
	pf, err := NDArrayPITFALLS(ArraySpec{
		Dims: []int64{8, 8}, ElemSize: 1,
		Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Block, Procs: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.ProcessorAt([]int64{0}); err == nil {
		t.Error("missing coordinate accepted")
	}
	if _, err := pf.ProcessorAt([]int64{0, 0, 0}); err == nil {
		t.Error("excess coordinate accepted")
	}
	if _, err := pf.ProcessorAt([]int64{2, 0}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

package part

import (
	"testing"

	"parafile/internal/falls"
)

func TestBlock1D(t *testing.T) {
	p, err := Block1D(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 12 || p.Len() != 3 {
		t.Fatalf("size=%d len=%d, want 12, 3", p.Size(), p.Len())
	}
	for i := 0; i < 3; i++ {
		set := p.Element(i).Set
		if set.Size() != 4 {
			t.Errorf("element %d size = %d, want 4", i, set.Size())
		}
		if !set.IsContiguous(int64(i)*4, int64(i)*4+3) {
			t.Errorf("element %d not the expected contiguous chunk", i)
		}
	}
	// Uneven split: ceil-division chunks, last one short.
	p, err = Block1D(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{3, 3, 3, 1}
	for i, want := range sizes {
		if got := p.Element(i).Set.Size(); got != want {
			t.Errorf("uneven element %d size = %d, want %d", i, got, want)
		}
	}
	// A split that would leave an element empty must fail.
	if _, err := Block1D(3, 4); err == nil {
		t.Error("Block1D(3, 4) should fail: element 3 would be empty")
	}
}

func TestCyclic1D(t *testing.T) {
	p, err := Cyclic1D(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 24 {
		t.Fatalf("size = %d, want 24", p.Size())
	}
	// Element 1 owns bytes {2,3, 8,9, 14,15, 20,21}.
	want := []int64{2, 3, 8, 9, 14, 15, 20, 21}
	got := p.Element(1).Set.Offsets()
	if len(got) != len(want) {
		t.Fatalf("element 1 offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element 1 offsets = %v, want %v", got, want)
		}
	}
	// Partial final cycle.
	p, err = Cyclic1D(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Element(0).Set.Size(); got != 6 {
		t.Errorf("partial cycle element 0 size = %d, want 6", got)
	}
	if got := p.Element(1).Set.Size(); got != 4 {
		t.Errorf("partial cycle element 1 size = %d, want 4", got)
	}
	if _, err := Cyclic1D(10, 2, 3); err == nil {
		t.Error("Cyclic1D with non-multiple total should fail")
	}
}

func TestStripeMatchesFigure3(t *testing.T) {
	p, err := Stripe(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []falls.Set{
		{falls.MustLeaf(0, 1, 6, 1)},
		{falls.MustLeaf(2, 3, 6, 1)},
		{falls.MustLeaf(4, 5, 6, 1)},
	}
	for i := range want {
		if !falls.OffsetsEqual(p.Element(i).Set, want[i]) {
			t.Errorf("stripe element %d = %v, want %v", i, p.Element(i).Set, want[i])
		}
	}
}

func TestWhole(t *testing.T) {
	p, err := Whole(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Size() != 64 {
		t.Fatalf("Whole: len=%d size=%d", p.Len(), p.Size())
	}
	if !p.Element(0).Set.IsContiguous(0, 63) {
		t.Error("Whole element not contiguous")
	}
}

func TestDistArgumentValidation(t *testing.T) {
	if _, err := Block1D(0, 3); err == nil {
		t.Error("Block1D zero total accepted")
	}
	if _, err := Cyclic1D(8, 0, 2); err == nil {
		t.Error("Cyclic1D zero procs accepted")
	}
	if _, err := Stripe(0, 2); err == nil {
		t.Error("Stripe zero size accepted")
	}
	if _, err := Whole(0); err == nil {
		t.Error("Whole zero size accepted")
	}
}

// TestIrregular: arbitrary segment lists become a valid partition with
// working ownership, as long as they tile.
func TestIrregular(t *testing.T) {
	p, err := Irregular(
		[]string{"meta", "data", "log"},
		[][]falls.LineSegment{
			{{L: 0, R: 7}, {L: 40, R: 43}},
			{{L: 8, R: 31}},
			{{L: 32, R: 39}, {L: 44, R: 47}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 48 || p.Len() != 3 {
		t.Fatalf("irregular pattern size=%d len=%d", p.Size(), p.Len())
	}
	owner := func(x int64) string {
		e, err := p.ElementOf(x)
		if err != nil {
			t.Fatal(err)
		}
		return p.Element(e).Name
	}
	if owner(3) != "meta" || owner(41) != "meta" {
		t.Error("meta segments misattributed")
	}
	if owner(8) != "data" || owner(31) != "data" {
		t.Error("data segment misattributed")
	}
	if owner(35) != "log" || owner(45) != "log" {
		t.Error("log segments misattributed")
	}
	// Unsorted input is accepted and sorted.
	p2, err := Irregular([]string{"a", "b"},
		[][]falls.LineSegment{{{L: 4, R: 7}, {L: 0, R: 1}}, {{L: 2, R: 3}}})
	if err != nil || p2.Size() != 8 {
		t.Fatalf("unsorted irregular: %v, size %v", err, p2)
	}
	// Overlaps and gaps fail.
	if _, err := Irregular([]string{"a"},
		[][]falls.LineSegment{{{L: 0, R: 4}, {L: 4, R: 8}}}); err == nil {
		t.Error("overlapping segments accepted")
	}
	if _, err := Irregular([]string{"a"},
		[][]falls.LineSegment{{{L: 0, R: 2}, {L: 5, R: 8}}}); err == nil {
		t.Error("gapped tiling accepted")
	}
	if _, err := Irregular([]string{"a"}, nil); err == nil {
		t.Error("name/segment count mismatch accepted")
	}
}

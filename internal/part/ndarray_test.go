package part

import (
	"math/rand"
	"testing"
)

// ownerOracle computes, straight from the distribution definition,
// which grid processor owns array element (i, j, ...) — the reference
// the nested FALLS construction is checked against.
func ownerOracle(spec ArraySpec, idx []int64) int {
	owner := 0
	for k, dd := range spec.Dists {
		var c int64
		switch dd.Kind {
		case All:
			c = 0
		case Block:
			chunk := (spec.Dims[k] + dd.Procs - 1) / dd.Procs
			c = idx[k] / chunk
		case Cyclic:
			c = (idx[k] / dd.Block) % dd.Procs
		}
		owner = owner*int(dd.procs()) + int(c)
	}
	return owner
}

// byteOffset converts an element index vector to a row-major byte
// offset.
func byteOffset(spec ArraySpec, idx []int64) int64 {
	off := int64(0)
	for k := range spec.Dims {
		off = off*spec.Dims[k] + idx[k]
	}
	return off * spec.ElemSize
}

func checkAgainstOracle(t *testing.T, spec ArraySpec) {
	t.Helper()
	p, err := NDArray(spec)
	if err != nil {
		t.Fatalf("NDArray(%+v): %v", spec, err)
	}
	if p.Size() != spec.TotalBytes() {
		t.Fatalf("pattern size %d != array bytes %d", p.Size(), spec.TotalBytes())
	}
	idx := make([]int64, len(spec.Dims))
	var walk func(k int)
	walk = func(k int) {
		if t.Failed() {
			return
		}
		if k == len(spec.Dims) {
			want := ownerOracle(spec, idx)
			for b := int64(0); b < spec.ElemSize; b++ {
				got, err := p.ElementOf(byteOffset(spec, idx) + b)
				if err != nil {
					t.Fatalf("ElementOf(%v + %d): %v", idx, b, err)
				}
				if got != want {
					t.Fatalf("element %v byte %d: owner %d, oracle %d (spec %+v)",
						idx, b, got, want, spec)
				}
			}
			return
		}
		for idx[k] = 0; idx[k] < spec.Dims[k]; idx[k]++ {
			walk(k + 1)
		}
		idx[k] = 0
	}
	walk(0)
}

func TestRowColSquareLayouts(t *testing.T) {
	// The paper's three physical layouts of an 8×8 byte matrix over 4
	// processors.
	specs := map[string]ArraySpec{
		"row blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 4}, {Kind: All}}},
		"column blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: All}, {Kind: Block, Procs: 4}}},
		"square blocks": {Dims: []int64{8, 8}, ElemSize: 1,
			Dists: []DimDist{{Kind: Block, Procs: 2}, {Kind: Block, Procs: 2}}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) { checkAgainstOracle(t, spec) })
	}
}

func TestRowBlocksShape(t *testing.T) {
	p, err := RowBlocks(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each stripe is a contiguous run of 2 rows = 16 bytes.
	for i := 0; i < 4; i++ {
		set := p.Element(i).Set
		if set.Size() != 16 {
			t.Errorf("stripe %d size = %d, want 16", i, set.Size())
		}
		if !set.IsContiguous(int64(i)*16, int64(i)*16+15) {
			t.Errorf("stripe %d is not contiguous", i)
		}
	}
}

func TestColBlocksShape(t *testing.T) {
	p, err := ColBlocks(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Each element owns 2 columns: FALLS with 8 segments of 2 bytes,
	// stride 8.
	for i := 0; i < 4; i++ {
		set := p.Element(i).Set
		if set.Size() != 16 {
			t.Errorf("column element %d size = %d, want 16", i, set.Size())
		}
		if got := set.SegmentCount(); got != 8 {
			t.Errorf("column element %d has %d segments, want 8", i, got)
		}
	}
}

func TestSquareBlocksShape(t *testing.T) {
	p, err := SquareBlocks(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Element p(1,0) owns rows 4-7, columns 0-3: 4 segments of 4
	// bytes starting at byte 32.
	set := p.Element(2).Set
	off := set.Offsets()
	want := []int64{32, 33, 34, 35, 40, 41, 42, 43, 48, 49, 50, 51, 56, 57, 58, 59}
	if len(off) != len(want) {
		t.Fatalf("p(1,0) offsets = %v, want %v", off, want)
	}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("p(1,0) offsets = %v, want %v", off, want)
		}
	}
}

func TestCyclicDistribution(t *testing.T) {
	checkAgainstOracle(t, ArraySpec{
		Dims:     []int64{12},
		ElemSize: 2,
		Dists:    []DimDist{{Kind: Cyclic, Procs: 3, Block: 2}},
	})
}

func TestBlockCyclic2D(t *testing.T) {
	checkAgainstOracle(t, ArraySpec{
		Dims:     []int64{8, 12},
		ElemSize: 1,
		Dists: []DimDist{
			{Kind: Block, Procs: 2},
			{Kind: Cyclic, Procs: 3, Block: 2},
		},
	})
}

func TestCyclicCyclic2DWithElemSize(t *testing.T) {
	checkAgainstOracle(t, ArraySpec{
		Dims:     []int64{6, 8},
		ElemSize: 4,
		Dists: []DimDist{
			{Kind: Cyclic, Procs: 2, Block: 1},
			{Kind: Cyclic, Procs: 2, Block: 2},
		},
	})
}

func Test3DArray(t *testing.T) {
	checkAgainstOracle(t, ArraySpec{
		Dims:     []int64{4, 6, 4},
		ElemSize: 1,
		Dists: []DimDist{
			{Kind: Block, Procs: 2},
			{Kind: Cyclic, Procs: 3, Block: 1},
			{Kind: All},
		},
	})
}

func TestUndistributedArray(t *testing.T) {
	p, err := NDArray(ArraySpec{
		Dims:     []int64{4, 4},
		ElemSize: 1,
		Dists:    []DimDist{{Kind: All}, {Kind: All}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Size() != 16 {
		t.Fatalf("undistributed: len=%d size=%d", p.Len(), p.Size())
	}
}

func TestNDArrayValidation(t *testing.T) {
	bad := []ArraySpec{
		{},
		{Dims: []int64{4}, ElemSize: 1, Dists: nil},
		{Dims: []int64{4}, ElemSize: 0, Dists: []DimDist{{Kind: All}}},
		{Dims: []int64{0}, ElemSize: 1, Dists: []DimDist{{Kind: All}}},
		{Dims: []int64{4}, ElemSize: 1, Dists: []DimDist{{Kind: Block}}},
		{Dims: []int64{4}, ElemSize: 1, Dists: []DimDist{{Kind: Cyclic, Procs: 2}}},
		{Dims: []int64{2}, ElemSize: 1, Dists: []DimDist{{Kind: Block, Procs: 4}}}, // empty elements
	}
	for i, spec := range bad {
		if _, err := NDArray(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
}

// TestPropertyRandomSpecsAgainstOracle: random small specs always tile
// and agree with the ownership oracle.
func TestPropertyRandomSpecsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	kinds := []Kind{All, Block, Cyclic}
	for iter := 0; iter < 60; iter++ {
		nd := 1 + rng.Intn(3)
		spec := ArraySpec{ElemSize: int64(1 + rng.Intn(3))}
		for k := 0; k < nd; k++ {
			d := int64(2 + rng.Intn(7))
			dd := DimDist{Kind: kinds[rng.Intn(len(kinds))]}
			switch dd.Kind {
			case Block:
				// Keep every element non-empty: procs at most extent.
				dd.Procs = 1 + rng.Int63n(d)
				chunk := (d + dd.Procs - 1) / dd.Procs
				if (dd.Procs-1)*chunk >= d {
					dd.Kind = All // would leave holes; skip
				}
			case Cyclic:
				dd.Block = 1 + rng.Int63n(2)
				maxProcs := d / dd.Block
				if maxProcs < 1 {
					dd.Kind = All
				} else {
					dd.Procs = 1 + rng.Int63n(maxProcs)
				}
			}
			spec.Dims = append(spec.Dims, d)
			spec.Dists = append(spec.Dists, dd)
		}
		checkAgainstOracle(t, spec)
	}
}

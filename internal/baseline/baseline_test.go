package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/core"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// TestBytewiseMatchesPlan: the per-byte baseline and the segment-wise
// plan produce identical results.
func TestBytewiseMatchesPlan(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	sq, _ := part.SquareBlocks(16, 16, 2, 2)
	layouts := []*part.Pattern{rows, cols, sq}
	rng := rand.New(rand.NewSource(90))
	img := make([]byte, 256)
	rng.Read(img)
	for _, a := range layouts {
		for _, b := range layouts {
			src := part.MustFile(0, a)
			dst := part.MustFile(0, b)
			srcBufs := redist.SplitFile(src, img)
			want := redist.SplitFile(dst, img)

			plan, err := redist.NewPlan(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			planOut := make([][]byte, len(want))
			byteOut := make([][]byte, len(want))
			for i := range want {
				planOut[i] = make([]byte, len(want[i]))
				byteOut[i] = make([]byte, len(want[i]))
			}
			if err := plan.Execute(srcBufs, planOut, 256); err != nil {
				t.Fatal(err)
			}
			if err := BytewiseRedistribute(src, dst, srcBufs, byteOut, 256); err != nil {
				t.Fatal(err)
			}
			for e := range want {
				if !bytes.Equal(planOut[e], want[e]) {
					t.Fatalf("plan output differs on element %d", e)
				}
				if !bytes.Equal(byteOut[e], want[e]) {
					t.Fatalf("bytewise output differs on element %d", e)
				}
			}
		}
	}
}

func TestBytewiseValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	f := part.MustFile(0, rows)
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 16)
	}
	if err := BytewiseRedistribute(nil, f, bufs, bufs, 8); err == nil {
		t.Error("nil file accepted")
	}
	if err := BytewiseRedistribute(f, f, bufs[:2], bufs, 8); err == nil {
		t.Error("short buffer list accepted")
	}
	short := [][]byte{{}, {}, {}, {}}
	if err := BytewiseRedistribute(f, f, short, bufs, 8); err == nil {
		t.Error("undersized source accepted")
	}
}

func TestBitPermutationValidation(t *testing.T) {
	if _, err := NewBitPermutation([]int{0, 0}); err == nil {
		t.Error("duplicate bit accepted")
	}
	if _, err := NewBitPermutation([]int{0, 5}); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if _, err := NewBitPermutation(make([]int, 70)); err == nil {
		t.Error("overwide permutation accepted")
	}
}

// TestBitPermutationBijection: Map followed by Inverse().Map is the
// identity over the whole address space.
func TestBitPermutationBijection(t *testing.T) {
	bp, err := StripeMapping(8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	inv := bp.Inverse()
	seen := make(map[int64]bool)
	for x := int64(0); x < bp.Size(); x++ {
		y, err := bp.Map(x)
		if err != nil {
			t.Fatal(err)
		}
		if seen[y] {
			t.Fatalf("address %d produced twice", y)
		}
		seen[y] = true
		back, err := inv.Map(y)
		if err != nil {
			t.Fatal(err)
		}
		if back != x {
			t.Fatalf("inverse(map(%d)) = %d", x, back)
		}
	}
}

// TestNCubeEquivalenceWithFALLS: for power-of-two striping, the nCube
// bit permutation computes exactly MAP_S of the corresponding stripe
// pattern — the paper's claim that its mapping functions are "a
// superset of those from nCube".
func TestNCubeEquivalenceWithFALLS(t *testing.T) {
	const (
		addrBits = 10 // 1 KiB file
		diskBits = 2  // 4 disks
		unitBits = 4  // 16-byte stripe units
	)
	bp, err := StripeMapping(addrBits, diskBits, unitBits)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := part.Stripe(1<<unitBits, 1<<diskBits)
	if err != nil {
		t.Fatal(err)
	}
	file := part.MustFile(0, pat)
	mappers := make([]*core.Mapper, 4)
	for d := range mappers {
		mappers[d] = core.MustMapper(file, d)
	}
	for x := int64(0); x < bp.Size(); x++ {
		y, err := bp.Map(x)
		if err != nil {
			t.Fatal(err)
		}
		disk, local := DiskOf(bp, diskBits, y)
		// FALLS view of the same layout.
		e, err := file.ElementOf(x)
		if err != nil {
			t.Fatal(err)
		}
		off, err := mappers[e].Map(x)
		if err != nil {
			t.Fatal(err)
		}
		if int64(e) != disk || off != local {
			t.Fatalf("offset %d: nCube says disk %d local %d, FALLS says %d/%d",
				x, disk, local, e, off)
		}
	}
}

// TestFALLSHandlesNonPowerOfTwo: the FALLS model covers geometries the
// bit permutation cannot express at all.
func TestFALLSHandlesNonPowerOfTwo(t *testing.T) {
	// Three disks, 6-byte stripes: impossible as a bit permutation.
	if _, err := part.Stripe(6, 3); err != nil {
		t.Fatalf("FALLS stripe over 3 disks failed: %v", err)
	}
	// There is no integer diskBits with 2^diskBits == 3; the closest
	// nCube geometry cannot even address it.
	for bits := 0; bits < 4; bits++ {
		if 1<<bits == 3 {
			t.Fatal("3 is not a power of two; test is self-contradictory")
		}
	}
}

func TestStripeMappingValidation(t *testing.T) {
	if _, err := StripeMapping(4, 3, 3); err == nil {
		t.Error("geometry wider than address accepted")
	}
	if _, err := StripeMapping(8, -1, 2); err == nil {
		t.Error("negative disk bits accepted")
	}
}

func TestMapRangeChecks(t *testing.T) {
	bp, _ := StripeMapping(6, 1, 2)
	if _, err := bp.Map(-1); err == nil {
		t.Error("negative address accepted")
	}
	if _, err := bp.Map(64); err == nil {
		t.Error("overflowing address accepted")
	}
}

package baseline

import (
	"fmt"

	"parafile/internal/part"
)

// dimwise.go implements the PARADIGM-style array redistribution the
// paper builds on and generalizes (§2): for two distributions of the
// SAME multidimensional array, the intersection is computed
// independently per array dimension and the common block is the
// cartesian product. The paper's point is the restriction — "this will
// not generally work if the array has to be redistributed to another
// array with different sizes of at least one dimension", nor between
// arbitrary byte-level partitions; the nested-FALLS algorithm removes
// both limits. This baseline exists to demonstrate the equivalence on
// the cases it does cover and to benchmark against.

// dimRange is a contiguous run of global indices along one dimension.
type dimRange struct {
	lo, hi int64 // inclusive
}

// ownedRanges returns the global index runs a grid coordinate owns
// along one dimension (BLOCK: one run; All: everything; CYCLIC: one
// run per cycle).
func ownedRanges(d part.DimDist, extent, coord int64) []dimRange {
	switch d.Kind {
	case part.Block:
		chunk := (extent + d.Procs - 1) / d.Procs
		lo := coord * chunk
		hi := min64(lo+chunk, extent) - 1
		if lo > hi {
			return nil
		}
		return []dimRange{{lo, hi}}
	case part.Cyclic:
		var out []dimRange
		cycle := d.Procs * d.Block
		for start := coord * d.Block; start < extent; start += cycle {
			out = append(out, dimRange{start, min64(start+d.Block, extent) - 1})
		}
		return out
	default:
		return []dimRange{{0, extent - 1}}
	}
}

// intersectRanges intersects two run lists of one dimension.
func intersectRanges(a, b []dimRange) []dimRange {
	var out []dimRange
	for _, x := range a {
		for _, y := range b {
			lo := max64(x.lo, y.lo)
			hi := min64(x.hi, y.hi)
			if lo <= hi {
				out = append(out, dimRange{lo, hi})
			}
		}
	}
	return out
}

// localOffset converts a global index vector to the processor's local
// element ordinal under its distribution (packed row-major local
// array, which matches the element's MAP enumeration).
func localOffset(spec part.ArraySpec, coords []int64, idx []int64) int64 {
	var off int64
	for k := range spec.Dims {
		d := spec.Dists[k]
		var local, localExtent int64
		switch d.Kind {
		case part.Block:
			chunk := (spec.Dims[k] + d.Procs - 1) / d.Procs
			local = idx[k] - coords[k]*chunk
			localExtent = min64(chunk, spec.Dims[k]-coords[k]*chunk)
		case part.Cyclic:
			cycle := d.Procs * d.Block
			local = idx[k]/cycle*d.Block + idx[k]%d.Block
			localExtent = ownedCount(d, spec.Dims[k], coords[k])
		default:
			local = idx[k]
			localExtent = spec.Dims[k]
		}
		off = off*localExtent + local
	}
	return off
}

// ownedCount counts the indices a coordinate owns along one dimension.
func ownedCount(d part.DimDist, extent, coord int64) int64 {
	var n int64
	for _, r := range ownedRanges(d, extent, coord) {
		n += r.hi - r.lo + 1
	}
	return n
}

// DimwiseRedistribute converts a distributed array between two
// distributions of the same shape and element size using per-dimension
// intersections. src[p] / dst[q] hold the packed local arrays in
// row-major grid order.
func DimwiseRedistribute(srcSpec, dstSpec part.ArraySpec, src, dst [][]byte) error {
	if len(srcSpec.Dims) != len(dstSpec.Dims) {
		return fmt.Errorf("baseline: rank mismatch %d vs %d", len(srcSpec.Dims), len(dstSpec.Dims))
	}
	for k := range srcSpec.Dims {
		if srcSpec.Dims[k] != dstSpec.Dims[k] {
			return fmt.Errorf("baseline: dimension %d differs (%d vs %d): the dimension-wise "+
				"algorithm requires identical array shapes", k, srcSpec.Dims[k], dstSpec.Dims[k])
		}
	}
	if srcSpec.ElemSize != dstSpec.ElemSize {
		return fmt.Errorf("baseline: element sizes differ")
	}
	es := srcSpec.ElemSize
	srcGrid := gridOf(srcSpec)
	dstGrid := gridOf(dstSpec)
	if len(src) != gridTotal(srcGrid) || len(dst) != gridTotal(dstGrid) {
		return fmt.Errorf("baseline: buffer counts %d/%d do not match grids %v/%v",
			len(src), len(dst), srcGrid, dstGrid)
	}

	srcCoords := make([]int64, len(srcGrid))
	for p := 0; ; p++ {
		dstCoords := make([]int64, len(dstGrid))
		for q := 0; ; q++ {
			// Per-dimension intersections (the PARADIGM step).
			common := make([][]dimRange, len(srcSpec.Dims))
			empty := false
			for k := range srcSpec.Dims {
				common[k] = intersectRanges(
					ownedRanges(srcSpec.Dists[k], srcSpec.Dims[k], srcCoords[k]),
					ownedRanges(dstSpec.Dists[k], dstSpec.Dims[k], dstCoords[k]),
				)
				if len(common[k]) == 0 {
					empty = true
					break
				}
			}
			if !empty {
				if err := copyProduct(srcSpec, dstSpec, srcCoords, dstCoords,
					common, src[p], dst[q], es); err != nil {
					return err
				}
			}
			if !advance(dstCoords, dstGrid) {
				break
			}
		}
		if !advance(srcCoords, srcGrid) {
			break
		}
	}
	return nil
}

// copyProduct copies the cartesian product of the per-dimension common
// runs element by element (rows at a time along the last dimension).
func copyProduct(srcSpec, dstSpec part.ArraySpec, sc, dc []int64,
	common [][]dimRange, sbuf, dbuf []byte, es int64) error {

	nd := len(common)
	idx := make([]int64, nd)
	sel := make([]int, nd) // which run of each dimension
	for k := range idx {
		idx[k] = common[k][0].lo
	}
	for {
		// Copy one innermost run of contiguous elements.
		lastRun := common[nd-1][sel[nd-1]]
		runLen := lastRun.hi - idx[nd-1] + 1
		so := localOffset(srcSpec, sc, idx) * es
		do := localOffset(dstSpec, dc, idx) * es
		n := runLen * es
		if so+n > int64(len(sbuf)) || do+n > int64(len(dbuf)) {
			return fmt.Errorf("baseline: dimwise copy out of bounds")
		}
		copy(dbuf[do:do+n], sbuf[so:so+n])
		// Advance to the next innermost run / outer indices.
		k := nd - 1
		for k >= 0 {
			if k == nd-1 || idx[k] == common[k][sel[k]].hi {
				// Move to this dimension's next run.
				sel[k]++
				if sel[k] < len(common[k]) {
					idx[k] = common[k][sel[k]].lo
					break
				}
				sel[k] = 0
				idx[k] = common[k][0].lo
				k--
				continue
			}
			idx[k]++
			break
		}
		if k < 0 {
			return nil
		}
		// Reset all inner dimensions below the advanced one.
		for j := k + 1; j < nd; j++ {
			sel[j] = 0
			idx[j] = common[j][0].lo
		}
	}
}

func gridOf(spec part.ArraySpec) []int64 {
	out := make([]int64, len(spec.Dists))
	for i, d := range spec.Dists {
		if d.Kind == part.All || d.Procs < 1 {
			out[i] = 1
		} else {
			out[i] = d.Procs
		}
	}
	return out
}

func gridTotal(grid []int64) int {
	n := 1
	for _, g := range grid {
		n *= int(g)
	}
	return n
}

// advance increments row-major grid coordinates; false when wrapped.
func advance(coords, grid []int64) bool {
	for k := len(coords) - 1; k >= 0; k-- {
		coords[k]++
		if coords[k] < grid[k] {
			return true
		}
		coords[k] = 0
	}
	return false
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

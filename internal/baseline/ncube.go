package baseline

import "fmt"

// ncube.go implements the nCube parallel I/O mapping scheme (§2): the
// mapping between a processor's (or disk's) view of a file and the
// file's linear addresses is an address bit permutation. The major
// deficiency the paper points out — "all array sizes must be powers of
// two" — is structural: a bit permutation can only describe
// power-of-two geometries. These mappings are the comparison baseline
// showing the FALLS-based mapping functions are a strict superset.

// BitPermutation is a bijective mapping of b-bit addresses: result bit
// i takes source bit Perm[i].
type BitPermutation struct {
	perm []int
}

// NewBitPermutation validates that perm is a permutation of
// 0..len(perm)-1 and builds the mapping.
func NewBitPermutation(perm []int) (*BitPermutation, error) {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) {
			return nil, fmt.Errorf("baseline: bit index %d out of range [0,%d)", p, len(perm))
		}
		if seen[p] {
			return nil, fmt.Errorf("baseline: duplicate bit index %d", p)
		}
		seen[p] = true
	}
	if len(perm) > 62 {
		return nil, fmt.Errorf("baseline: %d bits exceed int64 addresses", len(perm))
	}
	return &BitPermutation{perm: append([]int(nil), perm...)}, nil
}

// Bits returns the address width.
func (bp *BitPermutation) Bits() int { return len(bp.perm) }

// Size returns the address space size, 2^Bits.
func (bp *BitPermutation) Size() int64 { return 1 << len(bp.perm) }

// Map permutes the bits of x. x must fit in Bits() bits.
func (bp *BitPermutation) Map(x int64) (int64, error) {
	if x < 0 || x >= bp.Size() {
		return 0, fmt.Errorf("baseline: address %d out of %d-bit range", x, len(bp.perm))
	}
	var y int64
	for i, src := range bp.perm {
		y |= (x >> uint(src) & 1) << uint(i)
	}
	return y, nil
}

// Inverse returns the inverse permutation mapping.
func (bp *BitPermutation) Inverse() *BitPermutation {
	inv := make([]int, len(bp.perm))
	for i, p := range bp.perm {
		inv[p] = i
	}
	return &BitPermutation{perm: inv}
}

// StripeMapping builds the nCube-style mapping from a file address to
// a (disk, local offset) pair for striping 2^unitBits-byte units over
// 2^diskBits disks: file address bits are split as
// [block | disk | unit] and the disk bits are rotated to the top, so
// that the permuted address is disk*2^(addrBits-diskBits) + local
// offset.
//
// addrBits is the total file address width; the file holds 2^addrBits
// bytes.
func StripeMapping(addrBits, diskBits, unitBits int) (*BitPermutation, error) {
	if diskBits < 0 || unitBits < 0 || addrBits < diskBits+unitBits {
		return nil, fmt.Errorf("baseline: invalid stripe geometry addr=%d disk=%d unit=%d",
			addrBits, diskBits, unitBits)
	}
	perm := make([]int, addrBits)
	i := 0
	// Local offset low bits: the unit offset.
	for b := 0; b < unitBits; b++ {
		perm[i] = b
		i++
	}
	// Local offset high bits: the block number.
	for b := unitBits + diskBits; b < addrBits; b++ {
		perm[i] = b
		i++
	}
	// Disk selector bits on top.
	for b := unitBits; b < unitBits+diskBits; b++ {
		perm[i] = b
		i++
	}
	return NewBitPermutation(perm)
}

// DiskOf splits a permuted stripe-mapping address into its disk index
// and local offset.
func DiskOf(bp *BitPermutation, diskBits int, mapped int64) (disk int64, local int64) {
	localBits := uint(bp.Bits() - diskBits)
	return mapped >> localBits, mapped & (1<<localBits - 1)
}

// Package baseline implements the comparators the paper positions
// itself against: per-byte redistribution (the strawman §3 argues the
// segment-wise algorithm replaces) and the nCube-style address
// bit-permutation mapping functions of DeBenedictis & del Rosario,
// which require all sizes to be powers of two (§2).
package baseline

import (
	"fmt"

	"parafile/internal/core"
	"parafile/internal/part"
)

// BytewiseRedistribute converts between two partitions of the same
// file by mapping every byte individually through
// MAP_dst(MAP⁻¹… composition) — "it would be inefficient to map each
// byte from one distribution to another" (§3). It exists as the
// correctness baseline and the ablation the benchmarks compare the
// segment-wise plan against.
//
// src[e] and dst[e] hold the element linear spaces, as in
// redist.Plan.Execute; length bytes of file data are converted,
// starting at the larger displacement.
func BytewiseRedistribute(srcFile, dstFile *part.File, src, dst [][]byte, length int64) error {
	if srcFile == nil || dstFile == nil {
		return fmt.Errorf("baseline: nil file")
	}
	if len(src) != srcFile.Pattern.Len() {
		return fmt.Errorf("baseline: %d source buffers for %d elements", len(src), srcFile.Pattern.Len())
	}
	if len(dst) != dstFile.Pattern.Len() {
		return fmt.Errorf("baseline: %d destination buffers for %d elements", len(dst), dstFile.Pattern.Len())
	}
	srcMappers := make([]*core.Mapper, srcFile.Pattern.Len())
	for e := range srcMappers {
		m, err := core.NewMapper(srcFile, e)
		if err != nil {
			return err
		}
		srcMappers[e] = m
	}
	dstMappers := make([]*core.Mapper, dstFile.Pattern.Len())
	for e := range dstMappers {
		m, err := core.NewMapper(dstFile, e)
		if err != nil {
			return err
		}
		dstMappers[e] = m
	}
	base := srcFile.Displacement
	if dstFile.Displacement > base {
		base = dstFile.Displacement
	}
	for i := int64(0); i < length; i++ {
		x := base + i
		se, err := srcFile.ElementOf(x)
		if err != nil {
			return err
		}
		so, err := srcMappers[se].Map(x)
		if err != nil {
			return err
		}
		de, err := dstFile.ElementOf(x)
		if err != nil {
			return err
		}
		do, err := dstMappers[de].Map(x)
		if err != nil {
			return err
		}
		if so >= int64(len(src[se])) {
			return fmt.Errorf("baseline: source element %d buffer too small (offset %d)", se, so)
		}
		if do >= int64(len(dst[de])) {
			return fmt.Errorf("baseline: destination element %d buffer too small (offset %d)", de, do)
		}
		dst[de][do] = src[se][so]
	}
	return nil
}

package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// specFor builds the standard 2-D distributions for an n×n byte
// matrix.
func specFor(kind string, n int64) part.ArraySpec {
	switch kind {
	case "r":
		return part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
			Dists: []part.DimDist{{Kind: part.Block, Procs: 4}, {Kind: part.All}}}
	case "c":
		return part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
			Dists: []part.DimDist{{Kind: part.All}, {Kind: part.Block, Procs: 4}}}
	case "b":
		return part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
			Dists: []part.DimDist{{Kind: part.Block, Procs: 2}, {Kind: part.Block, Procs: 2}}}
	case "cyc":
		return part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
			Dists: []part.DimDist{{Kind: part.Cyclic, Procs: 2, Block: 2}, {Kind: part.Block, Procs: 2}}}
	}
	panic("unknown kind")
}

// TestDimwiseMatchesGeneral: on the same-shape cases PARADIGM's
// dimension-wise algorithm covers, it produces exactly what the
// general nested-FALLS plan produces.
func TestDimwiseMatchesGeneral(t *testing.T) {
	const n = 16
	kinds := []string{"r", "c", "b", "cyc"}
	img := make([]byte, n*n)
	rand.New(rand.NewSource(210)).Read(img)
	for _, from := range kinds {
		for _, to := range kinds {
			srcSpec := specFor(from, n)
			dstSpec := specFor(to, n)
			srcPat, err := part.NDArray(srcSpec)
			if err != nil {
				t.Fatal(err)
			}
			dstPat, err := part.NDArray(dstSpec)
			if err != nil {
				t.Fatal(err)
			}
			srcFile := part.MustFile(0, srcPat)
			dstFile := part.MustFile(0, dstPat)
			src := redist.SplitFile(srcFile, img)
			want := redist.SplitFile(dstFile, img)
			got := make([][]byte, len(want))
			for e := range want {
				got[e] = make([]byte, len(want[e]))
			}
			if err := DimwiseRedistribute(srcSpec, dstSpec, src, got); err != nil {
				t.Fatalf("%s->%s: %v", from, to, err)
			}
			for e := range want {
				if !bytes.Equal(got[e], want[e]) {
					t.Fatalf("%s->%s: element %d differs between dimension-wise and general", from, to, e)
				}
			}
		}
	}
}

// TestDimwiseRequiresSameShape: the restriction the paper's algorithm
// removes — different shapes are rejected by the dimension-wise
// baseline but handled by the general plan.
func TestDimwiseRequiresSameShape(t *testing.T) {
	a := specFor("r", 16)
	b := specFor("r", 32)
	if err := DimwiseRedistribute(a, b, nil, nil); err == nil {
		t.Fatal("different shapes accepted by the dimension-wise algorithm")
	}
	// The general algorithm handles it: a 16×16 file redistributed
	// into an 8×32 layout (same byte count, different geometry).
	srcPat, _ := part.RowBlocks(16, 16, 4)
	dstPat, _ := part.RowBlocks(8, 32, 4)
	img := make([]byte, 256)
	for i := range img {
		img[i] = byte(i)
	}
	srcFile := part.MustFile(0, srcPat)
	dstFile := part.MustFile(0, dstPat)
	plan, err := redist.NewPlan(srcFile, dstFile)
	if err != nil {
		t.Fatal(err)
	}
	src := redist.SplitFile(srcFile, img)
	want := redist.SplitFile(dstFile, img)
	got := make([][]byte, len(want))
	for e := range want {
		got[e] = make([]byte, len(want[e]))
	}
	if err := plan.Execute(src, got, 256); err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if !bytes.Equal(got[e], want[e]) {
			t.Fatalf("general plan failed on reshaped array, element %d", e)
		}
	}
}

// TestDimwise3D: a three-dimensional case.
func TestDimwise3D(t *testing.T) {
	src := part.ArraySpec{Dims: []int64{4, 6, 4}, ElemSize: 2,
		Dists: []part.DimDist{{Kind: part.Block, Procs: 2}, {Kind: part.All}, {Kind: part.All}}}
	dst := part.ArraySpec{Dims: []int64{4, 6, 4}, ElemSize: 2,
		Dists: []part.DimDist{{Kind: part.All}, {Kind: part.Cyclic, Procs: 3, Block: 1}, {Kind: part.All}}}
	img := make([]byte, src.TotalBytes())
	rand.New(rand.NewSource(211)).Read(img)
	srcPat, err := part.NDArray(src)
	if err != nil {
		t.Fatal(err)
	}
	dstPat, err := part.NDArray(dst)
	if err != nil {
		t.Fatal(err)
	}
	sBufs := redist.SplitFile(part.MustFile(0, srcPat), img)
	want := redist.SplitFile(part.MustFile(0, dstPat), img)
	got := make([][]byte, len(want))
	for e := range want {
		got[e] = make([]byte, len(want[e]))
	}
	if err := DimwiseRedistribute(src, dst, sBufs, got); err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if !bytes.Equal(got[e], want[e]) {
			t.Fatalf("3-D dimension-wise element %d differs", e)
		}
	}
}

func TestDimwiseValidation(t *testing.T) {
	a := specFor("r", 16)
	b := specFor("c", 16)
	if err := DimwiseRedistribute(a, b, make([][]byte, 2), make([][]byte, 4)); err == nil {
		t.Error("wrong buffer count accepted")
	}
	c := b
	c.ElemSize = 2
	if err := DimwiseRedistribute(a, c, make([][]byte, 4), make([][]byte, 4)); err == nil {
		t.Error("element size mismatch accepted")
	}
}

package obs

import "sync/atomic"

// hist.go implements the fixed-bucket histogram: cumulative-style
// observation counting against a sorted slice of upper bounds, with a
// final implicit +Inf bucket. Observations are int64 so one type
// covers both latencies (nanoseconds) and sizes (bytes); the bucket
// helpers below pick sensible exponential grids for each.

// Histogram counts observations into fixed buckets. Observe is a
// lock-free linear scan + atomic add — the bucket count is small and
// fixed, so the scan beats any locking scheme. A nil *Histogram
// records nothing.
type Histogram struct {
	bounds []int64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds.
// Bounds must be ascending; an empty slice yields a histogram with
// only the +Inf bucket (still useful for count/sum/mean).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// snapshot returns consistent-enough copies of the bucket state for
// exposition (individual loads are atomic; a scrape racing an
// observation may be off by one event, which every scrape-based
// system tolerates).
func (h *Histogram) snapshot() (bounds []int64, counts []uint64, sum int64, count uint64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts, h.sum.Load(), h.count.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket containing it — the standard fixed-bucket estimate.
// Returns 0 when empty; observations in the +Inf bucket report the
// largest finite bound (or 0 when there are no finite bounds).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	bounds, counts, _, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > rank {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// LatencyBuckets returns the standard exponential latency grid in
// nanoseconds: 1µs doubling up to ~8.6s (24 buckets).
func LatencyBuckets() []int64 {
	out := make([]int64, 24)
	v := int64(1000)
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// SizeBuckets returns the standard exponential size grid in bytes:
// 64 B quadrupling up to 1 GiB (13 buckets).
func SizeBuckets() []int64 {
	out := make([]int64, 13)
	v := int64(64)
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// CountBuckets returns an exponential grid for small cardinalities
// (segments per gather, pairs per plan): 1 doubling up to 65536.
func CountBuckets() []int64 {
	out := make([]int64, 17)
	v := int64(1)
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// http_test.go checks the metrics server lifecycle: Serve binds,
// answers scrapes, and its shutdown function actually stops the
// listener (the hook parafiled's drain relies on).

func TestServeAndShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(7)

	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "test_total 7") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must actually be released.
	if conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("metrics port still accepting connections after shutdown")
	}
}

package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// http_test.go checks the metrics server lifecycle: Serve binds,
// answers scrapes, and its shutdown function actually stops the
// listener (the hook parafiled's drain relies on).

func TestServeAndShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total").Add(7)

	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "test_total 7") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must actually be released.
	if conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("metrics port still accepting connections after shutdown")
	}
}

// TestShutdownIdempotent is the regression test for the old shutdown
// func, which Closed the listener a second time on repeat calls and
// returned the spurious "use of closed network connection" — callers
// with both a signal path and a defer path hit it routinely. Repeated
// and concurrent shutdowns must all return the first call's result.
func TestShutdownIdempotent(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = shutdown(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent shutdown %d: %v", i, err)
		}
	}
	// And again, sequentially, after the server is long gone.
	if err := shutdown(ctx); err != nil {
		t.Fatalf("repeated shutdown: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("port still open after shutdown")
	}
}

// TestDebugTraceEndpoint drives /debug/trace through its selector
// matrix: full dump (text and JSON), by-ID and by-op selection, the
// 404 on a miss, and the nil-tracer disabled notice.
func TestDebugTraceEndpoint(t *testing.T) {
	tr := NewTracer("ion0", 4)
	sp := tr.StartOp("write")
	id := sp.TraceID()
	tr.FinishOp(sp)
	inflight := tr.StartOp("read")
	defer tr.FinishOp(inflight)

	addr, shutdown, err := ServeWith("127.0.0.1:0", NewRegistry(), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdown(ctx)
	}()

	get := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %s, want %d", path, resp.Status, wantCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var dump TraceDump
	if err := json.Unmarshal([]byte(get("/debug/trace?format=json", 200)), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Node != "ion0" || !dump.Enabled {
		t.Fatalf("dump header wrong: %+v", dump)
	}
	if len(dump.InFlight) != 1 || dump.InFlight[0].Op != "read" {
		t.Fatalf("in-flight = %+v, want the open read", dump.InFlight)
	}
	if len(dump.Recent) != 1 || dump.Recent[0].TraceID != id {
		t.Fatalf("recent = %+v, want the finished write", dump.Recent)
	}

	var tree TraceTree
	byID := get("/debug/trace?format=json&id="+FormatTraceID(id), 200)
	if err := json.Unmarshal([]byte(byID), &tree); err != nil || tree.TraceID != id {
		t.Fatalf("by-ID selection failed: %v (%s)", err, byID)
	}
	var byOp TraceTree
	if err := json.Unmarshal([]byte(get("/debug/trace?format=json&op=write", 200)), &byOp); err != nil || byOp.TraceID != id {
		t.Fatalf("by-op selection failed: %v", err)
	}
	if txt := get("/debug/trace?id="+FormatTraceID(id), 200); !strings.Contains(txt, "op write") {
		t.Fatalf("text rendering missing header: %s", txt)
	}
	get("/debug/trace?id=ffffffffffffffff", 404)
	get("/debug/trace?op=nope", 404)
	get("/debug/trace?id=zzz", 400)

	// pprof rides along on the same handler.
	if body := get("/debug/pprof/cmdline", 200); body == "" {
		t.Fatal("pprof endpoint empty")
	}
}

// TestDebugTraceDisabled: the endpoint must answer, not panic, when no
// tracer is wired (tracing off or an old caller using Serve).
func TestDebugTraceDisabled(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdown(ctx)
	}()
	resp, err := http.Get("http://" + addr + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tracing disabled") {
		t.Fatalf("disabled notice missing: %s", body)
	}
	resp, err = http.Get("http://" + addr + "/debug/trace?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var dump TraceDump
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil || dump.Enabled {
		t.Fatalf("disabled JSON dump wrong: %v %+v", err, dump)
	}
}

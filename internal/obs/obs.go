// Package obs is the dependency-free observability layer of the
// redistribution engine: a Registry of named counters, gauges and
// fixed-bucket histograms, plus wall-clock Spans (span.go) that
// complement the virtual-time sim.Tracer. Exposition lives in expo.go
// (Prometheus text + expvar-style JSON + a human-readable report) and
// http.go (the -metrics-addr endpoint).
//
// Every public method is nil-safe: a nil *Registry hands out nil
// metrics, and every operation on a nil *Counter, *Gauge, *Histogram
// or *Span records nothing and allocates nothing. Instrumented code
// therefore needs no guards — the disabled path is the zero value —
// and BenchmarkNilRegistry proves it costs 0 allocs/op.
//
// Metric names follow the Prometheus convention, with one extension:
// a name may carry a label suffix, e.g.
// "parafile_clusterfile_io_node_bytes_total{node=\"2\"}". The
// exposition writers understand the suffix, so a dependency-free
// string is enough to get per-node series.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter records nothing.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.n.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous int64 value. The zero value is ready to
// use; a nil *Gauge records nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates the registry's value types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry owns a flat namespace of metrics. Lookups are
// mutex-guarded (bind metrics once, outside hot loops); the metric
// operations themselves are lock-free atomics. A nil *Registry is the
// disabled state: it hands out nil metrics whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	kinds   map[string]metricKind
	counter map[string]*Counter
	gauge   map[string]*Gauge
	hist    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:   make(map[string]metricKind),
		counter: make(map[string]*Counter),
		gauge:   make(map[string]*Gauge),
		hist:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Registering the same name as a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindCounter {
			panic("obs: " + name + " already registered as " + k.String())
		}
		return r.counter[name]
	}
	c := &Counter{}
	r.kinds[name] = kindCounter
	r.counter[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindGauge {
			panic("obs: " + name + " already registered as " + k.String())
		}
		return r.gauge[name]
	}
	g := &Gauge{}
	r.kinds[name] = kindGauge
	r.gauge[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// buckets; see NewHistogram for the bound rules).
func (r *Registry) Histogram(name string, buckets []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindHistogram {
			panic("obs: " + name + " already registered as " + k.String())
		}
		return r.hist[name]
	}
	h := NewHistogram(buckets)
	r.kinds[name] = kindHistogram
	r.hist[name] = h
	return h
}

// names returns every registered metric name in a stable natural
// order — runs of digits compare numerically, so per-node series like
// the rpc breaker's {node="2"} sort before {node="10"} instead of
// after. Every exposition format (Prometheus text, JSON, the report
// table) iterates this order, which keeps golden tests deterministic
// as labelled series (breaker, fault-injection counters, per-I/O-node
// bytes) accumulate.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		out = append(out, name)
	}
	sort.SliceStable(out, func(i, j int) bool { return naturalLess(out[i], out[j]) })
	return out
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// naturalLess orders strings with embedded numbers the way a human
// reads them: digit runs compare by numeric value, ties (03 vs 3)
// break on run length, everything else compares bytewise.
func naturalLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			ai, bi := 1, 1
			for ai < len(a) && isDigit(a[ai]) {
				ai++
			}
			for bi < len(b) && isDigit(b[bi]) {
				bi++
			}
			an := strings.TrimLeft(a[:ai], "0")
			bn := strings.TrimLeft(b[:bi], "0")
			if len(an) != len(bn) {
				return len(an) < len(bn)
			}
			if an != bn {
				return an < bn
			}
			if ai != bi {
				return ai < bi
			}
			a, b = a[ai:], b[bi:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a small registry with every metric kind,
// including a labeled counter pair, with deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_events_total").Add(7)
	r.Counter(`demo_node_bytes_total{node="0"}`).Add(100)
	r.Counter(`demo_node_bytes_total{node="1"}`).Add(50)
	r.Gauge("demo_entries").Set(3)
	h := r.Histogram("demo_latency_ns", []int64{1000, 2000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(9000)
	return r
}

func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE demo_entries gauge
demo_entries 3
# TYPE demo_events_total counter
demo_events_total 7
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{le="1000"} 1
demo_latency_ns_bucket{le="2000"} 2
demo_latency_ns_bucket{le="+Inf"} 3
demo_latency_ns_sum 11000
demo_latency_ns_count 3
# TYPE demo_node_bytes_total counter
demo_node_bytes_total{node="0"} 100
demo_node_bytes_total{node="1"} 50
`
	if got := b.String(); got != want {
		t.Errorf("prom exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePromLabeledSeriesShareOneType(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "# TYPE demo_node_bytes_total"); n != 1 {
		t.Errorf("labeled series emitted %d TYPE lines, want 1", n)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, b.String())
	}
	if got["demo_events_total"].(float64) != 7 {
		t.Errorf("counter = %v, want 7", got["demo_events_total"])
	}
	if got[`demo_node_bytes_total{node="1"}`].(float64) != 50 {
		t.Errorf("labeled counter = %v", got[`demo_node_bytes_total{node="1"}`])
	}
	hist := got["demo_latency_ns"].(map[string]interface{})
	if hist["count"].(float64) != 3 || hist["sum"].(float64) != 11000 {
		t.Errorf("histogram = %v", hist)
	}
	buckets := hist["buckets"].(map[string]interface{})
	if buckets["1000"].(float64) != 1 || buckets["+Inf"].(float64) != 3 {
		t.Errorf("buckets = %v (cumulative counts expected)", buckets)
	}
}

func TestReportGolden(t *testing.T) {
	got := Report(goldenRegistry())
	for _, want := range []string{
		"Observability report",
		"demo_events_total",
		"demo_entries",
		"demo_latency_ns",
		"p50", "p99",
		"3.7µs", // mean of 11000/3 ns, duration-formatted via the _ns suffix
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if Report(NewRegistry()) != "" {
		t.Error("empty registry produced a non-empty report")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	h := Handler(goldenRegistry())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "demo_events_total 7") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	var parsed map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/report", nil))
	if !strings.Contains(rec.Body.String(), "Observability report") {
		t.Errorf("/report body:\n%s", rec.Body.String())
	}
}

func TestServeBindsAndScrapes(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", goldenRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	if !strings.Contains(addr, ":") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q", addr)
	}
}

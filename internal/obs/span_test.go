package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("compile")
	a := root.StartChild("mappers")
	if a.End() < 0 {
		t.Fatal("negative duration")
	}
	b := root.StartChild("pairs")
	c := b.StartChild("intersect")
	c.End()
	b.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "mappers" || kids[1].Name() != "pairs" {
		t.Fatalf("children = %v", kids)
	}
	if len(b.Children()) != 1 {
		t.Fatalf("grandchildren = %d, want 1", len(b.Children()))
	}
	if root.Duration() < b.Duration() {
		t.Error("parent shorter than child")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartSpan("op")
	d1 := s.End()
	time.Sleep(time.Millisecond)
	if d2 := s.End(); d2 != d1 {
		t.Errorf("second End changed duration: %v != %v", d2, d1)
	}
}

func TestSpanEndObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	s := StartSpan("op")
	d := s.EndObserve(h)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() != d.Nanoseconds() {
		t.Errorf("histogram sum %d != duration %d", h.Sum(), d.Nanoseconds())
	}
	// Ending into a nil histogram still closes the span.
	s2 := StartSpan("op2")
	if s2.EndObserve(nil) < 0 {
		t.Error("negative duration")
	}
}

func TestSpanFormat(t *testing.T) {
	root := StartSpan("write")
	child := root.StartChild("gather")
	child.End()
	open := root.StartChild("scatter")
	_ = open
	root.End()
	out := root.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("format lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "write") {
		t.Errorf("root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  gather") {
		t.Errorf("child not indented: %q", lines[1])
	}
	if !strings.Contains(lines[2], "(open)") {
		t.Errorf("unended child not marked open: %q", lines[2])
	}
}

// TestSpanConcurrentChildren exercises concurrent StartChild under
// -race.
func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("root")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				root.StartChild("c").End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	if n := len(root.Children()); n != 800 {
		t.Fatalf("children = %d, want 800", n)
	}
}

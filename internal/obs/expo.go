package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// expo.go renders a Registry in three formats: Prometheus text
// exposition (WriteProm), expvar-style JSON (WriteJSON) and a
// human-readable table (Report). All three iterate names in sorted
// order, so output is deterministic for golden tests.

// splitName separates an optional label suffix from a metric name:
// `foo{node="2"}` → (`foo`, `node="2"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges a label set with one extra pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4). A nil registry writes nothing.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := r.names()
	kinds := make(map[string]metricKind, len(names))
	counters := make(map[string]*Counter, len(r.counter))
	gauges := make(map[string]*Gauge, len(r.gauge))
	hists := make(map[string]*Histogram, len(r.hist))
	for name, k := range r.kinds {
		kinds[name] = k
	}
	for name, c := range r.counter {
		counters[name] = c
	}
	for name, g := range r.gauge {
		gauges[name] = g
	}
	for name, h := range r.hist {
		hists[name] = h
	}
	r.mu.Unlock()

	typed := make(map[string]bool)
	for _, name := range names {
		base, labels := splitName(name)
		kind := kinds[name]
		if !typed[base] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
			typed[base] = true
		}
		var err error
		switch kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, counters[name].Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", name, gauges[name].Value())
		case kindHistogram:
			err = writePromHist(w, base, labels, hists[name])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, base, labels string, h *Histogram) error {
	bounds, counts, sum, count := h.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatInt(bounds[i], 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n",
			base, joinLabels(labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, suffix, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, count)
	return err
}

// WriteJSON writes the registry as one JSON object keyed by metric
// name: counters and gauges as numbers, histograms as
// {count, sum, mean, buckets} with cumulative bucket counts keyed by
// upper bound ("+Inf" for the overflow bucket). A nil registry writes
// the empty object.
func WriteJSON(w io.Writer, r *Registry) error {
	out := make(map[string]interface{})
	if r != nil {
		r.mu.Lock()
		for name, c := range r.counter {
			out[name] = c.Value()
		}
		for name, g := range r.gauge {
			out[name] = g.Value()
		}
		for name, h := range r.hist {
			bounds, counts, sum, count := h.snapshot()
			buckets := make(map[string]uint64, len(counts))
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(bounds) {
					le = strconv.FormatInt(bounds[i], 10)
				}
				buckets[le] = cum
			}
			out[name] = map[string]interface{}{
				"count":   count,
				"sum":     sum,
				"mean":    h.Mean(),
				"buckets": buckets,
			}
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Report renders the registry as a human-readable table: counters and
// gauges first, then histograms with count/mean/p50/p99. Values of
// metrics whose base name ends in "_ns" are rendered as durations.
// A nil or empty registry reports "".
func Report(r *Registry) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := r.names()
	kinds := make(map[string]metricKind, len(names))
	for name, k := range r.kinds {
		kinds[name] = k
	}
	counters := make(map[string]*Counter, len(r.counter))
	for name, c := range r.counter {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauge))
	for name, g := range r.gauge {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hist))
	for name, h := range r.hist {
		hists[name] = h
	}
	r.mu.Unlock()
	if len(names) == 0 {
		return ""
	}

	var scalars, histRows []string
	for _, name := range names {
		base, _ := splitName(name)
		switch kinds[name] {
		case kindCounter:
			scalars = append(scalars, fmt.Sprintf("  %-58s %14s",
				name, scalarValue(base, int64(counters[name].Value()))))
		case kindGauge:
			scalars = append(scalars, fmt.Sprintf("  %-58s %14s",
				name, scalarValue(base, gauges[name].Value())))
		case kindHistogram:
			h := hists[name]
			histRows = append(histRows, fmt.Sprintf("  %-48s %8d %10s %10s %10s",
				name, h.Count(),
				histValue(base, int64(h.Mean())),
				histValue(base, h.Quantile(0.50)),
				histValue(base, h.Quantile(0.99))))
		}
	}

	var b strings.Builder
	b.WriteString("Observability report\n")
	if len(scalars) > 0 {
		fmt.Fprintf(&b, "  %-58s %14s\n", "counter/gauge", "value")
		for _, row := range scalars {
			b.WriteString(row + "\n")
		}
	}
	if len(histRows) > 0 {
		fmt.Fprintf(&b, "  %-48s %8s %10s %10s %10s\n",
			"histogram", "count", "mean", "p50", "p99")
		for _, row := range histRows {
			b.WriteString(row + "\n")
		}
	}
	return b.String()
}

func scalarValue(base string, v int64) string {
	if strings.HasSuffix(base, "_ns") {
		return formatNs(v)
	}
	return strconv.FormatInt(v, 10)
}

func histValue(base string, v int64) string {
	if strings.HasSuffix(base, "_ns") {
		return formatNs(v)
	}
	return strconv.FormatInt(v, 10)
}

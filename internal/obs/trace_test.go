package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// trace_test.go covers the distributed-trace layer: ID generation,
// record stitching, per-node shares, the tracer's in-flight map and
// recent ring, the span stash, and — load-bearing for the wire hot
// path — that every disabled-state primitive is a zero-allocation
// no-op.

func TestNewTraceIDNonZeroUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID (reserved for 'no trace')")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %016x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestStitchBasic(t *testing.T) {
	recs := []SpanRecord{
		{TraceID: 9, SpanID: 1, Parent: 0, Name: "write", Node: "client", Start: 0, End: 100},
		{TraceID: 9, SpanID: 2, Parent: 1, Name: "rpc", Node: "client", Start: 10, End: 60},
		{TraceID: 9, SpanID: 3, Parent: 2, Name: "server.write", Node: "ion0", Start: 5, End: 40},
		{TraceID: 9, SpanID: 4, Parent: 1, Name: "rpc2", Node: "client", Start: 5, End: 30},
	}
	root := Stitch(recs)
	if root == nil || root.SpanID != 1 {
		t.Fatalf("root = %+v, want span 1", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	// Children sort by start: rpc2 (5) before rpc (10).
	if root.Children[0].SpanID != 4 || root.Children[1].SpanID != 2 {
		t.Fatalf("children out of order: %d, %d", root.Children[0].SpanID, root.Children[1].SpanID)
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Node != "ion0" {
		t.Fatal("server span not nested under its rpc parent")
	}
}

// TestStitchOrphans: records whose parent never arrived (a node whose
// reply was lost) still land in the tree, attached under the root.
func TestStitchOrphans(t *testing.T) {
	recs := []SpanRecord{
		{TraceID: 9, SpanID: 3, Parent: 77, Name: "server.write", Node: "ion1", Start: 3, End: 4},
		{TraceID: 9, SpanID: 1, Parent: 0, Name: "write", Node: "client", Start: 0, End: 100},
	}
	root := Stitch(recs)
	if root.SpanID != 1 {
		t.Fatalf("root = span %d, want 1 (Parent==0 wins over earlier start)", root.SpanID)
	}
	if len(root.Children) != 1 || root.Children[0].SpanID != 3 {
		t.Fatal("orphan record dropped from the tree")
	}
}

func TestBuildTreeShares(t *testing.T) {
	recs := []SpanRecord{
		{TraceID: 9, SpanID: 1, Parent: 0, Name: "write", Node: "client", Start: 0, End: 100},
		{TraceID: 9, SpanID: 2, Parent: 1, Name: "server.write", Node: "ion0", Start: 0, End: 60},
	}
	tree := BuildTree("write", recs)
	if tree.TraceID != 9 || tree.DurNs != 100 {
		t.Fatalf("tree header wrong: %+v", tree)
	}
	if len(tree.Shares) != 2 {
		t.Fatalf("want 2 node shares, got %v", tree.Shares)
	}
	// ion0 self-time 60, client self-time 100-60=40: ion0 sorts first.
	if tree.Shares[0].Node != "ion0" || tree.Shares[0].Ns != 60 || tree.Shares[1].Ns != 40 {
		t.Fatalf("shares wrong: %+v", tree.Shares)
	}
	var pct float64
	for _, s := range tree.Shares {
		pct += s.Pct
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("shares sum to %.2f%%, want 100%%", pct)
	}
	if !strings.Contains(tree.Format(), "ion0") {
		t.Fatal("Format omits the node column")
	}
}

func TestTracerRingAndLookup(t *testing.T) {
	tr := NewTracer("client", 2)
	var ids []uint64
	for _, name := range []string{"a", "b", "c"} {
		sp := tr.StartOp(name)
		ids = append(ids, sp.TraceID())
		if got := len(tr.InFlight()); got != 1 {
			t.Fatalf("in-flight = %d during %s, want 1", got, name)
		}
		tr.FinishOp(sp)
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Op != "b" || recent[1].Op != "c" {
		t.Fatalf("ring of 2 after 3 ops = %v, want [b c] oldest first", recent)
	}
	if tr.Find(ids[0]) != nil {
		t.Fatal("evicted tree still findable")
	}
	if got := tr.Find(ids[2]); got == nil || got.Op != "c" {
		t.Fatal("Find missed a retained tree")
	}
	if got := tr.FindOp("b"); got == nil || got.TraceID != ids[1] {
		t.Fatal("FindOp missed a retained tree")
	}
	if tr.FindOp("nope") != nil {
		t.Fatal("FindOp invented a tree")
	}
}

func TestSpanStash(t *testing.T) {
	st := NewSpanStash(2)
	st.Put(1, []SpanRecord{{SpanID: 1}})
	st.Put(1, []SpanRecord{{SpanID: 2}})
	st.Put(2, []SpanRecord{{SpanID: 3}})
	if st.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", st.Pending())
	}
	// A third trace evicts the oldest (trace 1).
	st.Put(3, []SpanRecord{{SpanID: 4}})
	if got := st.Take(1); got != nil {
		t.Fatalf("evicted trace still present: %v", got)
	}
	if got := st.Take(2); len(got) != 1 || got[0].SpanID != 3 {
		t.Fatalf("Take(2) = %v", got)
	}
	if got := st.Take(2); got != nil {
		t.Fatal("Take is not removing")
	}
	// Nil and zero-ID are free no-ops.
	var nilStash *SpanStash
	nilStash.Put(1, []SpanRecord{{}})
	if nilStash.Take(1) != nil || nilStash.Pending() != 0 {
		t.Fatal("nil stash not inert")
	}
	st.Put(0, []SpanRecord{{}})
	if st.Pending() != 1 {
		t.Fatal("zero trace ID was stashed")
	}
}

func TestContextSpanRoundTrip(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil span should leave the context untouched")
	}
	sp := StartTrace("op", "client")
	ctx2 := ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx2) != sp {
		t.Fatal("span did not round-trip through the context")
	}
}

// TestNilTracerInert: every Tracer method must be callable on nil —
// the instrumented paths carry no enable guards.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartOp("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	tr.Adopt(sp)
	tr.FinishOp(sp)
	if tr.InFlight() != nil || tr.Recent() != nil || tr.Find(1) != nil || tr.FindOp("x") != nil || tr.Node() != "" {
		t.Fatal("nil tracer not inert")
	}
}

// TestDisabledPathZeroAlloc pins the tracing-off hot path at zero
// allocations: context lookup, child spans, intervals and completion
// on a nil span must all be free, because the streamed chunk loop
// runs them per operation whether or not tracing is negotiated.
func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		if sp.TraceID() != 0 {
			t.Fatal("untraced context has a trace ID")
		}
		child := sp.StartChild("never")
		child.AddInterval("wait", time.Time{}, 0)
		child.Fail()
		child.End()
		_ = ContextWithSpan(ctx, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f times per op, want 0", allocs)
	}
}

func TestSlowOpLogger(t *testing.T) {
	var buf bytes.Buffer
	l := SlowOpLogger{
		Log:       slog.New(slog.NewTextHandler(&buf, nil)),
		Threshold: 10 * time.Millisecond,
	}
	l.Observe("write", 0xabc, time.Millisecond, nil)
	if buf.Len() != 0 {
		t.Fatalf("fast clean op logged: %s", buf.String())
	}
	l.Observe("write", 0xabc, 20*time.Millisecond, nil)
	out := buf.String()
	if !strings.Contains(out, "slow op") || !strings.Contains(out, "0000000000000abc") {
		t.Fatalf("slow op log missing warning or trace id: %s", out)
	}
	buf.Reset()
	l.Observe("read", 0xdef, time.Millisecond, context.DeadlineExceeded)
	if !strings.Contains(buf.String(), "op failed") {
		t.Fatalf("failed op not logged: %s", buf.String())
	}
	// Nil logger: free no-op.
	(&SlowOpLogger{}).Observe("x", 1, time.Hour, nil)
	var nl *SlowOpLogger
	nl.Observe("x", 1, time.Hour, nil)
}

package obs

import (
	"context"
	"net"
	"net/http"
)

// http.go serves the expositions over HTTP for the -metrics-addr
// flags of redistbench and clusterfsdemo:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  expvar-style JSON
//	GET /report        the human-readable Report table

// Handler returns an http.Handler serving the registry's expositions.
// A nil registry serves empty documents, so the endpoint can be wired
// unconditionally.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, r)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(Report(r)))
	})
	return mux
}

// Serve starts an HTTP metrics server on addr (":0" binds a free
// port) and returns the bound address, e.g. "127.0.0.1:43571", plus a
// shutdown function that stops the server, waiting (bounded by ctx)
// for in-flight scrapes to finish. The server runs on a background
// goroutine until shut down.
func Serve(addr string, r *Registry) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Shutdown, nil
}

package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// http.go serves the expositions over HTTP for the -metrics-addr
// flags of the cmds:
//
//	GET /metrics        Prometheus text exposition
//	GET /metrics.json   expvar-style JSON
//	GET /report         the human-readable Report table
//	GET /debug/trace    in-flight ops and recent stitched trace trees
//	GET /debug/pprof/*  the standard runtime profiles
//
// /debug/trace parameters: ?id=<16-hex trace id> or ?op=<name> select
// one tree; ?format=json switches any view to JSON. parafilectl top
// and trace are thin clients of the JSON form.

// Handler returns an http.Handler serving the registry's expositions.
// A nil registry serves empty documents, so the endpoint can be wired
// unconditionally.
func Handler(r *Registry) http.Handler { return HandlerWith(r, nil) }

// DebugEndpoint is an extra debug route served beside the built-in
// expositions — e.g. a daemon's /debug/qos admission snapshot. JSON
// answers ?format=json requests; Text answers the rest (falling back
// to the JSON encoding when Text is nil).
type DebugEndpoint struct {
	// Path is the absolute route, e.g. "/debug/qos".
	Path string
	// JSON produces the document encoded for ?format=json requests.
	JSON func() any
	// Text produces the human-readable rendering (optional).
	Text func() string
}

// HandlerWith additionally serves /debug/trace from the tracer (nil
// tracer: the endpoint reports tracing disabled), the pprof profiles
// under /debug/pprof/, and any extra debug endpoints.
func HandlerWith(r *Registry, t *Tracer, extra ...DebugEndpoint) http.Handler {
	mux := http.NewServeMux()
	for _, ep := range extra {
		ep := ep
		mux.HandleFunc(ep.Path, func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Query().Get("format") == "json" || ep.Text == nil {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(ep.JSON())
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(ep.Text()))
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, r)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(Report(r)))
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		serveTrace(w, req, t)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// TraceDump is the JSON document /debug/trace serves without a
// selector: the node, its in-flight ops, and the recent trees.
type TraceDump struct {
	Node     string       `json:"node"`
	Enabled  bool         `json:"enabled"`
	InFlight []OpSnapshot `json:"inflight"`
	Recent   []*TraceTree `json:"recent"`
}

func serveTrace(w http.ResponseWriter, req *http.Request, t *Tracer) {
	q := req.URL.Query()
	asJSON := q.Get("format") == "json"

	// Selector: one tree by trace ID or latest by op name.
	var tree *TraceTree
	selected := false
	if id := q.Get("id"); id != "" {
		selected = true
		n, err := strconv.ParseUint(id, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id (want hex): "+id, http.StatusBadRequest)
			return
		}
		tree = t.Find(n)
	} else if op := q.Get("op"); op != "" {
		selected = true
		tree = t.FindOp(op)
	}
	if selected {
		if tree == nil {
			http.Error(w, "no such trace", http.StatusNotFound)
			return
		}
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(tree)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(tree.Format()))
		return
	}

	dump := TraceDump{
		Node:     t.Node(),
		Enabled:  t != nil,
		InFlight: t.InFlight(),
		Recent:   t.Recent(),
	}
	if dump.InFlight == nil {
		dump.InFlight = []OpSnapshot{}
	}
	if dump.Recent == nil {
		dump.Recent = []*TraceTree{}
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(dump)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if t == nil {
		w.Write([]byte("tracing disabled\n"))
		return
	}
	out := "node " + dump.Node + "\n\nin-flight:\n"
	if len(dump.InFlight) == 0 {
		out += "  (none)\n"
	}
	for _, op := range dump.InFlight {
		out += "  " + FormatTraceID(op.TraceID) + "  " + op.Op + "  " + formatNs(op.DurNs) + "\n"
	}
	out += "\nrecent:\n"
	if len(dump.Recent) == 0 {
		out += "  (none)\n"
	}
	w.Write([]byte(out))
	for _, tr := range dump.Recent {
		w.Write([]byte(tr.Format()))
	}
}

// Serve starts an HTTP metrics server on addr (":0" binds a free
// port) and returns the bound address, e.g. "127.0.0.1:43571", plus a
// shutdown function (see ServeWith).
func Serve(addr string, r *Registry) (string, func(context.Context) error, error) {
	return ServeWith(addr, r, nil)
}

// ServeWith is Serve with a tracer backing /debug/trace. The returned
// shutdown function stops the server, waiting (bounded by ctx) for
// in-flight scrapes to finish, and closes the listener; it is
// idempotent — concurrent and repeated calls all return the first
// call's result rather than racing a second Shutdown/Close against a
// listener that is already gone.
func ServeWith(addr string, r *Registry, t *Tracer, extra ...DebugEndpoint) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWith(r, t, extra...)}
	go srv.Serve(ln)
	var once sync.Once
	var shutErr error
	shutdown := func(ctx context.Context) error {
		once.Do(func() {
			shutErr = srv.Shutdown(ctx)
			// Shutdown closes the listener itself; the explicit Close
			// covers the path where Shutdown's context expired before
			// it got that far, so the port is never leaked.
			if cerr := ln.Close(); shutErr == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
				shutErr = cerr
			}
		})
		return shutErr
	}
	return ln.Addr().String(), shutdown, nil
}

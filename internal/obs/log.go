package obs

import (
	"fmt"
	"io"
	"log/slog"
	"time"
)

// log.go is the structured-logging side of the observability layer:
// slog JSON loggers pre-labelled with the emitting node, trace IDs
// rendered the same way everywhere, and the slow-op threshold logger
// the cluster wires to Config.SlowOpThreshold. Metrics say how much,
// traces say where; the log lines are the joinable middle — every
// line about an operation carries its trace_id, so a slow-op warning
// can be chased straight into `parafilectl trace`.

// NewLogger returns a JSON slog.Logger writing to w, with every line
// carrying the emitting node.
func NewLogger(w io.Writer, node string) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil)).With("node", node)
}

// TraceAttr renders a trace ID as the canonical log attribute:
// trace_id as 16 lowercase hex digits, matching what parafilectl
// trace accepts.
func TraceAttr(traceID uint64) slog.Attr {
	return slog.String("trace_id", FormatTraceID(traceID))
}

// FormatTraceID renders a trace ID as 16 lowercase hex digits.
func FormatTraceID(traceID uint64) string {
	return fmt.Sprintf("%016x", traceID)
}

// SlowOpLogger emits one structured warning per completed operation
// that ran longer than Threshold, and one error line per failed
// operation regardless of duration. A nil logger, nil Log, or zero
// threshold (for the slow half) disables the respective lines; the
// disabled path is a handful of compares and no allocation.
type SlowOpLogger struct {
	Log       *slog.Logger
	Threshold time.Duration
}

// Observe reports one completed operation. opErr is the operation's
// final error (nil for success).
func (l *SlowOpLogger) Observe(op string, traceID uint64, d time.Duration, opErr error) {
	if l == nil || l.Log == nil {
		return
	}
	if opErr != nil {
		l.Log.Error("op failed", "op", op, TraceAttr(traceID),
			"duration_ms", float64(d.Nanoseconds())/1e6, "err", opErr.Error())
		return
	}
	if l.Threshold <= 0 || d < l.Threshold {
		return
	}
	l.Log.Warn("slow op", "op", op, TraceAttr(traceID),
		"duration_ms", float64(d.Nanoseconds())/1e6,
		"threshold_ms", float64(l.Threshold.Nanoseconds())/1e6)
}

package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5122 {
		t.Fatalf("sum = %d, want 5122", h.Sum())
	}
	_, counts, _, _ := h.snapshot()
	want := []uint64{2, 2, 0, 1} // [≤10, ≤100, ≤1000, +Inf]
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %d, want 100", q)
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %d, want 1000 (overflow reports largest bound)", q)
	}
	if q := (*Histogram)(nil).Quantile(0.5); q != 0 {
		t.Errorf("nil quantile = %d", q)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 5})
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the data
// race check, and the totals prove no increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns", LatencyBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*per + i))
				// Concurrent registry lookups must also be safe.
				if r.Counter("c_total") != c {
					t.Error("lookup returned different counter")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestNilReceiversNoOp calls every public method on nil receivers:
// none may panic, and all must report zero values.
func TestNilReceiversNoOp(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry handed out a non-nil metric")
	}

	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}

	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}

	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded something")
	}

	var s *Span
	if s.StartChild("child") != nil {
		t.Error("nil span produced a child")
	}
	if s.End() != 0 || s.EndObserve(h) != 0 || s.Duration() != 0 {
		t.Error("nil span reported a duration")
	}
	if s.Name() != "" || s.Format() != "" || s.Children() != nil {
		t.Error("nil span reported content")
	}

	if err := WriteProm(io.Discard, nil); err != nil {
		t.Errorf("WriteProm(nil): %v", err)
	}
	if err := WriteJSON(io.Discard, nil); err != nil {
		t.Errorf("WriteJSON(nil): %v", err)
	}
	if Report(nil) != "" {
		t.Error("Report(nil) != \"\"")
	}
}

// TestNilPathZeroAllocs is the acceptance check that disabled
// instrumentation is free: the whole nil-receiver hot path must
// allocate nothing.
func TestNilPathZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	var s *Span
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(64)
		g.Add(1)
		h.Observe(123)
		child := s.StartChild("op")
		child.EndObserve(h)
	})
	if allocs != 0 {
		t.Fatalf("nil path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkNilRegistry is the same proof in benchmark form:
// 0 B/op, 0 allocs/op.
func BenchmarkNilRegistry(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("x", nil)
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(int64(i))
		h.Observe(int64(i))
		s.StartChild("op").EndObserve(h)
	}
}

// BenchmarkLiveCounter measures the enabled fast path for contrast.
func BenchmarkLiveCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestNaturalOrder: exposition order treats digit runs numerically, so
// per-node label series (breaker state, fault counters, per-I/O-node
// bytes) list node 2 before node 10 instead of lexically after.
func TestNaturalOrder(t *testing.T) {
	cases := []struct{ a, b string }{
		{`m{node="2"}`, `m{node="10"}`},
		{`m{node="9"}`, `m{node="11"}`},
		{`a2b`, `a10b`},
		{`a3`, `a03`}, // equal numeric value: the less-padded run sorts first
		{`abc`, `abd`},
		{`m`, `m{node="0"}`},
	}
	for _, tc := range cases {
		if !naturalLess(tc.a, tc.b) {
			t.Errorf("naturalLess(%q, %q) = false, want true", tc.a, tc.b)
		}
		if naturalLess(tc.b, tc.a) {
			t.Errorf("naturalLess(%q, %q) = true, want false", tc.b, tc.a)
		}
	}

	r := NewRegistry()
	for _, node := range []int{10, 2, 0, 1, 11} {
		r.Counter(fmt.Sprintf(`parafile_rpc_breaker_opens_total{node="%d"}`, node)).Inc()
	}
	got := r.names()
	want := []string{
		`parafile_rpc_breaker_opens_total{node="0"}`,
		`parafile_rpc_breaker_opens_total{node="1"}`,
		`parafile_rpc_breaker_opens_total{node="2"}`,
		`parafile_rpc_breaker_opens_total{node="10"}`,
		`parafile_rpc_breaker_opens_total{node="11"}`,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

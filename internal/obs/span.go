package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// span.go implements wall-clock spans with parent/child structure.
// They answer the question the virtual-time sim.Tracer cannot: where
// did the *host's* time go — plan compilation, gathers, cache misses —
// as opposed to where the *modeled 2002 cluster's* time went. A span
// tree is built synchronously (StartChild under the currently open
// parent) and rendered as an indented timeline by Format.
//
// A nil *Span is the disabled state: StartChild returns nil, End and
// friends record nothing, so instrumented code needs no guards.

// Span is one timed region of host execution.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	ended    bool
	children []*Span
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild opens a child span under s; nil-safe (returns nil).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if !s.ended {
		s.end = time.Now()
		s.ended = true
	}
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	return d
}

// EndObserve closes the span and records its duration, in
// nanoseconds, into the histogram. Both receivers may be nil.
func (s *Span) EndObserve(h *Histogram) time.Duration {
	d := s.End()
	if s != nil {
		h.Observe(d.Nanoseconds())
	}
	return d
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's length — up to now if still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Format renders the span tree as an indented timeline, durations on
// the right. An open span shows "(open)".
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.format(&b, 0)
	return b.String()
}

func (s *Span) format(b *strings.Builder, depth int) {
	state := ""
	s.mu.Lock()
	if !s.ended {
		state = " (open)"
	}
	s.mu.Unlock()
	fmt.Fprintf(b, "%-*s%-*s %12s%s\n",
		2*depth, "", 40-2*depth, s.name, formatNs(s.Duration().Nanoseconds()), state)
	for _, c := range s.Children() {
		c.format(b, depth+1)
	}
}

// formatNs renders nanoseconds human-readably (ns/µs/ms/s).
func formatNs(ns int64) string {
	switch {
	case ns < 1000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

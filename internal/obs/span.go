package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// span.go implements wall-clock spans with parent/child structure.
// They answer the question the virtual-time sim.Tracer cannot: where
// did the *host's* time go — plan compilation, gathers, cache misses —
// as opposed to where the *modeled 2002 cluster's* time went. A span
// tree is built synchronously (StartChild under the currently open
// parent) and rendered as an indented timeline by Format.
//
// A nil *Span is the disabled state: StartChild returns nil, End and
// friends record nothing, so instrumented code needs no guards.

// Span is one timed region of host execution. When opened under a
// trace (StartTrace/StartRemoteSpan, or as a descendant of either),
// it additionally carries the 64-bit trace/span/parent IDs and node
// label that let it travel across processes as a SpanRecord; a plain
// StartSpan tree leaves them zero and behaves exactly as before.
type Span struct {
	name  string
	start time.Time

	traceID uint64
	spanID  uint64
	parent  uint64
	node    string

	mu       sync.Mutex
	end      time.Time
	ended    bool
	errFlag  bool
	children []*Span
	foreign  []SpanRecord
}

// StartSpan opens a root span (untraced: no IDs, not exportable).
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartTrace opens a root span under a fresh trace ID, labelled with
// the node that runs it. Its descendants inherit the trace ID and
// node and get span IDs of their own.
func StartTrace(name, node string) *Span {
	return &Span{name: name, start: time.Now(),
		traceID: NewTraceID(), spanID: newID(), node: node}
}

// StartRemoteSpan opens a local root span adopted into a trace that
// started on another node: it keeps the caller-supplied trace ID and
// sets its parent to the remote span that issued the request, so the
// client can stitch it under that span by ID.
func StartRemoteSpan(name, node string, traceID, parent uint64) *Span {
	if traceID == 0 {
		return nil
	}
	return &Span{name: name, start: time.Now(),
		traceID: traceID, spanID: newID(), parent: parent, node: node}
}

// StartChild opens a child span under s; nil-safe (returns nil).
// Under a traced parent the child joins the trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	if s.traceID != 0 {
		c.traceID, c.spanID, c.parent, c.node = s.traceID, newID(), s.spanID, s.node
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddInterval attaches an already-measured child interval — the form
// used for accumulated costs like stream-window stalls, where the
// individual waits are too cheap to span but their sum matters.
// Nil-safe; zero or negative durations record nothing.
func (s *Span) AddInterval(name string, start time.Time, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	c := &Span{name: name, start: start, end: start.Add(d), ended: true}
	if s.traceID != 0 {
		c.traceID, c.spanID, c.parent, c.node = s.traceID, newID(), s.spanID, s.node
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// TraceID returns the span's trace ID (0 when untraced or nil) — the
// standard "is tracing live here" gate.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own ID (0 when untraced or nil).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// Node returns the node label the span runs on ("" when untraced).
func (s *Span) Node() string {
	if s == nil {
		return ""
	}
	return s.node
}

// Fail marks the span as errored; the flag travels in its record.
func (s *Span) Fail() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.errFlag = true
	s.mu.Unlock()
}

// Failed reports whether Fail was called.
func (s *Span) Failed() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errFlag
}

// Attach adds foreign records — completed spans shipped back from
// another node — under s; they surface in Records for stitching.
func (s *Span) Attach(recs []SpanRecord) {
	if s == nil || len(recs) == 0 {
		return
	}
	s.mu.Lock()
	s.foreign = append(s.foreign, recs...)
	s.mu.Unlock()
}

// Records flattens the traced subtree (local spans plus attached
// foreign records) into dst. Untraced spans contribute nothing. An
// open span is recorded up to now.
func (s *Span) Records(dst []SpanRecord) []SpanRecord {
	if s == nil || s.traceID == 0 {
		return dst
	}
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = time.Now()
	}
	rec := SpanRecord{
		TraceID: s.traceID, SpanID: s.spanID, Parent: s.parent,
		Name: s.name, Node: s.node,
		Start: s.start.UnixNano(), End: end.UnixNano(), Err: s.errFlag,
	}
	kids := append([]*Span(nil), s.children...)
	foreign := append([]SpanRecord(nil), s.foreign...)
	s.mu.Unlock()
	dst = append(dst, rec)
	dst = append(dst, foreign...)
	for _, c := range kids {
		dst = c.Records(dst)
	}
	return dst
}

// End closes the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if !s.ended {
		s.end = time.Now()
		s.ended = true
	}
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	return d
}

// EndObserve closes the span and records its duration, in
// nanoseconds, into the histogram. Both receivers may be nil.
func (s *Span) EndObserve(h *Histogram) time.Duration {
	d := s.End()
	if s != nil {
		h.Observe(d.Nanoseconds())
	}
	return d
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's length — up to now if still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Format renders the span tree as an indented timeline, durations on
// the right. An open span shows "(open)".
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.format(&b, 0)
	return b.String()
}

func (s *Span) format(b *strings.Builder, depth int) {
	state := ""
	s.mu.Lock()
	if !s.ended {
		state = " (open)"
	}
	s.mu.Unlock()
	fmt.Fprintf(b, "%-*s%-*s %12s%s\n",
		2*depth, "", 40-2*depth, s.name, formatNs(s.Duration().Nanoseconds()), state)
	for _, c := range s.Children() {
		c.format(b, depth+1)
	}
}

// formatNs renders nanoseconds human-readably (ns/µs/ms/s).
func formatNs(ns int64) string {
	switch {
	case ns < 1000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

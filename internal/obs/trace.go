package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// trace.go turns the process-local span trees of span.go into
// cross-node distributed traces. Every collective operation gets a
// 64-bit trace ID; every span in the tree a 64-bit span ID plus its
// parent's ID. Server-side spans are exported as flat SpanRecords,
// shipped over the wire (piggybacked on replies, or drained with
// MsgSpans after a streamed transfer), attached to the client span
// that issued the RPC, and stitched back into one tree by parent ID.
//
// Clocks: span IDs tie the tree together, timestamps do not. Each
// record's Start/End come from the clock of the node that ran the
// span, so durations are trustworthy but absolute times are only
// comparable within one node. Stitching therefore never orders or
// aligns spans across nodes by timestamp — the tree shape comes from
// parent IDs alone, and renderings show durations, not offsets.

// ID generation: a process-wide counter whisked through the
// splitmix64 finalizer and salted with a per-process nonce, so IDs
// are unique within a process and collide across processes only with
// ordinary birthday probability. No coordination, one atomic add.
var (
	idCounter atomic.Uint64
	idNonce   = uint64(time.Now().UnixNano()) * 0x9e3779b97f4a7c15
)

// NewTraceID returns a fresh non-zero 64-bit ID. Zero is reserved as
// "no trace" on the wire and in Span fields.
func NewTraceID() uint64 { return newID() }

func newID() uint64 {
	x := idNonce + idCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// SpanRecord is the wire- and JSON-portable form of one completed
// span. Start/End are UnixNano on the recording node's clock.
type SpanRecord struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent"`
	Name    string `json:"name"`
	Node    string `json:"node"`
	Start   int64  `json:"start_unix_ns"`
	End     int64  `json:"end_unix_ns"`
	Err     bool   `json:"error,omitempty"`
}

// DurationNs returns the record's length on its own node's clock.
func (r *SpanRecord) DurationNs() int64 { return r.End - r.Start }

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span. A nil
// span returns ctx unchanged, so the disabled path adds no context
// wrapping (and no allocation).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceNode is one span in a stitched tree.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// NodeShare is one node's share of a trace's self-time: the time
// spans on that node spent not covered by their own children. The
// self-time of an RPC client span minus its server children is the
// wire (and queueing) cost, which shows up under the client's node.
type NodeShare struct {
	Node string  `json:"node"`
	Ns   int64   `json:"ns"`
	Pct  float64 `json:"pct"`
}

// TraceTree is one operation's stitched cross-node trace.
type TraceTree struct {
	Op      string      `json:"op"`
	TraceID uint64      `json:"trace_id"`
	Start   int64       `json:"start_unix_ns"`
	DurNs   int64       `json:"duration_ns"`
	Err     bool        `json:"error,omitempty"`
	Root    *TraceNode  `json:"root"`
	Shares  []NodeShare `json:"node_shares,omitempty"`
}

// Stitch assembles flat records into a tree by parent ID. The root is
// the record whose parent is absent from the set (ties broken toward
// Parent==0, then earliest start); any other parentless records —
// e.g. spans from a node whose reply was lost — are attached under
// the root so the tree is always complete. Children sort by start
// time (meaningful within a node, best-effort across nodes).
func Stitch(recs []SpanRecord) *TraceNode {
	if len(recs) == 0 {
		return nil
	}
	byID := make(map[uint64]*TraceNode, len(recs))
	nodes := make([]*TraceNode, len(recs))
	for i := range recs {
		n := &TraceNode{SpanRecord: recs[i]}
		nodes[i] = n
		if _, dup := byID[n.SpanID]; !dup {
			byID[n.SpanID] = n
		}
	}
	betterRoot := func(n, cur *TraceNode) bool {
		if cur == nil {
			return true
		}
		if (n.Parent == 0) != (cur.Parent == 0) {
			return n.Parent == 0
		}
		return n.Start < cur.Start
	}
	var root *TraceNode
	var orphans []*TraceNode
	for _, n := range nodes {
		if p, ok := byID[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		if betterRoot(n, root) {
			if root != nil {
				orphans = append(orphans, root)
			}
			root = n
		} else {
			orphans = append(orphans, n)
		}
	}
	root.Children = append(root.Children, orphans...)
	var sortKids func(n *TraceNode)
	sortKids = func(n *TraceNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start < n.Children[j].Start
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sortKids(root)
	return root
}

// BuildTree stitches records and computes per-node self-time shares.
func BuildTree(op string, recs []SpanRecord) *TraceTree {
	root := Stitch(recs)
	if root == nil {
		return &TraceTree{Op: op}
	}
	t := &TraceTree{
		Op:      op,
		TraceID: root.TraceID,
		Start:   root.Start,
		DurNs:   root.DurationNs(),
		Err:     root.Err,
		Root:    root,
	}
	t.Shares = nodeShares(root)
	return t
}

// nodeShares aggregates self-time (own duration minus the sum of the
// children's durations, clamped at zero) by node and converts to
// percentages of the total.
func nodeShares(root *TraceNode) []NodeShare {
	byNode := map[string]int64{}
	var walk func(n *TraceNode)
	walk = func(n *TraceNode) {
		self := n.DurationNs()
		for _, c := range n.Children {
			self -= c.DurationNs()
			walk(c)
		}
		if self < 0 {
			self = 0
		}
		byNode[n.Node] += self
	}
	walk(root)
	var total int64
	for _, ns := range byNode {
		total += ns
	}
	shares := make([]NodeShare, 0, len(byNode))
	for node, ns := range byNode {
		s := NodeShare{Node: node, Ns: ns}
		if total > 0 {
			s.Pct = 100 * float64(ns) / float64(total)
		}
		shares = append(shares, s)
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Ns != shares[j].Ns {
			return shares[i].Ns > shares[j].Ns
		}
		return shares[i].Node < shares[j].Node
	})
	return shares
}

// Format renders the stitched tree as an indented timeline with the
// owning node on each line and the per-node share footer.
func (t *TraceTree) Format() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	errMark := ""
	if t.Err {
		errMark = "  ERROR"
	}
	fmt.Fprintf(&b, "op %s  trace %016x  %s%s\n", t.Op, t.TraceID, formatNs(t.DurNs), errMark)
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		mark := ""
		if n.Err {
			mark = "  error=true"
		}
		fmt.Fprintf(&b, "  %-*s%-*s %12s  [%s]%s\n",
			2*depth, "", 44-2*depth, n.Name, formatNs(n.DurationNs()), n.Node, mark)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	if len(t.Shares) > 0 {
		b.WriteString("  --\n")
		for _, s := range t.Shares {
			fmt.Fprintf(&b, "  %-20s %5.1f%%  %s\n", s.Node, s.Pct, formatNs(s.Ns))
		}
	}
	return b.String()
}

// OpSnapshot describes one in-flight operation.
type OpSnapshot struct {
	Op      string `json:"op"`
	TraceID uint64 `json:"trace_id"`
	Start   int64  `json:"start_unix_ns"`
	DurNs   int64  `json:"duration_ns"`
}

// Tracer hands out trace roots, tracks in-flight operations, and
// keeps a bounded ring of recently completed stitched trees for the
// /debug/trace endpoint and parafilectl. A nil *Tracer is the
// disabled state: StartOp returns a nil span and every other method
// is a free no-op, so the instrumented paths need no guards.
type Tracer struct {
	node string
	cap  int

	mu       sync.Mutex
	inflight map[uint64]*Span
	recent   []*TraceTree // ring: recent[next] is the oldest slot
	next     int
	filled   bool
}

// NewTracer returns a tracer labelling spans with the given node name
// and retaining up to capacity completed trees (minimum 1).
func NewTracer(node string, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{node: node, cap: capacity, inflight: make(map[uint64]*Span)}
}

// Node returns the tracer's node label ("" for nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// StartOp opens a traced root span for one operation and registers it
// as in-flight. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) StartOp(name string) *Span {
	if t == nil {
		return nil
	}
	s := StartTrace(name, t.node)
	t.mu.Lock()
	t.inflight[s.traceID] = s
	t.mu.Unlock()
	return s
}

// Adopt registers an externally created span (e.g. a server span
// adopted from a remote trace ID) as an in-flight operation.
func (t *Tracer) Adopt(s *Span) {
	if t == nil || s == nil || s.traceID == 0 {
		return
	}
	t.mu.Lock()
	t.inflight[s.traceID] = s
	t.mu.Unlock()
}

// FinishOp ends the span, stitches its records (own subtree plus any
// attached foreign records) into a tree, and retires it from
// in-flight into the recent ring. Both receivers may be nil.
func (t *Tracer) FinishOp(s *Span) *TraceTree {
	if s == nil {
		return nil
	}
	s.End()
	if t == nil {
		return nil
	}
	tree := BuildTree(s.Name(), s.Records(nil))
	t.mu.Lock()
	delete(t.inflight, s.traceID)
	if len(t.recent) < t.cap {
		t.recent = append(t.recent, tree)
	} else {
		t.recent[t.next] = tree
		t.next = (t.next + 1) % t.cap
		t.filled = true
	}
	t.mu.Unlock()
	return tree
}

// InFlight snapshots the currently running operations, oldest first.
func (t *Tracer) InFlight() []OpSnapshot {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	out := make([]OpSnapshot, 0, len(t.inflight))
	for _, s := range t.inflight {
		out = append(out, OpSnapshot{
			Op:      s.Name(),
			TraceID: s.traceID,
			Start:   s.start.UnixNano(),
			DurNs:   now.Sub(s.start).Nanoseconds(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Recent returns the retained completed trees, oldest first.
func (t *Tracer) Recent() []*TraceTree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TraceTree, 0, len(t.recent))
	if t.filled {
		out = append(out, t.recent[t.next:]...)
		out = append(out, t.recent[:t.next]...)
	} else {
		out = append(out, t.recent...)
	}
	return out
}

// Find returns the retained tree with the given trace ID, or nil.
func (t *Tracer) Find(traceID uint64) *TraceTree {
	for _, tree := range t.Recent() {
		if tree.TraceID == traceID {
			return tree
		}
	}
	return nil
}

// FindOp returns the most recently completed tree whose op name
// matches, or nil.
func (t *Tracer) FindOp(name string) *TraceTree {
	recent := t.Recent()
	for i := len(recent) - 1; i >= 0; i-- {
		if recent[i].Op == name {
			return recent[i]
		}
	}
	return nil
}

// SpanStash holds completed server-side span records keyed by trace
// ID until the client drains them with a MsgSpans RPC — the return
// path for streamed operations, whose replies are too latency-
// sensitive to carry piggybacked records. Bounded: when more than cap
// distinct traces are pending the oldest trace's records are dropped
// (a client that never drains must not grow server memory). A nil
// *SpanStash is the disabled state.
type SpanStash struct {
	mu    sync.Mutex
	m     map[uint64][]SpanRecord
	order []uint64
	cap   int
}

// NewSpanStash returns a stash retaining records for up to capacity
// distinct trace IDs (minimum 1).
func NewSpanStash(capacity int) *SpanStash {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanStash{m: make(map[uint64][]SpanRecord), cap: capacity}
}

// Put appends records under their trace ID, evicting the oldest
// pending trace beyond the capacity.
func (st *SpanStash) Put(traceID uint64, recs []SpanRecord) {
	if st == nil || traceID == 0 || len(recs) == 0 {
		return
	}
	st.mu.Lock()
	if _, ok := st.m[traceID]; !ok {
		st.order = append(st.order, traceID)
		for len(st.order) > st.cap {
			delete(st.m, st.order[0])
			st.order = st.order[1:]
		}
	}
	st.m[traceID] = append(st.m[traceID], recs...)
	st.mu.Unlock()
}

// Take removes and returns the records pending for a trace ID.
func (st *SpanStash) Take(traceID uint64) []SpanRecord {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	recs := st.m[traceID]
	if recs != nil {
		delete(st.m, traceID)
		for i, id := range st.order {
			if id == traceID {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
	}
	st.mu.Unlock()
	return recs
}

// Pending returns the number of traces with stashed records.
func (st *SpanStash) Pending() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

package clusterfile

import (
	"fmt"
	"testing"

	"parafile/internal/part"
)

// fault_test.go injects storage failures into the write and read paths
// and checks that operations report errors instead of corrupting state
// or hanging the event kernel.

// faultyStorage wraps memStorage and fails operations once shared
// fuses burn down (counters shared across all subfiles of the file).
type faultyStorage struct {
	memStorage
	writesLeft *int
	readsLeft  *int
}

func (s *faultyStorage) WriteAt(p []byte, off int64) error {
	if *s.writesLeft <= 0 {
		return fmt.Errorf("injected write fault")
	}
	*s.writesLeft--
	return s.memStorage.WriteAt(p, off)
}

func (s *faultyStorage) ReadAt(p []byte, off int64) error {
	if *s.readsLeft <= 0 {
		return fmt.Errorf("injected read fault")
	}
	*s.readsLeft--
	return s.memStorage.ReadAt(p, off)
}

func faultyFactory(writes, reads int) StorageFactory {
	w, r := writes, reads
	return func(string, int) (Storage, error) {
		return &faultyStorage{writesLeft: &w, readsLeft: &r}, nil
	}
}

func faultCluster(t *testing.T, writes, reads int) (*Cluster, *View, int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Storage = faultyFactory(writes, reads)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.CreateFile("faulty", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.SetView(0, part.MustFile(0, rows), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, n * n / 4
}

// TestWriteFaultSurfaces: a failing subfile store surfaces as an
// operation error; the kernel still drains.
func TestWriteFaultSurfaces(t *testing.T) {
	c, v, per := faultCluster(t, 0, 1000)
	buf := make([]byte, per)
	op, err := v.StartWrite(ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err == nil {
		t.Fatal("write against failing storage reported no error")
	}
	if c.K.Pending() != 0 {
		t.Errorf("kernel left %d pending events after fault", c.K.Pending())
	}
}

// TestPartialWriteFault: a fault in one subfile's store does not stop
// the other subfiles from acknowledging.
func TestPartialWriteFault(t *testing.T) {
	// Allow two store writes, then fail: the first two subfiles'
	// writes succeed and the third burns the fuse.
	c, v, per := faultCluster(t, 2, 1000)
	buf := make([]byte, per)
	op, err := v.StartWrite(ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err == nil {
		t.Fatal("expected an error from the exhausted store")
	}
	if op.Done() {
		// pending hit zero because errors also decrement; acceptable —
		// but TNet must not have been recorded as success with zero
		// time.
		if op.Stats.TNet < 0 {
			t.Errorf("negative TNet after fault")
		}
	}
}

// TestReadFaultSurfaces: read-side storage failures surface too.
func TestReadFaultSurfaces(t *testing.T) {
	c, v, per := faultCluster(t, 1000, 0)
	buf := make([]byte, per)
	wop, err := v.StartWrite(ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if wop.Err != nil {
		t.Fatalf("write should succeed: %v", wop.Err)
	}
	rop, err := v.StartRead(0, per-1, make([]byte, per))
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if rop.Err == nil {
		t.Fatal("read against failing storage reported no error")
	}
	if c.K.Pending() != 0 {
		t.Errorf("kernel left %d pending events after read fault", c.K.Pending())
	}
}

// TestStorageFactoryFailure: CreateFile surfaces factory errors.
func TestStorageFactoryFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Storage = func(string, int) (Storage, error) {
		return nil, fmt.Errorf("no space")
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := part.ColBlocks(32, 32, 4)
	if _, err := c.CreateFile("f", part.MustFile(0, cols), nil); err == nil {
		t.Fatal("factory failure not surfaced")
	}
}

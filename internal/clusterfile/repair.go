package clusterfile

import (
	"context"
	"fmt"
)

// repair.go implements the maintenance half of the replication layer:
// Scrub compares the replica placements of every subfile segment by
// checksum (no data ships — each I/O node computes CRC32C locally via
// SubfileHandle.Checksum), and Repair rewrites the divergent or
// unreadable replicas from a healthy sibling. Together they convert
// "node was down during a quorum write" and "replica rotted on disk"
// from silent divergence into a counted, healable condition.
//
// Both run host-side and synchronously: they are maintenance
// operations, not part of the §8.1 data path, so they use the
// transport directly rather than the event kernel.

// DefaultScrubSegmentBytes is the per-segment granularity of Scrub:
// checksums are compared segment by segment so a single flipped byte
// names a 1 MiB window instead of the whole subfile.
const DefaultScrubSegmentBytes = 1 << 20

// repairChunk bounds the staging buffer RepairReplica copies through.
const repairChunk = 4 << 20

// ScrubMismatch is one divergent (or unreadable) replica segment.
type ScrubMismatch struct {
	// Subfile and Replica name the bad placement; IONode is where it
	// lives.
	Subfile int
	Replica int
	IONode  int
	// Off/Len is the segment window in the subfile's linear space.
	Off, Len int64
	// Want is the consensus checksum, Got the divergent one. When the
	// replica could not be checksummed at all, Err holds the transport
	// error and Want/Got are zero.
	Want, Got uint32
	Err       error
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Subfiles and Segments count what was compared; Checked totals the
	// bytes covered (per subfile, not multiplied by R).
	Subfiles int
	Segments int
	Checked  int64
	// Mismatches lists every divergent or unreadable replica segment.
	Mismatches []ScrubMismatch
}

// Clean reports whether the scrub found no divergence.
func (r *ScrubReport) Clean() bool { return len(r.Mismatches) == 0 }

// RepairStats summarizes one repair pass.
type RepairStats struct {
	// Subfiles and Replicas count what was healed; Bytes totals the
	// bytes rewritten.
	Subfiles int
	Replicas int
	Bytes    int64
}

// ReplicaLen reports the stored length of replica r of subfile sub —
// the maintenance probe behind status tooling, reaching one placement
// directly instead of the failover read path.
func (f *File) ReplicaLen(ctx context.Context, r, sub int) (int64, error) {
	if sub < 0 || sub >= len(f.replicas[0]) {
		return 0, fmt.Errorf("clusterfile: subfile %d out of range [0,%d)", sub, len(f.replicas[0]))
	}
	if r < 0 || r >= f.Replication {
		return 0, fmt.Errorf("clusterfile: replica %d out of range [0,%d)", r, f.Replication)
	}
	octx, cancel := f.cluster.opCtx(ctx)
	defer cancel()
	return f.handle(r, sub).Len(octx)
}

// Scrub compares every replica placement of the file segment by
// segment at the default granularity. See ScrubSegments.
func (f *File) Scrub(ctx context.Context) (*ScrubReport, error) {
	return f.ScrubSegments(ctx, DefaultScrubSegmentBytes)
}

// ScrubSegments walks the file's subfiles in segBytes windows, asks
// every replica placement for the window's CRC32C, and reports the
// placements that diverge from consensus. Consensus per segment is
// decided in three steps: replicas of the longest subfile length win
// first (a quorum-relaxed write leaves a stale replica short, and
// shorter must never outvote longer), then the majority checksum among
// those, then — on a tie — the lowest replica index. With R=1 there is
// nothing to vote on; scrub still checksums every subfile, so
// unreadable storage surfaces as a mismatch with Err set.
//
// A placement whose Checksum call fails hard is reported as a
// mismatch; a cancelled context aborts the scrub with the context
// error instead.
func (f *File) ScrubSegments(ctx context.Context, segBytes int64) (*ScrubReport, error) {
	if segBytes < 1 {
		return nil, fmt.Errorf("clusterfile: scrub segment of %d bytes", segBytes)
	}
	c := f.cluster
	octx, cancel := c.opCtx(ctx)
	defer cancel()
	span := c.span.StartChild("clusterfile.scrub")
	defer span.End()
	rep := &ScrubReport{}
	R := f.Replication
	for s := 0; s < len(f.replicas[0]); s++ {
		rep.Subfiles++
		// The scrub covers the longest replica's extent: a replica that
		// is short relative to a sibling is divergent in the tail, and
		// the zero-fill semantics of Checksum make that visible.
		var maxLen int64
		lens := make([]int64, R)
		lenErr := make([]error, R)
		for r := 0; r < R; r++ {
			n, err := f.handle(r, s).Len(octx)
			if err != nil {
				if isCtxErr(err) {
					return nil, err
				}
				lenErr[r] = err
				continue
			}
			lens[r] = n
			if n > maxLen {
				maxLen = n
			}
		}
		for off := int64(0); off == 0 || off < maxLen; off += segBytes {
			n := segBytes
			if off+n > maxLen {
				n = maxLen - off
			}
			if n <= 0 {
				if off > 0 {
					break
				}
				n = 0
			}
			rep.Segments++
			rep.Checked += n
			c.met.scrubSegments.Inc()
			sums := make([]uint32, R)
			sumOK := make([]bool, R)
			for r := 0; r < R; r++ {
				if lenErr[r] != nil {
					continue
				}
				sum, err := f.handle(r, s).Checksum(octx, off, n)
				if err != nil {
					if isCtxErr(err) {
						return nil, err
					}
					lenErr[r] = err
					continue
				}
				sums[r] = sum
				sumOK[r] = true
			}
			want, ok := consensus(lens, sums, sumOK)
			for r := 0; r < R; r++ {
				bad := false
				m := ScrubMismatch{
					Subfile: s, Replica: r, IONode: f.Placement[r][s],
					Off: off, Len: n,
				}
				switch {
				case lenErr[r] != nil:
					m.Err = lenErr[r]
					bad = true
				case ok && sums[r] != want:
					m.Want, m.Got = want, sums[r]
					bad = true
				}
				if bad {
					rep.Mismatches = append(rep.Mismatches, m)
					c.met.scrubMismatches.Inc()
				}
			}
			if maxLen == 0 {
				break
			}
		}
	}
	return rep, nil
}

// consensus picks the reference checksum of one segment: among the
// readable replicas of maximal subfile length, the majority checksum;
// ties go to the lowest replica index. ok is false when no replica was
// readable.
func consensus(lens []int64, sums []uint32, sumOK []bool) (uint32, bool) {
	var maxLen int64 = -1
	for r := range sums {
		if sumOK[r] && lens[r] > maxLen {
			maxLen = lens[r]
		}
	}
	if maxLen < 0 {
		return 0, false
	}
	best, bestVotes := uint32(0), 0
	for r := range sums {
		if !sumOK[r] || lens[r] != maxLen {
			continue
		}
		votes := 0
		for q := range sums {
			if sumOK[q] && lens[q] == maxLen && sums[q] == sums[r] {
				votes++
			}
		}
		if votes > bestVotes {
			best, bestVotes = sums[r], votes
		}
	}
	return best, bestVotes > 0
}

// RepairReplica rewrites replica dst of the given subfile from replica
// src: the source is staged fully host-side first, then committed with
// a grow plus chunked writes — so a source that dies mid-read leaves
// the destination untouched. It returns the bytes written.
func (f *File) RepairReplica(ctx context.Context, sub, src, dst int) (int64, error) {
	R := f.Replication
	if sub < 0 || sub >= len(f.replicas[0]) {
		return 0, fmt.Errorf("clusterfile: subfile %d out of range [0,%d)", sub, len(f.replicas[0]))
	}
	if src < 0 || src >= R || dst < 0 || dst >= R || src == dst {
		return 0, fmt.Errorf("clusterfile: repair %d<-%d outside replicas [0,%d)", dst, src, R)
	}
	c := f.cluster
	octx, cancel := c.opCtx(ctx)
	defer cancel()

	// Stage: read the whole source replica.
	n, err := f.handle(src, sub).Len(octx)
	if err != nil {
		return 0, fmt.Errorf("clusterfile: repair source len: %w", err)
	}
	data := make([]byte, n)
	if n > 0 {
		if err := f.handle(src, sub).ReadAt(octx, data, 0); err != nil {
			return 0, fmt.Errorf("clusterfile: repair source read: %w", err)
		}
	}

	// Commit: grow the destination, then overwrite it chunk by chunk.
	if err := f.handle(dst, sub).EnsureLen(octx, n); err != nil {
		return 0, fmt.Errorf("clusterfile: repair destination grow: %w", err)
	}
	for off := int64(0); off < n; off += repairChunk {
		m := n - off
		if m > repairChunk {
			m = repairChunk
		}
		if err := f.handle(dst, sub).WriteAt(octx, data[off:off+m], off); err != nil {
			return 0, fmt.Errorf("clusterfile: repair destination write: %w", err)
		}
	}
	c.met.repairBytes.Add(n)
	return n, nil
}

// Repair scrubs the file and heals every divergent or unreadable
// replica segment from the lowest-indexed clean sibling of its
// subfile, whole-replica at a time. It returns what was healed and the
// pre-repair scrub report. A subfile with no clean replica at all is a
// hard error — there is nothing to heal from.
func (f *File) Repair(ctx context.Context) (*RepairStats, *ScrubReport, error) {
	c := f.cluster
	span := c.span.StartChild("clusterfile.repair")
	defer span.End()
	c.met.repairOps.Inc()
	rep, err := f.Scrub(ctx)
	if err != nil {
		return nil, nil, err
	}
	stats := &RepairStats{}
	if rep.Clean() {
		return stats, rep, nil
	}
	// Collapse segment mismatches into per-subfile replica sets.
	bad := make(map[int]map[int]bool)
	for _, m := range rep.Mismatches {
		if bad[m.Subfile] == nil {
			bad[m.Subfile] = make(map[int]bool)
		}
		bad[m.Subfile][m.Replica] = true
	}
	for sub := 0; sub < len(f.replicas[0]); sub++ {
		replicas := bad[sub]
		if replicas == nil {
			continue
		}
		src := -1
		for r := 0; r < f.Replication; r++ {
			if !replicas[r] {
				src = r
				break
			}
		}
		if src < 0 {
			return stats, rep, fmt.Errorf("clusterfile: subfile %d has no clean replica to repair from", sub)
		}
		stats.Subfiles++
		for r := range replicas {
			n, err := f.RepairReplica(ctx, sub, src, r)
			if err != nil {
				return stats, rep, err
			}
			stats.Replicas++
			stats.Bytes += n
		}
	}
	return stats, rep, nil
}

package clusterfile

import "sync"

// bufpool.go pools the gather/scatter message buffers of the write,
// read and redistribution paths. The protocol allocates one buffer
// per (operation, subfile) pair and drops it as soon as the payload
// has been scattered; under repeated operations that is a steady
// stream of large short-lived allocations, which the pool turns into
// reuse. Buffers are handed out at exact length but retain their
// capacity across uses; callers must fully overwrite the requested
// bytes (every gather path does — it packs exactly len(buf) bytes).

var msgBufPool sync.Pool

// getMsgBuf returns a length-n buffer, reusing pooled capacity when
// possible. Contents are unspecified. Pool traffic is counted on the
// cluster's msgbuf hit/miss series: a hit reuses pooled capacity, a
// miss (empty pool, or pooled capacity too small) allocates.
func (c *Cluster) getMsgBuf(n int64) []byte {
	if v := msgBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if int64(cap(b)) >= n {
			c.met.bufHits.Inc()
			return b[:n]
		}
	}
	c.met.bufMisses.Inc()
	return make([]byte, n)
}

// putMsgBuf returns a buffer to the pool. The caller must not retain
// the slice afterwards.
func putMsgBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	msgBufPool.Put(&b)
}

package clusterfile

import (
	"sync"
	"sync/atomic"
)

// bufpool.go pools the gather/scatter message buffers of the write,
// read and redistribution paths. The protocol allocates one buffer
// per (operation, subfile) pair and drops it as soon as the payload
// has been scattered; under repeated operations that is a steady
// stream of large short-lived allocations, which the pool turns into
// reuse. Buffers are handed out at exact length but retain their
// capacity across uses; callers must fully overwrite the requested
// bytes (every gather path does — it packs exactly len(buf) bytes).

var msgBufPool sync.Pool

// maxPooledMsgBuf caps the capacity a returned buffer may retain. One
// huge redistribution would otherwise pin its peak buffer in the pool
// for the rest of the process; buffers beyond the cap are dropped and
// counted instead.
const maxPooledMsgBuf = 8 << 20

var msgBufDiscards atomic.Int64

// MsgBufDiscards reports how many buffers were dropped instead of
// pooled because they exceeded the retention cap (process-wide).
func MsgBufDiscards() int64 { return msgBufDiscards.Load() }

// getMsgBuf returns a length-n buffer, reusing pooled capacity when
// possible. Contents are unspecified. Pool traffic is counted on the
// cluster's msgbuf hit/miss series: a hit reuses pooled capacity, a
// miss (empty pool, or pooled capacity too small) allocates.
func (c *Cluster) getMsgBuf(n int64) []byte {
	if v := msgBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if int64(cap(b)) >= n {
			c.met.bufHits.Inc()
			return b[:n]
		}
	}
	c.met.bufMisses.Inc()
	return make([]byte, n)
}

// putMsgBuf returns a buffer to the pool. The caller must not retain
// the slice afterwards. Oversized buffers are dropped rather than
// pooled so a single giant operation cannot pin its peak allocation;
// drops count on both the process-wide counter and the cluster's
// msgbuf-discard series.
func (c *Cluster) putMsgBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	if cap(b) > maxPooledMsgBuf {
		msgBufDiscards.Add(1)
		c.met.bufDiscards.Inc()
		c.met.poolDiscards.Set(MsgBufDiscards())
		return
	}
	b = b[:0]
	msgBufPool.Put(&b)
}

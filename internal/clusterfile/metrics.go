package clusterfile

import (
	"fmt"

	"parafile/internal/obs"
)

// metrics.go names and binds the cluster's observability series. A
// cluster built with a nil Config.Metrics gets a cfMetrics full of
// nil metrics, whose methods are free no-ops — instrumented code
// paths need no guards and the disabled path allocates nothing.
const (
	// MetricGatherBytes / MetricScatterBytes total the bytes moved by
	// the gather (pack) and scatter (unpack) passes of the write, read
	// and redistribution protocols.
	MetricGatherBytes  = "parafile_clusterfile_gather_bytes_total"
	MetricScatterBytes = "parafile_clusterfile_scatter_bytes_total"
	// MetricGatherNs / MetricScatterNs are host wall-clock latency
	// histograms of the individual gather/scatter passes.
	MetricGatherNs  = "parafile_clusterfile_gather_ns"
	MetricScatterNs = "parafile_clusterfile_scatter_ns"
	// MetricNetMessages / MetricNetBytes count protocol messages and
	// payload bytes handed to the simulated interconnect.
	MetricNetMessages = "parafile_clusterfile_net_messages_total"
	MetricNetBytes    = "parafile_clusterfile_net_bytes_total"
	// MetricMsgBufHits / MetricMsgBufMisses measure the message-buffer
	// pool: hits reuse pooled capacity, misses allocate.
	MetricMsgBufHits   = "parafile_clusterfile_msgbuf_hits_total"
	MetricMsgBufMisses = "parafile_clusterfile_msgbuf_misses_total"
	// MetricMsgBufDiscards counts buffers dropped by the pool's
	// retention cap instead of being returned for reuse.
	MetricMsgBufDiscards = "parafile_clusterfile_msgbuf_discards_total"
	// metricPoolDiscards is the cross-package normalized discard
	// series (rpc.MetricPoolDiscards): every buffer pool exposes its
	// process-wide discard count under this one name with a lowercase
	// kind label. The msgbuf kind is bound once here, mirroring
	// MsgBufDiscards as a gauge.
	metricPoolDiscards = `parafile_pool_discards{kind="msgbuf"}`
	// MetricSetViews counts SetView calls; MetricSetViewNs is the
	// intersection+projection latency histogram (the paper's t_i).
	MetricSetViews  = "parafile_clusterfile_set_views_total"
	MetricSetViewNs = "parafile_clusterfile_set_view_ns"
	// Operation counters.
	MetricWriteOps  = "parafile_clusterfile_write_ops_total"
	MetricReadOps   = "parafile_clusterfile_read_ops_total"
	MetricRedistOps = "parafile_clusterfile_redist_ops_total"
	// metricIONodeBytes roots the per-I/O-node byte series,
	// parafile_clusterfile_io_node_bytes_total{node="i"} — comparing
	// the per-node series exposes the byte skew of a layout.
	metricIONodeBytes = "parafile_clusterfile_io_node_bytes_total"
	// Replication series. MetricReplicaFailovers counts reads re-issued
	// against a sibling replica after a placement failed;
	// MetricReplicaDegradedOps counts operations that succeeded while
	// one or more replica placements failed (quorum absorbed the loss).
	MetricReplicaFailovers   = "parafile_replica_failover_total"
	MetricReplicaDegradedOps = "parafile_replica_degraded_ops_total"
	// Scrub/repair series: segments compared, mismatching segments
	// found, repair operations run and bytes rewritten by them.
	MetricScrubSegments   = "parafile_replica_scrub_segments_total"
	MetricScrubMismatches = "parafile_replica_scrub_mismatches_total"
	MetricRepairOps       = "parafile_replica_repair_ops_total"
	MetricRepairBytes     = "parafile_replica_repair_bytes_total"
)

// cfMetrics holds the cluster's bound metrics.
type cfMetrics struct {
	gatherBytes, scatterBytes *obs.Counter
	gatherNs, scatterNs       *obs.Histogram
	netMsgs, netBytes         *obs.Counter
	bufHits, bufMisses        *obs.Counter
	bufDiscards               *obs.Counter
	poolDiscards              *obs.Gauge
	setViews                  *obs.Counter
	setViewNs                 *obs.Histogram
	writeOps, readOps         *obs.Counter
	redistOps                 *obs.Counter
	failovers, degradedOps    *obs.Counter
	scrubSegments             *obs.Counter
	scrubMismatches           *obs.Counter
	repairOps, repairBytes    *obs.Counter
	ioNodeBytes               []*obs.Counter
}

// newCFMetrics binds the series on the registry (every field nil when
// reg is nil, which is the free disabled state).
func newCFMetrics(reg *obs.Registry, ioNodes int) cfMetrics {
	m := cfMetrics{
		gatherBytes:     reg.Counter(MetricGatherBytes),
		scatterBytes:    reg.Counter(MetricScatterBytes),
		gatherNs:        reg.Histogram(MetricGatherNs, obs.LatencyBuckets()),
		scatterNs:       reg.Histogram(MetricScatterNs, obs.LatencyBuckets()),
		netMsgs:         reg.Counter(MetricNetMessages),
		netBytes:        reg.Counter(MetricNetBytes),
		bufHits:         reg.Counter(MetricMsgBufHits),
		bufMisses:       reg.Counter(MetricMsgBufMisses),
		bufDiscards:     reg.Counter(MetricMsgBufDiscards),
		poolDiscards:    reg.Gauge(metricPoolDiscards),
		setViews:        reg.Counter(MetricSetViews),
		setViewNs:       reg.Histogram(MetricSetViewNs, obs.LatencyBuckets()),
		writeOps:        reg.Counter(MetricWriteOps),
		readOps:         reg.Counter(MetricReadOps),
		redistOps:       reg.Counter(MetricRedistOps),
		failovers:       reg.Counter(MetricReplicaFailovers),
		degradedOps:     reg.Counter(MetricReplicaDegradedOps),
		scrubSegments:   reg.Counter(MetricScrubSegments),
		scrubMismatches: reg.Counter(MetricScrubMismatches),
		repairOps:       reg.Counter(MetricRepairOps),
		repairBytes:     reg.Counter(MetricRepairBytes),
		ioNodeBytes:     make([]*obs.Counter, ioNodes),
	}
	for i := range m.ioNodeBytes {
		m.ioNodeBytes[i] = reg.Counter(fmt.Sprintf(`%s{node="%d"}`, metricIONodeBytes, i))
	}
	return m
}

// ioBytes returns the byte counter of the given I/O node (nil, hence
// a no-op, out of range).
func (m *cfMetrics) ioBytes(node int) *obs.Counter {
	if node < 0 || node >= len(m.ioNodeBytes) {
		return nil
	}
	return m.ioNodeBytes[node]
}

// recordNet counts one protocol message of the given payload size.
func (m *cfMetrics) recordNet(bytes int64) {
	m.netMsgs.Inc()
	m.netBytes.Add(bytes)
}

package clusterfile

import (
	"fmt"
	"sort"
	"strings"
)

// partial.go defines the typed partial-failure result of the fan-out
// operations. The paper's protocol assumes every I/O node answers
// every GATHER/SCATTER message; over a real transport a single node
// can fail or hang, so Write/Read/Redistribute report a per-I/O-node
// outcome instead of a flat error: which nodes landed their bytes,
// which failed, and which were cancelled before their turn. Callers
// can then repair (rewrite only the failed nodes' windows) instead of
// discarding the whole collective operation.

// OutcomeState classifies one I/O node's result in a collective
// operation.
type OutcomeState int

const (
	// OutcomeOK: every storage operation against the node succeeded.
	OutcomeOK OutcomeState = iota
	// OutcomeFailed: a storage or transport operation against the node
	// returned a hard error.
	OutcomeFailed
	// OutcomeCancelled: the operation's context was cancelled (caller
	// cancellation, per-op deadline, or sibling fail-fast) before the
	// node's work ran.
	OutcomeCancelled
	// OutcomeShed: the node answered with admission-control
	// backpressure (ErrCodeOverloaded) and the retry budget ran out
	// before capacity returned. Nothing was executed — the window is
	// untouched, not torn — and the node is healthy, just saturated;
	// retry later rather than repairing.
	OutcomeShed
)

func (s OutcomeState) String() string {
	switch s {
	case OutcomeOK:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeShed:
		return "shed"
	}
	return fmt.Sprintf("OutcomeState(%d)", int(s))
}

// NodeOutcome is one I/O node's result: its terminal state, the bytes
// that actually moved to or from it, and the first error observed
// against it (nil for OK and usually context.Canceled for cancelled).
type NodeOutcome struct {
	IONode int
	State  OutcomeState
	Bytes  int64
	Err    error
}

// PartialError reports a collective operation that did not fully
// succeed: the per-I/O-node outcomes, including the nodes that DID
// succeed, so callers know exactly which windows are durable.
type PartialError struct {
	// Op names the operation: "write", "read" or "redistribute".
	Op string
	// Outcomes holds one entry per involved I/O node, sorted by node.
	Outcomes []NodeOutcome
	// TraceID, when nonzero, is the distributed trace the operation ran
	// under (Config.Tracer): `parafilectl trace <id>` or
	// /debug/trace?id=<id> shows where the failure sat in the op's
	// cross-node timeline.
	TraceID uint64
}

// Error summarizes the outcome split and names the failing nodes.
func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clusterfile: partial %s: %d/%d I/O nodes ok",
		e.Op, len(e.Nodes(OutcomeOK)), len(e.Outcomes))
	if failed := e.Nodes(OutcomeFailed); len(failed) > 0 {
		fmt.Fprintf(&b, "; failed %v", failed)
		for _, o := range e.Outcomes {
			if o.State == OutcomeFailed && o.Err != nil {
				fmt.Fprintf(&b, " (node %d: %v)", o.IONode, o.Err)
				break
			}
		}
	}
	if shed := e.Nodes(OutcomeShed); len(shed) > 0 {
		fmt.Fprintf(&b, "; shed %v", shed)
	}
	if cancelled := e.Nodes(OutcomeCancelled); len(cancelled) > 0 {
		fmt.Fprintf(&b, "; cancelled %v", cancelled)
	}
	if e.TraceID != 0 {
		fmt.Fprintf(&b, "; trace %016x", e.TraceID)
	}
	return b.String()
}

// Unwrap exposes the first hard failure (if any) so errors.Is/As see
// through the partial wrapper — e.g. context.DeadlineExceeded when a
// per-op deadline expired, or a fault-injected error in tests.
func (e *PartialError) Unwrap() error {
	for _, o := range e.Outcomes {
		if o.State == OutcomeFailed && o.Err != nil {
			return o.Err
		}
	}
	for _, o := range e.Outcomes {
		if o.State == OutcomeShed && o.Err != nil {
			return o.Err
		}
	}
	for _, o := range e.Outcomes {
		if o.State == OutcomeCancelled && o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// Nodes returns the I/O nodes in the given state, sorted.
func (e *PartialError) Nodes(state OutcomeState) []int {
	var out []int
	for _, o := range e.Outcomes {
		if o.State == state {
			out = append(out, o.IONode)
		}
	}
	return out
}

// Outcome returns the outcome of one I/O node (nil if the node was
// not involved).
func (e *PartialError) Outcome(ioNode int) *NodeOutcome {
	for i := range e.Outcomes {
		if e.Outcomes[i].IONode == ioNode {
			return &e.Outcomes[i]
		}
	}
	return nil
}

// outcomeSet accumulates per-I/O-node outcomes while an operation is
// in flight. The event kernel is single-threaded, so no locking.
//
// With replication a failed node no longer dooms the operation by
// itself: each subfile's placement group registers a quorum group
// (need = how many replica acknowledgements the subfile requires), and
// the operation fails only when some group misses its quorum. Node
// failures a group absorbed still surface — as the Degraded report of
// the operation — so callers can tell "failed replica" apart from
// "failed subfile group".
type outcomeSet struct {
	op     string
	nodes  map[int]*NodeOutcome
	groups map[string]*groupOutcome
}

// groupOutcome is one subfile's quorum ledger: how many replica
// placements must succeed and how many have.
type groupOutcome struct {
	need int
	ok   int
}

// groupKey names a subfile's quorum group within an operation.
func groupKey(sub int) string { return fmt.Sprintf("sub/%d", sub) }

func newOutcomeSet(op string) *outcomeSet {
	return &outcomeSet{op: op, nodes: make(map[int]*NodeOutcome)}
}

// group registers a quorum group (idempotent; the first registration's
// need wins).
func (s *outcomeSet) group(key string, need int) {
	if s.groups == nil {
		s.groups = make(map[string]*groupOutcome)
	}
	if s.groups[key] == nil {
		s.groups[key] = &groupOutcome{need: need}
	}
}

// groupOK credits one replica acknowledgement to a group.
func (s *outcomeSet) groupOK(key string) {
	if g := s.groups[key]; g != nil {
		g.ok++
	}
}

// get returns the node's outcome, creating an OK entry on first use.
func (s *outcomeSet) get(ioNode int) *NodeOutcome {
	o := s.nodes[ioNode]
	if o == nil {
		o = &NodeOutcome{IONode: ioNode}
		s.nodes[ioNode] = o
	}
	return o
}

// ok records bytes moved for a node that completed a storage op.
func (s *outcomeSet) ok(ioNode int, bytes int64) {
	o := s.get(ioNode)
	o.Bytes += bytes
}

// fail marks a node failed with its first error. Failed dominates
// shed and cancelled: a node that failed hard stays failed.
func (s *outcomeSet) fail(ioNode int, err error) {
	o := s.get(ioNode)
	if o.State != OutcomeFailed {
		o.State = OutcomeFailed
		o.Err = err
	}
}

// shed marks a node shed by admission control, unless it already
// failed hard — an overload answer beside a real failure is noise.
func (s *outcomeSet) shed(ioNode int, err error) {
	o := s.get(ioNode)
	if o.State != OutcomeFailed {
		o.State = OutcomeShed
		o.Err = err
	}
}

// cancel marks a node cancelled unless it already failed.
func (s *outcomeSet) cancel(ioNode int, err error) {
	o := s.get(ioNode)
	if o.State == OutcomeOK {
		o.State = OutcomeCancelled
		o.Err = err
	}
}

// partial snapshots the node outcomes into a PartialError.
func (s *outcomeSet) partial() *PartialError {
	e := &PartialError{Op: s.op}
	for _, o := range s.nodes {
		e.Outcomes = append(e.Outcomes, *o)
	}
	sort.Slice(e.Outcomes, func(i, j int) bool { return e.Outcomes[i].IONode < e.Outcomes[j].IONode })
	return e
}

// finalize settles the operation once every delivery has retired.
//
// Without quorum groups (the pre-replication accounting) any non-OK
// node fails the operation. With groups, the operation fails only if
// some group missed its quorum; node failures the quorum absorbed are
// returned as the degraded report instead — the operation succeeded,
// but some replica placements are stale and want a Repair.
func (s *outcomeSet) finalize() (err error, degraded *PartialError) {
	clean := true
	for _, o := range s.nodes {
		if o.State != OutcomeOK {
			clean = false
			break
		}
	}
	if len(s.groups) > 0 {
		for _, g := range s.groups {
			if g.ok < g.need {
				return s.partial(), nil
			}
		}
		if clean {
			return nil, nil
		}
		return nil, s.partial()
	}
	if clean {
		return nil, nil
	}
	return s.partial(), nil
}

package clusterfile

import (
	"context"
	"errors"
	"fmt"
	"time"

	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/qos"
	"parafile/internal/redist"
	"parafile/internal/sim"
)

// ops.go implements the §8.1 write protocol and its reverse-symmetric
// read. The algorithms and the data movement are executed for real on
// the in-memory subfiles; durations for network, disk and era CPU
// copying come from the cost models, composed on the cluster's
// discrete-event kernel.
//
// Every operation runs under an operation context derived from the
// caller's (StartWriteCtx/StartReadCtx) plus the cluster's OpTimeout.
// The context reaches every SubfileHandle call, so a remote transport
// bounds its RPCs by it; cancellation mid-flight turns the remaining
// per-node deliveries into OutcomeCancelled entries of the resulting
// PartialError instead of performing them.

// extremityMsgBytes is the wire size of the (lowS, highS) request of
// §8.1 line 5.
const extremityMsgBytes = 16

// ackMsgBytes is the wire size of a write acknowledgement.
const ackMsgBytes = 8

// ctxOutcome classifies an error against the operation context:
// context errors are cancellations, everything else a hard failure.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WriteStats is the per-operation breakdown the evaluation reports.
type WriteStats struct {
	// TMap is the real time to map the access interval extremities
	// onto the subfiles (the paper's t_m, lines 3-4).
	TMap time.Duration
	// TGather is the real time spent gathering non-contiguous view
	// data into message buffers (the paper's t_g, line 9).
	TGather time.Duration
	// TNet is the virtual time between sending the first write
	// request and receiving the last acknowledgment (the paper's
	// t_net).
	TNet int64
	// GatherModelNs is the era-calibrated model cost of the gathers,
	// the amount injected into virtual time.
	GatherModelNs int64
	// ScatterModelNs is the total modeled scatter+write time across
	// the I/O nodes this operation touched (the paper's t_sc, per
	// message receive).
	ScatterModelNs int64
	// RealScatter is the real wall time of the scatters executed on
	// the in-memory subfiles.
	RealScatter time.Duration
	// Messages and BytesSent count the data traffic (requests and
	// data, not acks).
	Messages  int
	BytesSent int64
	// ContiguousSends counts subfiles hit through the zero-copy path
	// (line 7).
	ContiguousSends int
	// PerIONodeScatterNs breaks ScatterModelNs down by I/O node.
	PerIONodeScatterNs map[int]int64
}

// WriteOp is an in-flight write; its Stats are final once the
// cluster's kernel has drained. On partial failure Err holds a
// *PartialError with the per-I/O-node outcomes.
type WriteOp struct {
	Stats WriteStats
	Err   error
	// Degraded, when non-nil after completion, lists replica placements
	// that failed while every subfile still met its write quorum: the
	// operation succeeded, but the named nodes hold stale replicas
	// until the file is repaired.
	Degraded *PartialError

	pending  int
	started  int64
	view     *View
	ctx      context.Context
	cancel   context.CancelFunc
	outcomes *outcomeSet
	failFast bool
	span     *obs.Span // distributed-trace root (nil when untraced)
}

// sharedBuf refcounts one pooled gather buffer fanned out to R replica
// deliveries: the last delivery returns it to the pool. The event
// kernel is single-threaded, so a plain counter suffices.
type sharedBuf struct {
	buf  []byte
	refs int
}

func (b *sharedBuf) release(c *Cluster) {
	if b == nil {
		return
	}
	if b.refs--; b.refs == 0 {
		c.putMsgBuf(b.buf)
	}
}

// Done reports whether all acknowledgments have arrived.
func (op *WriteOp) Done() bool { return op.pending == 0 }

// Cancel aborts the operation: deliveries that have not yet run
// report OutcomeCancelled. Safe to call at any time.
func (op *WriteOp) Cancel() { op.cancel() }

// completeOne retires one per-replica delivery; the last one seals the
// stats, derives the PartialError (or the degraded report) and
// releases the op context.
func (op *WriteOp) completeOne(c *Cluster) {
	op.pending--
	if op.pending == 0 {
		op.Stats.TNet = c.K.Now() - op.started
		err, degraded := op.outcomes.finalize()
		if err != nil && op.Err == nil {
			op.Err = err
		}
		if op.Err == nil && degraded != nil {
			op.Degraded = degraded
			c.met.degradedOps.Inc()
		}
		op.cancel()
		stampTrace(op.Err, op.span)
		c.finishOp(op.span, op.Err)
	}
}

// nodeFailed records a delivery error for one I/O node, cancelling
// siblings when the cluster is configured fail-fast. Overload answers
// (admission control shed the request through the client's whole
// retry budget) are a class of their own: nothing executed, nothing
// torn, and the node is healthy — so they never trip fail-fast and
// surface as OutcomeShed rather than OutcomeFailed.
func (op *WriteOp) nodeFailed(c *Cluster, ioNode int, err error) {
	switch {
	case isCtxErr(err):
		op.outcomes.cancel(ioNode, err)
	case errors.Is(err, qos.ErrOverloaded):
		op.outcomes.shed(ioNode, err)
	default:
		op.outcomes.fail(ioNode, err)
		if op.failFast {
			op.cancel()
		}
	}
	op.completeOne(c)
}

// copyModelNs returns the era CPU cost of moving the given bytes in
// the given number of non-contiguous pieces (gathers and scatters).
func (c *Cluster) copyModelNs(bytes, segments int64) int64 {
	if segments < 1 {
		segments = 1
	}
	return (segments-1)*c.cfg.CopySegmentOverheadNs +
		sim.TransferTime(bytes, c.cfg.CopyBandwidthBytesPerSec)
}

// StartWrite begins the §8.1 write of view bytes [lowV, highV] from
// buf at the current virtual time. Call the cluster kernel's Run (or
// RunAll) to drive it to completion.
func (v *View) StartWrite(mode WriteMode, lowV, highV int64, buf []byte) (*WriteOp, error) {
	return v.StartWriteCtx(context.Background(), mode, lowV, highV, buf)
}

// StartWriteCtx is StartWrite bounded by a context: cancelling ctx (or
// exceeding the cluster's OpTimeout) turns deliveries that have not
// yet run into cancelled outcomes of the write's PartialError.
func (v *View) StartWriteCtx(ctx context.Context, mode WriteMode, lowV, highV int64, buf []byte) (*WriteOp, error) {
	if highV < lowV {
		return nil, fmt.Errorf("clusterfile: inverted write interval [%d,%d]", lowV, highV)
	}
	if int64(len(buf)) != highV-lowV+1 {
		return nil, fmt.Errorf("clusterfile: buffer holds %d bytes for interval of %d",
			len(buf), highV-lowV+1)
	}
	c := v.file.cluster
	octx, cancel := c.opCtx(ctx)
	octx, osp := c.startOp(octx, "write")
	op := &WriteOp{
		view: v, started: c.K.Now(),
		ctx: octx, cancel: cancel,
		outcomes: newOutcomeSet("write"),
		failFast: c.cfg.FailFast,
		span:     osp,
	}
	op.Stats.PerIONodeScatterNs = make(map[int]int64)
	c.met.writeOps.Inc()
	span := c.span.StartChild("clusterfile.write")
	defer span.End()

	type sendPlan struct {
		sub         *subView
		lowS, highS int64
		data        []byte
		extents     int64
		contiguous  bool
		pooled      bool  // data came from the message-buffer pool
		gatherNs    int64 // modeled gather cost (0 for the zero-copy path)
	}
	var plans []sendPlan

	// Lines 1-4: for every subfile the view intersects, map the
	// extremities of the access interval onto the subfile.
	gatherSpan := span.StartChild("map+gather")
	for i := range v.subs {
		sub := &v.subs[i]
		if sub.projV.BytesIn(lowV, highV) == 0 {
			continue
		}
		if err := octx.Err(); err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		tm := time.Now()
		firstV, lastV := windowExtremes(sub.projV, lowV, highV)
		lowS, err := mapThrough(v, sub, firstV)
		if err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		highS, err := mapThrough(v, sub, lastV)
		if err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		op.Stats.TMap += time.Since(tm)

		p := sendPlan{sub: sub, lowS: lowS, highS: highS}
		p.extents = sub.projS.SegmentsIn(lowS, highS)
		// Line 6: when the view projection is contiguous over the
		// whole interval, the user buffer goes out as-is.
		if sub.projV.IsContiguous(lowV, highV) {
			p.contiguous = true
			p.data = buf
			op.Stats.ContiguousSends++
		} else {
			// Line 9: gather the non-contiguous regions into buf2.
			n := sub.projV.BytesIn(lowV, highV)
			segs := sub.projV.SegmentsIn(lowV, highV)
			buf2 := c.getMsgBuf(n)
			p.pooled = true
			tg := time.Now()
			if err := gatherWindow(buf2, buf, sub.projV, lowV, highV); err != nil {
				return nil, c.abortStart(cancel, osp, err)
			}
			real := time.Since(tg)
			op.Stats.TGather += real
			c.met.gatherBytes.Add(n)
			c.met.gatherNs.Observe(real.Nanoseconds())
			p.gatherNs = c.copyModelNs(n, segs)
			op.Stats.GatherModelNs += p.gatherNs
			p.data = buf2
		}
		plans = append(plans, p)
	}
	gatherSpan.End()
	if len(plans) == 0 {
		cancel()
		c.finishOp(osp, nil)
		return op, nil
	}

	// The compute node executes the per-subfile loop sequentially; its
	// local clock advances with the modeled gather costs while the NIC
	// serializes the sends. With replication every subfile's messages
	// fan out to its whole placement group; the gather is paid once and
	// a pooled buffer is shared across the fan-out.
	R := v.file.Replication
	sendSpan := span.StartChild("send")
	cnTime := c.K.Now()
	for i := range plans {
		p := plans[i]
		op.outcomes.group(groupKey(p.sub.subfile), c.quorum)
		// Line 5: send the extremities to every replica's I/O server.
		for r := 0; r < R; r++ {
			netDst := c.ioNet(v.file.Placement[r][p.sub.subfile])
			if err := c.Net.SendAt(cnTime, v.node, netDst, extremityMsgBytes, nil); err != nil {
				return nil, c.abortStart(cancel, osp, err)
			}
			op.Stats.Messages++
			op.Stats.BytesSent += extremityMsgBytes
			c.met.recordNet(extremityMsgBytes)
		}
		cnTime += p.gatherNs
		// Lines 7/10: send the data to each replica server.
		data := p.data
		sub := p.sub
		var sb *sharedBuf
		if p.pooled {
			sb = &sharedBuf{buf: data, refs: R}
		}
		lowS, highS, extents, contiguous := p.lowS, p.highS, p.extents, p.contiguous
		for r := 0; r < R; r++ {
			replica := r
			deliver := func() {
				c.serverWrite(op, v, sub, mode, replica, lowS, highS, extents, contiguous, sb, data, lowV, highV)
			}
			if err := c.Net.SendAt(cnTime, v.node, c.ioNet(v.file.Placement[r][sub.subfile]), int64(len(data)), deliver); err != nil {
				return nil, c.abortStart(cancel, osp, err)
			}
			op.pending++
			op.Stats.Messages++
			op.Stats.BytesSent += int64(len(data))
			c.met.recordNet(int64(len(data)))
		}
	}
	sendSpan.End()
	return op, nil
}

// serverWrite is the I/O server side of §8.1 for one replica: receive
// the data and either write it contiguously or scatter it into the
// replica's subfile store, then acknowledge. A cancelled operation
// context turns the delivery into a cancelled outcome before touching
// storage; a hard storage error marks the replica's node failed and
// lets the subfile's quorum group decide the operation's fate.
func (c *Cluster) serverWrite(op *WriteOp, v *View, sub *subView, mode WriteMode,
	replica int, lowS, highS, extents int64, contiguous bool, sb *sharedBuf, data []byte, lowV, highV int64) {

	// The store copies on WriteAt, so the pooled message buffer shared
	// across the replica fan-out is free for reuse once the last
	// delivery's scatter returns. The contiguous path carries the
	// caller's buffer (sb == nil).
	defer sb.release(c)
	f := v.file
	ioNode := f.Placement[replica][sub.subfile]
	if err := op.ctx.Err(); err != nil {
		op.outcomes.cancel(ioNode, err)
		op.completeOne(c)
		return
	}
	if err := f.growReplica(op.ctx, replica, sub.subfile, highS+1); err != nil {
		op.nodeFailed(c, ioNode, err)
		return
	}
	store := f.handle(replica, sub.subfile)
	ts := time.Now()
	if contiguous && sub.projS.IsContiguous(lowS, highS) {
		// Line 4 (server): contiguous on both sides — plain write.
		if err := store.WriteAt(op.ctx, data, lowS); err != nil {
			op.nodeFailed(c, ioNode, err)
			return
		}
	} else {
		// Line 6 (server): scatter buf into the subfile.
		if err := store.Scatter(op.ctx, sub.projS, lowS, highS, data); err != nil {
			op.nodeFailed(c, ioNode, err)
			return
		}
	}
	real := time.Since(ts)
	op.Stats.RealScatter += real
	op.outcomes.ok(ioNode, int64(len(data)))
	op.outcomes.groupOK(groupKey(sub.subfile))
	c.met.scatterBytes.Add(int64(len(data)))
	c.met.scatterNs.Observe(real.Nanoseconds())
	c.met.ioBytes(ioNode).Add(int64(len(data)))
	c.tracer.Recordf(c.K.Now(), fmt.Sprintf("ion%d", ioNode),
		"scatter %d B into subfile %d [%d,%d] (%s)", len(data), sub.subfile, lowS, highS, mode)

	// The storage model charges the scatter as the buffer-cache write
	// (the paper's implementation copies once even in the contiguous
	// case, which is why its numbers converge for large writes). The
	// processing occupies the I/O node's receive path: the era server
	// was single-threaded, so the next incoming message waits for the
	// previous write to finish.
	disk := c.Disks[ioNode]
	bytes := int64(len(data))
	cost := disk.CacheCost(bytes, extents)
	if mode == ToDisk {
		cost += disk.DiskCost(bytes, extents)
	}
	disk.Account(bytes, mode == ToDisk)
	op.Stats.ScatterModelNs += cost
	op.Stats.PerIONodeScatterNs[ioNode] += cost
	err := c.Net.ReceiverBusy(c.ioNet(ioNode), cost, func() {
		// Acknowledge back to the compute node.
		c.Net.Send(c.ioNet(ioNode), v.node, ackMsgBytes, func() {
			op.completeOne(c)
		})
	})
	if err != nil {
		op.nodeFailed(c, ioNode, err)
	}
}

// ReadStats mirrors WriteStats for the reverse-symmetric read path.
type ReadStats struct {
	TMap       time.Duration
	TScatter   time.Duration // real: scatter into the user buffer
	TNet       int64
	Messages   int
	BytesMoved int64
}

// ReadOp is an in-flight read. On partial failure Err holds a
// *PartialError with the per-I/O-node outcomes.
type ReadOp struct {
	Stats ReadStats
	Err   error
	// Degraded, when non-nil after completion, lists replica placements
	// that failed before a sibling replica served the read: the data is
	// complete and correct, but the named nodes were unreachable or
	// unreadable when asked.
	Degraded *PartialError

	pending  int
	started  int64
	ctx      context.Context
	cancel   context.CancelFunc
	outcomes *outcomeSet
	failFast bool
	span     *obs.Span // distributed-trace root (nil when untraced)
}

// Done reports whether all data has arrived.
func (op *ReadOp) Done() bool { return op.pending == 0 }

// Cancel aborts the operation: server work that has not yet run
// reports OutcomeCancelled. Safe to call at any time.
func (op *ReadOp) Cancel() { op.cancel() }

func (op *ReadOp) completeOne(c *Cluster) {
	op.pending--
	if op.pending == 0 {
		op.Stats.TNet = c.K.Now() - op.started
		err, degraded := op.outcomes.finalize()
		if err != nil && op.Err == nil {
			op.Err = err
		}
		if op.Err == nil && degraded != nil {
			op.Degraded = degraded
			c.met.degradedOps.Inc()
		}
		op.cancel()
		stampTrace(op.Err, op.span)
		c.finishOp(op.span, op.Err)
	}
}

func (op *ReadOp) nodeFailed(c *Cluster, ioNode int, err error) {
	switch {
	case isCtxErr(err):
		op.outcomes.cancel(ioNode, err)
	case errors.Is(err, qos.ErrOverloaded):
		op.outcomes.shed(ioNode, err)
	default:
		op.outcomes.fail(ioNode, err)
		if op.failFast {
			op.cancel()
		}
	}
	op.completeOne(c)
}

// StartRead begins the reverse-symmetric read of view bytes
// [lowV, highV] into buf.
func (v *View) StartRead(lowV, highV int64, buf []byte) (*ReadOp, error) {
	return v.StartReadCtx(context.Background(), lowV, highV, buf)
}

// StartReadCtx is StartRead bounded by a context.
func (v *View) StartReadCtx(ctx context.Context, lowV, highV int64, buf []byte) (*ReadOp, error) {
	if highV < lowV {
		return nil, fmt.Errorf("clusterfile: inverted read interval [%d,%d]", lowV, highV)
	}
	if int64(len(buf)) != highV-lowV+1 {
		return nil, fmt.Errorf("clusterfile: buffer holds %d bytes for interval of %d",
			len(buf), highV-lowV+1)
	}
	c := v.file.cluster
	octx, cancel := c.opCtx(ctx)
	octx, osp := c.startOp(octx, "read")
	op := &ReadOp{
		started: c.K.Now(),
		ctx:     octx, cancel: cancel,
		outcomes: newOutcomeSet("read"),
		failFast: c.cfg.FailFast,
		span:     osp,
	}
	c.met.readOps.Inc()
	span := c.span.StartChild("clusterfile.read")
	defer span.End()
	for i := range v.subs {
		sub := &v.subs[i]
		if sub.projV.BytesIn(lowV, highV) == 0 {
			continue
		}
		if err := octx.Err(); err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		tm := time.Now()
		firstV, lastV := windowExtremes(sub.projV, lowV, highV)
		lowS, err := mapThrough(v, sub, firstV)
		if err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		highS, err := mapThrough(v, sub, lastV)
		if err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		op.Stats.TMap += time.Since(tm)

		// A read needs exactly one replica to answer; the primary is
		// asked first and serverRead fails over down the placement group.
		op.outcomes.group(groupKey(sub.subfile), 1)
		netDst := c.ioNet(v.file.Placement[0][sub.subfile])
		op.pending++
		lowS2, highS2 := lowS, highS
		// Request to the I/O server.
		err = c.Net.Send(v.node, netDst, extremityMsgBytes, func() {
			c.serverRead(op, v, sub, 0, lowS2, highS2, buf, lowV, highV)
		})
		if err != nil {
			return nil, c.abortStart(cancel, osp, err)
		}
		op.Stats.Messages++
		c.met.recordNet(extremityMsgBytes)
	}
	if op.pending == 0 {
		cancel()
		c.finishOp(osp, nil)
	}
	return op, nil
}

// serverRead gathers the requested subfile bytes from one replica and
// ships them back; the compute node scatters them into the user buffer
// on arrival. A hard storage error against the replica fails over: the
// compute node re-sends the extremity request to the next replica in
// the placement group, so a dead node costs a failover round-trip
// instead of the read. Context cancellation never fails over.
func (c *Cluster) serverRead(op *ReadOp, v *View, sub *subView, replica int,
	lowS, highS int64, buf []byte, lowV, highV int64) {

	f := v.file
	ioNode := f.Placement[replica][sub.subfile]
	// fail retires this replica's attempt: mark the node, and either
	// re-issue the request against the next replica or — with the
	// placement group exhausted — fail the delivery for real.
	fail := func(err error) {
		if !isCtxErr(err) && replica+1 < f.Replication {
			// A saturated replica is shed, not failed — either way the
			// read fails over to the next replica in the group.
			if errors.Is(err, qos.ErrOverloaded) {
				op.outcomes.shed(ioNode, err)
			} else {
				op.outcomes.fail(ioNode, err)
			}
			c.met.failovers.Inc()
			next := f.Placement[replica+1][sub.subfile]
			op.Stats.Messages++
			c.met.recordNet(extremityMsgBytes)
			if e := c.Net.Send(v.node, c.ioNet(next), extremityMsgBytes, func() {
				c.serverRead(op, v, sub, replica+1, lowS, highS, buf, lowV, highV)
			}); e == nil {
				return
			}
		}
		op.nodeFailed(c, ioNode, err)
	}

	if err := op.ctx.Err(); err != nil {
		op.outcomes.cancel(ioNode, err)
		op.completeOne(c)
		return
	}
	if err := f.growReplica(op.ctx, replica, sub.subfile, highS+1); err != nil {
		fail(err)
		return
	}
	n := sub.projS.BytesIn(lowS, highS)
	segs := sub.projS.SegmentsIn(lowS, highS)
	data := c.getMsgBuf(n)
	tg := time.Now()
	if err := f.handle(replica, sub.subfile).Gather(op.ctx, sub.projS, lowS, highS, data); err != nil {
		c.putMsgBuf(data)
		fail(err)
		return
	}
	c.met.gatherBytes.Add(n)
	c.met.gatherNs.Observe(time.Since(tg).Nanoseconds())
	c.met.ioBytes(ioNode).Add(n)
	// The server's gather is CPU work before the send.
	c.K.After(c.copyModelNs(n, segs), func() {
		c.met.recordNet(n)
		err := c.Net.Send(c.ioNet(ioNode), v.node, n, func() {
			// The scatter copies into the user buffer, after which the
			// message buffer is free for reuse.
			defer c.putMsgBuf(data)
			if err := op.ctx.Err(); err != nil {
				op.outcomes.cancel(ioNode, err)
				op.completeOne(c)
				return
			}
			ts := time.Now()
			if err := scatterWindow(buf, data, sub.projV, lowV, highV); err != nil {
				// The failure is on the compute-node side; another
				// replica's bytes would fail identically.
				op.nodeFailed(c, ioNode, err)
				return
			}
			real := time.Since(ts)
			op.Stats.TScatter += real
			op.outcomes.ok(ioNode, n)
			op.outcomes.groupOK(groupKey(sub.subfile))
			c.met.scatterBytes.Add(n)
			c.met.scatterNs.Observe(real.Nanoseconds())
			op.Stats.BytesMoved += n
			op.completeOne(c)
		})
		if err != nil {
			c.putMsgBuf(data)
			fail(err)
		}
	})
	op.Stats.Messages++
}

// RunAll drains the cluster's event kernel, completing every started
// operation, and returns the final virtual time.
func (c *Cluster) RunAll() int64 { return c.K.Run() }

// windowExtremes returns the first and last selected element offsets
// of the projection inside [lo, hi]. Callers ensure the window is
// non-empty.
func windowExtremes(p *redist.Projection, lo, hi int64) (first, last int64) {
	first, last = -1, -1
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if first < 0 {
			first = seg.L
		}
		last = seg.R
		return true
	})
	return first, last
}

// mapThrough maps a view offset onto the subfile through the file
// space: MAP_S(MAP⁻¹_V(y)) (§6.2). The offset is guaranteed to belong
// to the intersection, so the direct map succeeds.
func mapThrough(v *View, sub *subView, y int64) (int64, error) {
	x, err := v.mapper.MapInv(y)
	if err != nil {
		return 0, err
	}
	return sub.mapper.Map(x)
}

// gatherWindow packs the projection's bytes within [lowV, highV] from
// a window-relative buffer (buf[0] is view offset lowV).
func gatherWindow(dst, buf []byte, p *redist.Projection, lowV, highV int64) error {
	var pos int64
	var err error
	p.WalkRange(lowV, highV, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(dst)) {
			err = fmt.Errorf("clusterfile: gather overflow")
			return false
		}
		copy(dst[pos:pos+seg.Len()], buf[seg.L-lowV:seg.R+1-lowV])
		pos += seg.Len()
		return true
	})
	return err
}

// scatterWindow unpacks contiguous data into the projection's bytes of
// a window-relative buffer.
func scatterWindow(buf, data []byte, p *redist.Projection, lowV, highV int64) error {
	var pos int64
	var err error
	p.WalkRange(lowV, highV, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(data)) {
			err = fmt.Errorf("clusterfile: scatter underflow")
			return false
		}
		copy(buf[seg.L-lowV:seg.R+1-lowV], data[pos:pos+seg.Len()])
		pos += seg.Len()
		return true
	})
	return err
}

package clusterfile

import (
	"context"
	"fmt"
	"hash/crc32"

	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// transport.go is the seam between the protocol engine and the place
// subfile bytes physically live. The cluster's write/read/redistribute
// paths perform every byte-moving storage operation through a
// SubfileHandle obtained from the configured Transport:
//
//   - the in-process transport (the default, NewLocalTransport) backs
//     each handle with a local Storage from the configured factory —
//     semantically identical to the pre-seam code;
//   - the TCP transport (package rpc) backs each handle with the
//     parafiled daemon of the subfile's I/O node, so the same compiled
//     projections drive scatter/gather over real sockets;
//   - the fault transport (package fault) wraps either of the above
//     with a deterministic per-node fault plan for robustness tests.
//
// Every byte-moving method takes a context: the operation-level
// context of the collective op it serves, carrying the per-op deadline
// and the sibling-cancellation signal. A remote implementation bounds
// its RPCs by it; the local one only has to observe cancellation.
//
// The virtual-time cost models (netsim, disksim) are independent of
// the transport: they keep supplying the reported timings either way,
// while the transport decides where the bytes actually land.

// SubfileHandle is one subfile's byte store as seen by the protocol:
// the Storage operations plus the projection-driven scatter/gather the
// §8.1 servers execute. Scatter and Gather operate on the projection's
// selected regions within [lo, hi] of the subfile's linear space, so a
// remote implementation ships one request per operation instead of one
// per segment.
type SubfileHandle interface {
	// EnsureLen grows the subfile to at least n bytes (zero filled).
	EnsureLen(ctx context.Context, n int64) error
	// Len returns the current subfile size.
	Len(ctx context.Context) (int64, error)
	// WriteAt stores p contiguously at off.
	WriteAt(ctx context.Context, p []byte, off int64) error
	// ReadAt fills p contiguously from off.
	ReadAt(ctx context.Context, p []byte, off int64) error
	// Scatter unpacks contiguous data into the regions the projection
	// selects within [lo, hi] — the §8 SCATTER.
	Scatter(ctx context.Context, p *redist.Projection, lo, hi int64, data []byte) error
	// Gather packs the regions the projection selects within [lo, hi]
	// into dst — the §8 GATHER.
	Gather(ctx context.Context, p *redist.Projection, lo, hi int64, dst []byte) error
	// Checksum returns the CRC32C (Castagnoli) of bytes [off, off+n) of
	// the subfile's linear space; bytes beyond the current length read
	// as zeroes, matching the sparse-file semantics of the grow-first
	// read path. Scrub compares replicas with it without shipping data.
	Checksum(ctx context.Context, off, n int64) (uint32, error)
	// Close releases the handle (syncing durable stores).
	Close() error
}

// Transport opens the subfile stores of a file on its I/O nodes.
type Transport interface {
	// Open prepares one handle per subfile. assign maps each subfile
	// index to its I/O node.
	Open(ctx context.Context, name string, phys *part.File, assign []int) ([]SubfileHandle, error)
	// Close releases transport-level resources (connection pools).
	Close() error
}

// EpochTransport is the optional placement-epoch extension of a
// Transport: OpenEpoch is Open with every returned handle's storage
// operations stamped with the placement epoch, so daemons that track
// epochs reject stale ops with ErrStalePlacement (and writes while
// fenced). The rpc transport implements it; transports that do not
// (the local one) are opened unstamped — epoch enforcement is a
// property of the remote protocol, not of local stores.
type EpochTransport interface {
	OpenEpoch(ctx context.Context, name string, phys *part.File, assign []int, epoch uint64) ([]SubfileHandle, error)
}

// NewLocalTransport is the in-process transport: subfiles are local
// Storage instances from the factory (nil selects in-memory stores).
func NewLocalTransport(factory StorageFactory) Transport {
	if factory == nil {
		factory = MemStorageFactory
	}
	return &localTransport{factory: factory}
}

type localTransport struct {
	factory StorageFactory
}

func (t *localTransport) Open(ctx context.Context, name string, phys *part.File, assign []int) ([]SubfileHandle, error) {
	handles := make([]SubfileHandle, len(assign))
	for i := range assign {
		if err := ctx.Err(); err != nil {
			for _, h := range handles[:i] {
				h.Close()
			}
			return nil, err
		}
		st, err := t.factory(name, i)
		if err != nil {
			for _, h := range handles[:i] {
				h.Close()
			}
			return nil, err
		}
		handles[i] = &localHandle{st: st}
	}
	return handles, nil
}

func (t *localTransport) Close() error { return nil }

// localHandle adapts a Storage to the SubfileHandle interface. Local
// stores cannot block, so observing ctx before each operation is the
// whole cancellation story.
type localHandle struct {
	st Storage
}

func (h *localHandle) EnsureLen(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.st.EnsureLen(n)
}

func (h *localHandle) Len(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return h.st.Len(), nil
}

func (h *localHandle) WriteAt(ctx context.Context, p []byte, off int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.st.WriteAt(p, off)
}

func (h *localHandle) ReadAt(ctx context.Context, p []byte, off int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.st.ReadAt(p, off)
}

func (h *localHandle) Close() error { return h.st.Close() }

func (h *localHandle) Scatter(ctx context.Context, p *redist.Projection, lo, hi int64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return ScatterRange(h.st, data, p, lo, hi)
}

func (h *localHandle) Gather(ctx context.Context, p *redist.Projection, lo, hi int64, dst []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return GatherRange(dst, h.st, p, lo, hi)
}

func (h *localHandle) Checksum(ctx context.Context, off, n int64) (uint32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return ChecksumRange(h.st, off, n)
}

// ScatterRange unpacks contiguous data into the storage regions the
// projection selects within [lo, hi] — the §8 SCATTER against an
// arbitrary subfile store. It is shared by the local transport and the
// rpc server, which keeps both sides of the wire byte-identical.
func ScatterRange(store Storage, data []byte, p *redist.Projection, lo, hi int64) error {
	var pos int64
	var err error
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(data)) {
			err = fmt.Errorf("clusterfile: scatter underflow")
			return false
		}
		if err = store.WriteAt(data[pos:pos+seg.Len()], seg.L); err != nil {
			return false
		}
		pos += seg.Len()
		return true
	})
	return err
}

// castagnoli is the CRC32C polynomial table shared by every checksum
// in the replication layer (subfile segments and wire frames alike).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumChunk bounds the scratch buffer ChecksumRange reads through.
const checksumChunk = 64 << 10

// ChecksumRange computes the CRC32C of bytes [off, off+n) of a subfile
// store, treating bytes beyond the store's current length as zeroes
// (the same sparse semantics the grow-first read path exposes). It is
// shared by the local transport and the rpc server, which keeps scrub
// verdicts identical across transports.
func ChecksumRange(store Storage, off, n int64) (uint32, error) {
	if off < 0 || n < 0 {
		return 0, fmt.Errorf("clusterfile: checksum range [%d,+%d) invalid", off, n)
	}
	var sum uint32
	end := off + n
	avail := store.Len()
	buf := make([]byte, checksumChunk)
	pos := off
	for pos < end && pos < avail {
		m := end - pos
		if a := avail - pos; a < m {
			m = a
		}
		if m > checksumChunk {
			m = checksumChunk
		}
		if err := store.ReadAt(buf[:m], pos); err != nil {
			return 0, err
		}
		sum = crc32.Update(sum, castagnoli, buf[:m])
		pos += m
	}
	if pos < end {
		// Zero-fill the tail beyond the store's length.
		for i := range buf {
			buf[i] = 0
		}
		for pos < end {
			m := end - pos
			if m > checksumChunk {
				m = checksumChunk
			}
			sum = crc32.Update(sum, castagnoli, buf[:m])
			pos += m
		}
	}
	return sum, nil
}

// GatherRange packs the storage regions the projection selects within
// [lo, hi] into dst — the §8 GATHER from a subfile store.
func GatherRange(dst []byte, store Storage, p *redist.Projection, lo, hi int64) error {
	var pos int64
	var err error
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(dst)) {
			err = fmt.Errorf("clusterfile: gather overflow")
			return false
		}
		if err = store.ReadAt(dst[pos:pos+seg.Len()], seg.L); err != nil {
			return false
		}
		pos += seg.Len()
		return true
	})
	return err
}

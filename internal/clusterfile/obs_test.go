package clusterfile

import (
	"strings"
	"testing"

	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// obs_test.go checks the cluster's observability wiring: byte totals
// and message counts against the protocol's own WriteStats, the
// per-I/O-node skew series, buffer-pool traffic, and the wall-clock
// span tree.

// obsCluster builds an instrumented 4+4 cluster with a column-block
// file and returns it with its registry and root span.
func obsCluster(t *testing.T, n int64) (*Cluster, *File, *obs.Registry, *obs.Span) {
	t.Helper()
	reg := obs.NewRegistry()
	root := obs.StartSpan("test")
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cfg.Trace = root
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.CreateFile("m", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, f, reg, root
}

func TestWritePathMetrics(t *testing.T) {
	const n = 64
	c, f, reg, root := obsCluster(t, n)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i * 13)
	}
	rows, _ := part.RowBlocks(n, n, 4)
	logical := part.MustFile(0, rows)
	per := int64(n * n / 4)
	var wantMsgs, wantNetBytes int64
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		wantNetBytes += v.SetViewMsgBytes
		wantMsgs += int64(len(v.Subfiles())) // one PROJ_S message per overlapped subfile
		op, err := v.StartWrite(ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		wantMsgs += int64(op.Stats.Messages)
		wantNetBytes += op.Stats.BytesSent
	}

	if got := reg.Counter(MetricSetViews).Value(); got != 4 {
		t.Errorf("set views = %d, want 4", got)
	}
	if got := reg.Histogram(MetricSetViewNs, obs.LatencyBuckets()).Count(); got != 4 {
		t.Errorf("set view histogram count = %d, want 4", got)
	}
	if got := reg.Counter(MetricWriteOps).Value(); got != 4 {
		t.Errorf("write ops = %d, want 4", got)
	}
	// Row-block views over a column-block layout are fully
	// non-contiguous: every view byte goes through a gather, and every
	// payload through a scatter.
	if got := reg.Counter(MetricGatherBytes).Value(); got != n*n {
		t.Errorf("gather bytes = %d, want %d", got, n*n)
	}
	if got := reg.Counter(MetricScatterBytes).Value(); got != n*n {
		t.Errorf("scatter bytes = %d, want %d", got, n*n)
	}
	if got := reg.Counter(MetricNetMessages).Value(); int64(got) != wantMsgs {
		t.Errorf("net messages = %d, want %d", got, wantMsgs)
	}
	if got := reg.Counter(MetricNetBytes).Value(); int64(got) != wantNetBytes {
		t.Errorf("net bytes = %d, want %d", got, wantNetBytes)
	}
	// Buffer pool: every gather wanted a buffer, so the pool traffic
	// must balance exactly (the hit/miss split depends on what earlier
	// tests left in the package-global pool).
	hits := reg.Counter(MetricMsgBufHits).Value()
	misses := reg.Counter(MetricMsgBufMisses).Value()
	if hits+misses != 16 { // 4 nodes x 4 overlapped subfiles
		t.Errorf("msgbuf hits+misses = %d, want 16", hits+misses)
	}
	// Column-block subfiles each hold a quarter of every row block:
	// the skew series must be exactly balanced.
	for node := 0; node < 4; node++ {
		got := c.met.ioBytes(node).Value()
		if int64(got) != n*n/4 {
			t.Errorf("io node %d bytes = %d, want %d", node, got, n*n/4)
		}
	}
	if c.met.ioBytes(-1) != nil || c.met.ioBytes(99) != nil {
		t.Error("out-of-range io node counter not nil")
	}

	// The span tree recorded the host-side phases.
	root.End()
	txt := root.Format()
	for _, want := range []string{"clusterfile.setview", "clusterfile.write", "map+gather", "send"} {
		if !strings.Contains(txt, want) {
			t.Errorf("span tree missing %q:\n%s", want, txt)
		}
	}
}

func TestReadPathMetrics(t *testing.T) {
	const n = 64
	c, f, reg, _ := obsCluster(t, n)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i * 7)
	}
	writeMatrix(t, c, f, img, n)
	gatherBefore := reg.Counter(MetricGatherBytes).Value()
	scatterBefore := reg.Counter(MetricScatterBytes).Value()

	rows, _ := part.RowBlocks(n, n, 4)
	logical := part.MustFile(0, rows)
	per := int64(n * n / 4)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
	}
	if got := reg.Counter(MetricReadOps).Value(); got != 4 {
		t.Errorf("read ops = %d, want 4", got)
	}
	// The read gathers every byte at the I/O nodes and scatters every
	// byte into the user buffers.
	if got := reg.Counter(MetricGatherBytes).Value() - gatherBefore; got != n*n {
		t.Errorf("read gather bytes = %d, want %d", got, n*n)
	}
	if got := reg.Counter(MetricScatterBytes).Value() - scatterBefore; got != n*n {
		t.Errorf("read scatter bytes = %d, want %d", got, n*n)
	}
}

func TestRedistributeMetrics(t *testing.T) {
	const n = 64
	c, f, reg, root := obsCluster(t, n)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i * 3)
	}
	writeMatrix(t, c, f, img, n)
	gatherBefore := reg.Counter(MetricGatherBytes).Value()

	rowsPat, _ := part.RowBlocks(n, n, 4)
	_, op, err := c.StartRedistribute(f, "new", part.MustFile(0, rowsPat), nil, n*n)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err != nil {
		t.Fatal(op.Err)
	}
	if got := reg.Counter(MetricRedistOps).Value(); got != 1 {
		t.Errorf("redist ops = %d, want 1", got)
	}
	if got := reg.Counter(MetricGatherBytes).Value() - gatherBefore; int64(got) != op.Stats.Bytes {
		t.Errorf("redist gather bytes = %d, want %d", got, op.Stats.Bytes)
	}
	// The uncached compile inside StartRedistribute records into the
	// cluster registry.
	if got := reg.Histogram(redist.MetricCompileNs, obs.LatencyBuckets()).Count(); got != 1 {
		t.Errorf("compile histogram count = %d, want 1", got)
	}
	root.End()
	if !strings.Contains(root.Format(), "clusterfile.redistribute") {
		t.Errorf("span tree missing redistribute:\n%s", root.Format())
	}
}

// TestUninstrumentedClusterStillWorks is the nil-safety end-to-end
// check: the default config records nothing and everything runs.
func TestUninstrumentedClusterStillWorks(t *testing.T) {
	const n = 32
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := part.ColBlocks(n, n, 4)
	f, err := c.CreateFile("m", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, n*n)
	writeMatrix(t, c, f, img, n)
	if c.met.gatherBytes != nil || c.met.ioBytes(0) != nil {
		t.Error("uninstrumented cluster bound live metrics")
	}
}

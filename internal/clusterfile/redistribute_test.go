package clusterfile

import (
	"bytes"
	"testing"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// writeMatrix fills a file with the reference image through row-block
// views.
func writeMatrix(t *testing.T, c *Cluster, f *File, img []byte, n int64) {
	t.Helper()
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	logical := part.MustFile(0, rows)
	per := n * n / 4
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		op, err := v.StartWrite(ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
	}
}

// TestClusterRedistribute: disk-to-disk re-partitioning preserves
// every byte and reports traffic.
func TestClusterRedistribute(t *testing.T) {
	const n = 64
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := part.ColBlocks(n, n, 4)
	f, err := c.CreateFile("old", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i*11 + 7)
	}
	writeMatrix(t, c, f, img, n)

	rowsPat, _ := part.RowBlocks(n, n, 4)
	nf, op, err := c.StartRedistribute(f, "new", part.MustFile(0, rowsPat), nil, n*n)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err != nil || !op.Done() {
		t.Fatalf("redistribution failed: %v", op.Err)
	}
	if op.Stats.TNet <= 0 {
		t.Errorf("TNet = %d", op.Stats.TNet)
	}
	if op.Stats.Bytes != n*n {
		t.Errorf("moved %d bytes, want %d", op.Stats.Bytes, n*n)
	}
	if op.Stats.Messages != 16 {
		t.Errorf("%d messages, want 16 (all-to-all)", op.Stats.Messages)
	}

	// The new file's subfiles hold the row-block decomposition.
	want := redist.SplitFile(part.MustFile(0, rowsPat), img)
	for e := range want {
		if !bytes.Equal(nf.Subfile(e), want[e]) {
			t.Fatalf("new subfile %d differs after disk redistribution", e)
		}
	}

	// The redistributed file serves reads correctly.
	logical := part.MustFile(0, rowsPat)
	per := int64(n * n / 4)
	for node := 0; node < 4; node++ {
		v, err := nf.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, per)
		rop, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if rop.Err != nil {
			t.Fatal(rop.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			t.Fatalf("node %d read from redistributed file differs", node)
		}
	}
}

// TestClusterRedistributeIdentity: same layout, permuted placement —
// every transfer is node-to-node bulk copy.
func TestClusterRedistributeIdentity(t *testing.T) {
	const n = 32
	c, _ := New(DefaultConfig())
	rowsPat, _ := part.RowBlocks(n, n, 4)
	f, err := c.CreateFile("a", part.MustFile(0, rowsPat), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i)
	}
	writeMatrix(t, c, f, img, n)
	nf, op, err := c.StartRedistribute(f, "b", part.MustFile(0, rowsPat), []int{3, 2, 1, 0}, n*n)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err != nil {
		t.Fatal(op.Err)
	}
	if op.Stats.Messages != 4 {
		t.Errorf("identity relayout used %d messages, want 4", op.Stats.Messages)
	}
	want := redist.SplitFile(part.MustFile(0, rowsPat), img)
	for e := range want {
		if !bytes.Equal(nf.Subfile(e), want[e]) {
			t.Fatalf("subfile %d differs after relocation", e)
		}
	}
}

func TestClusterRedistributeValidation(t *testing.T) {
	c, _ := New(DefaultConfig())
	rowsPat, _ := part.RowBlocks(32, 32, 4)
	f, _ := c.CreateFile("v", part.MustFile(0, rowsPat), nil)
	if _, _, err := c.StartRedistribute(nil, "x", part.MustFile(0, rowsPat), nil, 8); err == nil {
		t.Error("nil file accepted")
	}
	if _, _, err := c.StartRedistribute(f, "x", part.MustFile(0, rowsPat), nil, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, _, err := c.StartRedistribute(f, "v", part.MustFile(0, rowsPat), nil, 8); err == nil {
		t.Error("duplicate name accepted")
	}
}

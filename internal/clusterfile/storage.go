package clusterfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// storage.go abstracts where a subfile's bytes live. The evaluation
// runs on in-memory subfiles (deterministic, fast); a directory-backed
// store writes each subfile to a real file, which is what the original
// Clusterfile I/O nodes did with their local disks.

// Storage is one subfile's byte store. Offsets address the subfile's
// linear space.
type Storage interface {
	// EnsureLen grows the store to at least n bytes (zero filled).
	EnsureLen(n int64) error
	// Len returns the current size.
	Len() int64
	// WriteAt stores p at off; the store must already be long enough.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from off; the store must be long enough.
	ReadAt(p []byte, off int64) error
	// Sync flushes buffered writes to durable media (a no-op for
	// memory-backed stores). Close implies a final Sync.
	Sync() error
	// Close releases resources.
	Close() error
}

// Remover is the optional capability of a Storage whose backing
// medium can be deleted outright. RemoveStorage uses it after Close
// when a store generation is garbage-collected; stores without it
// (memory-backed) have nothing durable to reclaim.
type Remover interface {
	Remove() error
}

// RemoveStorage deletes a closed store's backing medium if it has one.
func RemoveStorage(st Storage) error {
	if r, ok := st.(Remover); ok {
		return r.Remove()
	}
	return nil
}

// memStorage is the default in-memory store.
type memStorage struct {
	data []byte
}

func (m *memStorage) EnsureLen(n int64) error {
	if int64(len(m.data)) < n {
		grown := make([]byte, n)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

func (m *memStorage) Len() int64 { return int64(len(m.data)) }

func (m *memStorage) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("clusterfile: write [%d,%d) outside store of %d bytes",
			off, off+int64(len(p)), len(m.data))
	}
	copy(m.data[off:], p)
	return nil
}

func (m *memStorage) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return fmt.Errorf("clusterfile: read [%d,%d) outside store of %d bytes",
			off, off+int64(len(p)), len(m.data))
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStorage) Sync() error { return nil }

func (m *memStorage) Close() error { return nil }

// fileStorage stores a subfile in a real file on the host filesystem.
type fileStorage struct {
	f    *os.File
	size int64
}

func (s *fileStorage) EnsureLen(n int64) error {
	if s.size >= n {
		return nil
	}
	// Pick up the on-disk size before deciding to grow: when the
	// factory reopened an existing subfile the cached size may trail
	// the file, and truncating from a stale size would shrink it.
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() > s.size {
		s.size = info.Size()
	}
	if s.size >= n {
		return nil
	}
	if err := s.f.Truncate(n); err != nil {
		return err
	}
	s.size = n
	return nil
}

func (s *fileStorage) Len() int64 { return s.size }

func (s *fileStorage) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("clusterfile: write [%d,%d) outside store of %d bytes",
			off, off+int64(len(p)), s.size)
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

func (s *fileStorage) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("clusterfile: read [%d,%d) outside store of %d bytes",
			off, off+int64(len(p)), s.size)
	}
	_, err := s.f.ReadAt(p, off)
	return err
}

func (s *fileStorage) Sync() error { return s.f.Sync() }

func (s *fileStorage) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Remove deletes the subfile's backing file. Call after Close; a
// missing file (already collected) is not an error.
func (s *fileStorage) Remove() error {
	if err := os.Remove(s.f.Name()); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// StorageFactory creates the store for one subfile.
type StorageFactory func(fileName string, subfile int) (Storage, error)

// MemStorageFactory is the default: in-memory subfiles.
func MemStorageFactory(string, int) (Storage, error) { return &memStorage{}, nil }

// DirStorageFactory stores each subfile as
// dir/<fileName>.subfile<NN>, truncating any previous contents (a
// fresh file). The directory is created if needed.
func DirStorageFactory(dir string) StorageFactory {
	return dirFactory(dir, true)
}

// ReopenDirStorageFactory opens existing subfile stores in dir without
// truncation — the factory to use when reopening a file from saved
// metadata (see LoadMetadata).
func ReopenDirStorageFactory(dir string) StorageFactory {
	return dirFactory(dir, false)
}

func dirFactory(dir string, truncate bool) StorageFactory {
	return func(fileName string, subfile int) (Storage, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.subfile%02d", fileName, subfile))
		flags := os.O_RDWR | os.O_CREATE
		if truncate {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(path, flags, 0o644)
		if err != nil {
			return nil, err
		}
		st := &fileStorage{f: f}
		if !truncate {
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, err
			}
			st.size = info.Size()
		}
		return st, nil
	}
}

package clusterfile

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// partial_test.go pins down the partial-failure vocabulary: the
// Error() renderings callers grep in logs, the Unwrap chain errors.Is
// and errors.As travel, and the quorum-group accounting that separates
// "a replica failed" (operation degraded) from "a subfile's placement
// group missed quorum" (operation failed).

func TestPartialErrorString(t *testing.T) {
	cases := []struct {
		name string
		err  PartialError
		want string
	}{
		{
			name: "one failed",
			err: PartialError{Op: "write", Outcomes: []NodeOutcome{
				{IONode: 0, State: OutcomeOK, Bytes: 64},
				{IONode: 1, State: OutcomeFailed, Err: errors.New("disk on fire")},
				{IONode: 2, State: OutcomeOK, Bytes: 64},
			}},
			want: "clusterfile: partial write: 2/3 I/O nodes ok; failed [1] (node 1: disk on fire)",
		},
		{
			name: "failed and cancelled",
			err: PartialError{Op: "read", Outcomes: []NodeOutcome{
				{IONode: 0, State: OutcomeFailed, Err: errors.New("boom")},
				{IONode: 1, State: OutcomeCancelled, Err: context.Canceled},
				{IONode: 2, State: OutcomeCancelled, Err: context.Canceled},
			}},
			want: "clusterfile: partial read: 0/3 I/O nodes ok; failed [0] (node 0: boom); cancelled [1 2]",
		},
		{
			name: "cancelled only",
			err: PartialError{Op: "redistribute", Outcomes: []NodeOutcome{
				{IONode: 3, State: OutcomeCancelled, Err: context.Canceled},
			}},
			want: "clusterfile: partial redistribute: 0/1 I/O nodes ok; cancelled [3]",
		},
	}
	for _, tc := range cases {
		if got := tc.err.Error(); got != tc.want {
			t.Errorf("%s:\n got  %q\n want %q", tc.name, got, tc.want)
		}
	}
}

func TestPartialErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	pe := &PartialError{Op: "write", Outcomes: []NodeOutcome{
		{IONode: 0, State: OutcomeOK},
		{IONode: 1, State: OutcomeCancelled, Err: context.Canceled},
		{IONode: 2, State: OutcomeFailed, Err: fmt.Errorf("wrapped: %w", sentinel)},
	}}
	if !errors.Is(pe, sentinel) {
		t.Error("errors.Is does not reach the failed node's error")
	}
	// Failed dominates cancelled in the unwrap order.
	if errors.Is(pe, context.Canceled) {
		t.Error("cancelled error unwrapped ahead of the hard failure")
	}
	var got *PartialError
	if !errors.As(fmt.Errorf("op: %w", pe), &got) || got != pe {
		t.Error("errors.As does not recover the PartialError through wrapping")
	}

	cancelledOnly := &PartialError{Op: "read", Outcomes: []NodeOutcome{
		{IONode: 0, State: OutcomeCancelled, Err: context.DeadlineExceeded},
	}}
	if !errors.Is(cancelledOnly, context.DeadlineExceeded) {
		t.Error("cancel-only partial does not unwrap to the context error")
	}
	if (&PartialError{Op: "write"}).Unwrap() != nil {
		t.Error("empty partial unwraps to a non-nil error")
	}
}

func TestPartialErrorLookups(t *testing.T) {
	pe := &PartialError{Op: "write", Outcomes: []NodeOutcome{
		{IONode: 0, State: OutcomeOK, Bytes: 10},
		{IONode: 1, State: OutcomeFailed, Err: errors.New("x")},
		{IONode: 2, State: OutcomeOK, Bytes: 20},
		{IONode: 3, State: OutcomeCancelled, Err: context.Canceled},
	}}
	if got := pe.Nodes(OutcomeOK); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("OK nodes = %v, want [0 2]", got)
	}
	if o := pe.Outcome(2); o == nil || o.Bytes != 20 {
		t.Errorf("Outcome(2) = %+v", o)
	}
	if pe.Outcome(7) != nil {
		t.Error("Outcome of an uninvolved node is non-nil")
	}
}

// TestOutcomeSetQuorum exercises the replication accounting directly:
// a group that reaches quorum absorbs its replica failure into the
// degraded report; a group that misses quorum fails the operation.
func TestOutcomeSetQuorum(t *testing.T) {
	// Subfile 0 needs 1 of 2 replica acks: node 1's failure is absorbed.
	s := newOutcomeSet("write")
	s.group(groupKey(0), 1)
	s.ok(0, 64)
	s.groupOK(groupKey(0))
	s.fail(1, errors.New("replica down"))
	err, degraded := s.finalize()
	if err != nil {
		t.Fatalf("quorum met but operation failed: %v", err)
	}
	if degraded == nil {
		t.Fatal("absorbed replica failure did not surface as degraded")
	}
	if failed := degraded.Nodes(OutcomeFailed); len(failed) != 1 || failed[0] != 1 {
		t.Errorf("degraded failed nodes = %v, want [1]", failed)
	}

	// Same shape but quorum 2 of 2: now the group misses quorum.
	s = newOutcomeSet("write")
	s.group(groupKey(0), 2)
	s.ok(0, 64)
	s.groupOK(groupKey(0))
	s.fail(1, errors.New("replica down"))
	err, degraded = s.finalize()
	if err == nil {
		t.Fatal("missed quorum but operation succeeded")
	}
	if degraded != nil {
		t.Fatal("failed operation also reported degraded")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("finalize error is %T, want *PartialError", err)
	}

	// Mixed outcomes across groups: sub 0 absorbs its failure, sub 1 is
	// clean, and a cancelled node that credited no group still counts
	// against cleanliness, not against quorum.
	s = newOutcomeSet("write")
	s.group(groupKey(0), 1)
	s.group(groupKey(1), 1)
	s.ok(0, 8)
	s.groupOK(groupKey(0))
	s.ok(2, 8)
	s.groupOK(groupKey(1))
	s.fail(1, errors.New("late"))
	s.cancel(3, context.Canceled)
	err, degraded = s.finalize()
	if err != nil {
		t.Fatalf("all groups met quorum but operation failed: %v", err)
	}
	if degraded == nil {
		t.Fatal("mixed outcomes did not surface as degraded")
	}
	if got := degraded.Nodes(OutcomeCancelled); len(got) != 1 || got[0] != 3 {
		t.Errorf("degraded cancelled nodes = %v, want [3]", got)
	}

	// Fully clean with groups: neither error nor degraded.
	s = newOutcomeSet("write")
	s.group(groupKey(0), 2)
	s.ok(0, 8)
	s.groupOK(groupKey(0))
	s.ok(1, 8)
	s.groupOK(groupKey(0))
	err, degraded = s.finalize()
	if err != nil || degraded != nil {
		t.Fatalf("clean finalize = (%v, %v), want (nil, nil)", err, degraded)
	}
}

func TestChecksumRange(t *testing.T) {
	st, err := MemStorageFactory("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := st.EnsureLen(int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	whole, err := ChecksumRange(st, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if whole == 0 {
		t.Fatal("checksum of non-trivial data is zero")
	}
	again, _ := ChecksumRange(st, 0, int64(len(data)))
	if again != whole {
		t.Fatal("checksum is not deterministic")
	}

	// Beyond-EOF bytes count as zeroes: the checksum over a window that
	// overhangs the store must equal the checksum of the zero-padded
	// image, which a second store materializes explicitly.
	padded, _ := MemStorageFactory("f", 1)
	if err := padded.EnsureLen(int64(len(data)) + 100); err != nil {
		t.Fatal(err)
	}
	if err := padded.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	overhang, err := ChecksumRange(st, 0, int64(len(data))+100)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ChecksumRange(padded, 0, int64(len(data))+100)
	if err != nil {
		t.Fatal(err)
	}
	if overhang != explicit {
		t.Fatal("zero-fill tail checksums differently from explicit zeroes")
	}

	// Sub-windows see position-dependent sums.
	a, _ := ChecksumRange(st, 0, 10)
	b, _ := ChecksumRange(st, 10, 10)
	if a == b {
		t.Fatal("distinct windows collide (suspiciously)")
	}

	if _, err := ChecksumRange(st, -1, 4); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := ChecksumRange(st, 0, -4); err == nil {
		t.Error("negative length accepted")
	}
	if sum, err := ChecksumRange(st, 5, 0); err != nil || sum != 0 {
		t.Errorf("empty window = (%d, %v), want (0, nil)", sum, err)
	}
}

package clusterfile_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/part"
)

// replication_test.go proves the replication layer's core promise:
// what a client reads through an R=2 file is byte-identical to the
// R=1 baseline — with every node healthy, with one node dead under
// the reads, and with one replica silently corrupted and then healed
// by Repair. The tests live outside the package so they can wrap the
// transport with the fault injector (which itself imports clusterfile).

const replN = 32 // matrix side; 4 subfiles of 256 bytes each

// replRun is the observable surface of one write+read-back workload.
type replRun struct {
	w        *bench.Workload
	reads    [][]byte // per-view read-back
	subfiles [][]byte // via the failover read path
}

// runRepl drives the standard 4+4 workload (column-block physical
// file, row-block views) under the given config and reads everything
// back.
func runRepl(t *testing.T, cfg clusterfile.Config) *replRun {
	t.Helper()
	w, err := bench.NewWorkloadWithConfig("c", replN, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d write: %v", i, op.Err)
		}
	}
	r := &replRun{w: w}
	per := int64(replN * replN / 4)
	for i, v := range w.Views {
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		w.Cluster.RunAll()
		if op.Err != nil {
			t.Fatalf("view %d read: %v", i, op.Err)
		}
		if !bytes.Equal(out, w.ViewBuf(i)) {
			t.Fatalf("view %d read differs from what it wrote", i)
		}
		r.reads = append(r.reads, out)
	}
	for i := 0; i < w.File.Phys.Pattern.Len(); i++ {
		b, err := w.File.ReadSubfile(i)
		if err != nil {
			t.Fatalf("subfile %d: %v", i, err)
		}
		r.subfiles = append(r.subfiles, b)
	}
	return r
}

// mustEqualRuns compares every observable byte of two runs.
func mustEqualRuns(t *testing.T, base, got *replRun, label string) {
	t.Helper()
	for i := range base.reads {
		if !bytes.Equal(base.reads[i], got.reads[i]) {
			t.Fatalf("%s: view %d read differs from the R=1 baseline", label, i)
		}
	}
	for i := range base.subfiles {
		if !bytes.Equal(base.subfiles[i], got.subfiles[i]) {
			t.Fatalf("%s: subfile %d differs from the R=1 baseline", label, i)
		}
	}
}

func replConfig(repl int, reg *obs.Registry, plan *fault.Plan) clusterfile.Config {
	cfg := clusterfile.DefaultConfig()
	cfg.Replication = repl
	cfg.Metrics = reg
	inner := clusterfile.NewLocalTransport(nil)
	if plan != nil {
		cfg.Transport = fault.NewInjector(*plan, reg).WrapTransport(inner)
	} else {
		cfg.Transport = inner
	}
	return cfg
}

func failovers(reg *obs.Registry) uint64 {
	return reg.Counter(clusterfile.MetricReplicaFailovers).Value()
}

// TestReplicationEquivalenceHealthy: with every node up, R=2 is
// invisible — same bytes, no failovers — and a scrub of the freshly
// written store reports zero mismatches.
func TestReplicationEquivalenceHealthy(t *testing.T) {
	base := runRepl(t, replConfig(1, nil, nil))
	reg := obs.NewRegistry()
	run := runRepl(t, replConfig(2, reg, nil))
	mustEqualRuns(t, base, run, "healthy R=2")
	if n := failovers(reg); n != 0 {
		t.Errorf("healthy run recorded %d failovers", n)
	}
	rep, err := run.w.File.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean store scrubs dirty: %d mismatches (%+v)", len(rep.Mismatches), rep.Mismatches[0])
	}
	if rep.Subfiles != 4 || rep.Checked == 0 {
		t.Errorf("scrub covered %d subfiles / %d bytes, want 4 / >0", rep.Subfiles, rep.Checked)
	}
	if reg.Counter(clusterfile.MetricScrubMismatches).Value() != 0 {
		t.Error("scrub mismatch counter ticked on a clean store")
	}
}

// TestReplicationEquivalenceNodeDown: after the write, node 1 stops
// answering reads. With R=2 every read still returns the baseline
// bytes; the only trace is the failover counter — and no goroutine
// sticks around afterwards.
func TestReplicationEquivalenceNodeDown(t *testing.T) {
	base := runRepl(t, replConfig(1, nil, nil))
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	// Only read-side operations fail: the node died after the write.
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: 1, Op: fault.OpLen, Kind: fault.ErrorAlways},
		{Node: 1, Op: fault.OpReadAt, Kind: fault.ErrorAlways},
		{Node: 1, Op: fault.OpGather, Kind: fault.ErrorAlways},
	}}
	run := runRepl(t, replConfig(2, reg, &plan))
	mustEqualRuns(t, base, run, "node 1 down")
	if n := failovers(reg); n == 0 {
		t.Error("reads around a dead node recorded no failovers")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after failover reads: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationCorruptionRepair: a fault rule silently flips one
// byte of replica tier 1 during the write. Reads stay byte-identical
// (tier 0 is clean), Scrub pins the divergence to tier 1, Repair
// heals it, and the store scrubs clean afterwards.
func TestReplicationCorruptionRepair(t *testing.T) {
	base := runRepl(t, replConfig(1, nil, nil))
	reg := obs.NewRegistry()
	tier1 := clusterfile.ReplicaName("matrix", 1)
	// One scatter to tier 1 gets a silently flipped byte. (Not OpWriteAt:
	// that is the op Repair itself rewrites through, and a lingering
	// corrupt rule there would re-damage the heal.)
	plan := fault.Plan{Rules: []fault.Rule{
		{File: tier1, Node: fault.AnyNode, Op: fault.OpScatter, Kind: fault.Corrupt, Times: 1},
	}}
	run := runRepl(t, replConfig(2, reg, &plan))
	mustEqualRuns(t, base, run, "corrupted tier 1")

	ctx := context.Background()
	rep, err := run.w.File.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("scrub missed the injected corruption")
	}
	for _, m := range rep.Mismatches {
		if m.Replica != 1 {
			t.Fatalf("mismatch blamed replica %d, want 1: %+v", m.Replica, m)
		}
		if m.Err != nil {
			t.Fatalf("corruption reported as unreadable: %v", m.Err)
		}
	}

	stats, pre, err := run.w.File.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Clean() || stats.Replicas == 0 || stats.Bytes == 0 {
		t.Fatalf("repair healed nothing: %+v", stats)
	}
	rep, err = run.w.File.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store still dirty after repair: %+v", rep.Mismatches)
	}
	if reg.Counter(clusterfile.MetricRepairOps).Value() != 1 {
		t.Error("repair op counter did not tick")
	}
	if reg.Counter(clusterfile.MetricRepairBytes).Value() != uint64(stats.Bytes) {
		t.Error("repair bytes counter disagrees with the stats")
	}

	// The healed store serves the same bytes.
	for i := range base.subfiles {
		b, err := run.w.File.ReadSubfile(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, base.subfiles[i]) {
			t.Fatalf("subfile %d differs after repair", i)
		}
	}
}

// TestReplicationQuorumWrite: with WriteQuorum=1 and replica tier 1
// refusing writes, the collective write succeeds Degraded; the stale
// tier is visible to Scrub (the length-first consensus keeps the
// short replica from outvoting the written one) and reads never see
// it.
func TestReplicationQuorumWrite(t *testing.T) {
	base := runRepl(t, replConfig(1, nil, nil))
	reg := obs.NewRegistry()
	tier1 := clusterfile.ReplicaName("matrix", 1)
	plan := fault.Plan{Rules: []fault.Rule{
		{File: tier1, Node: fault.AnyNode, Op: fault.OpEnsureLen, Kind: fault.ErrorAlways},
		{File: tier1, Node: fault.AnyNode, Op: fault.OpWriteAt, Kind: fault.ErrorAlways},
		{File: tier1, Node: fault.AnyNode, Op: fault.OpScatter, Kind: fault.ErrorAlways},
	}}
	cfg := replConfig(2, reg, &plan)
	cfg.WriteQuorum = 1
	w, err := bench.NewWorkloadWithConfig("c", replN, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("node %d write failed despite quorum 1: %v", i, op.Err)
		}
		if op.Degraded != nil {
			sawDegraded = true
			var ie *fault.InjectedError
			if !errors.As(op.Degraded, &ie) {
				t.Fatalf("degraded report does not unwrap to the injected error: %v", op.Degraded)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no write reported a degraded replica")
	}
	if reg.Counter(clusterfile.MetricReplicaDegradedOps).Value() == 0 {
		t.Error("degraded op counter did not tick")
	}

	// Reads are served by the written tier and match the baseline.
	for i := range base.subfiles {
		b, err := w.File.ReadSubfile(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, base.subfiles[i]) {
			t.Fatalf("subfile %d differs under a stale tier 1", i)
		}
	}

	// The stale tier cannot hide from the scrub.
	rep, err := w.File.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("scrub missed the stale replica tier")
	}
	for _, m := range rep.Mismatches {
		if m.Replica != 1 {
			t.Fatalf("mismatch blamed replica %d, want the stale tier 1: %+v", m.Replica, m)
		}
	}
}

// TestReplicationRedistribute: a replicated source redistributes into
// a replicated destination with the same bytes as the R=1 run, and
// both destination tiers agree under scrub.
func TestReplicationRedistribute(t *testing.T) {
	redist := func(t *testing.T, cfg clusterfile.Config) (*replRun, *clusterfile.File) {
		run := runRepl(t, cfg)
		rowPat, err := bench.LayoutPattern("r", replN)
		if err != nil {
			t.Fatal(err)
		}
		nf, op, err := run.w.Cluster.StartRedistribute(run.w.File, "matrix.v2", part.MustFile(0, rowPat), nil, replN*replN)
		if err != nil {
			t.Fatal(err)
		}
		run.w.Cluster.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		return run, nf
	}
	_, nfBase := redist(t, replConfig(1, nil, nil))
	_, nf := redist(t, replConfig(2, nil, nil))
	if nf.Replication != 2 {
		t.Fatalf("redistributed file has replication %d, want the cluster's 2", nf.Replication)
	}
	for i := 0; i < nfBase.Phys.Pattern.Len(); i++ {
		a, err := nfBase.ReadSubfile(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := nf.ReadSubfile(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("redistributed subfile %d differs between R=1 and R=2", i)
		}
	}
	rep, err := nf.Scrub(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("redistributed replicas diverge: %+v", rep.Mismatches)
	}
}

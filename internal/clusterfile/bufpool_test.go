package clusterfile

import (
	"testing"

	"parafile/internal/obs"
)

func TestMsgBufPoolRetentionCap(t *testing.T) {
	// An oversized buffer is dropped (and counted on both the
	// process-wide counter and the cluster's obs series) instead of
	// pinning its capacity in the pool; a cap-sized one still pools.
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := MsgBufDiscards()
	c.putMsgBuf(make([]byte, maxPooledMsgBuf+1))
	if got := MsgBufDiscards() - base; got != 1 {
		t.Fatalf("oversized buffer discards = %d, want 1", got)
	}
	if got := reg.Counter(MetricMsgBufDiscards).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricMsgBufDiscards, got)
	}
	base = MsgBufDiscards()
	c.putMsgBuf(make([]byte, maxPooledMsgBuf))
	if got := MsgBufDiscards() - base; got != 0 {
		t.Fatalf("cap-sized buffer was discarded (%d)", got)
	}
}

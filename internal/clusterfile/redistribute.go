package clusterfile

import (
	"context"
	"errors"
	"fmt"
	"time"

	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// redistribute.go implements on-the-fly physical re-partitioning of a
// stored file — §3: "using the redistribution algorithm it is possible
// to implement disk redistribution on the fly, like in Panda, in order
// to better suit the layout to a certain access pattern". Data moves
// I/O node to I/O node over the simulated interconnect; the library's
// redistribution plan supplies the pairwise projections.
//
// Redistribution is all-or-nothing: arriving transfer buffers are
// STAGED at their destination I/O nodes and only committed — scattered
// into the new subfiles — once every source gather and transfer has
// landed. Any gather, transfer or cancellation before that point
// discards the staging wholesale, leaving the new file's subfiles
// untouched (still empty), so a failed redistribution never yields a
// half-written destination layout.

// ErrRedistAborted marks destination work discarded because the
// redistribution aborted before its commit point.
var ErrRedistAborted = errors.New("clusterfile: redistribute aborted before commit")

// RedistStats reports a cluster redistribution.
type RedistStats struct {
	// TNet is the virtual time from the first transfer send until the
	// last scatter completed (or the abort was sealed).
	TNet int64
	// Messages and Bytes count the inter-I/O-node traffic.
	Messages int
	Bytes    int64
	// GatherReal / ScatterReal are the real wall times of the data
	// movement on the host.
	GatherReal, ScatterReal time.Duration
}

// stagedScatter is one arrived transfer parked at its destination I/O
// node, waiting for the operation's commit point. key names the
// transfer's quorum group: each transfer needs WriteQuorum replica
// commits on the destination file. (Keys are per transfer, not per
// destination subfile — several transfers may land in one subfile, and
// each must meet quorum on its own.)
type stagedScatter struct {
	key     string
	dstElem int
	dstION  int
	dstHi   int64
	dstSegs int64
	dstProj *redist.Projection
	buf     []byte
	bytes   int64
}

// RedistOp is an in-flight cluster redistribution. On failure Err
// holds a *PartialError whose destination-node outcomes are cancelled
// (their staged data was discarded, never committed).
type RedistOp struct {
	Stats RedistStats
	Err   error
	// Degraded, when non-nil after completion, lists replica placements
	// that failed while every transfer still met its commit quorum on
	// the destination file (or source placements a failover absorbed).
	Degraded *PartialError

	pending  int
	started  int64
	ctx      context.Context
	cancel   context.CancelFunc
	outcomes *outcomeSet
	failFast bool
	nf       *File
	staged   []stagedScatter
	aborted  bool
	sealed   bool
	span     *obs.Span // distributed-trace root (nil when untraced)
}

// Done reports whether the redistribution has settled (committed or
// aborted).
func (op *RedistOp) Done() bool { return op.sealed }

// Cancel aborts the redistribution; staged destination data is
// discarded at the commit point, leaving the new file untouched.
func (op *RedistOp) Cancel() { op.cancel() }

// nodeFailed records a hard error against one I/O node and dooms the
// operation: the commit point will discard the staging.
func (op *RedistOp) nodeFailed(ioNode int, err error) {
	if isCtxErr(err) {
		op.outcomes.cancel(ioNode, err)
	} else {
		op.outcomes.fail(ioNode, err)
		if op.failFast {
			op.cancel()
		}
	}
	op.aborted = true
}

// arrived retires one transfer; the last one reaches the commit point.
func (op *RedistOp) arrived(c *Cluster) {
	op.pending--
	if op.pending == 0 {
		op.settle(c)
	}
}

// settle is the commit point: with every gather and transfer landed
// and the operation not doomed, scatter the staged buffers into the
// new subfiles (every replica placement); otherwise discard them all.
// Only an abort or a cancelled context dooms the operation here —
// individual Failed node outcomes may be source failovers the
// replication layer already absorbed.
func (op *RedistOp) settle(c *Cluster) {
	if op.aborted || op.ctx.Err() != nil {
		for _, s := range op.staged {
			c.putMsgBuf(s.buf)
			for r := 0; r < op.nf.Replication; r++ {
				op.outcomes.cancel(op.nf.Placement[r][s.dstElem], ErrRedistAborted)
			}
		}
		op.staged = nil
		op.seal(c)
		return
	}
	staged := op.staged
	op.staged = nil
	op.pending = len(staged) * op.nf.Replication
	if op.pending == 0 {
		op.seal(c)
		return
	}
	for _, s := range staged {
		op.commitOne(c, s)
	}
}

// replicaCommitFailed records one replica's commit failure. Past the
// commit point a single replica no longer dooms the operation — the
// transfer's quorum group decides — so this never sets op.aborted.
func (op *RedistOp) replicaCommitFailed(c *Cluster, ioNode int, err error) {
	if isCtxErr(err) {
		op.outcomes.cancel(ioNode, err)
	} else {
		op.outcomes.fail(ioNode, err)
	}
	op.commitDone(c)
}

// commitOne scatters one staged buffer into every replica placement of
// its destination subfile and charges each destination's storage cost.
// The buffer is shared across the replica scatters (the store copies),
// so it returns to the pool once the loop finishes.
func (op *RedistOp) commitOne(c *Cluster, s stagedScatter) {
	defer c.putMsgBuf(s.buf)
	nf := op.nf
	for r := 0; r < nf.Replication; r++ {
		dstION := nf.Placement[r][s.dstElem]
		if err := op.ctx.Err(); err != nil {
			op.outcomes.cancel(dstION, err)
			op.commitDone(c)
			continue
		}
		if err := nf.growReplica(op.ctx, r, s.dstElem, s.dstHi+1); err != nil {
			op.replicaCommitFailed(c, dstION, err)
			continue
		}
		ts := time.Now()
		if err := nf.handle(r, s.dstElem).Scatter(op.ctx, s.dstProj, 0, s.dstHi, s.buf); err != nil {
			op.replicaCommitFailed(c, dstION, err)
			continue
		}
		realScatter := time.Since(ts)
		op.Stats.ScatterReal += realScatter
		op.outcomes.ok(dstION, s.bytes)
		op.outcomes.groupOK(s.key)
		c.met.scatterBytes.Add(s.bytes)
		c.met.scatterNs.Observe(realScatter.Nanoseconds())
		c.met.ioBytes(dstION).Add(s.bytes)
		cost := c.Disks[dstION].CacheCost(s.bytes, s.dstSegs)
		c.Disks[dstION].Account(s.bytes, false)
		err := c.Net.ReceiverBusy(c.ioNet(dstION), cost, func() {
			op.commitDone(c)
		})
		if err != nil {
			op.replicaCommitFailed(c, dstION, err)
		}
	}
}

func (op *RedistOp) commitDone(c *Cluster) {
	op.pending--
	if op.pending == 0 {
		op.seal(c)
	}
}

// seal finishes the operation: final stats, PartialError derivation,
// context release.
func (op *RedistOp) seal(c *Cluster) {
	if op.sealed {
		return
	}
	op.sealed = true
	op.Stats.TNet = c.K.Now() - op.started
	err, degraded := op.outcomes.finalize()
	if err != nil && op.Err == nil {
		op.Err = err
	}
	if op.Err == nil {
		if err := op.ctx.Err(); err != nil {
			op.Err = err
		}
	}
	if op.Err == nil && degraded != nil {
		op.Degraded = degraded
		c.met.degradedOps.Inc()
	}
	op.cancel()
	stampTrace(op.Err, op.span)
	c.finishOp(op.span, op.Err)
}

// StartRedistribute creates newName with the given physical partition
// and assignment (nil for round-robin) and moves the first length
// bytes of f's data into it, disk to disk. Drive the kernel (RunAll)
// to completion, then use the returned file.
func (c *Cluster) StartRedistribute(f *File, newName string, newPhys *part.File, newAssign []int, length int64) (*File, *RedistOp, error) {
	return c.StartRedistributeCtx(context.Background(), f, newName, newPhys, newAssign, length)
}

// StartRedistributeCtx is StartRedistribute bounded by a context.
// Cancellation (or the cluster's OpTimeout) before the commit point
// aborts the whole redistribution: staged destination data is
// discarded and the new file's subfiles stay untouched.
func (c *Cluster) StartRedistributeCtx(ctx context.Context, f *File, newName string, newPhys *part.File, newAssign []int, length int64) (*File, *RedistOp, error) {
	return c.startRedistribute(ctx, f, newPhys, length, func(octx context.Context) (*File, error) {
		return c.CreateFileCtx(octx, newName, newPhys, newAssign)
	})
}

// StartRedistributePlacementCtx is StartRedistributeCtx with the new
// file created under explicit placement rows and a placement epoch —
// the online-rebalance shape: the metadata service computes the
// post-rebalance placement, the driver opens the new generation at
// epoch E+1 inside the union cluster of old and new nodes, and the
// paper's redistribution (MAP_new ∘ MAP⁻¹_old) moves the bytes under
// the same stage-then-commit machinery.
func (c *Cluster) StartRedistributePlacementCtx(ctx context.Context, f *File, newName string, newPhys *part.File, placement [][]int, epoch uint64, length int64) (*File, *RedistOp, error) {
	return c.startRedistribute(ctx, f, newPhys, length, func(octx context.Context) (*File, error) {
		return c.CreateFilePlacementCtx(octx, newName, newPhys, placement, epoch)
	})
}

func (c *Cluster) startRedistribute(ctx context.Context, f *File, newPhys *part.File, length int64, create func(context.Context) (*File, error)) (*File, *RedistOp, error) {
	if f == nil {
		return nil, nil, fmt.Errorf("clusterfile: nil file")
	}
	if length < 1 {
		return nil, nil, fmt.Errorf("clusterfile: non-positive length %d", length)
	}
	c.met.redistOps.Inc()
	span := c.span.StartChild("clusterfile.redistribute")
	defer span.End()
	// Repeated redistributions between the same layout pair (the
	// adaptive-layout case §3 motivates) hit the plan cache instead of
	// recompiling.
	var plan *redist.Plan
	var err error
	if cache := c.cfg.PlanCache; cache != nil {
		plan, _, err = cache.GetOrCompile(f.Phys, newPhys)
	} else {
		plan, err = redist.CompilePlan(f.Phys, newPhys,
			redist.CompileOptions{Metrics: c.cfg.Metrics, Trace: span})
	}
	if err != nil {
		return nil, nil, err
	}
	octx, cancel := c.opCtx(ctx)
	octx, osp := c.startOp(octx, "redistribute")
	nf, err := create(octx)
	if err != nil {
		return nil, nil, c.abortStart(cancel, osp, err)
	}
	op := &RedistOp{
		started: c.K.Now(),
		ctx:     octx, cancel: cancel,
		outcomes: newOutcomeSet("redistribute"),
		failFast: c.cfg.FailFast,
		nf:       nf,
		span:     osp,
	}
	for i := range plan.Transfers {
		t := &plan.Transfers[i]
		srcHi, dstHi, bytes := t.Windows(plan.Period, length)
		if bytes == 0 {
			continue
		}
		srcION := f.Assign[t.SrcElem]
		dstION := nf.Assign[t.DstElem]
		if err := octx.Err(); err != nil {
			op.outcomes.cancel(srcION, err)
			op.aborted = true
			break
		}

		// Source I/O node: gather the shared bytes from the old
		// subfile (real I/O), modeled as CPU work before the send.
		// Unwritten holes read as zeroes, like any sparse file. A hard
		// error fails over to the next source replica; only an
		// exhausted placement group aborts the redistribution.
		buf := c.getMsgBuf(bytes)
		var gatherErr error
		gathered := false
		tg := time.Now()
		for r := 0; r < f.Replication; r++ {
			srcION = f.Placement[r][t.SrcElem]
			if r > 0 {
				c.met.failovers.Inc()
			}
			if gatherErr = f.growReplica(octx, r, t.SrcElem, srcHi+1); gatherErr == nil {
				gatherErr = f.handle(r, t.SrcElem).Gather(octx, t.SrcProj, 0, srcHi, buf)
			}
			if gatherErr == nil {
				gathered = true
				break
			}
			if isCtxErr(gatherErr) || r+1 >= f.Replication {
				break
			}
			// Tolerated source failure: record it (it surfaces in the
			// Degraded report) without dooming the operation.
			op.outcomes.fail(srcION, gatherErr)
		}
		if !gathered {
			c.putMsgBuf(buf)
			op.nodeFailed(srcION, gatherErr)
			break
		}
		realGather := time.Since(tg)
		op.Stats.GatherReal += realGather
		op.outcomes.ok(srcION, bytes)
		op.outcomes.group(fmt.Sprintf("xfer/%d", i), c.quorum)
		c.met.gatherBytes.Add(bytes)
		c.met.gatherNs.Observe(realGather.Nanoseconds())
		c.met.ioBytes(srcION).Add(bytes)
		segs := t.SrcProj.SegmentsIn(0, srcHi)
		gatherNs := c.copyModelNs(bytes, segs)

		op.pending++
		op.Stats.Messages++
		op.Stats.Bytes += bytes
		c.met.recordNet(bytes)
		key := fmt.Sprintf("xfer/%d", i)
		srcNode := srcION // the replica that served the gather
		dstProj := t.DstProj
		dstElem := t.DstElem
		dstSegs := dstProj.SegmentsIn(0, dstHi)
		c.K.After(gatherNs, func() {
			// A doomed operation skips the transfer: its payload could
			// never commit.
			if op.aborted || op.ctx.Err() != nil {
				c.putMsgBuf(buf)
				op.outcomes.cancel(dstION, ErrRedistAborted)
				op.arrived(c)
				return
			}
			err := c.Net.Send(c.ioNet(srcNode), c.ioNet(dstION), bytes, func() {
				// Destination I/O node: stage the arrived buffer. The
				// scatter into the new subfiles (every replica) waits
				// for the commit point in settle().
				op.staged = append(op.staged, stagedScatter{
					key: key, dstElem: dstElem, dstION: dstION,
					dstHi: dstHi, dstSegs: dstSegs, dstProj: dstProj,
					buf: buf, bytes: bytes,
				})
				op.arrived(c)
			})
			if err != nil {
				c.putMsgBuf(buf)
				op.nodeFailed(dstION, err)
				op.arrived(c)
			}
		})
	}
	if op.pending == 0 {
		op.settle(c)
	}
	return nf, op, nil
}

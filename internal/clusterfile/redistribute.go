package clusterfile

import (
	"fmt"
	"time"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// redistribute.go implements on-the-fly physical re-partitioning of a
// stored file — §3: "using the redistribution algorithm it is possible
// to implement disk redistribution on the fly, like in Panda, in order
// to better suit the layout to a certain access pattern". Data moves
// I/O node to I/O node over the simulated interconnect; the library's
// redistribution plan supplies the pairwise projections.

// RedistStats reports a cluster redistribution.
type RedistStats struct {
	// TNet is the virtual time from the first transfer send until the
	// last scatter completed.
	TNet int64
	// Messages and Bytes count the inter-I/O-node traffic.
	Messages int
	Bytes    int64
	// GatherReal / ScatterReal are the real wall times of the data
	// movement on the host.
	GatherReal, ScatterReal time.Duration
}

// RedistOp is an in-flight cluster redistribution.
type RedistOp struct {
	Stats RedistStats
	Err   error

	pending int
	started int64
}

// Done reports whether all transfers have completed.
func (op *RedistOp) Done() bool { return op.pending == 0 }

// StartRedistribute creates newName with the given physical partition
// and assignment (nil for round-robin) and moves the first length
// bytes of f's data into it, disk to disk. Drive the kernel (RunAll)
// to completion, then use the returned file.
func (c *Cluster) StartRedistribute(f *File, newName string, newPhys *part.File, newAssign []int, length int64) (*File, *RedistOp, error) {
	if f == nil {
		return nil, nil, fmt.Errorf("clusterfile: nil file")
	}
	if length < 1 {
		return nil, nil, fmt.Errorf("clusterfile: non-positive length %d", length)
	}
	c.met.redistOps.Inc()
	span := c.span.StartChild("clusterfile.redistribute")
	defer span.End()
	// Repeated redistributions between the same layout pair (the
	// adaptive-layout case §3 motivates) hit the plan cache instead of
	// recompiling.
	var plan *redist.Plan
	var err error
	if cache := c.cfg.PlanCache; cache != nil {
		plan, _, err = cache.GetOrCompile(f.Phys, newPhys)
	} else {
		plan, err = redist.CompilePlan(f.Phys, newPhys,
			redist.CompileOptions{Metrics: c.cfg.Metrics, Trace: span})
	}
	if err != nil {
		return nil, nil, err
	}
	nf, err := c.CreateFile(newName, newPhys, newAssign)
	if err != nil {
		return nil, nil, err
	}
	op := &RedistOp{started: c.K.Now()}
	for i := range plan.Transfers {
		t := &plan.Transfers[i]
		srcHi, dstHi, bytes := t.Windows(plan.Period, length)
		if bytes == 0 {
			continue
		}
		srcION := f.Assign[t.SrcElem]
		dstION := nf.Assign[t.DstElem]

		// Source I/O node: gather the shared bytes from the old
		// subfile (real I/O), modeled as CPU work before the send.
		// Unwritten holes read as zeroes, like any sparse file.
		if err := f.growSubfile(t.SrcElem, srcHi+1); err != nil {
			return nil, nil, err
		}
		buf := c.getMsgBuf(bytes)
		tg := time.Now()
		if err := f.handles[t.SrcElem].Gather(t.SrcProj, 0, srcHi, buf); err != nil {
			putMsgBuf(buf)
			return nil, nil, err
		}
		realGather := time.Since(tg)
		op.Stats.GatherReal += realGather
		c.met.gatherBytes.Add(bytes)
		c.met.gatherNs.Observe(realGather.Nanoseconds())
		c.met.ioBytes(srcION).Add(bytes)
		segs := t.SrcProj.SegmentsIn(0, srcHi)
		gatherNs := c.copyModelNs(bytes, segs)

		op.pending++
		op.Stats.Messages++
		op.Stats.Bytes += bytes
		c.met.recordNet(bytes)
		dstProj := t.DstProj
		dstElem := t.DstElem
		dstSegs := dstProj.SegmentsIn(0, dstHi)
		c.K.After(gatherNs, func() {
			err := c.Net.Send(c.ioNet(srcION), c.ioNet(dstION), bytes, func() {
				// Destination I/O node: scatter into the new subfile.
				// The store copies on write, so the pooled message
				// buffer is released once the scatter returns.
				defer putMsgBuf(buf)
				if err := nf.growSubfile(dstElem, dstHi+1); err != nil {
					op.Err = err
					op.pending--
					return
				}
				ts := time.Now()
				if err := nf.handles[dstElem].Scatter(dstProj, 0, dstHi, buf); err != nil {
					op.Err = err
					op.pending--
					return
				}
				realScatter := time.Since(ts)
				op.Stats.ScatterReal += realScatter
				c.met.scatterBytes.Add(bytes)
				c.met.scatterNs.Observe(realScatter.Nanoseconds())
				c.met.ioBytes(dstION).Add(bytes)
				cost := c.Disks[dstION].CacheCost(bytes, dstSegs)
				c.Disks[dstION].Account(bytes, false)
				c.Net.ReceiverBusy(c.ioNet(dstION), cost, func() {
					op.pending--
					if op.pending == 0 {
						op.Stats.TNet = c.K.Now() - op.started
					}
				})
			})
			if err != nil {
				putMsgBuf(buf)
				op.Err = err
				op.pending--
			}
		})
	}
	return nf, op, nil
}


package clusterfile

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// layout builds one of the paper's physical partitions of an n×n byte
// matrix over four subfiles.
func layout(t *testing.T, kind string, n int64) *part.Pattern {
	t.Helper()
	var p *part.Pattern
	var err error
	switch kind {
	case "r":
		p, err = part.RowBlocks(n, n, 4)
	case "c":
		p, err = part.ColBlocks(n, n, 4)
	case "b":
		p, err = part.SquareBlocks(n, n, 2, 2)
	default:
		t.Fatalf("unknown layout %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// matrixWorkload is the §8.2 benchmark: an n×n byte matrix, physical
// partition of the given kind over 4 I/O nodes, logical partition in
// row blocks over 4 compute nodes.
type matrixWorkload struct {
	c       *Cluster
	f       *File
	views   []*View
	logical *part.File
	img     []byte // the reference matrix image
	n       int64
}

func newMatrixWorkload(t *testing.T, phys string, n int64) *matrixWorkload {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf := part.MustFile(0, layout(t, phys, n))
	f, err := c.CreateFile("matrix", pf, nil)
	if err != nil {
		t.Fatal(err)
	}
	lf := part.MustFile(0, layout(t, "r", n))
	w := &matrixWorkload{c: c, f: f, logical: lf, n: n}
	rng := rand.New(rand.NewSource(n))
	w.img = make([]byte, n*n)
	rng.Read(w.img)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, lf, node)
		if err != nil {
			t.Fatal(err)
		}
		w.views = append(w.views, v)
	}
	return w
}

// viewBuf returns compute node i's slice of the matrix (its row
// block).
func (w *matrixWorkload) viewBuf(i int) []byte {
	per := w.n * w.n / 4
	return w.img[int64(i)*per : int64(i+1)*per]
}

// writeAll performs the full concurrent benchmark write and returns
// the per-node ops.
func (w *matrixWorkload) writeAll(t *testing.T, mode WriteMode) []*WriteOp {
	t.Helper()
	per := w.n * w.n / 4
	ops := make([]*WriteOp, 4)
	for i, v := range w.views {
		op, err := v.StartWrite(mode, 0, per-1, w.viewBuf(i))
		if err != nil {
			t.Fatal(err)
		}
		ops[i] = op
	}
	w.c.RunAll()
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("node %d write error: %v", i, op.Err)
		}
		if !op.Done() {
			t.Fatalf("node %d write incomplete", i)
		}
	}
	return ops
}

// checkFileContent reassembles the file from the subfiles and compares
// with the reference image.
func (w *matrixWorkload) checkFileContent(t *testing.T) {
	t.Helper()
	bufs := make([][]byte, w.f.Phys.Pattern.Len())
	for i := range bufs {
		want := w.f.Phys.ElementBytes(i, w.n*w.n)
		got := w.f.Subfile(i)
		if int64(len(got)) != want {
			t.Fatalf("subfile %d holds %d bytes, want %d", i, len(got), want)
		}
		bufs[i] = got
	}
	img, err := redist.JoinFile(w.f.Phys, bufs, w.n*w.n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, w.img) {
		t.Fatal("file content differs from the written matrix")
	}
}

// TestWriteCorrectnessAllLayouts: the full benchmark write produces
// exactly the matrix on disk for every physical layout.
func TestWriteCorrectnessAllLayouts(t *testing.T) {
	for _, phys := range []string{"r", "b", "c"} {
		t.Run(phys, func(t *testing.T) {
			w := newMatrixWorkload(t, phys, 64)
			w.writeAll(t, ToBufferCache)
			w.checkFileContent(t)
		})
	}
}

// TestWriteDiskModeCorrectness: the disk mode stores the same bytes.
func TestWriteDiskModeCorrectness(t *testing.T) {
	w := newMatrixWorkload(t, "c", 32)
	w.writeAll(t, ToDisk)
	w.checkFileContent(t)
}

// TestContiguousFastPath: with matching partitions (r/r), every view
// maps exactly on one subfile and the write takes the zero-copy path —
// no gather, one data message.
func TestContiguousFastPath(t *testing.T) {
	w := newMatrixWorkload(t, "r", 64)
	ops := w.writeAll(t, ToBufferCache)
	for i, op := range ops {
		if op.Stats.ContiguousSends != 1 {
			t.Errorf("node %d: %d contiguous sends, want 1", i, op.Stats.ContiguousSends)
		}
		if op.Stats.GatherModelNs != 0 {
			t.Errorf("node %d: gather cost %d on the fast path, want 0", i, op.Stats.GatherModelNs)
		}
		if op.Stats.Messages != 2 { // extremities + data
			t.Errorf("node %d: %d messages, want 2", i, op.Stats.Messages)
		}
	}
	w.checkFileContent(t)
}

// TestPoorMatchFragments: with the column layout, each view hits all
// four subfiles and must gather.
func TestPoorMatchFragments(t *testing.T) {
	w := newMatrixWorkload(t, "c", 64)
	ops := w.writeAll(t, ToBufferCache)
	for i, op := range ops {
		if op.Stats.ContiguousSends != 0 {
			t.Errorf("node %d: unexpected contiguous sends %d", i, op.Stats.ContiguousSends)
		}
		if op.Stats.GatherModelNs == 0 {
			t.Errorf("node %d: no gather cost on the fragmented path", i)
		}
		if op.Stats.Messages != 8 { // 4 × (extremities + data)
			t.Errorf("node %d: %d messages, want 8", i, op.Stats.Messages)
		}
	}
	w.checkFileContent(t)
}

// TestNetTimeOrdering: the virtual network time of the poor match
// exceeds the perfect match at small sizes (Table 1's t_net shape).
func TestNetTimeOrdering(t *testing.T) {
	times := map[string]int64{}
	for _, phys := range []string{"r", "b", "c"} {
		w := newMatrixWorkload(t, phys, 256)
		ops := w.writeAll(t, ToBufferCache)
		var sum int64
		for _, op := range ops {
			sum += op.Stats.TNet
		}
		times[phys] = sum / 4
	}
	if !(times["r"] < times["b"] && times["b"] < times["c"]) {
		t.Errorf("t_net ordering r < b < c violated: %v", times)
	}
}

// TestDiskModeSlower: writing through to disk costs more virtual time
// than the buffer cache.
func TestDiskModeSlower(t *testing.T) {
	wc := newMatrixWorkload(t, "c", 128)
	opsC := wc.writeAll(t, ToBufferCache)
	wd := newMatrixWorkload(t, "c", 128)
	opsD := wd.writeAll(t, ToDisk)
	for i := range opsC {
		if opsD[i].Stats.TNet <= opsC[i].Stats.TNet {
			t.Errorf("node %d: disk TNet %d <= cache TNet %d",
				i, opsD[i].Stats.TNet, opsC[i].Stats.TNet)
		}
	}
}

// TestPartialWindowWrite: writing a sub-interval of the view touches
// only those bytes.
func TestPartialWindowWrite(t *testing.T) {
	w := newMatrixWorkload(t, "b", 32)
	v := w.views[1]
	per := w.n * w.n / 4
	lo, hi := per/4, per/2
	buf := w.viewBuf(1)[lo : hi+1]
	op, err := v.StartWrite(ToBufferCache, lo, hi, buf)
	if err != nil {
		t.Fatal(err)
	}
	w.c.RunAll()
	if op.Err != nil || !op.Done() {
		t.Fatalf("partial write failed: %v", op.Err)
	}
	// Read the window back and compare.
	out := make([]byte, hi-lo+1)
	rop, err := v.StartRead(lo, hi, out)
	if err != nil {
		t.Fatal(err)
	}
	w.c.RunAll()
	if rop.Err != nil || !rop.Done() {
		t.Fatalf("read failed: %v", rop.Err)
	}
	if !bytes.Equal(out, buf) {
		t.Fatal("partial window read-back differs")
	}
}

// TestReadBackFullMatrix: write the matrix, then every node reads its
// whole view back.
func TestReadBackFullMatrix(t *testing.T) {
	for _, phys := range []string{"r", "b", "c"} {
		w := newMatrixWorkload(t, phys, 64)
		w.writeAll(t, ToBufferCache)
		per := w.n * w.n / 4
		for i, v := range w.views {
			out := make([]byte, per)
			op, err := v.StartRead(0, per-1, out)
			if err != nil {
				t.Fatal(err)
			}
			w.c.RunAll()
			if op.Err != nil || !op.Done() {
				t.Fatalf("read failed: %v", op.Err)
			}
			if !bytes.Equal(out, w.viewBuf(i)) {
				t.Fatalf("layout %s node %d: read-back differs", phys, i)
			}
			if op.Stats.TNet <= 0 {
				t.Errorf("layout %s node %d: non-positive read TNet", phys, i)
			}
		}
	}
}

// TestViewSetRecordsIntersectionTime: t_i is recorded and the view
// knows which subfiles it overlaps.
func TestViewSetRecordsIntersectionTime(t *testing.T) {
	w := newMatrixWorkload(t, "c", 64)
	for i, v := range w.views {
		if v.TIntersect <= 0 {
			t.Errorf("node %d: TIntersect not recorded", i)
		}
		if got := len(v.Subfiles()); got != 4 {
			t.Errorf("node %d overlaps %d subfiles, want 4", i, got)
		}
	}
	wr := newMatrixWorkload(t, "r", 64)
	for i, v := range wr.views {
		if got := len(v.Subfiles()); got != 1 {
			t.Errorf("r/r node %d overlaps %d subfiles, want 1", i, got)
		}
	}
}

// TestValidation: malformed requests fail cleanly.
func TestValidation(t *testing.T) {
	if _, err := New(Config{ComputeNodes: 0, IONodes: 1}); err == nil {
		t.Error("zero compute nodes accepted")
	}
	w := newMatrixWorkload(t, "r", 32)
	if _, err := w.f.cluster.CreateFile("matrix", w.f.Phys, nil); err == nil {
		t.Error("duplicate file name accepted")
	}
	if _, err := w.f.cluster.CreateFile("bad", w.f.Phys, []int{0}); err == nil {
		t.Error("wrong assignment length accepted")
	}
	if _, err := w.f.cluster.CreateFile("bad2", w.f.Phys, []int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range I/O node accepted")
	}
	if _, err := w.f.SetView(-1, w.logical, 0); err == nil {
		t.Error("negative compute node accepted")
	}
	v := w.views[0]
	if _, err := v.StartWrite(ToBufferCache, 10, 5, nil); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := v.StartWrite(ToBufferCache, 0, 7, make([]byte, 3)); err == nil {
		t.Error("mismatched buffer accepted")
	}
	if _, err := v.StartRead(9, 2, nil); err == nil {
		t.Error("inverted read interval accepted")
	}
	if _, err := v.StartRead(0, 7, make([]byte, 2)); err == nil {
		t.Error("mismatched read buffer accepted")
	}
}

// TestScatterAccounting: per-I/O-node scatter costs sum to the total.
func TestScatterAccounting(t *testing.T) {
	w := newMatrixWorkload(t, "c", 128)
	ops := w.writeAll(t, ToBufferCache)
	for i, op := range ops {
		var sum int64
		for _, v := range op.Stats.PerIONodeScatterNs {
			sum += v
		}
		if sum != op.Stats.ScatterModelNs {
			t.Errorf("node %d: per-ION scatter %d != total %d", i, sum, op.Stats.ScatterModelNs)
		}
		if len(op.Stats.PerIONodeScatterNs) != 4 {
			t.Errorf("node %d: touched %d I/O nodes, want 4", i, len(op.Stats.PerIONodeScatterNs))
		}
	}
}

// TestCustomAssignment: subfiles can be placed on explicit I/O nodes.
func TestCustomAssignment(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf := part.MustFile(0, layout(t, "r", 32))
	f, err := c.CreateFile("m", pf, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	lf := part.MustFile(0, layout(t, "r", 32))
	v, err := f.SetView(0, lf, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i)
	}
	op, err := v.StartWrite(ToBufferCache, 0, 255, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err != nil {
		t.Fatal(op.Err)
	}
	if _, hit := op.Stats.PerIONodeScatterNs[3]; !hit {
		t.Errorf("subfile 0 should live on I/O node 3; scatter map: %v", op.Stats.PerIONodeScatterNs)
	}
}

// TestTraceRecordsProtocol: an enabled trace captures sends, receives
// and scatters of a write in time order.
func TestTraceRecordsProtocol(t *testing.T) {
	w := newMatrixWorkload(t, "c", 32)
	tr := w.c.EnableTrace()
	w.writeAll(t, ToBufferCache)
	if tr.Len() == 0 {
		t.Fatal("trace empty")
	}
	events := tr.Events()
	last := int64(-1)
	var sends, scatters int
	for _, e := range events {
		if e.At < last {
			t.Fatalf("trace out of order at %v", e)
		}
		last = e.At
		switch {
		case len(e.Action) >= 4 && e.Action[:4] == "send":
			sends++
		case len(e.Action) >= 7 && e.Action[:7] == "scatter":
			scatters++
		}
	}
	if sends == 0 || scatters != 16 {
		t.Errorf("trace has %d sends, %d scatters (want >0, 16)", sends, scatters)
	}
}

// TestDisplacedFile: a file whose partitioning pattern starts past a
// header region (non-zero displacement) serves views correctly.
func TestDisplacedFile(t *testing.T) {
	const n = 32
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	phys := part.MustFile(16, layout(t, "c", n))
	f, err := c.CreateFile("displaced", phys, nil)
	if err != nil {
		t.Fatal(err)
	}
	logical := part.MustFile(16, layout(t, "r", n))
	per := int64(n * n / 4)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i*5 + 1)
	}
	views := make([]*View, 4)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		views[node] = v
		op, err := v.StartWrite(ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
	}
	// Subfile content equals the decomposition of the image (element
	// linear spaces start at the shared displacement).
	want := redist.SplitFile(phys, img)
	for e := range want {
		if !bytes.Equal(f.Subfile(e), want[e]) {
			t.Fatalf("displaced subfile %d differs", e)
		}
	}
	for node := 0; node < 4; node++ {
		out := make([]byte, per)
		op, err := views[node].StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			t.Fatalf("displaced read-back differs at node %d", node)
		}
	}
}

// TestOverwrite: a second write to the same view window replaces the
// data (last writer wins, like any file).
func TestOverwrite(t *testing.T) {
	w := newMatrixWorkload(t, "b", 32)
	per := w.n * w.n / 4
	v := w.views[0]
	first := make([]byte, per)
	for i := range first {
		first[i] = 0x11
	}
	op, err := v.StartWrite(ToBufferCache, 0, per-1, first)
	if err != nil {
		t.Fatal(err)
	}
	w.c.RunAll()
	if op.Err != nil {
		t.Fatal(op.Err)
	}
	second := make([]byte, per/2)
	for i := range second {
		second[i] = 0x22
	}
	op, err = v.StartWrite(ToBufferCache, 0, per/2-1, second)
	if err != nil {
		t.Fatal(err)
	}
	w.c.RunAll()
	if op.Err != nil {
		t.Fatal(op.Err)
	}
	out := make([]byte, per)
	rop, err := v.StartRead(0, per-1, out)
	if err != nil {
		t.Fatal(err)
	}
	w.c.RunAll()
	if rop.Err != nil {
		t.Fatal(rop.Err)
	}
	for i := int64(0); i < per; i++ {
		want := byte(0x11)
		if i < per/2 {
			want = 0x22
		}
		if out[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, out[i], want)
		}
	}
}

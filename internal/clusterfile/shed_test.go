package clusterfile

import (
	"context"
	"errors"
	"strings"
	"testing"

	"parafile/internal/part"
	"parafile/internal/qos"
)

// shed_test.go pins the third outcome class: a node that answers with
// admission-control backpressure is SHED — not failed (it is healthy),
// not cancelled (the caller did not give up). The contract callers
// rely on: shed never trips fail-fast cancellation of the healthy
// siblings, and the whole partial error still matches
// qos.ErrOverloaded so retry loops can tell backpressure from damage.

// shedStorage refuses writes to one subfile with a typed overload, as
// a shedding remote daemon does through the rpc transport.
type shedStorage struct {
	memStorage
	shed bool
}

func (s *shedStorage) WriteAt(p []byte, off int64) error {
	if s.shed {
		return &qos.Overload{Reason: "injected"}
	}
	return s.memStorage.WriteAt(p, off)
}

func shedCluster(t *testing.T, failFast bool) (*Cluster, *View, int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.FailFast = failFast
	cfg.Storage = func(_ string, sub int) (Storage, error) {
		return &shedStorage{shed: sub == 0}, nil
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.CreateFile("shedding", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.SetView(0, part.MustFile(0, rows), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, n * n / 4
}

// TestShedOutcomeDoesNotTripFailFast: with fail-fast on, a hard
// failure cancels the siblings — a shed must not, because the shed
// node asks for a later retry while the rest of the collective is
// landing bytes on healthy nodes.
func TestShedOutcomeDoesNotTripFailFast(t *testing.T) {
	c, v, per := shedCluster(t, true)
	buf := make([]byte, per)
	op, err := v.StartWrite(ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if op.Err == nil {
		t.Fatal("write against a shedding subfile reported no error")
	}
	var pe *PartialError
	if !errors.As(op.Err, &pe) {
		t.Fatalf("op error is %T (%v), want *PartialError", op.Err, op.Err)
	}
	if !errors.Is(op.Err, qos.ErrOverloaded) {
		t.Fatalf("partial error does not match qos.ErrOverloaded: %v", op.Err)
	}
	shed := pe.Nodes(OutcomeShed)
	if len(shed) == 0 {
		t.Fatalf("no shed outcomes in %v", pe)
	}
	if failed := pe.Nodes(OutcomeFailed); len(failed) != 0 {
		t.Fatalf("shed answers recorded as hard failures on nodes %v", failed)
	}
	if cancelled := pe.Nodes(OutcomeCancelled); len(cancelled) != 0 {
		t.Fatalf("shed tripped fail-fast: siblings %v cancelled", cancelled)
	}
	if ok := pe.Nodes(OutcomeOK); len(ok) == 0 {
		t.Fatal("healthy siblings landed no bytes while one node shed")
	}
	if !strings.Contains(pe.Error(), "shed") {
		t.Fatalf("rendering %q does not name the shed nodes", pe.Error())
	}
	if c.K.Pending() != 0 {
		t.Errorf("kernel left %d pending events", c.K.Pending())
	}
}

// TestOutcomePrecedence: failed dominates shed dominates cancelled —
// whichever order the answers arrive in.
func TestOutcomePrecedence(t *testing.T) {
	hard := errors.New("disk on fire")
	over := &qos.Overload{Reason: "queue_full"}

	s := newOutcomeSet("write")
	s.fail(1, hard)
	s.shed(1, over) // shed after a hard failure must not mask it
	if o := s.get(1); o.State != OutcomeFailed || o.Err != hard {
		t.Fatalf("node 1 = %v/%v, want failed/%v", o.State, o.Err, hard)
	}

	s.shed(2, over)
	s.cancel(2, context.Canceled) // cancel after shed keeps the shed
	if o := s.get(2); o.State != OutcomeShed {
		t.Fatalf("node 2 = %v, want shed", o.State)
	}

	s.shed(3, over)
	s.fail(3, hard) // a later hard failure upgrades a shed
	if o := s.get(3); o.State != OutcomeFailed {
		t.Fatalf("node 3 = %v, want failed", o.State)
	}

	// Shed counts as non-OK for quorum: a group whose only answer was
	// shed misses quorum and the operation fails.
	q := newOutcomeSet("write")
	q.group(groupKey(0), 1)
	q.shed(0, over)
	err, degraded := q.finalize()
	if err == nil {
		t.Fatalf("quorum met by a shed answer (degraded=%v)", degraded)
	}
}

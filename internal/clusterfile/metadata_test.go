package clusterfile

import (
	"bytes"
	"testing"

	"parafile/internal/part"
)

// TestMetadataRoundTrip: a file written in one cluster session is
// reopened from its saved metadata in another, with subfiles restored
// from disk.
func TestMetadataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 32
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i * 3)
	}
	per := int64(n * n / 4)

	// Session 1: create, write, save metadata.
	{
		cfg := DefaultConfig()
		cfg.Storage = DirStorageFactory(dir)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cols, _ := part.ColBlocks(n, n, 4)
		f, err := c.CreateFile("persist", part.MustFile(0, cols), []int{1, 0, 3, 2})
		if err != nil {
			t.Fatal(err)
		}
		rows, _ := part.RowBlocks(n, n, 4)
		logical := part.MustFile(0, rows)
		for node := 0; node < 4; node++ {
			v, err := f.SetView(node, logical, node)
			if err != nil {
				t.Fatal(err)
			}
			op, err := v.StartWrite(ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
			if err != nil {
				t.Fatal(err)
			}
			c.RunAll()
			if op.Err != nil {
				t.Fatal(op.Err)
			}
		}
		if err := f.SaveMetadata(dir); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// Session 2: a fresh cluster reopens the file. The storage factory
	// must not truncate existing subfiles, so open read-write without
	// O_TRUNC via a reopening factory.
	cfg := DefaultConfig()
	cfg.Storage = ReopenDirStorageFactory(dir)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.LoadMetadata(dir, "persist")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Name != "persist" || f.Phys.Pattern.Len() != 4 {
		t.Fatalf("metadata lost identity: %q / %d elements", f.Name, f.Phys.Pattern.Len())
	}
	if f.Assign[0] != 1 || f.Assign[3] != 2 {
		t.Errorf("assignment lost: %v", f.Assign)
	}
	// Read the data back through a view.
	rows, _ := part.RowBlocks(n, n, 4)
	logical := part.MustFile(0, rows)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			t.Fatalf("node %d: restored data differs", node)
		}
	}
}

func TestMetadataCorruption(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := part.ColBlocks(32, 32, 4)
	f, err := c.CreateFile("m", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.EncodeMetadata()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := New(cfg)
	if _, err := c2.OpenFile(blob); err != nil {
		t.Fatalf("valid metadata rejected: %v", err)
	}
	for cut := 0; cut < len(blob); cut++ {
		c3, _ := New(cfg)
		if _, err := c3.OpenFile(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := c2.OpenFile([]byte("JUNKJUNK")); err == nil {
		t.Error("bad magic accepted")
	}
}

// Package clusterfile reimplements the case study of §8: the data
// operations of the Clusterfile parallel file system, built on the
// mapping functions and the redistribution algorithm.
//
// The cluster divides nodes into compute nodes and I/O nodes. A file
// is physically partitioned into subfiles stored on the I/O nodes'
// disks; applications on compute nodes set views — logical partitions
// described by the same file model. Setting a view intersects it with
// every subfile and stores the two projections of each intersection:
// PROJ_V at the compute node and PROJ_S at the subfile's I/O node.
// Writes then follow the two-sided protocol of §8.1: map the access
// interval's extremities onto each subfile, gather non-contiguous view
// data into a message buffer, send, and scatter into the subfile at
// the I/O node (reads are reverse-symmetrical).
//
// Data movement is performed for real on in-memory subfiles, with the
// real algorithms; network and disk time come from the discrete-event
// models in netsim and disksim, so the §8.2 evaluation can be
// regenerated deterministically (see bench_test.go and
// cmd/redistbench).
package clusterfile

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"parafile/internal/core"
	"parafile/internal/disksim"
	"parafile/internal/netsim"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/sim"
)

// WriteMode selects the storage tier the evaluation writes to —
// Table 1/2 report both.
type WriteMode int

const (
	// ToBufferCache stops at the I/O node's buffer cache (the paper's
	// "bc" columns).
	ToBufferCache WriteMode = iota
	// ToDisk writes through to the platter (the "disk" columns).
	ToDisk
)

func (m WriteMode) String() string {
	if m == ToDisk {
		return "disk"
	}
	return "bc"
}

// Config describes a cluster.
type Config struct {
	ComputeNodes int
	IONodes      int
	Net          netsim.Config
	Disk         disksim.Config
	// CopyBandwidthBytesPerSec is the era memory-copy bandwidth used
	// to model gather/scatter CPU time in virtual time (the real
	// copies still run, and are reported separately).
	CopyBandwidthBytesPerSec int64
	// CopySegmentOverheadNs is the per-additional-segment cost of a
	// non-contiguous copy.
	CopySegmentOverheadNs int64
	// Storage creates the byte store for each subfile. Nil selects
	// in-memory subfiles; DirStorageFactory stores them as real files,
	// as the original Clusterfile I/O nodes did. Ignored when Transport
	// is set.
	Storage StorageFactory
	// Transport decides where subfile bytes physically live. Nil
	// selects the in-process transport over the Storage factory (the
	// pre-transport semantics, unchanged); rpc.NewTransport sends the
	// protocol's storage operations to remote parafiled I/O-node
	// daemons over TCP instead. The virtual-time network and disk
	// models are unaffected either way.
	Transport Transport
	// OpTimeout, when positive, bounds every collective operation
	// (write, read, redistribute): the operation context the transport
	// sees carries this deadline, so a hung I/O node turns into a
	// cancelled/failed outcome instead of wedging the whole collective.
	// Zero (the default) sets no deadline.
	OpTimeout time.Duration
	// FailFast, when true, cancels an operation's outstanding sibling
	// transfers as soon as one I/O node fails hard: the remaining nodes
	// report OutcomeCancelled in the PartialError instead of running.
	// The default (false) lets every node finish independently, so a
	// single bad node costs only its own window — the repairable case.
	FailFast bool
	// Replication materializes every subfile on this many I/O nodes:
	// replica r of subfile s lives on node (assign[s]+r) mod IONodes,
	// so each subfile's placement group is R distinct nodes (primary
	// first). Writes scatter to all R placements; reads fail over
	// replica by replica on transport errors. 0 and 1 both mean
	// unreplicated (the pre-replication semantics, unchanged).
	Replication int
	// WriteQuorum is how many replica acknowledgements a subfile's
	// write needs to succeed. 0 (the default) requires all R; a smaller
	// quorum trades durability for availability — the write succeeds
	// while a node is down, reports the stale placements in the op's
	// Degraded field, and Repair heals them when the node returns.
	WriteQuorum int
	// ViewCache, when non-nil, memoizes the per-(view element, subfile)
	// intersection and projection products SetView computes, keyed by
	// partition geometry. Repeated view setting over the same
	// view/layout pair then costs a cache lookup instead of a full
	// intersection — extending the paper's §8.2 amortization argument
	// (pay t_i once per view set) across view sets. A cache may be
	// shared by several clusters.
	ViewCache *redist.PairCache
	// PlanCache, when non-nil, memoizes the redistribution plans
	// StartRedistribute compiles, keyed the same way.
	PlanCache *redist.PlanCache
	// Metrics, when non-nil, receives the cluster's operation series
	// (metrics.go): gather/scatter volumes and latencies, protocol
	// message counts, buffer-pool traffic, per-I/O-node byte totals.
	// Nil (the default) records nothing at zero cost.
	Metrics *obs.Registry
	// Trace, when non-nil, is the parent wall-clock span under which
	// the host-side phases of SetView, writes, reads and
	// redistributions open children — the real-time complement of the
	// virtual-time sim.Tracer.
	Trace *obs.Span
	// Tracer, when non-nil, turns every collective operation into a
	// distributed trace: writes, reads and redistributions open a root
	// span registered with the tracer, the operation context carries it
	// to the transport, and (over the RPC transport against tracing
	// daemons) the servers' child spans come back to be stitched into
	// one cross-node tree, browsable via the tracer's ring and
	// /debug/trace. Nil records nothing at zero cost.
	Tracer *obs.Tracer
	// SlowOpThreshold, when positive and Log is set, emits one
	// structured warning per collective operation that ran longer
	// (wall-clock), carrying the op's trace_id so it can be chased into
	// `parafilectl trace`.
	SlowOpThreshold time.Duration
	// Log receives the cluster's structured op log lines (slow ops,
	// failed ops). Nil disables logging. Only operations under a Tracer
	// are logged — the trace span is what measures them.
	Log *slog.Logger
}

// DefaultConfig mirrors the paper's testbed subset: four compute nodes
// and four I/O nodes on a 2002 Myrinet/IDE cluster with 800 MHz
// Pentium III hosts.
func DefaultConfig() Config {
	return Config{
		ComputeNodes:             4,
		IONodes:                  4,
		Net:                      netsim.Myrinet2002(),
		Disk:                     disksim.IDE2002(),
		CopyBandwidthBytesPerSec: 200 * 1000 * 1000,
		CopySegmentOverheadNs:    700,
	}
}

// Cluster is a simulated Clusterfile deployment. Network node ids are
// compute nodes first (0..ComputeNodes-1), then I/O nodes.
type Cluster struct {
	cfg       Config
	K         *sim.Kernel
	Net       *netsim.Network
	Disks     []*disksim.Disk
	files     map[string]*File
	tracer    *sim.Tracer
	met       cfMetrics
	span      *obs.Span
	slow      obs.SlowOpLogger
	transport Transport
	repl      int // normalized Config.Replication (>= 1)
	quorum    int // normalized Config.WriteQuorum (1..repl)
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.ComputeNodes < 1 || cfg.IONodes < 1 {
		return nil, fmt.Errorf("clusterfile: need at least one compute and one I/O node")
	}
	repl := cfg.Replication
	if repl == 0 {
		repl = 1
	}
	if repl < 1 || repl > cfg.IONodes {
		return nil, fmt.Errorf("clusterfile: replication %d outside [1,%d I/O nodes]", repl, cfg.IONodes)
	}
	quorum := cfg.WriteQuorum
	if quorum == 0 {
		quorum = repl
	}
	if quorum < 1 || quorum > repl {
		return nil, fmt.Errorf("clusterfile: write quorum %d outside [1,replication %d]", quorum, repl)
	}
	k := sim.NewKernel()
	c := &Cluster{
		cfg:    cfg,
		K:      k,
		Net:    netsim.New(k, cfg.Net, cfg.ComputeNodes+cfg.IONodes),
		Disks:  make([]*disksim.Disk, cfg.IONodes),
		files:  make(map[string]*File),
		met:    newCFMetrics(cfg.Metrics, cfg.IONodes),
		span:   cfg.Trace,
		slow:   obs.SlowOpLogger{Log: cfg.Log, Threshold: cfg.SlowOpThreshold},
		repl:   repl,
		quorum: quorum,
	}
	for i := range c.Disks {
		c.Disks[i] = disksim.New(k, cfg.Disk)
	}
	c.transport = cfg.Transport
	if c.transport == nil {
		c.transport = NewLocalTransport(cfg.Storage)
	}
	return c, nil
}

// ioNet returns the network node id of I/O node i.
func (c *Cluster) ioNet(i int) int { return c.cfg.ComputeNodes + i }

// opCtx derives a collective operation's context from the caller's:
// the configured per-op deadline plus a cancel the operation uses for
// release and sibling fail-fast. A nil ctx means background.
func (c *Cluster) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.cfg.OpTimeout > 0 {
		return context.WithTimeout(ctx, c.cfg.OpTimeout)
	}
	return context.WithCancel(ctx)
}

// startOp opens a traced root span for one collective operation and
// threads it through the operation context, so every transport RPC the
// operation issues joins the trace (and, against tracing daemons, the
// server-side child spans come back for stitching). With no Tracer
// configured the span is nil and octx passes through unchanged — the
// untraced path costs nothing.
func (c *Cluster) startOp(octx context.Context, name string) (context.Context, *obs.Span) {
	sp := c.cfg.Tracer.StartOp(name)
	return obs.ContextWithSpan(octx, sp), sp
}

// finishOp seals one collective operation's trace: error mark,
// publication into the tracer's recent ring, and the structured
// slow-op / failed-op log line. Nil span (untraced cluster) is free.
func (c *Cluster) finishOp(sp *obs.Span, opErr error) {
	if sp == nil {
		return
	}
	if opErr != nil {
		sp.Fail()
	}
	d := sp.End()
	c.cfg.Tracer.FinishOp(sp)
	c.slow.Observe(sp.Name(), sp.TraceID(), d, opErr)
}

// abortStart finishes a traced operation that failed in its
// synchronous start phase, before any delivery went pending.
func (c *Cluster) abortStart(cancel context.CancelFunc, sp *obs.Span, err error) error {
	cancel()
	c.finishOp(sp, err)
	return err
}

// stampTrace tags a PartialError with the operation's trace ID, so a
// partial-failure report can be chased straight into its trace tree.
func stampTrace(opErr error, sp *obs.Span) {
	var pe *PartialError
	if errors.As(opErr, &pe) {
		pe.TraceID = sp.TraceID()
	}
}

// EnableTrace attaches a virtual-time trace recorder to the cluster
// (network sends/receives plus protocol steps) and returns it.
func (c *Cluster) EnableTrace() *sim.Tracer {
	c.tracer = sim.NewTracer()
	c.Net.SetTracer(c.tracer)
	return c.tracer
}

// File is an open Clusterfile file: a physical partition whose
// subfiles live on I/O nodes, materialized on Replication placement
// groups.
type File struct {
	Name string
	Phys *part.File
	// Assign maps each subfile to its primary I/O node (Placement[0]).
	Assign []int
	// Replication is the file's replica count R (>= 1).
	Replication int
	// Placement maps [replica][subfile] -> I/O node: row 0 is the
	// primary assignment, row r places each subfile r nodes further
	// round the ring, so every subfile's placement group is R distinct
	// nodes. Files opened through CreateFilePlacementCtx carry explicit
	// rows instead of the computed ring.
	Placement [][]int
	// Epoch is the placement epoch the file's handles were opened at
	// (zero for files outside the metadata service's regime). Epoch-
	// aware transports stamp it on every storage op.
	Epoch uint64
	// replicas holds [replica][subfile] handles; replicas[0] is the
	// primary tier.
	replicas [][]SubfileHandle
	mappers  []*core.Mapper
	cluster  *Cluster
}

// ReplicaName is the transport-level store name of replica tier r of a
// file: replica 0 keeps the plain name (unreplicated layouts are
// byte-identical on disk to the pre-replication code), later tiers get
// a "~r<r>" suffix so a directory or daemon hosting several tiers of
// the same subfile keeps them apart.
func ReplicaName(name string, r int) string {
	if r == 0 {
		return name
	}
	return fmt.Sprintf("%s~r%d", name, r)
}

// handle returns the handle of replica r of subfile sub.
func (f *File) handle(r, sub int) SubfileHandle { return f.replicas[r][sub] }

// CreateFile registers a file with the given physical partition. The
// assignment maps each subfile to an I/O node; when nil, subfiles are
// assigned round-robin.
func (c *Cluster) CreateFile(name string, phys *part.File, assign []int) (*File, error) {
	return c.CreateFileCtx(context.Background(), name, phys, assign)
}

// CreateFileCtx is CreateFile bounded by a context: the transport's
// store-opening RPCs observe ctx (plus the cluster's OpTimeout).
func (c *Cluster) CreateFileCtx(ctx context.Context, name string, phys *part.File, assign []int) (*File, error) {
	return c.createFileCtx(ctx, name, phys, assign, c.repl)
}

func (c *Cluster) createFileCtx(ctx context.Context, name string, phys *part.File, assign []int, repl int) (*File, error) {
	if repl < 1 || repl > c.cfg.IONodes {
		return nil, fmt.Errorf("clusterfile: replication %d outside [1,%d I/O nodes]", repl, c.cfg.IONodes)
	}
	n := phys.Pattern.Len()
	if assign == nil {
		assign = make([]int, n)
		for i := range assign {
			assign[i] = i % c.cfg.IONodes
		}
	}
	if len(assign) != n {
		return nil, fmt.Errorf("clusterfile: %d assignments for %d subfiles", len(assign), n)
	}
	placement := make([][]int, repl)
	placement[0] = assign
	for r := 1; r < repl; r++ {
		row := make([]int, n)
		for i := range row {
			row[i] = (assign[i] + r) % c.cfg.IONodes
		}
		placement[r] = row
	}
	return c.createFilePlacement(ctx, name, phys, placement, 0)
}

// CreateFilePlacement registers a file with explicit placement rows —
// [replica][subfile] -> I/O node — instead of the computed
// (assign[s]+r) mod IONodes ring. The rebalance driver needs this: it
// opens old and new generations inside one union cluster whose node
// count matches neither generation's, so ring arithmetic would place
// replicas wrong.
func (c *Cluster) CreateFilePlacement(name string, phys *part.File, placement [][]int) (*File, error) {
	return c.CreateFilePlacementCtx(context.Background(), name, phys, placement, 0)
}

// CreateFilePlacementCtx is CreateFilePlacement bounded by a context
// and stamped with a placement epoch: when the transport is
// epoch-aware (EpochTransport) every storage op of the file's handles
// carries the epoch, so daemons reject stale ops. Epoch zero opens
// unstamped.
func (c *Cluster) CreateFilePlacementCtx(ctx context.Context, name string, phys *part.File, placement [][]int, epoch uint64) (*File, error) {
	if len(placement) < 1 {
		return nil, fmt.Errorf("clusterfile: placement needs at least one replica row")
	}
	if len(placement) > c.cfg.IONodes {
		return nil, fmt.Errorf("clusterfile: %d replica rows over %d I/O nodes", len(placement), c.cfg.IONodes)
	}
	n := phys.Pattern.Len()
	for r, row := range placement {
		if len(row) != n {
			return nil, fmt.Errorf("clusterfile: placement row %d has %d entries for %d subfiles", r, len(row), n)
		}
	}
	return c.createFilePlacement(ctx, name, phys, placement, epoch)
}

func (c *Cluster) createFilePlacement(ctx context.Context, name string, phys *part.File, placement [][]int, epoch uint64) (*File, error) {
	if _, dup := c.files[name]; dup {
		return nil, fmt.Errorf("clusterfile: file %q already exists", name)
	}
	repl := len(placement)
	n := phys.Pattern.Len()
	for _, row := range placement {
		for _, io := range row {
			if io < 0 || io >= c.cfg.IONodes {
				return nil, fmt.Errorf("clusterfile: I/O node %d out of range [0,%d)", io, c.cfg.IONodes)
			}
		}
	}
	f := &File{
		Name:        name,
		Phys:        phys,
		Assign:      placement[0],
		Replication: repl,
		Placement:   placement,
		Epoch:       epoch,
		replicas:    make([][]SubfileHandle, repl),
		mappers:     make([]*core.Mapper, n),
		cluster:     c,
	}
	for i := 0; i < n; i++ {
		m, err := core.NewMapper(phys, i)
		if err != nil {
			return nil, err
		}
		f.mappers[i] = m
	}
	octx, cancel := c.opCtx(ctx)
	defer cancel()
	et, epochAware := c.transport.(EpochTransport)
	for r := 0; r < repl; r++ {
		var handles []SubfileHandle
		var err error
		if epochAware && epoch != 0 {
			handles, err = et.OpenEpoch(octx, ReplicaName(name, r), phys, f.Placement[r], epoch)
		} else {
			handles, err = c.transport.Open(octx, ReplicaName(name, r), phys, f.Placement[r])
		}
		if err != nil {
			for _, tier := range f.replicas[:r] {
				for _, h := range tier {
					h.Close()
				}
			}
			return nil, fmt.Errorf("clusterfile: storage for %q (replica %d): %w", name, r, err)
		}
		f.replicas[r] = handles
	}
	c.files[name] = f
	return f, nil
}

// Subfile returns the stored bytes of subfile i (the I/O node's
// on-disk image). It panics on storage errors — use ReadSubfile when
// the subfile lives behind a fallible transport.
func (f *File) Subfile(i int) []byte {
	buf, err := f.ReadSubfile(i)
	if err != nil {
		panic(err)
	}
	return buf
}

// ReadSubfile returns the stored bytes of subfile i, surfacing
// transport errors.
func (f *File) ReadSubfile(i int) ([]byte, error) {
	return f.ReadSubfileCtx(context.Background(), i)
}

// ReadSubfileCtx is ReadSubfile bounded by a context. With replication
// it fails over replica by replica: a transport error against one
// placement moves on to the next (ticking the failover counter), so a
// single dead node is invisible to the caller. Context errors abort
// immediately — a cancelled operation must not masquerade as a node
// fault.
func (f *File) ReadSubfileCtx(ctx context.Context, i int) ([]byte, error) {
	octx, cancel := f.cluster.opCtx(ctx)
	defer cancel()
	var lastErr error
	for r := 0; r < f.Replication; r++ {
		if r > 0 {
			f.cluster.met.failovers.Inc()
		}
		n, err := f.handle(r, i).Len(octx)
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		buf := make([]byte, n)
		if n == 0 {
			return buf, nil
		}
		if err := f.handle(r, i).ReadAt(octx, buf, 0); err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		return buf, nil
	}
	return nil, lastErr
}

// Close releases the subfile stores of every replica tier (syncing
// durable ones).
func (f *File) Close() error {
	var first error
	for _, tier := range f.replicas {
		for _, h := range tier {
			if err := h.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// growReplica guarantees replica r of subfile i holds at least n bytes.
func (f *File) growReplica(ctx context.Context, r, i int, n int64) error {
	return f.handle(r, i).EnsureLen(ctx, n)
}

// subView is the per-subfile state a view keeps after SetView.
type subView struct {
	subfile int
	inter   *redist.Intersection
	projV   *redist.Projection // stored at the compute node
	projS   *redist.Projection // stored at the subfile's I/O node
	mapper  *core.Mapper       // subfile mapper (I/O node side)
}

// View is a logical partition element set by a compute node on an open
// file.
type View struct {
	file    *File
	node    int // compute node id
	logical *part.File
	elem    int
	mapper  *core.Mapper
	subs    []subView

	// TIntersect is the real wall time spent computing the
	// intersections and projections at view-set time — the paper's
	// t_i.
	TIntersect time.Duration
	// SetViewMsgBytes is the wire volume of the PROJ_S messages sent
	// to the I/O nodes at view-set time.
	SetViewMsgBytes int64
}

// SetView sets view element elem of the logical partition lf on the
// file, for the given compute node (§8.1 "View set"). The
// intersections with every subfile and both projections are computed
// here, once; their cost is recorded as TIntersect.
func (f *File) SetView(node int, lf *part.File, elem int) (*View, error) {
	return f.SetViewCtx(context.Background(), node, lf, elem)
}

// SetViewCtx is SetView bounded by a context: cancellation between
// per-subfile intersections aborts the view set early.
func (f *File) SetViewCtx(ctx context.Context, node int, lf *part.File, elem int) (*View, error) {
	octx, cancelOp := f.cluster.opCtx(ctx)
	defer cancelOp()
	if node < 0 || node >= f.cluster.cfg.ComputeNodes {
		return nil, fmt.Errorf("clusterfile: compute node %d out of range [0,%d)",
			node, f.cluster.cfg.ComputeNodes)
	}
	vm, err := core.NewMapper(lf, elem)
	if err != nil {
		return nil, err
	}
	v := &View{file: f, node: node, logical: lf, elem: elem, mapper: vm}
	// The cached path costs a fingerprint lookup instead of the full
	// intersection; TIntersect then records the amortized cost, which
	// is the point of the cache.
	intersectProject := redist.IntersectProjectElements
	if cache := f.cluster.cfg.ViewCache; cache != nil {
		intersectProject = cache.IntersectProject
	}
	span := f.cluster.span.StartChild("clusterfile.setview")
	defer span.End()
	start := time.Now()
	for s := 0; s < f.Phys.Pattern.Len(); s++ {
		if err := octx.Err(); err != nil {
			return nil, err
		}
		inter, pv, ps, err := intersectProject(lf, elem, f.Phys, s)
		if err != nil {
			return nil, err
		}
		if inter.Empty() {
			continue
		}
		// PROJ_S travels to the subfile's I/O node over the wire
		// (§8.1 "view set") — with replication, to every node of the
		// subfile's placement group, since each replica server scatters
		// independently. The server side operates on the decoded copy,
		// exactly as the real system would.
		wire := redist.EncodeProjection(ps)
		decoded, err := redist.DecodeProjection(wire)
		if err != nil {
			return nil, fmt.Errorf("clusterfile: projection wire round trip: %w", err)
		}
		c := f.cluster
		for r := 0; r < f.Replication; r++ {
			v.SetViewMsgBytes += int64(len(wire))
			if err := c.Net.Send(node, c.ioNet(f.Placement[r][s]), int64(len(wire)), nil); err != nil {
				return nil, err
			}
			c.met.recordNet(int64(len(wire)))
		}
		v.subs = append(v.subs, subView{
			subfile: s, inter: inter, projV: pv, projS: decoded, mapper: f.mappers[s],
		})
	}
	v.TIntersect = time.Since(start)
	f.cluster.met.setViews.Inc()
	f.cluster.met.setViewNs.Observe(v.TIntersect.Nanoseconds())
	return v, nil
}

// Size returns the number of view bytes per pattern repetition.
func (v *View) Size() int64 { return v.mapper.ElementSize() }

// Node returns the compute node that owns the view.
func (v *View) Node() int { return v.node }

// Subfiles returns the indices of the subfiles the view overlaps.
func (v *View) Subfiles() []int {
	out := make([]int, len(v.subs))
	for i, s := range v.subs {
		out[i] = s.subfile
	}
	return out
}

package clusterfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// TestDiskBackedSubfiles: the full write/read cycle works with
// subfiles stored as real files, and the on-disk bytes match the
// expected physical decomposition.
func TestDiskBackedSubfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Storage = DirStorageFactory(dir)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.CreateFile("disk.mat", part.MustFile(0, cols), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	logical := part.MustFile(0, rows)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i*7 + 3)
	}
	per := int64(n * n / 4)
	ops := make([]*WriteOp, 4)
	views := make([]*View, 4)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		views[node] = v
		op, err := v.StartWrite(ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		ops[node] = op
	}
	c.RunAll()
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d disk-backed write failed: %v", i, op.Err)
		}
	}
	// The real files on disk hold exactly the column decomposition.
	want := redist.SplitFile(part.MustFile(0, cols), img)
	for e := 0; e < 4; e++ {
		path := filepath.Join(dir, "disk.mat.subfile0"+string(rune('0'+e)))
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("subfile file missing: %v", err)
		}
		if !bytes.Equal(got, want[e]) {
			t.Fatalf("on-disk subfile %d differs from expected decomposition", e)
		}
	}
	// Read back through the views from disk.
	for node := 0; node < 4; node++ {
		out := make([]byte, per)
		op, err := views[node].StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		c.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			t.Fatalf("node %d disk-backed read-back differs", node)
		}
	}
}

func TestMemStorageBounds(t *testing.T) {
	m := &memStorage{}
	if err := m.EnsureLen(8); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte{1, 2}, 7); err == nil {
		t.Error("overflowing write accepted")
	}
	if err := m.ReadAt(make([]byte, 2), 7); err == nil {
		t.Error("overflowing read accepted")
	}
	if err := m.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if err := m.WriteAt([]byte{9}, 3); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 1)
	if err := m.ReadAt(p, 3); err != nil || p[0] != 9 {
		t.Errorf("read back = %v, %v", p, err)
	}
	// Growing preserves content.
	if err := m.EnsureLen(16); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAt(p, 3); err != nil || p[0] != 9 {
		t.Errorf("content lost on grow: %v, %v", p, err)
	}
}

func TestFileStorageBounds(t *testing.T) {
	dir := t.TempDir()
	st, err := DirStorageFactory(dir)("bounds", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.EnsureLen(8); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 8 {
		t.Errorf("Len = %d, want 8", st.Len())
	}
	if err := st.WriteAt([]byte{1, 2}, 7); err == nil {
		t.Error("overflowing write accepted")
	}
	if err := st.WriteAt([]byte{5, 6}, 2); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 2)
	if err := st.ReadAt(p, 2); err != nil || p[0] != 5 || p[1] != 6 {
		t.Errorf("read back = %v, %v", p, err)
	}
	// Shrinking never happens: EnsureLen with smaller n is a no-op.
	if err := st.EnsureLen(4); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 8 {
		t.Errorf("EnsureLen shrank the store to %d", st.Len())
	}
}

// TestStorageSync: Sync is a no-op for memory and flushes (without
// erroring or losing content) for files; Close implies a final Sync so
// another process sees the bytes afterwards.
func TestStorageSync(t *testing.T) {
	m := &memStorage{}
	if err := m.Sync(); err != nil {
		t.Fatalf("mem sync: %v", err)
	}

	dir := t.TempDir()
	st, err := DirStorageFactory(dir)("synced", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureLen(8); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("file sync: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "synced.subfile00"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable!" {
		t.Fatalf("on-disk content %q after sync+close", got)
	}
}

// TestFileStorageEnsureLenReopen: when the cached size trails the real
// file (a store handed out by the reopen factory in a fresh process,
// or a file grown behind the store's back), EnsureLen must pick up the
// on-disk size instead of truncating the file down from a stale size.
func TestFileStorageEnsureLenReopen(t *testing.T) {
	dir := t.TempDir()
	// Write 16 bytes and close, as a previous daemon run would.
	first, err := DirStorageFactory(dir)("grown", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.EnsureLen(16); err != nil {
		t.Fatal(err)
	}
	content := []byte("sixteen bytes!!!")
	if err := first.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and ask for less than what is on disk: the store must
	// adopt the on-disk size, not shrink the file.
	st, err := ReopenDirStorageFactory(dir)("grown", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 16 {
		t.Fatalf("reopened Len = %d, want 16", st.Len())
	}
	if err := st.EnsureLen(4); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 16 {
		t.Fatalf("EnsureLen(4) after reopen left Len = %d, want 16", st.Len())
	}

	// The hostile case: the file grows behind a store whose cached size
	// is stale (simulated by growing the on-disk file directly). A
	// subsequent EnsureLen between the stale size and the real size
	// must not truncate away the tail.
	if err := os.Truncate(filepath.Join(dir, "grown.subfile00"), 32); err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureLen(24); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 32 {
		t.Fatalf("EnsureLen(24) with a 32-byte file left Len = %d, want 32", st.Len())
	}
	got := make([]byte, 16)
	if err := st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content %q corrupted by EnsureLen, want %q", got, content)
	}
}

package clusterfile

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"parafile/internal/codec"
)

// metadata.go persists and restores file metadata — the displacement,
// the partitioning pattern, the subfile-to-I/O-node assignment and the
// replica count — in the binary wire format, so a file created in one
// cluster session can be reopened in another (the metadata-manager
// role of the real system).

// metadataMagic tags metadata blobs.
var metadataMagic = []byte("PFMD")

// EncodeMetadata serializes the file's description.
func (f *File) EncodeMetadata() ([]byte, error) {
	if len(f.Name) > 255 {
		return nil, fmt.Errorf("clusterfile: file name longer than 255 bytes")
	}
	body := codec.EncodeFile(f.Phys)
	if len(body) > 0xFFFF {
		return nil, fmt.Errorf("clusterfile: pattern encoding of %d bytes exceeds the metadata format", len(body))
	}
	if len(f.Assign) > 255 {
		return nil, fmt.Errorf("clusterfile: more than 255 subfiles")
	}
	buf := append([]byte(nil), metadataMagic...)
	buf = appendString(buf, f.Name)
	buf = appendBytes(buf, body)
	buf = append(buf, byte(len(f.Assign)))
	for _, io := range f.Assign {
		buf = append(buf, byte(io))
	}
	buf = append(buf, byte(f.Replication))
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = append(buf, byte(len(b)>>8), byte(len(b)))
	return append(buf, b...)
}

// OpenFile reconstructs a file from serialized metadata, registering
// it with the cluster under its stored name.
func (c *Cluster) OpenFile(meta []byte) (*File, error) {
	if len(meta) < len(metadataMagic) || string(meta[:4]) != string(metadataMagic) {
		return nil, fmt.Errorf("clusterfile: not a metadata blob")
	}
	meta = meta[4:]
	if len(meta) < 1 {
		return nil, fmt.Errorf("clusterfile: truncated metadata")
	}
	nameLen := int(meta[0])
	meta = meta[1:]
	if len(meta) < nameLen {
		return nil, fmt.Errorf("clusterfile: truncated name")
	}
	name := string(meta[:nameLen])
	meta = meta[nameLen:]
	if len(meta) < 2 {
		return nil, fmt.Errorf("clusterfile: truncated pattern")
	}
	bodyLen := int(meta[0])<<8 | int(meta[1])
	meta = meta[2:]
	if len(meta) < bodyLen {
		return nil, fmt.Errorf("clusterfile: truncated pattern body")
	}
	phys, err := codec.DecodeFile(meta[:bodyLen])
	if err != nil {
		return nil, err
	}
	meta = meta[bodyLen:]
	if len(meta) < 1 {
		return nil, fmt.Errorf("clusterfile: truncated assignment")
	}
	n := int(meta[0])
	meta = meta[1:]
	// The assignment is followed by exactly one replication byte: a
	// file reopens with the replication it was created with, regardless
	// of the opening cluster's default.
	if len(meta) != n+1 {
		return nil, fmt.Errorf("clusterfile: assignment holds %d bytes, want %d entries plus replication", len(meta), n)
	}
	repl := int(meta[n])
	assign := make([]int, n)
	for i := range assign {
		assign[i] = int(meta[i])
	}
	return c.createFileCtx(context.Background(), name, phys, assign, repl)
}

// SaveMetadata writes the metadata blob next to the subfiles of a
// directory-backed deployment.
func (f *File) SaveMetadata(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := f.EncodeMetadata()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, f.Name+".meta"), blob, 0o644)
}

// LoadMetadata reopens a file from a saved metadata blob.
func (c *Cluster) LoadMetadata(dir, name string) (*File, error) {
	blob, err := os.ReadFile(filepath.Join(dir, name+".meta"))
	if err != nil {
		return nil, err
	}
	return c.OpenFile(blob)
}

// Package qos protects a daemon from overload. It sits at the top of
// the request path and decides, per request, whether to admit, queue,
// or shed:
//
//  1. admission control — a bounded in-flight request count and a
//     global payload-memory budget cap what the daemon works on at
//     once, so queueing happens in one explicit place instead of as
//     unbounded goroutines and frame buffers;
//  2. weighted fair share — requests that cannot run immediately wait
//     in per-tenant FIFO queues drained by virtual-time (stride)
//     scheduling, cost = bytes/weight, so one hot tenant saturating
//     the daemon cannot starve the rest;
//  3. token-bucket quotas — per-tenant byte/sec and op/sec budgets
//     checked at arrival; a request over quota is refused immediately
//     with a RetryAfter telling the client when the bucket will cover
//     it;
//  4. load shedding — a full queue drops the oldest queued write
//     first (its client has waited longest and is the most likely to
//     have given up), and a request that queues past MaxWait is shed
//     where it stands. Control-plane operations (OpControl) bypass
//     all of it, so pings, stats, epoch fencing and metadata traffic
//     survive data-plane overload.
//
// Every refusal is a typed *Overload carrying a RetryAfter hint and
// matching the ErrOverloaded sentinel via errors.Is, so callers can
// treat shed work as backpressure — retry later — rather than as node
// failure. A nil *Limiter admits everything, which is how the rpc
// layer runs when qos is not configured.
package qos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"parafile/internal/obs"
)

// ErrOverloaded is the sentinel callers match with errors.Is to detect
// a shed/refused request anywhere in a wrapped chain (including a
// RemoteError that travelled over the wire, or an outcome inside a
// clusterfile.PartialError).
var ErrOverloaded = errors.New("qos: overloaded")

// Overload is the typed refusal. RetryAfter is the limiter's estimate
// of when a retry is worth attempting: the token-bucket deficit for
// quota refusals, the queue-residence bound for queue sheds.
type Overload struct {
	RetryAfter time.Duration
	// Reason is the refusal class: "queue_full", "timeout",
	// "quota_bytes", "quota_ops", or "injected" (fault harness).
	Reason string
}

func (e *Overload) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("qos: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("qos: overloaded (%s)", e.Reason)
}

// Is lets errors.Is match the sentinel through any wrapping.
func (e *Overload) Is(target error) bool { return target == ErrOverloaded }

// Op classifies a request for admission.
type Op int

const (
	// OpWrite is a payload-bearing data-plane write. Writes are the
	// first to shed: a dropped write is retried whole by the client
	// (never torn — it was refused before touching storage).
	OpWrite Op = iota
	// OpRead is a data-plane read.
	OpRead
	// OpControl is small control-plane work: pings (breaker probes),
	// stats, hellos, epoch fencing, metadata RPCs. Control ops bypass
	// quotas and queueing entirely so the control plane — and a
	// rebalance's fence protocol — keep working while the data plane
	// sheds.
	OpControl
)

func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpControl:
		return "control"
	}
	return "unknown"
}

// DefaultTenant is the fair-share key for connections that negotiated
// no tenant (legacy clients, or clients that never set one).
const DefaultTenant = "default"

// TenantLimit is one tenant's share and quota.
type TenantLimit struct {
	// Weight is the fair-share weight (default 1). A tenant with
	// weight 2 drains its queue twice as fast as a weight-1 tenant
	// under contention.
	Weight float64
	// BytesPerSec refills the byte token bucket; 0 means unlimited.
	BytesPerSec float64
	// OpsPerSec refills the op token bucket; 0 means unlimited.
	OpsPerSec float64
	// BurstBytes caps the byte bucket (default: one second of refill).
	BurstBytes float64
	// BurstOps caps the op bucket (default: one second of refill).
	BurstOps float64
}

func (tl TenantLimit) withDefaults() TenantLimit {
	if tl.Weight <= 0 {
		tl.Weight = 1
	}
	if tl.BurstBytes <= 0 {
		tl.BurstBytes = tl.BytesPerSec
	}
	if tl.BurstOps <= 0 {
		tl.BurstOps = tl.OpsPerSec
	}
	return tl
}

// Config sizes a Limiter.
type Config struct {
	// MaxInFlight bounds concurrently admitted data requests
	// (default 256).
	MaxInFlight int
	// MaxQueue bounds waiters across all tenant queues (default
	// 4*MaxInFlight). An arrival into a full queue sheds the oldest
	// queued write to make room; if nothing can be shed, the arrival
	// itself is refused.
	MaxQueue int
	// MemoryBytes is the global payload budget charged per admitted
	// request (default 256 MiB). A request larger than the whole
	// budget is clamped to it, so it can still run — alone.
	MemoryBytes int64
	// MaxWait bounds queue residence (default 1s): a request that has
	// not been dispatched by then is shed where it stands.
	MaxWait time.Duration
	// DefaultLimit applies to tenants absent from Tenants (weight 1,
	// no quotas when zero).
	DefaultLimit TenantLimit
	// Tenants maps tenant name to its share and quota.
	Tenants map[string]TenantLimit
	// Metrics receives the parafile_qos_* series; nil records nothing.
	Metrics *obs.Registry

	// now is the test clock hook (nil: time.Now).
	now func() time.Time
}

// Metric names exported by the limiter.
const (
	// MetricAdmitted counts admitted requests:
	// parafile_qos_admitted_total{op}.
	MetricAdmitted = "parafile_qos_admitted_total"
	// MetricShed counts refusals: parafile_qos_shed_total{reason}.
	MetricShed = "parafile_qos_shed_total"
	// MetricInFlight gauges admitted-and-running data requests.
	MetricInFlight = "parafile_qos_inflight"
	// MetricQueued gauges waiters across all tenant queues.
	MetricQueued = "parafile_qos_queued"
	// MetricMemory gauges the charged payload bytes.
	MetricMemory = "parafile_qos_mem_bytes"
	// MetricWait is the queue-residence histogram (ns) of admitted
	// requests that had to wait.
	MetricWait = "parafile_qos_queue_wait_ns"
)

// waiter is one queued request.
type waiter struct {
	tn    *tenant
	op    Op
	bytes int64
	need  int64 // memory charge (bytes clamped to the budget)
	enq   time.Time
	// ready delivers the verdict: nil to run, *Overload when shed.
	// Buffered so dispatch never blocks on a racing timeout.
	ready    chan error
	admitted bool
	shed     bool
}

// tenant is one fair-share class.
type tenant struct {
	name string
	lim  TenantLimit
	// pass is the stride-scheduling virtual finish time; the runnable
	// tenant with the smallest pass dispatches next.
	pass  float64
	queue []*waiter // FIFO

	byteTokens float64
	opTokens   float64
	lastFill   time.Time

	inflight    int
	admitted    uint64
	shed        uint64
	quotaDenied uint64
}

// refill tops the token buckets up to now.
func (t *tenant) refill(now time.Time) {
	dt := now.Sub(t.lastFill).Seconds()
	if dt <= 0 {
		return
	}
	t.lastFill = now
	if t.lim.BytesPerSec > 0 {
		t.byteTokens += dt * t.lim.BytesPerSec
		if t.byteTokens > t.lim.BurstBytes {
			t.byteTokens = t.lim.BurstBytes
		}
	}
	if t.lim.OpsPerSec > 0 {
		t.opTokens += dt * t.lim.OpsPerSec
		if t.opTokens > t.lim.BurstOps {
			t.opTokens = t.lim.BurstOps
		}
	}
}

// Limiter is the per-daemon admission controller. All methods are safe
// for concurrent use; a nil *Limiter admits everything.
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant
	// inflight/memUsed are the admitted-work footprint; queued counts
	// waiters across every tenant queue.
	inflight int
	memUsed  int64
	queued   int
	// vtime is the global virtual clock: the pass of the most recently
	// dispatched request. A tenant waking from idle starts at vtime so
	// it cannot claim credit for time it was not queued.
	vtime float64

	totalAdmitted uint64
	totalShed     uint64

	metAdmit map[Op]*obs.Counter
	metShed  map[string]*obs.Counter
	gInFlt   *obs.Gauge
	gQueued  *obs.Gauge
	gMem     *obs.Gauge
	hWait    *obs.Histogram
}

// shed reasons (metric labels and Overload.Reason values).
const (
	ReasonQueueFull = "queue_full"
	ReasonTimeout   = "timeout"
	ReasonQuotaB    = "quota_bytes"
	ReasonQuotaOps  = "quota_ops"
)

// NewLimiter builds a limiter. The zero Config is usable: defaults
// bound in-flight work and memory, with no per-tenant quotas.
func NewLimiter(cfg Config) *Limiter {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 256 << 20
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = time.Second
	}
	cfg.DefaultLimit = cfg.DefaultLimit.withDefaults()
	if cfg.now == nil {
		cfg.now = time.Now
	}
	l := &Limiter{cfg: cfg, tenants: make(map[string]*tenant)}
	if reg := cfg.Metrics; reg != nil {
		l.metAdmit = map[Op]*obs.Counter{
			OpWrite:   reg.Counter(fmt.Sprintf(`%s{op="write"}`, MetricAdmitted)),
			OpRead:    reg.Counter(fmt.Sprintf(`%s{op="read"}`, MetricAdmitted)),
			OpControl: reg.Counter(fmt.Sprintf(`%s{op="control"}`, MetricAdmitted)),
		}
		l.metShed = make(map[string]*obs.Counter)
		for _, r := range []string{ReasonQueueFull, ReasonTimeout, ReasonQuotaB, ReasonQuotaOps} {
			l.metShed[r] = reg.Counter(fmt.Sprintf(`%s{reason="%s"}`, MetricShed, r))
		}
		l.gInFlt = reg.Gauge(MetricInFlight)
		l.gQueued = reg.Gauge(MetricQueued)
		l.gMem = reg.Gauge(MetricMemory)
		l.hWait = reg.Histogram(MetricWait, obs.LatencyBuckets())
	}
	return l
}

// tenantLocked returns (creating on first sight) the tenant record.
func (l *Limiter) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	t := l.tenants[name]
	if t == nil {
		lim, ok := l.cfg.Tenants[name]
		if !ok {
			lim = l.cfg.DefaultLimit
		}
		lim = lim.withDefaults()
		t = &tenant{name: name, lim: lim, pass: l.vtime, lastFill: l.cfg.now()}
		if lim.BytesPerSec > 0 {
			t.byteTokens = lim.BurstBytes
		}
		if lim.OpsPerSec > 0 {
			t.opTokens = lim.BurstOps
		}
		l.tenants[name] = t
	}
	return t
}

// cost is the fair-share charge of one request: its payload plus a
// fixed per-op floor so metadata-sized requests still advance the
// virtual clock.
func cost(bytes int64) float64 {
	const opFloor = 4096
	if bytes < opFloor {
		return opFloor
	}
	return float64(bytes)
}

// Acquire admits, queues, or sheds one request of the given tenant.
// On admission it returns a release func the caller MUST invoke when
// the request finishes (freeing its slot and memory charge and waking
// queued work). On refusal it returns a *Overload matching
// ErrOverloaded; on caller cancellation, ctx.Err().
func (l *Limiter) Acquire(ctx context.Context, tenantName string, op Op, bytes int64) (func(), error) {
	if l == nil {
		return func() {}, nil
	}
	if bytes < 0 {
		// A malformed request can announce a negative size; debiting it
		// would CREDIT the tenant's byte bucket. Charge it as zero-size
		// — the rpc layer rejects it right after admission anyway.
		bytes = 0
	}
	l.mu.Lock()
	t := l.tenantLocked(tenantName)
	if op == OpControl {
		// Control plane: always admitted, never queued, never charged.
		// This is what keeps breaker probes, epoch fencing and
		// metadata RPCs alive while the data plane sheds.
		t.admitted++
		l.totalAdmitted++
		l.mu.Unlock()
		l.metAdmit[op].Inc()
		return func() {}, nil
	}

	now := l.cfg.now()
	if err := l.chargeQuotaLocked(t, now, bytes); err != nil {
		l.mu.Unlock()
		return nil, err
	}

	need := bytes
	if need > l.cfg.MemoryBytes {
		need = l.cfg.MemoryBytes
	}
	if l.queued == 0 && l.inflight < l.cfg.MaxInFlight && l.memUsed+need <= l.cfg.MemoryBytes {
		l.admitLocked(t, op, need, cost(bytes))
		l.mu.Unlock()
		l.metAdmit[op].Inc()
		return l.releaser(t, need), nil
	}

	// Queue. A full queue sheds the oldest queued write to make room;
	// when nothing is sheddable the arrival itself is refused.
	if l.queued >= l.cfg.MaxQueue {
		if !l.shedOldestLocked() {
			t.shed++
			l.totalShed++
			l.mu.Unlock()
			l.metShed[ReasonQueueFull].Inc()
			return nil, &Overload{RetryAfter: l.cfg.MaxWait, Reason: ReasonQueueFull}
		}
	}
	w := &waiter{tn: t, op: op, bytes: bytes, need: need, enq: now, ready: make(chan error, 1)}
	if len(t.queue) == 0 {
		// Waking from idle: no credit for idle time.
		if t.pass < l.vtime {
			t.pass = l.vtime
		}
	}
	t.queue = append(t.queue, w)
	l.queued++
	l.gQueued.Set(int64(l.queued))
	l.mu.Unlock()

	timer := time.NewTimer(l.cfg.MaxWait)
	defer timer.Stop()
	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		l.hWait.Observe(int64(l.cfg.now().Sub(w.enq)))
		l.metAdmit[op].Inc()
		return l.releaser(t, need), nil
	case <-timer.C:
		if fn, err, done := l.abandonLocked(w, ReasonTimeout); done {
			return fn, err
		}
		l.hWait.Observe(int64(l.cfg.now().Sub(w.enq)))
		l.metAdmit[op].Inc()
		return l.releaser(t, need), nil
	case <-ctx.Done():
		if fn, err, done := l.abandonLocked(w, ""); done {
			if err == nil {
				err = ctx.Err()
			}
			return fn, err
		}
		// Already admitted under us: the caller sees its own ctx
		// error soon enough; hand the slot back immediately.
		l.releaser(t, need)()
		return nil, ctx.Err()
	}
}

// abandonLocked resolves the race between a waiter giving up (timeout
// or cancellation) and dispatch admitting or shedding it. done=false
// means the waiter was admitted first and the caller owns a slot.
// reason "" (cancellation) sheds silently — the client asked to stop,
// that is not overload.
func (l *Limiter) abandonLocked(w *waiter, reason string) (func(), error, bool) {
	l.mu.Lock()
	if w.admitted {
		l.mu.Unlock()
		<-w.ready // drain the buffered verdict
		if reason == "" {
			return nil, nil, false // cancelled: caller releases
		}
		return nil, nil, false
	}
	if w.shed {
		// shedOldestLocked got here first: it already removed w from
		// its queue, decremented l.queued and counted the shed.
		// Touching the counters again would drift l.queued negative and
		// permanently fail the fast-path admission check. Just deliver
		// its verdict.
		l.mu.Unlock()
		return nil, <-w.ready, true
	}
	// Still queued: remove.
	q := w.tn.queue
	for i, qw := range q {
		if qw == w {
			w.tn.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	l.queued--
	l.gQueued.Set(int64(l.queued))
	if reason != "" {
		w.tn.shed++
		l.totalShed++
	}
	l.mu.Unlock()
	if reason == "" {
		return nil, nil, true // ctx error filled by caller
	}
	l.metShed[reason].Inc()
	return nil, &Overload{RetryAfter: l.cfg.MaxWait, Reason: reason}, true
}

// chargeQuotaLocked refills and debits t's token buckets for one
// request. A bucket that cannot cover the request refuses it with the
// deficit's refill time; tokens may go negative once a request is
// within burst, which is what holds the long-run rate exactly.
func (l *Limiter) chargeQuotaLocked(t *tenant, now time.Time, bytes int64) error {
	t.refill(now)
	if t.lim.OpsPerSec > 0 && t.opTokens < 1 {
		retry := time.Duration((1 - t.opTokens) / t.lim.OpsPerSec * float64(time.Second))
		t.quotaDenied++
		l.totalShed++
		l.metShed[ReasonQuotaOps].Inc()
		return &Overload{RetryAfter: retry, Reason: ReasonQuotaOps}
	}
	if t.lim.BytesPerSec > 0 {
		needNow := float64(bytes)
		if needNow > t.lim.BurstBytes {
			needNow = t.lim.BurstBytes
		}
		if t.byteTokens < needNow {
			retry := time.Duration((needNow - t.byteTokens) / t.lim.BytesPerSec * float64(time.Second))
			t.quotaDenied++
			l.totalShed++
			l.metShed[ReasonQuotaB].Inc()
			return &Overload{RetryAfter: retry, Reason: ReasonQuotaB}
		}
		t.byteTokens -= float64(bytes)
	}
	if t.lim.OpsPerSec > 0 {
		t.opTokens--
	}
	return nil
}

// admitLocked charges one admitted request and advances the virtual
// clock.
func (l *Limiter) admitLocked(t *tenant, op Op, need int64, c float64) {
	l.inflight++
	l.memUsed += need
	t.inflight++
	t.admitted++
	l.totalAdmitted++
	t.pass += c / t.lim.Weight
	if t.pass > l.vtime {
		l.vtime = t.pass
	}
	l.gInFlt.Set(int64(l.inflight))
	l.gMem.Set(l.memUsed)
}

// releaser returns the (idempotent-unsafe, call exactly once) release
// func of one admitted request.
func (l *Limiter) releaser(t *tenant, need int64) func() {
	return func() {
		l.mu.Lock()
		l.inflight--
		l.memUsed -= need
		t.inflight--
		l.gInFlt.Set(int64(l.inflight))
		l.gMem.Set(l.memUsed)
		l.dispatchLocked()
		l.mu.Unlock()
	}
}

// dispatchLocked drains queues while capacity lasts: repeatedly admit
// the head of the runnable tenant with the smallest virtual pass.
func (l *Limiter) dispatchLocked() {
	for l.queued > 0 && l.inflight < l.cfg.MaxInFlight {
		var best *tenant
		for _, t := range l.tenants {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.pass < best.pass ||
				(t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		if l.memUsed+w.need > l.cfg.MemoryBytes {
			// Head-of-line memory block: wait for a release rather
			// than bypassing fairness with a smaller request.
			return
		}
		best.queue = best.queue[1:]
		l.queued--
		l.gQueued.Set(int64(l.queued))
		w.admitted = true
		l.admitLocked(best, w.op, w.need, cost(w.bytes))
		w.ready <- nil
	}
}

// shedOldestLocked drops the oldest queued write (or, with no writes
// queued, the oldest waiter of any kind) to make room. Returns false
// when every queue is empty.
func (l *Limiter) shedOldestLocked() bool {
	var victim *waiter
	writeOnly := true
	for pass := 0; pass < 2 && victim == nil; pass++ {
		for _, t := range l.tenants {
			for _, w := range t.queue {
				if writeOnly && w.op != OpWrite {
					continue
				}
				if victim == nil || w.enq.Before(victim.enq) {
					victim = w
				}
			}
		}
		writeOnly = false
	}
	if victim == nil {
		return false
	}
	q := victim.tn.queue
	for i, w := range q {
		if w == victim {
			victim.tn.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	l.queued--
	l.gQueued.Set(int64(l.queued))
	victim.shed = true
	victim.tn.shed++
	l.totalShed++
	l.metShed[ReasonQueueFull].Inc()
	victim.ready <- &Overload{RetryAfter: l.cfg.MaxWait, Reason: ReasonQueueFull}
	return true
}

// TenantStatus is one tenant's live snapshot.
type TenantStatus struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	Queued      int     `json:"queued"`
	InFlight    int     `json:"in_flight"`
	Admitted    uint64  `json:"admitted"`
	Shed        uint64  `json:"shed"`
	QuotaDenied uint64  `json:"quota_denied"`
}

// Status is the limiter's live snapshot, served on /debug/qos and by
// `parafilectl qos`.
type Status struct {
	MaxInFlight int            `json:"max_in_flight"`
	InFlight    int            `json:"in_flight"`
	MaxQueue    int            `json:"max_queue"`
	Queued      int            `json:"queued"`
	MemoryBytes int64          `json:"memory_bytes"`
	MemoryUsed  int64          `json:"memory_used"`
	MaxWaitMS   int64          `json:"max_wait_ms"`
	Admitted    uint64         `json:"admitted"`
	Shed        uint64         `json:"shed"`
	Tenants     []TenantStatus `json:"tenants"`
}

// Status snapshots the limiter. Works on a nil limiter (reports an
// unconfigured, admit-everything state).
func (l *Limiter) Status() *Status {
	if l == nil {
		return &Status{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &Status{
		MaxInFlight: l.cfg.MaxInFlight,
		InFlight:    l.inflight,
		MaxQueue:    l.cfg.MaxQueue,
		Queued:      l.queued,
		MemoryBytes: l.cfg.MemoryBytes,
		MemoryUsed:  l.memUsed,
		MaxWaitMS:   l.cfg.MaxWait.Milliseconds(),
		Admitted:    l.totalAdmitted,
		Shed:        l.totalShed,
	}
	for _, t := range l.tenants {
		s.Tenants = append(s.Tenants, TenantStatus{
			Name:        t.name,
			Weight:      t.lim.Weight,
			BytesPerSec: t.lim.BytesPerSec,
			OpsPerSec:   t.lim.OpsPerSec,
			Queued:      len(t.queue),
			InFlight:    t.inflight,
			Admitted:    t.admitted,
			Shed:        t.shed,
			QuotaDenied: t.quotaDenied,
		})
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Name < s.Tenants[j].Name })
	return s
}

// Format renders the snapshot as the human table parafilectl prints.
func (s *Status) Format() string {
	var b strings.Builder
	if s.MaxInFlight == 0 {
		b.WriteString("qos: not configured (admitting everything)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "qos: in-flight %d/%d  queued %d/%d  mem %s/%s  admitted %d  shed %d\n",
		s.InFlight, s.MaxInFlight, s.Queued, s.MaxQueue,
		fmtBytes(s.MemoryUsed), fmtBytes(s.MemoryBytes), s.Admitted, s.Shed)
	if len(s.Tenants) > 0 {
		fmt.Fprintf(&b, "%-16s %6s %12s %10s %7s %8s %10s %10s %8s\n",
			"TENANT", "WEIGHT", "BYTES/S", "OPS/S", "QUEUED", "INFLIGHT", "ADMITTED", "SHED", "QUOTA-")
		for _, t := range s.Tenants {
			bps, ops := "-", "-"
			if t.BytesPerSec > 0 {
				bps = fmtBytes(int64(t.BytesPerSec))
			}
			if t.OpsPerSec > 0 {
				ops = fmt.Sprintf("%.0f", t.OpsPerSec)
			}
			fmt.Fprintf(&b, "%-16s %6.1f %12s %10s %7d %8d %10d %10d %8d\n",
				t.Name, t.Weight, bps, ops, t.Queued, t.InFlight, t.Admitted, t.Shed, t.QuotaDenied)
		}
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

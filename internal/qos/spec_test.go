package qos

import "testing"

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants(" gold:4, bulk:1:8 ,scavenger:1:2:50 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(got))
	}
	if g := got["gold"]; g.Weight != 4 || g.BytesPerSec != 0 || g.OpsPerSec != 0 {
		t.Fatalf("gold = %+v", g)
	}
	if b := got["bulk"]; b.Weight != 1 || b.BytesPerSec != 8*(1<<20) {
		t.Fatalf("bulk = %+v", b)
	}
	if s := got["scavenger"]; s.BytesPerSec != 2*(1<<20) || s.OpsPerSec != 50 {
		t.Fatalf("scavenger = %+v", s)
	}

	if got, err = ParseTenants("  "); err != nil || len(got) != 0 {
		t.Fatalf("empty spec: %v %v", got, err)
	}

	for _, bad := range []string{
		":4",        // no name
		"a:0",       // zero weight
		"a:-1",      // negative weight
		"a:1:x",     // bad quota
		"a:1:1:-2",  // negative ops
		"a:1,a:2",   // duplicate
		"a:1:2:3:4", // too many fields
		"a:one",     // non-numeric weight
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

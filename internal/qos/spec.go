package qos

import (
	"fmt"
	"strconv"
	"strings"
)

// spec.go parses the compact tenant grammar shared by the parafiled
// -qos-tenants flag and the parafileload workload flags: a
// comma-separated list of
//
//	name:weight[:mbps[:ops]]
//
// where weight is the fair-share weight, mbps the sustained byte
// quota in MiB/s (0 = unlimited) and ops the sustained operation
// quota per second (0 = unlimited), e.g.
//
//	gold:4,bulk:1:8,scavenger:1:2:50
//
// gives gold 4× the share of bulk with no quota, caps bulk at 8 MiB/s
// and scavenger at 2 MiB/s and 50 ops/s.

// ParseTenants parses the tenant-spec grammar into per-tenant limits.
// An empty spec yields an empty (non-nil) map.
func ParseTenants(spec string) (map[string]TenantLimit, error) {
	out := make(map[string]TenantLimit)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("qos: tenant spec %q has no name", tok)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("qos: tenant %q specified twice", name)
		}
		lim := TenantLimit{Weight: 1}
		if len(parts) > 1 {
			w, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("qos: bad weight %q for tenant %q", parts[1], name)
			}
			lim.Weight = w
		}
		if len(parts) > 2 {
			mb, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || mb < 0 {
				return nil, fmt.Errorf("qos: bad MiB/s quota %q for tenant %q", parts[2], name)
			}
			lim.BytesPerSec = mb * (1 << 20)
		}
		if len(parts) > 3 {
			ops, err := strconv.ParseFloat(parts[3], 64)
			if err != nil || ops < 0 {
				return nil, fmt.Errorf("qos: bad ops/s quota %q for tenant %q", parts[3], name)
			}
			lim.OpsPerSec = ops
		}
		if len(parts) > 4 {
			return nil, fmt.Errorf("qos: tenant spec %q has too many fields (want name:weight[:mbps[:ops]])", tok)
		}
		out[name] = lim
	}
	return out, nil
}

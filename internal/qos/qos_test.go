package qos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"parafile/internal/obs"
)

func waitQueued(t *testing.T, l *Limiter, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Status().Queued == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d (at %d)", want, l.Status().Queued)
}

func TestAdmitAndRelease(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 2})
	rel1, err := l.Acquire(context.Background(), "a", OpWrite, 100)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := l.Acquire(context.Background(), "a", OpRead, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Status().InFlight; got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}
	rel1()
	rel2()
	if got := l.Status().InFlight; got != 0 {
		t.Fatalf("in-flight after release = %d, want 0", got)
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if s := l.Status(); s == nil {
		t.Fatal("nil limiter Status returned nil")
	}
}

func TestControlBypassesSaturation(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 1, MaxQueue: 1, MaxWait: 50 * time.Millisecond})
	rel, err := l.Acquire(context.Background(), "hog", OpWrite, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Data plane is saturated; control ops must still pass instantly.
	for i := 0; i < 100; i++ {
		crel, err := l.Acquire(context.Background(), "anyone", OpControl, 0)
		if err != nil {
			t.Fatalf("control op %d refused: %v", i, err)
		}
		crel()
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 1, MaxWait: 30 * time.Millisecond})
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = l.Acquire(context.Background(), "a", OpWrite, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != ReasonTimeout {
		t.Fatalf("want timeout Overload, got %#v", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Fatalf("shed after %v, before MaxWait", waited)
	}
}

func TestQueueFullShedsOldestWrite(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 1, MaxQueue: 2, MaxWait: 5 * time.Second})
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	type result struct {
		op  Op
		err error
	}
	results := make(chan result, 3)
	// Oldest waiter is a READ, then a WRITE: the write must be the
	// victim even though the read queued first.
	go func() {
		_, err := l.Acquire(context.Background(), "a", OpRead, 1)
		results <- result{OpRead, err}
	}()
	waitQueued(t, l, 1)
	go func() {
		_, err := l.Acquire(context.Background(), "a", OpWrite, 1)
		results <- result{OpWrite, err}
	}()
	waitQueued(t, l, 2)

	// Queue is full: the next arrival evicts the oldest queued write.
	go func() {
		_, err := l.Acquire(context.Background(), "a", OpWrite, 1)
		results <- result{OpWrite, err} // this one queues in the freed slot
	}()

	r := <-results
	if r.op != OpWrite {
		t.Fatalf("victim was %v, want the queued write", r.op)
	}
	var ov *Overload
	if !errors.As(r.err, &ov) || ov.Reason != ReasonQueueFull {
		t.Fatalf("victim error = %v, want queue_full Overload", r.err)
	}
}

// TestShedThenAbandonNoDoubleCount pins the race between
// shedOldestLocked and the victim's own MaxWait timeout: the shed
// already removed the waiter and decremented l.queued, so the abandon
// path must not decrement (and count the shed) again — a drifted
// l.queued would fail the fast-path admission check forever.
func TestShedThenAbandonNoDoubleCount(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 1, MaxQueue: 1, MaxWait: time.Second})

	l.mu.Lock()
	tn := l.tenantLocked("a")
	w := &waiter{tn: tn, op: OpWrite, bytes: 1, need: 1, enq: l.cfg.now(), ready: make(chan error, 1)}
	tn.queue = append(tn.queue, w)
	l.queued++
	if !l.shedOldestLocked() {
		l.mu.Unlock()
		t.Fatal("shedOldestLocked found no victim")
	}
	shedAfter := l.totalShed
	l.mu.Unlock()

	// The waiter's timer fires concurrently with the shed: abandon must
	// see w.shed and only deliver the verdict.
	fn, err, done := l.abandonLocked(w, ReasonTimeout)
	if !done || fn != nil {
		t.Fatalf("abandon after shed: done=%v haveSlot=%v, want done with no slot", done, fn != nil)
	}
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != ReasonQueueFull {
		t.Fatalf("abandon after shed returned %v, want the shed's queue_full Overload", err)
	}
	s := l.Status()
	if s.Queued != 0 {
		t.Fatalf("queued drifted to %d after shed+abandon, want 0", s.Queued)
	}
	if s.Shed != shedAfter {
		t.Fatalf("shed double-counted: %d, want %d", s.Shed, shedAfter)
	}
	// The drifted counter would wedge the fast path; a fresh request on
	// the idle limiter must be admitted immediately.
	rel, aerr := l.Acquire(context.Background(), "a", OpWrite, 1)
	if aerr != nil {
		t.Fatalf("admission after shed+abandon: %v", aerr)
	}
	rel()

	// Same race on the cancellation branch.
	l.mu.Lock()
	w2 := &waiter{tn: tn, op: OpWrite, bytes: 1, need: 1, enq: l.cfg.now(), ready: make(chan error, 1)}
	tn.queue = append(tn.queue, w2)
	l.queued++
	if !l.shedOldestLocked() {
		l.mu.Unlock()
		t.Fatal("shedOldestLocked found no victim")
	}
	l.mu.Unlock()
	if _, err, done := l.abandonLocked(w2, ""); !done || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancel after shed: done=%v err=%v", done, err)
	}
	if got := l.Status().Queued; got != 0 {
		t.Fatalf("queued drifted to %d after shed+cancel, want 0", got)
	}
}

// TestNegativeBytesDoNotCreditQuota: a request announcing a negative
// size must not be debited against the byte bucket — the debit of a
// negative value would CREDIT the tenant's quota.
func TestNegativeBytesDoNotCreditQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		MaxInFlight: 16,
		Tenants:     map[string]TenantLimit{"a": {BytesPerSec: 1000}},
		now:         func() time.Time { return now },
	}
	l := NewLimiter(cfg)
	rel, err := l.Acquire(context.Background(), "a", OpWrite, -1<<20)
	if err != nil {
		t.Fatalf("negative-size request refused outright: %v", err)
	}
	rel()
	// The bucket still holds exactly its burst: one 800-byte write
	// passes, the next is over quota. With the credit bug the bucket
	// would hold ~1MiB and both would pass.
	rel, err = l.Acquire(context.Background(), "a", OpWrite, 800)
	if err != nil {
		t.Fatalf("first write after negative request: %v", err)
	}
	rel()
	_, err = l.Acquire(context.Background(), "a", OpWrite, 800)
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != ReasonQuotaB {
		t.Fatalf("want quota_bytes Overload, got %v", err)
	}
}

func TestByteQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		MaxInFlight: 16,
		Tenants:     map[string]TenantLimit{"a": {BytesPerSec: 1000}},
		now:         func() time.Time { return now },
	}
	l := NewLimiter(cfg)
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 800)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	_, err = l.Acquire(context.Background(), "a", OpWrite, 800)
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != ReasonQuotaB {
		t.Fatalf("want quota_bytes Overload, got %v", err)
	}
	// Deficit is 600 tokens at 1000/s: RetryAfter ≈ 600ms.
	if ov.RetryAfter < 500*time.Millisecond || ov.RetryAfter > 700*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ≈600ms", ov.RetryAfter)
	}
	now = now.Add(650 * time.Millisecond)
	rel, err = l.Acquire(context.Background(), "a", OpWrite, 800)
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	rel()
	// Other tenants are not limited.
	rel, err = l.Acquire(context.Background(), "b", OpWrite, 1<<20)
	if err != nil {
		t.Fatalf("unlimited tenant refused: %v", err)
	}
	rel()
}

func TestOpsQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		MaxInFlight: 16,
		Tenants:     map[string]TenantLimit{"a": {OpsPerSec: 2}},
		now:         func() time.Time { return now },
	}
	l := NewLimiter(cfg)
	for i := 0; i < 2; i++ {
		rel, err := l.Acquire(context.Background(), "a", OpRead, 1)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		rel()
	}
	_, err := l.Acquire(context.Background(), "a", OpRead, 1)
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != ReasonQuotaOps {
		t.Fatalf("want quota_ops Overload, got %v", err)
	}
}

func TestFairShareByWeight(t *testing.T) {
	l := NewLimiter(Config{
		MaxInFlight: 1,
		MaxQueue:    100,
		MaxWait:     30 * time.Second,
		Tenants: map[string]TenantLimit{
			"heavy": {Weight: 2},
			"light": {Weight: 1},
		},
	})
	relHold, err := l.Acquire(context.Background(), "warm", OpWrite, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	const perTenant = 12
	enqueue := func(tenant string) {
		defer wg.Done()
		rel, err := l.Acquire(context.Background(), tenant, OpWrite, 1<<16)
		if err != nil {
			t.Errorf("%s: %v", tenant, err)
			return
		}
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
		rel()
	}
	// Interleave arrivals so FIFO order alone cannot explain the
	// outcome, and wait for each to be queued to fix arrival order.
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		go enqueue("light")
		waitQueued(t, l, 2*i+1)
		go enqueue("heavy")
		waitQueued(t, l, 2*i+2)
	}
	relHold()
	wg.Wait()

	// In the first half of the dispatch order, heavy (weight 2) must
	// have been served about twice as often as light.
	half := order[:len(order)/2]
	heavy := 0
	for _, name := range half {
		if name == "heavy" {
			heavy++
		}
	}
	frac := float64(heavy) / float64(len(half))
	if frac < 0.55 || frac > 0.80 {
		t.Fatalf("heavy got %.0f%% of the first half, want ≈67%% (order %v)", frac*100, order)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 1, MaxWait: 30 * time.Second})
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, "a", OpWrite, 1)
		done <- err
	}()
	waitQueued(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if shed := l.Status().Shed; shed != 0 {
		t.Fatalf("cancellation counted as shed (%d)", shed)
	}
}

func TestMemoryBudget(t *testing.T) {
	l := NewLimiter(Config{MaxInFlight: 16, MemoryBytes: 1 << 20, MaxWait: 40 * time.Millisecond})
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 900<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Second large request exceeds the budget: it queues, then sheds
	// on MaxWait.
	_, err = l.Acquire(context.Background(), "a", OpWrite, 900<<10)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	rel()
	// Budget free again.
	rel, err = l.Acquire(context.Background(), "a", OpWrite, 900<<10)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	// A single request larger than the whole budget is clamped and
	// runs alone rather than being unservable.
	rel, err = l.Acquire(context.Background(), "a", OpWrite, 8<<20)
	if err != nil {
		t.Fatalf("oversized request refused: %v", err)
	}
	rel()
}

func TestMetricsBound(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(Config{MaxInFlight: 1, MaxWait: 20 * time.Millisecond, Metrics: reg})
	rel, _ := l.Acquire(context.Background(), "a", OpWrite, 1)
	_, err := l.Acquire(context.Background(), "a", OpWrite, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want shed, got %v", err)
	}
	rel()
	if got := reg.Counter(fmt.Sprintf(`%s{op="write"}`, MetricAdmitted)).Value(); got != 1 {
		t.Fatalf("admitted{write} = %d, want 1", got)
	}
	if got := reg.Counter(fmt.Sprintf(`%s{reason="timeout"}`, MetricShed)).Value(); got != 1 {
		t.Fatalf("shed{timeout} = %d, want 1", got)
	}
}

func TestStatusFormat(t *testing.T) {
	l := NewLimiter(Config{
		MaxInFlight: 4,
		Tenants:     map[string]TenantLimit{"a": {Weight: 2, BytesPerSec: 1 << 20}},
	})
	rel, err := l.Acquire(context.Background(), "a", OpWrite, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	s := l.Status()
	if len(s.Tenants) != 1 || s.Tenants[0].Name != "a" || s.Tenants[0].InFlight != 1 {
		t.Fatalf("status = %+v", s)
	}
	out := (&Status{}).Format()
	if out == "" {
		t.Fatal("unconfigured Format empty")
	}
	out = s.Format()
	for _, want := range []string{"in-flight 1/4", "TENANT", "a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentChurn(t *testing.T) {
	l := NewLimiter(Config{
		MaxInFlight: 8,
		MaxQueue:    64,
		MaxWait:     50 * time.Millisecond,
		Tenants: map[string]TenantLimit{
			"q": {BytesPerSec: 1 << 26, OpsPerSec: 1e6},
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%4)
			if g%5 == 0 {
				tenant = "q"
			}
			for i := 0; i < 200; i++ {
				op := OpWrite
				if i%3 == 0 {
					op = OpRead
				}
				rel, err := l.Acquire(context.Background(), tenant, op, int64(i%4096))
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				rel()
			}
		}(g)
	}
	wg.Wait()
	s := l.Status()
	if s.InFlight != 0 || s.Queued != 0 || s.MemoryUsed != 0 {
		t.Fatalf("leaked accounting: %+v", s)
	}
}

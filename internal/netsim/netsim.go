// Package netsim models the cluster interconnect of the Clusterfile
// evaluation (§8.2): a switched network in the style of the paper's
// Myrinet, parameterized by per-message latency, per-byte bandwidth
// and per-message software overhead. Each node has one full-duplex
// NIC; outgoing messages serialize on the sender's NIC, incoming ones
// on the receiver's, and the fabric itself is non-blocking (a crossbar
// switch, as Myrinet's was).
package netsim

import (
	"fmt"

	"parafile/internal/sim"
)

// Config parameterizes the interconnect model.
type Config struct {
	// LatencyNs is the one-way wire+switch latency per message.
	LatencyNs int64
	// BandwidthBytesPerSec is the per-NIC bandwidth.
	BandwidthBytesPerSec int64
	// OverheadNs is the per-message software send overhead (protocol
	// stack, descriptor setup) paid on the sending host.
	OverheadNs int64
}

// Myrinet2002 returns parameters matching the paper's testbed fabric:
// Myrinet with the era's GM-over-TCP style software stack on
// 800 MHz Pentium III hosts. The effective host-to-host throughput of
// that combination was far below the 160 MB/s link speed; these values
// are calibrated so the regenerated Table 1 network columns land in
// the paper's range.
func Myrinet2002() Config {
	return Config{
		LatencyNs:            60 * sim.Microsecond,
		BandwidthBytesPerSec: 52 * 1000 * 1000,
		OverheadNs:           55 * sim.Microsecond,
	}
}

// Network is a set of nodes connected by a non-blocking fabric.
type Network struct {
	cfg    Config
	k      *sim.Kernel
	out    []*sim.Resource // per-node send side
	in     []*sim.Resource // per-node receive side
	stats  Stats
	nodes  []NodeStats
	tracer *sim.Tracer
}

// SetTracer attaches a trace recorder (nil detaches).
func (nw *Network) SetTracer(t *sim.Tracer) { nw.tracer = t }

// Stats accumulates traffic counters.
type Stats struct {
	Messages int64
	Bytes    int64
}

// NodeStats accumulates one node's traffic.
type NodeStats struct {
	MessagesOut, MessagesIn int64
	BytesOut, BytesIn       int64
}

// New creates a network of n nodes on the kernel.
func New(k *sim.Kernel, cfg Config, n int) *Network {
	nw := &Network{cfg: cfg, k: k,
		out:   make([]*sim.Resource, n),
		in:    make([]*sim.Resource, n),
		nodes: make([]NodeStats, n),
	}
	for i := 0; i < n; i++ {
		nw.out[i] = sim.NewResource(k)
		nw.in[i] = sim.NewResource(k)
	}
	return nw
}

// Nodes returns the node count.
func (nw *Network) Nodes() int { return len(nw.out) }

// Stats returns the accumulated traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// NodeStats returns node i's traffic counters.
func (nw *Network) NodeStats(i int) NodeStats { return nw.nodes[i] }

// BusyOut returns the accumulated busy time of node i's send side — a
// utilization measure for load analysis.
func (nw *Network) BusyOut(i int) int64 { return nw.out[i].Busy() }

// Send models the transmission of a message of the given size from
// node src to node dst, starting now. deliver, when non-nil, runs at
// the virtual time the last byte has been received.
//
// The sender's NIC is held for overhead + bytes/bandwidth; the message
// then crosses the fabric (latency) and occupies the receiver's NIC
// for its transfer time.
func (nw *Network) Send(src, dst int, bytes int64, deliver func()) error {
	if src < 0 || src >= len(nw.out) || dst < 0 || dst >= len(nw.in) {
		return fmt.Errorf("netsim: send %d -> %d out of range [0,%d)", src, dst, len(nw.out))
	}
	if bytes < 0 {
		return fmt.Errorf("netsim: negative message size %d", bytes)
	}
	nw.stats.Messages++
	nw.stats.Bytes += bytes
	nw.nodes[src].MessagesOut++
	nw.nodes[src].BytesOut += bytes
	nw.nodes[dst].MessagesIn++
	nw.nodes[dst].BytesIn += bytes
	xfer := sim.TransferTime(bytes, nw.cfg.BandwidthBytesPerSec)
	start, _ := nw.out[src].Acquire(nw.cfg.OverheadNs+xfer, nil)
	nw.tracer.Recordf(start, fmt.Sprintf("node%d", src), "send %d B -> node%d", bytes, dst)
	// Cut-through: the head of the message reaches the receiver one
	// wire latency after the send starts pushing bytes; the receive
	// side then drains the transfer concurrently with the send, so an
	// uncontended message completes at overhead + latency + transfer.
	// A busy receiver NIC serializes concurrent senders.
	headAt := start + nw.cfg.OverheadNs + nw.cfg.LatencyNs
	wrapped := deliver
	if nw.tracer != nil {
		wrapped = func() {
			nw.tracer.Recordf(nw.k.Now(), fmt.Sprintf("node%d", dst), "received %d B from node%d", bytes, src)
			if deliver != nil {
				deliver()
			}
		}
	}
	nw.k.At(headAt, func() {
		if src == dst {
			// Loopback: no receive-side NIC occupancy.
			nw.k.After(xfer, func() {
				if wrapped != nil {
					wrapped()
				}
			})
			return
		}
		nw.in[dst].Acquire(xfer, wrapped)
	})
	return nil
}

// ReceiverBusy occupies node's receive path for d nanoseconds,
// scheduling fn at completion. It models a single-threaded server
// whose message processing (e.g. a blocking disk write) keeps it from
// draining the next incoming message — the behaviour of the paper's
// era I/O servers.
func (nw *Network) ReceiverBusy(node int, d int64, fn func()) error {
	if node < 0 || node >= len(nw.in) {
		return fmt.Errorf("netsim: node %d out of range [0,%d)", node, len(nw.in))
	}
	nw.in[node].Acquire(d, fn)
	return nil
}

// SendAt is Send deferred to virtual time t (>= now).
func (nw *Network) SendAt(t int64, src, dst int, bytes int64, deliver func()) error {
	if src < 0 || src >= len(nw.out) || dst < 0 || dst >= len(nw.in) {
		return fmt.Errorf("netsim: send %d -> %d out of range [0,%d)", src, dst, len(nw.out))
	}
	nw.k.At(t, func() {
		// Errors are impossible here: arguments were validated above.
		_ = nw.Send(src, dst, bytes, deliver)
	})
	return nil
}

package netsim

import (
	"testing"

	"parafile/internal/sim"
)

// TestReceiverBusyBlocksNextMessage: server processing on the receive
// path delays the drain of the next incoming message — the
// single-threaded-server behaviour the Clusterfile model relies on.
func TestReceiverBusyBlocksNextMessage(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 3)
	var second int64
	k.At(0, func() {
		// First message arrives at 25µs, then the server "processes"
		// for 100µs on the receive path.
		nw.Send(0, 2, 1000, func() {
			nw.ReceiverBusy(2, 100*sim.Microsecond, nil)
		})
	})
	// The second message's head reaches the server at 45µs — mid
	// processing. Without the busy server it would complete at 55µs;
	// with it, the receive waits until the processing ends at 125µs.
	k.At(30*sim.Microsecond, func() {
		nw.Send(1, 2, 1000, func() { second = k.Now() })
	})
	k.Run()
	want := 135 * sim.Microsecond // 25 (first) + 100 (processing) + 10 (transfer)
	if second != want {
		t.Errorf("second delivery at %d, want %d", second, want)
	}
}

func TestReceiverBusyValidation(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	if err := nw.ReceiverBusy(-1, 10, nil); err == nil {
		t.Error("negative node accepted")
	}
	if err := nw.ReceiverBusy(2, 10, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestReceiverBusyCallback: the completion callback fires at the end
// of the busy interval.
func TestReceiverBusyCallback(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	var doneAt int64 = -1
	k.At(5, func() {
		nw.ReceiverBusy(1, 20, func() { doneAt = k.Now() })
	})
	k.Run()
	if doneAt != 25 {
		t.Errorf("busy completion at %d, want 25", doneAt)
	}
}

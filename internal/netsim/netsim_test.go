package netsim

import (
	"testing"

	"parafile/internal/sim"
)

func testConfig() Config {
	return Config{
		LatencyNs:            10 * sim.Microsecond,
		BandwidthBytesPerSec: 100 * 1000 * 1000, // 100 MB/s: 10 ns/byte
		OverheadNs:           5 * sim.Microsecond,
	}
}

func TestSingleMessageTiming(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	var doneAt int64 = -1
	k.At(0, func() {
		if err := nw.Send(0, 1, 1000, func() { doneAt = k.Now() }); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	// overhead 5µs + latency 10µs + transfer 10µs = 25µs.
	want := 25 * sim.Microsecond
	if doneAt != want {
		t.Errorf("delivery at %d, want %d", doneAt, want)
	}
	if s := nw.Stats(); s.Messages != 1 || s.Bytes != 1000 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSenderSerialization(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 3)
	var first, second int64
	k.At(0, func() {
		nw.Send(0, 1, 1000, func() { first = k.Now() })
		nw.Send(0, 2, 1000, func() { second = k.Now() })
	})
	k.Run()
	// The second message waits for the first to leave the NIC
	// (5+10 µs), then pays its own 5+10+10 µs.
	if first != 25*sim.Microsecond {
		t.Errorf("first at %d, want 25µs", first)
	}
	if second != 40*sim.Microsecond {
		t.Errorf("second at %d, want 40µs", second)
	}
}

func TestReceiverContention(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 3)
	var d1, d2 int64
	k.At(0, func() {
		nw.Send(0, 2, 1000, func() { d1 = k.Now() })
		nw.Send(1, 2, 1000, func() { d2 = k.Now() })
	})
	k.Run()
	// Both senders push concurrently; the receiver drains them one
	// after another: 25µs for the first, +10µs transfer for the
	// second.
	if d1 != 25*sim.Microsecond {
		t.Errorf("first delivery at %d, want 25µs", d1)
	}
	if d2 != 35*sim.Microsecond {
		t.Errorf("second delivery at %d, want 35µs", d2)
	}
}

func TestZeroByteMessage(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	var doneAt int64 = -1
	k.At(0, func() { nw.Send(0, 1, 0, func() { doneAt = k.Now() }) })
	k.Run()
	if doneAt != 15*sim.Microsecond { // overhead + latency only
		t.Errorf("zero-byte delivery at %d, want 15µs", doneAt)
	}
}

func TestLoopback(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	var doneAt int64 = -1
	k.At(0, func() { nw.Send(1, 1, 1000, func() { doneAt = k.Now() }) })
	k.Run()
	if doneAt != 25*sim.Microsecond {
		t.Errorf("loopback delivery at %d, want 25µs", doneAt)
	}
}

func TestSendValidation(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	if err := nw.Send(-1, 0, 10, nil); err == nil {
		t.Error("negative source accepted")
	}
	if err := nw.Send(0, 2, 10, nil); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := nw.Send(0, 1, -1, nil); err == nil {
		t.Error("negative size accepted")
	}
}

func TestSendAt(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 2)
	var doneAt int64
	if err := nw.SendAt(100*sim.Microsecond, 0, 1, 1000, func() { doneAt = k.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := nw.SendAt(0, 0, 5, 1000, nil); err == nil {
		t.Error("SendAt with bad destination accepted")
	}
	k.Run()
	if doneAt != 125*sim.Microsecond {
		t.Errorf("deferred delivery at %d, want 125µs", doneAt)
	}
}

// TestNodeStats: per-node counters account for every message.
func TestNodeStats(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, testConfig(), 3)
	k.At(0, func() {
		nw.Send(0, 1, 100, nil)
		nw.Send(0, 2, 200, nil)
		nw.Send(2, 0, 50, nil)
	})
	k.Run()
	s0 := nw.NodeStats(0)
	if s0.MessagesOut != 2 || s0.BytesOut != 300 || s0.MessagesIn != 1 || s0.BytesIn != 50 {
		t.Errorf("node 0 stats = %+v", s0)
	}
	s1 := nw.NodeStats(1)
	if s1.MessagesIn != 1 || s1.BytesIn != 100 || s1.MessagesOut != 0 {
		t.Errorf("node 1 stats = %+v", s1)
	}
	if nw.BusyOut(0) <= nw.BusyOut(1) {
		t.Errorf("busy accounting wrong: out0=%d out1=%d", nw.BusyOut(0), nw.BusyOut(1))
	}
}

package codec

import (
	"errors"
	"math/rand"
	"testing"

	"parafile/internal/falls"
	"parafile/internal/part"
)

func TestFALLSRoundTrip(t *testing.T) {
	cases := []falls.FALLS{
		falls.MustNew(2, 5, 6, 5),
		falls.MustNew(0, 0, 1, 1),
		falls.MustNew(1000000, 1000063, 2048, 4096),
	}
	for _, f := range cases {
		buf := AppendFALLS(nil, f)
		got, rest, err := DecodeFALLS(buf)
		if err != nil || len(rest) != 0 || got != f {
			t.Errorf("round trip of %v: got %v, rest %d, err %v", f, got, len(rest), err)
		}
	}
}

// randSet mirrors the generators of the falls tests.
func randSet(rng *rand.Rand, span int64, depth int) falls.Set {
	var out falls.Set
	cursor := int64(0)
	for m := 0; m < 3 && span-cursor >= 4; m++ {
		blockLen := 1 + rng.Int63n(4)
		l := cursor + rng.Int63n(3)
		r := l + blockLen - 1
		if r >= span {
			break
		}
		s := blockLen + rng.Int63n(8)
		maxN := (span - 1 - r) / s
		n := int64(1)
		if maxN > 0 {
			n = 1 + rng.Int63n(min64(maxN, 6)+1)
		}
		member := falls.Leaf(falls.FALLS{L: l, R: r, S: s, N: n})
		if depth > 1 && blockLen >= 3 && rng.Intn(2) == 0 {
			member.Inner = randSet(rng, blockLen, depth-1)
			if len(member.Inner) == 0 {
				member.Inner = nil
			}
		}
		out = append(out, member)
		cursor = member.Extent() + 1
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestPropertySetRoundTrip: random nested sets survive the wire
// byte-for-byte (structurally).
func TestPropertySetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	for iter := 0; iter < 300; iter++ {
		s := randSet(rng, 96, 3)
		if s.Validate() != nil {
			continue
		}
		buf := AppendSet(nil, s)
		got, rest, err := DecodeSet(buf)
		if err != nil {
			t.Fatalf("decode of %v failed: %v", s, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		if !got.Equal(s) {
			t.Fatalf("round trip changed set:\nin  %v\nout %v", s, got)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	pat, err := part.NewPattern(
		part.Element{Name: "even", Set: falls.Set{falls.MustLeaf(0, 0, 2, 8)}},
		part.Element{Name: "odd", Set: falls.Set{falls.MustLeaf(1, 1, 2, 8)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := part.MustFile(7, pat)
	buf := EncodeFile(f)
	got, err := DecodeFile(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Displacement != 7 || got.Pattern.Len() != 2 {
		t.Fatalf("file round trip: %+v", got)
	}
	if got.Pattern.Element(0).Name != "even" || got.Pattern.Element(1).Name != "odd" {
		t.Errorf("names lost: %v, %v", got.Pattern.Element(0).Name, got.Pattern.Element(1).Name)
	}
	if !got.Pattern.Element(0).Set.Equal(f.Pattern.Element(0).Set) {
		t.Error("element set changed")
	}
}

// TestCorruptionRejected: truncations and bit flips fail with
// ErrCorrupt instead of panicking or returning garbage.
func TestCorruptionRejected(t *testing.T) {
	pat, _ := part.Block1D(64, 4)
	f := part.MustFile(0, pat)
	buf := EncodeFile(f)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeFile(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(151))
	for iter := 0; iter < 200; iter++ {
		corrupted := append([]byte(nil), buf...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		got, err := DecodeFile(corrupted)
		if err == nil {
			// A flip may decode to a different but valid file; that is
			// acceptable — it must still be a *valid* pattern.
			if got == nil || got.Pattern == nil {
				t.Fatal("nil result without error")
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) && got != nil {
			t.Fatalf("unexpected error shape: %v", err)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeFile(append(buf, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Bomb guard: absurd member counts fail fast.
	bomb := appendUvarint(nil, 1)     // version
	bomb = appendVarint(bomb, 0)      // displacement
	bomb = appendUvarint(bomb, 1<<40) // element count
	if _, err := DecodeFile(bomb); err == nil {
		t.Error("element-count bomb accepted")
	}
}

// TestDeepNestingRejected: a crafted blob with pathological nesting
// depth fails cleanly instead of exhausting the stack.
func TestDeepNestingRejected(t *testing.T) {
	// Build a 100-deep chain: each level one member (0,0,1,1) whose
	// inner set is the next level.
	var build func(depth int) []byte
	build = func(depth int) []byte {
		buf := appendUvarint(nil, 1)                      // one member
		buf = AppendFALLS(buf, falls.MustNew(0, 0, 1, 1)) // trivial FALLS
		if depth == 0 {
			return append(buf, appendUvarint(nil, 0)...) // empty inner
		}
		return append(buf, build(depth-1)...)
	}
	deep := build(100)
	if _, _, err := DecodeSet(deep); err == nil {
		t.Fatal("100-deep nesting accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unexpected error: %v", err)
	}
	// A modest depth still decodes.
	shallow := build(8)
	if _, _, err := DecodeSet(shallow); err != nil {
		t.Fatalf("8-deep nesting rejected: %v", err)
	}
}

// Package codec provides a compact binary wire format for the file
// model's data structures: FALLS, nested FALLS sets, partitioning
// patterns and files. Clusterfile uses it to ship PROJ_S to the I/O
// nodes at view-set time (§8.1) — the structures received over the
// wire are the ones the servers operate on — and it doubles as an
// on-disk metadata format. The projection wire format itself lives in
// package redist (which builds on these primitives), keeping codec
// free of higher-layer dependencies so that redist can in turn use
// EncodeFile as the canonical plan-cache fingerprint.
//
// The encoding is varint-based (encoding/binary), self-delimiting and
// versioned.
package codec

import (
	"encoding/binary"
	"fmt"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// Version tags the wire format.
const Version = 1

// ErrCorrupt is wrapped by all decode failures.
var ErrCorrupt = fmt.Errorf("codec: corrupt input")

// AppendUvarint appends an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends a signed (zig-zag) varint.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// ReadUvarint consumes an unsigned varint, returning the remainder.
func ReadUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, buf[n:], nil
}

// ReadVarint consumes a signed varint, returning the remainder.
func ReadVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, buf[n:], nil
}

// Unexported aliases keep the package-internal call sites short.
func appendUvarint(buf []byte, v uint64) []byte        { return AppendUvarint(buf, v) }
func appendVarint(buf []byte, v int64) []byte          { return AppendVarint(buf, v) }
func readUvarint(buf []byte) (uint64, []byte, error)   { return ReadUvarint(buf) }
func readVarint(buf []byte) (int64, []byte, error)     { return ReadVarint(buf) }

// AppendFALLS appends the encoding of a flat FALLS.
func AppendFALLS(buf []byte, f falls.FALLS) []byte {
	buf = appendVarint(buf, f.L)
	buf = appendVarint(buf, f.R)
	buf = appendVarint(buf, f.S)
	buf = appendVarint(buf, f.N)
	return buf
}

// DecodeFALLS decodes a flat FALLS, returning the remaining bytes.
func DecodeFALLS(buf []byte) (falls.FALLS, []byte, error) {
	var f falls.FALLS
	var err error
	if f.L, buf, err = readVarint(buf); err != nil {
		return f, nil, err
	}
	if f.R, buf, err = readVarint(buf); err != nil {
		return f, nil, err
	}
	if f.S, buf, err = readVarint(buf); err != nil {
		return f, nil, err
	}
	if f.N, buf, err = readVarint(buf); err != nil {
		return f, nil, err
	}
	if err := f.Validate(); err != nil {
		return f, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return f, buf, nil
}

// AppendSet appends the encoding of a nested FALLS set.
func AppendSet(buf []byte, s falls.Set) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	for _, n := range s {
		buf = AppendFALLS(buf, n.FALLS)
		buf = AppendSet(buf, n.Inner)
	}
	return buf
}

// maxNestingDepth bounds decoded tree height: deeper inputs are
// corrupt (or hostile) — real partitions are a handful of levels.
const maxNestingDepth = 64

// DecodeSet decodes a nested FALLS set.
func DecodeSet(buf []byte) (falls.Set, []byte, error) {
	return decodeSetDepth(buf, 0)
}

func decodeSetDepth(buf []byte, depth int) (falls.Set, []byte, error) {
	if depth > maxNestingDepth {
		return nil, nil, fmt.Errorf("%w: nesting deeper than %d levels", ErrCorrupt, maxNestingDepth)
	}
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(len(buf)) {
		// Each member needs at least one byte; cheap bomb guard.
		return nil, nil, fmt.Errorf("%w: implausible member count %d", ErrCorrupt, count)
	}
	var s falls.Set
	for i := uint64(0); i < count; i++ {
		var f falls.FALLS
		if f, buf, err = DecodeFALLS(buf); err != nil {
			return nil, nil, err
		}
		var inner falls.Set
		if inner, buf, err = decodeSetDepth(buf, depth+1); err != nil {
			return nil, nil, err
		}
		n, err := falls.NewNested(f, inner)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s = append(s, n)
	}
	if err := s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, buf, nil
}

// EncodeFile encodes a file description: displacement plus the named
// partitioning pattern.
func EncodeFile(f *part.File) []byte {
	buf := appendUvarint(nil, Version)
	buf = appendVarint(buf, f.Displacement)
	buf = appendUvarint(buf, uint64(f.Pattern.Len()))
	for _, e := range f.Pattern.Elements() {
		buf = appendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = AppendSet(buf, e.Set)
	}
	return buf
}

// DecodeFile decodes a file description, revalidating the pattern
// tiling.
func DecodeFile(buf []byte) (*part.File, error) {
	v, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorrupt, v)
	}
	disp, buf, err := readVarint(buf)
	if err != nil {
		return nil, err
	}
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(buf))+1 {
		return nil, fmt.Errorf("%w: implausible element count %d", ErrCorrupt, count)
	}
	elems := make([]part.Element, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, rest, err := readUvarint(buf)
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: name overruns buffer", ErrCorrupt)
		}
		name := string(rest[:nameLen])
		buf = rest[nameLen:]
		var set falls.Set
		if set, buf, err = DecodeSet(buf); err != nil {
			return nil, err
		}
		elems = append(elems, part.Element{Name: name, Set: set})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	pat, err := part.NewPattern(elems...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return part.NewFile(disp, pat)
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/codec"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// throughput.go measures the data path over loopback TCP: large
// segment operations through the monolithic (proto v2, one frame per
// op) wire path versus the chunked streamed path (proto v3), plus the
// end-to-end redistribution through each transport. The report backs
// the checked-in BENCH record and the -json mode of cmd/redistbench.

// ThroughputOptions configures RunThroughput. The zero value takes
// the full-size defaults; Short shrinks everything for CI smoke runs.
type ThroughputOptions struct {
	// OpBytes is the payload of one wire write/read (default 8 MiB,
	// short 1 MiB) — deliberately beyond one streamed chunk.
	OpBytes int64
	// Ops is the number of timed operations per phase (default 24,
	// short 8).
	Ops int
	// ChunkSize is the streamed-path wire chunk (default 1 MiB).
	ChunkSize int
	// N is the matrix side of the redistribution phase (default 8192,
	// short 512); the redistributed payload is N×N bytes.
	N int64
	// Reps is the number of timed redistribution repetitions per
	// transport after one untimed warmup (default 3, short 2); the
	// median is reported.
	Reps int
	// RebalanceBytes is the file length for the elastic rebalance
	// series (default 32 MiB, short 2 MiB; negative skips the series).
	RebalanceBytes int64
	// RebalanceStripe is that file's stripe unit (default 256 KiB).
	RebalanceStripe int64
	// Short selects the CI smoke-test scale.
	Short bool
	// Metrics, when non-nil, receives the client- and server-side RPC
	// series from every phase.
	Metrics *obs.Registry
}

func (o *ThroughputOptions) fillDefaults() {
	if o.OpBytes <= 0 {
		o.OpBytes = 8 << 20
		if o.Short {
			o.OpBytes = 1 << 20
		}
	}
	if o.Ops <= 0 {
		o.Ops = 24
		if o.Short {
			o.Ops = 8
		}
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.N <= 0 {
		o.N = 8192
		if o.Short {
			o.N = 512
		}
	}
	if o.Reps <= 0 {
		o.Reps = 3
		if o.Short {
			o.Reps = 2
		}
	}
	if o.RebalanceBytes == 0 {
		o.RebalanceBytes = 32 << 20
		if o.Short {
			o.RebalanceBytes = 2 << 20
		}
	}
	if o.RebalanceStripe <= 0 {
		o.RebalanceStripe = 256 << 10
	}
}

// LatencyStat is a per-operation latency summary in microseconds.
type LatencyStat struct {
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// WireModeStat is one wire mode's write/read measurement.
type WireModeStat struct {
	Mode             string      `json:"mode"` // "monolithic" or "streamed"
	WriteMBps        float64     `json:"write_mb_per_s"`
	ReadMBps         float64     `json:"read_mb_per_s"`
	WriteLatency     LatencyStat `json:"write_latency"`
	ReadLatency      LatencyStat `json:"read_latency"`
	WriteAllocsPerOp float64     `json:"write_allocs_per_op"`
	ReadAllocsPerOp  float64     `json:"read_allocs_per_op"`
}

// RedistModeStat is one transport's end-to-end redistribution
// (median of Reps timed runs after one untimed warmup).
type RedistModeStat struct {
	Mode   string  `json:"mode"` // "inproc", "tcp-monolithic", "tcp-streamed"
	MBps   float64 `json:"mb_per_s"`
	WallMs float64 `json:"wall_ms"`
	Reps   int     `json:"reps"`
}

// ThroughputReport is the full benchmark record (the shape of
// BENCH_6.json).
type ThroughputReport struct {
	GOMAXPROCS   int              `json:"gomaxprocs"`
	OpBytes      int64            `json:"op_bytes"`
	Ops          int              `json:"ops"`
	ChunkSize    int              `json:"chunk_size"`
	MatrixN      int64            `json:"matrix_n"`
	RedistSpec   string           `json:"redist_spec"`
	Short        bool             `json:"short"`
	Wire         []WireModeStat   `json:"wire"`
	Redistribute []RedistModeStat `json:"redistribute"`
	// Rebalance is the elastic series: membership changes through the
	// metadata service, each move one online paper redistribution.
	Rebalance         []RebalanceStat `json:"rebalance"`
	WriteSpeedup      float64         `json:"write_speedup_streamed_vs_monolithic"`
	ReadSpeedup       float64         `json:"read_speedup_streamed_vs_monolithic"`
	RedistSpeedup     float64         `json:"redist_speedup_streamed_vs_monolithic"`
	ByteIdentical     bool            `json:"byte_identical"`
	FramePoolDiscards int64           `json:"frame_pool_discards"`
	MsgBufDiscards    int64           `json:"msgbuf_discards"`
}

// startBenchDaemon runs one in-memory daemon on loopback.
func startBenchDaemon(reg *obs.Registry) (string, func() error, error) {
	srv := rpc.NewServer(rpc.ServerConfig{Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
	return ln.Addr().String(), stop, nil
}

// latencyOf summarizes a sorted-or-not duration sample.
func latencyOf(ds []time.Duration) LatencyStat {
	if len(ds) == 0 {
		return LatencyStat{}
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return float64(s[i].Nanoseconds()) / 1e3
	}
	return LatencyStat{P50Us: q(0.50), P99Us: q(0.99)}
}

func mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// wirePhys is a single-subfile physical partition wide enough for the
// benchmark ops.
func wirePhys(opBytes int64) []byte {
	pattern := part.MustPattern(
		part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, opBytes-1, opBytes, 1)}},
	)
	return codec.EncodeFile(part.MustFile(0, pattern))
}

// runWireMode measures large contiguous writes and reads through one
// client configuration against a fresh daemon.
func runWireMode(mode string, cfg rpc.ClientConfig, opBytes int64, ops int, reg *obs.Registry) (WireModeStat, error) {
	stat := WireModeStat{Mode: mode}
	addr, stop, err := startBenchDaemon(reg)
	if err != nil {
		return stat, err
	}
	defer stop()
	cfg.Addr = addr
	cfg.Metrics = reg
	c := rpc.NewClient(cfg)
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &rpc.CreateFileReq{Name: "bench", Phys: wirePhys(opBytes), Subfiles: []int{0}}); err != nil {
		return stat, err
	}
	data := make([]byte, opBytes)
	rand.New(rand.NewSource(6)).Read(data)
	hi := opBytes - 1
	wreq := &rpc.WriteSegsReq{File: "bench", Subfile: 0, Lo: 0, Hi: hi, Data: data}
	// Warm up pools, the connection, and the store length.
	if err := c.WriteSegments(ctx, wreq); err != nil {
		return stat, err
	}

	var ms0, ms1 runtime.MemStats
	writeDs := make([]time.Duration, 0, ops)
	runtime.ReadMemStats(&ms0)
	wStart := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := c.WriteSegments(ctx, wreq); err != nil {
			return stat, fmt.Errorf("%s write %d: %w", mode, i, err)
		}
		writeDs = append(writeDs, time.Since(t0))
	}
	wWall := time.Since(wStart)
	runtime.ReadMemStats(&ms1)
	stat.WriteMBps = mbps(opBytes*int64(ops), wWall)
	stat.WriteLatency = latencyOf(writeDs)
	stat.WriteAllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)

	dst := make([]byte, opBytes)
	rreq := &rpc.ReadSegsReq{File: "bench", Subfile: 0, Lo: 0, Hi: hi, N: opBytes}
	if err := c.ReadSegments(ctx, rreq, dst); err != nil {
		return stat, err
	}
	if !bytes.Equal(dst, data) {
		return stat, fmt.Errorf("%s: read-back differs from written payload", mode)
	}
	readDs := make([]time.Duration, 0, ops)
	runtime.ReadMemStats(&ms0)
	rStart := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := c.ReadSegments(ctx, rreq, dst); err != nil {
			return stat, fmt.Errorf("%s read %d: %w", mode, i, err)
		}
		readDs = append(readDs, time.Since(t0))
	}
	rWall := time.Since(rStart)
	runtime.ReadMemStats(&ms1)
	stat.ReadMBps = mbps(opBytes*int64(ops), rWall)
	stat.ReadLatency = latencyOf(readDs)
	stat.ReadAllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	return stat, nil
}

// redistResult carries one transport's redistribution stat plus the
// redistributed subfiles for the cross-transport equivalence check.
type redistResult struct {
	stat RedistModeStat
	subs [][]byte
}

// runRedistOnce drives write -> redistribute on one transport and
// times the redistribution. The source file is row blocks over four
// subfiles and the target row blocks over eight — the paper's
// change-the-I/O-node-count scenario, whose transfers are large
// contiguous extents and therefore exercise the wire data path rather
// than the segment walk.
func runRedistOnce(mode string, n int64, client *rpc.ClientConfig, reg *obs.Registry) (*redistResult, error) {
	cfg := clusterfile.DefaultConfig()
	var stops []func() error
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	if client != nil {
		var addrs []string
		for i := 0; i < 2; i++ {
			addr, stop, err := startBenchDaemon(reg)
			if err != nil {
				return nil, err
			}
			stops = append(stops, stop)
			addrs = append(addrs, addr)
		}
		tr, err := rpc.NewTransport(addrs, rpc.Options{Client: *client, Metrics: reg})
		if err != nil {
			return nil, err
		}
		defer tr.Close()
		cfg.Transport = tr
	}
	w, err := NewWorkloadWithConfig("r", n, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := w.WriteAll(clusterfile.ToBufferCache); err != nil {
		return nil, err
	}
	rowPat, err := part.RowBlocks(n, n, 8)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	nf, op, err := w.Cluster.StartRedistribute(w.File, "matrix.v2", part.MustFile(0, rowPat), nil, n*n)
	if err != nil {
		return nil, err
	}
	w.Cluster.RunAll()
	wall := time.Since(start)
	if op.Err != nil || !op.Done() {
		return nil, fmt.Errorf("%s redistribute: %v", mode, op.Err)
	}
	res := &redistResult{stat: RedistModeStat{
		Mode:   mode,
		MBps:   mbps(n*n, wall),
		WallMs: float64(wall.Nanoseconds()) / 1e6,
	}}
	for i := 0; i < nf.Phys.Pattern.Len(); i++ {
		b, err := nf.ReadSubfile(i)
		if err != nil {
			return nil, err
		}
		res.subs = append(res.subs, b)
	}
	if err := nf.Close(); err != nil {
		return nil, err
	}
	if err := w.File.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// runRedistMode reports the median of several timed redistributions
// after one untimed warmup — a single run's wall time is dominated by
// allocator and scheduler noise at these sizes.
func runRedistMode(mode string, n int64, reps int, client *rpc.ClientConfig, reg *obs.Registry) (*redistResult, error) {
	if _, err := runRedistOnce(mode, n, client, reg); err != nil { // warmup
		return nil, err
	}
	runs := make([]*redistResult, 0, reps)
	for i := 0; i < reps; i++ {
		res, err := runRedistOnce(mode, n, client, reg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].stat.MBps < runs[j].stat.MBps })
	med := runs[len(runs)/2]
	med.stat.Reps = reps
	return med, nil
}

// RunThroughput runs the full wire + redistribution benchmark and
// assembles the report.
func RunThroughput(opts ThroughputOptions) (*ThroughputReport, error) {
	opts.fillDefaults()
	rep := &ThroughputReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OpBytes:    opts.OpBytes,
		Ops:        opts.Ops,
		ChunkSize:  opts.ChunkSize,
		MatrixN:    opts.N,
		RedistSpec: "row blocks over 4 subfiles -> row blocks over 8 subfiles",
		Short:      opts.Short,
	}

	// Wire ablation: identical ops, monolithic v2 frames vs chunked v3
	// streams.
	mono := rpc.ClientConfig{ProtoVersion: rpc.ProtoVersion2, MaxFrame: 2 * opts.OpBytes}
	streamed := rpc.ClientConfig{ChunkSize: opts.ChunkSize, StreamThreshold: 1}
	for _, m := range []struct {
		name string
		cfg  rpc.ClientConfig
	}{{"monolithic", mono}, {"streamed", streamed}} {
		stat, err := runWireMode(m.name, m.cfg, opts.OpBytes, opts.Ops, opts.Metrics)
		if err != nil {
			return nil, err
		}
		rep.Wire = append(rep.Wire, stat)
	}
	rep.WriteSpeedup = rep.Wire[1].WriteMBps / rep.Wire[0].WriteMBps
	rep.ReadSpeedup = rep.Wire[1].ReadMBps / rep.Wire[0].ReadMBps

	// Redistribution: in-process reference plus both TCP transports.
	// A 64 KiB stream threshold keeps small control transfers on the
	// unary mux path and the bulk extents on the chunked path.
	streamedCluster := rpc.ClientConfig{ChunkSize: opts.ChunkSize, StreamThreshold: 64 << 10}
	modes := []struct {
		name   string
		client *rpc.ClientConfig
	}{
		{"inproc", nil},
		{"tcp-monolithic", &mono},
		{"tcp-streamed", &streamedCluster},
	}
	var results []*redistResult
	for _, m := range modes {
		res, err := runRedistMode(m.name, opts.N, opts.Reps, m.client, opts.Metrics)
		if err != nil {
			return nil, err
		}
		rep.Redistribute = append(rep.Redistribute, res.stat)
		results = append(results, res)
	}
	rep.RedistSpeedup = rep.Redistribute[2].MBps / rep.Redistribute[1].MBps

	// Equivalence: every transport must produce the same redistributed
	// subfiles, byte for byte.
	rep.ByteIdentical = true
	for _, res := range results[1:] {
		if len(res.subs) != len(results[0].subs) {
			rep.ByteIdentical = false
			break
		}
		for i := range res.subs {
			if !bytes.Equal(res.subs[i], results[0].subs[i]) {
				rep.ByteIdentical = false
			}
		}
	}
	// Elastic rebalance: add-node then drain-node through the metadata
	// service, bytes verified after each move.
	if opts.RebalanceBytes > 0 {
		stats, err := runRebalanceBench(opts.RebalanceBytes, opts.RebalanceStripe, opts.Metrics)
		if err != nil {
			return nil, err
		}
		rep.Rebalance = stats
		for _, s := range stats {
			if !s.ByteIdentical {
				rep.ByteIdentical = false
			}
		}
	}

	rep.FramePoolDiscards = rpc.FramePoolDiscards()
	rep.MsgBufDiscards = clusterfile.MsgBufDiscards()
	return rep, nil
}

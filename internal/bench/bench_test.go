package bench

import (
	"testing"

	"parafile/internal/clusterfile"
)

// TestRunConfigShapes: a single configuration produces self-consistent
// rows and matches the workload definition.
func TestRunConfigShapes(t *testing.T) {
	r1, r2, err := RunConfig("c", 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size != 64 || r1.Phys != "c" || r2.Size != 64 || r2.Phys != "c" {
		t.Fatalf("row identity wrong: %+v / %+v", r1, r2)
	}
	if r1.TNetBcUs <= 0 || r1.TNetDiskUs <= r1.TNetBcUs {
		t.Errorf("t_net values implausible: bc=%v disk=%v", r1.TNetBcUs, r1.TNetDiskUs)
	}
	if r1.TGatherUs <= 0 {
		t.Errorf("column layout must gather, got t_g=%v", r1.TGatherUs)
	}
	if r2.ScDiskUs <= r2.ScBcUs || r2.ScBcUs <= 0 {
		t.Errorf("scatter values implausible: bc=%v disk=%v", r2.ScBcUs, r2.ScDiskUs)
	}
}

// TestPerfectMatchRow: the r layout takes the zero-copy path.
func TestPerfectMatchRow(t *testing.T) {
	r1, _, err := RunConfig("r", 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TGatherUs != 0 {
		t.Errorf("r/r should not gather, got t_g=%v", r1.TGatherUs)
	}
}

// TestTableOrderings: the regenerated table preserves the paper's
// orderings at every size: t_net^bc and t_g ordered c > b > r.
func TestTableOrderings(t *testing.T) {
	for _, n := range []int64{64, 256} {
		rows := map[string]Table1Row{}
		for _, phys := range Layouts {
			r1, _, err := RunConfig(phys, n)
			if err != nil {
				t.Fatal(err)
			}
			rows[phys] = r1
		}
		if !(rows["c"].TNetBcUs > rows["b"].TNetBcUs && rows["b"].TNetBcUs > rows["r"].TNetBcUs) {
			t.Errorf("n=%d: t_net^bc ordering violated: c=%v b=%v r=%v",
				n, rows["c"].TNetBcUs, rows["b"].TNetBcUs, rows["r"].TNetBcUs)
		}
		if !(rows["c"].TGatherUs > rows["b"].TGatherUs && rows["b"].TGatherUs > rows["r"].TGatherUs) {
			t.Errorf("n=%d: t_g ordering violated: c=%v b=%v r=%v",
				n, rows["c"].TGatherUs, rows["b"].TGatherUs, rows["r"].TGatherUs)
		}
	}
}

// TestModelDeterminism: the virtual-time columns are identical across
// runs (only host wall-clock columns may vary).
func TestModelDeterminism(t *testing.T) {
	a1, a2, err := RunConfig("b", 128)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := RunConfig("b", 128)
	if err != nil {
		t.Fatal(err)
	}
	if a1.TNetBcUs != b1.TNetBcUs || a1.TNetDiskUs != b1.TNetDiskUs ||
		a1.TGatherUs != b1.TGatherUs {
		t.Errorf("Table 1 model values not deterministic: %+v vs %+v", a1, b1)
	}
	if a2.ScBcUs != b2.ScBcUs || a2.ScDiskUs != b2.ScDiskUs {
		t.Errorf("Table 2 model values not deterministic: %+v vs %+v", a2, b2)
	}
}

// TestWorkloadContent: WriteAll stores exactly the matrix (spot check
// of the harness itself).
func TestWorkloadContent(t *testing.T) {
	w, err := NewWorkload("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAll(clusterfile.ToBufferCache); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < w.File.Phys.Pattern.Len(); i++ {
		total += int64(len(w.File.Subfile(i)))
	}
	if total != 64*64 {
		t.Errorf("subfiles hold %d bytes, want %d", total, 64*64)
	}
}

// TestFormatTables: formatting includes every configured row and the
// paper reference values.
func TestFormatTables(t *testing.T) {
	t1, t2, err := RunAll([]int64{64})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 3 || len(t2) != 3 {
		t.Fatalf("RunAll produced %d/%d rows, want 3/3", len(t1), len(t2))
	}
	s1 := FormatTable1(t1)
	s2 := FormatTable2(t2)
	for _, want := range []string{"t_i", "t_net^bc", "64"} {
		if !contains(s1, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, s1)
		}
	}
	if !contains(s2, "t_sc^disk") {
		t.Errorf("Table 2 output missing header:\n%s", s2)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestRunReadConfig: the read path verifies data and reports sane
// times, with the perfect match fastest.
func TestRunReadConfig(t *testing.T) {
	var times = map[string]float64{}
	for _, phys := range Layouts {
		row, err := RunReadConfig(phys, 64)
		if err != nil {
			t.Fatal(err)
		}
		if row.TNetUs <= 0 {
			t.Errorf("%s: non-positive read t_net", phys)
		}
		times[phys] = row.TNetUs
	}
	if !(times["r"] < times["b"] && times["b"] < times["c"]) {
		t.Errorf("read t_net ordering violated: %v", times)
	}
}

// TestLayoutPatternErrors: unknown layouts fail.
func TestLayoutPatternErrors(t *testing.T) {
	if _, err := LayoutPattern("x", 64); err == nil {
		t.Error("unknown layout accepted")
	}
}

package bench

import (
	"bytes"
	"fmt"

	"parafile/internal/clusterfile"
)

// read.go extends the evaluation beyond the paper's published tables:
// §8.2 states the benchmark "writes and reads a two dimensional
// matrix", but only the write breakdown is tabulated. The read
// experiment regenerates the reverse-symmetric path so the repository
// records both directions.

// ReadRow is the read-path analogue of Table 1.
type ReadRow struct {
	Size int64
	Phys string
	// TMapUs is the real extremity-mapping time.
	TMapUs float64
	// TNetUs is the virtual time from the first request until the
	// last data arrival at the compute node.
	TNetUs float64
	// Messages is the per-node message count (requests + data).
	Messages int
}

// RunReadConfig writes the matrix, then measures every compute node
// reading its full view back, verifying the data.
func RunReadConfig(phys string, n int64) (ReadRow, error) {
	row := ReadRow{Size: n, Phys: phys}
	w, err := NewWorkload(phys, n)
	if err != nil {
		return row, err
	}
	if _, err := w.WriteAll(clusterfile.ToBufferCache); err != nil {
		return row, err
	}
	per := n * n / 4
	ops := make([]*clusterfile.ReadOp, 4)
	bufs := make([][]byte, 4)
	for i, v := range w.Views {
		bufs[i] = make([]byte, per)
		op, err := v.StartRead(0, per-1, bufs[i])
		if err != nil {
			return row, err
		}
		ops[i] = op
	}
	w.Cluster.RunAll()
	for i, op := range ops {
		if op.Err != nil {
			return row, fmt.Errorf("bench: read node %d: %w", i, op.Err)
		}
		if !bytes.Equal(bufs[i], w.ViewBuf(i)) {
			return row, fmt.Errorf("bench: read node %d returned wrong data", i)
		}
		row.TMapUs += float64(op.Stats.TMap.Nanoseconds()) / 4 / us
		row.TNetUs += float64(op.Stats.TNet) / 4 / us
		row.Messages += op.Stats.Messages
	}
	row.Messages /= 4
	return row, nil
}

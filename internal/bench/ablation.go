package bench

import (
	"fmt"
	"strings"
	"time"

	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// ablation.go measures the plan-compilation fast paths in isolation:
// sequential vs parallel pairwise compilation, cold vs warm plan-cache
// lookups, and the segment reduction of the run-coalescing pass. The
// configurations are the §8.2 redistribution pairs — each physical
// layout (c, b, r) against the row-block target the benchmark's views
// use — so the numbers line up with Tables 1/2.

// PlanAblationRow is one (size, layout) configuration of the plan
// compilation ablation.
type PlanAblationRow struct {
	Size int64
	Phys string
	// SeqUs / ParUs are the wall times of one sequential and one
	// parallel plan compilation (Workers = 1 vs Workers).
	SeqUs, ParUs float64
	// Workers is the worker count of the parallel compilation.
	Workers int
	// ColdUs / WarmUs are the wall times of a cache miss (compile +
	// insert) and a cache hit on the same pair.
	ColdUs, WarmUs float64
	// SegsRaw / SegsCoalesced are the total copy runs per period across
	// all transfers, without and with the coalescing pass.
	SegsRaw, SegsCoalesced int64
}

// planPair builds the redistribution pair of one ablation
// configuration: the physical layout as source, row blocks as
// destination.
func planPair(phys string, n int64) (*part.File, *part.File, error) {
	pp, err := LayoutPattern(phys, n)
	if err != nil {
		return nil, nil, err
	}
	rp, err := LayoutPattern("r", n)
	if err != nil {
		return nil, nil, err
	}
	return part.MustFile(0, pp), part.MustFile(0, rp), nil
}

// RunPlanAblation measures every (size, layout) configuration. A
// workers value < 1 selects the CompilePlan default (GOMAXPROCS).
func RunPlanAblation(sizes []int64, workers int) ([]PlanAblationRow, error) {
	return RunPlanAblationObs(sizes, workers, nil, nil)
}

// RunPlanAblationObs is RunPlanAblation with observability: every
// compile records into reg (compile latency histogram, seq/par
// counters, segment counts) and parents its wall-clock span under
// trace; the per-configuration plan cache reports its hit/miss
// counters into reg too. Both may be nil.
func RunPlanAblationObs(sizes []int64, workers int, reg *obs.Registry, trace *obs.Span) ([]PlanAblationRow, error) {
	var rows []PlanAblationRow
	for _, n := range sizes {
		for _, phys := range Layouts {
			src, dst, err := planPair(phys, n)
			if err != nil {
				return nil, err
			}
			row := PlanAblationRow{Size: n, Phys: phys, Workers: workers}
			span := trace.StartChild(fmt.Sprintf("ablation %s/%d", phys, n))

			t0 := time.Now()
			seq, err := redist.CompilePlan(src, dst,
				redist.CompileOptions{Workers: 1, Metrics: reg, Trace: span})
			if err != nil {
				return nil, err
			}
			row.SeqUs = float64(time.Since(t0).Nanoseconds()) / us

			t0 = time.Now()
			if _, err := redist.CompilePlan(src, dst,
				redist.CompileOptions{Workers: workers, Metrics: reg, Trace: span}); err != nil {
				return nil, err
			}
			row.ParUs = float64(time.Since(t0).Nanoseconds()) / us

			raw, err := redist.CompilePlan(src, dst,
				redist.CompileOptions{Workers: 1, NoCoalesce: true, Metrics: reg, Trace: span})
			if err != nil {
				return nil, err
			}
			row.SegsRaw = raw.SegmentsPerPeriod()
			row.SegsCoalesced = seq.SegmentsPerPeriod()

			cache := redist.NewPlanCache(redist.DefaultCacheCapacity,
				redist.CompileOptions{Workers: workers, Trace: span})
			cache.Instrument(reg)
			t0 = time.Now()
			if _, _, err := cache.GetOrCompile(src, dst); err != nil {
				return nil, err
			}
			row.ColdUs = float64(time.Since(t0).Nanoseconds()) / us
			t0 = time.Now()
			if _, hit, err := cache.GetOrCompile(src, dst); err != nil {
				return nil, err
			} else if !hit {
				return nil, fmt.Errorf("bench: warm lookup missed the plan cache")
			}
			row.WarmUs = float64(time.Since(t0).Nanoseconds()) / us
			span.End()

			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatPlanAblation renders the ablation table.
func FormatPlanAblation(rows []PlanAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan compilation ablation (layout -> r redistribution pairs; wall µs on this host)\n")
	fmt.Fprintf(&b, "%-6s %-4s %10s %10s %8s %10s %10s %10s %10s\n",
		"Size", "Ph.", "seq", "par", "workers", "cold", "warm", "segs", "coalesced")
	for _, r := range rows {
		w := fmt.Sprintf("%d", r.Workers)
		if r.Workers < 1 {
			w = "auto"
		}
		fmt.Fprintf(&b, "%-6d %-4s %10.0f %10.0f %8s %10.0f %10.2f %10d %10d\n",
			r.Size, r.Phys, r.SeqUs, r.ParUs, w, r.ColdUs, r.WarmUs, r.SegsRaw, r.SegsCoalesced)
	}
	return b.String()
}

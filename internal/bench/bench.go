// Package bench is the harness that regenerates the paper's
// evaluation (§8.2): the Clusterfile write benchmark over an n×n byte
// matrix, four compute nodes, four I/O nodes, three physical layouts
// (column blocks c, square blocks b, row blocks r) against a row-block
// logical partition, producing the rows of Table 1 (write time
// breakdown at a compute node) and Table 2 (scatter time at an I/O
// node). It is shared by the testing.B benchmarks in the repository
// root and by cmd/redistbench.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"parafile/internal/clusterfile"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/sim"
)

// Sizes are the matrix sizes of §8.2 (bytes per side).
var Sizes = []int64{256, 512, 1024, 2048}

// Layouts are the physical distributions of §8.2, in the paper's table
// order.
var Layouts = []string{"c", "b", "r"}

// LayoutPattern builds one of the paper's physical partitions of an
// n×n byte matrix over four subfiles.
func LayoutPattern(kind string, n int64) (*part.Pattern, error) {
	switch kind {
	case "r":
		return part.RowBlocks(n, n, 4)
	case "c":
		return part.ColBlocks(n, n, 4)
	case "b":
		return part.SquareBlocks(n, n, 2, 2)
	}
	return nil, fmt.Errorf("bench: unknown layout %q", kind)
}

// Workload is one benchmark configuration, ready to write.
type Workload struct {
	Cluster *clusterfile.Cluster
	File    *clusterfile.File
	Views   []*clusterfile.View
	N       int64
	Img     []byte
}

// NewWorkload builds the cluster, the physical file, the reference
// matrix and the four row-block views.
func NewWorkload(phys string, n int64) (*Workload, error) {
	return NewWorkloadWithConfig(phys, n, clusterfile.DefaultConfig())
}

// NewWorkloadWithConfig is NewWorkload on a custom cluster
// configuration (different cost models, disk-backed subfiles, ...).
func NewWorkloadWithConfig(phys string, n int64, cfg clusterfile.Config) (*Workload, error) {
	c, err := clusterfile.New(cfg)
	if err != nil {
		return nil, err
	}
	pp, err := LayoutPattern(phys, n)
	if err != nil {
		return nil, err
	}
	f, err := c.CreateFile("matrix", part.MustFile(0, pp), nil)
	if err != nil {
		return nil, err
	}
	lp, err := LayoutPattern("r", n)
	if err != nil {
		return nil, err
	}
	lf := part.MustFile(0, lp)
	w := &Workload{Cluster: c, File: f, N: n}
	w.Img = make([]byte, n*n)
	rand.New(rand.NewSource(n)).Read(w.Img)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, lf, node)
		if err != nil {
			return nil, err
		}
		w.Views = append(w.Views, v)
	}
	return w, nil
}

// ViewBuf returns compute node i's row block of the matrix.
func (w *Workload) ViewBuf(i int) []byte {
	per := w.N * w.N / 4
	return w.Img[int64(i)*per : int64(i+1)*per]
}

// WriteAll performs the concurrent benchmark write in the given mode
// and returns the per-node operations.
func (w *Workload) WriteAll(mode clusterfile.WriteMode) ([]*clusterfile.WriteOp, error) {
	per := w.N * w.N / 4
	ops := make([]*clusterfile.WriteOp, 4)
	for i, v := range w.Views {
		op, err := v.StartWrite(mode, 0, per-1, w.ViewBuf(i))
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	w.Cluster.RunAll()
	for i, op := range ops {
		if op.Err != nil {
			return nil, fmt.Errorf("bench: node %d: %w", i, op.Err)
		}
	}
	return ops, nil
}

// Table1Row is one row of the paper's Table 1: the write time
// breakdown at one compute node (averages, microseconds).
type Table1Row struct {
	Size int64
	Phys string
	// TIntersectUs is t_i: real time of intersection + projections at
	// view-set time.
	TIntersectUs float64
	// TMapUs is t_m: real time to map the access extremities.
	TMapUs float64
	// TGatherUs is t_g: the era-model cost of the gathers (the real
	// gather time on this machine is reported separately).
	TGatherUs     float64
	TGatherRealUs float64
	// TNetBcUs / TNetDiskUs are t_net: virtual time from first request
	// to last acknowledgment, writing to buffer cache / to disk.
	TNetBcUs   float64
	TNetDiskUs float64
}

// Table2Row is one row of the paper's Table 2: scatter time at one I/O
// node (averages, microseconds).
type Table2Row struct {
	Size int64
	Phys string
	// ScBcUs / ScDiskUs are the modeled scatter+write times per I/O
	// node for the whole benchmark write.
	ScBcUs   float64
	ScDiskUs float64
	// ScRealUs is the real wall time of the scatters on this machine.
	ScRealUs float64
}

const us = float64(sim.Microsecond)

// Options tunes a benchmark run beyond the paper's fixed setup.
type Options struct {
	// ViewCache, when non-nil, is installed in the cluster
	// configuration so repeated runs over the same (view, layout) pair
	// amortize the intersection cost (t_i) across runs. Sharing one
	// cache across every RunConfigOpts call of a sweep turns all runs
	// after the first into warm runs.
	ViewCache *redist.PairCache
	// Metrics, when non-nil, is installed in every cluster the run
	// builds, accumulating the observability series across the whole
	// sweep (cmd/redistbench appends the obs.Report to its output).
	Metrics *obs.Registry
	// Trace, when non-nil, parents the wall-clock spans of every
	// cluster operation the run performs.
	Trace *obs.Span
}

// RunConfig runs the full §8.2 benchmark for one (size, layout) pair:
// a buffer-cache write and a disk write on fresh workloads.
func RunConfig(phys string, n int64) (Table1Row, Table2Row, error) {
	return RunConfigOpts(phys, n, Options{})
}

// RunConfigOpts is RunConfig with tuning options.
func RunConfigOpts(phys string, n int64, opts Options) (Table1Row, Table2Row, error) {
	r1 := Table1Row{Size: n, Phys: phys}
	r2 := Table2Row{Size: n, Phys: phys}

	cfg := clusterfile.DefaultConfig()
	cfg.ViewCache = opts.ViewCache
	cfg.Metrics = opts.Metrics
	cfg.Trace = opts.Trace
	for _, mode := range []clusterfile.WriteMode{clusterfile.ToBufferCache, clusterfile.ToDisk} {
		w, err := NewWorkloadWithConfig(phys, n, cfg)
		if err != nil {
			return r1, r2, err
		}
		ops, err := w.WriteAll(mode)
		if err != nil {
			return r1, r2, err
		}
		var tnet, scatter, gatherModel int64
		var tmap, tgather, screal float64
		perION := map[int]int64{}
		for i, op := range ops {
			tnet += op.Stats.TNet
			gatherModel += op.Stats.GatherModelNs
			scatter += op.Stats.ScatterModelNs
			tmap += float64(op.Stats.TMap.Nanoseconds())
			tgather += float64(op.Stats.TGather.Nanoseconds())
			screal += float64(op.Stats.RealScatter.Nanoseconds())
			for io, ns := range op.Stats.PerIONodeScatterNs {
				perION[io] += ns
			}
			if mode == clusterfile.ToBufferCache {
				r1.TIntersectUs += float64(w.Views[i].TIntersect.Nanoseconds()) / 4 / us
			}
		}
		// Per-I/O-node mean of the total scatter work.
		var ionSum int64
		for _, ns := range perION {
			ionSum += ns
		}
		ionMean := float64(ionSum) / 4 / us
		switch mode {
		case clusterfile.ToBufferCache:
			r1.TMapUs = tmap / 4 / us
			r1.TGatherUs = float64(gatherModel) / 4 / us
			r1.TGatherRealUs = tgather / 4 / us
			r1.TNetBcUs = float64(tnet) / 4 / us
			r2.ScBcUs = ionMean
			r2.ScRealUs = screal / 4 / us
		case clusterfile.ToDisk:
			r1.TNetDiskUs = float64(tnet) / 4 / us
			r2.ScDiskUs = ionMean
		}
	}
	return r1, r2, nil
}

// RunAll regenerates both tables over the paper's full configuration
// grid.
func RunAll(sizes []int64) ([]Table1Row, []Table2Row, error) {
	var t1 []Table1Row
	var t2 []Table2Row
	for _, n := range sizes {
		for _, phys := range Layouts {
			r1, r2, err := RunConfig(phys, n)
			if err != nil {
				return nil, nil, err
			}
			t1 = append(t1, r1)
			t2 = append(t2, r2)
		}
	}
	return t1, t2, nil
}

// PaperTable1 holds the published Table 1 values (µs) for comparison:
// t_i, t_m, t_g, t_net^bc, t_net^disk indexed by size then layout.
var PaperTable1 = map[int64]map[string][5]float64{
	256:  {"c": {1229, 9, 344, 1205, 4346}, "b": {514, 4, 203, 831, 2191}, "r": {310, 0, 0, 510, 1455}},
	512:  {"c": {1096, 11, 940, 2871, 7614}, "b": {506, 6, 568, 2294, 5900}, "r": {333, 0, 0, 1425, 4018}},
	1024: {"c": {1136, 18, 2414, 9237, 22309}, "b": {518, 9, 1703, 7104, 19375}, "r": {318, 0, 0, 5340, 15136}},
	2048: {"c": {1222, 22, 6501, 30781, 80793}, "b": {503, 11, 5496, 26184, 71358}, "r": {296, 0, 0, 20333, 56475}},
}

// PaperTable2 holds the published Table 2 values (µs): t_sc^bc,
// t_sc^disk.
var PaperTable2 = map[int64]map[string][2]float64{
	256:  {"c": {87, 2255}, "b": {61, 1278}, "r": {45, 918}},
	512:  {"c": {292, 3593}, "b": {261, 3095}, "r": {219, 2717}},
	1024: {"c": {1096, 10602}, "b": {1068, 10622}, "r": {1194, 10951}},
	2048: {"c": {4942, 41684}, "b": {4919, 41178}, "r": {5081, 41179}},
}

// FormatTable1 renders the regenerated Table 1 beside the paper's
// numbers.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: write time breakdown at compute node (µs; paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-6s %-4s %-4s %16s %14s %18s %20s %22s\n",
		"Size", "Ph.", "Lo.", "t_i", "t_m", "t_g(model)", "t_net^bc", "t_net^disk")
	for _, r := range rows {
		p := PaperTable1[r.Size][r.Phys]
		fmt.Fprintf(&b, "%-6d %-4s %-4s %8.0f (%4.0f) %6.1f (%3.0f) %9.0f (%5.0f) %10.0f (%6.0f) %11.0f (%6.0f)\n",
			r.Size, r.Phys, "r",
			r.TIntersectUs, p[0], r.TMapUs, p[1], r.TGatherUs, p[2],
			r.TNetBcUs, p[3], r.TNetDiskUs, p[4])
	}
	return b.String()
}

// FormatTable2 renders the regenerated Table 2 beside the paper's
// numbers.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: scatter time at I/O node (µs; paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-6s %-4s %-4s %18s %20s %14s\n", "Size", "Ph.", "Lo.", "t_sc^bc", "t_sc^disk", "real(host)")
	for _, r := range rows {
		p := PaperTable2[r.Size][r.Phys]
		fmt.Fprintf(&b, "%-6d %-4s %-4s %10.0f (%5.0f) %11.0f (%6.0f) %12.0f\n",
			r.Size, r.Phys, "r", r.ScBcUs, p[0], r.ScDiskUs, p[1], r.ScRealUs)
	}
	return b.String()
}

package bench

import "testing"

// TestLoadBalanceSkewedWorkload: the §3 claim — a hot row band lands
// entirely on one disk under the row-block layout, spreads perfectly
// under the row-cyclic layout, and the balanced layout is faster.
func TestLoadBalanceSkewedWorkload(t *testing.T) {
	const n = 256
	rowBlocks, err := LayoutPattern("r", n)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := RunLoadBalance(rowBlocks, n)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := RowCyclicPattern(n)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := RunLoadBalance(cyc, n)
	if err != nil {
		t.Fatal(err)
	}
	// Row blocks: everything on one disk (imbalance == 4).
	if blocked.Imbalance != 4 {
		t.Errorf("row-block imbalance = %v, want 4 (all on one disk): %v",
			blocked.Imbalance, blocked.PerDiskBytes)
	}
	// Row cyclic: perfect balance.
	if cyclic.Imbalance != 1 {
		t.Errorf("row-cyclic imbalance = %v, want 1: %v", cyclic.Imbalance, cyclic.PerDiskBytes)
	}
	// Balance translates into time: the spread write finishes faster
	// because the four servers absorb it in parallel.
	if cyclic.TNetUs >= blocked.TNetUs {
		t.Errorf("balanced layout not faster: cyclic %vµs vs blocked %vµs",
			cyclic.TNetUs, blocked.TNetUs)
	}
}

// TestLoadBalanceColumns: column blocks also spread a hot row band
// (every row crosses all subfiles).
func TestLoadBalanceColumns(t *testing.T) {
	const n = 128
	cols, err := LayoutPattern("c", n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoadBalance(cols, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance != 1 {
		t.Errorf("column-block imbalance = %v, want 1: %v", res.Imbalance, res.PerDiskBytes)
	}
}

package bench

import (
	"fmt"

	"parafile/internal/clusterfile"
	"parafile/internal/part"
)

// loadbalance.go demonstrates §3's load-balancing claim: "data
// redistribution allows also to better partition the data, in order to
// alleviate disk contention and improve the load balance of several
// disks". A skewed workload (only the top quarter of the matrix is
// written — one hot row band) concentrates on a single disk under a
// row-block physical layout, while a row-cyclic layout spreads the
// same accesses evenly.

// LoadBalanceResult reports how a hot-band write spread over the I/O
// nodes.
type LoadBalanceResult struct {
	PerDiskBytes []int64
	// Imbalance is max/mean of the per-disk byte counts: 1 is perfect
	// balance, IONodes means a single disk took everything.
	Imbalance float64
	// TNetUs is the virtual write time — contention makes imbalance
	// expensive.
	TNetUs float64
}

// RunLoadBalance writes the hot top band of an n×n matrix — all four
// compute nodes writing disjoint stripes of the band concurrently,
// through to disk — onto the given physical pattern, and measures the
// per-disk byte distribution and the completion time.
func RunLoadBalance(phys *part.Pattern, n int64) (*LoadBalanceResult, error) {
	c, err := clusterfile.New(clusterfile.DefaultConfig())
	if err != nil {
		return nil, err
	}
	f, err := c.CreateFile("hot", part.MustFile(0, phys), nil)
	if err != nil {
		return nil, err
	}
	// A 16-way row-block logical partition: views 0-3 together are the
	// top quarter of the matrix — the hot band.
	lp, err := part.RowBlocks(n, n, 16)
	if err != nil {
		return nil, err
	}
	lf := part.MustFile(0, lp)
	per := n * n / 16
	ops := make([]*clusterfile.WriteOp, 4)
	for node := 0; node < 4; node++ {
		v, err := f.SetView(node, lf, node)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, per)
		for i := range buf {
			buf[i] = byte(i + node)
		}
		op, err := v.StartWrite(clusterfile.ToDisk, 0, per-1, buf)
		if err != nil {
			return nil, err
		}
		ops[node] = op
	}
	c.RunAll()
	res := &LoadBalanceResult{}
	for _, op := range ops {
		if op.Err != nil {
			return nil, op.Err
		}
		if t := float64(op.Stats.TNet) / us; t > res.TNetUs {
			res.TNetUs = t
		}
	}
	var total, max int64
	for _, d := range c.Disks {
		b := d.Stats().DiskBytes
		res.PerDiskBytes = append(res.PerDiskBytes, b)
		total += b
		if b > max {
			max = b
		}
	}
	if total != 4*per {
		return nil, fmt.Errorf("bench: disks absorbed %d bytes, want %d", total, 4*per)
	}
	mean := float64(total) / float64(len(c.Disks))
	res.Imbalance = float64(max) / mean
	return res, nil
}

// RowCyclicPattern partitions the n×n matrix by dealing single rows
// round-robin over 4 subfiles — the balanced alternative layout the
// redistribution enables.
func RowCyclicPattern(n int64) (*part.Pattern, error) {
	return part.NDArray(part.ArraySpec{
		Dims:     []int64{n, n},
		ElemSize: 1,
		Dists: []part.DimDist{
			{Kind: part.Cyclic, Procs: 4, Block: 1},
			{Kind: part.All},
		},
	})
}

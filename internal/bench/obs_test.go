package bench

import (
	"strings"
	"testing"

	"parafile/internal/obs"
	"parafile/internal/redist"
)

// TestRunPlanAblationObs checks that the instrumented ablation records
// its compiles and cache traffic into the registry and parents its
// spans under the given root.
func TestRunPlanAblationObs(t *testing.T) {
	reg := obs.NewRegistry()
	root := obs.StartSpan("test")
	rows, err := RunPlanAblationObs([]int64{64}, 1, reg, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Layouts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Layouts))
	}
	// Per configuration: seq, par, raw and the cache's cold compile.
	wantCompiles := uint64(4 * len(Layouts))
	if got := reg.Histogram(redist.MetricCompileNs, obs.LatencyBuckets()).Count(); got != wantCompiles {
		t.Errorf("compile histogram count = %d, want %d", got, wantCompiles)
	}
	// Each configuration's private cache does one miss and one hit.
	if got := reg.Counter(`parafile_redist_plan_cache_hits_total`).Value(); got != uint64(len(Layouts)) {
		t.Errorf("plan cache hits = %d, want %d", got, len(Layouts))
	}
	if got := reg.Counter(`parafile_redist_plan_cache_misses_total`).Value(); got != uint64(len(Layouts)) {
		t.Errorf("plan cache misses = %d, want %d", got, len(Layouts))
	}
	root.End()
	txt := root.Format()
	for _, want := range []string{"ablation c/64", "ablation b/64", "ablation r/64", "redist.compile"} {
		if !strings.Contains(txt, want) {
			t.Errorf("span tree missing %q:\n%s", want, txt)
		}
	}
}

// TestRunConfigOptsMetrics checks the cluster benchmark threads the
// registry through to the clusterfile layer.
func TestRunConfigOptsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if _, _, err := RunConfigOpts("c", 64, Options{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	// Two workloads (bc + disk), four writes each.
	if got := reg.Counter("parafile_clusterfile_write_ops_total").Value(); got != 8 {
		t.Errorf("write ops = %d, want 8", got)
	}
	if got := reg.Counter("parafile_clusterfile_gather_bytes_total").Value(); got == 0 {
		t.Error("gather bytes not recorded")
	}
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"parafile/internal/meta"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// rebalance.go measures the elastic path end to end: a file striped
// over a metadata-managed cluster is rebalanced by membership changes
// (add a node, drain a node), each move running as one paper
// redistribution MAP_new ∘ MAP⁻¹_old under the fence/commit protocol.
// The series reports rebalance throughput — bytes moved per second of
// driver wall time, fences and CAS commit included — so regressions
// in the control plane show up alongside data-path regressions.

// RebalanceStat is one membership change's measured rebalance.
type RebalanceStat struct {
	// Step names the membership change, e.g. "add-node (3->4)".
	Step string `json:"step"`
	// FromEpoch/ToEpoch bracket the placement flip.
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// FileBytes is the logical file length; BytesMoved the inter-node
	// redistribution traffic (replication makes it exceed FileBytes).
	FileBytes  int64 `json:"file_bytes"`
	BytesMoved int64 `json:"bytes_moved"`
	Messages   int   `json:"messages"`
	// MBps is BytesMoved over the driver wall time — fence, copy,
	// commit and unfence included.
	MBps   float64 `json:"mb_per_s"`
	WallMs float64 `json:"wall_ms"`
	// ByteIdentical reports the post-move read-back against the
	// original payload.
	ByteIdentical bool `json:"byte_identical"`
}

// runRebalanceBench writes fileBytes through the metadata service onto
// three daemons (replication 2), then times an add-node grow and a
// drain of an original node, verifying the bytes after each move.
func runRebalanceBench(fileBytes, stripeBytes int64, reg *obs.Registry) ([]RebalanceStat, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	dir, err := os.MkdirTemp("", "parafile-bench-meta-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := meta.OpenStore(dir, meta.StoreConfig{Metrics: reg})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	svc := meta.NewService(meta.ServiceConfig{Store: st, Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go svc.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()

	var daemons []string
	for i := 0; i < 4; i++ {
		addr, stop, err := startBenchDaemon(reg)
		if err != nil {
			return nil, err
		}
		defer stop()
		daemons = append(daemons, addr)
	}

	fs := meta.Dial(ln.Addr().String(), meta.Options{Metrics: reg})
	defer fs.Close()
	ctx := context.Background()
	for _, addr := range daemons[:3] {
		if _, err := fs.SetNode(ctx, addr, rpc.NodeActive); err != nil {
			return nil, err
		}
	}

	f, err := fs.Create(ctx, "bench", stripeBytes, 2)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload := make([]byte, fileBytes)
	rand.New(rand.NewSource(8)).Read(payload)
	if err := f.WriteAt(ctx, payload, 0); err != nil {
		return nil, err
	}

	check := func() (bool, error) {
		got := make([]byte, len(payload))
		if err := f.ReadAt(ctx, got, 0); err != nil {
			return false, err
		}
		return bytes.Equal(got, payload), nil
	}

	var stats []RebalanceStat
	record := func(step string, outcomes []*meta.RebalanceOutcome) error {
		if len(outcomes) != 1 {
			return fmt.Errorf("rebalance bench: %s touched %d files, want 1", step, len(outcomes))
		}
		if outcomes[0].Err != nil {
			return fmt.Errorf("rebalance bench: %s: %w", step, outcomes[0].Err)
		}
		r := outcomes[0].Result
		if !r.Moved {
			return fmt.Errorf("rebalance bench: %s did not move the file", step)
		}
		same, err := check()
		if err != nil {
			return fmt.Errorf("rebalance bench: read-back after %s: %w", step, err)
		}
		stats = append(stats, RebalanceStat{
			Step:          step,
			FromEpoch:     r.FromEpoch,
			ToEpoch:       r.ToEpoch,
			FileBytes:     fileBytes,
			BytesMoved:    r.BytesMoved,
			Messages:      r.Messages,
			MBps:          mbps(r.BytesMoved, r.Wall),
			WallMs:        float64(r.Wall.Nanoseconds()) / 1e6,
			ByteIdentical: same,
		})
		return nil
	}

	grow, err := fs.AddNode(ctx, daemons[3])
	if err != nil {
		return nil, fmt.Errorf("rebalance bench: add-node: %w", err)
	}
	if err := record("add-node (3->4)", grow); err != nil {
		return nil, err
	}
	shrink, err := fs.DrainNode(ctx, daemons[0])
	if err != nil {
		return nil, fmt.Errorf("rebalance bench: drain-node: %w", err)
	}
	if err := record("drain-node (4->3)", shrink); err != nil {
		return nil, err
	}
	return stats, nil
}

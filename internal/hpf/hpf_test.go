package hpf

import (
	"strings"
	"testing"

	"parafile/internal/part"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
		ok   bool
	}{
		{"256x256", []int64{256, 256}, true},
		{"8", []int64{8}, true},
		{"4X6x2", []int64{4, 6, 2}, true},
		{" 16 x 16 ", []int64{16, 16}, true},
		{"", nil, false},
		{"4x0", nil, false},
		{"4xfoo", nil, false},
	}
	for _, c := range cases {
		got, err := ParseDims(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseDims(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseDims(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("ParseDims(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestParseDists(t *testing.T) {
	ds, err := ParseDists("BLOCK(4), *, CYCLIC(3), CYCLIC(2,5)")
	if err != nil {
		t.Fatal(err)
	}
	want := []part.DimDist{
		{Kind: part.Block, Procs: 4},
		{Kind: part.All},
		{Kind: part.Cyclic, Procs: 3, Block: 1},
		{Kind: part.Cyclic, Procs: 5, Block: 2},
	}
	if len(ds) != len(want) {
		t.Fatalf("got %v, want %v", ds, want)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("dist %d = %+v, want %+v", i, ds[i], want[i])
		}
	}
	bad := []string{"", "BLOCK", "BLOCK()", "BLOCK(0)", "CYCLIC(1,2,3)", "SCATTER(2)", "block(x)"}
	for _, b := range bad {
		if _, err := ParseDists(b); err == nil {
			t.Errorf("ParseDists(%q) accepted", b)
		}
	}
	// Lowercase accepted.
	if _, err := ParseDists("block(2),cyclic(2)"); err != nil {
		t.Errorf("lowercase rejected: %v", err)
	}
}

func TestParseValidation(t *testing.T) {
	if _, err := Parse("4x4", "BLOCK(2)", 1); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := Parse("4x4", "BLOCK(2),*", 0); err == nil {
		t.Error("zero element size accepted")
	}
}

// TestPatternMatchesBuilders: the parsed notation produces the same
// partitions as the programmatic builders.
func TestPatternMatchesBuilders(t *testing.T) {
	fromHPF, err := Pattern("8x8", "BLOCK(4),*", 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := part.RowBlocks(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fromHPF.Len() != direct.Len() || fromHPF.Size() != direct.Size() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			fromHPF.Len(), fromHPF.Size(), direct.Len(), direct.Size())
	}
	for e := 0; e < direct.Len(); e++ {
		a := fromHPF.Element(e).Set.Offsets()
		b := direct.Element(e).Set.Offsets()
		if len(a) != len(b) {
			t.Fatalf("element %d differs", e)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("element %d differs at offset %d", e, i)
			}
		}
	}
}

// TestFormatRoundTrip: Format output parses back to the same spec.
func TestFormatRoundTrip(t *testing.T) {
	specs := []part.ArraySpec{
		{Dims: []int64{256, 256}, ElemSize: 1, Dists: []part.DimDist{
			{Kind: part.Block, Procs: 4}, {Kind: part.All}}},
		{Dims: []int64{12, 8, 4}, ElemSize: 8, Dists: []part.DimDist{
			{Kind: part.Cyclic, Procs: 3, Block: 2},
			{Kind: part.Cyclic, Procs: 2, Block: 1},
			{Kind: part.All}}},
	}
	for _, spec := range specs {
		dims, dists := Format(spec)
		back, err := Parse(dims, dists, spec.ElemSize)
		if err != nil {
			t.Fatalf("Format produced unparsable %q / %q: %v", dims, dists, err)
		}
		if len(back.Dims) != len(spec.Dims) || len(back.Dists) != len(spec.Dists) {
			t.Fatalf("round trip changed rank")
		}
		for i := range spec.Dims {
			if back.Dims[i] != spec.Dims[i] || back.Dists[i] != spec.Dists[i] {
				t.Fatalf("round trip changed spec: %+v vs %+v", back, spec)
			}
		}
	}
}

func TestSplitTopRespectsParens(t *testing.T) {
	got := splitTop("CYCLIC(2,5),BLOCK(4)")
	if len(got) != 2 || !strings.HasPrefix(got[0], "CYCLIC") || !strings.HasPrefix(got[1], "BLOCK") {
		t.Errorf("splitTop = %v", got)
	}
}

// Package hpf parses High-Performance-Fortran-style distribution
// notation into array specifications — the front door the paper's §3
// promises: "support for any High-Performance Fortran-style BLOCK and
// CYCLIC based data distribution on disk and in memory is a
// straightforward application of our approach."
//
// Grammar (per dimension, comma separated):
//
//   - the dimension is not distributed
//     BLOCK(p)     contiguous chunks over p processors
//     CYCLIC(p)    round-robin single elements over p processors
//     CYCLIC(b,p)  round-robin blocks of b elements over p processors
//
// Dimensions are written N1xN2x...xNk (element counts).
package hpf

import (
	"fmt"
	"strconv"
	"strings"

	"parafile/internal/part"
)

// ParseDims parses "256x256" style dimension lists.
func ParseDims(s string) ([]int64, error) {
	fields := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(fields) == 0 || fields[0] == "" {
		return nil, fmt.Errorf("hpf: empty dimension list %q", s)
	}
	dims := make([]int64, len(fields))
	for i, f := range fields {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("hpf: bad dimension %q in %q", f, s)
		}
		dims[i] = n
	}
	return dims, nil
}

// ParseDists parses a comma-separated distribution list.
func ParseDists(s string) ([]part.DimDist, error) {
	fields := splitTop(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("hpf: empty distribution list %q", s)
	}
	out := make([]part.DimDist, len(fields))
	for i, f := range fields {
		d, err := parseDist(f)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// splitTop splits on commas that are not inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	for i := range out {
		out[i] = strings.TrimSpace(out[i])
	}
	return out
}

func parseDist(s string) (part.DimDist, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case u == "*":
		return part.DimDist{Kind: part.All}, nil
	case strings.HasPrefix(u, "BLOCK(") && strings.HasSuffix(u, ")"):
		p, err := strconv.ParseInt(u[6:len(u)-1], 10, 64)
		if err != nil || p < 1 {
			return part.DimDist{}, fmt.Errorf("hpf: bad BLOCK processor count in %q", s)
		}
		return part.DimDist{Kind: part.Block, Procs: p}, nil
	case strings.HasPrefix(u, "CYCLIC(") && strings.HasSuffix(u, ")"):
		args := strings.Split(u[7:len(u)-1], ",")
		switch len(args) {
		case 1:
			p, err := strconv.ParseInt(strings.TrimSpace(args[0]), 10, 64)
			if err != nil || p < 1 {
				return part.DimDist{}, fmt.Errorf("hpf: bad CYCLIC processor count in %q", s)
			}
			return part.DimDist{Kind: part.Cyclic, Procs: p, Block: 1}, nil
		case 2:
			b, err1 := strconv.ParseInt(strings.TrimSpace(args[0]), 10, 64)
			p, err2 := strconv.ParseInt(strings.TrimSpace(args[1]), 10, 64)
			if err1 != nil || err2 != nil || b < 1 || p < 1 {
				return part.DimDist{}, fmt.Errorf("hpf: bad CYCLIC(b,p) arguments in %q", s)
			}
			return part.DimDist{Kind: part.Cyclic, Procs: p, Block: b}, nil
		}
		return part.DimDist{}, fmt.Errorf("hpf: CYCLIC takes one or two arguments in %q", s)
	}
	return part.DimDist{}, fmt.Errorf("hpf: unknown distribution %q (want *, BLOCK(p), CYCLIC(p) or CYCLIC(b,p))", s)
}

// Parse combines dimensions, distributions and an element size into a
// validated array specification.
func Parse(dims, dists string, elemSize int64) (part.ArraySpec, error) {
	d, err := ParseDims(dims)
	if err != nil {
		return part.ArraySpec{}, err
	}
	dd, err := ParseDists(dists)
	if err != nil {
		return part.ArraySpec{}, err
	}
	if len(d) != len(dd) {
		return part.ArraySpec{}, fmt.Errorf("hpf: %d dimensions but %d distributions", len(d), len(dd))
	}
	if elemSize < 1 {
		return part.ArraySpec{}, fmt.Errorf("hpf: non-positive element size %d", elemSize)
	}
	return part.ArraySpec{Dims: d, ElemSize: elemSize, Dists: dd}, nil
}

// Pattern parses and builds the partitioning pattern in one step.
func Pattern(dims, dists string, elemSize int64) (*part.Pattern, error) {
	spec, err := Parse(dims, dists, elemSize)
	if err != nil {
		return nil, err
	}
	return part.NDArray(spec)
}

// Format renders a spec back into the notation (for round-trip tests
// and tool output).
func Format(spec part.ArraySpec) (string, string) {
	dimParts := make([]string, len(spec.Dims))
	for i, d := range spec.Dims {
		dimParts[i] = strconv.FormatInt(d, 10)
	}
	distParts := make([]string, len(spec.Dists))
	for i, dd := range spec.Dists {
		switch dd.Kind {
		case part.All:
			distParts[i] = "*"
		case part.Block:
			distParts[i] = fmt.Sprintf("BLOCK(%d)", dd.Procs)
		case part.Cyclic:
			if dd.Block == 1 {
				distParts[i] = fmt.Sprintf("CYCLIC(%d)", dd.Procs)
			} else {
				distParts[i] = fmt.Sprintf("CYCLIC(%d,%d)", dd.Block, dd.Procs)
			}
		}
	}
	return strings.Join(dimParts, "x"), strings.Join(distParts, ",")
}

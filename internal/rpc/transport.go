package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"parafile/internal/clusterfile"
	"parafile/internal/codec"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// transport.go adapts a set of parafiled daemons to the
// clusterfile.Transport seam: each subfile's handle forwards the
// protocol's storage operations to the daemon of the subfile's I/O
// node, so the same compiled redistribution plans drive bytes over
// real sockets. When a deployment runs fewer daemons than the cluster
// has I/O nodes, nodes map onto daemons round-robin.

// Options configures a TCP transport.
type Options struct {
	// Client is the per-node client template (Addr is filled per
	// endpoint). Zero values take the ClientConfig defaults.
	Client ClientConfig
	// Reopen opens existing subfiles on the daemons without truncation
	// (the reopen-from-metadata case). Default is a fresh truncate,
	// matching DirStorageFactory.
	Reopen bool
	// DegradedOpen tolerates unreachable daemons at Open time: a failed
	// CreateFile yields handles that error on every operation for that
	// daemon's subfiles, instead of failing the Open wholesale. With
	// replication, the surviving placements then serve reads while the
	// dead node's placements report as failed — the degraded-but-open
	// state parafilectl needs to scrub or repair around a dead node.
	// Default (false) is strict: any unreachable daemon fails Open.
	DegradedOpen bool
	// Metrics receives the client-side RPC series; nil records
	// nothing. Overrides Client.Metrics when set.
	Metrics *obs.Registry
}

// Transport implements clusterfile.Transport over TCP.
type Transport struct {
	opts     Options
	reopen   bool
	degraded bool

	mu      sync.RWMutex
	clients []*Client
}

var _ clusterfile.Transport = (*Transport)(nil)

// NewTransport builds a transport over the given daemon endpoints
// (host:port each), one client pool per endpoint.
func NewTransport(addrs []string, opts Options) (*Transport, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: transport needs at least one endpoint")
	}
	t := &Transport{opts: opts, reopen: opts.Reopen, degraded: opts.DegradedOpen}
	for _, addr := range addrs {
		t.clients = append(t.clients, t.newClient(addr))
	}
	return t, nil
}

func (t *Transport) newClient(addr string) *Client {
	cfg := t.opts.Client
	cfg.Addr = addr
	if t.opts.Metrics != nil {
		cfg.Metrics = t.opts.Metrics
	}
	return NewClient(cfg)
}

// Update reconciles the endpoint list after a placement refresh:
// clients for endpoints still present are kept (their pools and
// negotiated connections survive), new endpoints get fresh clients,
// and clients for endpoints no longer in the map are retired — their
// pooled connections close now, counted under
// parafile_pool_discards{kind="retired"}, instead of idling until
// discard caps evict them. Handles open before the update keep their
// client pointers; operations on a retired client fail, which sends
// the caller back through its placement-refresh path.
func (t *Transport) Update(addrs []string) {
	t.mu.Lock()
	old := t.clients
	kept := make(map[*Client]bool, len(old))
	byAddr := make(map[string]*Client, len(old))
	for _, c := range old {
		byAddr[c.Addr()] = c
	}
	next := make([]*Client, 0, len(addrs))
	for _, addr := range addrs {
		if c, ok := byAddr[addr]; ok && !kept[c] {
			kept[c] = true
			next = append(next, c)
			continue
		}
		next = append(next, t.newClient(addr))
	}
	t.clients = next
	t.mu.Unlock()
	for _, c := range old {
		if !kept[c] {
			c.Retire()
		}
	}
}

// Endpoints returns the current endpoint list, in node order.
func (t *Transport) Endpoints() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	addrs := make([]string, len(t.clients))
	for i, c := range t.clients {
		addrs[i] = c.Addr()
	}
	return addrs
}

// nodeClient maps an I/O node id onto a daemon.
func (t *Transport) nodeClient(ioNode int) *Client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.clients[ioNode%len(t.clients)]
}

// Open registers the file on every involved daemon and returns one
// remote handle per subfile.
func (t *Transport) Open(ctx context.Context, name string, phys *part.File, assign []int) ([]clusterfile.SubfileHandle, error) {
	return t.OpenEpoch(ctx, name, phys, assign, 0)
}

// OpenEpoch is Open with every handle's operations stamped with a
// placement epoch: the daemons compare it against their stores' and
// answer ErrStalePlacement on mismatch (or, for writes, while
// fenced). Epoch zero is the unstamped legacy protocol.
func (t *Transport) OpenEpoch(ctx context.Context, name string, phys *part.File, assign []int, epoch uint64) ([]clusterfile.SubfileHandle, error) {
	physEnc := codec.EncodeFile(phys)
	// Group the subfiles by daemon, preserving client order so the
	// CreateFile fan-out is deterministic.
	t.mu.RLock()
	clients := t.clients
	t.mu.RUnlock()
	perClient := make(map[*Client][]int)
	for sub, node := range assign {
		c := clients[node%len(clients)]
		perClient[c] = append(perClient[c], sub)
	}
	refs := make(map[*Client]*fileRef)
	broken := make(map[*Client]error)
	for _, c := range clients {
		subs := perClient[c]
		if len(subs) == 0 {
			continue
		}
		err := c.CreateFile(ctx, &CreateFileReq{Name: name, Phys: physEnc, Subfiles: subs, Reopen: t.reopen, Epoch: epoch})
		if err != nil {
			if t.degraded {
				// Remember the failure; the daemon's subfiles get
				// handles that surface it on every operation, so the
				// replication layer treats the node as failed instead
				// of refusing to open the file at all.
				broken[c] = fmt.Errorf("rpc: create %q on %s: %w", name, c.Addr(), err)
				continue
			}
			return nil, fmt.Errorf("rpc: create %q on %s: %w", name, c.Addr(), err)
		}
		ref := &fileRef{c: c, file: name}
		ref.n.Store(int64(len(subs)))
		refs[c] = ref
	}
	handles := make([]clusterfile.SubfileHandle, len(assign))
	for sub, node := range assign {
		c := clients[node%len(clients)]
		if err, bad := broken[c]; bad {
			handles[sub] = &brokenHandle{err: err}
			continue
		}
		handles[sub] = &remoteHandle{c: c, file: name, subfile: int64(sub), epoch: epoch, ref: refs[c]}
	}
	return handles, nil
}

// SetEpoch fans the placement-epoch flip out to every daemon: each
// ratchets the file's stores to the epoch and raises or clears the
// write fence. Daemons holding no store of the file answer OK.
func (t *Transport) SetEpoch(ctx context.Context, file string, epoch uint64, fence bool) error {
	t.mu.RLock()
	clients := t.clients
	t.mu.RUnlock()
	var first error
	for _, c := range clients {
		if err := c.SetEpoch(ctx, file, epoch, fence); err != nil && first == nil {
			first = fmt.Errorf("rpc: set epoch on %s: %w", c.Addr(), err)
		}
	}
	return first
}

// RemoveStore fans a store-generation sweep out to every daemon: each
// closes the file's stores (replica stores included) and deletes
// their backing media. Daemons not hosting the store answer OK, so
// the sweep is idempotent across the fan-out and across retries.
func (t *Transport) RemoveStore(ctx context.Context, file string) error {
	t.mu.RLock()
	clients := t.clients
	t.mu.RUnlock()
	var first error
	for _, c := range clients {
		if err := c.RemoveStore(ctx, file); err != nil && first == nil {
			first = fmt.Errorf("rpc: remove store on %s: %w", c.Addr(), err)
		}
	}
	return first
}

// Close closes every daemon client pool.
func (t *Transport) Close() error {
	t.mu.RLock()
	clients := t.clients
	t.mu.RUnlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fileRef counts the open handles of one (daemon, file) pair so the
// wire Close travels once, when the last handle closes.
type fileRef struct {
	c    *Client
	file string
	n    atomic.Int64
}

func (r *fileRef) release() error {
	if r.n.Add(-1) > 0 {
		return nil
	}
	// Close carries no context by interface design (it must run during
	// teardown of an already-cancelled op), so the wire close is
	// bounded only by the client's request timeouts.
	return r.c.CloseFile(context.Background(), r.file)
}

// remoteHandle is one subfile on a remote daemon.
type remoteHandle struct {
	c       *Client
	file    string
	subfile int64
	// epoch stamps every storage op with the placement epoch the handle
	// was opened at (zero = unstamped legacy protocol).
	epoch uint64
	ref   *fileRef

	mu     sync.Mutex
	projFP map[*redist.Projection]uint64 // encode+fingerprint memo
}

func (h *remoteHandle) EnsureLen(ctx context.Context, n int64) error {
	if n <= 0 {
		return nil
	}
	return h.c.WriteSegments(ctx, &WriteSegsReq{File: h.file, Subfile: h.subfile, Lo: 0, Hi: n - 1, Epoch: h.epoch})
}

func (h *remoteHandle) Len(ctx context.Context) (int64, error) {
	return h.c.Stat(ctx, h.file, h.subfile)
}

func (h *remoteHandle) WriteAt(ctx context.Context, p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	return h.c.WriteSegments(ctx, &WriteSegsReq{
		File: h.file, Subfile: h.subfile, Lo: off, Hi: off + int64(len(p)) - 1, Data: p, Epoch: h.epoch,
	})
}

func (h *remoteHandle) ReadAt(ctx context.Context, p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	return h.c.ReadSegments(ctx, &ReadSegsReq{
		File: h.file, Subfile: h.subfile, Lo: off, Hi: off + int64(len(p)) - 1, N: int64(len(p)), Epoch: h.epoch,
	}, p)
}

// ensureProjection encodes and registers the projection on the daemon
// (once per shape per client) and returns its fingerprint.
func (h *remoteHandle) ensureProjection(ctx context.Context, p *redist.Projection) (uint64, []byte, error) {
	h.mu.Lock()
	if h.projFP == nil {
		h.projFP = make(map[*redist.Projection]uint64)
	}
	fp, seen := h.projFP[p]
	h.mu.Unlock()
	var enc []byte
	if !seen {
		enc = redist.EncodeProjection(p)
		fp = Fingerprint(enc)
		h.mu.Lock()
		h.projFP[p] = fp
		h.mu.Unlock()
	}
	if h.c.Registered(fp) {
		return fp, enc, nil
	}
	if enc == nil {
		enc = redist.EncodeProjection(p)
	}
	if err := h.c.SetView(ctx, fp, enc); err != nil {
		return 0, nil, err
	}
	return fp, enc, nil
}

// reRegister refreshes a projection the daemon reported unknown (a
// daemon restart loses the registration table).
func (h *remoteHandle) reRegister(ctx context.Context, p *redist.Projection, fp uint64) error {
	h.c.Forget(fp)
	return h.c.SetView(ctx, fp, redist.EncodeProjection(p))
}

func isUnknownProjection(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == ErrCodeUnknownProjection
}

func (h *remoteHandle) Scatter(ctx context.Context, p *redist.Projection, lo, hi int64, data []byte) error {
	fp, _, err := h.ensureProjection(ctx, p)
	if err != nil {
		return err
	}
	req := &WriteSegsReq{File: h.file, Subfile: h.subfile, Fingerprint: fp, Lo: lo, Hi: hi, Data: data, Epoch: h.epoch}
	err = h.c.WriteSegments(ctx, req)
	if isUnknownProjection(err) {
		if err = h.reRegister(ctx, p, fp); err != nil {
			return err
		}
		err = h.c.WriteSegments(ctx, req)
	}
	return err
}

func (h *remoteHandle) Gather(ctx context.Context, p *redist.Projection, lo, hi int64, dst []byte) error {
	fp, _, err := h.ensureProjection(ctx, p)
	if err != nil {
		return err
	}
	req := &ReadSegsReq{File: h.file, Subfile: h.subfile, Fingerprint: fp, Lo: lo, Hi: hi, N: int64(len(dst)), Epoch: h.epoch}
	err = h.c.ReadSegments(ctx, req, dst)
	if isUnknownProjection(err) {
		if err = h.reRegister(ctx, p, fp); err != nil {
			return err
		}
		err = h.c.ReadSegments(ctx, req, dst)
	}
	return err
}

func (h *remoteHandle) Checksum(ctx context.Context, off, n int64) (uint32, error) {
	return h.c.Checksum(ctx, h.file, h.subfile, off, n)
}

func (h *remoteHandle) Close() error {
	if h.ref == nil {
		return nil
	}
	return h.ref.release()
}

// brokenHandle stands in for a subfile whose daemon was unreachable
// during a DegradedOpen: every operation reports the open-time error,
// which the replication layer's failover and quorum accounting absorb.
type brokenHandle struct {
	err error
}

func (h *brokenHandle) EnsureLen(ctx context.Context, n int64) error { return h.err }
func (h *brokenHandle) Len(ctx context.Context) (int64, error)       { return 0, h.err }
func (h *brokenHandle) WriteAt(ctx context.Context, p []byte, off int64) error {
	return h.err
}
func (h *brokenHandle) ReadAt(ctx context.Context, p []byte, off int64) error {
	return h.err
}
func (h *brokenHandle) Scatter(ctx context.Context, p *redist.Projection, lo, hi int64, data []byte) error {
	return h.err
}
func (h *brokenHandle) Gather(ctx context.Context, p *redist.Projection, lo, hi int64, dst []byte) error {
	return h.err
}
func (h *brokenHandle) Checksum(ctx context.Context, off, n int64) (uint32, error) {
	return 0, h.err
}
func (h *brokenHandle) Close() error { return nil }

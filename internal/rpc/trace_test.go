package rpc_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/codec"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// trace_test.go is the acceptance suite of the distributed-tracing
// PR: the loopback workload against traced daemons must produce
// stitched cross-node span trees for write, read and redistribute;
// with tracing off (or against an old daemon) the wire must carry no
// tracing messages at all; and a node dying mid-operation must still
// yield a complete tree with the dead node's RPC span marked failed.

// startTracedDaemon runs one in-process daemon with tracing on and
// returns its address plus an idempotent stop function (also wired to
// t.Cleanup, so tests only call it when they kill a node early).
func startTracedDaemon(t *testing.T, cfg rpc.ServerConfig) (string, func()) {
	t.Helper()
	srv := rpc.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// nodesIn collects the distinct node labels appearing in a tree.
func nodesIn(tree *obs.TraceTree) map[string]bool {
	nodes := map[string]bool{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		nodes[n.Node] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	if tree.Root != nil {
		walk(tree.Root)
	}
	return nodes
}

// spanNamed returns the first span in the tree whose name contains
// the substring, or nil.
func spanNamed(tree *obs.TraceTree, sub string) *obs.TraceNode {
	var found *obs.TraceNode
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		if found == nil && strings.Contains(n.Name, sub) {
			found = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if tree.Root != nil {
		walk(tree.Root)
	}
	return found
}

// runTracedWorkload drives the standard workload against three traced
// daemons and returns the client tracer's retained trees.
func runTracedWorkload(t *testing.T, client rpc.ClientConfig) []*obs.TraceTree {
	t.Helper()
	var addrs []string
	for _, node := range []string{"ion0", "ion1", "ion2"} {
		addr, _ := startTracedDaemon(t, rpc.ServerConfig{Trace: true, Node: node})
		addrs = append(addrs, addr)
	}
	client.Trace = true
	tr, err := rpc.NewTransport(addrs, rpc.Options{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tracer := obs.NewTracer("client", 32)
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	cfg.Tracer = tracer
	runWorkload(t, 64, cfg)
	return tracer.Recent()
}

func checkStitchedTrees(t *testing.T, trees []*obs.TraceTree) {
	t.Helper()
	counts := map[string]int{}
	for _, tree := range trees {
		counts[tree.Op]++
		if tree.Err {
			t.Errorf("trace %016x (%s) marked failed on a clean run", tree.TraceID, tree.Op)
		}
		if tree.TraceID == 0 || tree.Root == nil || tree.DurNs <= 0 {
			t.Fatalf("malformed tree: %+v", tree)
		}
		if len(tree.Shares) == 0 {
			t.Fatalf("trace %016x has no node shares", tree.TraceID)
		}
		var pct float64
		for _, s := range tree.Shares {
			pct += s.Pct
		}
		if pct < 99.9 || pct > 100.1 {
			t.Fatalf("trace %016x shares sum to %.2f%%", tree.TraceID, pct)
		}
	}
	// 4 compute-node writes, 4 view read-backs, 1 redistribution.
	if counts["write"] != 4 || counts["read"] != 4 || counts["redistribute"] != 1 {
		t.Fatalf("op trees = %v, want 4 writes, 4 reads, 1 redistribute", counts)
	}
	// Every write must be genuinely cross-node: client spans plus at
	// least one daemon's server spans stitched under the RPC children.
	for _, tree := range trees {
		if tree.Op != "write" && tree.Op != "redistribute" {
			continue
		}
		nodes := nodesIn(tree)
		if !nodes["client"] {
			t.Fatalf("trace %016x (%s) has no client spans: %v", tree.TraceID, tree.Op, nodes)
		}
		server := 0
		for n := range nodes {
			if strings.HasPrefix(n, "ion") {
				server++
			}
		}
		if server == 0 {
			t.Fatalf("trace %016x (%s) stitched no server spans:\n%s",
				tree.TraceID, tree.Op, tree.Format())
		}
		if spanNamed(tree, "rpc.") == nil {
			t.Fatalf("trace %016x (%s) has no rpc client span", tree.TraceID, tree.Op)
		}
		if spanNamed(tree, "server.") == nil {
			t.Fatalf("trace %016x (%s) has no server span", tree.TraceID, tree.Op)
		}
	}
}

// TestTracedWorkloadStitching: classic (monolithic-frame) path, where
// server spans come back piggybacked on MsgTracedResp.
func TestTracedWorkloadStitching(t *testing.T) {
	checkStitchedTrees(t, runTracedWorkload(t, rpc.ClientConfig{}))
}

// TestTracedStreamedWorkloadStitching: every segment op forced onto
// the chunked streamed path, where server spans are parked in the
// stash and drained with MsgSpans after the stream completes.
func TestTracedStreamedWorkloadStitching(t *testing.T) {
	checkStitchedTrees(t, runTracedWorkload(t, rpc.ClientConfig{
		ChunkSize:       64,
		StreamThreshold: 1,
	}))
}

// TestTraceOffNoWireTracing: a client with tracing off against traced
// daemons must never emit MsgTraced or MsgSpans — the wire stays
// byte-identical to a pre-tracing build (the request encoders are
// unchanged; the only tracing bytes possible are these two message
// types and the hello feature word, which is elided when zero).
func TestTraceOffNoWireTracing(t *testing.T) {
	reg := obs.NewRegistry()
	addr, _ := startTracedDaemon(t, rpc.ServerConfig{Trace: true, Node: "ion0", Metrics: reg})
	tr, err := rpc.NewTransport([]string{addr}, rpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	// A tracer on the cluster but Trace off on the client: ops get
	// local trees, and none of it may leak onto the wire.
	cfg.Tracer = obs.NewTracer("client", 32)
	runWorkload(t, 64, cfg)
	for _, typ := range []string{"traced", "spans"} {
		if n := reg.Counter(rpc.MetricServerRequests + `{type="` + typ + `"}`).Value(); n != 0 {
			t.Errorf("server saw %d %s messages with client tracing off", n, typ)
		}
	}
}

// TestTraceAgainstOldDaemon: a tracing client against a daemon that
// neither grants FeatureTrace nor speaks proto v3 (an old build) must
// complete the workload untraced rather than fail or leak envelopes.
func TestTraceAgainstOldDaemon(t *testing.T) {
	reg := obs.NewRegistry()
	addr, _ := startTracedDaemon(t, rpc.ServerConfig{MaxProtoVersion: 2, Metrics: reg})
	creg := obs.NewRegistry()
	tr, err := rpc.NewTransport([]string{addr}, rpc.Options{
		Client:  rpc.ClientConfig{Trace: true},
		Metrics: creg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tracer := obs.NewTracer("client", 32)
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	cfg.Tracer = tracer
	runWorkload(t, 64, cfg)
	for _, typ := range []string{"traced", "spans"} {
		if n := creg.Counter(rpc.MetricClientRequests + `{type="` + typ + `"}`).Value(); n != 0 {
			t.Errorf("client sent %d %s messages to a v2 daemon", n, typ)
		}
	}
	// The client still stitched local trees — they just have no
	// server spans.
	trees := tracer.Recent()
	if len(trees) == 0 {
		t.Fatal("no local trees against an old daemon")
	}
	for _, tree := range trees {
		for n := range nodesIn(tree) {
			if n != "client" {
				t.Fatalf("foreign span from an untraced daemon in %016x: %q", tree.TraceID, n)
			}
		}
	}
}

// TestPartialFailureTraceTree kills one of three daemons between open
// and write: the collective write fails partially, the PartialError
// carries the trace ID, and the stitched tree is complete — the live
// nodes' server spans present, the dead node's RPC span marked
// error=true — with no goroutines leaked by the broken streams.
func TestPartialFailureTraceTree(t *testing.T) {
	before := runtime.NumGoroutine()

	var addrs []string
	var stops []func()
	for _, node := range []string{"ion0", "ion1", "ion2"} {
		addr, stop := startTracedDaemon(t, rpc.ServerConfig{Trace: true, Node: node})
		addrs = append(addrs, addr)
		stops = append(stops, stop)
	}
	tr, err := rpc.NewTransport(addrs, rpc.Options{Client: rpc.ClientConfig{
		Trace:       true,
		MaxRetries:  1,
		DialTimeout: time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer("client", 32)
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	cfg.Tracer = tracer
	w, err := bench.NewWorkloadWithConfig("c", 64, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The file is open on all three daemons; now one dies.
	stops[1]()

	_, werr := w.WriteAll(clusterfile.ToBufferCache)
	if werr == nil {
		t.Fatal("write succeeded although a daemon was down")
	}
	var pe *clusterfile.PartialError
	if !errors.As(werr, &pe) {
		t.Fatalf("write error is not a PartialError: %v", werr)
	}
	if pe.TraceID == 0 {
		t.Fatal("PartialError carries no trace ID")
	}
	if !strings.Contains(pe.Error(), "trace "+obs.FormatTraceID(pe.TraceID)) {
		t.Fatalf("error text does not name the trace: %v", pe)
	}
	tree := tracer.Find(pe.TraceID)
	if tree == nil {
		t.Fatalf("trace %016x from the error is not retained", pe.TraceID)
	}
	if !tree.Err {
		t.Fatalf("failed op's tree not marked failed:\n%s", tree.Format())
	}
	// The tree is still complete: the live daemons' server spans are
	// stitched in, and the dead node's RPC attempt is present and
	// marked failed.
	liveServer := 0
	for n := range nodesIn(tree) {
		if strings.HasPrefix(n, "ion") {
			liveServer++
		}
	}
	if liveServer == 0 {
		t.Fatalf("no surviving node's spans in the partial tree:\n%s", tree.Format())
	}
	failedRPC := 0
	var verify func(n *obs.TraceNode)
	verify = func(n *obs.TraceNode) {
		if n.Err && strings.HasPrefix(n.Name, "rpc.") {
			failedRPC++
		}
		for _, c := range n.Children {
			verify(c)
		}
	}
	verify(tree.Root)
	if failedRPC == 0 {
		t.Fatalf("no failed rpc span in the partial tree:\n%s", tree.Format())
	}
	if err := w.File.Close(); err == nil {
		// Close may or may not fail against the dead node; either way
		// the transport must still shut down cleanly below.
		_ = err
	}
	tr.Close()
	stops[0]()
	stops[2]()

	// Goroutine-leak check: broken mux streams and drains must unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPoolDiscardsExposition is the satellite-2 golden test: both
// buffer pools surface under the one shared series name with a
// lowercase kind label, each bound exactly once, and the legacy
// clusterfile counter name stays for dashboards that pin it.
func TestPoolDiscardsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	rpc.NewServer(rpc.ServerConfig{Metrics: reg})
	cfg := clusterfile.DefaultConfig()
	cfg.Metrics = reg
	if _, err := clusterfile.New(cfg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	obs.WriteProm(&sb, reg)
	expo := sb.String()
	// Match at line starts so a series' own TYPE header doesn't count.
	for _, series := range []string{
		rpc.MetricPoolDiscards + `{kind="frame"} `,
		rpc.MetricPoolDiscards + `{kind="msgbuf"} `,
		"parafile_clusterfile_msgbuf_discards_total ",
	} {
		if n := strings.Count(expo, "\n"+series); n != 1 {
			t.Errorf("series %sappears %d times in the exposition, want exactly 1:\n%s", series, n, expo)
		}
	}
	if strings.Contains(expo, "parafile_rpc_frame_pool_discards") {
		t.Error("retired series name still exposed")
	}
	if strings.Contains(expo, `kind="Frame"`) || strings.Contains(expo, `kind="Msgbuf"`) {
		t.Error("kind labels must be lowercase")
	}
}

// BenchmarkStatTraced measures the per-request cost of the traced
// envelope against the identical untraced request on a loopback
// daemon — the number that justifies tracing-by-default on the
// daemons (the client still opts in per deployment).
func BenchmarkStatTraced(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			srv := rpc.NewServer(rpc.ServerConfig{Trace: true, Node: "ion0"})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			c := rpc.NewClient(rpc.ClientConfig{Addr: ln.Addr().String(), Trace: mode == "on"})
			defer c.Close()
			ctx := context.Background()
			phys := codec.EncodeFile(part.MustFile(0, part.MustPattern(
				part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, 63, 64, 1)}},
			)))
			if err := c.CreateFile(ctx, &rpc.CreateFileReq{Name: "bench", Phys: phys, Subfiles: []int{0}}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opCtx := ctx
				var sp *obs.Span
				if mode == "on" {
					sp = obs.StartTrace("stat", "client")
					opCtx = obs.ContextWithSpan(ctx, sp)
				}
				if _, err := c.Stat(opCtx, "bench", 0); err != nil {
					b.Fatal(err)
				}
				sp.End()
			}
		})
	}
}

// Metadata replication wire messages: leader election ballots, log
// shipping (which doubles as the lease heartbeat), full-state snapshot
// install, and the replication status probe. They ride the same
// framing, hello negotiation, and error encoding as everything else;
// only parafilemd peers exchange them.

package rpc

import (
	"fmt"

	"parafile/internal/codec"
)

// maxReplEntries bounds a decoded log-shipping batch. The leader ships
// one mutation per batch in steady state; the cap only stops a corrupt
// count from allocating the machine away.
const maxReplEntries = 1 << 12

// ReplEntry is one replicated namespace log record: the leader's log
// position and the raw store record payload (the same bytes the
// leader's crash-safe log framed).
type ReplEntry struct {
	Index   uint64
	Term    uint64
	Payload []byte
}

// MetaVoteReq is a leader-election ballot: the candidate names the
// term it is campaigning in and its log tail, and the voter grants
// only if the candidate's log is at least as up to date as its own.
type MetaVoteReq struct {
	Term      uint64
	Candidate string // candidate's advertised address
	LastIndex uint64
	LastTerm  uint64
}

// AppendMetaVote encodes req as a frame body.
func AppendMetaVote(buf []byte, req *MetaVoteReq) []byte {
	buf = beginFrame(buf, MsgMetaVote)
	buf = codec.AppendUvarint(buf, req.Term)
	buf = appendString(buf, req.Candidate)
	buf = codec.AppendUvarint(buf, req.LastIndex)
	buf = codec.AppendUvarint(buf, req.LastTerm)
	return buf
}

// DecodeMetaVote decodes a MsgMetaVote payload.
func DecodeMetaVote(payload []byte) (*MetaVoteReq, error) {
	req := &MetaVoteReq{}
	var err error
	if req.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Candidate, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.LastIndex, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.LastTerm, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	return req, wantEmpty(payload)
}

// MetaVoteResp is the voter's verdict plus its current term, so a
// stale candidate learns the term it must catch up to.
type MetaVoteResp struct {
	Term    uint64
	Granted bool
}

// AppendMetaVoteResp encodes resp as a frame body.
func AppendMetaVoteResp(buf []byte, resp *MetaVoteResp) []byte {
	buf = beginFrame(buf, MsgMetaVoteResp)
	buf = codec.AppendUvarint(buf, resp.Term)
	if resp.Granted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeMetaVoteResp decodes a MsgMetaVoteResp payload.
func DecodeMetaVoteResp(payload []byte) (*MetaVoteResp, error) {
	resp := &MetaVoteResp{}
	var err error
	if resp.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: vote response without verdict byte", ErrCorrupt)
	}
	resp.Granted = payload[0] != 0
	return resp, wantEmpty(payload[1:])
}

// MetaAppendReq ships log records from the leader to a follower. An
// empty Entries slice is the lease heartbeat. PrevIndex/PrevTerm name
// the entry immediately before the batch; a follower whose tail does
// not match nacks, and the leader falls back to a full snapshot
// install (the namespace is small; state transfer is the repair path,
// there is no per-index history to walk).
type MetaAppendReq struct {
	Term      uint64
	Leader    string // leader's advertised address (redirect hint)
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []ReplEntry
}

// AppendMetaAppend encodes req as a frame body.
func AppendMetaAppend(buf []byte, req *MetaAppendReq) []byte {
	buf = beginFrame(buf, MsgMetaAppend)
	buf = codec.AppendUvarint(buf, req.Term)
	buf = appendString(buf, req.Leader)
	buf = codec.AppendUvarint(buf, req.PrevIndex)
	buf = codec.AppendUvarint(buf, req.PrevTerm)
	buf = codec.AppendUvarint(buf, uint64(len(req.Entries)))
	for i := range req.Entries {
		e := &req.Entries[i]
		buf = codec.AppendUvarint(buf, e.Index)
		buf = codec.AppendUvarint(buf, e.Term)
		buf = appendBytes(buf, e.Payload)
	}
	return buf
}

// DecodeMetaAppend decodes a MsgMetaAppend payload. Entry payloads are
// copied out of the frame buffer.
func DecodeMetaAppend(payload []byte) (*MetaAppendReq, error) {
	req := &MetaAppendReq{}
	var err error
	if req.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Leader, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.PrevIndex, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.PrevTerm, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	if n > maxReplEntries {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrCorrupt, n)
	}
	req.Entries = make([]ReplEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e ReplEntry
		if e.Index, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		if e.Term, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		var p []byte
		if p, payload, err = readBytes(payload); err != nil {
			return nil, err
		}
		e.Payload = append([]byte(nil), p...)
		req.Entries = append(req.Entries, e)
	}
	return req, wantEmpty(payload)
}

// MetaAppendResp acks or nacks an append batch (and snapshot
// installs). LastIndex reports the follower's log tail either way, so
// the leader can track replication lag.
type MetaAppendResp struct {
	Term      uint64
	OK        bool
	LastIndex uint64
}

// AppendMetaAppendResp encodes resp as a frame body.
func AppendMetaAppendResp(buf []byte, resp *MetaAppendResp) []byte {
	buf = beginFrame(buf, MsgMetaAppendResp)
	buf = codec.AppendUvarint(buf, resp.Term)
	if resp.OK {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = codec.AppendUvarint(buf, resp.LastIndex)
	return buf
}

// DecodeMetaAppendResp decodes a MsgMetaAppendResp payload.
func DecodeMetaAppendResp(payload []byte) (*MetaAppendResp, error) {
	resp := &MetaAppendResp{}
	var err error
	if resp.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: append response without verdict byte", ErrCorrupt)
	}
	resp.OK = payload[0] != 0
	payload = payload[1:]
	if resp.LastIndex, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	return resp, wantEmpty(payload)
}

// MetaSnapInstallReq transfers a full serialized namespace state
// (meta.Store.SerializeState bytes) to a diverged or lagging follower.
// LastIndex/LastTerm are the log position the state covers; after an
// atomic install the follower's log restarts empty past that point.
type MetaSnapInstallReq struct {
	Term      uint64
	Leader    string
	LastIndex uint64
	LastTerm  uint64
	State     []byte
}

// AppendMetaSnapInstall encodes req as a frame body.
func AppendMetaSnapInstall(buf []byte, req *MetaSnapInstallReq) []byte {
	buf = beginFrame(buf, MsgMetaSnapInstall)
	buf = codec.AppendUvarint(buf, req.Term)
	buf = appendString(buf, req.Leader)
	buf = codec.AppendUvarint(buf, req.LastIndex)
	buf = codec.AppendUvarint(buf, req.LastTerm)
	buf = appendBytes(buf, req.State)
	return buf
}

// DecodeMetaSnapInstall decodes a MsgMetaSnapInstall payload. State is
// copied out of the frame buffer.
func DecodeMetaSnapInstall(payload []byte) (*MetaSnapInstallReq, error) {
	req := &MetaSnapInstallReq{}
	var err error
	if req.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Leader, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.LastIndex, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.LastTerm, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	var state []byte
	if state, payload, err = readBytes(payload); err != nil {
		return nil, err
	}
	req.State = append([]byte(nil), state...)
	return req, wantEmpty(payload)
}

// Replication roles reported by MetaStatus.
const (
	RoleFollower   = "follower"
	RoleCandidate  = "candidate"
	RoleLeader     = "leader"
	RoleStandalone = "standalone"
)

// MetaStatusInfo is one metadata node's view of the replication group.
type MetaStatusInfo struct {
	Term      uint64
	Role      string
	Leader    string // address of the node believed to hold the lease
	Self      string // answering node's advertised address
	LastIndex uint64
	LastTerm  uint64
	// LeaseMs is the leaseholder's remaining lease in milliseconds
	// (zero on followers and lapsed leaders).
	LeaseMs int64
	// Peers is the configured group size (1 for standalone).
	Peers int64
}

// AppendMetaStatus encodes the empty status probe.
func AppendMetaStatus(buf []byte) []byte { return beginFrame(buf, MsgMetaStatus) }

// AppendMetaStatusResp encodes info as a frame body.
func AppendMetaStatusResp(buf []byte, info *MetaStatusInfo) []byte {
	buf = beginFrame(buf, MsgMetaStatusResp)
	buf = codec.AppendUvarint(buf, info.Term)
	buf = appendString(buf, info.Role)
	buf = appendString(buf, info.Leader)
	buf = appendString(buf, info.Self)
	buf = codec.AppendUvarint(buf, info.LastIndex)
	buf = codec.AppendUvarint(buf, info.LastTerm)
	buf = codec.AppendVarint(buf, info.LeaseMs)
	buf = codec.AppendVarint(buf, info.Peers)
	return buf
}

// DecodeMetaStatusResp decodes a MsgMetaStatusResp payload.
func DecodeMetaStatusResp(payload []byte) (*MetaStatusInfo, error) {
	info := &MetaStatusInfo{}
	var err error
	if info.Term, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if info.Role, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if info.Leader, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if info.Self, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if info.LastIndex, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if info.LastTerm, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if info.LeaseMs, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if info.Peers, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	return info, wantEmpty(payload)
}

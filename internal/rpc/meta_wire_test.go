package rpc

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"parafile/internal/obs"
)

// meta_wire_test.go covers the metadata wire surface: codec
// round-trips and truncation robustness for every meta message, the
// epoch/fence protocol against a live daemon, and the transport's
// placement-refresh connection retirement.

func randMetaFile(rng *rand.Rand) *MetaFile {
	n := 1 + rng.Intn(5)
	nodes := make([]string, n)
	assign := make([]int, 1+rng.Intn(6))
	for i := range nodes {
		nodes[i] = randString(rng, 24)
	}
	for i := range assign {
		assign[i] = rng.Intn(n)
	}
	return &MetaFile{
		Name:        randString(rng, 32),
		StripeBytes: rng.Int63n(1 << 20),
		Replication: 1 + rng.Intn(3),
		Epoch:       rng.Uint64() >> 8,
		Length:      rng.Int63(),
		StoreName:   randString(rng, 32),
		Nodes:       nodes,
		Assign:      assign,
	}
}

func TestMetaFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		f := randMetaFile(rng)
		enc := AppendMetaFile(nil, f)
		got, rest, err := ReadMetaFile(enc)
		if err != nil {
			t.Fatalf("ReadMetaFile: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("round-trip mismatch:\nin  %+v\nout %+v", f, got)
		}
		// Every truncation must fail cleanly, never panic or misparse.
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := ReadMetaFile(enc[:cut]); err == nil {
				t.Fatalf("truncation at %d/%d parsed", cut, len(enc))
			}
		}
	}
}

func TestMetaMessageRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		cases := []struct {
			name string
			typ  byte
			enc  []byte
			dec  func(payload []byte) (any, error)
			want any
		}{
			{
				name: "create", typ: MsgMetaCreate,
				want: &MetaCreateReq{Name: randString(rng, 32), StripeBytes: rng.Int63n(1 << 20), Replication: rng.Intn(4)},
				dec:  func(p []byte) (any, error) { return DecodeMetaCreate(p) },
			},
			{
				name: "open", typ: MsgMetaOpen,
				want: randString(rng, 40),
				dec:  func(p []byte) (any, error) { return DecodeMetaName(p) },
			},
			{
				name: "commit", typ: MsgMetaCommit,
				want: &MetaCommitReq{
					Name: randString(rng, 24), OldEpoch: rng.Uint64() >> 8,
					StoreName: randString(rng, 24),
					Nodes:     []string{randString(rng, 16), randString(rng, 16)},
					Assign:    []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)},
				},
				dec: func(p []byte) (any, error) { return DecodeMetaCommit(p) },
			},
			{
				name: "extend", typ: MsgMetaExtend,
				want: &MetaExtendReq{Name: randString(rng, 24), Length: rng.Int63()},
				dec:  func(p []byte) (any, error) { return DecodeMetaExtend(p) },
			},
			{
				name: "node", typ: MsgMetaNode,
				want: &MetaNode{Addr: randString(rng, 24), State: byte(rng.Intn(3))},
				dec: func(p []byte) (any, error) {
					n, err := DecodeMetaNodeReq(p)
					if err != nil {
						return nil, err
					}
					return &MetaNode{Addr: n.Addr, State: n.State}, nil
				},
			},
			{
				name: "epoch", typ: MsgEpoch,
				want: &EpochReq{File: randString(rng, 24), Epoch: 1 + rng.Uint64()>>8, Fence: rng.Intn(2) == 1},
				dec:  func(p []byte) (any, error) { return DecodeEpoch(p) },
			},
		}
		for c := range cases {
			tc := &cases[c]
			switch w := tc.want.(type) {
			case *MetaCreateReq:
				tc.enc = AppendMetaCreate(nil, w)
			case string:
				tc.enc = AppendMetaName(nil, tc.typ, w)
			case *MetaCommitReq:
				tc.enc = AppendMetaCommit(nil, w)
			case *MetaExtendReq:
				tc.enc = AppendMetaExtend(nil, w)
			case *MetaNode:
				tc.enc = AppendMetaNodeReq(nil, w)
			case *EpochReq:
				tc.enc = AppendEpoch(nil, w)
			}
			typ, payload, err := ParseFrame(tc.enc)
			if err != nil {
				t.Fatalf("%s: ParseFrame: %v", tc.name, err)
			}
			if typ != tc.typ {
				t.Fatalf("%s: frame type %#x, want %#x", tc.name, typ, tc.typ)
			}
			got, err := tc.dec(payload)
			if err != nil {
				t.Fatalf("%s: decode: %v", tc.name, err)
			}
			if !reflect.DeepEqual(tc.want, got) {
				t.Fatalf("%s round-trip mismatch:\nin  %+v\nout %+v", tc.name, tc.want, got)
			}
			for cut := 0; cut < len(payload); cut++ {
				if _, err := tc.dec(payload[:cut]); err == nil {
					t.Fatalf("%s: truncation at %d/%d parsed", tc.name, cut, len(payload))
				}
			}
		}
	}
}

func TestMetaRespRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	files := []*MetaFile{randMetaFile(rng), randMetaFile(rng), randMetaFile(rng)}

	// File resp.
	body := AppendMetaFileResp(nil, files[0])
	typ, payload, err := ParseFrame(body)
	if err != nil || typ != MsgMetaFileResp {
		t.Fatalf("file resp frame: %#x, %v", typ, err)
	}
	got, err := DecodeMetaFileResp(payload)
	if err != nil || !reflect.DeepEqual(files[0], got) {
		t.Fatalf("file resp round-trip: %+v, %v", got, err)
	}

	// List resp, including empty.
	for _, set := range [][]*MetaFile{files, nil} {
		body = AppendMetaListResp(nil, set)
		typ, payload, err = ParseFrame(body)
		if err != nil || typ != MsgMetaListResp {
			t.Fatalf("list resp frame: %#x, %v", typ, err)
		}
		gotList, err := DecodeMetaListResp(payload)
		if err != nil || len(gotList) != len(set) {
			t.Fatalf("list resp: %d files, %v", len(gotList), err)
		}
		for i := range set {
			if !reflect.DeepEqual(set[i], gotList[i]) {
				t.Fatalf("list resp entry %d mismatch", i)
			}
		}
	}

	// Nodes resp.
	nodes := []MetaNode{{Addr: "a:1", State: NodeActive}, {Addr: "b:2", State: NodeDraining}}
	body = AppendMetaNodesResp(nil, nodes)
	typ, payload, err = ParseFrame(body)
	if err != nil || typ != MsgMetaNodesResp {
		t.Fatalf("nodes resp frame: %#x, %v", typ, err)
	}
	gotNodes, err := DecodeMetaNodesResp(payload)
	if err != nil || !reflect.DeepEqual(nodes, gotNodes) {
		t.Fatalf("nodes resp round-trip: %+v, %v", gotNodes, err)
	}
}

// startTestDaemon runs an in-memory daemon on loopback.
func startTestDaemon(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	srv := NewServer(ServerConfig{Metrics: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestServerEpochFence drives the daemon-side epoch protocol: an
// epoch-stamped store rejects mismatched epochs, a fence rejects
// epoch-stamped writes while reads keep flowing, and the post-commit
// ratchet+unfence turns old-epoch requests stale.
func TestServerEpochFence(t *testing.T) {
	addr := startTestDaemon(t, obs.NewRegistry())
	c := NewClient(ClientConfig{Addr: addr, Placement: true})
	defer c.Close()
	ctx := context.Background()

	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}, Epoch: 1}); err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	write := func(epoch uint64) error {
		return c.WriteSegments(ctx, &WriteSegsReq{
			File: "f", Subfile: 0, Lo: 0, Hi: 3, Data: []byte("abcd"), Epoch: epoch,
		})
	}
	read := func(epoch uint64) error {
		buf := make([]byte, 4)
		return c.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 3, N: 4, Epoch: epoch}, buf)
	}

	if err := write(1); err != nil {
		t.Fatalf("write at matching epoch: %v", err)
	}
	if err := write(2); !errors.Is(err, ErrStalePlacement) {
		t.Fatalf("write at wrong epoch: %v, want ErrStalePlacement", err)
	}
	// Unstamped (legacy / rebalance-driver) requests always pass.
	if err := write(0); err != nil {
		t.Fatalf("unstamped write: %v", err)
	}

	// Fence at the current epoch: stamped writes bounce, reads flow.
	if err := c.SetEpoch(ctx, "f", 1, true); err != nil {
		t.Fatalf("fence: %v", err)
	}
	if err := write(1); !errors.Is(err, ErrStalePlacement) {
		t.Fatalf("stamped write under fence: %v, want ErrStalePlacement", err)
	}
	if err := read(1); err != nil {
		t.Fatalf("read under fence: %v", err)
	}
	if err := write(0); err != nil {
		t.Fatalf("unstamped write under fence: %v", err)
	}

	// Commit: ratchet to epoch 2 and unfence — old-epoch reads and
	// writes are both stale now, new-epoch writes flow.
	if err := c.SetEpoch(ctx, "f", 2, false); err != nil {
		t.Fatalf("ratchet: %v", err)
	}
	if err := read(1); !errors.Is(err, ErrStalePlacement) {
		t.Fatalf("old-epoch read after flip: %v, want ErrStalePlacement", err)
	}
	if err := write(1); !errors.Is(err, ErrStalePlacement) {
		t.Fatalf("old-epoch write after flip: %v, want ErrStalePlacement", err)
	}
	if err := write(2); err != nil {
		t.Fatalf("new-epoch write after flip: %v", err)
	}

	// Zero epoch on the wire is invalid (it would un-stamp the store).
	if err := c.SetEpoch(ctx, "f", 0, false); err == nil {
		t.Fatal("zero-epoch SetEpoch accepted")
	}
}

// TestTransportUpdateRetires checks the placement-refresh pool
// hygiene: endpoints dropped from the map have their pooled
// connections retired (counted under pool_discards{kind="retired"}),
// kept endpoints keep their client, new endpoints dial fresh.
func TestTransportUpdateRetires(t *testing.T) {
	reg := obs.NewRegistry()
	a1 := startTestDaemon(t, reg)
	a2 := startTestDaemon(t, reg)
	a3 := startTestDaemon(t, reg)

	tr, err := NewTransport([]string{a1, a2}, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()
	// Warm a pooled connection to both daemons (SetEpoch fans out).
	if err := tr.SetEpoch(ctx, "warm", 1, false); err != nil {
		t.Fatalf("warming pools: %v", err)
	}
	before := reg.Counter(MetricPoolDiscards + `{kind="retired"}`).Value()

	tr.Update([]string{a2, a3})
	got := tr.Endpoints()
	if len(got) != 2 || got[0] != a2 || got[1] != a3 {
		t.Fatalf("Endpoints after update = %v, want [%s %s]", got, a2, a3)
	}
	after := reg.Counter(MetricPoolDiscards + `{kind="retired"}`).Value()
	if after <= before {
		t.Fatalf("pool_discards{kind=retired} did not grow: %d -> %d", before, after)
	}
	// The reconciled transport still works: kept and new endpoints
	// answer, the dropped one is gone.
	if err := tr.SetEpoch(ctx, "warm", 2, false); err != nil {
		t.Fatalf("SetEpoch after update: %v", err)
	}
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"parafile/internal/fault"
	"parafile/internal/obs"
)

// proto_test.go covers the wire-v2 generation: the CRC32C frame
// trailer and its typed corruption error, the MsgHello negotiation
// against current and v1-capped daemons, and the Checksum RPC the
// scrub path rides on.

func TestFrameV2RoundTrip(t *testing.T) {
	body := AppendStat(nil, &StatReq{File: "f", Subfile: 3})
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, body, ProtoVersion2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != ProtoVersion2 {
		t.Fatalf("frame version %d, want %d", got[0], ProtoVersion2)
	}
	msgType, payload, err := ParseFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgStat {
		t.Fatalf("type %#x, want MsgStat", msgType)
	}
	req, err := DecodeStat(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.File != "f" || req.Subfile != 3 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestFrameV2DetectsCorruption(t *testing.T) {
	body := AppendStat(nil, &StatReq{File: "file-name", Subfile: 1})
	var clean bytes.Buffer
	if err := WriteFrameV(&clean, body, ProtoVersion2); err != nil {
		t.Fatal(err)
	}
	wire := clean.Bytes()
	// Flip every byte past the length prefix in turn: each single-byte
	// corruption — in the version byte, payload or trailer — must
	// surface as ErrCorruptFrame, never as a clean parse.
	for i := 4; i < len(wire); i++ {
		damaged := append([]byte(nil), wire...)
		damaged[i] ^= 0x40
		got, err := ReadFrame(bytes.NewReader(damaged), DefaultMaxFrame)
		if err == nil {
			// A flipped version byte can only downgrade so far before the
			// trailer is treated as payload; ParseFrame must then reject
			// the version instead.
			if _, _, perr := ParseFrame(got); perr == nil {
				t.Fatalf("flip at %d parsed cleanly", i)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v is not ErrCorrupt", i, err)
		}
	}
	// The trailer itself checks out when untouched.
	if FrameChecksum(body) == 0 {
		t.Fatal("non-trivial body checksums to zero (suspicious)")
	}
}

func TestNegotiationAgreesOnV2(t *testing.T) {
	// A client capped at v2 keeps the classic pooled-connection path
	// and lands on v2 framing.
	addr, _ := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr, ProtoVersion: ProtoVersion2})
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	if len(c.idle) == 0 {
		c.mu.Unlock()
		t.Fatal("no pooled connection after a call")
	}
	ver := c.idle[0].ver
	c.mu.Unlock()
	if ver != ProtoVersion2 {
		t.Fatalf("negotiated version %d, want %d", ver, ProtoVersion2)
	}
}

func TestNegotiationDefaultUpgradesToMux(t *testing.T) {
	// An uncapped client against a current daemon negotiates v3 and
	// multiplexes over a single connection instead of pooling.
	addr, _ := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	c.muxMu.Lock()
	m := c.mux
	c.muxMu.Unlock()
	if m == nil || !m.alive() {
		t.Fatal("no live multiplexed connection after a call")
	}
	if m.ver != ProtoVersion3 {
		t.Fatalf("mux negotiated version %d, want %d", m.ver, ProtoVersion3)
	}
	c.mu.Lock()
	pooled := len(c.idle)
	c.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("default client pooled %d classic connections alongside the mux", pooled)
	}
}

func TestNegotiationDowngradesToV1Server(t *testing.T) {
	// A daemon capped at v1 behaves like one that predates negotiation:
	// it answers the Hello with a bad-request error and the client
	// quietly speaks v1 on that connection.
	addr, _ := startServer(t, ServerConfig{MaxProtoVersion: 1})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 7, Data: []byte("12345678")}); err != nil {
		t.Fatal(err)
	}
	n, err := c.Stat(ctx, "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("stat = %d, want 8", n)
	}
	c.mu.Lock()
	ver := c.idle[0].ver
	c.mu.Unlock()
	if ver != ProtoVersion {
		t.Fatalf("negotiated version %d against a v1 daemon, want %d", ver, ProtoVersion)
	}
}

func TestClientCappedAtV1SkipsNegotiation(t *testing.T) {
	addr, srv := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr, ProtoVersion: 1, Metrics: obs.NewRegistry()})
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	ver := c.idle[0].ver
	c.mu.Unlock()
	if ver != ProtoVersion {
		t.Fatalf("v1-capped client negotiated version %d", ver)
	}
	// The server never saw a Hello.
	if got := srv.met.requests[MsgHello].Value(); got != 0 {
		t.Fatalf("server counted %d hello requests from a v1 client", got)
	}
}

func TestChecksumRPC(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := []byte("checksum me, zero-fill the rest")
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data}); err != nil {
		t.Fatal(err)
	}

	table := crc32.MakeTable(crc32.Castagnoli)
	want := crc32.Checksum(data, table)
	got, err := c.Checksum(ctx, "f", 0, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum %08x, want %08x", got, want)
	}

	// Beyond-EOF bytes checksum as zeroes (the sparse read semantics).
	padded := append(append([]byte(nil), data...), make([]byte, 10)...)
	want = crc32.Checksum(padded, table)
	got, err = c.Checksum(ctx, "f", 0, 0, int64(len(padded)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("overhang checksum %08x, want %08x", got, want)
	}

	// Negative ranges are a remote bad-request, not a crash.
	if _, err := c.Checksum(ctx, "f", 0, -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
	var re *RemoteError
	if _, err := c.Checksum(ctx, "missing", 0, 0, 4); !errors.As(err, &re) {
		t.Fatalf("checksum of unknown file: %v", err)
	}
}

func TestClientRetriesCorruptResponseFrame(t *testing.T) {
	// One byte of the first response is flipped in flight. The v2 frame
	// trailer catches it; the client drops the connection and the retry
	// gets a clean answer.
	addr, _ := startServer(t, ServerConfig{})
	inj := fault.NewInjector(fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Node: fault.AnyNode, Op: fault.OpConnRead, Kind: fault.Corrupt, Times: 1},
	}}, nil)
	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:        addr,
		Dialer:      inj.Dialer(nil),
		ReadTimeout: 500 * time.Millisecond,
		BackoffBase: time.Millisecond,
		Metrics:     reg,
	})
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if inj.Injected(0) == 0 {
		t.Fatal("fault rule never fired")
	}
	if reg.Counter(MetricClientRetries).Value() == 0 {
		t.Fatal("corrupt frame was not retried")
	}
	// And the channel still works for real payloads afterwards.
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 3, Data: []byte("abcd")}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Stat(ctx, "f", 0); err != nil || n != 4 {
		t.Fatalf("stat after recovery = (%d, %v)", n, err)
	}
}

package rpc

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"parafile/internal/fault"
	"parafile/internal/obs"
)

// stream_test.go covers the proto-v3 generation: chunked streamed
// transfers, the multiplexed connection they ride on, the fault matrix
// mid-stream, and the retention caps on the frame pool.

// streamCfg is a client configuration that forces every segment
// operation onto the streamed path with several chunks per op.
func streamCfg(addr string, reg *obs.Registry) ClientConfig {
	return ClientConfig{
		Addr:            addr,
		ChunkSize:       64 << 10,
		StreamThreshold: 1,
		BackoffBase:     time.Millisecond,
		Metrics:         reg,
	}
}

// waitNoGoroutineLeak waits for the goroutine count to settle back to
// the baseline.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamedWriteReadRoundTrip(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	reg := obs.NewRegistry()
	c := NewClient(streamCfg(addr, reg))
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	// ~5 chunks of payload, not chunk-aligned on purpose.
	data := make([]byte, 5*(64<<10)+12345)
	rand.New(rand.NewSource(42)).Read(data)
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, N: int64(len(data))}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed read-back differs from what was written")
	}
	if v := reg.Counter(MetricClientStreamedOps + `{dir="write"}`).Value(); v == 0 {
		t.Fatal("write did not travel the streamed path")
	}
	if v := reg.Counter(MetricClientStreamedOps + `{dir="read"}`).Value(); v == 0 {
		t.Fatal("read did not travel the streamed path")
	}
	if v := reg.Counter(MetricClientChunks + `{dir="sent"}`).Value(); v < 6 {
		t.Fatalf("only %d chunks sent for a 5.2-chunk payload", v)
	}
	if v := reg.Counter(MetricClientChunks + `{dir="received"}`).Value(); v < 6 {
		t.Fatalf("only %d chunks received for a 5.2-chunk payload", v)
	}
}

func TestStreamedMatchesMonolithic(t *testing.T) {
	// Bytes written streamed must read back identically through a
	// v2-capped (monolithic) client, and vice versa.
	addr, _ := startServer(t, ServerConfig{})
	ctx := context.Background()
	sc := NewClient(streamCfg(addr, nil))
	defer sc.Close()
	mc := NewClient(ClientConfig{Addr: addr, ProtoVersion: ProtoVersion2})
	defer mc.Close()
	if err := sc.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(7)).Read(data)
	hi := int64(len(data)) - 1
	if err := sc.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, Data: data}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := mc.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, N: int64(len(data))}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("monolithic read of a streamed write differs")
	}
	// Reverse direction: monolithic write, streamed read.
	for i := range data {
		data[i] ^= 0xFF
	}
	if err := mc.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := sc.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, N: int64(len(data))}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed read of a monolithic write differs")
	}
}

func TestMuxSingleConnConcurrency(t *testing.T) {
	// Concurrent streamed operations share one multiplexed connection:
	// exactly one dial, no per-request sockets.
	addr, _ := startServer(t, ServerConfig{})
	reg := obs.NewRegistry()
	c := NewClient(streamCfg(addr, reg))
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := make([]byte, 200<<10)
			rand.New(rand.NewSource(int64(w))).Read(data)
			lo := int64(w) * int64(len(data))
			hi := lo + int64(len(data)) - 1
			if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: lo, Hi: hi, Data: data}); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(data))
			if err := c.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: lo, Hi: hi, N: int64(len(data))}, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("worker %d read back different bytes", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if dials := reg.Counter(MetricClientDials).Value(); dials != 1 {
		t.Fatalf("%d dials for %d concurrent workers, want 1 multiplexed connection", dials, workers)
	}
}

func TestClassicDialSemaphore(t *testing.T) {
	// On the classic path, MaxConns bounds checked-out connections;
	// excess calls wait for a token and the wait lands on the
	// conn-wait histogram.
	addr, _ := startServer(t, ServerConfig{})
	inj := fault.NewInjector(fault.Plan{Seed: 3, Rules: []fault.Rule{
		// Slow down responses so concurrent calls pile onto the one
		// permitted connection.
		{Node: fault.AnyNode, Op: fault.OpConnRead, Kind: fault.Delay, Delay: 5 * time.Millisecond, Times: 8},
	}}, nil)
	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:         addr,
		ProtoVersion: ProtoVersion2,
		PoolSize:     1,
		MaxConns:     1,
		Dialer:       inj.Dialer(nil),
		Metrics:      reg,
	})
	defer c.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if err := c.Ping(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if reg.Histogram(MetricClientConnWaitNs, obs.LatencyBuckets()).Count() == 0 {
		t.Fatal("no connection-token waits observed despite MaxConns=1 and 4 workers")
	}
	if dials := reg.Counter(MetricClientDials).Value(); dials > 1 {
		t.Fatalf("%d dials despite MaxConns=1", dials)
	}
}

func TestStreamFaultMatrix(t *testing.T) {
	// Mid-stream faults: the connection dies N bytes into a chunked
	// write, a response chunk is corrupted in flight, a response stalls
	// past the read timeout. Each kills the multiplexed connection; the
	// idempotent retry redials and the operation still completes with
	// the right bytes.
	cases := []struct {
		name   string
		rule   fault.Rule
		cfg    func(*ClientConfig)
		metric string
	}{
		{
			// After skips the negotiation and CreateFile writes so the
			// injected reset lands amid the chunk frames of the big write.
			name:   "conn dies mid-stream",
			rule:   fault.Rule{Node: fault.AnyNode, Op: fault.OpConnWrite, Kind: fault.ErrorOnce, After: 10},
			metric: MetricClientRetries,
		},
		{
			name:   "corrupt response chunk",
			rule:   fault.Rule{Node: fault.AnyNode, Op: fault.OpConnRead, Kind: fault.Corrupt, Times: 1},
			metric: MetricClientRetries,
		},
		{
			name: "response stalls past timeout",
			rule: fault.Rule{Node: fault.AnyNode, Op: fault.OpConnRead, Kind: fault.Delay, Delay: 400 * time.Millisecond, Times: 1},
			cfg: func(cfg *ClientConfig) {
				cfg.ReadTimeout = 50 * time.Millisecond
			},
			metric: MetricClientTimeouts,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, _ := startServer(t, ServerConfig{})
			before := runtime.NumGoroutine()
			inj := fault.NewInjector(fault.Plan{Seed: 11, Rules: []fault.Rule{tc.rule}}, nil)
			reg := obs.NewRegistry()
			cfg := streamCfg(addr, reg)
			cfg.Dialer = inj.Dialer(nil)
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			c := NewClient(cfg)
			ctx := context.Background()
			if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 400<<10)
			rand.New(rand.NewSource(5)).Read(data)
			hi := int64(len(data)) - 1
			if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, Data: data}); err != nil {
				t.Fatalf("write with %s: %v", tc.name, err)
			}
			if inj.Injected(0) == 0 {
				t.Fatal("fault rule never fired")
			}
			got := make([]byte, len(data))
			if err := c.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, N: int64(len(data))}, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("bytes differ after mid-stream fault recovery")
			}
			if reg.Counter(tc.metric).Value() == 0 {
				t.Fatalf("%s stayed zero", tc.metric)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			waitNoGoroutineLeak(t, before)
		})
	}
}

func TestStreamClientCancelMidWrite(t *testing.T) {
	// A context that expires between chunks aborts the stream: the
	// client tells the server to drop the partial write, the operation
	// reports the cancellation, and neither side strands a goroutine —
	// the connection itself stays usable.
	addr, _ := startServer(t, ServerConfig{})
	before := runtime.NumGoroutine()
	inj := fault.NewInjector(fault.Plan{Seed: 13, Rules: []fault.Rule{
		// Skip the handshake and CreateFile writes, then slow every
		// chunk frame so the deadline lands between chunks.
		{Node: fault.AnyNode, Op: fault.OpConnWrite, Kind: fault.Delay, Delay: 30 * time.Millisecond, After: 6, Times: 12},
	}}, nil)
	cfg := streamCfg(addr, nil)
	cfg.Dialer = inj.Dialer(nil)
	c := NewClient(cfg)
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512<<10)
	cctx, cancel := context.WithTimeout(ctx, 45*time.Millisecond)
	defer cancel()
	err := c.WriteSegments(cctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data})
	if err == nil {
		t.Fatal("write succeeded despite a context deadline mid-stream")
	}
	// The same client performs a clean operation afterwards.
	small := []byte("still alive")
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(small)) - 1, Data: small}); err != nil {
		t.Fatalf("write after cancelled stream: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineLeak(t, before)
}

func TestStreamFallsBackOnV2Server(t *testing.T) {
	// Against a v2-capped daemon the client silently keeps the classic
	// monolithic path: same bytes, zero streamed operations.
	addr, _ := startServer(t, ServerConfig{MaxProtoVersion: 2})
	reg := obs.NewRegistry()
	c := NewClient(streamCfg(addr, reg))
	defer c.Close()
	ctx := context.Background()
	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: encodeTestPhys(t), Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(9)).Read(data)
	hi := int64(len(data)) - 1
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, Data: data}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.ReadSegments(ctx, &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: hi, N: int64(len(data))}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fallback read-back differs")
	}
	streamed := reg.Counter(MetricClientStreamedOps+`{dir="write"}`).Value() +
		reg.Counter(MetricClientStreamedOps+`{dir="read"}`).Value()
	if streamed != 0 {
		t.Fatalf("%d operations claim to have streamed against a v2 daemon", streamed)
	}
	c.mu.Lock()
	ver := byte(0)
	if len(c.idle) > 0 {
		ver = c.idle[0].ver
	}
	c.mu.Unlock()
	if ver != ProtoVersion2 {
		t.Fatalf("fallback pooled connection at version %d, want %d", ver, ProtoVersion2)
	}
}

func TestFramePoolRetentionCap(t *testing.T) {
	base := FramePoolDiscards()
	putFrameBuf(make([]byte, maxPooledFrame+1))
	if got := FramePoolDiscards() - base; got != 1 {
		t.Fatalf("oversized buffer discards = %d, want 1", got)
	}
	// At the cap the buffer still pools (no discard).
	base = FramePoolDiscards()
	putFrameBuf(make([]byte, maxPooledFrame))
	if got := FramePoolDiscards() - base; got != 0 {
		t.Fatalf("cap-sized buffer was discarded (%d)", got)
	}
}

package rpc_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// breaker_test.go walks the per-node circuit breaker through its full
// life cycle against a real (dead, then revived) TCP endpoint:
// consecutive transport failures open it, open fast-fails without
// touching the wire, and the half-open Ping probe closes it again once
// the node answers.

func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	// Reserve a port, then kill the listener: dials now fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	c := rpc.NewClient(rpc.ClientConfig{
		Addr:             addr,
		Metrics:          reg,
		DialTimeout:      250 * time.Millisecond,
		MaxRetries:       -1, // single attempt per call
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()
	label := `{node="` + addr + `"}`

	// Two consecutive dial failures reach the threshold and open it.
	for i := 0; i < 2; i++ {
		if _, err := c.Stat(ctx, "f", 0); err == nil {
			t.Fatal("stat against a dead address succeeded")
		} else if errors.Is(err, rpc.ErrBreakerOpen) {
			t.Fatalf("call %d fast-failed before the threshold: %v", i, err)
		}
	}
	if got := reg.Gauge(rpc.MetricBreakerState + label).Value(); got != 1 {
		t.Fatalf("breaker state = %d after threshold failures, want 1 (open)", got)
	}
	if opens := reg.Counter(rpc.MetricBreakerOpens + label).Value(); opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}

	// Open, within the cooldown: calls fast-fail with ErrBreakerOpen
	// and never touch the socket.
	dialsBefore := reg.Counter(rpc.MetricClientDials).Value()
	if _, err := c.Stat(ctx, "f", 0); !errors.Is(err, rpc.ErrBreakerOpen) {
		t.Fatalf("open breaker let a call through: %v", err)
	}
	if d := reg.Counter(rpc.MetricClientDials).Value(); d != dialsBefore {
		t.Fatalf("fast-fail dialed anyway (%d -> %d)", dialsBefore, d)
	}
	if ff := reg.Counter(rpc.MetricBreakerFastFails + label).Value(); ff == 0 {
		t.Fatal("fast-fail not counted")
	}

	// Revive the node on the same address.
	srv := rpc.NewServer(rpc.ServerConfig{})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln2) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-done
	}()

	// Past the cooldown the next call runs the half-open Ping probe,
	// which succeeds and closes the breaker; the call itself then gets
	// a server answer (a RemoteError for the unknown file — an answer,
	// not a transport failure).
	time.Sleep(100 * time.Millisecond)
	_, err = c.Stat(ctx, "f", 0)
	if errors.Is(err, rpc.ErrBreakerOpen) {
		t.Fatalf("breaker did not recover after the node came back: %v", err)
	}
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want a RemoteError from the revived server, got %v", err)
	}
	if got := reg.Gauge(rpc.MetricBreakerState + label).Value(); got != 0 {
		t.Fatalf("breaker state = %d after recovery, want 0 (closed)", got)
	}
	if probes := reg.Counter(rpc.MetricBreakerProbes + label).Value(); probes == 0 {
		t.Fatal("recovery happened without a probe")
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off —
// any number of consecutive failures never fast-fails.
func TestBreakerDisabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := rpc.NewClient(rpc.ClientConfig{
		Addr:             addr,
		DialTimeout:      100 * time.Millisecond,
		MaxRetries:       -1,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: -1,
	})
	defer c.Close()
	for i := 0; i < 8; i++ {
		_, err := c.Stat(context.Background(), "f", 0)
		if err == nil {
			t.Fatal("stat against a dead address succeeded")
		}
		if errors.Is(err, rpc.ErrBreakerOpen) {
			t.Fatalf("disabled breaker fast-failed on call %d: %v", i, err)
		}
	}
}

// TestPing: the liveness RPC round-trips against a healthy daemon.
func TestPing(t *testing.T) {
	addr := startDaemon(t, rpc.ServerConfig{})
	c := rpc.NewClient(rpc.ClientConfig{Addr: addr})
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

package rpc

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// repl_wire_test.go: seeded-random round-trips for the metadata
// replication messages (ballots, log shipping, snapshot install,
// status) and the NotLeader redirect error, plus the compat rule that
// a zero NewEpoch on MetaCommitReq encodes byte-identically to the
// pre-replication wire format.

func TestMetaVoteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		req := &MetaVoteReq{
			Term:      rng.Uint64(),
			Candidate: randString(rng, 40),
			LastIndex: rng.Uint64(),
			LastTerm:  rng.Uint64(),
		}
		got, err := DecodeMetaVote(roundTrip(t, AppendMetaVote(nil, req), MsgMetaVote))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if *got != *req {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}

		resp := &MetaVoteResp{Term: rng.Uint64(), Granted: rng.Intn(2) == 1}
		gotR, err := DecodeMetaVoteResp(roundTrip(t, AppendMetaVoteResp(nil, resp), MsgMetaVoteResp))
		if err != nil {
			t.Fatalf("decode resp: %v", err)
		}
		if *gotR != *resp {
			t.Fatalf("resp round trip: got %+v, want %+v", gotR, resp)
		}
	}
}

func TestMetaAppendRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		req := &MetaAppendReq{
			Term:      rng.Uint64(),
			Leader:    randString(rng, 40),
			PrevIndex: rng.Uint64(),
			PrevTerm:  rng.Uint64(),
		}
		for j := rng.Intn(4); j > 0; j-- {
			req.Entries = append(req.Entries, ReplEntry{
				Index:   rng.Uint64(),
				Term:    rng.Uint64(),
				Payload: randBytes(rng, 128),
			})
		}
		got, err := DecodeMetaAppend(roundTrip(t, AppendMetaAppend(nil, req), MsgMetaAppend))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Term != req.Term || got.Leader != req.Leader ||
			got.PrevIndex != req.PrevIndex || got.PrevTerm != req.PrevTerm ||
			len(got.Entries) != len(req.Entries) {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
		for j := range req.Entries {
			if got.Entries[j].Index != req.Entries[j].Index ||
				got.Entries[j].Term != req.Entries[j].Term ||
				string(got.Entries[j].Payload) != string(req.Entries[j].Payload) {
				t.Fatalf("entry %d: got %+v, want %+v", j, got.Entries[j], req.Entries[j])
			}
		}

		resp := &MetaAppendResp{Term: rng.Uint64(), OK: rng.Intn(2) == 1, LastIndex: rng.Uint64()}
		gotR, err := DecodeMetaAppendResp(roundTrip(t, AppendMetaAppendResp(nil, resp), MsgMetaAppendResp))
		if err != nil {
			t.Fatalf("decode resp: %v", err)
		}
		if *gotR != *resp {
			t.Fatalf("resp round trip: got %+v, want %+v", gotR, resp)
		}
	}
}

func TestMetaSnapInstallRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		req := &MetaSnapInstallReq{
			Term:      rng.Uint64(),
			Leader:    randString(rng, 40),
			LastIndex: rng.Uint64(),
			LastTerm:  rng.Uint64(),
			State:     randBytes(rng, 512),
		}
		got, err := DecodeMetaSnapInstall(roundTrip(t, AppendMetaSnapInstall(nil, req), MsgMetaSnapInstall))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Term != req.Term || got.Leader != req.Leader ||
			got.LastIndex != req.LastIndex || got.LastTerm != req.LastTerm ||
			string(got.State) != string(req.State) {
			t.Fatalf("round trip mismatch")
		}
	}
}

func TestMetaStatusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	roles := []string{RoleFollower, RoleCandidate, RoleLeader, RoleStandalone}
	for i := 0; i < 200; i++ {
		info := &MetaStatusInfo{
			Term:      rng.Uint64(),
			Role:      roles[rng.Intn(len(roles))],
			Leader:    randString(rng, 40),
			Self:      randString(rng, 40),
			LastIndex: rng.Uint64(),
			LastTerm:  rng.Uint64(),
			LeaseMs:   rng.Int63n(1000),
			Peers:     int64(1 + rng.Intn(7)),
		}
		got, err := DecodeMetaStatusResp(roundTrip(t, AppendMetaStatusResp(nil, info), MsgMetaStatusResp))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if *got != *info {
			t.Fatalf("round trip: got %+v, want %+v", got, info)
		}
	}
	// The probe itself is an empty body.
	if p := roundTrip(t, AppendMetaStatus(nil), MsgMetaStatus); len(p) != 0 {
		t.Fatalf("status probe carries %d payload bytes, want 0", len(p))
	}
}

func TestNotLeaderErrorCarriesHint(t *testing.T) {
	body := AppendErrorLeader(nil, ErrCodeNotLeader, "not the metadata leader",
		50*time.Millisecond, "10.0.0.2:7060")
	re, err := DecodeError(roundTrip(t, body, MsgError))
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if re.Code != ErrCodeNotLeader || re.Leader != "10.0.0.2:7060" {
		t.Fatalf("redirect lost fields: %+v", re)
	}
	if re.RetryAfter != 50*time.Millisecond {
		t.Fatalf("retry-after %v, want 50ms", re.RetryAfter)
	}
	if !errors.Is(re, ErrNotLeader) {
		t.Fatalf("NotLeader error does not match ErrNotLeader sentinel: %v", re)
	}

	// Without a hint the field decodes empty (old-format compat).
	plain := AppendError(nil, ErrCodeBadRequest, "nope")
	re2, err := DecodeError(roundTrip(t, plain, MsgError))
	if err != nil {
		t.Fatalf("DecodeError(plain): %v", err)
	}
	if re2.Leader != "" || errors.Is(re2, ErrNotLeader) {
		t.Fatalf("plain error grew a leader hint: %+v", re2)
	}
}

// TestMetaCommitNewEpochCompat: NewEpoch is a trailing optional field —
// a zero value must encode to the exact bytes the pre-replication
// format produced, so mixed-version parafilemd/driver pairs interop.
func TestMetaCommitNewEpochCompat(t *testing.T) {
	req := &MetaCommitReq{
		Name: "f", OldEpoch: 7, StoreName: "f@8",
		Nodes: []string{"n1:1"}, Assign: []int{0},
	}
	base := AppendMetaCommit(nil, req)
	req.NewEpoch = 0
	if got := AppendMetaCommit(nil, req); string(got) != string(base) {
		t.Fatal("zero NewEpoch changed the wire encoding")
	}
	got, err := DecodeMetaCommit(roundTrip(t, base, MsgMetaCommit))
	if err != nil {
		t.Fatalf("decode old-format commit: %v", err)
	}
	if got.NewEpoch != 0 {
		t.Fatalf("old-format commit decoded NewEpoch %d, want 0", got.NewEpoch)
	}

	req.NewEpoch = 5 << 20
	got2, err := DecodeMetaCommit(roundTrip(t, AppendMetaCommit(nil, req), MsgMetaCommit))
	if err != nil {
		t.Fatalf("decode new-format commit: %v", err)
	}
	if got2.NewEpoch != 5<<20 {
		t.Fatalf("NewEpoch %d, want %d", got2.NewEpoch, 5<<20)
	}
}

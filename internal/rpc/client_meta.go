package rpc

import "context"

// client_meta.go is the metadata-service half of the client: the
// MsgMeta* calls parafilemd answers. The metadata daemon speaks the
// same framing, negotiation and error protocol as the data daemons, so
// the calls ride the shared retry/breaker/mux machinery — a Client
// pointed at a parafilemd address just uses these methods instead of
// the storage ones.

// metaFileCall is one request returning a MsgMetaFileResp.
func (c *Client) metaFileCall(ctx context.Context, reqType byte, req []byte) (*MetaFile, error) {
	f, err := c.call(ctx, reqType, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaFileResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaFileResp(payload)
}

// MetaCreate creates a namespace entry; the service computes the
// initial placement over its active nodes and returns the full record.
func (c *Client) MetaCreate(ctx context.Context, req *MetaCreateReq) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaCreate, AppendMetaCreate(getFrameBuf(64), req))
}

// MetaOpen fetches the record of one file by name — the placement map
// clients cache and refetch on ErrStalePlacement.
func (c *Client) MetaOpen(ctx context.Context, name string) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaOpen, AppendMetaName(getFrameBuf(64), MsgMetaOpen, name))
}

// MetaList returns every namespace entry, name-sorted.
func (c *Client) MetaList(ctx context.Context) ([]*MetaFile, error) {
	req := AppendMetaEmpty(getFrameBuf(8), MsgMetaList)
	f, err := c.call(ctx, MsgMetaList, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaListResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaListResp(payload)
}

// MetaRemove deletes a namespace entry. The daemon-side stores are the
// caller's to reap; the service only forgets the name.
func (c *Client) MetaRemove(ctx context.Context, name string) error {
	return c.exchange(ctx, MsgMetaRemove, AppendMetaName(getFrameBuf(64), MsgMetaRemove, name))
}

// MetaCommit performs the compare-and-swap placement flip after a
// rebalance and returns the committed record (epoch OldEpoch+1). A
// file that moved past OldEpoch answers ErrStalePlacement and nothing
// changes.
func (c *Client) MetaCommit(ctx context.Context, req *MetaCommitReq) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaCommit, AppendMetaCommit(getFrameBuf(128), req))
}

// MetaExtend ratchets the file's logical length (shrinks are ignored)
// and returns the current record.
func (c *Client) MetaExtend(ctx context.Context, name string, length int64) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaExtend, AppendMetaExtend(getFrameBuf(64), &MetaExtendReq{Name: name, Length: length}))
}

// MetaNodes returns the cluster membership table.
func (c *Client) MetaNodes(ctx context.Context) ([]MetaNode, error) {
	req := AppendMetaEmpty(getFrameBuf(8), MsgMetaNodes)
	f, err := c.call(ctx, MsgMetaNodes, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaNodesResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaNodesResp(payload)
}

// MetaNodeSet registers a node or changes its membership state and
// returns the updated table.
func (c *Client) MetaNodeSet(ctx context.Context, addr string, state byte) ([]MetaNode, error) {
	req := AppendMetaNodeReq(getFrameBuf(64), &MetaNode{Addr: addr, State: state})
	f, err := c.call(ctx, MsgMetaNode, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaNodesResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaNodesResp(payload)
}

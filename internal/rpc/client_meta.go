package rpc

import "context"

// client_meta.go is the metadata-service half of the client: the
// MsgMeta* calls parafilemd answers. The metadata daemon speaks the
// same framing, negotiation and error protocol as the data daemons, so
// the calls ride the shared retry/breaker/mux machinery — a Client
// pointed at a parafilemd address just uses these methods instead of
// the storage ones.

// metaFileCall is one request returning a MsgMetaFileResp.
func (c *Client) metaFileCall(ctx context.Context, reqType byte, req []byte) (*MetaFile, error) {
	f, err := c.call(ctx, reqType, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaFileResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaFileResp(payload)
}

// MetaCreate creates a namespace entry; the service computes the
// initial placement over its active nodes and returns the full record.
func (c *Client) MetaCreate(ctx context.Context, req *MetaCreateReq) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaCreate, AppendMetaCreate(getFrameBuf(64), req))
}

// MetaOpen fetches the record of one file by name — the placement map
// clients cache and refetch on ErrStalePlacement.
func (c *Client) MetaOpen(ctx context.Context, name string) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaOpen, AppendMetaName(getFrameBuf(64), MsgMetaOpen, name))
}

// MetaList returns every namespace entry, name-sorted.
func (c *Client) MetaList(ctx context.Context) ([]*MetaFile, error) {
	req := AppendMetaEmpty(getFrameBuf(8), MsgMetaList)
	f, err := c.call(ctx, MsgMetaList, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaListResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaListResp(payload)
}

// MetaRemove deletes a namespace entry. The daemon-side stores are the
// caller's to reap; the service only forgets the name.
func (c *Client) MetaRemove(ctx context.Context, name string) error {
	return c.exchange(ctx, MsgMetaRemove, AppendMetaName(getFrameBuf(64), MsgMetaRemove, name))
}

// MetaCommit performs the compare-and-swap placement flip after a
// rebalance and returns the committed record (epoch OldEpoch+1). A
// file that moved past OldEpoch answers ErrStalePlacement and nothing
// changes.
func (c *Client) MetaCommit(ctx context.Context, req *MetaCommitReq) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaCommit, AppendMetaCommit(getFrameBuf(128), req))
}

// MetaExtend ratchets the file's logical length (shrinks are ignored)
// and returns the current record.
func (c *Client) MetaExtend(ctx context.Context, name string, length int64) (*MetaFile, error) {
	return c.metaFileCall(ctx, MsgMetaExtend, AppendMetaExtend(getFrameBuf(64), &MetaExtendReq{Name: name, Length: length}))
}

// MetaNodes returns the cluster membership table.
func (c *Client) MetaNodes(ctx context.Context) ([]MetaNode, error) {
	req := AppendMetaEmpty(getFrameBuf(8), MsgMetaNodes)
	f, err := c.call(ctx, MsgMetaNodes, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaNodesResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaNodesResp(payload)
}

// MetaVote asks a peer for its ballot in a leader election round.
func (c *Client) MetaVote(ctx context.Context, req *MetaVoteReq) (*MetaVoteResp, error) {
	body := AppendMetaVote(getFrameBuf(64), req)
	f, err := c.call(ctx, MsgMetaVote, body)
	putFrameBuf(body)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaVoteResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaVoteResp(payload)
}

// MetaAppendEntries ships a log batch (or an empty heartbeat) to a
// follower. Duplicate delivery is safe: the follower skips entries at
// or below its log tail, so the shared retry machinery applies.
func (c *Client) MetaAppendEntries(ctx context.Context, req *MetaAppendReq) (*MetaAppendResp, error) {
	body := AppendMetaAppend(getFrameBuf(256), req)
	f, err := c.call(ctx, MsgMetaAppend, body)
	putFrameBuf(body)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaAppendResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaAppendResp(payload)
}

// MetaSnapInstall transfers a full serialized namespace state to a
// diverged follower, which installs it atomically.
func (c *Client) MetaSnapInstall(ctx context.Context, req *MetaSnapInstallReq) (*MetaAppendResp, error) {
	body := AppendMetaSnapInstall(getFrameBuf(1024), req)
	f, err := c.call(ctx, MsgMetaSnapInstall, body)
	putFrameBuf(body)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaAppendResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaAppendResp(payload)
}

// MetaStatus asks a metadata node for its replication status.
func (c *Client) MetaStatus(ctx context.Context) (*MetaStatusInfo, error) {
	body := AppendMetaStatus(getFrameBuf(8))
	f, err := c.call(ctx, MsgMetaStatus, body)
	putFrameBuf(body)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaStatusResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaStatusResp(payload)
}

// MetaNodeSet registers a node or changes its membership state and
// returns the updated table.
func (c *Client) MetaNodeSet(ctx context.Context, addr string, state byte) ([]MetaNode, error) {
	req := AppendMetaNodeReq(getFrameBuf(64), &MetaNode{Addr: addr, State: state})
	f, err := c.call(ctx, MsgMetaNode, req)
	putFrameBuf(req)
	if err != nil {
		return nil, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgMetaNodesResp)
	if err != nil {
		return nil, err
	}
	return DecodeMetaNodesResp(payload)
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"parafile/internal/obs"
	"parafile/internal/qos"
)

// qos_test.go covers the overload path end to end: the tenant and
// retry-after wire extensions, the server-side admission hook, and —
// the load-bearing contract — that an overloaded answer is
// backpressure, not failure: it never advances the circuit breaker,
// and breaker probes are still admitted while the data plane sheds.

// shedLimiter builds a limiter whose data plane always sheds: the
// test holds the only in-flight slot, so every data request queues
// and times out after a few milliseconds. Control ops bypass it.
func shedLimiter(t *testing.T) *qos.Limiter {
	t.Helper()
	lim := qos.NewLimiter(qos.Config{
		MaxInFlight: 1,
		MaxQueue:    1,
		MaxWait:     5 * time.Millisecond,
	})
	rel, err := lim.Acquire(context.Background(), "hog", qos.OpWrite, 1)
	if err != nil {
		t.Fatalf("occupying the limiter: %v", err)
	}
	t.Cleanup(rel)
	return lim
}

func TestHelloTenantRoundTrip(t *testing.T) {
	// Empty tenant encodes byte-identically to the pre-tenant Hello.
	legacy := AppendHelloFeatures(nil, 3, FeaturePlacement)
	plain := AppendHelloTenant(nil, 3, FeaturePlacement, "")
	if !bytes.Equal(legacy, plain) {
		t.Fatalf("empty tenant changed the Hello bytes:\n  %x\n  %x", legacy, plain)
	}

	body := AppendHelloTenant(nil, 3, FeaturePlacement|FeatureTenant, "gold")
	msgType, payload, err := ParseFrame(body)
	if err != nil || msgType != MsgHello {
		t.Fatalf("ParseFrame: type %#x err %v", msgType, err)
	}
	v, feats, tenant, err := DecodeHelloTenant(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || feats != FeaturePlacement|FeatureTenant || tenant != "gold" {
		t.Fatalf("decoded (v=%d feats=%#x tenant=%q)", v, feats, tenant)
	}

	// A Hello without the tenant bit never carries a tenant.
	_, _, tenant, err = DecodeHelloTenant(payload[:len(payload)-len("gold")-1])
	if err == nil && tenant != "" {
		t.Fatalf("tenant %q decoded from a truncated hello", tenant)
	}
	_, p2, _ := ParseFrame(plain)
	if _, _, tenant, err = DecodeHelloTenant(p2); err != nil || tenant != "" {
		t.Fatalf("legacy hello: tenant %q err %v", tenant, err)
	}
}

func TestErrorRetryAfterRoundTrip(t *testing.T) {
	// No retry hint encodes byte-identically to the legacy error.
	legacy := AppendError(nil, ErrCodeIO, "boom")
	plain := AppendErrorRetry(nil, ErrCodeIO, "boom", 0)
	if !bytes.Equal(legacy, plain) {
		t.Fatalf("zero retry-after changed the error bytes:\n  %x\n  %x", legacy, plain)
	}

	for _, tc := range []struct {
		in, want time.Duration
	}{
		{250 * time.Millisecond, 250 * time.Millisecond},
		{3 * time.Second, 3 * time.Second},
		{100 * time.Microsecond, time.Millisecond}, // sub-ms rounds up
	} {
		body := AppendErrorRetry(nil, ErrCodeOverloaded, "shed", tc.in)
		_, payload, err := ParseFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		re, err := DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if re.Code != ErrCodeOverloaded || re.RetryAfter != tc.want {
			t.Fatalf("decoded code %d retry %v, want %d %v", re.Code, re.RetryAfter, ErrCodeOverloaded, tc.want)
		}
		if !errors.Is(re, qos.ErrOverloaded) {
			t.Fatalf("overloaded RemoteError does not match qos.ErrOverloaded")
		}
	}

	_, payload, _ := ParseFrame(legacy)
	re, err := DecodeError(payload)
	if err != nil || re.RetryAfter != 0 {
		t.Fatalf("legacy error: retry %v err %v", re.RetryAfter, err)
	}
}

func TestCloseRemoveRoundTrip(t *testing.T) {
	keep := AppendClose(nil, &CloseReq{File: "f"})
	_, payload, err := ParseFrame(keep)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeClose(payload)
	if err != nil || req.File != "f" || req.Remove {
		t.Fatalf("decoded %+v err %v", req, err)
	}

	rm := AppendClose(nil, &CloseReq{File: "f", Remove: true})
	if bytes.Equal(keep, rm) {
		t.Fatal("Remove flag did not change the encoding")
	}
	_, payload, _ = ParseFrame(rm)
	if req, err = DecodeClose(payload); err != nil || !req.Remove {
		t.Fatalf("decoded %+v err %v", req, err)
	}
}

// TestBackoffJitterDecorrelates pins two clients to different seeds
// and checks their retry schedules diverge — the deterministic
// backoff this replaces made every client that failed together retry
// in lockstep, re-spiking the node that shed them.
func TestBackoffJitterDecorrelates(t *testing.T) {
	mk := func(seed int64) *Client {
		return NewClient(ClientConfig{
			Addr:        "127.0.0.1:1",
			BackoffSeed: seed,
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  time.Second,
		})
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	defer b.Close()
	differ := false
	for attempt := 1; attempt <= 8; attempt++ {
		pa, pb := a.backoff(attempt), b.backoff(attempt)
		d := a.cfg.BackoffBase << (attempt - 1)
		if d > a.cfg.BackoffMax || d <= 0 {
			d = a.cfg.BackoffMax
		}
		for _, p := range []time.Duration{pa, pb} {
			if p < d/2 || p > d {
				t.Fatalf("attempt %d: pause %v outside [%v,%v]", attempt, p, d/2, d)
			}
		}
		if pa != pb {
			differ = true
		}
	}
	if !differ {
		t.Fatal("two clients with different seeds produced identical schedules")
	}
}

// TestOverloadedNeverTripsBreaker is the backpressure contract: a
// shedding node is healthy, so overloaded answers must not advance
// the breaker's failure count — only transport failures may.
func TestOverloadedNeverTripsBreaker(t *testing.T) {
	lim := shedLimiter(t)
	addr, _ := startServer(t, ServerConfig{QoS: lim})

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:             addr,
		Metrics:          reg,
		MaxRetries:       -1, // single attempt: surface the raw shed
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	defer c.Close()
	ctx := context.Background()
	label := `{node="` + addr + `"}`

	data := []byte("x")
	for i := 0; i < 4; i++ {
		err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 0, Data: data})
		if !errors.Is(err, qos.ErrOverloaded) {
			t.Fatalf("write %d: %v, want overloaded", i, err)
		}
		if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("write %d fast-failed: sheds advanced the breaker", i)
		}
	}
	if got := reg.Gauge(MetricBreakerState + label).Value(); got != 0 {
		t.Fatalf("breaker state = %d after 4 sheds, want 0 (closed)", got)
	}
	if opens := reg.Counter(MetricBreakerOpens + label).Value(); opens != 0 {
		t.Fatalf("breaker opened %d time(s) on overload answers", opens)
	}
	if shed := reg.Counter(MetricClientShed).Value(); shed != 4 {
		t.Fatalf("client shed counter = %d, want 4", shed)
	}
	if fails := reg.Counter(MetricClientFailures).Value(); fails != 0 {
		t.Fatalf("client failures = %d, want 0 (shed is not failure)", fails)
	}

	// Control plane bypasses the shed: the breaker's probe op works.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping under full data-plane shed: %v", err)
	}
}

// TestBreakerProbeAdmittedUnderShed opens the breaker with real
// transport failures, then revives the endpoint as a fully shedding
// server: the half-open Ping probe must be admitted (control ops
// bypass admission), close the breaker, and let the request through
// to its typed overloaded answer instead of ErrBreakerOpen.
func TestBreakerProbeAdmittedUnderShed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:             addr,
		Metrics:          reg,
		DialTimeout:      250 * time.Millisecond,
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  20 * time.Millisecond,
	})
	defer c.Close()
	ctx := context.Background()
	label := `{node="` + addr + `"}`

	data := []byte("x")
	if err := c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 0, Data: data}); err == nil {
		t.Fatal("write against a dead address succeeded")
	}
	if opens := reg.Counter(MetricBreakerOpens + label).Value(); opens != 1 {
		t.Fatalf("opens = %d after a transport failure, want 1", opens)
	}

	// Revive the endpoint as a server whose data plane sheds all.
	lim := shedLimiter(t)
	srv := NewServer(ServerConfig{QoS: lim})
	for i := 0; ; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-done
	})

	time.Sleep(30 * time.Millisecond) // past the cooldown: next call probes
	err = c.WriteSegments(ctx, &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: 0, Data: data})
	if errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe was not admitted under shed: %v", err)
	}
	if !errors.Is(err, qos.ErrOverloaded) {
		t.Fatalf("write after probe: %v, want overloaded", err)
	}
	if probes := reg.Counter(MetricBreakerProbes + label).Value(); probes < 1 {
		t.Fatal("no breaker probe recorded")
	}
	if got := reg.Gauge(MetricBreakerState + label).Value(); got != 0 {
		t.Fatalf("breaker state = %d after a successful probe, want 0 (closed)", got)
	}
}

// TestTenantQuotaOverWire checks the tenant travels end to end: a
// client that names a quota'd tenant in its Hello is throttled by the
// server's per-tenant bucket — with a usable RetryAfter — while an
// anonymous client on the same daemon is untouched.
func TestTenantQuotaOverWire(t *testing.T) {
	lim := qos.NewLimiter(qos.Config{
		Tenants: map[string]qos.TenantLimit{
			"bulk": {OpsPerSec: 0.001, BurstOps: 1},
		},
	})
	addr, _ := startServer(t, ServerConfig{QoS: lim})
	phys := encodeTestPhys(t)
	ctx := context.Background()

	bulk := NewClient(ClientConfig{Addr: addr, Tenant: "bulk", MaxRetries: -1})
	defer bulk.Close()
	anon := NewClient(ClientConfig{Addr: addr, MaxRetries: -1})
	defer anon.Close()

	if err := bulk.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: phys, Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := []byte("payload")
	seg := &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data}

	// First write spends bulk's burst; the second is over quota.
	if err := bulk.WriteSegments(ctx, seg); err != nil {
		t.Fatalf("first bulk write: %v", err)
	}
	err := bulk.WriteSegments(ctx, seg)
	if !errors.Is(err, qos.ErrOverloaded) {
		t.Fatalf("second bulk write: %v, want overloaded", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.RetryAfter <= 0 {
		t.Fatalf("overloaded answer carried no RetryAfter: %v", err)
	}

	// The anonymous client lands in the default class: no quota.
	for i := 0; i < 3; i++ {
		if err := anon.WriteSegments(ctx, seg); err != nil {
			t.Fatalf("anonymous write %d: %v", i, err)
		}
	}
}

// TestClientPacingShedsLocally: after a shed answer with a RetryAfter
// hint, the client refuses data-plane attempts inside the hinted
// window itself — same typed overload, no payload shipped — while
// control ops still reach the node.
func TestClientPacingShedsLocally(t *testing.T) {
	lim := qos.NewLimiter(qos.Config{
		Tenants: map[string]qos.TenantLimit{
			// One burst op, then a refill horizon far past the test: the
			// second write's RetryAfter hint (capped at maxClientPace)
			// keeps the gate closed for the rest of the test.
			"bulk": {OpsPerSec: 0.001, BurstOps: 1},
		},
	})
	addr, _ := startServer(t, ServerConfig{QoS: lim})
	phys := encodeTestPhys(t)
	ctx := context.Background()

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{Addr: addr, Tenant: "bulk", MaxRetries: -1, Metrics: reg})
	defer c.Close()

	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: phys, Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := []byte("payload")
	seg := &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data}

	if err := c.WriteSegments(ctx, seg); err != nil {
		t.Fatalf("first write: %v", err)
	}
	err := c.WriteSegments(ctx, seg)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("second write: %v, want a wire shed (*RemoteError)", err)
	}
	if paced := reg.Counter(MetricClientPaced).Value(); paced != 0 {
		t.Fatalf("paced = %d before any local shed, want 0", paced)
	}

	// Inside the hinted window: shed locally, without touching the wire.
	err = c.WriteSegments(ctx, seg)
	if !errors.Is(err, qos.ErrOverloaded) {
		t.Fatalf("paced write: %v, want overloaded", err)
	}
	if errors.As(err, &re) {
		t.Fatalf("paced write reached the wire: %v", err)
	}
	if paced := reg.Counter(MetricClientPaced).Value(); paced != 1 {
		t.Fatalf("paced = %d after a local shed, want 1", paced)
	}
	if shed := reg.Counter(MetricClientShed).Value(); shed != 2 {
		t.Fatalf("shed = %d (one wire + one local), want 2", shed)
	}
	if fails := reg.Counter(MetricClientFailures).Value(); fails != 0 {
		t.Fatalf("failures = %d, want 0", fails)
	}

	// Control plane bypasses the gate like it bypasses admission.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping under client pacing: %v", err)
	}

	// The gate is a capped hint, not a latch: a RetryAfter beyond
	// maxClientPace closes it for at most maxClientPace, and later
	// shorter hints never shorten an already-set deadline.
	if got := c.paceRemaining(); got <= 0 || got > maxClientPace {
		t.Fatalf("pace remaining = %v, want within (0, %v]", got, maxClientPace)
	}
	before := c.paceRemaining()
	c.paceFor(time.Millisecond)
	if got := c.paceRemaining(); got < before-50*time.Millisecond {
		t.Fatalf("a shorter hint rewound the gate: %v -> %v", before, got)
	}
}

// TestClientPaceEpisode: past a closed window the client is still in
// an overload episode — wire attempts resume (the node's refill has
// accumulated), but they trickle under the paceBurst in-flight cap
// rather than flooding, and the episode arms only after a wire shed.
func TestClientPaceEpisode(t *testing.T) {
	// 20 ops/s refill, burst 1: the first write spends the burst, the
	// second is shed with RetryAfter ≈ 50ms (gate ≈ 400ms stretched),
	// and by the time the test sleeps the window out the bucket holds
	// several ops again, so post-window writes are admitted.
	lim := qos.NewLimiter(qos.Config{
		Tenants: map[string]qos.TenantLimit{
			"bulk": {OpsPerSec: 20, BurstOps: 1},
		},
	})
	addr, _ := startServer(t, ServerConfig{QoS: lim})
	phys := encodeTestPhys(t)
	ctx := context.Background()

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{Addr: addr, Tenant: "bulk", MaxRetries: -1, Metrics: reg})
	defer c.Close()

	if err := c.CreateFile(ctx, &CreateFileReq{Name: "f", Phys: phys, Subfiles: []int{0}}); err != nil {
		t.Fatal(err)
	}
	data := []byte("payload")
	seg := &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data}

	if c.paceActive() {
		t.Fatal("fresh client starts inside an overload episode")
	}
	if err := c.WriteSegments(ctx, seg); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if c.paceActive() {
		t.Fatal("an admitted write armed the episode")
	}
	var re *RemoteError
	if err := c.WriteSegments(ctx, seg); !errors.As(err, &re) {
		t.Fatalf("second write: %v, want a wire shed", err)
	}
	if !c.paceActive() {
		t.Fatal("a wire shed did not arm the episode")
	}
	gate := c.paceRemaining()
	if gate <= 0 {
		t.Fatal("wire shed left the gate open")
	}

	// Wait out the window: attempts reach the wire again (under the
	// in-flight cap) and the refilled bucket admits them.
	time.Sleep(gate + 50*time.Millisecond)
	if err := c.WriteSegments(ctx, seg); err != nil {
		t.Fatalf("write after the window: %v", err)
	}
	if n := c.paceSlots.Load(); n != 0 {
		t.Fatalf("%d pace slots leaked after the attempt settled", n)
	}
	if !c.paceActive() {
		t.Fatal("episode ended the moment one write was admitted")
	}

	// The cap sheds overflow locally: with every slot taken, an
	// attempt is paced without reaching the wire.
	c.paceSlots.Store(paceBurst)
	err := c.WriteSegments(ctx, seg)
	c.paceSlots.Store(0)
	if !errors.Is(err, qos.ErrOverloaded) || errors.As(err, &re) {
		t.Fatalf("write with all slots busy: %v, want a local shed", err)
	}
	if paced := reg.Counter(MetricClientPaced).Value(); paced < 1 {
		t.Fatal("slot-capped shed not counted as paced")
	}
}

package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/qos"
	"parafile/internal/redist"
)

// stream.go is the server side of proto v3. A connection whose Hello
// asked for v3 switches into multiplexed mode: a single read loop
// demultiplexes tagged frames, unary requests dispatch in their own
// goroutines, and the chunked-transfer messages run as pipelines —
//
//   write stream: read loop feeds arriving chunks into a bounded
//   channel; a per-stream worker scatters them into the store while
//   later chunks are still crossing the wire. When the channel's
//   window fills, the read loop parks, which propagates TCP
//   backpressure to the client.
//
//   read stream: a producer goroutine gathers store bytes into
//   chunk-sized buffers while the stream worker sends completed
//   chunks, so disk gather and network transmission overlap.
//
// Store access locks the file per individual store operation rather
// than per whole transfer: holding the file lock across a chunk-fed
// scatter would let one stalled stream wedge every other stream of the
// same file (the chunks that would un-stall it can sit behind the
// blocked one in the read loop).

// errSenderDead stops a read-stream producer whose sender hit a
// transport error.
var errSenderDead = errors.New("rpc: stream sender failed")

// srvChunk is one arriving write-stream chunk; data aliases body.
type srvChunk struct {
	body  []byte
	data  []byte
	last  bool
	abort bool
}

// srvWriteStream is one open chunked write. The read loop owns the
// map entry and closes chunks on the last/abort chunk or connection
// death; the worker drains the channel no matter what, so the read
// loop never blocks on a dead stream forever.
type srvWriteStream struct {
	chunks chan srvChunk
}

// srvConn is one multiplexed connection, server side.
type srvConn struct {
	s    *Server
	conn net.Conn
	// tenant is the fair-share class the upgrade hello negotiated,
	// fixed for the connection's lifetime (the concurrent stream
	// goroutines only ever read it).
	tenant string

	// wmu serializes outgoing frames across all streams.
	wmu sync.Mutex
	// wg tracks every goroutine spawned for this connection.
	wg sync.WaitGroup

	// writeStreams is owned by the read loop goroutine.
	writeStreams map[uint64]*srvWriteStream
}

// serveMux runs a v3 connection until it drops, then releases every
// stream worker and waits for them.
func (s *Server) serveMux(conn net.Conn, tenant string) {
	sc := &srvConn{s: s, conn: conn, tenant: tenant, writeStreams: make(map[uint64]*srvWriteStream)}
	sc.readLoop()
	for _, st := range sc.writeStreams {
		close(st.chunks)
	}
	sc.wg.Wait()
}

// send writes one frame, vectored and serialized.
func (sc *srvConn) send(parts ...[]byte) error {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if err := WriteFrameVec(sc.conn, ProtoVersion3, parts...); err != nil {
		return err
	}
	sc.s.met.sentBytes.Add(int64(n + 4))
	return nil
}

// sendResp reframes an encoded [ver][type][payload] response onto a
// stream and sends it. The response buffer stays owned by the caller.
func (sc *srvConn) sendResp(sid uint64, resp []byte) error {
	prefix := appendStreamHdr(getFrameBuf(16), resp[1], sid)
	err := sc.send(prefix, resp[2:])
	putFrameBuf(prefix)
	return err
}

// sendErr sends an error response on a stream.
func (sc *srvConn) sendErr(sid uint64, code uint64, msg string) {
	out := sc.s.errResp(getFrameBuf(64), code, msg)
	sc.sendResp(sid, out)
	putFrameBuf(out)
}

// sendOverload sends an admission refusal (with its RetryAfter hint)
// on a stream.
func (sc *srvConn) sendOverload(sid uint64, err error) {
	out := sc.s.overloadResp(getFrameBuf(64), err)
	sc.sendResp(sid, out)
	putFrameBuf(out)
}

// readLoop demultiplexes the connection until EOF, a framing error, or
// the drain wake-up.
func (sc *srvConn) readLoop() {
	s := sc.s
	for {
		body, err := ReadFrame(sc.conn, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		s.met.recvBytes.Add(int64(len(body) + 4))
		msgType, rest, err := ParseFrame(body)
		var sid uint64
		var payload []byte
		if err == nil {
			sid, payload, err = splitStreamFrame(rest)
		}
		if err != nil {
			// Broken framing on a multiplexed connection poisons every
			// stream on it: drop the connection, clients retry.
			ReleaseFrame(body)
			return
		}
		switch msgType {
		case MsgWriteChunk:
			flags, data, cerr := splitChunk(payload)
			if cerr != nil {
				ReleaseFrame(body)
				return
			}
			st := sc.writeStreams[sid]
			if st == nil {
				// Chunk for a stream that never opened (or a duplicate
				// tail after teardown): drop it.
				ReleaseFrame(body)
				continue
			}
			ck := srvChunk{
				body:  body,
				data:  data,
				last:  flags&flagChunkLast != 0,
				abort: flags&flagChunkAbort != 0,
			}
			st.chunks <- ck
			if ck.last || ck.abort {
				close(st.chunks)
				delete(sc.writeStreams, sid)
			}
		case MsgWriteStream:
			req, derr := DecodeWriteStream(payload)
			ReleaseFrame(body)
			if derr != nil {
				return
			}
			st := &srvWriteStream{chunks: make(chan srvChunk, streamWindow)}
			sc.writeStreams[sid] = st
			sc.wg.Add(1)
			go sc.runWriteStream(sid, req, st)
		case MsgReadStream:
			req, derr := DecodeReadStream(payload)
			ReleaseFrame(body)
			if derr != nil {
				return
			}
			sc.wg.Add(1)
			go sc.runReadStream(sid, req)
		default:
			// Unary request: dispatch concurrently, responses serialize
			// under the write lock. MsgTraced envelopes take this path
			// too — dispatch unwraps them.
			sc.wg.Add(1)
			go func(sid uint64, msgType byte, body, payload []byte) {
				defer sc.wg.Done()
				// Each goroutine gets its own tenant copy: the mux
				// connection's class is fixed at upgrade, and a stray
				// mid-connection hello must not race sibling dispatches.
				tenant := sc.tenant
				resp := s.dispatch(getFrameBuf(64), msgType, payload, nil, &tenant)
				ReleaseFrame(body)
				sc.sendResp(sid, resp)
				putFrameBuf(resp)
			}(sid, msgType, body, payload)
		}
	}
}

// chunkFeed pulls a write stream's bytes chunk by chunk, releasing
// each spent frame. After take returns nil, exactly one of ended /
// aborted / closed explains why.
type chunkFeed struct {
	s        *Server
	chunks   <-chan srvChunk
	cur      srvChunk
	off      int
	received int64
	ended    bool // clean last chunk consumed
	aborted  bool // client sent an abort chunk
	closed   bool // connection died before the stream finished

	// onWait, when set, runs just before take blocks on the chunk
	// channel. The scatter uses it to drop the file lock while waiting
	// on the network, so it can hold the lock across the buffered
	// chunks (per-chunk locking instead of per-segment) without ever
	// holding it through a wait — that would let one stalled stream
	// wedge every sibling stream of the same file.
	onWait func()
	// measure accumulates the blocked time into waitNs (stream-window
	// stalls: the client is slower than the scatter). Only set when
	// the stream is traced, so the untraced hot loop never reads the
	// clock for it.
	measure bool
	waitNs  int64
}

// take returns up to n unconsumed stream bytes (aliasing the chunk
// frame; valid until the next call), or nil at end of stream.
func (f *chunkFeed) take(n int64) []byte {
	for {
		if f.cur.body != nil {
			if f.off < len(f.cur.data) {
				avail := int64(len(f.cur.data) - f.off)
				if avail > n {
					avail = n
				}
				b := f.cur.data[f.off : f.off+int(avail)]
				f.off += int(avail)
				return b
			}
			if f.cur.last {
				f.ended = true
			}
			if f.cur.abort {
				f.aborted = true
			}
			ReleaseFrame(f.cur.body)
			f.cur = srvChunk{}
			f.off = 0
		}
		if f.ended || f.aborted || f.closed {
			return nil
		}
		var ck srvChunk
		var ok bool
		select {
		case ck, ok = <-f.chunks:
		default:
			if f.onWait != nil {
				f.onWait()
			}
			if f.measure {
				t0 := time.Now()
				ck, ok = <-f.chunks
				f.waitNs += time.Since(t0).Nanoseconds()
			} else {
				ck, ok = <-f.chunks
			}
		}
		if !ok {
			f.closed = true
			return nil
		}
		f.s.met.chunksRecvd.Inc()
		f.received += int64(len(ck.data))
		f.cur = ck
	}
}

// drain consumes the rest of the stream without using the bytes, so
// the read loop is never left blocked on the stream's window.
func (f *chunkFeed) drain() {
	for f.take(1<<62) != nil {
	}
}

// runWriteStream executes one chunked scatter. Mirrors
// handleWriteSegs' validation, then consumes the chunk feed through a
// single projection walk.
func (sc *srvConn) runWriteStream(sid uint64, req *WriteStreamReq, st *srvWriteStream) {
	defer sc.wg.Done()
	s := sc.s
	start := time.Now()
	s.met.inflight.Add(1)
	defer func() {
		s.met.inflight.Add(-1)
		s.met.requestNs.Observe(time.Since(start).Nanoseconds())
		s.met.poolDiscards.Set(FramePoolDiscards())
	}()
	s.met.requests[MsgWriteStream].Inc()
	s.met.streamsW.Inc()

	// Traced stream: the span adopts the caller's trace; its records
	// wait in the stash for the client's MsgSpans drain (the stream's
	// own reply stays lean).
	sp := s.startSpan("write_stream", req.TraceID, req.SpanID)
	s.cfg.Tracer.Adopt(sp)
	defer func() {
		if sp != nil {
			s.cfg.Tracer.FinishOp(sp)
			s.stash.Put(req.TraceID, sp.Records(nil))
		}
	}()

	feed := &chunkFeed{s: s, chunks: st.chunks, measure: sp != nil}
	fail := func(code uint64, msg string) {
		sp.Fail()
		feed.drain()
		if feed.closed {
			return // connection gone; nobody to answer
		}
		sc.sendErr(sid, code, msg)
	}

	if s.draining.Load() {
		fail(ErrCodeShuttingDown, "server draining")
		return
	}
	// Validate before admission: a malformed request must be refused
	// without ever touching the tenant's quota (a negative Total would
	// otherwise credit the byte bucket).
	if req.Hi < req.Lo-1 || req.Lo < 0 || req.Total < 0 {
		fail(ErrCodeBadRequest, fmt.Sprintf("bad segment window [%d,%d] (%d bytes)", req.Lo, req.Hi, req.Total))
		return
	}
	// Admission charges the stream's announced payload up front: the
	// whole transfer occupies an in-flight slot and its bytes count
	// against the tenant's quota, exactly like a unary write's frame.
	if s.cfg.QoS != nil {
		rel, aerr := s.cfg.QoS.Acquire(context.Background(), sc.tenant, qos.OpWrite, req.Total)
		if aerr != nil {
			sp.Fail()
			feed.drain()
			if !feed.closed {
				sc.sendOverload(sid, aerr)
			}
			return
		}
		defer rel()
	}
	var proj *redist.Projection
	if req.Fingerprint != 0 {
		var ok bool
		if proj, ok = s.projection(req.Fingerprint); !ok {
			fail(ErrCodeUnknownProjection, fmt.Sprintf("projection %#x not registered", req.Fingerprint))
			return
		}
		if want := proj.BytesIn(req.Lo, req.Hi); req.Total != 0 && want != req.Total {
			fail(ErrCodeBadRequest, fmt.Sprintf("projection selects %d bytes in [%d,%d], stream announces %d",
				want, req.Lo, req.Hi, req.Total))
			return
		}
	} else if req.Total != 0 && req.Total != req.Hi-req.Lo+1 {
		fail(ErrCodeBadRequest, fmt.Sprintf("contiguous write of %d bytes into window [%d,%d]", req.Total, req.Lo, req.Hi))
		return
	}
	sf, store, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		fail(code, msg)
		return
	}
	sf.mu.Lock()
	code, msg = sf.epochCheck(req.Epoch, true)
	var err error
	if code == 0 {
		err = store.EnsureLen(req.Hi + 1)
	}
	sf.mu.Unlock()
	if code != 0 {
		fail(code, msg)
		return
	}
	if err != nil {
		fail(ErrCodeIO, err.Error())
		return
	}

	// The scatter: consume the feed through the projection's segments
	// (or contiguously at Lo). The file lock is taken lazily and held
	// across everything already buffered, but released whenever the
	// feed is about to wait on the network (see chunkFeed.onWait) —
	// amortized locking without wedging sibling streams.
	locked := false
	var lockNs int64
	lock := func() {
		if !locked {
			if sp != nil {
				t0 := time.Now()
				sf.mu.Lock()
				lockNs += time.Since(t0).Nanoseconds()
			} else {
				sf.mu.Lock()
			}
			locked = true
		}
	}
	unlock := func() {
		if locked {
			sf.mu.Unlock()
			locked = false
		}
	}
	defer unlock()
	feed.onWait = unlock
	writeAt := func(b []byte, off int64) error {
		lock()
		return store.WriteAt(b, off)
	}
	ssp := sp.StartChild("scatter")
	var werr error
	if proj == nil {
		pos := req.Lo
		for {
			b := feed.take(1 << 62)
			if b == nil {
				break
			}
			if pos+int64(len(b)) > req.Hi+1 {
				werr = fmt.Errorf("stream overflows window [%d,%d]", req.Lo, req.Hi)
				break
			}
			if werr = writeAt(b, pos); werr != nil {
				break
			}
			pos += int64(len(b))
		}
	} else {
		proj.WalkRange(req.Lo, req.Hi, func(seg falls.LineSegment) bool {
			off := seg.L
			left := seg.Len()
			for left > 0 {
				b := feed.take(left)
				if b == nil {
					werr = fmt.Errorf("stream ended %d bytes into segment", seg.Len()-left)
					return false
				}
				if werr = writeAt(b, off); werr != nil {
					return false
				}
				off += int64(len(b))
				left -= int64(len(b))
			}
			return true
		})
	}
	feed.drain()
	// The accumulated waits surface as pre-measured children: lock
	// contention and stream-window stalls both live inside the scatter.
	ssp.AddInterval("lock_wait", start, time.Duration(lockNs))
	ssp.AddInterval("stream_stall", start, time.Duration(feed.waitNs))
	ssp.End()
	switch {
	case feed.aborted || feed.closed:
		// Abandoned by the client (or the connection died): no reply.
		sp.Fail()
		return
	case werr != nil:
		sp.Fail()
		sc.sendErr(sid, ErrCodeIO, werr.Error())
		return
	case feed.received != req.Total:
		sp.Fail()
		sc.sendErr(sid, ErrCodeBadRequest,
			fmt.Sprintf("stream carried %d bytes, announced %d", feed.received, req.Total))
		return
	}
	out := AppendOK(getFrameBuf(16))
	sc.sendResp(sid, out)
	putFrameBuf(out)
}

// streamPiece is one gathered chunk traveling producer -> sender.
type streamPiece struct {
	data []byte
	last bool
}

// runReadStream executes one chunked gather: validation mirroring
// handleReadSegs (minus the single-frame size cap — chunking is how a
// read escapes it), then a producer/sender pipeline.
func (sc *srvConn) runReadStream(sid uint64, req *ReadStreamReq) {
	defer sc.wg.Done()
	s := sc.s
	start := time.Now()
	s.met.inflight.Add(1)
	defer func() {
		s.met.inflight.Add(-1)
		s.met.requestNs.Observe(time.Since(start).Nanoseconds())
		s.met.poolDiscards.Set(FramePoolDiscards())
	}()
	s.met.requests[MsgReadStream].Inc()
	s.met.streamsR.Inc()

	sp := s.startSpan("read_stream", req.TraceID, req.SpanID)
	s.cfg.Tracer.Adopt(sp)
	defer func() {
		if sp != nil {
			s.cfg.Tracer.FinishOp(sp)
			s.stash.Put(req.TraceID, sp.Records(nil))
		}
	}()
	fail := func(code uint64, msg string) {
		sp.Fail()
		sc.sendErr(sid, code, msg)
	}

	if s.draining.Load() {
		fail(ErrCodeShuttingDown, "server draining")
		return
	}
	// Validate before admission, so a malformed request is refused
	// without charging the tenant's quota.
	if req.N < 0 || req.Hi < req.Lo-1 || req.Lo < 0 {
		fail(ErrCodeBadRequest,
			fmt.Sprintf("bad read window [%d,%d] of %d bytes", req.Lo, req.Hi, req.N))
		return
	}
	// Admission charges the declared response size, mirroring the
	// unary read path.
	if s.cfg.QoS != nil {
		rel, aerr := s.cfg.QoS.Acquire(context.Background(), sc.tenant, qos.OpRead, req.N)
		if aerr != nil {
			sp.Fail()
			sc.sendOverload(sid, aerr)
			return
		}
		defer rel()
	}
	var proj *redist.Projection
	if req.Fingerprint != 0 {
		var ok bool
		if proj, ok = s.projection(req.Fingerprint); !ok {
			fail(ErrCodeUnknownProjection,
				fmt.Sprintf("projection %#x not registered", req.Fingerprint))
			return
		}
		if want := proj.BytesIn(req.Lo, req.Hi); want != req.N {
			fail(ErrCodeBadRequest,
				fmt.Sprintf("projection selects %d bytes in [%d,%d], request asks for %d",
					want, req.Lo, req.Hi, req.N))
			return
		}
	} else if req.N != req.Hi-req.Lo+1 {
		fail(ErrCodeBadRequest,
			fmt.Sprintf("contiguous read of %d bytes from window [%d,%d]", req.N, req.Lo, req.Hi))
		return
	}
	sf, store, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		fail(code, msg)
		return
	}
	// Grow first, like the single-frame read path: unwritten holes read
	// as zeroes, like any sparse file.
	sf.mu.Lock()
	code, msg = sf.epochCheck(req.Epoch, false)
	var err error
	if code == 0 {
		err = store.EnsureLen(req.Hi + 1)
	}
	sf.mu.Unlock()
	if code != 0 {
		fail(code, msg)
		return
	}
	if err != nil {
		fail(ErrCodeIO, err.Error())
		return
	}

	cs := int(req.ChunkSize)
	if cs <= 0 {
		cs = 1 << 20
	}
	if max := int(s.cfg.MaxFrame) - 64; cs > max {
		cs = max
	}

	ch := make(chan streamPiece, streamWindow)
	var dead atomic.Bool
	perrCh := make(chan error, 1)
	sc.wg.Add(1)
	go func() {
		defer sc.wg.Done()
		perrCh <- sc.gatherChunks(req, proj, sf, store, cs, ch, &dead, sp)
		close(ch)
	}()

	var sendNs int64
	sendFailed := false
	for p := range ch {
		if sendFailed {
			putFrameBuf(p.data)
			continue
		}
		flags := byte(0)
		if p.last {
			flags = flagChunkLast
		}
		hdr := appendChunkHdr(getFrameBuf(16), MsgDataChunk, sid, flags)
		var err error
		if sp != nil {
			t0 := time.Now()
			err = sc.send(hdr, p.data)
			sendNs += time.Since(t0).Nanoseconds()
		} else {
			err = sc.send(hdr, p.data)
		}
		putFrameBuf(hdr)
		putFrameBuf(p.data)
		if err != nil {
			dead.Store(true)
			sendFailed = true
			continue
		}
		s.met.chunksSent.Inc()
	}
	// Time spent pushing chunks down the connection: wire transmission
	// plus the stall when the client's window is full.
	sp.AddInterval("send", start, time.Duration(sendNs))
	perr := <-perrCh
	if sendFailed {
		sp.Fail()
	}
	if perr != nil && perr != errSenderDead && !sendFailed {
		// Mid-stream store failure: the error frame terminates the
		// stream, whether or not data chunks already traveled.
		fail(ErrCodeIO, perr.Error())
	}
}

// gatherChunks is the read-stream producer: it walks the requested
// range (projected or contiguous), gathering store bytes into
// chunk-sized pooled buffers, and hands each completed chunk to the
// sender. The final chunk is flagged last (and may be empty for N=0).
func (sc *srvConn) gatherChunks(req *ReadStreamReq, proj *redist.Projection, sf *serverFile,
	store clusterfile.Storage, cs int, ch chan<- streamPiece, dead *atomic.Bool, sp *obs.Span) error {
	// The file lock is held across each chunk's worth of store reads
	// and dropped before handing the chunk to the sender (a potential
	// wait on the network), mirroring the write-side scatter.
	gsp := sp.StartChild("gather")
	gstart := time.Now()
	locked := false
	var lockNs, stallNs int64
	lock := func() {
		if !locked {
			if sp != nil {
				t0 := time.Now()
				sf.mu.Lock()
				lockNs += time.Since(t0).Nanoseconds()
			} else {
				sf.mu.Lock()
			}
			locked = true
		}
	}
	unlock := func() {
		if locked {
			sf.mu.Unlock()
			locked = false
		}
	}
	defer unlock()
	defer func() {
		gsp.AddInterval("lock_wait", gstart, time.Duration(lockNs))
		gsp.AddInterval("stream_stall", gstart, time.Duration(stallNs))
		gsp.End()
	}()
	buf := getFrameBuf(cs)[:0]
	emit := func(last bool) bool {
		unlock()
		if dead.Load() {
			putFrameBuf(buf)
			buf = nil
			return false
		}
		if sp != nil {
			// The hand-off blocks when the sender's window is full:
			// the read-side stream stall.
			t0 := time.Now()
			ch <- streamPiece{data: buf, last: last}
			stallNs += time.Since(t0).Nanoseconds()
		} else {
			ch <- streamPiece{data: buf, last: last}
		}
		buf = nil
		if !last {
			buf = getFrameBuf(cs)[:0]
		}
		return true
	}
	// read appends [off, off+n) of the store to the chunk in progress,
	// emitting chunks as they fill.
	read := func(off, n int64) error {
		for n > 0 {
			space := int64(cs - len(buf))
			if space == 0 {
				if !emit(false) {
					return errSenderDead
				}
				space = int64(cs)
			}
			m := n
			if m > space {
				m = space
			}
			k := len(buf)
			buf = buf[:k+int(m)]
			lock()
			err := store.ReadAt(buf[k:k+int(m)], off)
			if err != nil {
				return err
			}
			off += m
			n -= m
		}
		return nil
	}
	var err error
	if proj == nil {
		err = read(req.Lo, req.N)
	} else {
		proj.WalkRange(req.Lo, req.Hi, func(seg falls.LineSegment) bool {
			err = read(seg.L, seg.Len())
			return err == nil
		})
	}
	if err != nil {
		putFrameBuf(buf)
		return err
	}
	if !emit(true) {
		return errSenderDead
	}
	return nil
}

// Package rpc is the real-network transport of the Clusterfile
// reproduction: a length-prefixed binary wire protocol carrying the
// §8.1 storage operations — view-driven scatter (WriteSegments) and
// gather (ReadSegments) plus CreateFile/SetView/Stat/Close — between
// compute-node clients and parafiled I/O-node daemons over TCP.
//
// Projections are content-addressed: SetView registers an encoded
// redist projection under its fingerprint once, and every subsequent
// WriteSegments/ReadSegments names it by fingerprint only, mirroring
// the paper's amortization argument (PROJ_S travels at view-set time,
// not per access). The encoding reuses the internal/codec varint
// primitives, so the structures on the wire are the same ones the
// in-process path computes.
//
// The client (client.go) keeps a per-node connection pool with write
// and read deadlines and bounded exponential-backoff retry; every
// request is idempotent (writes place the same bytes at the same
// offsets), which is what makes blind retry after a connection drop
// safe. The server (server.go) hosts one or more subfile Storage
// backends per I/O node and drains gracefully on shutdown.
// transport.go adapts a set of daemons to clusterfile.Transport.
package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/codec"
	"parafile/internal/obs"
	"parafile/internal/qos"
)

// ProtoVersion tags every frame; a daemon refuses frames from a newer
// protocol generation instead of misparsing them. Version 1 is the
// original bare framing; version 2 appends a CRC32C trailer to every
// frame (outside the length prefix), so wire corruption surfaces as a
// typed ErrCorruptFrame instead of a decode failure deep in a payload.
// The version is negotiated per connection: the client sends a
// v1-framed MsgHello at dial time, and a v1-only daemon answering with
// MsgError downgrades the connection instead of breaking it.
const ProtoVersion = 1

// ProtoVersion2 adds per-frame CRC32C trailers.
const ProtoVersion2 = 2

// ProtoVersion3 multiplexes: every frame body carries a varint stream
// id after the type byte, concurrent operations share one connection
// per node (a reader goroutine demultiplexes responses onto per-stream
// channels), and large transfers travel as chunked streams
// (MsgWriteStream/MsgReadStream + chunk frames) so network transmission
// overlaps with the store-side scatter/gather instead of materializing
// whole-operation frames. v3 frames keep the v2 CRC32C trailer.
const ProtoVersion3 = 3

// MaxProtoVersion is the newest generation this build speaks.
const MaxProtoVersion = ProtoVersion3

// DefaultMaxFrame bounds a frame body (type byte + payload). Large
// enough for any demo/benchmark payload, small enough to stop a
// corrupt length prefix from allocating the machine away.
const DefaultMaxFrame = 64 << 20

// Request message types.
const (
	MsgCreateFile byte = 0x01
	MsgSetView    byte = 0x02
	MsgWriteSegs  byte = 0x03
	MsgReadSegs   byte = 0x04
	MsgStat       byte = 0x05
	MsgClose      byte = 0x06
	// MsgPing is the lightweight liveness probe the circuit breaker
	// uses in half-open state; it touches no file state.
	MsgPing byte = 0x07
	// MsgHello negotiates the connection's protocol version: the
	// client names the newest generation it speaks, the server answers
	// with min(client, server). Always sent v1-framed so a v1-only
	// daemon parses it (and rejects it with MsgError, which the client
	// treats as "speak v1").
	MsgHello byte = 0x08
	// MsgChecksum asks for the CRC32C of a subfile byte range; bytes
	// beyond the current length count as zeroes. Scrub compares
	// replicas with it without shipping the data.
	MsgChecksum byte = 0x09
	// MsgWriteStream opens a chunked scatter (proto v3 only): same
	// addressing as MsgWriteSegs but the data follows as MsgWriteChunk
	// frames on the same stream id, so the server scatters while later
	// chunks are still in flight. The server answers once, after the
	// last chunk.
	MsgWriteStream byte = 0x0A
	// MsgWriteChunk carries one slice of a write stream's data:
	// [flags byte][bytes]. flagChunkLast marks the final slice,
	// flagChunkAbort cancels the stream without a server reply.
	MsgWriteChunk byte = 0x0B
	// MsgReadStream opens a chunked gather (proto v3 only): same
	// addressing as MsgReadSegs plus the chunk size the client wants;
	// the server answers with MsgDataChunk frames.
	MsgReadStream byte = 0x0C
	// MsgTraced is the tracing envelope: [uvarint trace id][uvarint
	// parent span id][inner type][inner payload]. The server runs the
	// inner request under a span adopted into the caller's trace and
	// answers with MsgTracedResp carrying the completed span records
	// piggybacked ahead of the inner response. Sent only after the
	// peer advertised FeatureTrace in the hello exchange.
	MsgTraced byte = 0x0D
	// MsgSpans drains the span records a streamed operation left
	// behind: [uvarint trace id] → MsgSpansResp. Streamed transfers
	// carry their trace IDs in the stream-open request instead of an
	// envelope, and their replies stay lean; the client collects the
	// server-side spans with one drain call after the stream settles.
	MsgSpans byte = 0x0E
	// MsgEpoch is the placement-epoch admin request a rebalance driver
	// sends to a data daemon: it stamps (ratchets) the placement epoch
	// of every store of a file and raises or clears the write fence.
	// Idempotent; a daemon that hosts no store of the file answers OK.
	MsgEpoch byte = 0x0F
)

// Metadata-service request types (handled by parafilemd, not by the
// data daemons; they share the framing, hello negotiation and error
// encoding with the storage protocol).
const (
	MsgMetaCreate byte = 0x20
	MsgMetaOpen   byte = 0x21
	MsgMetaList   byte = 0x22
	MsgMetaRemove byte = 0x23
	// MsgMetaCommit is the compare-and-swap placement flip: it names
	// the epoch the caller rebalanced from and fails with
	// ErrCodeStalePlacement if the file has moved on since.
	MsgMetaCommit byte = 0x24
	// MsgMetaExtend ratchets a file's logical length upward after a
	// write; the recorded length sizes later rebalances.
	MsgMetaExtend byte = 0x25
	MsgMetaNodes  byte = 0x26
	// MsgMetaNode registers a node or updates its membership state.
	MsgMetaNode byte = 0x27
	// MsgMetaVote is the replication group's leader-election ballot: a
	// candidate names its term and log tail, a peer grants or denies.
	MsgMetaVote byte = 0x28
	// MsgMetaAppend ships namespace log records from the leader to a
	// follower (and doubles as the lease heartbeat when it carries no
	// records). The follower checks the leader's previous-entry tail
	// against its own and nacks on divergence.
	MsgMetaAppend byte = 0x29
	// MsgMetaSnapInstall transfers a full serialized namespace state to
	// a follower whose log diverged or fell behind; the follower installs
	// it atomically (temp + fsync + rename) and truncates its log.
	MsgMetaSnapInstall byte = 0x2A
	// MsgMetaStatus asks a metadata node for its replication status:
	// term, role, known leader, log tail, lease remainder.
	MsgMetaStatus byte = 0x2B
)

// Metadata-service response types.
const (
	MsgMetaFileResp  byte = 0x30
	MsgMetaListResp  byte = 0x31
	MsgMetaNodesResp byte = 0x32
	// MsgMetaVoteResp answers MsgMetaVote with the voter's term and the
	// grant/deny verdict.
	MsgMetaVoteResp byte = 0x33
	// MsgMetaAppendResp acks (or nacks, with the follower's tail) a
	// MsgMetaAppend batch.
	MsgMetaAppendResp byte = 0x34
	// MsgMetaStatusResp answers MsgMetaStatus.
	MsgMetaStatusResp byte = 0x35
)

// Response message types.
const (
	MsgOK           byte = 0x10
	MsgData         byte = 0x11
	MsgStatResp     byte = 0x12
	MsgHelloResp    byte = 0x13
	MsgChecksumResp byte = 0x14
	// MsgDataChunk carries one slice of a read stream's gathered bytes:
	// [flags byte][bytes]. flagChunkLast marks the final slice.
	MsgDataChunk byte = 0x15
	// MsgTracedResp answers MsgTraced: [span records][inner type]
	// [inner payload].
	MsgTracedResp byte = 0x16
	// MsgSpansResp answers MsgSpans: [span records].
	MsgSpansResp byte = 0x17
	MsgError     byte = 0x1F
)

// Feature bits exchanged in the hello negotiation (a uvarint bitmask
// trailing the version; absent means zero, so pre-feature daemons and
// clients interoperate unchanged).
const (
	// FeatureTrace: the peer accepts MsgTraced envelopes, trace IDs on
	// stream-open requests, and MsgSpans drains.
	FeatureTrace uint64 = 1 << 0
	// FeaturePlacement: the peer accepts placement-epoch fields on
	// data-path requests, checks them against each store's current
	// epoch, and understands MsgEpoch. Clients only stamp epochs on
	// connections where this bit came back granted, so the wire stays
	// byte-identical against old daemons.
	FeaturePlacement uint64 = 1 << 1
	// FeatureTenant: the hello request carries a tenant name (a string
	// trailing the feature mask) keying the daemon's fair-share
	// admission scheduler. Granted means the daemon recorded it;
	// legacy daemons reject the unknown trailing field, which the
	// dialer handles by retrying the hello without it. Clients without
	// a tenant never set the bit, so their hello stays byte-identical.
	FeatureTenant uint64 = 1 << 2
)

// Chunk frame flags (first payload byte of MsgWriteChunk/MsgDataChunk).
const (
	// flagChunkLast marks the final chunk of a stream.
	flagChunkLast byte = 1 << 0
	// flagChunkAbort cancels the stream: the sender gave up mid-transfer
	// (context cancellation, local error) and the receiver must tear the
	// stream down without waiting for more chunks.
	flagChunkAbort byte = 1 << 1
)

// MsgName returns the metrics label of a message type.
func MsgName(t byte) string {
	switch t {
	case MsgCreateFile:
		return "create_file"
	case MsgSetView:
		return "set_view"
	case MsgWriteSegs:
		return "write_segments"
	case MsgReadSegs:
		return "read_segments"
	case MsgStat:
		return "stat"
	case MsgClose:
		return "close"
	case MsgPing:
		return "ping"
	case MsgHello:
		return "hello"
	case MsgChecksum:
		return "checksum"
	case MsgWriteStream:
		return "write_stream"
	case MsgWriteChunk:
		return "write_chunk"
	case MsgReadStream:
		return "read_stream"
	case MsgDataChunk:
		return "data_chunk"
	case MsgTraced:
		return "traced"
	case MsgSpans:
		return "spans"
	case MsgEpoch:
		return "epoch"
	case MsgMetaCreate:
		return "meta_create"
	case MsgMetaOpen:
		return "meta_open"
	case MsgMetaList:
		return "meta_list"
	case MsgMetaRemove:
		return "meta_remove"
	case MsgMetaCommit:
		return "meta_commit"
	case MsgMetaExtend:
		return "meta_extend"
	case MsgMetaNodes:
		return "meta_nodes"
	case MsgMetaNode:
		return "meta_node"
	case MsgMetaVote:
		return "meta_vote"
	case MsgMetaAppend:
		return "meta_append"
	case MsgMetaSnapInstall:
		return "meta_snap_install"
	case MsgMetaStatus:
		return "meta_status"
	case MsgMetaVoteResp:
		return "meta_vote_resp"
	case MsgMetaAppendResp:
		return "meta_append_resp"
	case MsgMetaStatusResp:
		return "meta_status_resp"
	case MsgMetaFileResp:
		return "meta_file_resp"
	case MsgMetaListResp:
		return "meta_list_resp"
	case MsgMetaNodesResp:
		return "meta_nodes_resp"
	case MsgTracedResp:
		return "traced_resp"
	case MsgSpansResp:
		return "spans_resp"
	case MsgOK:
		return "ok"
	case MsgData:
		return "data"
	case MsgStatResp:
		return "stat_resp"
	case MsgHelloResp:
		return "hello_resp"
	case MsgChecksumResp:
		return "checksum_resp"
	case MsgError:
		return "error"
	}
	return "unknown"
}

// Remote error codes carried by MsgError.
const (
	ErrCodeBadRequest        uint64 = 1
	ErrCodeUnknownFile       uint64 = 2
	ErrCodeUnknownProjection uint64 = 3
	ErrCodeIO                uint64 = 4
	ErrCodeShuttingDown      uint64 = 5
	// ErrCodeStalePlacement: the request named a placement epoch the
	// store has moved past (or the store is fenced for a rebalance).
	// The caller should refetch the placement map from the metadata
	// service and retry against the new epoch.
	ErrCodeStalePlacement uint64 = 6
	// ErrCodeOverloaded: the daemon's admission controller refused the
	// request (quota, queue overflow, or shed under pressure). The
	// request was never executed, so any request type is safe to retry
	// — after the RetryAfter hint carried beside the code. Overload is
	// an answer, not a transport failure: it must never advance the
	// circuit breaker.
	ErrCodeOverloaded uint64 = 7
	// ErrCodeNotLeader: the metadata node answering is not the group's
	// leader (or its lease lapsed mid-election). The request was not
	// executed; the caller should redirect to RemoteError.Leader when
	// the hint is present, otherwise probe the other endpoints, with
	// jittered retry through the election window.
	ErrCodeNotLeader uint64 = 8
)

// ErrStalePlacement is the sentinel callers match with errors.Is to
// detect an ErrCodeStalePlacement RemoteError anywhere in a wrapped
// chain (including inside a clusterfile.PartialError).
var ErrStalePlacement = fmt.Errorf("rpc: stale placement epoch")

// ErrUnknownFile is the sentinel for an ErrCodeUnknownFile
// RemoteError — the named file does not exist on the answering
// service (metadata namespace miss, or a store the daemon never saw).
var ErrUnknownFile = fmt.Errorf("rpc: unknown file")

// ErrNotLeader is the sentinel for an ErrCodeNotLeader RemoteError —
// the metadata node is not the leaseholder. Match with errors.As on
// *RemoteError to read the Leader redirect hint.
var ErrNotLeader = fmt.Errorf("rpc: not the metadata leader")

// RemoteError is a server-reported failure: the request was delivered
// and answered, so the client does not retry it at the transport
// layer. The one exception is ErrCodeOverloaded — backpressure, which
// the client retries after RetryAfter without charging the breaker.
type RemoteError struct {
	Code uint64
	Msg  string
	// RetryAfter is the server's backoff hint on ErrCodeOverloaded
	// responses (zero otherwise, and absent from the wire when zero).
	RetryAfter time.Duration
	// Leader is the redirect hint on ErrCodeNotLeader responses: the
	// address of the node the answering follower believes holds the
	// lease (empty when unknown, e.g. mid-election).
	Leader string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error %d: %s", e.Code, e.Msg)
}

// Is lets errors.Is match the code sentinels through any wrapping
// (PartialError outcomes, fmt %w chains).
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrStalePlacement:
		return e.Code == ErrCodeStalePlacement
	case ErrUnknownFile:
		return e.Code == ErrCodeUnknownFile
	case qos.ErrOverloaded:
		return e.Code == ErrCodeOverloaded
	case ErrNotLeader:
		return e.Code == ErrCodeNotLeader
	}
	return false
}

// ErrCorrupt wraps every wire-decoding failure.
var ErrCorrupt = fmt.Errorf("rpc: corrupt frame")

// ErrCorruptFrame marks a v2 frame whose CRC32C trailer did not match
// its body: the frame was damaged in flight, not malformed by a peer.
// The client treats it like a connection-level failure — drop the
// connection and retry the idempotent request — instead of surfacing a
// decode error.
var ErrCorruptFrame = fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)

// frameCastagnoli is the CRC32C table of the v2 frame trailer.
var frameCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// FrameChecksum is the CRC32C a v2 frame's trailer carries for body.
func FrameChecksum(body []byte) uint32 {
	return crc32.Checksum(body, frameCastagnoli)
}

// Fingerprint content-addresses an encoded projection (FNV-1a 64).
// Zero is reserved to mean "no projection / contiguous", so a real
// hash of zero is nudged to one.
func Fingerprint(encoded []byte) uint64 {
	h := fnv.New64a()
	h.Write(encoded)
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	return fp
}

// frameBufPool recycles frame encode/decode buffers across requests on
// both sides of the wire.
var frameBufPool sync.Pool

// maxPooledFrame caps frame-pool retention: buffers above this size are
// dropped on release instead of returned to the pool, so one oversized
// monolithic op cannot pin tens of megabytes for the life of the
// process. Streamed chunks sit well below the cap, which is the point —
// the steady-state pool holds chunk-sized buffers only.
const maxPooledFrame = 8 << 20

// framePoolDiscards counts buffers dropped by the retention cap.
var framePoolDiscards atomic.Int64

// FramePoolDiscards reports how many frame buffers were discarded
// rather than pooled because they exceeded the retention cap.
func FramePoolDiscards() int64 { return framePoolDiscards.Load() }

// getFrameBuf returns a zero-length buffer with at least n capacity.
func getFrameBuf(n int) []byte {
	if v := frameBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

// putFrameBuf returns a buffer to the pool; the caller must not retain
// the slice afterwards. Buffers above maxPooledFrame are dropped (and
// counted) instead of pooled.
func putFrameBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	if cap(b) > maxPooledFrame {
		framePoolDiscards.Add(1)
		return
	}
	b = b[:0]
	frameBufPool.Put(&b)
}

// WriteFrame writes one frame: a 4-byte big-endian body length, then
// the body (version byte, type byte, payload). Frames whose version
// byte is 2 or newer additionally carry a 4-byte big-endian CRC32C
// trailer of the body; the trailer travels outside the length prefix,
// so a v1 length parser reading a v2 stream desynchronizes loudly
// instead of silently truncating payloads.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	if len(body) > 0 && body[0] >= ProtoVersion2 {
		var sum [4]byte
		binary.BigEndian.PutUint32(sum[:], FrameChecksum(body))
		if _, err := w.Write(sum[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFrameV stamps the frame body with the connection's negotiated
// protocol version, then writes it. Message encoders stamp version 1
// by default (beginFrame), so this is how a v2 connection upgrades its
// outgoing frames.
func WriteFrameV(w io.Writer, body []byte, ver byte) error {
	if len(body) > 0 && ver >= ProtoVersion {
		body[0] = ver
	}
	return WriteFrame(w, body)
}

// WriteFrameVec writes one frame whose body is the concatenation of
// parts, without assembling them into a single buffer: the 4-byte
// length prefix, every part, and (for v2+ versions) the CRC32C trailer
// travel as one vectored write (writev on a *net.TCPConn via
// net.Buffers, sequential writes elsewhere). The first part must start
// with the version byte, which is restamped to ver; the checksum is
// computed incrementally across parts, so a large data part is never
// copied into a frame buffer just to be framed.
func WriteFrameVec(w io.Writer, ver byte, parts ...[]byte) error {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 || len(parts[0]) == 0 {
		return fmt.Errorf("rpc: vectored frame with empty leading part")
	}
	parts[0][0] = ver
	bufs := make(net.Buffers, 0, len(parts)+2)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	bufs = append(bufs, hdr[:])
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	var sum [4]byte
	if ver >= ProtoVersion2 {
		crc := uint32(0)
		for _, p := range parts {
			crc = crc32.Update(crc, frameCastagnoli, p)
		}
		binary.BigEndian.PutUint32(sum[:], crc)
		bufs = append(bufs, sum[:])
	}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame reads one frame body into a pooled buffer, verifying the
// CRC32C trailer of v2 frames (a mismatch is ErrCorruptFrame). Callers
// pass the body to putFrameBuf (or ReleaseFrame) when done with it.
func ReadFrame(r io.Reader, maxFrame int64) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int64(binary.BigEndian.Uint32(hdr[:]))
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if n < 2 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d outside [2,%d]", ErrCorrupt, n, maxFrame)
	}
	body := getFrameBuf(int(n))[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		putFrameBuf(body)
		return nil, err
	}
	if body[0] >= ProtoVersion2 {
		var sum [4]byte
		if _, err := io.ReadFull(r, sum[:]); err != nil {
			putFrameBuf(body)
			return nil, err
		}
		if binary.BigEndian.Uint32(sum[:]) != FrameChecksum(body) {
			putFrameBuf(body)
			return nil, ErrCorruptFrame
		}
	}
	return body, nil
}

// ReleaseFrame returns a frame body obtained from ReadFrame to the
// buffer pool.
func ReleaseFrame(body []byte) { putFrameBuf(body) }

// ParseFrame splits a frame body into message type and payload,
// checking the protocol version.
func ParseFrame(body []byte) (msgType byte, payload []byte, err error) {
	if len(body) < 2 {
		return 0, nil, fmt.Errorf("%w: %d-byte body", ErrCorrupt, len(body))
	}
	if body[0] < ProtoVersion || body[0] > MaxProtoVersion {
		return 0, nil, fmt.Errorf("%w: protocol version %d, want %d-%d", ErrCorrupt, body[0], ProtoVersion, MaxProtoVersion)
	}
	return body[1], body[2:], nil
}

// beginFrame starts a frame body of the given type in buf.
func beginFrame(buf []byte, msgType byte) []byte {
	return append(buf, ProtoVersion, msgType)
}

func appendString(buf []byte, s string) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readString(buf []byte) (string, []byte, error) {
	b, rest, err := readBytes(buf)
	return string(b), rest, err
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := codec.ReadUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: %d-byte field overruns %d-byte buffer", ErrCorrupt, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, rest, err := codec.ReadUvarint(buf)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, rest, nil
}

func readVarint(buf []byte) (int64, []byte, error) {
	v, rest, err := codec.ReadVarint(buf)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, rest, nil
}

func wantEmpty(buf []byte) error {
	if len(buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return nil
}

// CreateFileReq registers a file on an I/O node and opens the stores
// of the subfiles that node hosts.
type CreateFileReq struct {
	Name     string
	Phys     []byte // codec.EncodeFile of the physical partition
	Subfiles []int  // subfile indices hosted by the receiving node
	Reopen   bool   // open existing subfiles without truncation
	// Epoch stamps the opened stores with a placement epoch. Zero (the
	// default) encodes byte-identically to the pre-placement request
	// and leaves the stores unversioned. Only sent to peers that
	// granted FeaturePlacement.
	Epoch uint64
}

// AppendCreateFile encodes req as a frame body.
func AppendCreateFile(buf []byte, req *CreateFileReq) []byte {
	buf = beginFrame(buf, MsgCreateFile)
	buf = appendString(buf, req.Name)
	buf = appendBytes(buf, req.Phys)
	buf = codec.AppendUvarint(buf, uint64(len(req.Subfiles)))
	for _, s := range req.Subfiles {
		buf = codec.AppendUvarint(buf, uint64(s))
	}
	if req.Reopen {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.Epoch)
	}
	return buf
}

// DecodeCreateFile decodes a MsgCreateFile payload.
func DecodeCreateFile(payload []byte) (*CreateFileReq, error) {
	req := &CreateFileReq{}
	var err error
	if req.Name, payload, err = readString(payload); err != nil {
		return nil, err
	}
	var phys []byte
	if phys, payload, err = readBytes(payload); err != nil {
		return nil, err
	}
	req.Phys = append([]byte(nil), phys...)
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: implausible subfile count %d", ErrCorrupt, n)
	}
	req.Subfiles = make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		var s uint64
		if s, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		req.Subfiles = append(req.Subfiles, int(s))
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: missing reopen flag", ErrCorrupt)
	}
	req.Reopen = payload[0] != 0
	payload = payload[1:]
	if len(payload) > 0 {
		if req.Epoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// SetViewReq registers an encoded projection under its fingerprint.
// Projections are content-addressed and file-independent, so one
// registration serves every file and subfile that uses the shape.
type SetViewReq struct {
	Fingerprint uint64
	Proj        []byte // redist.EncodeProjection
}

// AppendSetView encodes req as a frame body.
func AppendSetView(buf []byte, req *SetViewReq) []byte {
	buf = beginFrame(buf, MsgSetView)
	buf = codec.AppendUvarint(buf, req.Fingerprint)
	buf = appendBytes(buf, req.Proj)
	return buf
}

// DecodeSetView decodes a MsgSetView payload.
func DecodeSetView(payload []byte) (*SetViewReq, error) {
	req := &SetViewReq{}
	var err error
	if req.Fingerprint, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	var proj []byte
	if proj, payload, err = readBytes(payload); err != nil {
		return nil, err
	}
	req.Proj = append([]byte(nil), proj...)
	return req, wantEmpty(payload)
}

// WriteSegsReq is the scatter request. The server grows the subfile to
// Hi+1 bytes, then: with a zero fingerprint writes Data contiguously
// at Lo; otherwise scatters Data into the regions the registered
// projection selects within [Lo, Hi]. Empty Data makes it a pure
// EnsureLen.
type WriteSegsReq struct {
	File        string
	Subfile     int64
	Fingerprint uint64
	Lo, Hi      int64
	Data        []byte
	// Epoch is the placement epoch the client believes current; the
	// server rejects a mismatch with ErrCodeStalePlacement. Zero (the
	// default) encodes byte-identically to the pre-placement request
	// and skips the check.
	Epoch uint64
}

// AppendWriteSegs encodes req as a frame body.
func AppendWriteSegs(buf []byte, req *WriteSegsReq) []byte {
	buf = beginFrame(buf, MsgWriteSegs)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	buf = codec.AppendUvarint(buf, req.Fingerprint)
	buf = codec.AppendVarint(buf, req.Lo)
	buf = codec.AppendVarint(buf, req.Hi)
	buf = appendBytes(buf, req.Data)
	if req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.Epoch)
	}
	return buf
}

// DecodeWriteSegs decodes a MsgWriteSegs payload. Data aliases the
// frame buffer; the server copies it into storage before releasing the
// frame.
func DecodeWriteSegs(payload []byte) (*WriteSegsReq, error) {
	req := &WriteSegsReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Fingerprint, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Lo, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Hi, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Data, payload, err = readBytes(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if req.Epoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// ReadSegsReq is the gather request: with a zero fingerprint the
// server reads N contiguous bytes at Lo; otherwise it gathers the
// regions the registered projection selects within [Lo, Hi] (N bytes
// in total, validated server-side).
type ReadSegsReq struct {
	File        string
	Subfile     int64
	Fingerprint uint64
	Lo, Hi      int64
	N           int64
	// Epoch as on WriteSegsReq: zero encodes the legacy bytes.
	Epoch uint64
}

// AppendReadSegs encodes req as a frame body.
func AppendReadSegs(buf []byte, req *ReadSegsReq) []byte {
	buf = beginFrame(buf, MsgReadSegs)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	buf = codec.AppendUvarint(buf, req.Fingerprint)
	buf = codec.AppendVarint(buf, req.Lo)
	buf = codec.AppendVarint(buf, req.Hi)
	buf = codec.AppendVarint(buf, req.N)
	if req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.Epoch)
	}
	return buf
}

// DecodeReadSegs decodes a MsgReadSegs payload.
func DecodeReadSegs(payload []byte) (*ReadSegsReq, error) {
	req := &ReadSegsReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Fingerprint, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Lo, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Hi, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.N, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if req.Epoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// StatReq asks for a subfile's current length.
type StatReq struct {
	File    string
	Subfile int64
}

// AppendStat encodes req as a frame body.
func AppendStat(buf []byte, req *StatReq) []byte {
	buf = beginFrame(buf, MsgStat)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	return buf
}

// DecodeStat decodes a MsgStat payload.
func DecodeStat(payload []byte) (*StatReq, error) {
	req := &StatReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	return req, wantEmpty(payload)
}

// CloseReq syncs and closes every store of the file on the receiving
// node. Closing an unknown file succeeds (idempotent, retry-safe).
// With Remove set, the node also deletes the stores' backing data —
// the rebalance driver's garbage collection of superseded name@epoch
// stores. Remove travels as an optional trailing flag byte, only when
// set, so the legacy encoding is untouched.
type CloseReq struct {
	File   string
	Remove bool
}

// AppendClose encodes req as a frame body.
func AppendClose(buf []byte, req *CloseReq) []byte {
	buf = beginFrame(buf, MsgClose)
	buf = appendString(buf, req.File)
	if req.Remove {
		buf = append(buf, 1)
	}
	return buf
}

// DecodeClose decodes a MsgClose payload.
func DecodeClose(payload []byte) (*CloseReq, error) {
	req := &CloseReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		req.Remove = payload[0] != 0
		payload = payload[1:]
	}
	return req, wantEmpty(payload)
}

// AppendPing encodes the empty liveness probe.
func AppendPing(buf []byte) []byte { return beginFrame(buf, MsgPing) }

// AppendOK encodes the empty success response.
func AppendOK(buf []byte) []byte { return beginFrame(buf, MsgOK) }

// AppendData encodes a payload-carrying success response.
func AppendData(buf, data []byte) []byte {
	buf = beginFrame(buf, MsgData)
	return appendBytes(buf, data)
}

// DecodeData decodes a MsgData payload. The returned bytes alias the
// frame buffer.
func DecodeData(payload []byte) ([]byte, error) {
	b, payload, err := readBytes(payload)
	if err != nil {
		return nil, err
	}
	return b, wantEmpty(payload)
}

// AppendStatResp encodes a Stat response.
func AppendStatResp(buf []byte, length int64) []byte {
	buf = beginFrame(buf, MsgStatResp)
	return codec.AppendVarint(buf, length)
}

// DecodeStatResp decodes a MsgStatResp payload.
func DecodeStatResp(payload []byte) (int64, error) {
	n, payload, err := readVarint(payload)
	if err != nil {
		return 0, err
	}
	return n, wantEmpty(payload)
}

// AppendHello encodes the version-negotiation request: the newest
// protocol generation the client speaks.
func AppendHello(buf []byte, want byte) []byte {
	return AppendHelloFeatures(buf, want, 0)
}

// AppendHelloFeatures encodes the negotiation request with a feature
// bitmask. A zero mask appends nothing, keeping the request
// byte-identical to the pre-feature encoding — old daemons reject a
// trailing field they do not know, so a client only grows the frame
// when it actually wants a feature.
func AppendHelloFeatures(buf []byte, want byte, features uint64) []byte {
	return AppendHelloTenant(buf, want, features, "")
}

// AppendHelloTenant encodes the negotiation request with a feature
// bitmask and, when FeatureTenant is set, the tenant name trailing it.
func AppendHelloTenant(buf []byte, want byte, features uint64, tenant string) []byte {
	buf = beginFrame(buf, MsgHello)
	buf = codec.AppendUvarint(buf, uint64(want))
	if features != 0 {
		buf = codec.AppendUvarint(buf, features)
	}
	if features&FeatureTenant != 0 {
		buf = appendString(buf, tenant)
	}
	return buf
}

// DecodeHello decodes a MsgHello payload (features discarded).
func DecodeHello(payload []byte) (byte, error) {
	v, _, err := DecodeHelloFeatures(payload)
	return v, err
}

// DecodeHelloFeatures decodes a MsgHello payload (tenant discarded).
func DecodeHelloFeatures(payload []byte) (byte, uint64, error) {
	v, f, _, err := DecodeHelloTenant(payload)
	return v, f, err
}

// DecodeHelloTenant decodes a MsgHello payload. An absent features
// field decodes as zero, so pre-feature clients parse unchanged; the
// tenant string is present exactly when FeatureTenant is set.
func DecodeHelloTenant(payload []byte) (byte, uint64, string, error) {
	v, payload, err := readUvarint(payload)
	if err != nil {
		return 0, 0, "", err
	}
	if v < 1 || v > 255 {
		return 0, 0, "", fmt.Errorf("%w: implausible protocol version %d", ErrCorrupt, v)
	}
	var features uint64
	if len(payload) > 0 {
		if features, payload, err = readUvarint(payload); err != nil {
			return 0, 0, "", err
		}
	}
	var tenant string
	if features&FeatureTenant != 0 {
		if tenant, payload, err = readString(payload); err != nil {
			return 0, 0, "", err
		}
	}
	return byte(v), features, tenant, wantEmpty(payload)
}

// AppendHelloResp encodes the agreed protocol version.
func AppendHelloResp(buf []byte, ver byte) []byte {
	return AppendHelloRespFeatures(buf, ver, 0)
}

// AppendHelloRespFeatures encodes the agreed version plus the feature
// bits the server both understands and saw requested. As with the
// request, a zero mask appends nothing — a client that did not ask
// for features gets the byte-identical legacy response.
func AppendHelloRespFeatures(buf []byte, ver byte, features uint64) []byte {
	buf = beginFrame(buf, MsgHelloResp)
	buf = codec.AppendUvarint(buf, uint64(ver))
	if features != 0 {
		buf = codec.AppendUvarint(buf, features)
	}
	return buf
}

// DecodeHelloResp decodes a MsgHelloResp payload (features
// discarded).
func DecodeHelloResp(payload []byte) (byte, error) {
	v, _, err := DecodeHelloRespFeatures(payload)
	return v, err
}

// DecodeHelloRespFeatures decodes a MsgHelloResp payload; an absent
// features field decodes as zero.
func DecodeHelloRespFeatures(payload []byte) (byte, uint64, error) {
	v, payload, err := readUvarint(payload)
	if err != nil {
		return 0, 0, err
	}
	if v < 1 || v > 255 {
		return 0, 0, fmt.Errorf("%w: implausible protocol version %d", ErrCorrupt, v)
	}
	var features uint64
	if len(payload) > 0 {
		if features, payload, err = readUvarint(payload); err != nil {
			return 0, 0, err
		}
	}
	return byte(v), features, wantEmpty(payload)
}

// ChecksumReq asks for the CRC32C of subfile bytes [Off, Off+N); bytes
// beyond the subfile's current length count as zeroes.
type ChecksumReq struct {
	File    string
	Subfile int64
	Off, N  int64
}

// AppendChecksum encodes req as a frame body.
func AppendChecksum(buf []byte, req *ChecksumReq) []byte {
	buf = beginFrame(buf, MsgChecksum)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	buf = codec.AppendVarint(buf, req.Off)
	buf = codec.AppendVarint(buf, req.N)
	return buf
}

// DecodeChecksum decodes a MsgChecksum payload.
func DecodeChecksum(payload []byte) (*ChecksumReq, error) {
	req := &ChecksumReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Off, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.N, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	return req, wantEmpty(payload)
}

// AppendChecksumResp encodes a Checksum response.
func AppendChecksumResp(buf []byte, sum uint32) []byte {
	buf = beginFrame(buf, MsgChecksumResp)
	return codec.AppendUvarint(buf, uint64(sum))
}

// DecodeChecksumResp decodes a MsgChecksumResp payload.
func DecodeChecksumResp(payload []byte) (uint32, error) {
	v, payload, err := readUvarint(payload)
	if err != nil {
		return 0, err
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("%w: checksum %d overflows uint32", ErrCorrupt, v)
	}
	return uint32(v), wantEmpty(payload)
}

// AppendError encodes an error response.
func AppendError(buf []byte, code uint64, msg string) []byte {
	return AppendErrorRetry(buf, code, msg, 0)
}

// AppendErrorRetry encodes an error response with a retry-after hint.
// A zero hint appends nothing, so pre-overload peers decode the
// byte-identical legacy payload; a nonzero hint travels as trailing
// uvarint milliseconds (sub-millisecond hints round up to 1ms so the
// hint survives the wire).
func AppendErrorRetry(buf []byte, code uint64, msg string, retryAfter time.Duration) []byte {
	return AppendErrorLeader(buf, code, msg, retryAfter, "")
}

// AppendErrorLeader encodes an error response with a retry-after hint
// and a leader redirect hint. A non-empty leader forces the retry
// uvarint onto the wire (zero included) so the two trailing optional
// fields stay unambiguous; both empty reproduces the legacy bytes.
func AppendErrorLeader(buf []byte, code uint64, msg string, retryAfter time.Duration, leader string) []byte {
	buf = beginFrame(buf, MsgError)
	buf = codec.AppendUvarint(buf, code)
	buf = appendString(buf, msg)
	if retryAfter > 0 || leader != "" {
		ms := uint64(retryAfter.Milliseconds())
		if ms == 0 && retryAfter > 0 {
			ms = 1
		}
		buf = codec.AppendUvarint(buf, ms)
	}
	if leader != "" {
		buf = appendString(buf, leader)
	}
	return buf
}

// DecodeError decodes a MsgError payload. Absent retry-after and
// leader fields decode as zero values.
func DecodeError(payload []byte) (*RemoteError, error) {
	e := &RemoteError{}
	var err error
	if e.Code, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if e.Msg, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		var ms uint64
		if ms, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		e.RetryAfter = time.Duration(ms) * time.Millisecond
	}
	if len(payload) > 0 {
		if e.Leader, payload, err = readString(payload); err != nil {
			return nil, err
		}
	}
	return e, wantEmpty(payload)
}

// --- proto v3: multiplexed streams ---
//
// On a v3 connection every frame body is [version][type][uvarint
// stream id][payload]. Unary requests reuse their v1/v2 payload
// encodings unchanged past the stream id; the chunked-transfer
// messages below exist only inside v3 streams.

// appendStreamHdr begins a v3 frame body: version, type, stream id.
func appendStreamHdr(buf []byte, msgType byte, sid uint64) []byte {
	buf = append(buf, ProtoVersion3, msgType)
	return codec.AppendUvarint(buf, sid)
}

// splitStreamFrame splits a v3 frame body past ParseFrame into its
// stream id and remaining payload.
func splitStreamFrame(payload []byte) (uint64, []byte, error) {
	return readUvarint(payload)
}

// appendChunkHdr begins a chunk frame body (MsgWriteChunk or
// MsgDataChunk): the chunk's data is appended by the vectored writer,
// never copied into this buffer.
func appendChunkHdr(buf []byte, msgType byte, sid uint64, flags byte) []byte {
	buf = appendStreamHdr(buf, msgType, sid)
	return append(buf, flags)
}

// splitChunk splits a chunk payload (past the stream id) into its
// flags byte and data.
func splitChunk(payload []byte) (flags byte, data []byte, err error) {
	if len(payload) < 1 {
		return 0, nil, fmt.Errorf("%w: chunk without flags byte", ErrCorrupt)
	}
	return payload[0], payload[1:], nil
}

// WriteStreamReq opens a chunked scatter: the same addressing as
// WriteSegsReq, with the data instead arriving as MsgWriteChunk frames
// totalling Total bytes.
type WriteStreamReq struct {
	File        string
	Subfile     int64
	Fingerprint uint64
	Lo, Hi      int64
	Total       int64
	// TraceID/SpanID tie the stream into a distributed trace; both
	// zero (the default) encodes byte-identically to the pre-tracing
	// request. Only sent to peers that advertised FeatureTrace.
	TraceID uint64
	SpanID  uint64
	// Epoch as on WriteSegsReq. A non-zero epoch forces the trace pair
	// onto the wire (zeros if untraced) so the decoder can tell the
	// trailing fields apart; only sent to FeaturePlacement peers.
	Epoch uint64
}

// AppendWriteStream encodes req as a v3 frame body on stream sid.
func AppendWriteStream(buf []byte, sid uint64, req *WriteStreamReq) []byte {
	buf = appendStreamHdr(buf, MsgWriteStream, sid)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	buf = codec.AppendUvarint(buf, req.Fingerprint)
	buf = codec.AppendVarint(buf, req.Lo)
	buf = codec.AppendVarint(buf, req.Hi)
	buf = codec.AppendVarint(buf, req.Total)
	if req.TraceID != 0 || req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.TraceID)
		buf = codec.AppendUvarint(buf, req.SpanID)
	}
	if req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.Epoch)
	}
	return buf
}

// DecodeWriteStream decodes a MsgWriteStream payload (past the stream
// id).
func DecodeWriteStream(payload []byte) (*WriteStreamReq, error) {
	req := &WriteStreamReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Fingerprint, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Lo, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Hi, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Total, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if req.TraceID, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		if req.SpanID, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	if len(payload) > 0 {
		if req.Epoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// ReadStreamReq opens a chunked gather: the same addressing as
// ReadSegsReq plus the chunk size the client wants the N gathered
// bytes sliced into.
type ReadStreamReq struct {
	File        string
	Subfile     int64
	Fingerprint uint64
	Lo, Hi      int64
	N           int64
	ChunkSize   int64
	// TraceID/SpanID as on WriteStreamReq: zero encodes the legacy
	// bytes, non-zero only travels to FeatureTrace peers.
	TraceID uint64
	SpanID  uint64
	// Epoch as on WriteStreamReq: forces the trace pair when set.
	Epoch uint64
}

// AppendReadStream encodes req as a v3 frame body on stream sid.
func AppendReadStream(buf []byte, sid uint64, req *ReadStreamReq) []byte {
	buf = appendStreamHdr(buf, MsgReadStream, sid)
	buf = appendString(buf, req.File)
	buf = codec.AppendVarint(buf, req.Subfile)
	buf = codec.AppendUvarint(buf, req.Fingerprint)
	buf = codec.AppendVarint(buf, req.Lo)
	buf = codec.AppendVarint(buf, req.Hi)
	buf = codec.AppendVarint(buf, req.N)
	buf = codec.AppendVarint(buf, req.ChunkSize)
	if req.TraceID != 0 || req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.TraceID)
		buf = codec.AppendUvarint(buf, req.SpanID)
	}
	if req.Epoch != 0 {
		buf = codec.AppendUvarint(buf, req.Epoch)
	}
	return buf
}

// DecodeReadStream decodes a MsgReadStream payload (past the stream
// id).
func DecodeReadStream(payload []byte) (*ReadStreamReq, error) {
	req := &ReadStreamReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Subfile, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Fingerprint, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.Lo, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.Hi, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.N, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if req.ChunkSize, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if req.TraceID, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		if req.SpanID, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	if len(payload) > 0 {
		if req.Epoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// --- tracing extension: span records, the traced envelope, drains ---

// maxSpanRecords bounds a decoded record batch: no legitimate op tree
// is deeper or wider than this, and the cap stops a corrupt count
// from allocating the machine away.
const maxSpanRecords = 1 << 16

func appendSpanRecord(buf []byte, r *obs.SpanRecord) []byte {
	buf = codec.AppendUvarint(buf, r.TraceID)
	buf = codec.AppendUvarint(buf, r.SpanID)
	buf = codec.AppendUvarint(buf, r.Parent)
	buf = appendString(buf, r.Name)
	buf = appendString(buf, r.Node)
	buf = codec.AppendVarint(buf, r.Start)
	buf = codec.AppendVarint(buf, r.End)
	var e byte
	if r.Err {
		e = 1
	}
	return append(buf, e)
}

func readSpanRecord(payload []byte) (obs.SpanRecord, []byte, error) {
	var r obs.SpanRecord
	var err error
	if r.TraceID, payload, err = readUvarint(payload); err != nil {
		return r, nil, err
	}
	if r.SpanID, payload, err = readUvarint(payload); err != nil {
		return r, nil, err
	}
	if r.Parent, payload, err = readUvarint(payload); err != nil {
		return r, nil, err
	}
	if r.Name, payload, err = readString(payload); err != nil {
		return r, nil, err
	}
	if r.Node, payload, err = readString(payload); err != nil {
		return r, nil, err
	}
	if r.Start, payload, err = readVarint(payload); err != nil {
		return r, nil, err
	}
	if r.End, payload, err = readVarint(payload); err != nil {
		return r, nil, err
	}
	if len(payload) < 1 {
		return r, nil, fmt.Errorf("%w: span record without error byte", ErrCorrupt)
	}
	r.Err = payload[0] != 0
	return r, payload[1:], nil
}

// AppendSpanRecords encodes a uvarint count followed by the records.
func AppendSpanRecords(buf []byte, recs []obs.SpanRecord) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(recs)))
	for i := range recs {
		buf = appendSpanRecord(buf, &recs[i])
	}
	return buf
}

// ReadSpanRecords decodes a record batch, returning the remainder.
func ReadSpanRecords(payload []byte) ([]obs.SpanRecord, []byte, error) {
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, nil, err
	}
	if n > maxSpanRecords {
		return nil, nil, fmt.Errorf("%w: implausible span record count %d", ErrCorrupt, n)
	}
	recs := make([]obs.SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var r obs.SpanRecord
		if r, payload, err = readSpanRecord(payload); err != nil {
			return nil, nil, err
		}
		recs = append(recs, r)
	}
	return recs, payload, nil
}

// AppendTracedHdr begins a MsgTraced envelope; the caller appends the
// inner request's type byte and payload after it.
func AppendTracedHdr(buf []byte, traceID, parent uint64) []byte {
	buf = beginFrame(buf, MsgTraced)
	buf = codec.AppendUvarint(buf, traceID)
	return codec.AppendUvarint(buf, parent)
}

// DecodeTraced splits a MsgTraced payload into the trace identifiers
// and the inner request (type + payload, aliasing the input).
func DecodeTraced(payload []byte) (traceID, parent uint64, innerType byte, inner []byte, err error) {
	if traceID, payload, err = readUvarint(payload); err != nil {
		return 0, 0, 0, nil, err
	}
	if parent, payload, err = readUvarint(payload); err != nil {
		return 0, 0, 0, nil, err
	}
	if traceID == 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: traced envelope without trace id", ErrCorrupt)
	}
	if len(payload) < 1 {
		return 0, 0, 0, nil, fmt.Errorf("%w: traced envelope without inner request", ErrCorrupt)
	}
	return traceID, parent, payload[0], payload[1:], nil
}

// AppendTracedResp wraps a complete inner response frame body (as
// produced by the Append* response builders: [ver][type][payload])
// into a MsgTracedResp envelope carrying the server's span records.
func AppendTracedResp(buf []byte, recs []obs.SpanRecord, inner []byte) []byte {
	buf = beginFrame(buf, MsgTracedResp)
	buf = AppendSpanRecords(buf, recs)
	return append(buf, inner[1:]...) // drop the inner version byte
}

// DecodeTracedResp splits a MsgTracedResp payload into the span
// records and the inner response (type + payload, aliasing input).
func DecodeTracedResp(payload []byte) (recs []obs.SpanRecord, innerType byte, inner []byte, err error) {
	if recs, payload, err = ReadSpanRecords(payload); err != nil {
		return nil, 0, nil, err
	}
	if len(payload) < 1 {
		return nil, 0, nil, fmt.Errorf("%w: traced response without inner response", ErrCorrupt)
	}
	return recs, payload[0], payload[1:], nil
}

// AppendSpansReq encodes a MsgSpans drain request.
func AppendSpansReq(buf []byte, traceID uint64) []byte {
	buf = beginFrame(buf, MsgSpans)
	return codec.AppendUvarint(buf, traceID)
}

// DecodeSpansReq decodes a MsgSpans payload.
func DecodeSpansReq(payload []byte) (uint64, error) {
	traceID, payload, err := readUvarint(payload)
	if err != nil {
		return 0, err
	}
	return traceID, wantEmpty(payload)
}

// AppendSpansResp encodes the drained records.
func AppendSpansResp(buf []byte, recs []obs.SpanRecord) []byte {
	buf = beginFrame(buf, MsgSpansResp)
	return AppendSpanRecords(buf, recs)
}

// DecodeSpansResp decodes a MsgSpansResp payload.
func DecodeSpansResp(payload []byte) ([]obs.SpanRecord, error) {
	recs, payload, err := ReadSpanRecords(payload)
	if err != nil {
		return nil, err
	}
	return recs, wantEmpty(payload)
}

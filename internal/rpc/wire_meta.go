package rpc

// wire_meta.go carries the metadata-service half of the wire: the
// placement-epoch admin request the data daemons handle (MsgEpoch) and
// the namespace/placement messages parafilemd answers (MsgMeta*). The
// encodings reuse the storage protocol's framing, varint primitives
// and error responses, so one client stack speaks to both daemons.

import (
	"fmt"

	"parafile/internal/codec"
)

// Node membership states carried by MsgMetaNode/MsgMetaNodesResp.
const (
	// NodeActive nodes receive new placements.
	NodeActive byte = 0
	// NodeDraining nodes are excluded from new placements while their
	// files rebalance away; the stores stay readable until then.
	NodeDraining byte = 1
	// NodeRemoved nodes are decommissioned: no file references them.
	NodeRemoved byte = 2
)

// NodeStateName returns the display name of a membership state.
func NodeStateName(s byte) string {
	switch s {
	case NodeActive:
		return "active"
	case NodeDraining:
		return "draining"
	case NodeRemoved:
		return "removed"
	}
	return fmt.Sprintf("state-%d", s)
}

// MetaFile is the metadata service's record of one file: the flat
// namespace entry plus the versioned placement map (epoch, node list,
// assign permutation) that replaces the implicit static mapping.
type MetaFile struct {
	// Name is the namespace key clients open the file by.
	Name string
	// StripeBytes is the striping unit: subfile s holds bytes
	// [s*W, (s+1)*W) of every len(Assign)*W period.
	StripeBytes int64
	// Replication is the replica count of every subfile.
	Replication int
	// Epoch versions the placement below; it bumps by one at every
	// committed rebalance, and data daemons reject ops whose epoch
	// does not match their stores'.
	Epoch uint64
	// StoreName is the daemon-side store base name of this epoch's
	// generation ("name" initially, "name@<epoch>" after a rebalance),
	// so the old and new generations coexist while data moves.
	StoreName string
	// Length is the logical byte length written so far (ratcheted by
	// MsgMetaExtend); it sizes rebalances.
	Length int64
	// Nodes are the daemon endpoints of this epoch's placement, in
	// I/O-node-index order.
	Nodes []string
	// Assign maps subfile s to its primary node index in Nodes;
	// replica r of subfile s lives on (Assign[s]+r) mod len(Nodes).
	Assign []int
}

// maxMetaEntries bounds decoded list counts against corrupt frames.
const maxMetaEntries = 1 << 16

// AppendMetaFile encodes one MetaFile record (no frame header).
func AppendMetaFile(buf []byte, f *MetaFile) []byte {
	buf = appendString(buf, f.Name)
	buf = codec.AppendVarint(buf, f.StripeBytes)
	buf = codec.AppendUvarint(buf, uint64(f.Replication))
	buf = codec.AppendUvarint(buf, f.Epoch)
	buf = appendString(buf, f.StoreName)
	buf = codec.AppendVarint(buf, f.Length)
	buf = codec.AppendUvarint(buf, uint64(len(f.Nodes)))
	for _, n := range f.Nodes {
		buf = appendString(buf, n)
	}
	buf = codec.AppendUvarint(buf, uint64(len(f.Assign)))
	for _, a := range f.Assign {
		buf = codec.AppendUvarint(buf, uint64(a))
	}
	return buf
}

// ReadMetaFile decodes one MetaFile record, returning the remainder.
func ReadMetaFile(payload []byte) (*MetaFile, []byte, error) {
	f := &MetaFile{}
	var err error
	if f.Name, payload, err = readString(payload); err != nil {
		return nil, nil, err
	}
	if f.StripeBytes, payload, err = readVarint(payload); err != nil {
		return nil, nil, err
	}
	var repl uint64
	if repl, payload, err = readUvarint(payload); err != nil {
		return nil, nil, err
	}
	f.Replication = int(repl)
	if f.Epoch, payload, err = readUvarint(payload); err != nil {
		return nil, nil, err
	}
	if f.StoreName, payload, err = readString(payload); err != nil {
		return nil, nil, err
	}
	if f.Length, payload, err = readVarint(payload); err != nil {
		return nil, nil, err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, nil, err
	}
	if n > maxMetaEntries {
		return nil, nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, n)
	}
	f.Nodes = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, payload, err = readString(payload); err != nil {
			return nil, nil, err
		}
		f.Nodes = append(f.Nodes, s)
	}
	if n, payload, err = readUvarint(payload); err != nil {
		return nil, nil, err
	}
	if n > maxMetaEntries {
		return nil, nil, fmt.Errorf("%w: implausible assign count %d", ErrCorrupt, n)
	}
	f.Assign = make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		var a uint64
		if a, payload, err = readUvarint(payload); err != nil {
			return nil, nil, err
		}
		f.Assign = append(f.Assign, int(a))
	}
	return f, payload, nil
}

// EpochReq ratchets the placement epoch of every store of File on the
// receiving data daemon and raises or clears the write fence. File is
// the store base name; replica stores ("file~r<r>") follow along.
type EpochReq struct {
	File  string
	Epoch uint64
	Fence bool
}

// AppendEpoch encodes req as a frame body.
func AppendEpoch(buf []byte, req *EpochReq) []byte {
	buf = beginFrame(buf, MsgEpoch)
	buf = appendString(buf, req.File)
	buf = codec.AppendUvarint(buf, req.Epoch)
	if req.Fence {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeEpoch decodes a MsgEpoch payload.
func DecodeEpoch(payload []byte) (*EpochReq, error) {
	req := &EpochReq{}
	var err error
	if req.File, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Epoch, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: missing fence flag", ErrCorrupt)
	}
	req.Fence = payload[0] != 0
	return req, wantEmpty(payload[1:])
}

// MetaCreateReq creates a namespace entry; the service computes the
// initial placement over its active nodes.
type MetaCreateReq struct {
	Name        string
	StripeBytes int64
	Replication int
}

// AppendMetaCreate encodes req as a frame body.
func AppendMetaCreate(buf []byte, req *MetaCreateReq) []byte {
	buf = beginFrame(buf, MsgMetaCreate)
	buf = appendString(buf, req.Name)
	buf = codec.AppendVarint(buf, req.StripeBytes)
	return codec.AppendUvarint(buf, uint64(req.Replication))
}

// DecodeMetaCreate decodes a MsgMetaCreate payload.
func DecodeMetaCreate(payload []byte) (*MetaCreateReq, error) {
	req := &MetaCreateReq{}
	var err error
	if req.Name, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.StripeBytes, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	var repl uint64
	if repl, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	req.Replication = int(repl)
	return req, wantEmpty(payload)
}

// AppendMetaName encodes a name-only request (MsgMetaOpen or
// MsgMetaRemove).
func AppendMetaName(buf []byte, msgType byte, name string) []byte {
	buf = beginFrame(buf, msgType)
	return appendString(buf, name)
}

// DecodeMetaName decodes a name-only payload.
func DecodeMetaName(payload []byte) (string, error) {
	name, payload, err := readString(payload)
	if err != nil {
		return "", err
	}
	return name, wantEmpty(payload)
}

// MetaCommitReq is the compare-and-swap placement flip after a
// rebalance: OldEpoch names the epoch the data was copied from; the
// service bumps to OldEpoch+1 with the new placement, or answers
// ErrCodeStalePlacement if the file has moved past OldEpoch.
type MetaCommitReq struct {
	Name      string
	OldEpoch  uint64
	StoreName string
	Nodes     []string
	Assign    []int
	// NewEpoch is the exact epoch the driver stamped into the daemon
	// stores it staged the data on; the service records it verbatim so
	// the namespace and the data plane agree. It must exceed OldEpoch
	// and clear the service's current term floor. Zero (the legacy
	// encoding) lets the service pick OldEpoch+1 raised to the floor.
	NewEpoch uint64
}

// AppendMetaCommit encodes req as a frame body.
func AppendMetaCommit(buf []byte, req *MetaCommitReq) []byte {
	buf = beginFrame(buf, MsgMetaCommit)
	buf = appendString(buf, req.Name)
	buf = codec.AppendUvarint(buf, req.OldEpoch)
	buf = appendString(buf, req.StoreName)
	buf = codec.AppendUvarint(buf, uint64(len(req.Nodes)))
	for _, n := range req.Nodes {
		buf = appendString(buf, n)
	}
	buf = codec.AppendUvarint(buf, uint64(len(req.Assign)))
	for _, a := range req.Assign {
		buf = codec.AppendUvarint(buf, uint64(a))
	}
	if req.NewEpoch != 0 {
		buf = codec.AppendUvarint(buf, req.NewEpoch)
	}
	return buf
}

// DecodeMetaCommit decodes a MsgMetaCommit payload.
func DecodeMetaCommit(payload []byte) (*MetaCommitReq, error) {
	req := &MetaCommitReq{}
	var err error
	if req.Name, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.OldEpoch, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if req.StoreName, payload, err = readString(payload); err != nil {
		return nil, err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	if n > maxMetaEntries {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, n)
	}
	req.Nodes = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, payload, err = readString(payload); err != nil {
			return nil, err
		}
		req.Nodes = append(req.Nodes, s)
	}
	if n, payload, err = readUvarint(payload); err != nil {
		return nil, err
	}
	if n > maxMetaEntries {
		return nil, fmt.Errorf("%w: implausible assign count %d", ErrCorrupt, n)
	}
	req.Assign = make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		var a uint64
		if a, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
		req.Assign = append(req.Assign, int(a))
	}
	if len(payload) > 0 {
		if req.NewEpoch, payload, err = readUvarint(payload); err != nil {
			return nil, err
		}
	}
	return req, wantEmpty(payload)
}

// MetaExtendReq ratchets a file's logical length after a write.
type MetaExtendReq struct {
	Name   string
	Length int64
}

// AppendMetaExtend encodes req as a frame body.
func AppendMetaExtend(buf []byte, req *MetaExtendReq) []byte {
	buf = beginFrame(buf, MsgMetaExtend)
	buf = appendString(buf, req.Name)
	return codec.AppendVarint(buf, req.Length)
}

// DecodeMetaExtend decodes a MsgMetaExtend payload.
func DecodeMetaExtend(payload []byte) (*MetaExtendReq, error) {
	req := &MetaExtendReq{}
	var err error
	if req.Name, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if req.Length, payload, err = readVarint(payload); err != nil {
		return nil, err
	}
	return req, wantEmpty(payload)
}

// MetaNode is one membership entry of the cluster node table.
type MetaNode struct {
	Addr  string
	State byte
}

// AppendMetaNodeReq encodes a MsgMetaNode registration/state change.
func AppendMetaNodeReq(buf []byte, node *MetaNode) []byte {
	buf = beginFrame(buf, MsgMetaNode)
	buf = appendString(buf, node.Addr)
	return append(buf, node.State)
}

// DecodeMetaNodeReq decodes a MsgMetaNode payload.
func DecodeMetaNodeReq(payload []byte) (*MetaNode, error) {
	node := &MetaNode{}
	var err error
	if node.Addr, payload, err = readString(payload); err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: missing node state", ErrCorrupt)
	}
	node.State = payload[0]
	return node, wantEmpty(payload[1:])
}

// AppendMetaEmpty encodes a bodyless metadata request (MsgMetaList or
// MsgMetaNodes).
func AppendMetaEmpty(buf []byte, msgType byte) []byte {
	return beginFrame(buf, msgType)
}

// AppendMetaFileResp encodes a MsgMetaFileResp.
func AppendMetaFileResp(buf []byte, f *MetaFile) []byte {
	buf = beginFrame(buf, MsgMetaFileResp)
	return AppendMetaFile(buf, f)
}

// DecodeMetaFileResp decodes a MsgMetaFileResp payload.
func DecodeMetaFileResp(payload []byte) (*MetaFile, error) {
	f, payload, err := ReadMetaFile(payload)
	if err != nil {
		return nil, err
	}
	return f, wantEmpty(payload)
}

// AppendMetaListResp encodes a MsgMetaListResp.
func AppendMetaListResp(buf []byte, files []*MetaFile) []byte {
	buf = beginFrame(buf, MsgMetaListResp)
	buf = codec.AppendUvarint(buf, uint64(len(files)))
	for _, f := range files {
		buf = AppendMetaFile(buf, f)
	}
	return buf
}

// DecodeMetaListResp decodes a MsgMetaListResp payload.
func DecodeMetaListResp(payload []byte) ([]*MetaFile, error) {
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	if n > maxMetaEntries {
		return nil, fmt.Errorf("%w: implausible file count %d", ErrCorrupt, n)
	}
	files := make([]*MetaFile, 0, n)
	for i := uint64(0); i < n; i++ {
		var f *MetaFile
		if f, payload, err = ReadMetaFile(payload); err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, wantEmpty(payload)
}

// AppendMetaNodesResp encodes a MsgMetaNodesResp.
func AppendMetaNodesResp(buf []byte, nodes []MetaNode) []byte {
	buf = beginFrame(buf, MsgMetaNodesResp)
	buf = codec.AppendUvarint(buf, uint64(len(nodes)))
	for i := range nodes {
		buf = appendString(buf, nodes[i].Addr)
		buf = append(buf, nodes[i].State)
	}
	return buf
}

// DecodeMetaNodesResp decodes a MsgMetaNodesResp payload.
func DecodeMetaNodesResp(payload []byte) ([]MetaNode, error) {
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, err
	}
	if n > maxMetaEntries {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, n)
	}
	nodes := make([]MetaNode, 0, n)
	for i := uint64(0); i < n; i++ {
		var node MetaNode
		if node.Addr, payload, err = readString(payload); err != nil {
			return nil, err
		}
		if len(payload) < 1 {
			return nil, fmt.Errorf("%w: missing node state", ErrCorrupt)
		}
		node.State = payload[0]
		payload = payload[1:]
		nodes = append(nodes, node)
	}
	return nodes, wantEmpty(payload)
}

package rpc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// wire_test.go checks the frame codec the hard way: seeded-random
// round-trips for every message type, then deliberately truncated and
// corrupted frames, which must come back as clean ErrCorrupt-wrapped
// errors — never a panic, never a silent misparse.

func randString(rng *rand.Rand, max int) string {
	n := rng.Intn(max + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randBytes(rng *rand.Rand, max int) []byte {
	b := make([]byte, rng.Intn(max+1))
	rng.Read(b)
	return b
}

// roundTrip pushes a frame body through WriteFrame/ReadFrame and
// returns the re-parsed payload.
func roundTrip(t *testing.T, body []byte, wantType byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	msgType, payload, err := ParseFrame(got)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if msgType != wantType {
		t.Fatalf("message type %#x, want %#x", msgType, wantType)
	}
	return payload
}

func TestCreateFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		req := &CreateFileReq{
			Name:   randString(rng, 40),
			Phys:   randBytes(rng, 256),
			Reopen: rng.Intn(2) == 1,
		}
		for j := rng.Intn(8); j > 0; j-- {
			req.Subfiles = append(req.Subfiles, rng.Intn(64))
		}
		payload := roundTrip(t, AppendCreateFile(nil, req), MsgCreateFile)
		got, err := DecodeCreateFile(payload)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Name != req.Name || !bytes.Equal(got.Phys, req.Phys) || got.Reopen != req.Reopen {
			t.Fatalf("iter %d: decoded %+v, want %+v", i, got, req)
		}
		if len(got.Subfiles) != len(req.Subfiles) {
			t.Fatalf("iter %d: %d subfiles, want %d", i, len(got.Subfiles), len(req.Subfiles))
		}
		for k := range req.Subfiles {
			if got.Subfiles[k] != req.Subfiles[k] {
				t.Fatalf("iter %d: subfile[%d] = %d, want %d", i, k, got.Subfiles[k], req.Subfiles[k])
			}
		}
	}
}

func TestSetViewRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		req := &SetViewReq{Fingerprint: rng.Uint64(), Proj: randBytes(rng, 512)}
		payload := roundTrip(t, AppendSetView(nil, req), MsgSetView)
		got, err := DecodeSetView(payload)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Fingerprint != req.Fingerprint || !bytes.Equal(got.Proj, req.Proj) {
			t.Fatalf("iter %d: decoded %+v, want %+v", i, got, req)
		}
	}
}

func TestWriteSegsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		req := &WriteSegsReq{
			File:        randString(rng, 30),
			Subfile:     rng.Int63n(64),
			Fingerprint: rng.Uint64(),
			Lo:          rng.Int63n(1 << 30),
			Hi:          rng.Int63n(1 << 30),
			Data:        randBytes(rng, 1024),
		}
		payload := roundTrip(t, AppendWriteSegs(nil, req), MsgWriteSegs)
		got, err := DecodeWriteSegs(payload)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.File != req.File || got.Subfile != req.Subfile ||
			got.Fingerprint != req.Fingerprint || got.Lo != req.Lo || got.Hi != req.Hi ||
			!bytes.Equal(got.Data, req.Data) {
			t.Fatalf("iter %d: decoded %+v, want %+v", i, got, req)
		}
	}
}

func TestReadSegsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		req := &ReadSegsReq{
			File:        randString(rng, 30),
			Subfile:     rng.Int63n(64),
			Fingerprint: rng.Uint64(),
			Lo:          rng.Int63n(1 << 30),
			Hi:          rng.Int63n(1 << 30),
			N:           rng.Int63n(1 << 20),
		}
		payload := roundTrip(t, AppendReadSegs(nil, req), MsgReadSegs)
		got, err := DecodeReadSegs(payload)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if *got != *req {
			t.Fatalf("iter %d: decoded %+v, want %+v", i, got, req)
		}
	}
}

func TestStatCloseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		sreq := &StatReq{File: randString(rng, 30), Subfile: rng.Int63n(64)}
		payload := roundTrip(t, AppendStat(nil, sreq), MsgStat)
		gs, err := DecodeStat(payload)
		if err != nil {
			t.Fatalf("stat iter %d: %v", i, err)
		}
		if *gs != *sreq {
			t.Fatalf("stat iter %d: decoded %+v, want %+v", i, gs, sreq)
		}

		creq := &CloseReq{File: randString(rng, 30)}
		payload = roundTrip(t, AppendClose(nil, creq), MsgClose)
		gc, err := DecodeClose(payload)
		if err != nil {
			t.Fatalf("close iter %d: %v", i, err)
		}
		if *gc != *creq {
			t.Fatalf("close iter %d: decoded %+v, want %+v", i, gc, creq)
		}
	}
}

func TestResponseRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if payload := roundTrip(t, AppendOK(nil), MsgOK); len(payload) != 0 {
		t.Fatalf("OK payload %d bytes, want 0", len(payload))
	}
	for i := 0; i < 100; i++ {
		data := randBytes(rng, 2048)
		got, err := DecodeData(roundTrip(t, AppendData(nil, data), MsgData))
		if err != nil {
			t.Fatalf("data iter %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("data iter %d: %d bytes, want %d", i, len(got), len(data))
		}

		n := rng.Int63()
		gn, err := DecodeStatResp(roundTrip(t, AppendStatResp(nil, n), MsgStatResp))
		if err != nil {
			t.Fatalf("statresp iter %d: %v", i, err)
		}
		if gn != n {
			t.Fatalf("statresp iter %d: %d, want %d", i, gn, n)
		}

		re, err := DecodeError(roundTrip(t, AppendError(nil, uint64(rng.Intn(6)), randString(rng, 60)), MsgError))
		if err != nil {
			t.Fatalf("error iter %d: %v", i, err)
		}
		if re.Code > 5 {
			t.Fatalf("error iter %d: code %d out of range", i, re.Code)
		}
	}
}

func TestFingerprintNeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if Fingerprint(randBytes(rng, 64)) == 0 {
			t.Fatal("fingerprint of random bytes is zero (reserved)")
		}
	}
	if Fingerprint(nil) == 0 {
		t.Fatal("fingerprint of empty input is zero (reserved)")
	}
}

// TestTruncatedFrames feeds every prefix of a valid frame stream to
// ReadFrame: each must fail with a clean error (EOF family or
// ErrCorrupt), never a panic or a bogus success.
func TestTruncatedFrames(t *testing.T) {
	req := &WriteSegsReq{File: "f", Subfile: 1, Lo: 0, Hi: 15, Data: make([]byte, 16)}
	var full bytes.Buffer
	if err := WriteFrame(&full, AppendWriteSegs(nil, req)); err != nil {
		t.Fatal(err)
	}
	stream := full.Bytes()
	for cut := 0; cut < len(stream); cut++ {
		_, err := ReadFrame(bytes.NewReader(stream[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(stream))
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: unexpected error class %v", cut, err)
		}
	}
}

// TestCorruptFrames flips each payload byte of a valid frame and
// decodes it: corruption must never panic, and any "successful" decode
// must at least have consumed the whole payload (the codec is
// length-guarded, so most flips surface as ErrCorrupt).
func TestCorruptFrames(t *testing.T) {
	decoders := map[byte]func([]byte) error{
		MsgCreateFile: func(p []byte) error { _, err := DecodeCreateFile(p); return err },
		MsgSetView:    func(p []byte) error { _, err := DecodeSetView(p); return err },
		MsgWriteSegs:  func(p []byte) error { _, err := DecodeWriteSegs(p); return err },
		MsgReadSegs:   func(p []byte) error { _, err := DecodeReadSegs(p); return err },
		MsgStat:       func(p []byte) error { _, err := DecodeStat(p); return err },
		MsgClose:      func(p []byte) error { _, err := DecodeClose(p); return err },
		MsgData:       func(p []byte) error { _, err := DecodeData(p); return err },
		MsgStatResp:   func(p []byte) error { _, err := DecodeStatResp(p); return err },
		MsgError:      func(p []byte) error { _, err := DecodeError(p); return err },
	}
	bodies := [][]byte{
		AppendCreateFile(nil, &CreateFileReq{Name: "data", Phys: []byte{1, 2, 3}, Subfiles: []int{0, 2}}),
		AppendSetView(nil, &SetViewReq{Fingerprint: 99, Proj: []byte{4, 5, 6, 7}}),
		AppendWriteSegs(nil, &WriteSegsReq{File: "data", Subfile: 3, Fingerprint: 9, Lo: 2, Hi: 63, Data: make([]byte, 12)}),
		AppendReadSegs(nil, &ReadSegsReq{File: "data", Subfile: 3, Fingerprint: 9, Lo: 2, Hi: 63, N: 12}),
		AppendStat(nil, &StatReq{File: "data", Subfile: 1}),
		AppendClose(nil, &CloseReq{File: "data"}),
		AppendData(nil, []byte("payload")),
		AppendStatResp(nil, 123456),
		AppendError(nil, ErrCodeIO, "disk on fire"),
	}
	for _, body := range bodies {
		msgType, _, err := ParseFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		decode := decoders[msgType]
		for i := 2; i < len(body); i++ {
			for _, delta := range []byte{1, 0x80, 0xFF} {
				mut := append([]byte(nil), body...)
				mut[i] ^= delta
				mt, payload, err := ParseFrame(mut)
				if err != nil {
					continue // version byte corrupted: rejected up front
				}
				if d, ok := decoders[mt]; ok {
					d(payload) // must not panic; errors are expected
				} else {
					_ = mt
				}
				_ = decode
			}
		}
	}
}

// TestFrameLengthBounds checks the ReadFrame guards on the length
// prefix: undersized, oversized, and the max-frame override.
func TestFrameLengthBounds(t *testing.T) {
	// Oversized length prefix.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(big), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("4GiB frame accepted: %v", err)
	}
	// Undersized: a frame body needs at least version+type.
	small := []byte{0, 0, 0, 1, 0xAA}
	if _, err := ReadFrame(bytes.NewReader(small), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("1-byte frame accepted: %v", err)
	}
	// A tight max-frame rejects bodies that the default allows.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, AppendData(nil, make([]byte, 1024))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("frame above max accepted: %v", err)
	}
}

func TestParseFrameVersion(t *testing.T) {
	body := AppendOK(nil)
	body[0] = MaxProtoVersion + 1
	if _, _, err := ParseFrame(body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong protocol version accepted: %v", err)
	}
	body[0] = ProtoVersion2
	if _, _, err := ParseFrame(body); err != nil {
		t.Fatalf("v2 body rejected: %v", err)
	}
	if _, _, err := ParseFrame([]byte{ProtoVersion}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("1-byte body accepted: %v", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	withTrailer := append(AppendStat(nil, &StatReq{File: "x", Subfile: 0}), 0xEE)
	_, payload, err := ParseFrame(withTrailer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStat(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestMsgName(t *testing.T) {
	for _, mt := range []byte{MsgCreateFile, MsgSetView, MsgWriteSegs, MsgReadSegs,
		MsgStat, MsgClose, MsgOK, MsgData, MsgStatResp, MsgError} {
		if name := MsgName(mt); name == "unknown" || strings.ContainsAny(name, " \t") {
			t.Fatalf("MsgName(%#x) = %q", mt, name)
		}
	}
	if MsgName(0x7E) != "unknown" {
		t.Fatalf("MsgName of bogus type = %q", MsgName(0x7E))
	}
}

// FuzzDecode throws arbitrary bytes at the frame parser and every
// request decoder: nothing may panic, and every error must belong to
// the ErrCorrupt family so connection handlers can classify it.
func FuzzDecode(f *testing.F) {
	f.Add(AppendCreateFile(nil, &CreateFileReq{Name: "d", Phys: []byte{1}, Subfiles: []int{0}}))
	f.Add(AppendWriteSegs(nil, &WriteSegsReq{File: "d", Hi: 7, Data: make([]byte, 8)}))
	f.Add(AppendReadSegs(nil, &ReadSegsReq{File: "d", Hi: 7, N: 8}))
	f.Add(AppendSetView(nil, &SetViewReq{Fingerprint: 1, Proj: []byte{2}}))
	f.Add(AppendError(nil, ErrCodeIO, "x"))
	f.Add([]byte{ProtoVersion, MsgOK})
	f.Fuzz(func(t *testing.T, body []byte) {
		msgType, payload, err := ParseFrame(body)
		if err != nil {
			return
		}
		switch msgType {
		case MsgCreateFile:
			DecodeCreateFile(payload)
		case MsgSetView:
			DecodeSetView(payload)
		case MsgWriteSegs:
			DecodeWriteSegs(payload)
		case MsgReadSegs:
			DecodeReadSegs(payload)
		case MsgStat:
			DecodeStat(payload)
		case MsgClose:
			DecodeClose(payload)
		case MsgData:
			DecodeData(payload)
		case MsgStatResp:
			DecodeStatResp(payload)
		case MsgError:
			DecodeError(payload)
		}
	})
}

package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"parafile/internal/codec"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/part"
)

// client_test.go exercises the failure half of the client: connection
// drops mid-request (retried with backoff, visible in the retry
// counters), unresponsive peers (deadline expiry, visible in the
// timeout counter), and server-reported errors (answered, never
// retried).

// startServer runs an in-process daemon on a loopback listener.
func startServer(t *testing.T, cfg ServerConfig) (string, *Server) {
	t.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

// encodeTestPhys is a minimal single-subfile physical partition for
// direct wire-level tests.
func encodeTestPhys(t *testing.T) []byte {
	t.Helper()
	pattern := part.MustPattern(
		part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, 63, 64, 1)}},
	)
	return codec.EncodeFile(part.MustFile(0, pattern))
}

// flakyProxy forwards TCP connections to backend, but kills the first
// `drops` connections after a few bytes — a connection drop mid-write
// from the client's point of view.
func flakyProxy(t *testing.T, backend string, drops int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if n.Add(1) <= drops {
				// Read a little of the request, then slam the door.
				io.ReadFull(conn, make([]byte, 4))
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(up, conn); up.(*net.TCPConn).CloseWrite() }()
			go func() { io.Copy(conn, up); conn.(*net.TCPConn).CloseWrite() }()
		}
	}()
	return ln.Addr().String()
}

func TestClientRetriesAfterConnectionDrop(t *testing.T) {
	backend, _ := startServer(t, ServerConfig{})
	proxy := flakyProxy(t, backend, 1)

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:        proxy,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		Metrics:     reg,
	})
	defer c.Close()

	phys := encodeTestPhys(t)
	if err := c.CreateFile(context.Background(), &CreateFileReq{Name: "f", Phys: phys, Subfiles: []int{0}}); err != nil {
		t.Fatalf("create through flaky proxy: %v", err)
	}
	data := []byte("survives the drop")
	err := c.WriteSegments(context.Background(), &WriteSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, Data: data})
	if err != nil {
		t.Fatalf("write through flaky proxy: %v", err)
	}
	got := make([]byte, len(data))
	err = c.ReadSegments(context.Background(), &ReadSegsReq{File: "f", Subfile: 0, Lo: 0, Hi: int64(len(data)) - 1, N: int64(len(data))}, got)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read %q after retried write, want %q", got, data)
	}
	if v := reg.Counter(MetricClientRetries).Value(); v < 1 {
		t.Fatalf("retries counter = %d, want >= 1 after a dropped connection", v)
	}
	if v := reg.Counter(MetricClientFailures).Value(); v != 0 {
		t.Fatalf("failures counter = %d, want 0 (every call eventually succeeded)", v)
	}
}

func TestClientTimeout(t *testing.T) {
	// A listener that accepts and then reads forever: the request lands
	// but no response ever comes, so the read deadline expires.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{
		Addr:        ln.Addr().String(),
		ReadTimeout: 30 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		Metrics:     reg,
	})
	defer c.Close()

	_, err = c.Stat(context.Background(), "f", 0)
	if err == nil {
		t.Fatal("stat of a black-hole server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v does not unwrap to a timeout", err)
	}
	if v := reg.Counter(MetricClientTimeouts).Value(); v < 1 {
		t.Fatalf("timeouts counter = %d, want >= 1", v)
	}
	if v := reg.Counter(MetricClientFailures).Value(); v != 1 {
		t.Fatalf("failures counter = %d, want 1 (retry budget exhausted once)", v)
	}
	if v := reg.Counter(MetricClientRetries).Value(); v != 1 {
		t.Fatalf("retries counter = %d, want 1 (MaxRetries=1)", v)
	}
}

func TestClientDoesNotRetryRemoteErrors(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{Addr: addr, BackoffBase: time.Millisecond, Metrics: reg})
	defer c.Close()

	_, err := c.Stat(context.Background(), "no-such-file", 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RemoteError", err)
	}
	if re.Code != ErrCodeUnknownFile {
		t.Fatalf("code %d, want %d (unknown file)", re.Code, ErrCodeUnknownFile)
	}
	if v := reg.Counter(MetricClientRetries).Value(); v != 0 {
		t.Fatalf("retries counter = %d, want 0: remote errors are answers, not transport failures", v)
	}
}

func TestClientDialFailure(t *testing.T) {
	// A port with nothing listening: grab one, then release it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	c := NewClient(ClientConfig{Addr: addr, MaxRetries: 1, BackoffBase: time.Millisecond, Metrics: reg})
	defer c.Close()
	if err := c.CloseFile(context.Background(), "f"); err == nil {
		t.Fatal("call to a dead address succeeded")
	}
	if v := reg.Counter(MetricClientFailures).Value(); v != 1 {
		t.Fatalf("failures counter = %d, want 1", v)
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A frame with a wrong protocol version: the server answers with a
	// bad-request error instead of dropping the connection or panicking.
	if err := WriteFrame(conn, []byte{ProtoVersion + 1, MsgStat}); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseFrame(body)
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgError {
		t.Fatalf("response type %#x, want error", msgType)
	}
	re, err := DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != ErrCodeBadRequest {
		t.Fatalf("code %d, want bad request", re.Code)
	}
}

// TestIsReplicaStoreOf pins the replica-store matcher to exactly the
// names clusterfile.ReplicaName produces: base+"~r"+digits. Anything
// looser would let the epoch fan-out and the removing-close sweep
// catch distinct client files that merely share the prefix.
func TestIsReplicaStoreOf(t *testing.T) {
	for _, tc := range []struct {
		name, base string
		want       bool
	}{
		{"data~r1", "data", true},
		{"data~r12", "data", true},
		{"data", "data", false},
		{"data~r", "data", false},
		{"data~rX", "data", false},
		{"data~r1x", "data", false},
		{"database~r1", "data", false},
		{"data~r1", "other", false},
	} {
		if got := isReplicaStoreOf(tc.name, tc.base); got != tc.want {
			t.Errorf("isReplicaStoreOf(%q, %q) = %v, want %v", tc.name, tc.base, got, tc.want)
		}
	}
}

// TestRemoveStoreSweepsOnlyReplicaStores: a removing close retires the
// file's replica stores (name~r<digits>) with it, but must not close
// and delete a distinct client file whose name merely starts with the
// same prefix.
func TestRemoveStoreSweepsOnlyReplicaStores(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	ctx := context.Background()
	phys := encodeTestPhys(t)

	for _, name := range []string{"data", "data~r1", "data~rX"} {
		if err := c.CreateFile(ctx, &CreateFileReq{Name: name, Phys: phys, Subfiles: []int{0}}); err != nil {
			t.Fatalf("create %q: %v", name, err)
		}
	}
	if err := c.RemoveStore(ctx, "data"); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, err := c.Stat(ctx, "data~r1", 0); !errors.As(err, &re) || re.Code != ErrCodeUnknownFile {
		t.Fatalf("replica store survived the sweep: %v", err)
	}
	if _, err := c.Stat(ctx, "data~rX", 0); err != nil {
		t.Fatalf("distinct file swept away with its prefix twin: %v", err)
	}
}

package rpc

import (
	"fmt"

	"parafile/internal/obs"
)

// metrics.go names and binds the RPC layer's observability series on
// both sides of the wire, following the obs conventions: binding a nil
// registry yields nil metrics whose methods are free no-ops.
const (
	// Client side: one series per request type for volume, a shared
	// latency histogram (whole call including retries), an in-flight
	// gauge, per-direction byte totals, and the failure taxonomy —
	// retries (reconnect attempts after a transport error), timeouts
	// (deadline expiries, a subset of retries), and failures (calls
	// that exhausted the retry budget).
	MetricClientRequests  = "parafile_rpc_client_requests_total"
	MetricClientRequestNs = "parafile_rpc_client_request_ns"
	MetricClientInflight  = "parafile_rpc_client_inflight"
	MetricClientSentBytes = "parafile_rpc_client_sent_bytes_total"
	MetricClientRecvBytes = "parafile_rpc_client_received_bytes_total"
	MetricClientRetries   = "parafile_rpc_client_retries_total"
	MetricClientTimeouts  = "parafile_rpc_client_timeouts_total"
	MetricClientFailures  = "parafile_rpc_client_failures_total"
	MetricClientDials     = "parafile_rpc_client_dials_total"
	// MetricClientShed counts overloaded answers (ErrCodeOverloaded):
	// backpressure the client absorbed by backing off, distinct from
	// retries (transport errors) and failures (exhausted budgets). A
	// shed answer never advances the circuit breaker.
	MetricClientShed = "parafile_rpc_client_shed_total"
	// MetricClientPaced is the subset of sheds refused locally: after a
	// shed answer with a RetryAfter hint, data-plane attempts inside the
	// hinted window are shed client-side without shipping the payload.
	MetricClientPaced = "parafile_rpc_client_paced_total"
	// MetricClientConnWaitNs records time spent waiting for a
	// connection token when the per-node dial semaphore is saturated
	// (classic, non-multiplexed path only; zero waits never observe).
	MetricClientConnWaitNs = "parafile_rpc_conn_wait_ns"
	// Streaming (proto v3): operations that traveled chunked instead of
	// as one monolithic frame, and the chunk frames moved each way.
	MetricClientStreamedOps = "parafile_rpc_client_streamed_ops_total"
	MetricClientChunks      = "parafile_rpc_client_chunks_total"

	// Server side: the mirrored series plus connection and open-file
	// gauges and a per-code error counter.
	MetricServerRequests  = "parafile_rpc_server_requests_total"
	MetricServerRequestNs = "parafile_rpc_server_request_ns"
	MetricServerInflight  = "parafile_rpc_server_inflight"
	MetricServerRecvBytes = "parafile_rpc_server_received_bytes_total"
	MetricServerSentBytes = "parafile_rpc_server_sent_bytes_total"
	MetricServerErrors    = "parafile_rpc_server_errors_total"
	MetricServerConns     = "parafile_rpc_server_connections"
	MetricServerFiles     = "parafile_rpc_server_open_files"
	// Streaming (proto v3), mirrored server-side.
	MetricServerStreams = "parafile_rpc_server_streams_total"
	MetricServerChunks  = "parafile_rpc_server_chunks_total"
	// MetricPoolDiscards is the shared buffer-pool discard series:
	// every pool's retention-cap drops surface under one name,
	// distinguished by a lowercase kind label — {kind="frame"} mirrors
	// the process-wide FramePoolDiscards counter (refreshed on the
	// server request path), {kind="msgbuf"} the clusterfile message
	// buffers, {kind="retired"} the connections Client.Retire closes
	// when a placement refresh drops a node from the map. Each kind is
	// bound exactly once, at metrics construction, never at the refresh
	// sites.
	MetricPoolDiscards = "parafile_pool_discards"

	// Circuit breaker (per I/O node, labelled by address): the state
	// gauge (0 closed, 1 open, 2 half-open), transitions to open,
	// half-open Ping probes, and calls fast-failed while open.
	MetricBreakerState     = "parafile_rpc_breaker_state"
	MetricBreakerOpens     = "parafile_rpc_breaker_opens_total"
	MetricBreakerProbes    = "parafile_rpc_breaker_probes_total"
	MetricBreakerFastFails = "parafile_rpc_breaker_fastfails_total"
)

// reqTypes are the request message types with per-type volume series.
var reqTypes = []byte{MsgCreateFile, MsgSetView, MsgWriteSegs, MsgReadSegs, MsgStat, MsgClose, MsgPing, MsgHello, MsgChecksum, MsgWriteStream, MsgReadStream, MsgTraced, MsgSpans, MsgEpoch, MsgMetaCreate, MsgMetaOpen, MsgMetaList, MsgMetaRemove, MsgMetaCommit, MsgMetaExtend, MsgMetaNodes, MsgMetaNode}

func bindPerType(reg *obs.Registry, name string) map[byte]*obs.Counter {
	m := make(map[byte]*obs.Counter, len(reqTypes))
	for _, t := range reqTypes {
		m[t] = reg.Counter(fmt.Sprintf(`%s{type="%s"}`, name, MsgName(t)))
	}
	return m
}

type clientMetrics struct {
	requests    map[byte]*obs.Counter
	requestNs   *obs.Histogram
	inflight    *obs.Gauge
	sentBytes   *obs.Counter
	recvBytes   *obs.Counter
	retries     *obs.Counter
	timeouts    *obs.Counter
	failures    *obs.Counter
	shed        *obs.Counter
	paced       *obs.Counter
	dials       *obs.Counter
	connWaitNs  *obs.Histogram
	streamedW   *obs.Counter
	streamedR   *obs.Counter
	chunksSent  *obs.Counter
	chunksRecvd *obs.Counter
	// poolRetired counts connections closed by Client.Retire when a
	// placement refresh drops the node from the map — a third discard
	// kind alongside the frame and msgbuf retention caps.
	poolRetired *obs.Counter
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		requests:    bindPerType(reg, MetricClientRequests),
		requestNs:   reg.Histogram(MetricClientRequestNs, obs.LatencyBuckets()),
		inflight:    reg.Gauge(MetricClientInflight),
		sentBytes:   reg.Counter(MetricClientSentBytes),
		recvBytes:   reg.Counter(MetricClientRecvBytes),
		retries:     reg.Counter(MetricClientRetries),
		timeouts:    reg.Counter(MetricClientTimeouts),
		failures:    reg.Counter(MetricClientFailures),
		shed:        reg.Counter(MetricClientShed),
		paced:       reg.Counter(MetricClientPaced),
		dials:       reg.Counter(MetricClientDials),
		connWaitNs:  reg.Histogram(MetricClientConnWaitNs, obs.LatencyBuckets()),
		streamedW:   reg.Counter(MetricClientStreamedOps + `{dir="write"}`),
		streamedR:   reg.Counter(MetricClientStreamedOps + `{dir="read"}`),
		chunksSent:  reg.Counter(MetricClientChunks + `{dir="sent"}`),
		chunksRecvd: reg.Counter(MetricClientChunks + `{dir="received"}`),
		poolRetired: reg.Counter(MetricPoolDiscards + `{kind="retired"}`),
	}
}

type serverMetrics struct {
	requests     map[byte]*obs.Counter
	requestNs    *obs.Histogram
	inflight     *obs.Gauge
	recvBytes    *obs.Counter
	sentBytes    *obs.Counter
	errors       map[uint64]*obs.Counter
	conns        *obs.Gauge
	files        *obs.Gauge
	streamsW     *obs.Counter
	streamsR     *obs.Counter
	chunksSent   *obs.Counter
	chunksRecvd  *obs.Counter
	poolDiscards *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	codes := map[uint64]string{
		ErrCodeBadRequest:        "bad_request",
		ErrCodeUnknownFile:       "unknown_file",
		ErrCodeUnknownProjection: "unknown_projection",
		ErrCodeIO:                "io",
		ErrCodeShuttingDown:      "shutting_down",
		ErrCodeStalePlacement:    "stale_placement",
		ErrCodeOverloaded:        "overloaded",
	}
	errs := make(map[uint64]*obs.Counter, len(codes))
	for code, label := range codes {
		errs[code] = reg.Counter(fmt.Sprintf(`%s{code="%s"}`, MetricServerErrors, label))
	}
	return serverMetrics{
		requests:     bindPerType(reg, MetricServerRequests),
		requestNs:    reg.Histogram(MetricServerRequestNs, obs.LatencyBuckets()),
		inflight:     reg.Gauge(MetricServerInflight),
		recvBytes:    reg.Counter(MetricServerRecvBytes),
		sentBytes:    reg.Counter(MetricServerSentBytes),
		errors:       errs,
		conns:        reg.Gauge(MetricServerConns),
		files:        reg.Gauge(MetricServerFiles),
		streamsW:     reg.Counter(MetricServerStreams + `{dir="write"}`),
		streamsR:     reg.Counter(MetricServerStreams + `{dir="read"}`),
		chunksSent:   reg.Counter(MetricServerChunks + `{dir="sent"}`),
		chunksRecvd:  reg.Counter(MetricServerChunks + `{dir="received"}`),
		poolDiscards: reg.Gauge(MetricPoolDiscards + `{kind="frame"}`),
	}
}

// errCounter returns the counter of a code (nil, hence a no-op, for
// unknown codes or an unbound registry).
func (m *serverMetrics) errCounter(code uint64) *obs.Counter { return m.errors[code] }

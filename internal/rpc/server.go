package rpc

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/codec"
	"parafile/internal/obs"
	"parafile/internal/qos"
	"parafile/internal/redist"
)

// server.go is the I/O-node daemon core: a concurrent TCP server that
// hosts the subfile Storage backends of one node and executes the
// view-driven scatter/gather requests against them. cmd/parafiled
// wraps it with flags and signal handling; tests run it in-process on
// a loopback listener.

// ServerConfig configures an I/O-node server.
type ServerConfig struct {
	// DataDir roots the subfile stores on disk (one file per subfile,
	// like the original Clusterfile I/O nodes). Empty keeps subfiles in
	// memory.
	DataDir string
	// MaxFrame bounds accepted frame bodies (DefaultMaxFrame when 0).
	MaxFrame int64
	// MaxProtoVersion caps the protocol generation the server speaks
	// (0 means the build's MaxProtoVersion). Setting 1 emulates a
	// pre-negotiation daemon: MsgHello is an unknown message and v2
	// frames are rejected — the downgrade path the client must survive.
	MaxProtoVersion int
	// Metrics receives the server-side RPC series; nil records nothing.
	Metrics *obs.Registry
	// Trace advertises FeatureTrace in the hello exchange and opens
	// server-side child spans (decode, lock wait, scatter/gather,
	// stream stalls, fsync) for requests that carry trace IDs. Off by
	// default: a non-tracing server answers hellos byte-identically to
	// a pre-tracing build.
	Trace bool
	// Node labels this server's spans and log lines (defaults to
	// Tracer.Node(), else "ion").
	Node string
	// Tracer, when non-nil, additionally retains this server's
	// completed request spans for its own /debug/trace endpoint.
	Tracer *obs.Tracer
	// Log receives structured server events (slow requests, faults);
	// nil logs nothing.
	Log *slog.Logger
	// SlowOp logs a structured warning through Log for any request
	// slower than this threshold (0 disables).
	SlowOp time.Duration
	// QoS, when non-nil, runs every request through admission control:
	// data-plane requests are charged against the limiter's in-flight,
	// memory and per-tenant quota bounds (queueing under the fair-share
	// scheduler when the daemon is busy, shedding with a typed
	// ErrCodeOverloaded answer under sustained pressure), while
	// control-plane requests bypass the queue so pings, stats and epoch
	// fencing survive data-plane overload. The tenant key is the name
	// the connection negotiated via FeatureTenant (legacy connections
	// fall into the default class). Nil admits everything.
	QoS *qos.Limiter
}

// Server hosts subfile stores behind the wire protocol. One Server is
// one I/O node; a deployment runs one parafiled per node.
type Server struct {
	cfg    ServerConfig
	met    serverMetrics
	maxVer byte
	node   string
	stash  *obs.SpanStash
	slow   obs.SlowOpLogger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	files    map[string]*serverFile
	projs    map[uint64]*redist.Projection
	draining atomic.Bool
	connWG   sync.WaitGroup
}

// serverFile is one file's node-local state: the stores of the
// subfiles this node hosts, guarded against concurrent connections.
type serverFile struct {
	mu     sync.Mutex
	stores map[int]clusterfile.Storage
	// epoch is the placement epoch the stores belong to (0 =
	// unversioned, legacy single-placement file). It only ratchets
	// upward, via CreateFile stamps and MsgEpoch.
	epoch uint64
	// fenced rejects epoch-stamped writes while a rebalance copies the
	// stores to their next placement; reads keep flowing at the old
	// epoch until the flip.
	fenced bool
}

// epochCheck validates a request's placement epoch against the store
// generation. Called with sf.mu held; a zero request epoch (legacy
// client) always passes.
func (sf *serverFile) epochCheck(epoch uint64, write bool) (uint64, string) {
	if epoch == 0 {
		return 0, ""
	}
	if sf.epoch != 0 && epoch != sf.epoch {
		return ErrCodeStalePlacement,
			fmt.Sprintf("request at placement epoch %d, store at %d", epoch, sf.epoch)
	}
	if write && sf.fenced {
		return ErrCodeStalePlacement,
			fmt.Sprintf("store fenced for rebalance at epoch %d", sf.epoch)
	}
	return 0, ""
}

// NewServer builds a server; call Serve with a listener to run it.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxProtoVersion <= 0 || cfg.MaxProtoVersion > MaxProtoVersion {
		cfg.MaxProtoVersion = MaxProtoVersion
	}
	node := cfg.Node
	if node == "" {
		node = cfg.Tracer.Node()
	}
	if node == "" {
		node = "ion"
	}
	s := &Server{
		cfg:    cfg,
		met:    newServerMetrics(cfg.Metrics),
		maxVer: byte(cfg.MaxProtoVersion),
		node:   node,
		slow:   obs.SlowOpLogger{Log: cfg.Log, Threshold: cfg.SlowOp},
		conns:  make(map[net.Conn]struct{}),
		files:  make(map[string]*serverFile),
		projs:  make(map[uint64]*redist.Projection),
	}
	if cfg.Trace {
		// Streamed ops park their completed spans here until the
		// client's MsgSpans drain; the bound caps what a client that
		// never drains can pin.
		s.stash = obs.NewSpanStash(1024)
	}
	return s
}

// features returns the feature bits this server grants from a
// client's requested mask.
func (s *Server) features(requested uint64) uint64 {
	granted := FeaturePlacement | FeatureTenant
	if s.cfg.Trace {
		granted |= FeatureTrace
	}
	return granted & requested
}

// qosOpOf classifies a message type for admission. Only the
// payload-bearing data-plane operations are subject to queueing and
// quotas; everything else — pings (breaker probes), stats, hellos,
// epoch fencing, checksums, metadata RPCs — is control-plane and must
// keep answering while the data plane sheds.
func qosOpOf(msgType byte) qos.Op {
	switch msgType {
	case MsgWriteSegs, MsgWriteStream:
		return qos.OpWrite
	case MsgReadSegs, MsgReadStream:
		return qos.OpRead
	}
	return qos.OpControl
}

// qosBytes is the admission cost of one unary request: the request
// frame for writes (the dominant msgbuf cost on the write path), the
// declared response size for reads. A read declaring a negative size
// (rejected as bad-request after admission) must not reach the quota
// debit, where it would credit the tenant's byte bucket.
func qosBytes(msgType byte, payload []byte) int64 {
	if msgType == MsgReadSegs {
		if req, err := DecodeReadSegs(payload); err == nil && req.N >= 0 {
			return req.N
		}
	}
	return int64(len(payload))
}

// isReplicaStoreOf reports whether name is a replica-tier store of
// base, exactly as clusterfile.ReplicaName produces them:
// base+"~r"+digits. A raw prefix match would also catch a distinct
// client file whose name merely starts with base+"~r" (e.g. "data~rX"
// alongside "data") and sweep its stores away with the base file's.
func isReplicaStoreOf(name, base string) bool {
	rest, ok := strings.CutPrefix(name, base+"~r")
	if !ok || rest == "" {
		return false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// overloadResp encodes an admission refusal: a typed
// ErrCodeOverloaded answer carrying the limiter's RetryAfter hint.
func (s *Server) overloadResp(out []byte, err error) []byte {
	s.met.errCounter(ErrCodeOverloaded).Inc()
	var ov *qos.Overload
	var retry time.Duration
	if errors.As(err, &ov) {
		retry = ov.RetryAfter
	}
	return AppendErrorRetry(out, ErrCodeOverloaded, err.Error(), retry)
}

// startSpan opens the server-side root span for one traced request
// (nil when tracing is off or the request carries no trace ID).
func (s *Server) startSpan(name string, traceID, parent uint64) *obs.Span {
	if !s.cfg.Trace || traceID == 0 {
		return nil
	}
	return obs.StartRemoteSpan("server."+name, s.node, traceID, parent)
}

// Serve accepts connections on ln until Shutdown. It returns nil after
// a graceful shutdown, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.met.conns.Add(1)
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: stop accepting, let in-flight requests
// finish (bounded by ctx), then sync and close every store. Idle
// connections are woken and closed immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake connections blocked in ReadFrame: the read loop sees the
	// draining flag on the deadline error and exits cleanly. A request
	// already being processed still writes its response first.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for name, sf := range s.files {
		sf.mu.Lock()
		for _, st := range sf.stores {
			if err := st.Close(); err != nil && drainErr == nil {
				drainErr = fmt.Errorf("rpc: closing %q: %w", name, err)
			}
		}
		sf.mu.Unlock()
		delete(s.files, name)
		s.met.files.Add(-1)
	}
	return drainErr
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.conns.Add(-1)
		conn.Close()
		s.connWG.Done()
	}()
	// tenant is the fair-share class this connection negotiated via a
	// FeatureTenant hello (empty = default class). The classic loop is
	// serial, so the hello handler may write it between requests.
	var tenant string
	for {
		body, err := ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			// EOF, peer reset, the drain wake-up, or garbage: either
			// way this connection is done.
			return
		}
		s.met.recvBytes.Add(int64(len(body) + 4))
		// A Hello asking for v3 or newer upgrades the connection to
		// multiplexed framing right after the reply.
		if muxTenant, ok := s.tryUpgradeV3(conn, body); ok {
			ReleaseFrame(body)
			s.serveMux(conn, muxTenant)
			return
		}
		// Responses mirror the request's frame version (clamped to what
		// this server speaks): a v2 request gets a checksummed v2
		// response, a v1 request a bare v1 one.
		respVer := byte(ProtoVersion)
		if len(body) > 0 && body[0] > respVer {
			respVer = body[0]
		}
		if respVer > s.maxVer {
			respVer = s.maxVer
		}
		resp := s.handle(body, &tenant)
		ReleaseFrame(body)
		err = WriteFrameV(conn, resp, respVer)
		s.met.sentBytes.Add(int64(len(resp) + 4))
		putFrameBuf(resp)
		if err != nil {
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

// tryUpgradeV3 checks whether a frame is a Hello negotiating v3 or
// newer; if so it sends the reply and reports true (plus the tenant
// the hello carried), and the caller switches the connection into
// multiplexed serving. Anything else — including a v1/v2 Hello, which
// must keep its classic one-frame semantics — reports false and takes
// the ordinary path.
func (s *Server) tryUpgradeV3(conn net.Conn, body []byte) (string, bool) {
	if s.maxVer < ProtoVersion3 || s.draining.Load() {
		return "", false
	}
	msgType, payload, err := ParseFrame(body)
	if err != nil || msgType != MsgHello || body[0] > s.maxVer {
		return "", false
	}
	want, features, tenant, err := DecodeHelloTenant(payload)
	if err != nil || want < ProtoVersion3 {
		return "", false
	}
	s.met.requests[MsgHello].Inc()
	agreed := want
	if agreed > s.maxVer {
		agreed = s.maxVer
	}
	granted := s.features(features)
	if granted&FeatureTenant == 0 {
		tenant = ""
	}
	resp := AppendHelloRespFeatures(getFrameBuf(16), agreed, granted)
	// The Hello round-trip stays on the request's own frame version;
	// only frames after it are v3. A failed reply write leaves the
	// connection broken and the mux loop exits on its first read.
	werr := WriteFrameV(conn, resp, body[0])
	s.met.sentBytes.Add(int64(len(resp) + 4))
	putFrameBuf(resp)
	_ = werr
	return tenant, true
}

// handle executes one classic-framed request and returns the encoded
// response in a pooled buffer. tenant is the connection's negotiated
// fair-share class; a hello carrying FeatureTenant updates it.
func (s *Server) handle(body []byte, tenant *string) []byte {
	out := getFrameBuf(64)
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if body[0] > s.maxVer {
		// A version-capped server refuses newer framing the same way a
		// real old daemon would.
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("protocol version %d, want %d", body[0], s.maxVer))
	}
	return s.dispatch(out, msgType, payload, nil, tenant)
}

// dispatch executes one parsed request. It is shared by the classic
// one-at-a-time connection loop and the multiplexed per-stream
// goroutines: every handler locks the state it touches, so concurrent
// dispatch is safe. sp is the server-side span of the request (nil
// for untraced requests — every handler is nil-safe).
func (s *Server) dispatch(out []byte, msgType byte, payload []byte, sp *obs.Span, tenant *string) []byte {
	start := time.Now()
	s.met.inflight.Add(1)
	defer func() {
		s.met.inflight.Add(-1)
		elapsed := time.Since(start)
		s.met.requestNs.Observe(elapsed.Nanoseconds())
		s.met.poolDiscards.Set(FramePoolDiscards())
		// The traced envelope logs itself with the inner request's name
		// and real trace ID; logging the wrapper too would double up.
		if msgType != MsgTraced {
			s.slow.Observe("rpc."+MsgName(msgType), sp.TraceID(), elapsed, nil)
		}
	}()
	s.met.requests[msgType].Inc()
	if s.draining.Load() {
		return s.errResp(out, ErrCodeShuttingDown, "server draining")
	}
	if msgType == MsgTraced {
		return s.handleTraced(out, payload, tenant)
	}
	return s.route(out, msgType, payload, sp, tenant)
}

// route is the request-type switch shared by dispatch and the traced
// envelope (which re-enters with the inner request and a live span).
// Admission happens here, so every execution path — classic loop, mux
// unary goroutines, traced envelopes — charges the limiter exactly
// once per request, after the draining check and before any state is
// touched.
func (s *Server) route(out []byte, msgType byte, payload []byte, sp *obs.Span, tenant *string) []byte {
	if s.cfg.QoS != nil {
		var name string
		if tenant != nil {
			name = *tenant
		}
		rel, err := s.cfg.QoS.Acquire(context.Background(), name, qosOpOf(msgType), qosBytes(msgType, payload))
		if err != nil {
			return s.overloadResp(out, err)
		}
		defer rel()
	}
	switch msgType {
	case MsgCreateFile:
		return s.handleCreateFile(out, payload)
	case MsgSetView:
		return s.handleSetView(out, payload)
	case MsgWriteSegs:
		return s.handleWriteSegs(out, payload, sp)
	case MsgReadSegs:
		return s.handleReadSegs(out, payload, sp)
	case MsgStat:
		return s.handleStat(out, payload)
	case MsgClose:
		return s.handleClose(out, payload, sp)
	case MsgPing:
		// Liveness probe (breaker half-open): no file state touched.
		if err := wantEmpty(payload); err != nil {
			return s.errResp(out, ErrCodeBadRequest, err.Error())
		}
		return AppendOK(out)
	case MsgHello:
		// A version-capped (v1-emulating) server falls through to the
		// unknown-message error below, exactly like a real old daemon.
		if s.maxVer >= ProtoVersion2 {
			return s.handleHello(out, payload, tenant)
		}
	case MsgChecksum:
		return s.handleChecksum(out, payload, sp)
	case MsgSpans:
		return s.handleSpans(out, payload)
	case MsgEpoch:
		return s.handleEpoch(out, payload)
	}
	return s.errResp(out, ErrCodeBadRequest, fmt.Sprintf("unknown message type %#x", msgType))
}

// handleTraced runs a MsgTraced envelope: the inner request executes
// under a span adopted into the caller's trace, and the completed
// records travel back piggybacked ahead of the inner response.
func (s *Server) handleTraced(out, payload []byte, tenant *string) []byte {
	traceID, parent, innerType, inner, err := DecodeTraced(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if innerType == MsgTraced {
		return s.errResp(out, ErrCodeBadRequest, "nested traced envelope")
	}
	s.met.requests[innerType].Inc()
	start := time.Now()
	sp := s.startSpan(MsgName(innerType), traceID, parent)
	s.cfg.Tracer.Adopt(sp)
	resp := s.route(getFrameBuf(64), innerType, inner, sp, tenant)
	if len(resp) >= 2 && resp[1] == MsgError {
		sp.Fail()
	}
	s.slow.Observe("rpc."+MsgName(innerType), traceID, time.Since(start), nil)
	s.cfg.Tracer.FinishOp(sp)
	out = AppendTracedResp(out, sp.Records(nil), resp)
	putFrameBuf(resp)
	return out
}

// handleSpans drains the span records streamed operations stashed
// under a trace ID.
func (s *Server) handleSpans(out, payload []byte) []byte {
	traceID, err := DecodeSpansReq(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	return AppendSpansResp(out, s.stash.Take(traceID))
}

func (s *Server) handleHello(out, payload []byte, tenant *string) []byte {
	want, features, helloTenant, err := DecodeHelloTenant(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	agreed := want
	if agreed > s.maxVer {
		agreed = s.maxVer
	}
	granted := s.features(features)
	if granted&FeatureTenant != 0 && tenant != nil {
		*tenant = helloTenant
	}
	return AppendHelloRespFeatures(out, agreed, granted)
}

func (s *Server) handleChecksum(out, payload []byte, sp *obs.Span) []byte {
	req, err := DecodeChecksum(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if req.Off < 0 || req.N < 0 {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("bad checksum range [%d,+%d)", req.Off, req.N))
	}
	sf, st, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		return s.errResp(out, code, msg)
	}
	lw := sp.StartChild("lock_wait")
	sf.mu.Lock()
	lw.End()
	defer sf.mu.Unlock()
	// Read-only: bytes beyond the store's length count as zeroes, so no
	// grow — scrubbing must never mutate what it audits.
	sum, err := clusterfile.ChecksumRange(st, req.Off, req.N)
	if err != nil {
		return s.errResp(out, ErrCodeIO, err.Error())
	}
	return AppendChecksumResp(out, sum)
}

func (s *Server) errResp(out []byte, code uint64, msg string) []byte {
	s.met.errCounter(code).Inc()
	return AppendError(out, code, msg)
}

// storageFactory returns the factory for one CreateFile request.
func (s *Server) storageFactory(reopen bool) clusterfile.StorageFactory {
	if s.cfg.DataDir == "" {
		return clusterfile.MemStorageFactory
	}
	if reopen {
		return clusterfile.ReopenDirStorageFactory(s.cfg.DataDir)
	}
	return clusterfile.DirStorageFactory(s.cfg.DataDir)
}

func (s *Server) handleCreateFile(out, payload []byte) []byte {
	req, err := DecodeCreateFile(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if _, err := codec.DecodeFile(req.Phys); err != nil {
		return s.errResp(out, ErrCodeBadRequest, fmt.Sprintf("physical partition: %v", err))
	}
	s.mu.Lock()
	sf := s.files[req.Name]
	if sf == nil {
		sf = &serverFile{stores: make(map[int]clusterfile.Storage)}
		s.files[req.Name] = sf
		s.met.files.Add(1)
	}
	s.mu.Unlock()

	sf.mu.Lock()
	defer sf.mu.Unlock()
	// An epoch-stamped open versions the stores: the epoch only
	// ratchets upward, so a laggard's reopen at an old epoch cannot
	// roll a store generation back.
	if req.Epoch > sf.epoch {
		sf.epoch = req.Epoch
	}
	factory := s.storageFactory(req.Reopen)
	for _, sub := range req.Subfiles {
		if _, open := sf.stores[sub]; open {
			// Already open in this session (a retried CreateFile, or a
			// second client of the same file): keep the live store
			// rather than truncating data out from under it.
			continue
		}
		st, err := factory(req.Name, sub)
		if err != nil {
			return s.errResp(out, ErrCodeIO, fmt.Sprintf("subfile %d: %v", sub, err))
		}
		sf.stores[sub] = st
	}
	return AppendOK(out)
}

// handleEpoch ratchets the placement epoch of every store of a file
// (base name plus its replica stores) and sets the write fence. A
// daemon hosting no store of the file answers OK — the rebalance
// driver fans the fence out to every node of the old placement without
// tracking which subfiles each one holds.
func (s *Server) handleEpoch(out, payload []byte) []byte {
	req, err := DecodeEpoch(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if req.Epoch == 0 {
		return s.errResp(out, ErrCodeBadRequest, "zero placement epoch")
	}
	s.mu.Lock()
	var targets []*serverFile
	for name, sf := range s.files {
		if name == req.File || isReplicaStoreOf(name, req.File) {
			targets = append(targets, sf)
		}
	}
	s.mu.Unlock()
	for _, sf := range targets {
		sf.mu.Lock()
		if req.Epoch > sf.epoch {
			sf.epoch = req.Epoch
		}
		sf.fenced = req.Fence
		sf.mu.Unlock()
	}
	return AppendOK(out)
}

func (s *Server) handleSetView(out, payload []byte) []byte {
	req, err := DecodeSetView(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if got := Fingerprint(req.Proj); got != req.Fingerprint {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("projection fingerprint %#x does not match payload (%#x)", req.Fingerprint, got))
	}
	proj, err := redist.DecodeProjection(req.Proj)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	s.mu.Lock()
	s.projs[req.Fingerprint] = proj
	s.mu.Unlock()
	return AppendOK(out)
}

// lookup resolves (file, subfile) to its open store, or an error
// response code.
func (s *Server) lookup(file string, subfile int64) (*serverFile, clusterfile.Storage, uint64, string) {
	s.mu.Lock()
	sf := s.files[file]
	s.mu.Unlock()
	if sf == nil {
		return nil, nil, ErrCodeUnknownFile, fmt.Sprintf("file %q not open", file)
	}
	sf.mu.Lock()
	st := sf.stores[int(subfile)]
	sf.mu.Unlock()
	if st == nil {
		return nil, nil, ErrCodeUnknownFile, fmt.Sprintf("subfile %d of %q not hosted here", subfile, file)
	}
	return sf, st, 0, ""
}

// projection resolves a nonzero fingerprint.
func (s *Server) projection(fp uint64) (*redist.Projection, bool) {
	s.mu.Lock()
	p, ok := s.projs[fp]
	s.mu.Unlock()
	return p, ok
}

func (s *Server) handleWriteSegs(out, payload []byte, sp *obs.Span) []byte {
	dsp := sp.StartChild("decode")
	req, err := DecodeWriteSegs(payload)
	dsp.End()
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if req.Hi < req.Lo-1 || req.Lo < 0 {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("bad segment window [%d,%d]", req.Lo, req.Hi))
	}
	var proj *redist.Projection
	if req.Fingerprint != 0 {
		var ok bool
		if proj, ok = s.projection(req.Fingerprint); !ok {
			return s.errResp(out, ErrCodeUnknownProjection,
				fmt.Sprintf("projection %#x not registered", req.Fingerprint))
		}
	} else if len(req.Data) != 0 && int64(len(req.Data)) != req.Hi-req.Lo+1 {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("contiguous write of %d bytes into window [%d,%d]", len(req.Data), req.Lo, req.Hi))
	}
	sf, st, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		return s.errResp(out, code, msg)
	}
	lw := sp.StartChild("lock_wait")
	sf.mu.Lock()
	lw.End()
	defer sf.mu.Unlock()
	if code, msg := sf.epochCheck(req.Epoch, true); code != 0 {
		return s.errResp(out, code, msg)
	}
	if err := st.EnsureLen(req.Hi + 1); err != nil {
		return s.errResp(out, ErrCodeIO, err.Error())
	}
	if len(req.Data) == 0 {
		return AppendOK(out)
	}
	ssp := sp.StartChild("scatter")
	if proj == nil {
		err = st.WriteAt(req.Data, req.Lo)
	} else {
		err = clusterfile.ScatterRange(st, req.Data, proj, req.Lo, req.Hi)
	}
	ssp.End()
	if err != nil {
		return s.errResp(out, ErrCodeIO, err.Error())
	}
	return AppendOK(out)
}

func (s *Server) handleReadSegs(out, payload []byte, sp *obs.Span) []byte {
	dsp := sp.StartChild("decode")
	req, err := DecodeReadSegs(payload)
	dsp.End()
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	if req.N < 0 || req.Hi < req.Lo-1 || req.Lo < 0 || req.N > s.cfg.MaxFrame {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("bad read window [%d,%d] of %d bytes", req.Lo, req.Hi, req.N))
	}
	var proj *redist.Projection
	if req.Fingerprint != 0 {
		var ok bool
		if proj, ok = s.projection(req.Fingerprint); !ok {
			return s.errResp(out, ErrCodeUnknownProjection,
				fmt.Sprintf("projection %#x not registered", req.Fingerprint))
		}
		if want := proj.BytesIn(req.Lo, req.Hi); want != req.N {
			return s.errResp(out, ErrCodeBadRequest,
				fmt.Sprintf("projection selects %d bytes in [%d,%d], request asks for %d",
					want, req.Lo, req.Hi, req.N))
		}
	} else if req.N != req.Hi-req.Lo+1 {
		return s.errResp(out, ErrCodeBadRequest,
			fmt.Sprintf("contiguous read of %d bytes from window [%d,%d]", req.N, req.Lo, req.Hi))
	}
	sf, st, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		return s.errResp(out, code, msg)
	}
	lw := sp.StartChild("lock_wait")
	sf.mu.Lock()
	lw.End()
	defer sf.mu.Unlock()
	if code, msg := sf.epochCheck(req.Epoch, false); code != 0 {
		return s.errResp(out, code, msg)
	}
	// Grow first, like the in-process read path: unwritten holes read
	// as zeroes, like any sparse file.
	if err := st.EnsureLen(req.Hi + 1); err != nil {
		return s.errResp(out, ErrCodeIO, err.Error())
	}
	data := getFrameBuf(int(req.N))[:req.N]
	defer putFrameBuf(data)
	gsp := sp.StartChild("gather")
	if proj == nil {
		err = st.ReadAt(data, req.Lo)
	} else {
		err = clusterfile.GatherRange(data, st, proj, req.Lo, req.Hi)
	}
	gsp.End()
	if err != nil {
		return s.errResp(out, ErrCodeIO, err.Error())
	}
	return AppendData(out, data)
}

func (s *Server) handleStat(out, payload []byte) []byte {
	req, err := DecodeStat(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	sf, st, code, msg := s.lookup(req.File, req.Subfile)
	if code != 0 {
		return s.errResp(out, code, msg)
	}
	sf.mu.Lock()
	n := st.Len()
	sf.mu.Unlock()
	return AppendStatResp(out, n)
}

func (s *Server) handleClose(out, payload []byte, sp *obs.Span) []byte {
	req, err := DecodeClose(payload)
	if err != nil {
		return s.errResp(out, ErrCodeBadRequest, err.Error())
	}
	s.mu.Lock()
	var targets []*serverFile
	if sf := s.files[req.File]; sf != nil {
		targets = append(targets, sf)
		delete(s.files, req.File)
		s.met.files.Add(-1)
	}
	if req.Remove {
		// A removing close also sweeps the file's replica stores
		// (name~r<r>): the rebalance GC retires a superseded store
		// generation whole, replicas included.
		for name, sf := range s.files {
			if isReplicaStoreOf(name, req.File) {
				targets = append(targets, sf)
				delete(s.files, name)
				s.met.files.Add(-1)
			}
		}
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		// Unknown file: already closed (a retried Close). Idempotent
		// success keeps blind client retry safe.
		return AppendOK(out)
	}
	var firstErr error
	for _, sf := range targets {
		lw := sp.StartChild("lock_wait")
		sf.mu.Lock()
		lw.End()
		// Closing a disk-backed store syncs it — the op's fsync cost.
		// A removing close then deletes the backing file, reclaiming
		// the superseded generation's disk.
		fsp := sp.StartChild("fsync")
		for _, st := range sf.stores {
			if err := st.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			if req.Remove {
				if err := clusterfile.RemoveStorage(st); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		fsp.End()
		sf.mu.Unlock()
	}
	if firstErr != nil {
		return s.errResp(out, ErrCodeIO, firstErr.Error())
	}
	return AppendOK(out)
}

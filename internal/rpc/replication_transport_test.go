package rpc_test

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// replication_transport_test.go runs the replication layer over real
// TCP daemons: a daemon dying between the write and the reads must be
// invisible to an R=2 client except for the failover counter, and a
// degraded open must hand out a usable file around the dead daemon
// instead of refusing to connect.

// startStoppableDaemon is startDaemon with an explicit, idempotent
// stop so a test can kill one daemon mid-flight.
func startStoppableDaemon(t *testing.T) (string, func()) {
	t.Helper()
	srv := rpc.NewServer(rpc.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-done; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// fastFailClient keeps dead-daemon calls from stalling the test.
func fastFailClient() rpc.ClientConfig {
	return rpc.ClientConfig{
		MaxRetries:       1,
		BackoffBase:      time.Millisecond,
		DialTimeout:      500 * time.Millisecond,
		ReadTimeout:      2 * time.Second,
		WriteTimeout:     2 * time.Second,
		BreakerThreshold: -1,
	}
}

func TestReplicatedTransportSurvivesDaemonDeath(t *testing.T) {
	addr0, _ := startStoppableDaemon(t)
	addr1, stop1 := startStoppableDaemon(t)
	addr2, _ := startStoppableDaemon(t)

	reg := obs.NewRegistry()
	tr, err := rpc.NewTransport([]string{addr0, addr1, addr2}, rpc.Options{Client: fastFailClient()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := clusterfile.DefaultConfig()
	cfg.Replication = 2
	cfg.Transport = tr
	cfg.Metrics = reg

	const n = 32
	w, err := bench.NewWorkloadWithConfig("c", n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d write: %v", i, op.Err)
		}
	}
	// Healthy snapshot of every subfile through the failover read path.
	healthy := make([][]byte, w.File.Phys.Pattern.Len())
	for i := range healthy {
		if healthy[i], err = w.File.ReadSubfile(i); err != nil {
			t.Fatalf("subfile %d: %v", i, err)
		}
	}

	// With 4 I/O nodes over 3 daemons (round-robin), daemon 1 is
	// exactly I/O node 1. Kill it: replica 0 of subfile 1 and replica 1
	// of subfile 0 are gone, every byte still has a live placement.
	stop1()

	per := int64(n * n / 4)
	for i, v := range w.Views {
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		w.Cluster.RunAll()
		if op.Err != nil {
			t.Fatalf("view %d read with daemon 1 dead: %v", i, op.Err)
		}
		if !bytes.Equal(out, w.ViewBuf(i)) {
			t.Fatalf("view %d read differs with daemon 1 dead", i)
		}
	}
	for i := range healthy {
		b, err := w.File.ReadSubfile(i)
		if err != nil {
			t.Fatalf("subfile %d with daemon 1 dead: %v", i, err)
		}
		if !bytes.Equal(b, healthy[i]) {
			t.Fatalf("subfile %d differs with daemon 1 dead", i)
		}
	}
	if reg.Counter(clusterfile.MetricReplicaFailovers).Value() == 0 {
		t.Error("reads around the dead daemon recorded no failovers")
	}
}

func TestDegradedOpenAroundDeadDaemon(t *testing.T) {
	live, _ := startStoppableDaemon(t)
	// A dead endpoint: reserve a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cols, err := part.ColBlocks(16, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	phys := part.MustFile(0, cols)
	ctx := context.Background()

	// Strict open refuses the dead daemon.
	strict, err := rpc.NewTransport([]string{live, dead}, rpc.Options{Client: fastFailClient()})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if _, err := strict.Open(ctx, "f", phys, []int{0, 1}); err == nil {
		t.Fatal("strict open succeeded with a dead daemon")
	}

	// Degraded open hands out handles; the dead daemon's subfile fails
	// per operation, the live one works.
	tr, err := rpc.NewTransport([]string{live, dead}, rpc.Options{Client: fastFailClient(), DegradedOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	handles, err := tr.Open(ctx, "f", phys, []int{0, 1})
	if err != nil {
		t.Fatalf("degraded open failed: %v", err)
	}
	if len(handles) != 2 {
		t.Fatalf("%d handles, want 2", len(handles))
	}
	if err := handles[0].EnsureLen(ctx, 8); err != nil {
		t.Fatalf("live subfile errors: %v", err)
	}
	if err := handles[0].WriteAt(ctx, []byte("abcdefgh"), 0); err != nil {
		t.Fatalf("live subfile write: %v", err)
	}
	if sum, err := handles[0].Checksum(ctx, 0, 8); err != nil || sum == 0 {
		t.Fatalf("live subfile checksum = (%d, %v)", sum, err)
	}
	if err := handles[1].EnsureLen(ctx, 8); err == nil {
		t.Fatal("dead daemon's subfile accepted a write")
	}
	if _, err := handles[1].Len(ctx); err == nil {
		t.Fatal("dead daemon's subfile answered a stat")
	}
	for _, h := range handles {
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

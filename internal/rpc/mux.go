package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"parafile/internal/codec"
	"parafile/internal/obs"
)

// mux.go is the client side of proto v3: one multiplexed connection
// per node carrying every operation as a tagged stream. A single
// reader goroutine demultiplexes incoming frames onto per-stream
// channels; writers serialize whole frames under a mutex and send them
// vectored (WriteFrameVec), so a chunk's data bytes go from the
// caller's buffer to the socket without an assembly copy.
//
// Failure model: any transport error on the connection — a write
// error, a read error, a corrupt frame, a stream that timed out
// waiting for its next frame — kills the whole muxConn. Every waiting
// stream observes the death via the done channel, and the per-call
// retry loop (client.run) dials a fresh muxConn. That is the same
// drop-and-retry contract the classic pooled path has, widened to all
// streams sharing the connection; it is safe for the same reason —
// every request in the protocol is idempotent.

// streamWindow bounds buffered frames per stream: the reader parks
// once a stream is this far behind, which propagates TCP backpressure
// to the sender — the bounded-channel half of the pipeline.
const streamWindow = 4

// errMuxTimeout is a per-stream deadline expiry. It implements
// net.Error so the retry loop counts it as a timeout.
type errMuxTimeout struct{ addr string }

func (e errMuxTimeout) Error() string {
	return fmt.Sprintf("rpc: stream read from %s timed out", e.addr)
}
func (e errMuxTimeout) Timeout() bool   { return true }
func (e errMuxTimeout) Temporary() bool { return true }

var _ net.Error = errMuxTimeout{}

// muxStream is one in-flight operation on a muxConn.
type muxStream struct {
	id uint64
	// ch delivers this stream's frames from the reader goroutine.
	ch chan respFrame
	// gone closes when the stream is deregistered, so the reader never
	// blocks forever on an abandoned stream.
	gone chan struct{}
}

// muxConn is one multiplexed v3 connection.
type muxConn struct {
	conn net.Conn
	ver  byte
	cfg  *ClientConfig
	// features is the daemon-granted feature bitmask from the Hello.
	features uint64

	// wmu serializes frame writes; each frame is written whole.
	wmu sync.Mutex

	mu      sync.Mutex
	streams map[uint64]*muxStream
	nextID  uint64
	err     error
	done    chan struct{}
}

func newMuxConn(conn *clientConn, cfg *ClientConfig) *muxConn {
	m := &muxConn{
		conn:     conn.Conn,
		ver:      conn.ver,
		cfg:      cfg,
		features: conn.features,
		streams:  make(map[uint64]*muxStream),
		done:     make(chan struct{}),
	}
	go m.readLoop()
	return m
}

func (m *muxConn) alive() bool {
	select {
	case <-m.done:
		return false
	default:
		return true
	}
}

func (m *muxConn) error() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		return fmt.Errorf("rpc: connection to %s failed", m.cfg.Addr)
	}
	return m.err
}

// fail kills the connection: the first error wins, every stream's
// recv observes done, and the reader goroutine exits on the closed
// socket.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
	m.mu.Unlock()
	m.conn.Close()
}

// openStream registers a fresh stream id.
func (m *muxConn) openStream() (*muxStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	m.nextID++
	st := &muxStream{
		id:   m.nextID,
		ch:   make(chan respFrame, streamWindow),
		gone: make(chan struct{}),
	}
	m.streams[st.id] = st
	return st, nil
}

// closeStream deregisters a stream and releases any frames already
// delivered to it; later frames for the id are dropped by the reader.
func (m *muxConn) closeStream(st *muxStream) {
	m.mu.Lock()
	delete(m.streams, st.id)
	m.mu.Unlock()
	close(st.gone)
	for {
		select {
		case f := <-st.ch:
			putFrameBuf(f.body)
		default:
			return
		}
	}
}

// send writes one frame, vectored, under the write lock. A transport
// error kills the connection.
func (m *muxConn) send(ctx context.Context, parts ...[]byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	select {
	case <-m.done:
		return m.error()
	default:
	}
	if err := m.conn.SetWriteDeadline(deadline(ctx, m.cfg.WriteTimeout)); err != nil {
		m.fail(err)
		return err
	}
	if err := WriteFrameVec(m.conn, m.ver, parts...); err != nil {
		m.fail(err)
		return err
	}
	return nil
}

// recv waits for the stream's next frame. ReadTimeout applies per
// frame (as on the classic path); an expiry kills the connection so
// the retry loop redials instead of inheriting a wedged stream.
func (st *muxStream) recv(ctx context.Context, m *muxConn) (respFrame, error) {
	timer := time.NewTimer(m.cfg.ReadTimeout)
	defer timer.Stop()
	select {
	case f := <-st.ch:
		return f, nil
	case <-m.done:
		return respFrame{}, m.error()
	case <-ctx.Done():
		return respFrame{}, ctx.Err()
	case <-timer.C:
		err := errMuxTimeout{m.cfg.Addr}
		m.fail(err)
		return respFrame{}, err
	}
}

// readLoop demultiplexes incoming frames onto stream channels. Frames
// for unknown (already closed) streams are dropped; any read or parse
// error kills the connection.
func (m *muxConn) readLoop() {
	for {
		body, err := ReadFrame(m.conn, m.cfg.MaxFrame)
		if err != nil {
			m.fail(err)
			return
		}
		msgType, rest, err := ParseFrame(body)
		var sid uint64
		var payload []byte
		if err == nil {
			sid, payload, err = splitStreamFrame(rest)
		}
		if err != nil {
			putFrameBuf(body)
			m.fail(err)
			return
		}
		m.mu.Lock()
		st := m.streams[sid]
		m.mu.Unlock()
		if st == nil {
			putFrameBuf(body)
			continue
		}
		select {
		case st.ch <- respFrame{body: body, msgType: msgType, payload: payload}:
		case <-st.gone:
			putFrameBuf(body)
		case <-m.done:
			putFrameBuf(body)
			return
		}
	}
}

// muxExchange is one unary request/response over the mux: the encoded
// request's [ver][type] prefix is replaced by a v3 stream header and
// the rest travels untouched (vectored, no re-encode). A traced call
// grows the prefix into a MsgTraced envelope head — the inner request
// bytes still travel straight from the caller's buffer, no copy.
func (c *Client) muxExchange(ctx context.Context, m *muxConn, reqType byte, req []byte) (respFrame, error) {
	st, err := m.openStream()
	if err != nil {
		return respFrame{}, err
	}
	defer m.closeStream(st)
	sp := c.traceSpan(ctx, reqType, m.features)
	var prefix []byte
	if sp != nil {
		prefix = appendStreamHdr(getFrameBuf(48), MsgTraced, st.id)
		prefix = codec.AppendUvarint(prefix, sp.TraceID())
		prefix = codec.AppendUvarint(prefix, sp.SpanID())
		prefix = append(prefix, reqType)
	} else {
		prefix = appendStreamHdr(getFrameBuf(16), reqType, st.id)
	}
	sent := len(prefix) + len(req) - 2
	err = m.send(ctx, prefix, req[2:])
	putFrameBuf(prefix)
	if err != nil {
		return respFrame{}, err
	}
	c.met.sentBytes.Add(int64(sent + 4))
	f, err := st.recv(ctx, m)
	if err != nil {
		return respFrame{}, err
	}
	c.met.recvBytes.Add(int64(len(f.body) + 4))
	return unwrapTraced(sp, f)
}

// abortStream tells the server to tear a write stream down without a
// reply (context cancellation, early server error). Best effort: a
// failed abort already killed the connection, which tears down
// server-side state just as finally.
func (c *Client) abortStream(m *muxConn, st *muxStream) {
	hdr := appendChunkHdr(getFrameBuf(16), MsgWriteChunk, st.id, flagChunkAbort)
	m.send(context.Background(), hdr)
	putFrameBuf(hdr)
}

// writeStreamed sends req as a chunked v3 stream through the shared
// retry machinery. streamed=false reports a peer below v3: nothing was
// sent and the caller falls back to the monolithic frame.
func (c *Client) writeStreamed(ctx context.Context, req *WriteSegsReq) (err error, streamed bool) {
	streamed = true
	err = c.run(ctx, MsgWriteStream, func(ctx context.Context) error {
		m, merr := c.getMux(ctx)
		if merr == errNoMux {
			streamed = false
			return nil
		}
		if merr != nil {
			return merr
		}
		return c.writeStreamOnce(ctx, m, req)
	})
	if !streamed {
		return nil, false
	}
	if err == nil {
		c.met.streamedW.Inc()
	}
	return err, true
}

// writeStreamOnce is one attempt: open the stream, ship the data as
// bounded chunks, await the single server reply.
func (c *Client) writeStreamOnce(ctx context.Context, m *muxConn, req *WriteSegsReq) error {
	st, err := m.openStream()
	if err != nil {
		return err
	}
	defer m.closeStream(st)
	sp := c.traceSpan(ctx, MsgWriteStream, m.features)
	hdr := AppendWriteStream(getFrameBuf(64), st.id, &WriteStreamReq{
		File:        req.File,
		Subfile:     req.Subfile,
		Fingerprint: req.Fingerprint,
		Lo:          req.Lo,
		Hi:          req.Hi,
		Total:       int64(len(req.Data)),
		TraceID:     sp.TraceID(),
		SpanID:      sp.SpanID(),
		Epoch:       req.Epoch,
	})
	err = m.send(ctx, hdr)
	putFrameBuf(hdr)
	if err != nil {
		return err
	}
	data := req.Data
	for pos := 0; ; {
		if err := ctx.Err(); err != nil {
			c.abortStream(m, st)
			return err
		}
		// An early reply means the server already gave up on the
		// stream: stop shipping chunks and surface its answer.
		select {
		case f := <-st.ch:
			err := earlyWriteReply(f)
			c.abortStream(m, st)
			return err
		default:
		}
		end := pos + c.cfg.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		flags := byte(0)
		last := end == len(data)
		if last {
			flags = flagChunkLast
		}
		chdr := appendChunkHdr(getFrameBuf(16), MsgWriteChunk, st.id, flags)
		err := m.send(ctx, chdr, data[pos:end])
		putFrameBuf(chdr)
		if err != nil {
			return err
		}
		c.met.sentBytes.Add(int64(end - pos + 4))
		c.met.chunksSent.Inc()
		pos = end
		if last {
			break
		}
	}
	f, err := st.recv(ctx, m)
	if err != nil {
		return err
	}
	defer putFrameBuf(f.body)
	if _, err := parseResp(f, MsgOK); err != nil {
		return err
	}
	c.drainSpans(ctx, m, sp)
	return nil
}

// earlyWriteReply classifies a server reply that arrived before the
// client finished sending chunks (release included).
func earlyWriteReply(f respFrame) error {
	defer putFrameBuf(f.body)
	if _, err := parseResp(f, MsgOK); err != nil {
		return err
	}
	return fmt.Errorf("%w: OK before write stream completed", ErrCorrupt)
}

// readStreamed fills dst from a chunked v3 read stream through the
// shared retry machinery. streamed=false reports a peer below v3.
func (c *Client) readStreamed(ctx context.Context, req *ReadSegsReq, dst []byte) (err error, streamed bool) {
	streamed = true
	err = c.run(ctx, MsgReadStream, func(ctx context.Context) error {
		m, merr := c.getMux(ctx)
		if merr == errNoMux {
			streamed = false
			return nil
		}
		if merr != nil {
			return merr
		}
		return c.readStreamOnce(ctx, m, req, dst)
	})
	if !streamed {
		return nil, false
	}
	if err == nil {
		c.met.streamedR.Inc()
	}
	return err, true
}

// readStreamOnce is one attempt: open the stream and scatter arriving
// chunks straight into dst as they land.
func (c *Client) readStreamOnce(ctx context.Context, m *muxConn, req *ReadSegsReq, dst []byte) error {
	st, err := m.openStream()
	if err != nil {
		return err
	}
	defer m.closeStream(st)
	sp := c.traceSpan(ctx, MsgReadStream, m.features)
	hdr := AppendReadStream(getFrameBuf(64), st.id, &ReadStreamReq{
		File:        req.File,
		Subfile:     req.Subfile,
		Fingerprint: req.Fingerprint,
		Lo:          req.Lo,
		Hi:          req.Hi,
		N:           req.N,
		ChunkSize:   int64(c.cfg.ChunkSize),
		TraceID:     sp.TraceID(),
		SpanID:      sp.SpanID(),
		Epoch:       req.Epoch,
	})
	err = m.send(ctx, hdr)
	putFrameBuf(hdr)
	if err != nil {
		return err
	}
	pos := 0
	for {
		f, err := st.recv(ctx, m)
		if err != nil {
			return err
		}
		switch f.msgType {
		case MsgDataChunk:
			flags, data, err := splitChunk(f.payload)
			if err != nil {
				putFrameBuf(f.body)
				m.fail(err)
				return err
			}
			if pos+len(data) > len(dst) {
				putFrameBuf(f.body)
				err := fmt.Errorf("%w: read stream overflows %d-byte buffer", ErrCorrupt, len(dst))
				m.fail(err)
				return err
			}
			copy(dst[pos:], data)
			pos += len(data)
			c.met.recvBytes.Add(int64(len(data) + 4))
			c.met.chunksRecvd.Inc()
			putFrameBuf(f.body)
			if flags&flagChunkAbort != 0 {
				err := fmt.Errorf("%w: server aborted read stream", ErrCorrupt)
				m.fail(err)
				return err
			}
			if flags&flagChunkLast != 0 {
				if int64(pos) != req.N {
					err := fmt.Errorf("%w: read stream returned %d bytes, want %d", ErrCorrupt, pos, req.N)
					m.fail(err)
					return err
				}
				c.drainSpans(ctx, m, sp)
				return nil
			}
		case MsgError:
			re, err := DecodeError(f.payload)
			putFrameBuf(f.body)
			if err != nil {
				m.fail(err)
				return err
			}
			return re
		default:
			putFrameBuf(f.body)
			err := fmt.Errorf("%w: read stream response type %#x", ErrCorrupt, f.msgType)
			m.fail(err)
			return err
		}
	}
}

// drainSpans fetches the server-side span records of a completed
// streamed op and attaches them to sp. Stream spans cannot piggyback
// on the stream reply (it is built before the span closes), so the
// server stashes them and the client drains with MsgSpans. Best
// effort: a trace missing its server half still stitches, the server
// leg just shows as part of the client rpc span. The server stashes
// records a beat after sending the reply, so an empty first answer is
// retried briefly before giving up.
func (c *Client) drainSpans(ctx context.Context, m *muxConn, sp *obs.Span) {
	if sp == nil {
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		req := AppendSpansReq(getFrameBuf(16), sp.TraceID())
		f, err := c.muxExchange(ctx, m, MsgSpans, req)
		putFrameBuf(req)
		if err != nil {
			return
		}
		var recs []obs.SpanRecord
		if f.msgType == MsgSpansResp {
			recs, err = DecodeSpansResp(f.payload)
		}
		putFrameBuf(f.body)
		if err != nil {
			return
		}
		if len(recs) > 0 {
			sp.Attach(recs)
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parafile/internal/obs"
)

// breaker.go is the per-I/O-node circuit breaker the client consults
// before every call. A node that fails several calls in a row is
// almost certainly down; hammering it with full retry budgets turns
// one dead daemon into a cluster-wide slowdown (every collective op
// waits out MaxRetries × backoff against the same corpse). The breaker
// converts that into an immediate, typed fast-fail:
//
//	closed ──N consecutive transport failures──▶ open
//	open ──cooldown elapsed──▶ half-open (one Ping probe)
//	half-open ──probe ok──▶ closed     ──probe fails──▶ open
//
// Only transport failures count: a RemoteError is an answer from a
// live daemon and resets the streak like a success. The half-open
// probe is the lightweight MsgPing RPC, so recovery detection never
// costs a real data operation.

// ErrBreakerOpen is returned (wrapped) by client calls fast-failed
// because the node's breaker is open. errors.Is(err, ErrBreakerOpen)
// identifies it through the wrapping.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// Breaker states, also the values of the state gauge.
const (
	breakerClosed int64 = iota
	breakerOpen
	breakerHalfOpen
)

type breakerMetrics struct {
	state     *obs.Gauge
	opens     *obs.Counter
	probes    *obs.Counter
	fastFails *obs.Counter
}

func newBreakerMetrics(reg *obs.Registry, addr string) breakerMetrics {
	label := func(name string) string { return fmt.Sprintf(`%s{node=%q}`, name, addr) }
	return breakerMetrics{
		state:     reg.Gauge(label(MetricBreakerState)),
		opens:     reg.Counter(label(MetricBreakerOpens)),
		probes:    reg.Counter(label(MetricBreakerProbes)),
		fastFails: reg.Counter(label(MetricBreakerFastFails)),
	}
}

// breaker is the state machine. It is consulted from every caller
// goroutine of one client, so it carries its own lock.
type breaker struct {
	threshold int
	cooldown  time.Duration
	met       breakerMetrics

	mu       sync.Mutex
	state    int64
	failures int       // consecutive transport failures while closed
	openedAt time.Time // last transition to open
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, met breakerMetrics) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, met: met}
}

// admit decides the fate of an incoming call: proceed normally
// (ok), run a recovery probe first (probe), or fast-fail (neither).
// At most one caller at a time gets probe=true.
func (b *breaker) admit() (ok, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.met.state.Set(breakerHalfOpen)
			b.probing = true
			return false, true
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return false, true
		}
	}
	b.met.fastFails.Inc()
	return false, false
}

// success records a delivered request (including RemoteError answers):
// the node is alive, the breaker closes.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.met.state.Set(breakerClosed)
	}
}

// failure records a transport failure; the threshold-th consecutive
// one (or any failure while half-open) opens the breaker.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == breakerOpen {
		return
	}
	if b.state == breakerHalfOpen {
		b.open()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open()
	}
}

// open transitions to open (caller holds the lock).
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.met.state.Set(breakerOpen)
	b.met.opens.Inc()
}

// probeAborted returns a half-open breaker to open after a probe the
// caller's context cancelled — the node's health is still unknown, so
// the cooldown clock is not restarted (the next call past the original
// cooldown probes again).
func (b *breaker) probeAborted() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.met.state.Set(breakerOpen)
	}
}

// probeStarted counts a half-open Ping probe.
func (b *breaker) probeStarted() {
	if b == nil {
		return
	}
	b.met.probes.Inc()
}

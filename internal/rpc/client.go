package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/obs"
	"parafile/internal/qos"
)

// client.go is the compute-node side of the wire: one Client per I/O
// node. Against a proto-v3 daemon all traffic multiplexes over a
// single connection (mux.go) — concurrent operations interleave as
// tagged streams, and large transfers travel as chunked streams that
// overlap network transmission with the server-side scatter/gather.
// Against older daemons (or when capped below v3) the client keeps the
// classic pool of synchronous request/response connections, with
// overflow dialing bounded by a per-node semaphore.
//
// Every request in the protocol is idempotent — writes place the same
// bytes at the same offsets, registration and close are
// retry-tolerant — so the client retries blindly on transport errors
// (dial failures, resets, deadline expiries) with bounded exponential
// backoff. Server-reported RemoteErrors are answers, not transport
// failures, and are returned without retry.
//
// Every call takes the operation context of the collective op it
// serves: connection deadlines are capped by the context's deadline,
// dials use it, and the backoff sleeps select on it — a cancelled op
// returns immediately instead of finishing its retry budget. A
// per-node circuit breaker (breaker.go) fast-fails calls to a node
// that keeps failing, probing recovery with the lightweight Ping RPC.

// ClientConfig configures a connection to one I/O node.
type ClientConfig struct {
	// Addr is the node's host:port.
	Addr string
	// PoolSize caps pooled idle connections on the classic
	// (non-multiplexed) path (default 2).
	PoolSize int
	// MaxConns caps concurrently checked-out connections on the classic
	// path (default 4×PoolSize). Calls beyond the cap wait for a free
	// token instead of dialing unbounded extra sockets; waits are
	// observed on parafile_rpc_conn_wait_ns. The multiplexed path
	// shares one connection and never consumes tokens.
	MaxConns int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// WriteTimeout / ReadTimeout are per-request deadlines (default
	// 30s each), capped by the call context's deadline. An expired
	// deadline drops the connection and retries. On streams they apply
	// per frame, not per operation.
	WriteTimeout time.Duration
	ReadTimeout  time.Duration
	// MaxRetries is the number of retry attempts after the first
	// failure (default 4; total attempts = MaxRetries+1).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 10ms and 1s). Each pause is equal-jittered:
	// half the capped exponential plus a random draw of the other
	// half, so clients that failed together do not retry in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffSeed seeds the jitter source (0 derives a per-client seed
	// from the clock and a process-wide counter). Tests pin it for
	// reproducible schedules.
	BackoffSeed int64
	// Tenant names this client's fair-share class for server-side
	// admission control: offered with FeatureTenant in the Hello,
	// attached to the connection by daemons that speak the feature.
	// Empty lands in the server's default class, and keeps the Hello
	// bytes identical to the pre-tenant protocol.
	Tenant string
	// MaxFrame bounds response frames (DefaultMaxFrame when 0).
	MaxFrame int64
	// ChunkSize is the wire chunk of proto-v3 streamed transfers
	// (default 1 MiB).
	ChunkSize int
	// StreamThreshold is the payload size at and above which
	// WriteSegments/ReadSegments travel as chunked streams on v3
	// connections (default ChunkSize; negative disables streaming).
	StreamThreshold int
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the per-node circuit breaker (default 5; negative
	// disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the node with a Ping (default 1s).
	BreakerCooldown time.Duration
	// Dialer optionally replaces the connection dialer — the fault
	// layer injects connection-level faults (corrupt frames,
	// fail-after-N-bytes) here. Nil uses a plain TCP dial. The context
	// passed in carries the dial timeout.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// ProtoVersion caps the protocol generation the client negotiates
	// (0 means MaxProtoVersion). At 1 the client skips negotiation
	// entirely and speaks bare v1 frames; at 2+ every fresh connection
	// opens with a MsgHello exchange, downgrading to v1 when the daemon
	// predates negotiation (it answers the Hello with MsgError). At 3
	// the client multiplexes all traffic over one connection when the
	// daemon agrees.
	ProtoVersion int
	// Metrics receives the client-side RPC series; nil records nothing.
	Metrics *obs.Registry
	// Trace enables distributed tracing: the client offers FeatureTrace
	// in its Hello, and calls whose context carries a traced obs.Span
	// travel in MsgTraced envelopes (or carry trace IDs on stream
	// headers) against daemons that granted the feature. Against old
	// daemons — or with Trace false — the wire bytes are identical to
	// the untraced protocol, and calls without a span in their context
	// pay nothing.
	Trace bool
	// Placement enables placement-epoch awareness: the client offers
	// FeaturePlacement in its Hello, and epoch-stamped requests (Epoch
	// fields set nonzero by the meta layer) are accepted by daemons that
	// speak the feature. With Placement false — the default — the Hello
	// bytes are identical to the pre-placement protocol. Epoch-stamped
	// requests sent to a daemon that predates the feature fail with a
	// bad-request error rather than silently dropping the check, so a
	// meta-managed file can never be served unfenced by an old daemon.
	Placement bool
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4 * cfg.PoolSize
	}
	if cfg.MaxConns < cfg.PoolSize {
		cfg.MaxConns = cfg.PoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.StreamThreshold == 0 {
		cfg.StreamThreshold = cfg.ChunkSize
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.ProtoVersion <= 0 || cfg.ProtoVersion > MaxProtoVersion {
		cfg.ProtoVersion = MaxProtoVersion
	}
}

// clientConn is one pooled connection and the protocol version its
// MsgHello exchange settled on. tokened marks a connection checked out
// under the MaxConns semaphore.
type clientConn struct {
	net.Conn
	ver     byte
	tokened bool
	// features is the feature bitmask the daemon granted in its
	// HelloResp (0 against pre-feature daemons).
	features uint64
}

// respFrame is one parsed response: the pooled backing buffer plus the
// message type and payload views into it. Release the body with
// putFrameBuf (ReleaseFrame) when done.
type respFrame struct {
	body    []byte
	msgType byte
	payload []byte
}

// errNoMux reports that the peer negotiated below proto v3, so the
// caller should take the classic path; the dialed connection was
// handed to the idle pool, not wasted.
var errNoMux = errors.New("rpc: peer does not speak proto v3")

// Client talks to one I/O node.
type Client struct {
	cfg ClientConfig
	met clientMetrics
	br  *breaker // nil when disabled

	// rng draws backoff jitter; guarded because concurrent calls on
	// one client share it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// sem is the MaxConns token semaphore of the classic path.
	sem chan struct{}

	mu      sync.Mutex
	idle    []*clientConn
	peerVer byte // last negotiated version; 0 until the first dial
	closed  bool

	// muxMu serializes (re)dialing the multiplexed connection.
	muxMu sync.Mutex
	mux   *muxConn

	// registered remembers the projection fingerprints this node has
	// acknowledged, so each shape's PROJ travels once (per client) —
	// the §8.1 view-set amortization over a real wire.
	registered sync.Map // uint64 -> struct{}

	// paceUntil (UnixNano, 0 = open) is the client-side shed gate: the
	// deadline of the latest RetryAfter hint a shed answer carried.
	// Data-plane attempts before the deadline are refused locally —
	// shipping a payload the node already said it will refuse wastes
	// exactly the bandwidth the shed was protecting. Control-plane
	// calls (pings, stats, epoch fencing) bypass the gate like they
	// bypass server-side admission.
	//
	// The gate never snaps fully open mid-episode: from the first wire
	// shed until paceEpisode passes without another one, wire attempts
	// are additionally capped at paceBurst in flight (paceSlots), with
	// the overflow shed locally. Reopening uncapped would let a queued
	// backlog flood the node the instant a window expires — hundreds
	// of doomed payloads per cycle instead of at most paceBurst.
	paceUntil    atomic.Int64
	paceSlots    atomic.Int32
	paceLastShed atomic.Int64
}

// clientSeq decorrelates the derived jitter seeds of clients built in
// the same clock tick.
var clientSeq atomic.Int64

// NewClient builds a client; connections are dialed lazily.
func NewClient(cfg ClientConfig) *Client {
	cfg.fillDefaults()
	seed := cfg.BackoffSeed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ clientSeq.Add(1)<<32
	}
	c := &Client{
		cfg: cfg,
		met: newClientMetrics(cfg.Metrics),
		rng: rand.New(rand.NewSource(seed)),
		sem: make(chan struct{}, cfg.MaxConns),
	}
	if cfg.BreakerThreshold > 0 {
		c.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
			newBreakerMetrics(cfg.Metrics, cfg.Addr))
	}
	return c
}

// maxClientPace caps how long a RetryAfter hint closes the client-side
// gate: a hint beyond the cap still paces, but the client re-probes the
// node at least this often so a stale (or absurd) hint cannot wedge a
// tenant after server-side pressure clears.
const maxClientPace = 2 * time.Second

// paceStretch widens the gate past the server's hint. RetryAfter says
// when capacity covers ONE request, so pacing exactly that long makes
// every other wire attempt a doomed payload (50% of the tenant's
// bytes shipped only to be refused). Stretching the window lets the
// server-side budget accumulate stretch-many requests' worth, so each
// wire shed amortizes over ~stretch admitted requests once the gate
// reopens, while the tenant's long-run admitted rate — set by the
// server's refill, not by probe timing — is unchanged.
const paceStretch = 8

// paceBurst caps concurrent wire attempts during an overload episode:
// when a closed window expires, at most this many requests carry
// payloads to the node at once; the rest stay locally shed until a
// slot frees. It bounds the doomed bytes of a reopen to paceBurst
// payloads while leaving far more admission throughput than any
// quota that produced the episode (paceBurst per round trip).
const paceBurst = 8

// paceEpisode is how long after the last wire shed the concurrency
// cap stays armed. It must exceed maxClientPace so an episode cannot
// lapse while the gate is still closed; once a node answers nothing
// but admits for this long, the client's data path returns to
// zero-overhead.
const paceEpisode = maxClientPace + time.Second

// paceFor closes the client-side shed gate for d (capped), keeping the
// latest deadline when hints race.
func (c *Client) paceFor(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > maxClientPace {
		d = maxClientPace
	}
	t := time.Now().Add(d).UnixNano()
	for {
		cur := c.paceUntil.Load()
		if cur >= t || c.paceUntil.CompareAndSwap(cur, t) {
			return
		}
	}
}

// paceRemaining reports how long the shed gate stays closed (0 = open).
func (c *Client) paceRemaining() time.Duration {
	u := c.paceUntil.Load()
	if u == 0 {
		return 0
	}
	d := time.Until(time.Unix(0, u))
	if d <= 0 {
		return 0
	}
	return d
}

// paceActive reports whether the client is inside an overload episode:
// a wire shed happened within paceEpisode. Outside an episode the
// data path pays one atomic load and nothing else.
func (c *Client) paceActive() bool {
	u := c.paceLastShed.Load()
	return u != 0 && time.Since(time.Unix(0, u)) < paceEpisode
}

// paceAcquire claims one of the episode's paceBurst wire slots.
func (c *Client) paceAcquire() bool {
	for {
		n := c.paceSlots.Load()
		if n >= paceBurst {
			return false
		}
		if c.paceSlots.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (c *Client) paceRelease() { c.paceSlots.Add(-1) }

// Addr returns the node address the client was built for.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close closes pooled connections and the multiplexed connection.
// In-flight calls on checked-out connections finish normally;
// in-flight mux streams fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	c.muxMu.Lock()
	if c.mux != nil {
		c.mux.fail(fmt.Errorf("rpc: client for %s is closed", c.cfg.Addr))
		c.mux = nil
	}
	c.muxMu.Unlock()
	return nil
}

// Retire closes the client like Close, counting each torn-down
// connection under parafile_pool_discards{kind="retired"}. The meta
// layer calls it when a placement refresh drops the node from the map:
// pooled connections to a node that no longer serves the file are
// dead weight, better closed now than idling until discard caps evict
// them.
func (c *Client) Retire() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
		c.met.poolRetired.Inc()
	}
	c.muxMu.Lock()
	if c.mux != nil {
		c.mux.fail(fmt.Errorf("rpc: client for %s retired by placement refresh", c.cfg.Addr))
		c.mux = nil
		c.met.poolRetired.Inc()
	}
	c.muxMu.Unlock()
	return nil
}

// acquireToken takes a MaxConns token, observing the wait when the
// semaphore is saturated.
func (c *Client) acquireToken(ctx context.Context) error {
	select {
	case c.sem <- struct{}{}:
		return nil
	default:
	}
	start := time.Now()
	select {
	case c.sem <- struct{}{}:
		wait := time.Since(start)
		c.met.connWaitNs.Observe(wait.Nanoseconds())
		obs.SpanFromContext(ctx).AddInterval("conn_wait", start, wait)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) releaseToken() { <-c.sem }

// dial establishes and (for want ≥ 2) negotiates one connection.
func (c *Client) dial(ctx context.Context, want byte) (*clientConn, error) {
	c.met.dials.Inc()
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	var raw net.Conn
	var err error
	if c.cfg.Dialer != nil {
		raw, err = c.cfg.Dialer(dctx, "tcp", c.cfg.Addr)
	} else {
		var d net.Dialer
		raw, err = d.DialContext(dctx, "tcp", c.cfg.Addr)
	}
	if err != nil {
		return nil, err
	}
	conn := &clientConn{Conn: raw, ver: ProtoVersion}
	if want > ProtoVersion {
		if err := c.negotiate(ctx, conn, want); err != nil {
			conn.Close()
			return nil, err
		}
	}
	c.mu.Lock()
	c.peerVer = conn.ver
	c.mu.Unlock()
	return conn, nil
}

// getConn checks out a classic (non-multiplexed) connection: a pooled
// idle one, or a fresh dial bounded by the MaxConns semaphore. Classic
// connections never negotiate above v2 — asking for v3 would switch
// the daemon side into multiplexed framing.
func (c *Client) getConn(ctx context.Context) (*clientConn, error) {
	if err := c.acquireToken(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.releaseToken()
		return nil, fmt.Errorf("rpc: client for %s is closed", c.cfg.Addr)
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		conn.tokened = true
		return conn, nil
	}
	c.mu.Unlock()
	want := byte(c.cfg.ProtoVersion)
	if want > ProtoVersion2 {
		want = ProtoVersion2
	}
	conn, err := c.dial(ctx, want)
	if err != nil {
		c.releaseToken()
		return nil, err
	}
	conn.tokened = true
	return conn, nil
}

// negotiate runs the MsgHello exchange on a fresh connection. The
// Hello itself travels v1-framed so a daemon that predates negotiation
// parses it; such a daemon answers with MsgError (bad request), which
// the client reads as "speak v1". A transport failure fails the dial —
// the caller's retry loop handles it like any connection error.
func (c *Client) negotiate(ctx context.Context, conn *clientConn, want byte) error {
	var offer uint64
	if c.cfg.Trace {
		offer = FeatureTrace
	}
	if c.cfg.Placement {
		offer |= FeaturePlacement
	}
	if c.cfg.Tenant != "" {
		offer |= FeatureTenant
	}
	req := AppendHelloTenant(getFrameBuf(8), want, offer, c.cfg.Tenant)
	defer putFrameBuf(req)
	if err := conn.SetWriteDeadline(deadline(ctx, c.cfg.WriteTimeout)); err != nil {
		return err
	}
	if err := WriteFrame(conn, req); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(deadline(ctx, c.cfg.ReadTimeout)); err != nil {
		return err
	}
	body, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		return err
	}
	switch msgType {
	case MsgHelloResp:
		agreed, granted, err := DecodeHelloRespFeatures(payload)
		if err != nil {
			return err
		}
		if agreed < ProtoVersion {
			agreed = ProtoVersion
		}
		if agreed > want {
			agreed = want
		}
		conn.ver = agreed
		conn.features = granted & offer
	case MsgError:
		// Pre-negotiation daemon: it answered the unknown message with
		// a bad-request error. Speak v1 on this connection.
		conn.ver = ProtoVersion
	default:
		return fmt.Errorf("%w: hello response type %#x", ErrCorrupt, msgType)
	}
	return nil
}

func (c *Client) putConn(conn *clientConn) {
	if conn.tokened {
		conn.tokened = false
		c.releaseToken()
	}
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// discardConn drops a failed connection, returning its token.
func (c *Client) discardConn(conn *clientConn) {
	if conn.tokened {
		conn.tokened = false
		c.releaseToken()
	}
	conn.Close()
}

// useMux reports whether calls should try the multiplexed path: the
// client is configured for v3 and the peer has not negotiated below it.
func (c *Client) useMux() bool {
	if c.cfg.ProtoVersion < ProtoVersion3 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerVer == 0 || c.peerVer >= ProtoVersion3
}

// getMux returns the live multiplexed connection, dialing one if
// needed. A peer that negotiates below v3 yields errNoMux and the
// fresh connection is pooled for the classic path instead.
func (c *Client) getMux(ctx context.Context) (*muxConn, error) {
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if c.mux != nil && c.mux.alive() {
		return c.mux, nil
	}
	c.mux = nil
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: client for %s is closed", c.cfg.Addr)
	}
	c.mu.Unlock()
	conn, err := c.dial(ctx, byte(c.cfg.ProtoVersion))
	if err != nil {
		return nil, err
	}
	if conn.ver < ProtoVersion3 {
		c.putConn(conn)
		return nil, errNoMux
	}
	m := newMuxConn(conn, &c.cfg)
	c.mux = m
	return m, nil
}

// backoff returns the pause before retry attempt (1-based): equal
// jitter around the capped exponential — half deterministic, half
// drawn from the client's seeded source. Purely deterministic backoff
// synchronizes every client that failed at the same moment into
// retrying at the same moment, turning one overload spike into a
// train of them.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return half + j
}

// deadline caps a configured per-request timeout by the context's
// deadline, so an op-level deadline shortens the socket waits.
func deadline(ctx context.Context, d time.Duration) time.Time {
	t := time.Now().Add(d)
	if dl, ok := ctx.Deadline(); ok && dl.Before(t) {
		t = dl
	}
	return t
}

// roundTrip performs one framed exchange on one classic connection,
// framing the request at the connection's negotiated protocol version.
// The response body is pooled; the caller releases it.
func (c *Client) roundTrip(ctx context.Context, conn *clientConn, req []byte) ([]byte, error) {
	if err := conn.SetWriteDeadline(deadline(ctx, c.cfg.WriteTimeout)); err != nil {
		return nil, err
	}
	if err := WriteFrameV(conn, req, conn.ver); err != nil {
		return nil, err
	}
	c.met.sentBytes.Add(int64(len(req) + 4))
	if err := conn.SetReadDeadline(deadline(ctx, c.cfg.ReadTimeout)); err != nil {
		return nil, err
	}
	body, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	c.met.recvBytes.Add(int64(len(body) + 4))
	return body, nil
}

// traceSpan returns the context's span when this request should travel
// in a traced envelope: tracing is on, the peer granted FeatureTrace,
// and the context carries a traced span. MsgSpans never nests — the
// drain RPC is bookkeeping about a trace, not part of it.
func (c *Client) traceSpan(ctx context.Context, reqType byte, features uint64) *obs.Span {
	if !c.cfg.Trace || features&FeatureTrace == 0 || reqType == MsgSpans {
		return nil
	}
	if sp := obs.SpanFromContext(ctx); sp.TraceID() != 0 {
		return sp
	}
	return nil
}

// unwrapTraced peels a MsgTracedResp envelope, attaching the server's
// span records to sp; plain responses pass through untouched.
func unwrapTraced(sp *obs.Span, f respFrame) (respFrame, error) {
	if f.msgType != MsgTracedResp {
		return f, nil
	}
	recs, innerType, inner, err := DecodeTracedResp(f.payload)
	if err != nil {
		putFrameBuf(f.body)
		return respFrame{}, err
	}
	sp.Attach(recs)
	return respFrame{body: f.body, msgType: innerType, payload: inner}, nil
}

// attempt performs one unary exchange, over the multiplexed connection
// when the peer speaks v3 and the classic pool otherwise.
func (c *Client) attempt(ctx context.Context, reqType byte, req []byte) (respFrame, error) {
	if c.useMux() {
		m, err := c.getMux(ctx)
		if err == nil {
			return c.muxExchange(ctx, m, reqType, req)
		}
		if err != errNoMux {
			return respFrame{}, err
		}
		// The peer negotiated down: fall through to the classic path.
	}
	conn, err := c.getConn(ctx)
	if err != nil {
		return respFrame{}, err
	}
	sp := c.traceSpan(ctx, reqType, conn.features)
	wire := req
	if sp != nil {
		// Wrap the encoded request in a MsgTraced envelope. The classic
		// path copies (the mux path splices vectored); it is the cold
		// fallback, simplicity wins.
		wire = AppendTracedHdr(getFrameBuf(32+len(req)), sp.TraceID(), sp.SpanID())
		wire = append(wire, reqType)
		wire = append(wire, req[2:]...)
	}
	body, err := c.roundTrip(ctx, conn, wire)
	if sp != nil {
		putFrameBuf(wire)
	}
	if err != nil {
		c.discardConn(conn)
		return respFrame{}, err
	}
	c.putConn(conn)
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		putFrameBuf(body)
		return respFrame{}, err
	}
	return unwrapTraced(sp, respFrame{body: body, msgType: msgType, payload: payload})
}

// ping is one unretried Ping exchange, used directly by Ping and as
// the breaker's half-open probe.
func (c *Client) ping(ctx context.Context) error {
	req := AppendPing(getFrameBuf(8))
	defer putFrameBuf(req)
	f, err := c.attempt(ctx, MsgPing, req)
	if err != nil {
		return err
	}
	defer putFrameBuf(f.body)
	_, err = parseResp(f, MsgOK)
	return err
}

// Ping probes the node's liveness with the lightweight MsgPing RPC
// (single attempt, no retry). The result feeds the circuit breaker.
func (c *Client) Ping(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.met.requests[MsgPing].Inc()
	err := c.ping(ctx)
	if err != nil && ctx.Err() == nil {
		c.br.failure()
	} else if err == nil {
		c.br.success()
	}
	return err
}

// admit consults the breaker, running the half-open recovery probe
// when it is this call's turn to.
func (c *Client) admit(ctx context.Context, reqType byte) error {
	if c.br == nil {
		return nil
	}
	ok, probe := c.br.admit()
	if ok {
		return nil
	}
	if !probe {
		return fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr, ErrBreakerOpen)
	}
	c.br.probeStarted()
	if err := c.ping(ctx); err != nil {
		if ctx.Err() == nil {
			c.br.failure()
		} else {
			// A cancelled probe says nothing about the node: put the
			// breaker back to open without restarting the cooldown.
			c.br.probeAborted()
		}
		return fmt.Errorf("rpc: %s to %s: recovery probe failed (%v): %w",
			MsgName(reqType), c.cfg.Addr, err, ErrBreakerOpen)
	}
	c.br.success()
	return nil
}

// run wraps one operation attempt function with the shared request
// machinery: metrics, breaker admission, bounded-backoff retry on
// transport errors, and context-aware cancellation. A RemoteError from
// op is an answer (the node was reached), not a transport failure: it
// is returned without retry and counts as breaker success. Both unary
// calls and chunked streams retry through here.
//
// When the context carries a traced span and tracing is on, the whole
// call (every attempt, backoff included) runs under an rpc.* child
// span; a call that exhausts its retries leaves that span marked
// failed, so an unreachable node still shows up in the stitched tree.
func (c *Client) run(ctx context.Context, reqType byte, op func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.cfg.Trace {
		if parent := obs.SpanFromContext(ctx); parent.TraceID() != 0 {
			sp := parent.StartChild("rpc." + MsgName(reqType) + "→" + c.cfg.Addr)
			err := c.runInner(obs.ContextWithSpan(ctx, sp), reqType, op)
			if err != nil {
				sp.Fail()
			}
			sp.End()
			return err
		}
	}
	return c.runInner(ctx, reqType, op)
}

func (c *Client) runInner(ctx context.Context, reqType byte, op func(context.Context) error) error {
	c.met.inflight.Add(1)
	start := time.Now()
	defer func() {
		c.met.inflight.Add(-1)
		c.met.requestNs.Observe(time.Since(start).Nanoseconds())
	}()
	c.met.requests[reqType].Inc()

	if err := c.admit(ctx, reqType); err != nil {
		c.met.failures.Inc()
		return err
	}

	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			pause := c.backoff(attempt)
			if retryAfter > pause {
				// A shed answer's RetryAfter hint dominates the
				// exponential: the server told us when capacity returns.
				pause = retryAfter
			}
			retryAfter = 0
			timer := time.NewTimer(pause)
			select {
			case <-ctx.Done():
				timer.Stop()
				c.met.failures.Inc()
				return fmt.Errorf("rpc: %s to %s cancelled after %d attempts (last: %v): %w",
					MsgName(reqType), c.cfg.Addr, attempt, lastErr, ctx.Err())
			case <-timer.C:
			}
		}
		if err := ctx.Err(); err != nil {
			c.met.failures.Inc()
			return fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr, err)
		}
		var paced bool
		if qosOpOf(reqType) != qos.OpControl && c.paceActive() {
			if wait := c.paceRemaining(); wait > 0 {
				// The node's last shed answer said capacity returns at a
				// known time; honoring it here sheds the attempt without
				// shipping a payload the node would refuse anyway. Counted
				// as shed (plus paced), never as failure, and the retry
				// loop sleeps out the remaining window like a wire shed.
				c.met.shed.Inc()
				c.met.paced.Inc()
				retryAfter = wait
				lastErr = fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr,
					&qos.Overload{RetryAfter: wait, Reason: "client paced"})
				continue
			}
			// Window expired but the episode is still on: attempts trickle
			// to the node at most paceBurst at a time, so a queued backlog
			// cannot flood it the instant the window reopens.
			if !c.paceAcquire() {
				c.met.shed.Inc()
				c.met.paced.Inc()
				retryAfter = c.cfg.BackoffBase
				lastErr = fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr,
					&qos.Overload{RetryAfter: c.cfg.BackoffBase, Reason: "client paced"})
				continue
			}
			paced = true
		}
		err := op(ctx)
		if paced {
			c.paceRelease()
		}
		if err == nil {
			c.br.success()
			return nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// A RemoteError is an answer: the node was reached and
			// responded, so the breaker records success whatever the
			// answer says. An overloaded answer is backpressure, not a
			// verdict — retry it (jittered, honoring the server's
			// RetryAfter) instead of returning; every other remote
			// answer is final.
			c.br.success()
			if re.Code != ErrCodeOverloaded {
				return err
			}
			c.met.shed.Inc()
			c.paceLastShed.Store(time.Now().UnixNano())
			c.paceFor(re.RetryAfter * paceStretch)
			retryAfter = re.RetryAfter
			lastErr = err
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			c.met.timeouts.Inc()
		}
		if ctx.Err() == nil {
			c.br.failure()
		}
		lastErr = err
	}
	if errors.Is(lastErr, qos.ErrOverloaded) {
		// The budget ran out on backpressure, not failure: every
		// attempt was answered by a healthy, saturated node. Already
		// counted per-attempt on the shed counter; the %w keeps
		// errors.Is(err, qos.ErrOverloaded) true for callers that
		// classify outcomes (clusterfile marks the node shed).
		return fmt.Errorf("rpc: %s to %s shed after %d attempts: %w",
			MsgName(reqType), c.cfg.Addr, c.cfg.MaxRetries+1, lastErr)
	}
	c.met.failures.Inc()
	return fmt.Errorf("rpc: %s to %s failed after %d attempts: %w",
		MsgName(reqType), c.cfg.Addr, c.cfg.MaxRetries+1, lastErr)
}

// call sends an encoded request frame body and returns the parsed
// response (pooled — release its body with ReleaseFrame). Transport
// errors are retried with exponential backoff; ctx cancellation aborts
// the retry loop (and its backoff sleeps) immediately.
func (c *Client) call(ctx context.Context, reqType byte, req []byte) (respFrame, error) {
	var resp respFrame
	err := c.run(ctx, reqType, func(ctx context.Context) error {
		f, err := c.attempt(ctx, reqType, req)
		if err != nil {
			return err
		}
		// Decode error answers inside the retry loop, not after it:
		// an overloaded answer must reach the loop's backpressure
		// branch (retry with the server's RetryAfter) instead of
		// surfacing only once the transport retries are spent.
		if f.msgType == MsgError {
			re, derr := DecodeError(f.payload)
			ReleaseFrame(f.body)
			if derr != nil {
				return derr
			}
			return re
		}
		resp = f
		return nil
	})
	if err != nil {
		return respFrame{}, err
	}
	return resp, nil
}

// parseResp classifies a response against the expected success type
// and returns its payload.
func parseResp(f respFrame, want byte) ([]byte, error) {
	if f.msgType == MsgError {
		re, err := DecodeError(f.payload)
		if err != nil {
			return nil, err
		}
		return nil, re
	}
	if f.msgType != want {
		return nil, fmt.Errorf("%w: response type %#x, want %#x", ErrCorrupt, f.msgType, want)
	}
	return f.payload, nil
}

// exchange is call + parse + release for requests with empty OK
// responses.
func (c *Client) exchange(ctx context.Context, reqType byte, req []byte) error {
	f, err := c.call(ctx, reqType, req)
	putFrameBuf(req)
	if err != nil {
		return err
	}
	defer ReleaseFrame(f.body)
	_, err = parseResp(f, MsgOK)
	return err
}

// CreateFile opens the request's subfile stores on the node.
func (c *Client) CreateFile(ctx context.Context, req *CreateFileReq) error {
	return c.exchange(ctx, MsgCreateFile, AppendCreateFile(getFrameBuf(64), req))
}

// SetView registers an encoded projection under its fingerprint.
func (c *Client) SetView(ctx context.Context, fp uint64, proj []byte) error {
	err := c.exchange(ctx, MsgSetView, AppendSetView(getFrameBuf(64), &SetViewReq{Fingerprint: fp, Proj: proj}))
	if err == nil {
		c.registered.Store(fp, struct{}{})
	}
	return err
}

// Registered reports whether the client has seen the node acknowledge
// the fingerprint.
func (c *Client) Registered(fp uint64) bool {
	_, ok := c.registered.Load(fp)
	return ok
}

// Forget drops the local registration record of a fingerprint (used
// when the node reports it unknown, e.g. after a daemon restart).
func (c *Client) Forget(fp uint64) { c.registered.Delete(fp) }

// shouldStream reports whether a payload of n bytes should travel as a
// chunked v3 stream.
func (c *Client) shouldStream(n int) bool {
	return c.cfg.StreamThreshold > 0 && n >= c.cfg.StreamThreshold && c.useMux()
}

// WriteSegments performs a scatter (nonzero fingerprint) or contiguous
// (zero fingerprint) write. Payloads at or above StreamThreshold
// travel as a chunked stream on v3 connections, overlapping
// transmission with the server-side scatter.
func (c *Client) WriteSegments(ctx context.Context, req *WriteSegsReq) error {
	if c.shouldStream(len(req.Data)) {
		err, streamed := c.writeStreamed(ctx, req)
		if streamed {
			return err
		}
	}
	return c.exchange(ctx, MsgWriteSegs, AppendWriteSegs(getFrameBuf(64+len(req.Data)), req))
}

// ReadSegments performs a gather (nonzero fingerprint) or contiguous
// (zero fingerprint) read of len(dst) bytes into dst. Reads at or
// above StreamThreshold travel as a chunked stream on v3 connections.
func (c *Client) ReadSegments(ctx context.Context, req *ReadSegsReq, dst []byte) error {
	if req.N != int64(len(dst)) {
		return fmt.Errorf("rpc: read of %d bytes into %d-byte buffer", req.N, len(dst))
	}
	if c.shouldStream(len(dst)) {
		err, streamed := c.readStreamed(ctx, req, dst)
		if streamed {
			return err
		}
	}
	reqBuf := AppendReadSegs(getFrameBuf(64), req)
	f, err := c.call(ctx, MsgReadSegs, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgData)
	if err != nil {
		return err
	}
	data, err := DecodeData(payload)
	if err != nil {
		return err
	}
	if int64(len(data)) != req.N {
		return fmt.Errorf("%w: read returned %d bytes, want %d", ErrCorrupt, len(data), req.N)
	}
	copy(dst, data)
	return nil
}

// Stat returns the subfile's current length.
func (c *Client) Stat(ctx context.Context, file string, subfile int64) (int64, error) {
	reqBuf := AppendStat(getFrameBuf(64), &StatReq{File: file, Subfile: subfile})
	f, err := c.call(ctx, MsgStat, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return 0, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgStatResp)
	if err != nil {
		return 0, err
	}
	return DecodeStatResp(payload)
}

// Checksum returns the CRC32C of subfile bytes [off, off+n); bytes
// beyond the subfile's length count as zeroes.
func (c *Client) Checksum(ctx context.Context, file string, subfile, off, n int64) (uint32, error) {
	reqBuf := AppendChecksum(getFrameBuf(64), &ChecksumReq{File: file, Subfile: subfile, Off: off, N: n})
	f, err := c.call(ctx, MsgChecksum, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return 0, err
	}
	defer ReleaseFrame(f.body)
	payload, err := parseResp(f, MsgChecksumResp)
	if err != nil {
		return 0, err
	}
	return DecodeChecksumResp(payload)
}

// CloseFile syncs and closes the file's stores on the node.
func (c *Client) CloseFile(ctx context.Context, file string) error {
	return c.exchange(ctx, MsgClose, AppendClose(getFrameBuf(64), &CloseReq{File: file}))
}

// RemoveStore closes the file's stores on the node and deletes their
// backing media, replica stores (name~r<r>) included — the rebalance
// GC of a superseded store generation. Unknown files answer OK, so
// the sweep is idempotent across retries and half-done passes.
func (c *Client) RemoveStore(ctx context.Context, file string) error {
	return c.exchange(ctx, MsgClose, AppendClose(getFrameBuf(64), &CloseReq{File: file, Remove: true}))
}

// SetEpoch ratchets the placement epoch of the file's stores on the
// node (base name plus replica stores) and raises or clears the write
// fence — the data-daemon half of a rebalance's epoch flip. A node
// holding no store of the file answers OK: the flip is idempotent
// across the fan-out.
func (c *Client) SetEpoch(ctx context.Context, file string, epoch uint64, fence bool) error {
	return c.exchange(ctx, MsgEpoch, AppendEpoch(getFrameBuf(64), &EpochReq{File: file, Epoch: epoch, Fence: fence}))
}

package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"parafile/internal/obs"
)

// client.go is the compute-node side of the wire: one Client per I/O
// node, holding a small pool of TCP connections. Calls are synchronous
// request/response per connection; concurrency comes from the pool.
//
// Every request in the protocol is idempotent — writes place the same
// bytes at the same offsets, registration and close are
// retry-tolerant — so the client retries blindly on transport errors
// (dial failures, resets, deadline expiries) with bounded exponential
// backoff. Server-reported RemoteErrors are answers, not transport
// failures, and are returned without retry.

// ClientConfig configures a connection to one I/O node.
type ClientConfig struct {
	// Addr is the node's host:port.
	Addr string
	// PoolSize caps pooled idle connections (default 2). Calls beyond
	// the pool dial extra connections rather than queueing.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// WriteTimeout / ReadTimeout are per-request deadlines (default
	// 30s each). A expired deadline drops the connection and retries.
	WriteTimeout time.Duration
	ReadTimeout  time.Duration
	// MaxRetries is the number of retry attempts after the first
	// failure (default 4; total attempts = MaxRetries+1).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 10ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFrame bounds response frames (DefaultMaxFrame when 0).
	MaxFrame int64
	// Metrics receives the client-side RPC series; nil records nothing.
	Metrics *obs.Registry
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
}

// Client talks to one I/O node.
type Client struct {
	cfg ClientConfig
	met clientMetrics

	mu     sync.Mutex
	idle   []net.Conn
	closed bool

	// registered remembers the projection fingerprints this node has
	// acknowledged, so each shape's PROJ travels once (per client) —
	// the §8.1 view-set amortization over a real wire.
	registered sync.Map // uint64 -> struct{}
}

// NewClient builds a client; connections are dialed lazily.
func NewClient(cfg ClientConfig) *Client {
	cfg.fillDefaults()
	return &Client{cfg: cfg, met: newClientMetrics(cfg.Metrics)}
}

// Addr returns the node address the client was built for.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close closes pooled connections. In-flight calls on checked-out
// connections finish normally.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: client for %s is closed", c.cfg.Addr)
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	c.met.dials.Inc()
	return net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// backoff returns the pause before retry attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	return d
}

// roundTrip performs one framed exchange on one connection. The
// response body is pooled; the caller releases it.
func (c *Client) roundTrip(conn net.Conn, req []byte) ([]byte, error) {
	if err := conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	c.met.sentBytes.Add(int64(len(req) + 4))
	if err := conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout)); err != nil {
		return nil, err
	}
	body, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	c.met.recvBytes.Add(int64(len(body) + 4))
	return body, nil
}

// call sends an encoded request frame body and returns the response
// body (pooled — release with ReleaseFrame). Transport errors are
// retried with exponential backoff; a RemoteError is returned as-is.
func (c *Client) call(reqType byte, req []byte) ([]byte, error) {
	c.met.inflight.Add(1)
	start := time.Now()
	defer func() {
		c.met.inflight.Add(-1)
		c.met.requestNs.Observe(time.Since(start).Nanoseconds())
	}()
	c.met.requests[reqType].Inc()

	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			time.Sleep(c.backoff(attempt))
		}
		conn, err := c.getConn()
		if err != nil {
			lastErr = err
			continue
		}
		body, err := c.roundTrip(conn, req)
		if err != nil {
			conn.Close()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.met.timeouts.Inc()
			}
			lastErr = err
			continue
		}
		c.putConn(conn)
		return body, nil
	}
	c.met.failures.Inc()
	return nil, fmt.Errorf("rpc: %s to %s failed after %d attempts: %w",
		MsgName(reqType), c.cfg.Addr, c.cfg.MaxRetries+1, lastErr)
}

// parseResp classifies a response body against the expected success
// type and returns its payload.
func parseResp(body []byte, want byte) ([]byte, error) {
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		return nil, err
	}
	if msgType == MsgError {
		re, err := DecodeError(payload)
		if err != nil {
			return nil, err
		}
		return nil, re
	}
	if msgType != want {
		return nil, fmt.Errorf("%w: response type %#x, want %#x", ErrCorrupt, msgType, want)
	}
	return payload, nil
}

// exchange is call + parse + release for requests with empty OK
// responses.
func (c *Client) exchange(reqType byte, req []byte) error {
	body, err := c.call(reqType, req)
	putFrameBuf(req)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	_, err = parseResp(body, MsgOK)
	return err
}

// CreateFile opens the request's subfile stores on the node.
func (c *Client) CreateFile(req *CreateFileReq) error {
	return c.exchange(MsgCreateFile, AppendCreateFile(getFrameBuf(64), req))
}

// SetView registers an encoded projection under its fingerprint.
func (c *Client) SetView(fp uint64, proj []byte) error {
	err := c.exchange(MsgSetView, AppendSetView(getFrameBuf(64), &SetViewReq{Fingerprint: fp, Proj: proj}))
	if err == nil {
		c.registered.Store(fp, struct{}{})
	}
	return err
}

// Registered reports whether the client has seen the node acknowledge
// the fingerprint.
func (c *Client) Registered(fp uint64) bool {
	_, ok := c.registered.Load(fp)
	return ok
}

// Forget drops the local registration record of a fingerprint (used
// when the node reports it unknown, e.g. after a daemon restart).
func (c *Client) Forget(fp uint64) { c.registered.Delete(fp) }

// WriteSegments performs a scatter (nonzero fingerprint) or contiguous
// (zero fingerprint) write.
func (c *Client) WriteSegments(req *WriteSegsReq) error {
	return c.exchange(MsgWriteSegs, AppendWriteSegs(getFrameBuf(64+len(req.Data)), req))
}

// ReadSegments performs a gather (nonzero fingerprint) or contiguous
// (zero fingerprint) read of len(dst) bytes into dst.
func (c *Client) ReadSegments(req *ReadSegsReq, dst []byte) error {
	if req.N != int64(len(dst)) {
		return fmt.Errorf("rpc: read of %d bytes into %d-byte buffer", req.N, len(dst))
	}
	reqBuf := AppendReadSegs(getFrameBuf(64), req)
	body, err := c.call(MsgReadSegs, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	payload, err := parseResp(body, MsgData)
	if err != nil {
		return err
	}
	data, err := DecodeData(payload)
	if err != nil {
		return err
	}
	if int64(len(data)) != req.N {
		return fmt.Errorf("%w: read returned %d bytes, want %d", ErrCorrupt, len(data), req.N)
	}
	copy(dst, data)
	return nil
}

// Stat returns the subfile's current length.
func (c *Client) Stat(file string, subfile int64) (int64, error) {
	reqBuf := AppendStat(getFrameBuf(64), &StatReq{File: file, Subfile: subfile})
	body, err := c.call(MsgStat, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return 0, err
	}
	defer ReleaseFrame(body)
	payload, err := parseResp(body, MsgStatResp)
	if err != nil {
		return 0, err
	}
	return DecodeStatResp(payload)
}

// CloseFile syncs and closes the file's stores on the node.
func (c *Client) CloseFile(file string) error {
	return c.exchange(MsgClose, AppendClose(getFrameBuf(64), &CloseReq{File: file}))
}

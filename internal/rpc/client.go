package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"parafile/internal/obs"
)

// client.go is the compute-node side of the wire: one Client per I/O
// node, holding a small pool of TCP connections. Calls are synchronous
// request/response per connection; concurrency comes from the pool.
//
// Every request in the protocol is idempotent — writes place the same
// bytes at the same offsets, registration and close are
// retry-tolerant — so the client retries blindly on transport errors
// (dial failures, resets, deadline expiries) with bounded exponential
// backoff. Server-reported RemoteErrors are answers, not transport
// failures, and are returned without retry.
//
// Every call takes the operation context of the collective op it
// serves: connection deadlines are capped by the context's deadline,
// dials use it, and the backoff sleeps select on it — a cancelled op
// returns immediately instead of finishing its retry budget. A
// per-node circuit breaker (breaker.go) fast-fails calls to a node
// that keeps failing, probing recovery with the lightweight Ping RPC.

// ClientConfig configures a connection to one I/O node.
type ClientConfig struct {
	// Addr is the node's host:port.
	Addr string
	// PoolSize caps pooled idle connections (default 2). Calls beyond
	// the pool dial extra connections rather than queueing.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// WriteTimeout / ReadTimeout are per-request deadlines (default
	// 30s each), capped by the call context's deadline. An expired
	// deadline drops the connection and retries.
	WriteTimeout time.Duration
	ReadTimeout  time.Duration
	// MaxRetries is the number of retry attempts after the first
	// failure (default 4; total attempts = MaxRetries+1).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 10ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFrame bounds response frames (DefaultMaxFrame when 0).
	MaxFrame int64
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the per-node circuit breaker (default 5; negative
	// disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the node with a Ping (default 1s).
	BreakerCooldown time.Duration
	// Dialer optionally replaces the connection dialer — the fault
	// layer injects connection-level faults (corrupt frames,
	// fail-after-N-bytes) here. Nil uses a plain TCP dial. The context
	// passed in carries the dial timeout.
	Dialer func(ctx context.Context, network, addr string) (net.Conn, error)
	// ProtoVersion caps the protocol generation the client negotiates
	// (0 means MaxProtoVersion). At 1 the client skips negotiation
	// entirely and speaks bare v1 frames; at 2+ every fresh connection
	// opens with a MsgHello exchange, downgrading to v1 when the daemon
	// predates negotiation (it answers the Hello with MsgError).
	ProtoVersion int
	// Metrics receives the client-side RPC series; nil records nothing.
	Metrics *obs.Registry
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.ProtoVersion <= 0 || cfg.ProtoVersion > MaxProtoVersion {
		cfg.ProtoVersion = MaxProtoVersion
	}
}

// clientConn is one pooled connection and the protocol version its
// MsgHello exchange settled on.
type clientConn struct {
	net.Conn
	ver byte
}

// Client talks to one I/O node.
type Client struct {
	cfg ClientConfig
	met clientMetrics
	br  *breaker // nil when disabled

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	// registered remembers the projection fingerprints this node has
	// acknowledged, so each shape's PROJ travels once (per client) —
	// the §8.1 view-set amortization over a real wire.
	registered sync.Map // uint64 -> struct{}
}

// NewClient builds a client; connections are dialed lazily.
func NewClient(cfg ClientConfig) *Client {
	cfg.fillDefaults()
	c := &Client{cfg: cfg, met: newClientMetrics(cfg.Metrics)}
	if cfg.BreakerThreshold > 0 {
		c.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
			newBreakerMetrics(cfg.Metrics, cfg.Addr))
	}
	return c
}

// Addr returns the node address the client was built for.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close closes pooled connections. In-flight calls on checked-out
// connections finish normally.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) getConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: client for %s is closed", c.cfg.Addr)
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	c.met.dials.Inc()
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	var raw net.Conn
	var err error
	if c.cfg.Dialer != nil {
		raw, err = c.cfg.Dialer(dctx, "tcp", c.cfg.Addr)
	} else {
		var d net.Dialer
		raw, err = d.DialContext(dctx, "tcp", c.cfg.Addr)
	}
	if err != nil {
		return nil, err
	}
	conn := &clientConn{Conn: raw, ver: ProtoVersion}
	if c.cfg.ProtoVersion > ProtoVersion {
		if err := c.negotiate(ctx, conn); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return conn, nil
}

// negotiate runs the MsgHello exchange on a fresh connection. The
// Hello itself travels v1-framed so a daemon that predates negotiation
// parses it; such a daemon answers with MsgError (bad request), which
// the client reads as "speak v1". A transport failure fails the dial —
// the caller's retry loop handles it like any connection error.
func (c *Client) negotiate(ctx context.Context, conn *clientConn) error {
	want := byte(c.cfg.ProtoVersion)
	req := AppendHello(getFrameBuf(8), want)
	defer putFrameBuf(req)
	if err := conn.SetWriteDeadline(deadline(ctx, c.cfg.WriteTimeout)); err != nil {
		return err
	}
	if err := WriteFrame(conn, req); err != nil {
		return err
	}
	if err := conn.SetReadDeadline(deadline(ctx, c.cfg.ReadTimeout)); err != nil {
		return err
	}
	body, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		return err
	}
	switch msgType {
	case MsgHelloResp:
		agreed, err := DecodeHelloResp(payload)
		if err != nil {
			return err
		}
		if agreed < ProtoVersion {
			agreed = ProtoVersion
		}
		if agreed > want {
			agreed = want
		}
		conn.ver = agreed
	case MsgError:
		// Pre-negotiation daemon: it answered the unknown message with
		// a bad-request error. Speak v1 on this connection.
		conn.ver = ProtoVersion
	default:
		return fmt.Errorf("%w: hello response type %#x", ErrCorrupt, msgType)
	}
	return nil
}

func (c *Client) putConn(conn *clientConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// backoff returns the pause before retry attempt (1-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	return d
}

// deadline caps a configured per-request timeout by the context's
// deadline, so an op-level deadline shortens the socket waits.
func deadline(ctx context.Context, d time.Duration) time.Time {
	t := time.Now().Add(d)
	if dl, ok := ctx.Deadline(); ok && dl.Before(t) {
		t = dl
	}
	return t
}

// roundTrip performs one framed exchange on one connection, framing
// the request at the connection's negotiated protocol version. The
// response body is pooled; the caller releases it.
func (c *Client) roundTrip(ctx context.Context, conn *clientConn, req []byte) ([]byte, error) {
	if err := conn.SetWriteDeadline(deadline(ctx, c.cfg.WriteTimeout)); err != nil {
		return nil, err
	}
	if err := WriteFrameV(conn, req, conn.ver); err != nil {
		return nil, err
	}
	c.met.sentBytes.Add(int64(len(req) + 4))
	if err := conn.SetReadDeadline(deadline(ctx, c.cfg.ReadTimeout)); err != nil {
		return nil, err
	}
	body, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	c.met.recvBytes.Add(int64(len(body) + 4))
	return body, nil
}

// ping is one unretried Ping exchange, used directly by Ping and as
// the breaker's half-open probe.
func (c *Client) ping(ctx context.Context) error {
	req := AppendPing(getFrameBuf(8))
	defer putFrameBuf(req)
	conn, err := c.getConn(ctx)
	if err != nil {
		return err
	}
	body, err := c.roundTrip(ctx, conn, req)
	if err != nil {
		conn.Close()
		return err
	}
	c.putConn(conn)
	defer ReleaseFrame(body)
	_, err = parseResp(body, MsgOK)
	return err
}

// Ping probes the node's liveness with the lightweight MsgPing RPC
// (single attempt, no retry). The result feeds the circuit breaker.
func (c *Client) Ping(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.met.requests[MsgPing].Inc()
	err := c.ping(ctx)
	if err != nil && ctx.Err() == nil {
		c.br.failure()
	} else if err == nil {
		c.br.success()
	}
	return err
}

// admit consults the breaker, running the half-open recovery probe
// when it is this call's turn to.
func (c *Client) admit(ctx context.Context, reqType byte) error {
	if c.br == nil {
		return nil
	}
	ok, probe := c.br.admit()
	if ok {
		return nil
	}
	if !probe {
		return fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr, ErrBreakerOpen)
	}
	c.br.probeStarted()
	if err := c.ping(ctx); err != nil {
		if ctx.Err() == nil {
			c.br.failure()
		} else {
			// A cancelled probe says nothing about the node: put the
			// breaker back to open without restarting the cooldown.
			c.br.probeAborted()
		}
		return fmt.Errorf("rpc: %s to %s: recovery probe failed (%v): %w",
			MsgName(reqType), c.cfg.Addr, err, ErrBreakerOpen)
	}
	c.br.success()
	return nil
}

// call sends an encoded request frame body and returns the response
// body (pooled — release with ReleaseFrame). Transport errors are
// retried with exponential backoff; a RemoteError is returned as-is.
// ctx cancellation aborts the retry loop (and its backoff sleeps)
// immediately.
func (c *Client) call(ctx context.Context, reqType byte, req []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.met.inflight.Add(1)
	start := time.Now()
	defer func() {
		c.met.inflight.Add(-1)
		c.met.requestNs.Observe(time.Since(start).Nanoseconds())
	}()
	c.met.requests[reqType].Inc()

	if err := c.admit(ctx, reqType); err != nil {
		c.met.failures.Inc()
		return nil, err
	}

	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			timer := time.NewTimer(c.backoff(attempt))
			select {
			case <-ctx.Done():
				timer.Stop()
				c.met.failures.Inc()
				return nil, fmt.Errorf("rpc: %s to %s cancelled after %d attempts (last: %v): %w",
					MsgName(reqType), c.cfg.Addr, attempt, lastErr, ctx.Err())
			case <-timer.C:
			}
		}
		if err := ctx.Err(); err != nil {
			c.met.failures.Inc()
			return nil, fmt.Errorf("rpc: %s to %s: %w", MsgName(reqType), c.cfg.Addr, err)
		}
		conn, err := c.getConn(ctx)
		if err != nil {
			// Dial and negotiation failures count like any transport
			// error, including their deadline expiries.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.met.timeouts.Inc()
			}
			if ctx.Err() == nil {
				c.br.failure()
			}
			lastErr = err
			continue
		}
		body, err := c.roundTrip(ctx, conn, req)
		if err != nil {
			conn.Close()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.met.timeouts.Inc()
			}
			if ctx.Err() == nil {
				c.br.failure()
			}
			lastErr = err
			continue
		}
		c.putConn(conn)
		c.br.success()
		return body, nil
	}
	c.met.failures.Inc()
	return nil, fmt.Errorf("rpc: %s to %s failed after %d attempts: %w",
		MsgName(reqType), c.cfg.Addr, c.cfg.MaxRetries+1, lastErr)
}

// parseResp classifies a response body against the expected success
// type and returns its payload.
func parseResp(body []byte, want byte) ([]byte, error) {
	msgType, payload, err := ParseFrame(body)
	if err != nil {
		return nil, err
	}
	if msgType == MsgError {
		re, err := DecodeError(payload)
		if err != nil {
			return nil, err
		}
		return nil, re
	}
	if msgType != want {
		return nil, fmt.Errorf("%w: response type %#x, want %#x", ErrCorrupt, msgType, want)
	}
	return payload, nil
}

// exchange is call + parse + release for requests with empty OK
// responses.
func (c *Client) exchange(ctx context.Context, reqType byte, req []byte) error {
	body, err := c.call(ctx, reqType, req)
	putFrameBuf(req)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	_, err = parseResp(body, MsgOK)
	return err
}

// CreateFile opens the request's subfile stores on the node.
func (c *Client) CreateFile(ctx context.Context, req *CreateFileReq) error {
	return c.exchange(ctx, MsgCreateFile, AppendCreateFile(getFrameBuf(64), req))
}

// SetView registers an encoded projection under its fingerprint.
func (c *Client) SetView(ctx context.Context, fp uint64, proj []byte) error {
	err := c.exchange(ctx, MsgSetView, AppendSetView(getFrameBuf(64), &SetViewReq{Fingerprint: fp, Proj: proj}))
	if err == nil {
		c.registered.Store(fp, struct{}{})
	}
	return err
}

// Registered reports whether the client has seen the node acknowledge
// the fingerprint.
func (c *Client) Registered(fp uint64) bool {
	_, ok := c.registered.Load(fp)
	return ok
}

// Forget drops the local registration record of a fingerprint (used
// when the node reports it unknown, e.g. after a daemon restart).
func (c *Client) Forget(fp uint64) { c.registered.Delete(fp) }

// WriteSegments performs a scatter (nonzero fingerprint) or contiguous
// (zero fingerprint) write.
func (c *Client) WriteSegments(ctx context.Context, req *WriteSegsReq) error {
	return c.exchange(ctx, MsgWriteSegs, AppendWriteSegs(getFrameBuf(64+len(req.Data)), req))
}

// ReadSegments performs a gather (nonzero fingerprint) or contiguous
// (zero fingerprint) read of len(dst) bytes into dst.
func (c *Client) ReadSegments(ctx context.Context, req *ReadSegsReq, dst []byte) error {
	if req.N != int64(len(dst)) {
		return fmt.Errorf("rpc: read of %d bytes into %d-byte buffer", req.N, len(dst))
	}
	reqBuf := AppendReadSegs(getFrameBuf(64), req)
	body, err := c.call(ctx, MsgReadSegs, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return err
	}
	defer ReleaseFrame(body)
	payload, err := parseResp(body, MsgData)
	if err != nil {
		return err
	}
	data, err := DecodeData(payload)
	if err != nil {
		return err
	}
	if int64(len(data)) != req.N {
		return fmt.Errorf("%w: read returned %d bytes, want %d", ErrCorrupt, len(data), req.N)
	}
	copy(dst, data)
	return nil
}

// Stat returns the subfile's current length.
func (c *Client) Stat(ctx context.Context, file string, subfile int64) (int64, error) {
	reqBuf := AppendStat(getFrameBuf(64), &StatReq{File: file, Subfile: subfile})
	body, err := c.call(ctx, MsgStat, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return 0, err
	}
	defer ReleaseFrame(body)
	payload, err := parseResp(body, MsgStatResp)
	if err != nil {
		return 0, err
	}
	return DecodeStatResp(payload)
}

// Checksum returns the CRC32C of subfile bytes [off, off+n); bytes
// beyond the subfile's length count as zeroes.
func (c *Client) Checksum(ctx context.Context, file string, subfile, off, n int64) (uint32, error) {
	reqBuf := AppendChecksum(getFrameBuf(64), &ChecksumReq{File: file, Subfile: subfile, Off: off, N: n})
	body, err := c.call(ctx, MsgChecksum, reqBuf)
	putFrameBuf(reqBuf)
	if err != nil {
		return 0, err
	}
	defer ReleaseFrame(body)
	payload, err := parseResp(body, MsgChecksumResp)
	if err != nil {
		return 0, err
	}
	return DecodeChecksumResp(payload)
}

// CloseFile syncs and closes the file's stores on the node.
func (c *Client) CloseFile(ctx context.Context, file string) error {
	return c.exchange(ctx, MsgClose, AppendClose(getFrameBuf(64), &CloseReq{File: file}))
}

package rpc_test

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// transport_test.go proves the seam: the identical workload driven
// through the in-process transport and through loopback-TCP parafiled
// daemons must produce byte-identical subfiles, view reads, and
// redistribution output. The simulation still supplies the virtual
// time; only where the bytes rest differs.

// startDaemon runs one in-process daemon and returns its address.
func startDaemon(t *testing.T, cfg rpc.ServerConfig) string {
	t.Helper()
	srv := rpc.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// workloadResult is everything the workload externalizes: the physical
// decomposition after the write, the per-node view reads, and the
// physical decomposition after an on-the-fly redistribution.
type workloadResult struct {
	subfiles    [][]byte
	reads       [][]byte
	redistSubs  [][]byte
	groundTruth []byte
}

// runWorkload drives write -> verify -> view read-back -> redistribute
// on a 4+4 cluster with the given transport configuration.
func runWorkload(t *testing.T, n int64, cfg clusterfile.Config) *workloadResult {
	t.Helper()
	w, err := bench.NewWorkloadWithConfig("c", n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d write: %v", i, op.Err)
		}
	}
	res := &workloadResult{groundTruth: w.Img}
	for i := 0; i < w.File.Phys.Pattern.Len(); i++ {
		b, err := w.File.ReadSubfile(i)
		if err != nil {
			t.Fatalf("subfile %d: %v", i, err)
		}
		res.subfiles = append(res.subfiles, b)
	}

	per := n * n / 4
	for i, v := range w.Views {
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		w.Cluster.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, w.ViewBuf(i)) {
			t.Fatalf("node %d read-back differs from what it wrote", i)
		}
		res.reads = append(res.reads, out)
	}

	rowPat, err := bench.LayoutPattern("r", n)
	if err != nil {
		t.Fatal(err)
	}
	nf, rop, err := w.Cluster.StartRedistribute(w.File, "matrix.v2", part.MustFile(0, rowPat), nil, n*n)
	if err != nil {
		t.Fatal(err)
	}
	w.Cluster.RunAll()
	if rop.Err != nil || !rop.Done() {
		t.Fatalf("redistribute: %v", rop.Err)
	}
	for i := 0; i < nf.Phys.Pattern.Len(); i++ {
		b, err := nf.ReadSubfile(i)
		if err != nil {
			t.Fatalf("redistributed subfile %d: %v", i, err)
		}
		res.redistSubs = append(res.redistSubs, b)
	}
	if err := nf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.File.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTransportEquivalence is the acceptance test of the PR: identical
// workload, in-process vs two loopback daemons, byte-for-byte equal
// at every observation point.
func TestTransportEquivalence(t *testing.T) {
	const n = 64
	local := runWorkload(t, n, clusterfile.DefaultConfig())

	reg := obs.NewRegistry()
	addrs := []string{
		startDaemon(t, rpc.ServerConfig{}),
		startDaemon(t, rpc.ServerConfig{}),
	}
	tr, err := rpc.NewTransport(addrs, rpc.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	remote := runWorkload(t, n, cfg)

	if !bytes.Equal(local.groundTruth, remote.groundTruth) {
		t.Fatal("workloads generated different images (seed drift)")
	}
	if len(local.subfiles) != len(remote.subfiles) {
		t.Fatalf("subfile counts differ: %d vs %d", len(local.subfiles), len(remote.subfiles))
	}
	for i := range local.subfiles {
		if !bytes.Equal(local.subfiles[i], remote.subfiles[i]) {
			t.Errorf("subfile %d differs between in-process and TCP transports", i)
		}
	}
	for i := range local.reads {
		if !bytes.Equal(local.reads[i], remote.reads[i]) {
			t.Errorf("view read %d differs between transports", i)
		}
	}
	for i := range local.redistSubs {
		if !bytes.Equal(local.redistSubs[i], remote.redistSubs[i]) {
			t.Errorf("redistributed subfile %d differs between transports", i)
		}
	}

	// The remote run must actually have traveled the wire.
	scatters := reg.Counter(rpc.MetricClientRequests + `{type="write_segments"}`).Value()
	gathers := reg.Counter(rpc.MetricClientRequests + `{type="read_segments"}`).Value()
	if scatters == 0 || gathers == 0 {
		t.Fatalf("no wire traffic recorded (writes=%d reads=%d) — remote run fell back to local?",
			scatters, gathers)
	}
}

// TestStreamedTransportEquivalence re-runs the acceptance workload
// with every segment operation forced onto the chunked streamed path
// (threshold 1, chunks far smaller than the payloads): write, view
// read-back and redistribution must stay byte-identical to the
// in-process transport, and the streamed counters must prove the new
// path actually carried the traffic.
func TestStreamedTransportEquivalence(t *testing.T) {
	const n = 64
	local := runWorkload(t, n, clusterfile.DefaultConfig())

	reg := obs.NewRegistry()
	addrs := []string{
		startDaemon(t, rpc.ServerConfig{}),
		startDaemon(t, rpc.ServerConfig{}),
	}
	tr, err := rpc.NewTransport(addrs, rpc.Options{
		Client: rpc.ClientConfig{
			ChunkSize:       64,
			StreamThreshold: 1,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	remote := runWorkload(t, n, cfg)

	for i := range local.subfiles {
		if !bytes.Equal(local.subfiles[i], remote.subfiles[i]) {
			t.Errorf("subfile %d differs between in-process and streamed TCP", i)
		}
	}
	for i := range local.reads {
		if !bytes.Equal(local.reads[i], remote.reads[i]) {
			t.Errorf("view read %d differs between transports", i)
		}
	}
	for i := range local.redistSubs {
		if !bytes.Equal(local.redistSubs[i], remote.redistSubs[i]) {
			t.Errorf("redistributed subfile %d differs between transports", i)
		}
	}

	streamedW := reg.Counter(rpc.MetricClientStreamedOps + `{dir="write"}`).Value()
	streamedR := reg.Counter(rpc.MetricClientStreamedOps + `{dir="read"}`).Value()
	if streamedW == 0 || streamedR == 0 {
		t.Fatalf("streamed ops (w=%d r=%d) — workload fell back to monolithic frames", streamedW, streamedR)
	}
	chunks := reg.Counter(rpc.MetricClientChunks + `{dir="sent"}`).Value()
	if chunks <= streamedW {
		t.Fatalf("%d chunks for %d streamed writes — chunking did not split the payloads", chunks, streamedW)
	}
}

// TestTransportDaemonRestartReopen checks the disk-backed daemon
// lifecycle: write through one daemon, stop it (sync + close), start a
// fresh daemon on the same data directory, and reopen the file without
// truncation. The second daemon must see the on-disk sizes and bytes.
func TestTransportDaemonRestartReopen(t *testing.T) {
	dir := t.TempDir()
	const n = 64

	// First daemon: run the write, closing files via the workload.
	addr1 := func() string {
		srv := rpc.NewServer(rpc.ServerConfig{DataDir: dir})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		t.Cleanup(func() { <-done })
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return ln.Addr().String()
	}()
	tr1, err := rpc.NewTransport([]string{addr1}, rpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr1
	w, err := bench.NewWorkloadWithConfig("c", n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Err != nil {
			t.Fatal(op.Err)
		}
	}
	wantSubs := make([][]byte, w.File.Phys.Pattern.Len())
	for i := range wantSubs {
		if wantSubs[i], err = w.File.ReadSubfile(i); err != nil {
			t.Fatal(err)
		}
	}
	phys := w.File.Phys
	if err := w.File.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second daemon on the same directory; reopen without truncation.
	addr2 := startDaemon(t, rpc.ServerConfig{DataDir: dir})
	tr2, err := rpc.NewTransport([]string{addr2}, rpc.Options{Reopen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	handles, err := tr2.Open(context.Background(), "matrix", phys, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		size, err := h.Len(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if size != int64(len(wantSubs[i])) {
			t.Fatalf("subfile %d reopened with %d bytes, want %d", i, size, len(wantSubs[i]))
		}
		got := make([]byte, size)
		if err := h.ReadAt(context.Background(), got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantSubs[i]) {
			t.Fatalf("subfile %d content lost across daemon restart", i)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTransportSurvivesProjectionLoss simulates a daemon that lost its
// projection table (as a restart would): the client re-registers on
// the unknown-projection error and the operation still succeeds.
func TestTransportSurvivesProjectionLoss(t *testing.T) {
	const n = 64
	reg := obs.NewRegistry()
	addr := startDaemon(t, rpc.ServerConfig{Metrics: reg})
	tr, err := rpc.NewTransport([]string{addr}, rpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = tr
	res := runWorkload(t, n, cfg)
	for i, sub := range res.subfiles {
		if len(sub) == 0 {
			t.Fatalf("subfile %d empty", i)
		}
	}
	// The projections were registered once per shape per client, not
	// once per scatter: far fewer SetViews than WriteSegments.
	sets := reg.Counter(rpc.MetricServerRequests + `{type="set_view"}`).Value()
	writes := reg.Counter(rpc.MetricServerRequests + `{type="write_segments"}`).Value()
	if sets == 0 {
		t.Fatal("no projections registered")
	}
	if sets >= writes {
		t.Fatalf("SetView traveled %d times vs %d writes — registration is not amortized", sets, writes)
	}
}

package fault

import (
	"context"

	"parafile/internal/clusterfile"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// transport.go wraps a clusterfile.Transport with the injector:
// every SubfileHandle operation first consults the fault plan for the
// subfile's I/O node, so storage-level faults surface exactly where a
// failing daemon would — as per-node outcomes in the collective
// operation's PartialError. With an empty plan the wrapper is a pure
// pass-through: the same bytes move through the same inner handles.

// WrapTransport layers the injector's fault plan over inner. The
// returned transport is as concurrency-safe as inner plus the
// injector's own locking.
func (inj *Injector) WrapTransport(inner clusterfile.Transport) clusterfile.Transport {
	return &faultTransport{inner: inner, inj: inj}
}

type faultTransport struct {
	inner clusterfile.Transport
	inj   *Injector
}

func (t *faultTransport) Open(ctx context.Context, name string, phys *part.File, assign []int) ([]clusterfile.SubfileHandle, error) {
	return t.open(ctx, name, assign, func(ctx context.Context) ([]clusterfile.SubfileHandle, error) {
		return t.inner.Open(ctx, name, phys, assign)
	})
}

// OpenEpoch passes the placement epoch through to an epoch-aware inner
// transport, keeping the fault layer transparent to the epoch
// protocol. An inner transport without the extension opens unstamped.
func (t *faultTransport) OpenEpoch(ctx context.Context, name string, phys *part.File, assign []int, epoch uint64) ([]clusterfile.SubfileHandle, error) {
	return t.open(ctx, name, assign, func(ctx context.Context) ([]clusterfile.SubfileHandle, error) {
		if et, ok := t.inner.(clusterfile.EpochTransport); ok {
			return et.OpenEpoch(ctx, name, phys, assign, epoch)
		}
		return t.inner.Open(ctx, name, phys, assign)
	})
}

var _ clusterfile.EpochTransport = (*faultTransport)(nil)

func (t *faultTransport) open(ctx context.Context, name string, assign []int, inner func(context.Context) ([]clusterfile.SubfileHandle, error)) ([]clusterfile.SubfileHandle, error) {
	// One open fault-check per distinct I/O node, in node order — the
	// granularity a per-daemon CreateFile fan-out has.
	seen := make(map[int]bool)
	for _, node := range assign {
		if seen[node] {
			continue
		}
		seen[node] = true
		if err := t.inj.fire(ctx, node, OpOpen, name); err != nil {
			return nil, err
		}
	}
	handles, err := inner(ctx)
	if err != nil {
		return nil, err
	}
	wrapped := make([]clusterfile.SubfileHandle, len(handles))
	for i, h := range handles {
		wrapped[i] = &faultHandle{inner: h, inj: t.inj, node: assign[i], file: name}
	}
	return wrapped, nil
}

func (t *faultTransport) Close() error { return t.inner.Close() }

// faultHandle interposes on one subfile's handle with its I/O node's
// fault plan. file is the name the transport's Open received (with
// replication, the per-tier clusterfile.ReplicaName), so rules can
// fault one replica while its siblings stay healthy.
type faultHandle struct {
	inner clusterfile.SubfileHandle
	inj   *Injector
	node  int
	file  string
}

// check runs the schedule and the byte budget for one operation.
func (h *faultHandle) check(ctx context.Context, op Op, bytes int64) error {
	if err := h.inj.fire(ctx, h.node, op, h.file); err != nil {
		return err
	}
	if bytes > 0 {
		return h.inj.accountBytes(h.node, op, h.file, bytes)
	}
	return nil
}

// checkData runs the schedule and byte budget for a data-carrying
// operation, where a Corrupt rule asks for a silent byte flip instead
// of an error.
func (h *faultHandle) checkData(ctx context.Context, op Op, bytes int64) (corrupt bool, err error) {
	corrupt, err = h.inj.fireData(ctx, h.node, op, h.file)
	if err != nil {
		return false, err
	}
	if bytes > 0 {
		if err := h.inj.accountBytes(h.node, op, h.file, bytes); err != nil {
			return false, err
		}
	}
	return corrupt, nil
}

func (h *faultHandle) EnsureLen(ctx context.Context, n int64) error {
	if err := h.check(ctx, OpEnsureLen, 0); err != nil {
		return err
	}
	return h.inner.EnsureLen(ctx, n)
}

func (h *faultHandle) Len(ctx context.Context) (int64, error) {
	if err := h.check(ctx, OpLen, 0); err != nil {
		return 0, err
	}
	return h.inner.Len(ctx)
}

func (h *faultHandle) WriteAt(ctx context.Context, p []byte, off int64) error {
	corrupt, err := h.checkData(ctx, OpWriteAt, int64(len(p)))
	if err != nil {
		return err
	}
	if corrupt && len(p) > 0 {
		// Damage a copy: the caller's buffer (possibly pooled, possibly
		// shared with sibling replicas) must stay intact.
		tmp := append([]byte(nil), p...)
		h.inj.corruptByte(tmp)
		p = tmp
	}
	return h.inner.WriteAt(ctx, p, off)
}

func (h *faultHandle) ReadAt(ctx context.Context, p []byte, off int64) error {
	corrupt, err := h.checkData(ctx, OpReadAt, int64(len(p)))
	if err != nil {
		return err
	}
	if err := h.inner.ReadAt(ctx, p, off); err != nil {
		return err
	}
	if corrupt {
		h.inj.corruptByte(p)
	}
	return nil
}

func (h *faultHandle) Scatter(ctx context.Context, p *redist.Projection, lo, hi int64, data []byte) error {
	corrupt, err := h.checkData(ctx, OpScatter, int64(len(data)))
	if err != nil {
		return err
	}
	if corrupt && len(data) > 0 {
		tmp := append([]byte(nil), data...)
		h.inj.corruptByte(tmp)
		data = tmp
	}
	return h.inner.Scatter(ctx, p, lo, hi, data)
}

func (h *faultHandle) Gather(ctx context.Context, p *redist.Projection, lo, hi int64, dst []byte) error {
	corrupt, err := h.checkData(ctx, OpGather, int64(len(dst)))
	if err != nil {
		return err
	}
	if err := h.inner.Gather(ctx, p, lo, hi, dst); err != nil {
		return err
	}
	if corrupt {
		h.inj.corruptByte(dst)
	}
	return nil
}

func (h *faultHandle) Checksum(ctx context.Context, off, n int64) (uint32, error) {
	if err := h.check(ctx, OpChecksum, 0); err != nil {
		return 0, err
	}
	return h.inner.Checksum(ctx, off, n)
}

func (h *faultHandle) Close() error { return h.inner.Close() }
